// D2Q9 Karman vortex street (paper Table I): channel flow past a cylinder
// on 2 simulated GPUs. Prints an ASCII snapshot of the transverse velocity
// field — the alternating vortices are clearly visible.

#include <iostream>

#include "dgrid/dfield.hpp"
#include "lbm/karman2d.hpp"

using namespace neon;

int main()
{
    lbm::KarmanConfig cfg;
    cfg.nx = 240;
    cfg.ny = 64;
    cfg.inflow = 0.08;
    cfg.reynolds = 180.0;

    auto         backend = set::Backend::simGpu(2);
    dgrid::DGrid grid(backend, {cfg.nx, 1, cfg.ny}, lbm::D2Q9::stencilXZ());
    lbm::KarmanD2Q9<dgrid::DGrid> solver(grid, cfg, Occ::STANDARD);

    const int warmup = 4000;
    solver.run(warmup);
    solver.sync();
    solver.current().updateHost();

    std::cout << "Karman vortex street, " << cfg.nx << "x" << cfg.ny << ", Re=" << cfg.reynolds
              << ", tau=" << cfg.tau() << ", " << warmup << " iterations on "
              << backend.toString() << "\n\n";
    std::cout << "transverse velocity uy (o: cylinder, +/- vortices):\n";

    for (int32_t h = cfg.ny - 2; h >= 1; h -= 2) {
        std::string row;
        for (int32_t x = 0; x < cfg.nx; x += 2) {
            if (cfg.isWall(x, h)) {
                row += 'o';
                continue;
            }
            const auto   m = solver.macroAt({x, 0, h});
            const double uy = m[2] / cfg.inflow;
            if (uy > 0.1) {
                row += uy > 0.3 ? '+' : '.';
            } else if (uy < -0.1) {
                row += uy < -0.3 ? '-' : ',';
            } else {
                row += ' ';
            }
        }
        std::cout << row << "\n";
    }
    return 0;
}
