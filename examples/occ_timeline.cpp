// Reproduces the paper's Fig. 1 as executable output: the virtual timeline
// of a map followed by a stencil on a simulated 2-GPU node, at increasing
// OCC levels. '=' is compute, '~' is a halo transfer — watch the transfer
// slide under the computation as the optimization gets more aggressive.
//
// Besides the ASCII gantt, each OCC level is exported as a Chrome trace
// (occ_timeline_<level>.json) — open chrome://tracing or ui.perfetto.dev
// and drop the file in to inspect the same timeline interactively.

#include <iostream>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "skeleton/skeleton.hpp"

using namespace neon;

int main()
{
    const index_3d dim{96, 96, 192};

    for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED}) {
        auto         backend = set::Backend::simGpu(2);
        dgrid::DGrid grid(backend, dim, Stencil::laplace7());
        auto         A = grid.newField<float>("A", 1, 0.0f);
        auto         B = grid.newField<float>("B", 1, 0.0f);

        // map: B = 2A ; stencil: A = laplacian(B) — Fig. 1's pattern.
        auto map = grid.newContainer("map", [&](auto& l) {
            auto a = l.load(A, Access::READ);
            auto b = l.load(B, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { b(c) = 2.0f * a(c); };
        });
        auto stencil = grid.newContainer("stencil", [&](auto& l) {
            auto b = l.load(B, Access::READ, Compute::STENCIL);
            auto a = l.load(A, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable {
                float acc = -6.0f * b(c);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += b.nghVal(c, off);
                }
                a(c) = acc;
            };
        });

        skeleton::Skeleton app(backend);
        app.sequence({map, stencil}, skeleton::SequenceOptions().withName("fig1").withOcc(occ));

        auto profiler = backend.profiler();
        profiler.enable(true);
        app.run();
        app.sync();
        profiler.enable(false);

        std::cout << "==== OCC: " << to_string(occ) << " ====\n";
        std::cout << profiler.gantt(90) << "\n";

        const ExecutionReport report = app.executionReport();
        std::cout << "overlap: " << report.overlapPercent() << "% of transfer time, halo bytes: "
                  << report.haloBytes() << "\n";

        const std::string path = "occ_timeline_" + to_string(occ) + ".json";
        profiler.writeChromeTrace(path);
        std::cout << "chrome trace written to " << path << "\n\n";
    }

    std::cout << "Legend: '=' kernel, '~' halo transfer; rows are (device, stream).\n"
              << "With OCC the '~' row overlaps the internal-kernel row — the paper's Fig. 1b/1c.\n";
    return 0;
}
