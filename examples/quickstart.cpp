// Quickstart: the paper's running example (Fig. 4a) — a map (axpy), a
// user-defined stencil (Laplacian) and a reduction (dot product), written
// as sequential code and executed by the Skeleton on a simulated multi-GPU
// backend. Change `devices`, `occ` or the grid type and nothing else.

#include <iostream>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

using namespace neon;

int main()
{
    // 1. Pick a backend: 4 simulated GPUs with a DGX-A100-like cost model.
    const int devices = 4;
    auto      backend = set::Backend::simGpu(devices);

    // 2. Describe the domain: a dense grid plus two scalar fields.
    dgrid::DGrid grid(backend, {64, 64, 64}, Stencil::laplace7());
    auto         X = grid.newField<double>("X", 1, 0.0);
    auto         Y = grid.newField<double>("Y", 1, 0.0);
    set::GlobalScalar<double> alpha(backend, "alpha", 0.5);
    set::GlobalScalar<double> result(backend, "result", 0.0);

    X.forEachHost([](const index_3d& g, int, double& v) { v = g.x + g.y + g.z; });
    Y.forEachHost([](const index_3d&, int, double& v) { v = 1.0; });
    X.updateDev();
    Y.updateDev();

    // 3. Computation: Containers from loading lambdas. The Loader records
    //    what each kernel touches; Neon infers the dependency graph.
    auto axpy = patterns::axpy(grid, alpha, Y, X, "axpy");  // X += alpha * Y

    auto laplace = grid.newContainer("laplace", [&](auto& l) {
        auto x = l.load(X, Access::READ, Compute::STENCIL);
        auto y = l.load(Y, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable {
            double acc = -6.0 * x(cell);
            for (const auto& off : Stencil::laplace7().points()) {
                acc += x.nghVal(cell, off);
            }
            y(cell) = acc;
        };
    });

    auto dot = patterns::dot(grid, X, Y, result, "dot");  // result = X . Y

    // 4. Hand the sequence to the Skeleton: halo updates, synchronizations
    //    and OCC optimizations are injected automatically.
    skeleton::Skeleton app(backend);
    app.sequence({axpy, laplace, dot},
                 skeleton::SequenceOptions().withName("quickstart").withOcc(Occ::STANDARD));

    std::cout << app.describe() << "\n";

    app.run();
    app.sync();

    std::cout << "dot(X, Y)        = " << result.hostValue() << "\n";
    std::cout << "virtual makespan = " << backend.profiler().makespan() * 1e6 << " us on "
              << backend.toString() << "\n";
    return 0;
}
