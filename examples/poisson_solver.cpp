// Finite-difference Poisson solver (paper §VI-B): -lap(u) = f on the unit
// cube, homogeneous Dirichlet BCs, matrix-free CG. Compares the discrete
// solution against the analytic sin*sin*sin field and reports the virtual
// multi-GPU timing for each OCC variant.

#include <iostream>

#include "dgrid/dfield.hpp"
#include "poisson/poisson.hpp"

using namespace neon;

int main()
{
    const index_3d dim{48, 48, 48};

    for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
        auto         backend = set::Backend::simGpu(4);
        dgrid::DGrid grid(backend, dim, Stencil::laplace7());
        auto         x = grid.newField<double>("x", 1, 0.0);
        auto         b = grid.newField<double>("b", 1, 0.0);

        solver::CgOptions options;
        options.maxIterations = 500;
        options.tolerance = 1e-9;
        options.occ = occ;
        options.checkEvery = 5;

        const double t0 = backend.profiler().makespan();
        auto         result = poisson::solveSine(grid, x, b, options);
        const double elapsed = backend.profiler().makespan() - t0;

        x.updateHost();
        const poisson::SineProblem problem(dim);
        double                     maxErr = 0.0;
        dim.forEach([&](const index_3d& g) {
            maxErr = std::max(maxErr, std::abs(x.hVal(g) - problem.exactU(g)));
        });

        std::cout << "occ=" << to_string(occ) << ": " << result.iterations
                  << " iterations, relative residual " << result.relativeResidual
                  << ", max error vs analytic " << maxErr << ", virtual time "
                  << elapsed * 1e3 << " ms\n";
    }
    return 0;
}
