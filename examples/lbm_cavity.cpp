// D3Q19 lid-driven cavity (paper §VI-A): runs the Neon twoPop solver on a
// simulated multi-GPU node and prints the centerline velocity profile plus
// throughput in MLUPS (virtual, i.e. what the modeled 8-GPU node would do).

#include <iomanip>
#include <iostream>

#include "dgrid/dfield.hpp"
#include "lbm/cavity3d.hpp"
#include "patterns/io_vtk.hpp"

using namespace neon;

int main()
{
    const index_3d dim{48, 48, 48};
    const double   tau = 0.56;
    const double   lidVelocity = 0.1;
    const int      iterations = 200;

    auto         backend = set::Backend::simGpu(8);
    dgrid::DGrid grid(backend, dim, lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> solver(grid, tau, lidVelocity, Occ::STANDARD);

    const double t0 = backend.profiler().makespan();
    solver.run(iterations);
    solver.sync();
    const double elapsed = backend.profiler().makespan() - t0;
    const double mlups = dim.size() * static_cast<double>(iterations) / elapsed / 1e6;

    solver.current().updateHost();

    std::cout << "lid-driven cavity " << dim.to_string() << ", tau=" << tau
              << ", lid=" << lidVelocity << ", " << iterations << " iterations\n";
    std::cout << "virtual time " << elapsed * 1e3 << " ms on " << backend.toString() << " => "
              << std::fixed << std::setprecision(0) << mlups << " MLUPS\n\n";

    std::cout << "centerline ux(z) at x=y=center (normalized by lid speed):\n";
    for (int32_t z = dim.z - 1; z >= 0; z -= 3) {
        const auto m = solver.macroAt({dim.x / 2, dim.y / 2, z});
        const int  bar = static_cast<int>(40 * std::max(0.0, m.u[0] / lidVelocity));
        std::cout << std::setw(3) << z << " " << std::setw(8) << std::setprecision(4)
                  << m.u[0] / lidVelocity << " |" << std::string(static_cast<size_t>(bar), '#')
                  << "\n";
    }
    std::cout << "\ntotal mass drift: "
              << std::abs(solver.totalMass() / (static_cast<double>(dim.size())) - 1.0) << "\n";

    // Export the velocity field for ParaView.
    auto u = grid.newField<double>("u", 3, 0.0);
    u.forEachHost([&](const index_3d& g, int c, double& v) {
        v = solver.macroAt(g).u[static_cast<size_t>(c)];
    });
    patterns::ioToVtk(u, "cavity_velocity.vtk", "velocity");
    std::cout << "velocity field written to cavity_velocity.vtk\n";
    return 0;
}
