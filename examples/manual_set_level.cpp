// Below the Skeleton: the same map -> stencil pipeline orchestrated *by
// hand* at the Set level (paper §IV-B4: "users can manually manage
// multi-GPU Streams and multi-GPU Events to manage the execution of
// Containers, however higher levels in Neon will manage them
// automatically"). This is the complexity Fig. 1 illustrates and the
// Skeleton removes — compare with examples/quickstart.cpp.

#include <iostream>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "set/container.hpp"

using namespace neon;
using set::Container;
using set::EventSet;
using set::StreamSet;

int main()
{
    auto         backend = set::Backend::simGpu(2);
    dgrid::DGrid grid(backend, {64, 64, 128}, Stencil::laplace7());
    auto         A = grid.newField<float>("A", 1, 0.0f);
    auto         B = grid.newField<float>("B", 1, 0.0f);
    A.forEachHost([](const index_3d& g, int, float& v) { v = static_cast<float>(g.z); });
    A.updateDev();

    auto map = grid.newContainer("map", [&](auto& l) {
        auto a = l.load(A, Access::READ);
        auto b = l.load(B, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { b(c) = 2.0f * a(c); };
    });
    auto stencil = grid.newContainer("stencil", [&](auto& l) {
        auto b = l.load(B, Access::READ, Compute::STENCIL);
        auto a = l.load(A, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            a(c) = 0.5f * (b.nghVal(c, {0, 0, 1}) + b.nghVal(c, {0, 0, -1}));
        };
    });

    // Manual standard-OCC orchestration (what the Skeleton emits for us):
    //   stream 0: map -> halo transfers -> boundary stencil
    //   stream 1: internal stencil (after map, overlapping the transfers)
    const int nDev = backend.devCount();
    StreamSet compute(backend, 0);
    StreamSet overlap(backend, 1);
    EventSet  mapDone = EventSet::make(nDev);
    EventSet  haloDone = EventSet::make(nDev);

    backend.profiler().enable(true);
    for (int d = 0; d < nDev; ++d) {
        map.launch(d, compute[d], DataView::STANDARD);
        compute[d].record(mapDone[d]);
        B.haloOps()->enqueueHaloSend(d, compute[d]);
        compute[d].record(haloDone[d]);
    }
    for (int d = 0; d < nDev; ++d) {
        // Internal stencil needs only the local map result.
        overlap[d].wait(mapDone[d]);
        stencil.launch(d, overlap[d], DataView::INTERNAL);
        // Boundary stencil needs the neighbours' halo sends.
        for (int dd = std::max(0, d - 1); dd <= std::min(nDev - 1, d + 1); ++dd) {
            compute[d].wait(haloDone[dd]);
        }
        stencil.launch(d, compute[d], DataView::BOUNDARY);
    }
    backend.sync();
    backend.profiler().enable(false);

    std::cout << "manual Set-level orchestration (2 devices, standard OCC by hand):\n\n";
    std::cout << backend.profiler().gantt(90) << "\n";

    A.updateHost();
    std::cout << "spot check A(0,0,40) = " << A.hVal({0, 0, 40}) << " (expect 80)\n";
    std::cout << "\nThe Skeleton derives this schedule automatically from the container\n"
                 "sequence {map, stencil} — see examples/quickstart.cpp.\n";
    return 0;
}
