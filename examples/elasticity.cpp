// Finite-element linear-elastic solver (paper §VI-C): a solid column under
// top pressure, fixed at the base. Demonstrates the dense-vs-sparse grid
// switch the paper's Fig. 9 explores: the same solver code runs on both.

#include <iostream>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "fem/elasticity.hpp"

using namespace neon;

namespace {

constexpr index_3d kDim{16, 16, 24};

bool solid(const index_3d& g)
{
    // A column occupying the middle of the grid: ~44% sparsity.
    return g.x >= 4 && g.x < 12 && g.y >= 4 && g.y < 12;
}

template <typename Grid>
void solveOn(const char* label, Grid grid)
{
    fem::ElasticProblem problem({100.0, 0.3}, 1.0, -1.0);
    auto act = grid.template newField<uint8_t>("act", 1, 0);
    auto x = grid.template newField<double>("x", 3, 0.0);
    auto b = grid.template newField<double>("b", 3, 0.0);
    act.forEachActiveHost([](const index_3d& g, int, uint8_t& v) { v = solid(g) ? 1 : 0; });
    act.updateDev();

    solver::CgOptions options;
    options.maxIterations = 600;
    options.tolerance = 1e-8;
    options.checkEvery = 5;
    options.occ = Occ::STANDARD;

    auto& backend = grid.backend();
    const double t0 = backend.profiler().makespan();
    auto         result = fem::solveElastic(grid, problem, act, x, b, options);
    const double elapsed = backend.profiler().makespan() - t0;

    x.updateHost();
    std::cout << label << ": " << result.iterations << " CG iterations, residual "
              << result.relativeResidual << ", virtual time " << elapsed * 1e3 << " ms\n";
    std::cout << "  column axis displacement uz(z):";
    for (int32_t z = 0; z < kDim.z; z += 4) {
        std::cout << " " << x.hVal({8, 8, z}, 2);
    }
    std::cout << "\n";
}

}  // namespace

int main()
{
    std::cout << "elastic column under compression, grid " << kDim.to_string() << "\n\n";

    // Dense grid: every cell allocated, inactive cells masked.
    solveOn("dense grid (masked)",
            dgrid::DGrid(set::Backend::simGpu(4), kDim, Stencil::box27()));

    // Element-sparse grid: only the solid column is stored.
    solveOn("sparse grid        ",
            egrid::EGrid(set::Backend::simGpu(4), kDim, solid, Stencil::box27()));
    return 0;
}
