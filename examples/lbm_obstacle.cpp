// Sparse LBM flow around a cylinder on bGrid (paper §IV-C: the Domain
// contract makes grids interchangeable). The same KarmanD2Q9 solver that
// examples/karman_street.cpp runs on dGrid here runs on the block-sparse
// bGrid: only non-solid cells are allocated and iterated, the cylinder and
// channel walls are simply absent from the grid. The solver code is
// unchanged — only the grid construction differs.
//
// The run is repeated with the Sequential and Threaded engines (both with
// Occ::STANDARD on 2 simulated GPUs) and the final populations must match
// bitwise; exits nonzero otherwise.

#include <cstdio>
#include <iostream>

#include "neon.hpp"
#include "lbm/karman2d.hpp"

using namespace neon;

namespace {

/// Run `iters` steps on a fresh solver; return the grid + solver pair's
/// final populations flattened over active cells in deterministic order.
std::vector<float> runOnce(const lbm::KarmanConfig& cfg, int iters, set::EngineKind engine,
                           bool printReport)
{
    auto backend = set::Backend::simGpu(2, sys::SimConfig::dgxA100Like(), engine);
    auto prof = backend.profiler();
    prof.enable();

    // Channel height on z (partition axis); solid cells never enter the grid.
    const index_3d dim{cfg.nx, 1, cfg.ny};
    bgrid::BGrid   grid(
        backend, dim, [&](const index_3d& g) { return !cfg.isWall(g.x, g.z); },
        lbm::D2Q9::stencilXZ());

    lbm::KarmanD2Q9<bgrid::BGrid> solver(grid, cfg, Occ::STANDARD);
    solver.run(iters);
    solver.sync();
    solver.current().updateHost();

    if (printReport) {
        const double sparsity =
            100.0 * (1.0 - static_cast<double>(grid.activeCount()) /
                               static_cast<double>(dim.size()));
        std::printf("bGrid: %zu active cells of %lld (%.1f%% culled), %lldx%lldx%lld blocks of %d^3\n",
                    grid.activeCount(), static_cast<long long>(dim.size()),
                    sparsity, static_cast<long long>(grid.blockGridDim().x),
                    static_cast<long long>(grid.blockGridDim().y),
                    static_cast<long long>(grid.blockGridDim().z), grid.blockSize());
        const auto report = prof.report();
        std::printf("engine=%s  overlap=%.1f%%  haloBytes=%llu  criticalPath=%.3gs\n",
                    set::to_string(engine).c_str(), report.overlapPercent(),
                    static_cast<unsigned long long>(report.haloBytes()),
                    report.criticalPath());
    }

    std::vector<float> out;
    out.reserve(grid.activeCount() * static_cast<size_t>(lbm::D2Q9::Q));
    auto& f = solver.current();
    f.forEachActiveHost([&](const index_3d&, int, float& v) { out.push_back(v); });
    return out;
}

}  // namespace

int main()
{
    lbm::KarmanConfig cfg;
    cfg.nx = 120;
    cfg.ny = 48;
    cfg.inflow = 0.08;
    cfg.reynolds = 150.0;

    const int iters = 500;
    std::cout << "Sparse D2Q9 obstacle flow on bGrid, " << cfg.nx << "x" << cfg.ny
              << ", Re=" << cfg.reynolds << ", " << iters
              << " iterations, 2 simulated GPUs, OCC standard\n";

    const auto seq = runOnce(cfg, iters, set::EngineKind::Sequential, true);
    const auto thr = runOnce(cfg, iters, set::EngineKind::Threaded, true);

    if (seq.size() != thr.size()) {
        std::cerr << "FAIL: population count mismatch (" << seq.size() << " vs " << thr.size()
                  << ")\n";
        return 1;
    }
    size_t mismatches = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
        if (seq[i] != thr[i]) {
            ++mismatches;
        }
    }
    if (mismatches != 0) {
        std::cerr << "FAIL: " << mismatches << " of " << seq.size()
                  << " populations differ between Sequential and Threaded engines\n";
        return 1;
    }
    std::cout << "OK: Sequential and Threaded engines bitwise-identical over " << seq.size()
              << " populations\n";
    return 0;
}
