// Gray-Scott reaction-diffusion on a Neon grid: two coupled fields, one
// fused reaction+diffusion stencil container per field, ping-pong buffers —
// a compact template for writing new simulations against the public API.
// Prints an ASCII snapshot of the V concentration (spot/stripe patterns).

#include <iostream>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "skeleton/skeleton.hpp"

using namespace neon;

namespace {

constexpr double kDu = 0.16;
constexpr double kDv = 0.08;
constexpr double kFeed = 0.060;
constexpr double kKill = 0.062;

using Field = dgrid::DField<double>;

set::Container step(const dgrid::DGrid& grid, Field uIn, Field vIn, Field uOut, Field vOut)
{
    return grid.newContainer("grayScott", [=](auto& l) mutable {
        auto u = l.load(uIn, Access::READ, Compute::STENCIL);
        auto v = l.load(vIn, Access::READ, Compute::STENCIL);
        auto uo = l.load(uOut, Access::WRITE);
        auto vo = l.load(vOut, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            auto lap = [&](auto& f) {
                double acc = -4.0 * f(c);
                acc += f.nghVal(c, {1, 0, 0});
                acc += f.nghVal(c, {-1, 0, 0});
                acc += f.nghVal(c, {0, 0, 1});
                acc += f.nghVal(c, {0, 0, -1});
                return acc;
            };
            const double uu = u(c);
            const double vv = v(c);
            const double uvv = uu * vv * vv;
            uo(c) = uu + kDu * lap(u) - uvv + kFeed * (1.0 - uu);
            vo(c) = vv + kDv * lap(v) + uvv - (kFeed + kKill) * vv;
        };
    });
}

}  // namespace

int main()
{
    const index_3d dim{128, 1, 64};  // 2-D domain in the x/z plane
    auto           backend = set::Backend::simGpu(2);
    const Stencil  cross({{1, 0, 0}, {-1, 0, 0}, {0, 0, 1}, {0, 0, -1}}, "cross2d");
    dgrid::DGrid   grid(backend, dim, cross);

    Field u[2];
    Field v[2];
    for (int p = 0; p < 2; ++p) {
        u[p] = grid.newField<double>("u" + std::to_string(p), 1, 1.0);
        v[p] = grid.newField<double>("v" + std::to_string(p), 1, 0.0);
    }
    // Uniform U = 1 with a perturbed V square seed in the middle.
    for (int p = 0; p < 2; ++p) {
        u[p].forEachHost([&](const index_3d& g, int, double& val) {
            const bool seed = std::abs(g.x - dim.x / 2) < 6 && std::abs(g.z - dim.z / 2) < 6;
            val = seed ? 0.5 : 1.0;
        });
        v[p].forEachHost([&](const index_3d& g, int, double& val) {
            const bool seed = std::abs(g.x - dim.x / 2) < 6 && std::abs(g.z - dim.z / 2) < 6;
            val = seed ? 0.25 : 0.0;
        });
        u[p].updateDev();
        v[p].updateDev();
    }

    skeleton::Skeleton even(backend);
    skeleton::Skeleton odd(backend);
    even.sequence({step(grid, u[0], v[0], u[1], v[1])},
                  skeleton::SequenceOptions().withName("gs.even").withOcc(Occ::STANDARD));
    odd.sequence({step(grid, u[1], v[1], u[0], v[0])},
                 skeleton::SequenceOptions().withName("gs.odd").withOcc(Occ::STANDARD));

    const int iters = 4000;
    for (int i = 0; i < iters; ++i) {
        (i % 2 == 0 ? even : odd).run();
    }
    backend.sync();

    auto& vFinal = v[iters % 2];
    vFinal.updateHost();
    std::cout << "Gray-Scott (F=" << kFeed << ", k=" << kKill << ") after " << iters
              << " steps on " << backend.toString() << "\n\n";
    for (int32_t z = dim.z - 1; z >= 0; z -= 2) {
        std::string row;
        for (int32_t x = 0; x < dim.x; ++x) {
            const double val = vFinal.hVal({x, 0, z});
            row += val > 0.25 ? '#' : (val > 0.12 ? '+' : (val > 0.04 ? '.' : ' '));
        }
        std::cout << row << "\n";
    }
    return 0;
}
