// Element stiffness properties: symmetry, positive semi-definiteness via
// rigid-body null space, scaling with h and E, and the node-stencil table
// consistency against direct element assembly.

#include <gtest/gtest.h>

#include <cmath>

#include "fem/elasticity.hpp"

namespace neon::fem {

TEST(Hex8, StiffnessIsSymmetric)
{
    const auto K = hex8Stiffness({1.0, 0.3}, 1.0);
    for (int i = 0; i < 24; ++i) {
        for (int j = 0; j < 24; ++j) {
            EXPECT_NEAR(K[static_cast<size_t>(i)][static_cast<size_t>(j)],
                        K[static_cast<size_t>(j)][static_cast<size_t>(i)], 1e-12);
        }
    }
}

TEST(Hex8, RigidTranslationIsInNullSpace)
{
    const auto K = hex8Stiffness({2.0, 0.25}, 0.5);
    for (int d = 0; d < 3; ++d) {
        // u = unit translation along axis d.
        for (int i = 0; i < 24; ++i) {
            double acc = 0.0;
            for (int a = 0; a < 8; ++a) {
                acc += K[static_cast<size_t>(i)][static_cast<size_t>(3 * a + d)];
            }
            EXPECT_NEAR(acc, 0.0, 1e-12) << "row " << i << " axis " << d;
        }
    }
}

TEST(Hex8, RigidRotationIsInNullSpace)
{
    const double h = 1.0;
    const auto   K = hex8Stiffness({1.0, 0.3}, h);
    // Rotation about z: u = (-y, x, 0) at each corner.
    std::array<double, 24> u{};
    for (int a = 0; a < 8; ++a) {
        const auto c = hex8Corner(a);
        u[static_cast<size_t>(3 * a + 0)] = -c[1] * h;
        u[static_cast<size_t>(3 * a + 1)] = c[0] * h;
    }
    for (int i = 0; i < 24; ++i) {
        double acc = 0.0;
        for (int j = 0; j < 24; ++j) {
            acc += K[static_cast<size_t>(i)][static_cast<size_t>(j)] * u[static_cast<size_t>(j)];
        }
        EXPECT_NEAR(acc, 0.0, 1e-10);
    }
}

TEST(Hex8, QuadraticFormIsNonNegative)
{
    const auto K = hex8Stiffness({1.0, 0.3}, 1.0);
    // A few deterministic displacement vectors.
    for (int seed = 1; seed <= 5; ++seed) {
        std::array<double, 24> u{};
        for (int i = 0; i < 24; ++i) {
            u[static_cast<size_t>(i)] = std::sin(0.7 * seed * (i + 1));
        }
        double q = 0.0;
        for (int i = 0; i < 24; ++i) {
            for (int j = 0; j < 24; ++j) {
                q += u[static_cast<size_t>(i)] *
                     K[static_cast<size_t>(i)][static_cast<size_t>(j)] *
                     u[static_cast<size_t>(j)];
            }
        }
        EXPECT_GE(q, -1e-10);
    }
}

TEST(Hex8, StiffnessScalesLinearlyWithHAndE)
{
    const auto K1 = hex8Stiffness({1.0, 0.3}, 1.0);
    const auto K2 = hex8Stiffness({1.0, 0.3}, 2.0);
    const auto K3 = hex8Stiffness({5.0, 0.3}, 1.0);
    EXPECT_NEAR(K2[0][0], 2.0 * K1[0][0], 1e-12);
    EXPECT_NEAR(K3[0][0], 5.0 * K1[0][0], 1e-12);
}

TEST(NodeStencilTable, FullMaskMatchesElementSum)
{
    // With all 8 elements active, the centre block must equal the sum of
    // the 8 diagonal element blocks.
    const Material material{1.0, 0.3};
    const double   h = 1.0;
    const auto     Ke = hex8Stiffness(material, h);
    NodeStencilTable table(material, h);

    double expect[9] = {};
    for (int c = 0; c < 8; ++c) {
        const auto o = NodeStencilTable::cornerOrigin(c);
        const int  la = (-o[0]) + 2 * (-o[1]) + 4 * (-o[2]);
        for (int r = 0; r < 3; ++r) {
            for (int s = 0; s < 3; ++s) {
                expect[r * 3 + s] +=
                    Ke[static_cast<size_t>(3 * la + r)][static_cast<size_t>(3 * la + s)];
            }
        }
    }
    const double* centre = table.block(255, nghSlot(0, 0, 0));
    for (int k = 0; k < 9; ++k) {
        EXPECT_NEAR(centre[k], expect[k], 1e-12);
    }
}

TEST(NodeStencilTable, EmptyMaskIsZero)
{
    NodeStencilTable table({1.0, 0.3}, 1.0);
    for (int slot = 0; slot < 27; ++slot) {
        const double* blk = table.block(0, slot);
        for (int k = 0; k < 9; ++k) {
            EXPECT_EQ(blk[k], 0.0);
        }
    }
}

TEST(NodeStencilTable, MaskIsAdditive)
{
    NodeStencilTable table({1.0, 0.3}, 1.0);
    for (int slot = 0; slot < 27; ++slot) {
        for (int k = 0; k < 9; ++k) {
            double sum = 0.0;
            for (int c = 0; c < 8; ++c) {
                sum += table.block(1 << c, slot)[k];
            }
            EXPECT_NEAR(table.block(255, slot)[k], sum, 1e-12);
        }
    }
}

}  // namespace neon::fem
