// Matrix-free elastic operator vs brute-force dense assembly; CG solve
// behaviour; dense (masked) vs sparse grid equivalence — the core of the
// paper's Fig. 9 claim that the data structure can change without touching
// the computation.

#include <gtest/gtest.h>

#include <cmath>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "fem/elasticity.hpp"
#include "fem/reference.hpp"
#include "set/container.hpp"

namespace neon::fem {

using set::Backend;
using set::StreamSet;

namespace {

constexpr index_3d kDim{5, 5, 6};

bool solidAll(const index_3d&)
{
    return true;
}

bool solidBox(const index_3d& g)
{
    return g.x >= 1 && g.x < 4 && g.y >= 1 && g.y < 4;  // a column
}

/// Apply the Neon operator once on a dense grid with the given mask.
std::vector<double> applyOnDense(int nDev, const std::function<bool(const index_3d&)>& solid,
                                 const std::vector<double>& u)
{
    Backend        backend = Backend::cpu(nDev);
    dgrid::DGrid   grid(backend, kDim, Stencil::box27());
    ElasticProblem problem({1.0, 0.3}, 1.0, 1.0);
    auto           act = grid.newField<uint8_t>("act", 1, 0);
    auto           in = grid.newField<double>("u", 3, 0.0);
    auto           out = grid.newField<double>("Ku", 3, 0.0);
    act.forEachHost([&](const index_3d& g, int, uint8_t& v) { v = solid(g) ? 1 : 0; });
    act.updateDev();
    in.forEachHost([&](const index_3d& g, int c, double& v) {
        v = u[kDim.pitch(g) * 3 + static_cast<size_t>(c)];
    });
    in.updateDev();

    StreamSet streams(backend, 0);
    set::Container::haloUpdate(in.haloOps()).run(streams);
    set::Container::haloUpdate(act.haloOps()).run(streams);
    makeElasticApply(grid, problem, act, in, out).run(streams);
    backend.sync();
    out.updateHost();

    std::vector<double> result(kDim.size() * 3);
    out.forEachHost([&](const index_3d& g, int c, double& v) {
        result[kDim.pitch(g) * 3 + static_cast<size_t>(c)] = v;
    });
    return result;
}

std::vector<double> testDisplacement()
{
    std::vector<double> u(kDim.size() * 3);
    kDim.forEach([&](const index_3d& g) {
        for (int c = 0; c < 3; ++c) {
            u[kDim.pitch(g) * 3 + static_cast<size_t>(c)] =
                std::sin(0.37 * g.x + 0.53 * g.y + 0.71 * g.z + c);
        }
    });
    return u;
}

}  // namespace

TEST(ElasticApply, MatchesBruteForceAssemblyFullySolid)
{
    const auto u = testDisplacement();
    const auto got = applyOnDense(1, solidAll, u);

    reference::DenseAssembly ref(kDim, {1.0, 0.3}, 1.0, solidAll);
    std::vector<double>      expect;
    ref.apply(u, expect);
    for (size_t i = 0; i < expect.size(); ++i) {
        ASSERT_NEAR(got[i], expect[i], 1e-9) << "dof " << i;
    }
}

TEST(ElasticApply, MatchesBruteForceAssemblyMasked)
{
    const auto u = testDisplacement();
    const auto got = applyOnDense(1, solidBox, u);

    reference::DenseAssembly ref(kDim, {1.0, 0.3}, 1.0, solidBox);
    std::vector<double>      expect;
    ref.apply(u, expect);
    for (size_t i = 0; i < expect.size(); ++i) {
        ASSERT_NEAR(got[i], expect[i], 1e-9) << "dof " << i;
    }
}

TEST(ElasticApply, MultiDeviceMatchesSingle)
{
    const auto u = testDisplacement();
    const auto one = applyOnDense(1, solidBox, u);
    const auto three = applyOnDense(3, solidBox, u);
    for (size_t i = 0; i < one.size(); ++i) {
        ASSERT_NEAR(one[i], three[i], 1e-10);
    }
}

namespace {

/// Solve the paper's compression benchmark on a dense grid.
template <typename MakeGrid>
double solveAndTipDisplacement(MakeGrid&& makeGrid, const std::function<bool(const index_3d&)>& solid,
                               solver::CgResult* resultOut)
{
    auto           grid = makeGrid();
    ElasticProblem problem({100.0, 0.3}, 1.0, -1.0);  // compression
    auto act = grid.template newField<uint8_t>("act", 1, 0);
    auto x = grid.template newField<double>("x", 3, 0.0);
    auto b = grid.template newField<double>("b", 3, 0.0);
    act.forEachActiveHost([&](const index_3d& g, int, uint8_t& v) { v = solid(g) ? 1 : 0; });
    act.updateDev();

    solver::CgOptions options;
    options.maxIterations = 400;
    options.tolerance = 1e-9;
    auto result = solveElastic(grid, problem, act, x, b, options);
    if (resultOut != nullptr) {
        *resultOut = result;
    }
    x.updateHost();
    return x.hVal({2, 2, kDim.z - 1}, 2);
}

}  // namespace

TEST(ElasticSolve, CompressionPushesTopDown)
{
    solver::CgResult result;
    const double     tip = solveAndTipDisplacement(
        [] { return dgrid::DGrid(Backend::cpu(2), kDim, Stencil::box27()); }, solidAll, &result);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(tip, 0.0);  // pressure pushes -z

    // Rough magnitude: uz ~ p*L/E per unit column.
    const double expected = -1.0 * (kDim.z - 1) / 100.0;
    EXPECT_NEAR(tip, expected, std::abs(expected) * 0.5);
}

TEST(ElasticSolve, DenseMaskedAndSparseGridsAgree)
{
    solver::CgResult rDense;
    const double     tipDense = solveAndTipDisplacement(
        [] { return dgrid::DGrid(Backend::cpu(2), kDim, Stencil::box27()); }, solidBox, &rDense);

    solver::CgResult rSparse;
    const double     tipSparse = solveAndTipDisplacement(
        [] {
            return egrid::EGrid(Backend::cpu(2), kDim, solidBox, Stencil::box27());
        },
        solidBox, &rSparse);

    EXPECT_TRUE(rDense.converged);
    EXPECT_TRUE(rSparse.converged);
    EXPECT_NEAR(tipDense, tipSparse, std::abs(tipDense) * 1e-6 + 1e-10);
}

TEST(ElasticSolve, StifferMaterialDeformsLess)
{
    auto solve = [&](double E) {
        Backend        backend = Backend::cpu(1);
        dgrid::DGrid   grid(backend, kDim, Stencil::box27());
        ElasticProblem problem({E, 0.3}, 1.0, -1.0);
        auto act = grid.newField<uint8_t>("act", 1, 0);
        auto x = grid.newField<double>("x", 3, 0.0);
        auto b = grid.newField<double>("b", 3, 0.0);
        act.forEachHost([](const index_3d&, int, uint8_t& v) { v = 1; });
        act.updateDev();
        solver::CgOptions options;
        options.maxIterations = 400;
        options.tolerance = 1e-9;
        solveElastic(grid, problem, act, x, b, options);
        x.updateHost();
        return x.hVal({2, 2, kDim.z - 1}, 2);
    };
    const double soft = solve(10.0);
    const double stiff = solve(1000.0);
    EXPECT_LT(std::abs(stiff), std::abs(soft));
    EXPECT_NEAR(soft / stiff, 100.0, 5.0);  // linear in 1/E
}

}  // namespace neon::fem
