// Grid-conformance battery: the behavioural half of the Domain contract
// (docs/domain.md), run identically against every registered grid through
// one typed test suite. A new grid earns its place by adding a GridMaker
// specialization here and passing:
//   1. field alloc / fill / updateDev / updateHost round-trip,
//   2. halo exchange vs the single-device reference (neighbour reads
//      crossing a partition boundary see the owner's values),
//   3. a stencil computation through the Skeleton vs a sequential
//      single-device reference,
//   4. Sequential-vs-Threaded engine bitwise equivalence under OCC,
//      including back-to-back runs of *alternating* skeletons (the
//      backend-level inter-run barrier regression).

#include <gtest/gtest.h>

#include <vector>

#include "bgrid/bfield.hpp"
#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "set/container.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::domain {

using set::Backend;
using set::Container;
using set::EngineKind;
using set::StreamSet;

namespace {

// Box chosen so every grid splits into >= 2 owned z-slabs on 4 devices
// (bGrid partitions in block rows of 4, needing >= 8 rows).
constexpr index_3d kDim{6, 5, 32};

// Sparse activity pattern exercising partial blocks / irregular boundaries;
// full z-columns stay active so every device owns cells.
bool activePredicate(const index_3d& g)
{
    return (g.x + 2 * g.y + g.z) % 7 != 3;
}

double truth(const index_3d& g, int c)
{
    return 1.0 + g.x + 31.0 * g.y + 961.0 * g.z + 29791.0 * c;
}

/// Per-grid construction shim — the only grid-specific code in the file.
template <typename Grid>
struct GridMaker;

template <>
struct GridMaker<dgrid::DGrid>
{
    static constexpr bool sparse = false;  // dense: predicate not supported
    static dgrid::DGrid   make(Backend backend, Stencil stencil)
    {
        return {std::move(backend), kDim, std::move(stencil)};
    }
};

template <>
struct GridMaker<egrid::EGrid>
{
    static constexpr bool sparse = true;
    static egrid::EGrid   make(Backend backend, Stencil stencil)
    {
        return {std::move(backend), kDim, activePredicate, std::move(stencil)};
    }
};

template <>
struct GridMaker<bgrid::BGrid>
{
    static constexpr bool sparse = true;
    static bgrid::BGrid   make(Backend backend, Stencil stencil)
    {
        return {std::move(backend), kDim, activePredicate, std::move(stencil)};
    }
};

/// The 7-point Laplacian used as the reference stencil computation —
/// written once against the generic grid/field surface.
template <typename Grid, typename Field>
set::Container laplace(Grid& grid, Field& in, Field& out)
{
    // Fields captured by value: the loading lambda outlives this scope
    // (it re-runs at every launch).
    return grid.newContainer("laplace", [in, out](auto& l) mutable {
        auto ip = l.load(in, Access::READ, Compute::STENCIL);
        auto op = l.load(out, Access::WRITE);
        return [=](const auto& cell) mutable {
            double acc = -6.0 * ip(cell);
            for (const auto& off : std::initializer_list<index_3d>{
                     {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}) {
                acc += ip.nghVal(cell, off);
            }
            op(cell) = acc;
        };
    });
}

/// Flatten a field's host mirror in deterministic global order.
template <typename Field>
std::vector<double> snapshot(const Field& f)
{
    std::vector<double> out;
    f.forEachActiveHost([&](const index_3d&, int, double& v) { out.push_back(v); });
    return out;
}

/// One Jacobi-flavoured ping-pong iteration count through the Skeleton;
/// two *alternating* Skeleton objects like a real ping-pong app.
template <typename Grid>
std::vector<double> runStencilIterations(EngineKind engine, Occ occ, int iters)
{
    auto backend = Backend::cpu(3, engine);
    auto grid = GridMaker<Grid>::make(backend, Stencil::laplace7());
    auto a = grid.template newField<double>("a", 1, 0.0);
    auto b = grid.template newField<double>("b", 1, 0.0);
    a.forEachActiveHost([](const index_3d& g, int c, double& v) { v = truth(g, c); });
    a.updateDev();
    b.updateDev();

    skeleton::Skeleton fwd(backend);
    skeleton::Skeleton bwd(backend);
    auto               cFwd = laplace(grid, a, b);
    auto               cBwd = laplace(grid, b, a);
    fwd.sequence({cFwd}, "fwd", skeleton::Options().withOcc(occ));
    bwd.sequence({cBwd}, "bwd", skeleton::Options().withOcc(occ));

    for (int i = 0; i < iters; ++i) {
        (i % 2 == 0 ? fwd : bwd).run();
    }
    backend.sync();
    auto& last = iters % 2 == 1 ? b : a;
    last.updateHost();
    return snapshot(last);
}

}  // namespace

template <typename Grid>
class GridConformance : public ::testing::Test
{
};

using Grids = ::testing::Types<dgrid::DGrid, egrid::EGrid, bgrid::BGrid>;

class GridNames
{
   public:
    template <typename T>
    static std::string GetName(int)
    {
        if (std::is_same_v<T, dgrid::DGrid>) {
            return "DGrid";
        }
        if (std::is_same_v<T, egrid::EGrid>) {
            return "EGrid";
        }
        return "BGrid";
    }
};

TYPED_TEST_SUITE(GridConformance, Grids, GridNames);

TYPED_TEST(GridConformance, FieldRoundTripAllLayouts)
{
    for (int nDev : {1, 2, 4}) {
        for (auto layout : {MemLayout::structOfArrays, MemLayout::arrayOfStructs}) {
            auto grid = GridMaker<TypeParam>::make(Backend::cpu(nDev), Stencil::laplace7());
            auto f = grid.template newField<double>("f", 3, -1.0, layout);
            EXPECT_GT(f.allocatedBytes(), 0u);
            f.forEachActiveHost([](const index_3d& g, int c, double& v) { v = truth(g, c); });
            f.updateDev();
            f.fillHost(0.0);
            f.updateHost();
            size_t visited = 0;
            f.forEachActiveHost([&](const index_3d& g, int c, double& v) {
                ++visited;
                EXPECT_DOUBLE_EQ(v, truth(g, c));
                EXPECT_DOUBLE_EQ(f.hVal(g, c), truth(g, c));
            });
            EXPECT_GT(visited, 0u);
        }
    }
}

TYPED_TEST(GridConformance, ActiveCellsMatchPredicateAndViewsPartition)
{
    for (int nDev : {1, 2, 4}) {
        auto grid = GridMaker<TypeParam>::make(Backend::cpu(nDev), Stencil::laplace7());
        size_t expected = 0;
        kDim.forEach([&](const index_3d& g) {
            const bool active = !GridMaker<TypeParam>::sparse || activePredicate(g);
            EXPECT_EQ(grid.isActive(g), active) << g.to_string();
            expected += active ? 1 : 0;
        });
        size_t total = 0;
        for (int d = 0; d < nDev; ++d) {
            const size_t std = grid.span(d, DataView::STANDARD).count();
            const size_t in = grid.span(d, DataView::INTERNAL).count();
            const size_t bd = grid.span(d, DataView::BOUNDARY).count();
            EXPECT_EQ(std, in + bd) << "dev " << d;
            size_t visited = 0;
            grid.span(d, DataView::STANDARD).forEach([&](const auto&) { ++visited; });
            EXPECT_EQ(visited, std);
            total += std;
        }
        EXPECT_EQ(total, expected);
    }
}

TYPED_TEST(GridConformance, HaloMatchesSingleDeviceReference)
{
    for (int nDev : {2, 4}) {
        for (auto layout : {MemLayout::structOfArrays, MemLayout::arrayOfStructs}) {
            auto grid = GridMaker<TypeParam>::make(Backend::cpu(nDev), Stencil::laplace7());
            auto f = grid.template newField<double>("f", 2, -7.0, layout);
            f.forEachActiveHost([](const index_3d& g, int c, double& v) { v = truth(g, c); });
            f.updateDev();

            StreamSet streams(grid.backend(), 0);
            Container::haloUpdate(f.haloOps()).run(streams);
            grid.backend().sync();

            // CPU-backend device buffers are host memory: partitions are
            // directly readable. Every neighbour read from every owned cell
            // must match global truth — including reads crossing into the
            // halo — or report invalid off the active set.
            for (int d = 0; d < nDev; ++d) {
                auto part = f.getPartition(d);
                grid.span(d, DataView::STANDARD).forEach([&](const auto& cell) {
                    const index_3d g = part.globalIdx(cell);
                    for (const auto& off : grid.stencil().points()) {
                        const index_3d n = g + off;
                        for (int c = 0; c < 2; ++c) {
                            const auto got = part.nghData(cell, off, c);
                            if (grid.isActive(n)) {
                                EXPECT_TRUE(got.isValid)
                                    << g.to_string() << " + " << off.to_string();
                                EXPECT_DOUBLE_EQ(got.value, truth(n, c))
                                    << g.to_string() << " + " << off.to_string();
                            } else {
                                EXPECT_FALSE(got.isValid);
                                EXPECT_DOUBLE_EQ(got.value, -7.0);
                            }
                        }
                    }
                });
            }
        }
    }
}

TYPED_TEST(GridConformance, PartitionIsViewAgnostic)
{
    auto grid = GridMaker<TypeParam>::make(Backend::cpu(2), Stencil::laplace7());
    auto f = grid.template newField<double>("f", 1, 0.0);
    for (int d = 0; d < 2; ++d) {
        auto std = f.getPartition(d, DataView::STANDARD);
        auto in = f.getPartition(d, DataView::INTERNAL);
        auto bd = f.getPartition(d, DataView::BOUNDARY);
        // The span decides the visit set; the partition only addresses
        // memory, so every view must yield an identical partition.
        EXPECT_EQ(std.mem, in.mem);
        EXPECT_EQ(std.mem, bd.mem);
    }
}

TYPED_TEST(GridConformance, SkeletonStencilMatchesSingleDevice)
{
    for (auto occ : {Occ::NONE, Occ::STANDARD}) {
        const auto multi = runStencilIterations<TypeParam>(EngineKind::Sequential, occ, 4);
        const auto single = [&] {
            auto backend = Backend::cpu(1);
            auto grid = GridMaker<TypeParam>::make(backend, Stencil::laplace7());
            auto a = grid.template newField<double>("a", 1, 0.0);
            auto b = grid.template newField<double>("b", 1, 0.0);
            a.forEachActiveHost([](const index_3d& g, int c, double& v) { v = truth(g, c); });
            a.updateDev();
            b.updateDev();
            StreamSet  streams(backend, 0);
            auto       cF = laplace(grid, a, b);
            auto       cB = laplace(grid, b, a);
            for (int i = 0; i < 4; ++i) {
                auto& c = i % 2 == 0 ? cF : cB;
                Container::haloUpdate((i % 2 == 0 ? a : b).haloOps()).run(streams);
                c.run(streams, DataView::STANDARD);
            }
            backend.sync();
            a.updateHost();
            return snapshot(a);
        }();
        ASSERT_EQ(multi.size(), single.size());
        for (size_t i = 0; i < multi.size(); ++i) {
            EXPECT_DOUBLE_EQ(multi[i], single[i]) << "occ=" << to_string(occ) << " i=" << i;
        }
    }
}

TYPED_TEST(GridConformance, EnginesBitwiseIdenticalUnderOcc)
{
    for (auto occ : {Occ::NONE, Occ::STANDARD}) {
        const auto seq = runStencilIterations<TypeParam>(EngineKind::Sequential, occ, 6);
        const auto thr = runStencilIterations<TypeParam>(EngineKind::Threaded, occ, 6);
        ASSERT_EQ(seq.size(), thr.size());
        size_t mismatches = 0;
        for (size_t i = 0; i < seq.size(); ++i) {
            mismatches += seq[i] != thr[i] ? 1 : 0;  // bitwise, not approximate
        }
        EXPECT_EQ(mismatches, 0u) << "occ=" << to_string(occ);
    }
}

}  // namespace neon::domain
