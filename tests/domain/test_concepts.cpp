// The domain contract, checked where it is declared: every shipped grid
// satisfies GridConcept, every shipped field satisfies FieldConcept (and
// therefore Loadable), GlobalScalar satisfies Loadable, and arbitrary
// types do not. These are compile-time guarantees — the TEST bodies only
// exist so a test runner reports them.

#include <gtest/gtest.h>

#include <vector>

#include "bgrid/bfield.hpp"
#include "dgrid/dfield.hpp"
#include "domain/concepts.hpp"
#include "egrid/efield.hpp"
#include "set/scalar.hpp"

namespace neon::domain {

// -- grids -------------------------------------------------------------------
static_assert(GridConcept<dgrid::DGrid>, "DGrid must satisfy GridConcept");
static_assert(GridConcept<egrid::EGrid>, "EGrid must satisfy GridConcept");
static_assert(GridConcept<bgrid::BGrid>, "BGrid must satisfy GridConcept");

// -- fields ------------------------------------------------------------------
static_assert(FieldConcept<dgrid::DField<double>>, "DField must satisfy FieldConcept");
static_assert(FieldConcept<egrid::EField<float>>, "EField must satisfy FieldConcept");
static_assert(FieldConcept<bgrid::BField<int32_t>>, "BField must satisfy FieldConcept");

// FieldConcept subsumes Loadable (what Loader::load statically requires).
static_assert(Loadable<dgrid::DField<double>>);
static_assert(Loadable<egrid::EField<float>>);
static_assert(Loadable<bgrid::BField<int32_t>>);

// GlobalScalar participates in containers without being a field.
static_assert(Loadable<set::GlobalScalar<double>>);
static_assert(!FieldConcept<set::GlobalScalar<double>>);

// -- negative space ----------------------------------------------------------
static_assert(!GridConcept<int>);
static_assert(!GridConcept<dgrid::DField<double>>);
static_assert(!Loadable<std::vector<double>>);
static_assert(!FieldConcept<dgrid::DGrid>);

// Spans are the per-(device, view) iteration contract.
static_assert(SpanConcept<dgrid::DSpan>);
static_assert(SpanConcept<egrid::ESpan>);
static_assert(SpanConcept<bgrid::BSpan>);

TEST(DomainConcepts, CompileTimeContractHolds)
{
    SUCCEED();  // the static_asserts above are the test
}

}  // namespace neon::domain
