// BGrid structure: block masks, partition classes, halo segment layout,
// dry-run behaviour and the block-sparse cost model. The behavioural
// grid/field contract is covered by the typed battery in
// test_conformance.cpp; this file checks what is specific to the
// block-sparse representation.

#include <gtest/gtest.h>

#include <set>

#include "bgrid/bfield.hpp"
#include "core/error.hpp"
#include "set/container.hpp"

namespace neon::bgrid {

using set::Backend;

namespace {

bool sphere(const index_3d& g, const index_3d& dim)
{
    const double dx = g.x - dim.x / 2.0;
    const double dy = g.y - dim.y / 2.0;
    const double dz = g.z - dim.z / 2.0;
    return dx * dx + dy * dy + dz * dz <= (dim.x / 2.0) * (dim.x / 2.0);
}

}  // namespace

TEST(BGrid, BlockStructureAndActiveCount)
{
    const index_3d dim{20, 20, 20};
    auto           pred = [&](const index_3d& g) { return sphere(g, dim); };
    BGrid          grid(Backend::cpu(1), dim, pred, Stencil::laplace7(), 4);

    EXPECT_EQ(grid.blockSize(), 4);
    EXPECT_EQ(grid.blockVolume(), 64);
    EXPECT_EQ(grid.blockGridDim(), (index_3d{5, 5, 5}));

    size_t expected = 0;
    dim.forEach([&](const index_3d& g) { expected += pred(g) ? 1 : 0; });
    EXPECT_EQ(grid.activeCount(), expected);
    dim.forEach([&](const index_3d& g) { EXPECT_EQ(grid.isActive(g), pred(g)); });
}

TEST(BGrid, PartitionClassesAreConsistentAcrossDevices)
{
    const index_3d dim{12, 12, 48};
    auto           pred = [&](const index_3d& g) { return sphere(g, {12, 12, 48}); };
    for (int nDev : {2, 3, 4}) {
        BGrid   grid(Backend::cpu(nDev), dim, pred, Stencil::laplace7(), 4);
        int64_t ownedCells = 0;
        for (int d = 0; d < nDev; ++d) {
            const auto& p = grid.part(d);
            EXPECT_GE(p.nOwned, p.nBdrLow + p.nBdrHigh) << "dev " << d;
            EXPECT_EQ(p.nGhostLow, d > 0 ? grid.part(d - 1).nBdrHigh : 0) << "dev " << d;
            EXPECT_EQ(p.nGhostHigh, d < nDev - 1 ? grid.part(d + 1).nBdrLow : 0) << "dev " << d;
            // Multi-device partitions keep boundary rows disjoint.
            EXPECT_GE(p.bzCount, 2) << "dev " << d;
            for (auto view : {DataView::STANDARD, DataView::INTERNAL, DataView::BOUNDARY}) {
                size_t n = 0;
                grid.span(d, view).forEach([&](const BCell&) { ++n; });
                EXPECT_EQ(n, grid.span(d, view).count());
            }
            ownedCells += static_cast<int64_t>(grid.span(d, DataView::STANDARD).count());
        }
        EXPECT_EQ(static_cast<size_t>(ownedCells), grid.activeCount());
    }
}

TEST(BGrid, EveryActiveCellOwnedByExactlyOneDevice)
{
    const index_3d dim{12, 12, 48};
    auto           pred = [&](const index_3d& g) { return sphere(g, {12, 12, 48}); };
    BGrid          grid(Backend::cpu(3), dim, pred, Stencil::laplace7(), 4);
    auto           f = grid.newField<int32_t>("f", 1, -1);

    std::set<std::string> seen;
    for (int d = 0; d < 3; ++d) {
        auto part = f.getPartition(d);
        grid.span(d, DataView::STANDARD).forEach([&](const BCell& cell) {
            const index_3d g = part.globalIdx(cell);
            EXPECT_TRUE(pred(g)) << g.to_string();
            EXPECT_TRUE(seen.insert(g.to_string()).second) << "duplicate " << g.to_string();
            const auto [dev, idx] = grid.localOf(g);
            EXPECT_EQ(dev, d);
            EXPECT_EQ(idx, part.cellIdx(cell));
        });
    }
    EXPECT_EQ(seen.size(), grid.activeCount());
}

TEST(BGrid, DryRunComputesCountsWithoutHostTables)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = true;
    Backend        b(2, sys::DeviceType::SIM_GPU, cfg);
    const index_3d dim{16, 16, 32};
    auto           pred = [&](const index_3d& g) { return sphere(g, {16, 16, 32}); };
    BGrid          dry(b, dim, pred, Stencil::laplace7(), 4);
    BGrid          real(Backend::cpu(2), dim, pred, Stencil::laplace7(), 4);

    EXPECT_EQ(dry.activeCount(), real.activeCount());
    for (int d = 0; d < 2; ++d) {
        EXPECT_EQ(dry.part(d).nOwned, real.part(d).nOwned);
        EXPECT_EQ(dry.part(d).nBdrLow, real.part(d).nBdrLow);
        EXPECT_EQ(dry.part(d).nBdrHigh, real.part(d).nBdrHigh);
        for (auto view : {DataView::STANDARD, DataView::INTERNAL, DataView::BOUNDARY}) {
            EXPECT_EQ(dry.span(d, view).count(), real.span(d, view).count());
        }
    }
    // Memory accounted even though nothing is mirrored or filled.
    auto f = dry.newField<float>("f", 2, 0.0F);
    EXPECT_GT(b.device(0).bytesInUse(), 0u);
}

TEST(BGrid, SmallBlocksAndRadiusLimit)
{
    const index_3d dim{8, 8, 8};
    auto           all = [](const index_3d&) { return true; };

    BGrid b2(Backend::cpu(1), dim, all, Stencil::laplace7(), 2);
    EXPECT_EQ(b2.blockVolume(), 8);
    EXPECT_EQ(b2.activeCount(), dim.size());

    // blockDim outside [2,4] and stencils wider than a block are rejected.
    EXPECT_THROW(BGrid(Backend::cpu(1), dim, all, Stencil::laplace7(), 1), NeonException);
    EXPECT_THROW(BGrid(Backend::cpu(1), dim, all, Stencil::laplace7(), 5), NeonException);
    Stencil wide({{3, 0, 0}, {-3, 0, 0}});
    EXPECT_THROW(BGrid(Backend::cpu(1), dim, all, wide, 2), NeonException);
}

TEST(BField, CostModelSitsBetweenDenseAndExplicit)
{
    const index_3d dim{16, 16, 16};
    auto           all = [](const index_3d&) { return true; };
    BGrid          grid(Backend::cpu(1), dim, all, Stencil::laplace7(), 4);
    auto           f = grid.newField<float>("f", 1, 0.0F);

    EXPECT_DOUBLE_EQ(f.bytesPerItem(Compute::MAP), 4.0);
    // STENCIL adds the 27-entry block-neighbour row + mask, amortized over
    // the block's 64 cells: (27*4 + 8) / 64.
    EXPECT_DOUBLE_EQ(f.bytesPerItem(Compute::STENCIL), 4.0 + (27.0 * 4.0 + 8.0) / 64.0);
}

TEST(BGrid, HaloSegmentsCoverBoundaryRowsOnly)
{
    const index_3d dim{8, 8, 32};
    auto           all = [](const index_3d&) { return true; };
    BGrid          grid(Backend::cpu(2), dim, all, Stencil::laplace7(), 4);

    const auto& segs = grid.haloSegments();
    ASSERT_EQ(segs.size(), 2u);
    // Each device sends exactly its one active boundary row to the other.
    ASSERT_EQ(segs[0].size(), 1u);
    ASSERT_EQ(segs[1].size(), 1u);
    const auto& up = segs[0][0];
    const auto& down = segs[1][0];
    EXPECT_EQ(up.nbr, 1);
    EXPECT_EQ(down.nbr, 0);
    // 8x8 cells per layer, 4 layers per block row, 2x2 blocks per row.
    const int64_t rowCells = 2 * 2 * 64;
    EXPECT_EQ(up.count, rowCells);
    EXPECT_EQ(down.count, rowCells);
}

}  // namespace neon::bgrid
