// Grid-generic BLAS containers: correctness against references, across
// grid types, cardinalities and device counts ("unified interface for
// different grid types", paper §III).

#include <gtest/gtest.h>

#include <cmath>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::patterns {

using set::Backend;
using set::GlobalScalar;
using set::StreamSet;

namespace {

constexpr index_3d kDim{6, 5, 12};

double truth(const index_3d& g, int c)
{
    return 0.5 + g.x + 2.0 * g.y + 3.0 * g.z + 7.0 * c;
}

template <typename Grid>
struct Fixture
{
    Grid                                 grid;
    typename Grid::template FieldType<double> x;
    typename Grid::template FieldType<double> y;

    explicit Fixture(Grid g, int card) : grid(g)
    {
        x = grid.template newField<double>("x", card, 0.0);
        y = grid.template newField<double>("y", card, 0.0);
        x.forEachActiveHost([](const index_3d& gg, int c, double& v) { v = truth(gg, c); });
        y.forEachActiveHost([](const index_3d& gg, int c, double& v) { v = 2.0 * truth(gg, c); });
        x.updateDev();
        y.updateDev();
    }

    void runOne(set::Container c)
    {
        skeleton::Skeleton s(grid.backend());
        s.sequence({std::move(c)}, "op");
        s.run();
        s.sync();
    }
};

dgrid::DGrid denseGrid(int nDev)
{
    return dgrid::DGrid(Backend::cpu(nDev), kDim, Stencil::laplace7());
}

egrid::EGrid sparseGrid(int nDev)
{
    return egrid::EGrid(Backend::cpu(nDev), kDim,
                        [](const index_3d& g) { return (g.x + g.y) % 3 != 0; },
                        Stencil::laplace7());
}

}  // namespace

class BlasDense : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BlasDense, Axpy)
{
    const auto [nDev, card] = GetParam();
    Fixture<dgrid::DGrid> f(denseGrid(nDev), card);
    GlobalScalar<double>  alpha(f.grid.backend(), "a", 1.5);
    f.runOne(axpy(f.grid, alpha, f.x, f.y));
    f.y.updateHost();
    f.y.forEachActiveHost([](const index_3d& g, int c, double& v) {
        EXPECT_DOUBLE_EQ(v, 2.0 * truth(g, c) + 1.5 * truth(g, c));
    });
}

TEST_P(BlasDense, Axmy)
{
    const auto [nDev, card] = GetParam();
    Fixture<dgrid::DGrid> f(denseGrid(nDev), card);
    GlobalScalar<double>  alpha(f.grid.backend(), "a", 0.25);
    f.runOne(axmy(f.grid, alpha, f.x, f.y));
    f.y.updateHost();
    f.y.forEachActiveHost([](const index_3d& g, int c, double& v) {
        EXPECT_DOUBLE_EQ(v, 2.0 * truth(g, c) - 0.25 * truth(g, c));
    });
}

TEST_P(BlasDense, Xpby)
{
    const auto [nDev, card] = GetParam();
    Fixture<dgrid::DGrid> f(denseGrid(nDev), card);
    GlobalScalar<double>  beta(f.grid.backend(), "b", -2.0);
    f.runOne(xpby(f.grid, f.x, beta, f.y));
    f.y.updateHost();
    f.y.forEachActiveHost([](const index_3d& g, int c, double& v) {
        EXPECT_DOUBLE_EQ(v, truth(g, c) - 2.0 * 2.0 * truth(g, c));
    });
}

TEST_P(BlasDense, CopyAndSet)
{
    const auto [nDev, card] = GetParam();
    Fixture<dgrid::DGrid> f(denseGrid(nDev), card);
    f.runOne(copy(f.grid, f.x, f.y));
    f.runOne(setValue(f.grid, f.x, -9.0));
    f.x.updateHost();
    f.y.updateHost();
    f.y.forEachActiveHost(
        [](const index_3d& g, int c, double& v) { EXPECT_DOUBLE_EQ(v, truth(g, c)); });
    f.x.forEachActiveHost([](const index_3d&, int, double& v) { EXPECT_DOUBLE_EQ(v, -9.0); });
}

TEST_P(BlasDense, DotAndNorm)
{
    const auto [nDev, card] = GetParam();
    Fixture<dgrid::DGrid> f(denseGrid(nDev), card);
    GlobalScalar<double>  d(f.grid.backend(), "d", 0.0);
    GlobalScalar<double>  n2(f.grid.backend(), "n2", 0.0);

    skeleton::Skeleton s(f.grid.backend());
    s.sequence({dot(f.grid, f.x, f.y, d), norm2Sq(f.grid, f.x, n2)}, "reduce");
    s.run();
    s.sync();

    double expectDot = 0.0;
    double expectN2 = 0.0;
    kDim.forEach([&](const index_3d& g) {
        for (int c = 0; c < card; ++c) {
            expectDot += truth(g, c) * 2.0 * truth(g, c);
            expectN2 += truth(g, c) * truth(g, c);
        }
    });
    EXPECT_NEAR(d.hostValue(), expectDot, std::abs(expectDot) * 1e-12);
    EXPECT_NEAR(n2.hostValue(), expectN2, std::abs(expectN2) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlasDense,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3)),
                         [](const auto& info) {
                             return "dev" + std::to_string(std::get<0>(info.param)) + "_card" +
                                    std::to_string(std::get<1>(info.param));
                         });

TEST(BlasSparse, SameOpsOnSparseGrid)
{
    Fixture<egrid::EGrid> f(sparseGrid(2), 2);
    GlobalScalar<double>  alpha(f.grid.backend(), "a", 3.0);
    GlobalScalar<double>  d(f.grid.backend(), "d", 0.0);

    skeleton::Skeleton s(f.grid.backend());
    s.sequence({axpy(f.grid, alpha, f.x, f.y), dot(f.grid, f.x, f.y, d)}, "sparseBlas");
    s.run();
    s.sync();

    f.y.updateHost();
    double expectDot = 0.0;
    f.grid.dim().forEach([&](const index_3d& g) {
        if (!f.grid.isActive(g)) {
            return;
        }
        for (int c = 0; c < 2; ++c) {
            expectDot += truth(g, c) * 5.0 * truth(g, c);  // y = 2t + 3t
        }
    });
    f.y.forEachActiveHost([](const index_3d& g, int c, double& v) {
        EXPECT_DOUBLE_EQ(v, 5.0 * truth(g, c));
    });
    EXPECT_NEAR(d.hostValue(), expectDot, std::abs(expectDot) * 1e-12);
}

TEST(Blas, ScalarUpdateBetweenRunsIsVisible)
{
    // A skeleton built once must observe per-iteration scalar values —
    // the mechanism CG relies on (alpha/beta change every iteration).
    Fixture<dgrid::DGrid> f(denseGrid(2), 1);
    GlobalScalar<double>  alpha(f.grid.backend(), "a", 0.0);
    skeleton::Skeleton    s(f.grid.backend());
    s.sequence({axpy(f.grid, alpha, f.x, f.y)}, "axpyLoop");

    alpha.set(1.0);
    s.run();
    s.sync();
    alpha.set(10.0);
    s.run();
    s.sync();

    f.y.updateHost();
    f.y.forEachActiveHost([](const index_3d& g, int c, double& v) {
        EXPECT_DOUBLE_EQ(v, 2.0 * truth(g, c) + 11.0 * truth(g, c));
    });
}

}  // namespace neon::patterns
