// VTK export: header structure, value round-trip, sparse outside handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "patterns/io_vtk.hpp"

namespace neon::patterns {

using set::Backend;

namespace {

std::string slurp(const std::string& path)
{
    std::ifstream     is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

struct TmpFile
{
    std::string path;
    explicit TmpFile(const char* name) : path(std::string(::testing::TempDir()) + name) {}
    ~TmpFile() { std::remove(path.c_str()); }
};

}  // namespace

TEST(IoVtk, WritesStructuredPointsHeader)
{
    dgrid::DGrid grid(Backend::cpu(2), {3, 4, 6}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 1, 0.0);
    f.forEachHost([](const index_3d& g, int, double& v) { v = g.x; });

    TmpFile tmp("vtk_dense.vtk");
    ioToVtk(f, tmp.path, "myfield");
    const auto content = slurp(tmp.path);
    EXPECT_NE(content.find("DATASET STRUCTURED_POINTS"), std::string::npos);
    EXPECT_NE(content.find("DIMENSIONS 3 4 6"), std::string::npos);
    EXPECT_NE(content.find("POINT_DATA 72"), std::string::npos);
    EXPECT_NE(content.find("SCALARS myfield double 1"), std::string::npos);
}

TEST(IoVtk, VectorFieldWritesOneArrayPerComponent)
{
    dgrid::DGrid grid(Backend::cpu(1), {2, 2, 2}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 3, 0.0);
    TmpFile      tmp("vtk_vec.vtk");
    ioToVtk(f, tmp.path, "vel");
    const auto content = slurp(tmp.path);
    EXPECT_NE(content.find("SCALARS vel_0 double 1"), std::string::npos);
    EXPECT_NE(content.find("SCALARS vel_1 double 1"), std::string::npos);
    EXPECT_NE(content.find("SCALARS vel_2 double 1"), std::string::npos);
}

TEST(IoVtk, ValuesRoundTripInXFastestOrder)
{
    dgrid::DGrid grid(Backend::cpu(2), {2, 1, 4}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 1, 0.0);
    f.forEachHost([](const index_3d& g, int, double& v) { v = 10.0 * g.z + g.x; });
    TmpFile tmp("vtk_vals.vtk");
    ioToVtk(f, tmp.path, "f");

    std::ifstream is(tmp.path);
    std::string   line;
    while (std::getline(is, line) && line != "LOOKUP_TABLE default") {
    }
    std::vector<double> vals;
    double              v = 0;
    while (is >> v) {
        vals.push_back(v);
    }
    ASSERT_EQ(vals.size(), 8u);
    // VTK expects x fastest: (0,0,0) (1,0,0) (0,0,1) (1,0,1) ...
    EXPECT_DOUBLE_EQ(vals[0], 0.0);
    EXPECT_DOUBLE_EQ(vals[1], 1.0);
    EXPECT_DOUBLE_EQ(vals[2], 10.0);
    EXPECT_DOUBLE_EQ(vals[3], 11.0);
    EXPECT_DOUBLE_EQ(vals[7], 31.0);
}

TEST(IoVtk, SparseGridUsesOutsideValueForInactiveCells)
{
    egrid::EGrid grid(Backend::cpu(1), {2, 2, 2},
                      [](const index_3d& g) { return g.x == 0; }, Stencil::laplace7());
    auto f = grid.newField<double>("f", 1, -1.0);
    f.forEachActiveHost([](const index_3d&, int, double& v) { v = 5.0; });
    TmpFile tmp("vtk_sparse.vtk");
    ioToVtk(f, tmp.path, "f");

    std::ifstream is(tmp.path);
    std::string   line;
    while (std::getline(is, line) && line != "LOOKUP_TABLE default") {
    }
    std::vector<double> vals;
    double              v = 0;
    while (is >> v) {
        vals.push_back(v);
    }
    ASSERT_EQ(vals.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(vals[i], i % 2 == 0 ? 5.0 : -1.0);  // x==0 active
    }
}

TEST(IoVtk, UnwritablePathThrows)
{
    dgrid::DGrid grid(Backend::cpu(1), {2, 2, 2}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 1, 0.0);
    EXPECT_THROW(ioToVtk(f, "/nonexistent-dir/x.vtk", "f"), NeonException);
}

}  // namespace neon::patterns
