// NEON_THREADS bitwise-determinism guarantee (docs/performance.md, "Host
// parallelism"): dot / norm2Sq reductions and map field state must be
// bitwise identical for any host-pool width, on both engines. The chunk
// partition is span-derived and the per-chunk partials fold through a
// fixed-shape combine tree, so no float is ever added in a different order.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "dgrid/dfield.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::patterns {

using set::Backend;
using set::GlobalScalar;

namespace {

// Odd extents on purpose: chunk boundaries land mid-partition.
constexpr index_3d kDim{24, 20, 33};

struct RunResult
{
    double              dot = 0.0;
    double              norm = 0.0;
    std::vector<double> field;
    bool                poolRan = false;  ///< hostPool rows appeared in the trace
};

/// One full pipeline (map -> dot -> norm2Sq, 3 runs) at a given pool width.
RunResult runAt(set::EngineKind kind, int hostThreads, int nDev)
{
    set::BackendSpec spec = set::BackendSpec::cpu(nDev, kind).withHostThreads(hostThreads);
    Backend          backend = Backend::make(spec);
    backend.profiler().enable();

    dgrid::DGrid grid(backend, kDim, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         y = grid.newField<double>("y", 1, 0.0);
    // Magnitudes spread over several orders so float addition order matters.
    x.forEachHost([](const index_3d& g, int, double& v) {
        v = 1e-6 * g.x + 0.1 * g.y + 100.0 * g.z + 0.7;
    });
    y.forEachHost([](const index_3d& g, int, double& v) {
        v = 3.0 - 0.01 * g.x + 1e-5 * (g.y + g.z);
    });
    x.updateDev();
    y.updateDev();

    GlobalScalar<double> alpha(backend, "alpha", 0.25);
    GlobalScalar<double> d(backend, "d", 0.0);
    GlobalScalar<double> n(backend, "n", 0.0);

    skeleton::Skeleton skl(backend);
    skl.sequence({axpy(grid, alpha, x, y), dot(grid, x, y, d), norm2Sq(grid, y, n)}, "reduce");
    for (int r = 0; r < 3; ++r) {
        skl.run();
    }
    skl.sync();

    RunResult out;
    out.dot = d.hostValue();
    out.norm = n.hostValue();
    y.updateHost();
    y.forEachHost([&](const index_3d&, int, double& v) { out.field.push_back(v); });
    out.poolRan = backend.profiler().trace().countKind(sys::TraceKind::HostPool) > 0;
    return out;
}

class ParallelReduce : public ::testing::TestWithParam<set::EngineKind>
{
   protected:
    void SetUp() override
    {
        // The env override would collapse the width axis this test sweeps.
        unsetenv("NEON_THREADS");
    }
};

}  // namespace

TEST_P(ParallelReduce, BitwiseIdenticalAcrossPoolWidths)
{
    const auto      kind = GetParam();
    const RunResult ref = runAt(kind, 1, 2);
    for (const int width : {2, 8}) {
        const RunResult got = runAt(kind, width, 2);
        EXPECT_EQ(got.dot, ref.dot) << "dot diverged at width " << width;
        EXPECT_EQ(got.norm, ref.norm) << "norm2Sq diverged at width " << width;
        ASSERT_EQ(got.field.size(), ref.field.size());
        for (size_t i = 0; i < ref.field.size(); ++i) {
            ASSERT_EQ(got.field[i], ref.field[i])
                << "field diverged at flat index " << i << ", width " << width;
        }
        // The sweep is only meaningful if the pool actually engaged.
        EXPECT_TRUE(got.poolRan) << "no hostPool trace rows at width " << width;
    }
}

TEST_P(ParallelReduce, EnginesAgreeAtEveryWidth)
{
    const auto kind = GetParam();
    const auto other = kind == set::EngineKind::Sequential ? set::EngineKind::Threaded
                                                           : set::EngineKind::Sequential;
    for (const int width : {1, 8}) {
        const RunResult a = runAt(kind, width, 2);
        const RunResult b = runAt(other, width, 2);
        EXPECT_EQ(a.dot, b.dot);
        EXPECT_EQ(a.norm, b.norm);
        ASSERT_EQ(a.field, b.field);
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, ParallelReduce,
                         ::testing::Values(set::EngineKind::Sequential,
                                           set::EngineKind::Threaded),
                         [](const auto& info) {
                             return info.param == set::EngineKind::Sequential ? "sequential"
                                                                              : "threaded";
                         });

}  // namespace neon::patterns
