// Adaptive-repartitioning differential battery (docs/robustness.md).
//
// The core property: repartitioning mid-run is invisible to the data. For
// every grid (DGrid / EGrid / BGrid) and both engines, a pipeline that runs
// k steps, migrates to a skewed decomposition and runs to completion must
// produce final state bitwise-equal to an unrepartitioned single-device
// reference. Around that core: migration preserves field values with no
// compute at all, uneven slabs feed exactly the right halo halves (the
// haloLoFed/haloHiFed access model), the BGrid sparse/dense lint cases stay
// clean after a re-slice, a stale schedule recipe is never replayed onto
// resized spans, and the Repartitioner's measured-rate apportionment is
// validated on synthetic traces.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/access_model.hpp"
#include "analysis/node_meta.hpp"
#include "repartition/repartitioner.hpp"
#include "repartition_fixture.hpp"
#include "skeleton/schedule_cache.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::repartition {

using set::Backend;
using set::BackendSpec;
using set::Container;
using set::EngineKind;

namespace {

int findNode(const skeleton::Graph&                                 g,
             const std::function<bool(const skeleton::GraphNode&)>& pred)
{
    for (int id = 0; id < g.nodeCount(); ++id) {
        if (g.node(id).alive && pred(g.node(id))) {
            return id;
        }
    }
    return -1;
}

int findStencilNode(const skeleton::Graph& g)
{
    return findNode(g, [](const skeleton::GraphNode& n) {
        return n.kind() == Container::Kind::Compute && n.pattern() == Compute::STENCIL;
    });
}

// --- the differential core -------------------------------------------------

constexpr int kTotalSteps = 6;
constexpr int kRepartitionAt = 2;

template <typename Grid>
void repartitionDifferential(EngineKind kind)
{
    const std::vector<double> want = referenceRun<Grid>(kind, kTotalSteps);

    Harness<Grid> h(Backend::make(BackendSpec::cpu(3, kind)));
    auto          analyzer = h.grid.backend().analysis();
    analyzer.enable();
    skeleton::Skeleton skl(h.grid.backend());
    auto               compiled = skl.sequence(h.seq, skeleton::SequenceOptions()
                                                          .withName("repart")
                                                          .withOcc(Occ::STANDARD));
    for (int i = 0; i < kRepartitionAt; ++i) {
        compiled.run();
    }
    skl.sync();

    const domain::PartitionPlan plan = skewedPlan(h.grid);
    h.grid.repartition(plan);
    ASSERT_EQ(h.grid.currentPlan().unitsPerDev, plan.unitsPerDev);
    for (auto& op : h.seq) {
        op.rebuild();
    }
    auto resequenced = skl.sequence(h.seq, skeleton::SequenceOptions()
                                               .withName("repart")
                                               .withOcc(Occ::STANDARD));
    const auto lint = skl.validate();
    EXPECT_TRUE(lint.clean()) << lint.toString();
    for (int i = kRepartitionAt; i < kTotalSteps; ++i) {
        resequenced.run();
    }
    skl.sync();

    const auto races = analyzer.raceReport();
    EXPECT_TRUE(races.clean()) << races.toString();
    expectBitwiseEqual(snapshot(h.f), want, "repartitioned f");
}

template <typename Grid>
void migrationPreservesData()
{
    Harness<Grid>             h(Backend::cpu(3));
    const std::vector<double> before = snapshot(h.f);
    h.grid.repartition(skewedPlan(h.grid));
    expectBitwiseEqual(snapshot(h.f), before, "migrated f");

    // And back: the inverse migration restores the original decomposition.
    domain::PartitionPlan even = domain::PartitionPlan::even(
        h.grid.partitionUnits(), h.grid.devCount());
    h.grid.repartition(even);
    expectBitwiseEqual(snapshot(h.f), before, "round-trip f");
}

}  // namespace

// --- grid x engine battery -------------------------------------------------

TEST(RepartitionDifferential, DGridSequential)
{
    repartitionDifferential<dgrid::DGrid>(EngineKind::Sequential);
}
TEST(RepartitionDifferential, DGridThreaded)
{
    repartitionDifferential<dgrid::DGrid>(EngineKind::Threaded);
}
TEST(RepartitionDifferential, EGridSequential)
{
    repartitionDifferential<egrid::EGrid>(EngineKind::Sequential);
}
TEST(RepartitionDifferential, EGridThreaded)
{
    repartitionDifferential<egrid::EGrid>(EngineKind::Threaded);
}
TEST(RepartitionDifferential, BGridSequential)
{
    repartitionDifferential<bgrid::BGrid>(EngineKind::Sequential);
}
TEST(RepartitionDifferential, BGridThreaded)
{
    repartitionDifferential<bgrid::BGrid>(EngineKind::Threaded);
}

TEST(RepartitionMigration, DGridPreservesData)
{
    migrationPreservesData<dgrid::DGrid>();
}
TEST(RepartitionMigration, EGridPreservesData)
{
    migrationPreservesData<egrid::EGrid>();
}
TEST(RepartitionMigration, BGridPreservesData)
{
    migrationPreservesData<bgrid::BGrid>();
}

TEST(RepartitionMigration, RejectsIllegalPlans)
{
    Harness<dgrid::DGrid> h(Backend::cpu(3));
    domain::PartitionPlan bad = h.grid.currentPlan();
    bad.unitsPerDev.pop_back();
    EXPECT_THROW(h.grid.repartition(bad), NeonException);  // wrong device count
    bad = h.grid.currentPlan();
    bad.unitsPerDev.back() += 1;
    EXPECT_THROW(h.grid.repartition(bad), NeonException);  // does not cover the domain
    bad = h.grid.currentPlan();
    bad.unitsPerDev.front() = 0;
    bad.unitsPerDev.back() += 8;
    EXPECT_THROW(h.grid.repartition(bad), NeonException);  // below the per-device floor
}

// --- uneven-slab halo correctness (haloLoFed / haloHiFed) -------------------

TEST(UnevenSlabHalo, DGridFeedsExactlyTheFedHalves)
{
    Backend      backend = Backend::cpu(3);
    dgrid::DGrid grid(backend, {4, 4, 12}, Stencil::laplace7());
    auto         in = grid.newField<double>("in", 1, 0.0);
    auto         out = grid.newField<double>("out", 1, 0.0);

    domain::PartitionPlan plan;
    plan.unitsPerDev = {1, 4, 7};  // adjacent partitions of different heights
    grid.repartition(plan);

    // Halo segments: every neighbour pair still exchanges exactly r planes,
    // anchored at the re-sliced owned windows.
    const auto plane = static_cast<int64_t>(4) * 4;
    const auto& segs = grid.haloSegments();
    ASSERT_EQ(segs.size(), 3u);
    ASSERT_EQ(segs[0].size(), 1u);  // dev0: only an upper neighbour
    EXPECT_EQ(segs[0][0].nbr, 1);
    EXPECT_EQ(segs[0][0].count, plane);
    ASSERT_EQ(segs[1].size(), 2u);  // dev1: both
    ASSERT_EQ(segs[2].size(), 1u);  // dev2: only a lower neighbour
    EXPECT_EQ(segs[2][0].nbr, 1);
    EXPECT_EQ(segs[2][0].count, plane);

    auto fill = grid.newContainer("fill", [in](auto& l) mutable {
        auto p = l.load(in, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { p(c) = 1.0; };
    });
    auto sten = grid.newContainer("sten", [in, out](auto& l) mutable {
        auto sp = l.load(in, Access::READ, Compute::STENCIL);
        auto dp = l.load(out, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { dp(c) = sp.nghVal(c, {0, 0, 1}); };
    });

    skeleton::Skeleton skl(backend);
    skl.sequence({fill, sten}, "uneven");
    EXPECT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const int stenId = findStencilNode(skl.graph());
    ASSERT_GE(stenId, 0);
    const sys::ContainerMeta cm = analysis::metaFor(skl.graph().node(stenId), 3);

    auto claims = [&](int dev, analysis::Part part) {
        const analysis::AccessSets sets = analysis::segmentsFor(cm, dev, 3);
        for (const analysis::Segment& s : sets.reads) {
            if (s.part == part && s.dev == dev) {
                return true;
            }
        }
        return false;
    };
    EXPECT_FALSE(claims(0, analysis::Part::HaloLo));  // nothing below device 0
    EXPECT_TRUE(claims(0, analysis::Part::HaloHi));
    EXPECT_TRUE(claims(1, analysis::Part::HaloLo));
    EXPECT_TRUE(claims(1, analysis::Part::HaloHi));
    EXPECT_TRUE(claims(2, analysis::Part::HaloLo));
    EXPECT_FALSE(claims(2, analysis::Part::HaloHi));  // nothing above device 2
}

namespace {

std::vector<Container> bgridStencilSeq(bgrid::BGrid& grid, bgrid::BField<double>& in,
                                       bgrid::BField<double>& out)
{
    auto fill = grid.newContainer("fill", [in](auto& l) mutable {
        auto p = l.load(in, Access::WRITE);
        return [=](const auto& c) mutable { p(c) = 1.0; };
    });
    auto sten = grid.newContainer("sten", [in, out](auto& l) mutable {
        auto sp = l.load(in, Access::READ, Compute::STENCIL);
        auto dp = l.load(out, Access::WRITE);
        return [=](const auto& c) mutable { dp(c) = sp.nghVal(c, {0, 0, 1}); };
    });
    return {fill, sten};
}

}  // namespace

TEST(UnevenSlabHalo, SparseBGridStillClaimsNoHaloAfterRepartition)
{
    // Mirror of GraphLint.SparseBGridWithEmptyBoundaryClaimsNoHaloSegments,
    // re-sliced: both the old and the new cut land in the dead middle band,
    // so peers() stays empty and the lint stays clean on the moved cut too.
    Backend      backend = Backend::cpu(2);
    bgrid::BGrid grid(
        backend, {8, 8, 32}, [](const index_3d& g) { return g.z < 4 || g.z >= 28; },
        Stencil::laplace7(), 4);
    auto in = grid.newField<double>("in", 1, 0.0);
    auto out = grid.newField<double>("out", 1, 0.0);

    domain::PartitionPlan plan;
    plan.unitsPerDev = {2, 6};  // block rows; cut at z=8, inside the dead band
    grid.repartition(plan);

    skeleton::Skeleton skl(backend);
    skl.sequence(bgridStencilSeq(grid, in, out), "sparse-uneven");
    EXPECT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const int haloId = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.kind() == Container::Kind::Halo;
    });
    ASSERT_GE(haloId, 0);
    const sys::ContainerMeta hm = analysis::metaFor(skl.graph().node(haloId), 2);
    ASSERT_EQ(hm.haloPeers.size(), 2u);
    EXPECT_TRUE(hm.haloPeers[0].empty());
    EXPECT_TRUE(hm.haloPeers[1].empty());
}

TEST(UnevenSlabHalo, DenseBGridClaimsOnlyFedHalvesAfterRepartition)
{
    // Mirror of GraphLint.DenseBGridClaimsOnlyFedHaloHalves on a skewed cut.
    Backend      backend = Backend::cpu(2);
    bgrid::BGrid grid(
        backend, {8, 8, 16}, [](const index_3d&) { return true; }, Stencil::laplace7(), 4);
    auto in = grid.newField<double>("in", 1, 0.0);
    auto out = grid.newField<double>("out", 1, 0.0);

    domain::PartitionPlan plan;
    plan.unitsPerDev = {3, 1};  // 4 block rows, skewed
    EXPECT_THROW(grid.repartition(plan), NeonException);  // below the 2-row floor
    plan.unitsPerDev = {2, 2};
    grid.repartition(plan);  // legal no-op-sized re-slice keeps the claims

    skeleton::Skeleton skl(backend);
    skl.sequence(bgridStencilSeq(grid, in, out), "dense-uneven");
    EXPECT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const int stenId = findStencilNode(skl.graph());
    ASSERT_GE(stenId, 0);
    const sys::ContainerMeta cm = analysis::metaFor(skl.graph().node(stenId), 2);
    auto claims = [&](int dev, analysis::Part part) {
        const analysis::AccessSets sets = analysis::segmentsFor(cm, dev, 2);
        for (const analysis::Segment& s : sets.reads) {
            if (s.part == part && s.dev == dev) {
                return true;
            }
        }
        return false;
    };
    EXPECT_FALSE(claims(0, analysis::Part::HaloLo));
    EXPECT_TRUE(claims(0, analysis::Part::HaloHi));
    EXPECT_TRUE(claims(1, analysis::Part::HaloLo));
    EXPECT_FALSE(claims(1, analysis::Part::HaloHi));
}

// --- schedule-cache staleness (the fix this PR regression-tests) -----------

TEST(RepartitionScheduleCache, StaleRecipeNeverReplayedOntoResizedSpans)
{
    auto& cache = skeleton::ScheduleCache::instance();
    cache.clear();

    Harness<dgrid::DGrid> h(Backend::cpu(2));
    skeleton::Skeleton    skl(h.grid.backend());
    const auto            opts = skeleton::SequenceOptions().withName("cache");

    auto first = skl.sequence(h.seq, opts);
    EXPECT_FALSE(first.cacheHit());
    auto replay = skl.sequence(h.seq, opts);
    EXPECT_TRUE(replay.cacheHit());  // same structure, same spans: hits

    h.grid.repartition(skewedPlan(h.grid));

    // Stale containers are rejected outright (geometry-epoch guard) ...
    EXPECT_THROW(skl.sequence(h.seq, opts), NeonException);
    // ... and so is running the pre-repartition schedule.
    EXPECT_THROW(replay.run(), NeonException);

    for (auto& op : h.seq) {
        op.rebuild();
    }
    auto resequenced = skl.sequence(h.seq, opts);
    // The key encodes per-device span sizes: the old recipe must not serve
    // the resized pipeline.
    EXPECT_FALSE(resequenced.cacheHit())
        << "stale schedule recipe replayed onto resized spans";
    resequenced.run();
    skl.sync();

    // Moving back to the original decomposition hits the original entry.
    domain::PartitionPlan even =
        domain::PartitionPlan::even(h.grid.partitionUnits(), h.grid.devCount());
    h.grid.repartition(even);
    for (auto& op : h.seq) {
        op.rebuild();
    }
    auto back = skl.sequence(h.seq, opts);
    EXPECT_TRUE(back.cacheHit());
    back.run();
    skl.sync();
}

TEST(RepartitionScheduleCache, InvalidateDevCountDropsOnlyMatchingEntries)
{
    auto& cache = skeleton::ScheduleCache::instance();
    cache.clear();

    Harness<dgrid::DGrid> two(Backend::cpu(2));
    Harness<dgrid::DGrid> three(Backend::cpu(3));
    skeleton::Skeleton    sklTwo(two.grid.backend());
    skeleton::Skeleton    sklThree(three.grid.backend());
    const auto            opts = skeleton::SequenceOptions().withName("inv");
    sklTwo.sequence(two.seq, opts);
    sklThree.sequence(three.seq, opts);
    ASSERT_EQ(cache.stats().size, 2u);

    EXPECT_EQ(cache.invalidateDevCount(2), 1u);
    EXPECT_EQ(cache.stats().size, 1u);
    EXPECT_EQ(cache.invalidateDevCount(2), 0u);  // idempotent

    // The 3-device entry survived and still serves.
    EXPECT_TRUE(sklThree.sequence(three.seq, opts).cacheHit());
    // The 2-device pipeline recompiles.
    EXPECT_FALSE(sklTwo.sequence(two.seq, opts).cacheHit());
}

// --- Repartitioner: measured-rate apportionment ----------------------------

namespace {

ExecutionReport syntheticReport(const std::vector<double>& computeBusy)
{
    std::vector<sys::TraceEntry> entries;
    for (size_t d = 0; d < computeBusy.size(); ++d) {
        sys::TraceEntry e;
        e.device = static_cast<int>(d);
        e.stream = 0;
        e.kind = "kernel";
        e.name = "k";
        e.startV = 0.0;
        e.endV = computeBusy[d];
        entries.push_back(e);
    }
    return ExecutionReport::fromEntries(entries, static_cast<int>(computeBusy.size()));
}

}  // namespace

TEST(Repartitioner, RatesFollowMeasuredBusyTimes)
{
    domain::PartitionPlan current;
    current.unitsPerDev = {8, 8, 8};
    // Device 1 took twice as long per unit: its rate halves.
    const DeviceRates rates = Repartitioner::measuredRates(syntheticReport({1.0, 2.0, 1.0}),
                                                           current);
    ASSERT_TRUE(rates.measured);
    EXPECT_DOUBLE_EQ(rates.unitsPerSecond[0], 8.0);
    EXPECT_DOUBLE_EQ(rates.unitsPerSecond[1], 4.0);
    EXPECT_DOUBLE_EQ(rates.unitsPerSecond[2], 8.0);

    const domain::PartitionPlan plan = Repartitioner::propose(rates, 24, 1);
    EXPECT_EQ(plan.total(), 24);
    // 8:4:8 -> ~9.6 : 4.8 : 9.6 units; the slow device sheds load.
    EXPECT_LT(plan.unitsPerDev[1], plan.unitsPerDev[0]);
    EXPECT_LT(plan.unitsPerDev[1], 8);
    EXPECT_GT(plan.unitsPerDev[0], 8);
}

TEST(Repartitioner, EmptyWindowDegeneratesToEvenSplit)
{
    domain::PartitionPlan current;
    current.unitsPerDev = {8, 8, 8};
    const DeviceRates rates =
        Repartitioner::measuredRates(syntheticReport({0.0, 0.0, 0.0}), current);
    EXPECT_FALSE(rates.measured);
    const domain::PartitionPlan plan = Repartitioner::propose(rates, 24, 1);
    EXPECT_EQ(plan.unitsPerDev, (std::vector<int64_t>{8, 8, 8}));
}

TEST(Repartitioner, SilentDevicesInheritTheMeanRate)
{
    domain::PartitionPlan current;
    current.unitsPerDev = {8, 8, 8};
    const DeviceRates rates =
        Repartitioner::measuredRates(syntheticReport({1.0, 0.0, 1.0}), current);
    ASSERT_TRUE(rates.measured);
    EXPECT_DOUBLE_EQ(rates.unitsPerSecond[1], 8.0);  // mean of the measured 8.0s
}

TEST(Repartitioner, RespectsTheGridFloor)
{
    DeviceRates rates;
    rates.unitsPerSecond = {100.0, 1.0, 1.0};
    rates.measured = true;
    const domain::PartitionPlan plan = Repartitioner::propose(rates, 24, 2);
    EXPECT_EQ(plan.total(), 24);
    EXPECT_GE(plan.unitsPerDev[1], 2);
    EXPECT_GE(plan.unitsPerDev[2], 2);
    EXPECT_EQ(plan.unitsPerDev[0], 20);
}

TEST(Repartitioner, ProposalFromLiveGridIsApplicable)
{
    // End-to-end: run a pipeline on a homogeneous backend, propose from the
    // real ExecutionReport, and apply the proposal. With equal measured
    // rates the proposal stays near-even and repartition() accepts it.
    Harness<dgrid::DGrid> h(Backend::cpu(3));
    h.grid.backend().profiler().enable();
    skeleton::Skeleton skl(h.grid.backend());
    auto               compiled = skl.sequence(h.seq, skeleton::SequenceOptions()
                                                          .withName("live"));
    compiled.run();
    skl.sync();

    const domain::PartitionPlan plan =
        Repartitioner::propose(h.grid, skl.executionReport());
    ASSERT_EQ(plan.total(), h.grid.partitionUnits());
    h.grid.repartition(plan);
    for (auto& op : h.seq) {
        op.rebuild();
    }
    auto next = skl.sequence(h.seq, skeleton::SequenceOptions().withName("live"));
    next.run();
    skl.sync();
}

}  // namespace neon::repartition
