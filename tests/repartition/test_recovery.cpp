// Online fault-recovery differential battery (docs/robustness.md,
// "Self-healing recovery").
//
// The property under test: losing a device mid-run is invisible to the
// data. A SelfHealingRunner driving a 3-device pipeline through a
// PermanentDeviceLoss must checkpoint, shrink to the survivors,
// repartition, recompile and resume — and the final state must be
// bitwise-equal to an unfaulted single-device run of the same length.
// Exercised for every grid and both engines, plus the recovery mechanics
// in isolation: survivorSpec remapping, FieldGuard restore fidelity and
// recovery composed with an explicit mid-run rebalance.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "repartition/self_healing.hpp"
#include "repartition_fixture.hpp"
#include "service/service.hpp"
#include "sys/fault.hpp"

namespace neon::repartition {

using set::Backend;
using set::BackendSpec;
using set::EngineKind;

namespace {

constexpr int kSteps = 6;
constexpr int kFaultAtRun = 3;
constexpr int kLostDevice = 1;

template <typename Grid>
void recoveryDifferential(EngineKind kind)
{
    const std::vector<double> want = referenceRun<Grid>(kind, kSteps);

    BackendSpec spec = BackendSpec::cpu(3, kind);
    spec.withFaults(sys::FaultPlan(7).add(
        sys::FaultSpec::deviceLoss(kLostDevice, kFaultAtRun)));
    Harness<Grid> h(Backend::make(spec));

    SelfHealingRunner<Grid> runner(h.grid, h.seq);
    runner.guardField(h.f);
    runner.guardField(h.g);

    const std::vector<RecoveryEvent> events = runner.run(kSteps);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].lostDevice, kLostDevice);
    EXPECT_EQ(events[0].atStep, kFaultAtRun);
    EXPECT_EQ(events[0].lastCompletedStep, kFaultAtRun - 1);
    EXPECT_EQ(events[0].devicesBefore, 3);
    EXPECT_EQ(events[0].devicesAfter, 2);
    EXPECT_EQ(runner.completedSteps(), kSteps);
    EXPECT_EQ(runner.grid().devCount(), 2);

    runner.skeleton().sync();
    expectBitwiseEqual(snapshot(h.f), want, "recovered f");
}

}  // namespace

TEST(RecoveryDifferential, DGridSequential)
{
    recoveryDifferential<dgrid::DGrid>(EngineKind::Sequential);
}
TEST(RecoveryDifferential, DGridThreaded)
{
    recoveryDifferential<dgrid::DGrid>(EngineKind::Threaded);
}
TEST(RecoveryDifferential, EGridSequential)
{
    recoveryDifferential<egrid::EGrid>(EngineKind::Sequential);
}
TEST(RecoveryDifferential, EGridThreaded)
{
    recoveryDifferential<egrid::EGrid>(EngineKind::Threaded);
}
TEST(RecoveryDifferential, BGridSequential)
{
    recoveryDifferential<bgrid::BGrid>(EngineKind::Sequential);
}
TEST(RecoveryDifferential, BGridThreaded)
{
    recoveryDifferential<bgrid::BGrid>(EngineKind::Threaded);
}

TEST(RecoveryDifferential, ComposesWithExplicitRebalance)
{
    // Rebalance at step 2, lose device 1 at step 4: the runner must recover
    // from the *rebalanced* decomposition and still match the reference.
    const std::vector<double> want =
        referenceRun<dgrid::DGrid>(EngineKind::Sequential, kSteps);

    BackendSpec spec = BackendSpec::cpu(3, EngineKind::Sequential);
    spec.withFaults(sys::FaultPlan(11).add(sys::FaultSpec::deviceLoss(1, 4)));
    Harness<dgrid::DGrid> h(Backend::make(spec));

    SelfHealingRunner<dgrid::DGrid> runner(h.grid, h.seq);
    runner.guardField(h.f);
    runner.guardField(h.g);

    ASSERT_TRUE(runner.run(2).empty());
    runner.repartition(skewedPlan(runner.grid()));

    const auto events = runner.run(kSteps);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].atStep, 4);
    EXPECT_EQ(events[0].devicesAfter, 2);

    runner.skeleton().sync();
    expectBitwiseEqual(snapshot(h.f), want, "rebalanced+recovered f");
}

TEST(RecoveryDifferential, SecondLossShrinksToOneDevice)
{
    // Two sequential losses: 3 -> 2 -> 1 devices. Both recoveries restore
    // a consistent snapshot; the run still matches the reference.
    const std::vector<double> want =
        referenceRun<dgrid::DGrid>(EngineKind::Sequential, kSteps);

    BackendSpec spec = BackendSpec::cpu(3, EngineKind::Sequential);
    // Old numbering: device 2 dies at run 2; after the shrink it is gone,
    // and survivor device 1 (old device 1) dies at survivor-run 2 — i.e.
    // original step 4 under the runner's one-run-per-step cadence.
    spec.withFaults(sys::FaultPlan(13)
                        .add(sys::FaultSpec::deviceLoss(2, 2))
                        .add(sys::FaultSpec::deviceLoss(1, 4)));
    Harness<dgrid::DGrid> h(Backend::make(spec));

    SelfHealingRunner<dgrid::DGrid> runner(h.grid, h.seq);
    runner.guardField(h.f);
    runner.guardField(h.g);

    const auto events = runner.run(kSteps);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].atStep, 2);
    EXPECT_EQ(events[0].lostDevice, 2);
    EXPECT_EQ(events[0].devicesAfter, 2);
    EXPECT_EQ(events[1].lostDevice, 1);
    EXPECT_EQ(events[1].devicesAfter, 1);

    runner.skeleton().sync();
    expectBitwiseEqual(snapshot(h.f), want, "twice-recovered f");
}

TEST(RecoveryDifferential, NonDeviceLostFaultsPropagate)
{
    // Transfer-failure faults are not recoverable by shrinking: the runner
    // must rethrow, not loop.
    BackendSpec spec = BackendSpec::cpu(2, EngineKind::Sequential);
    sys::FaultSpec transient = sys::FaultSpec::transientTransfer(1000);
    spec.withFaults(sys::FaultPlan(3).add(transient));
    Harness<dgrid::DGrid> h(Backend::make(spec));

    SelfHealingRunner<dgrid::DGrid> runner(h.grid, h.seq);
    runner.guardField(h.f);
    EXPECT_THROW(runner.run(1), RuntimeError);
}

// --- survivorSpec remapping -------------------------------------------------

TEST(SurvivorSpec, DropsTheLostDeviceAndItsSpeedFactor)
{
    BackendSpec spec = BackendSpec::cpu(3);
    spec.speedFactors = {1.0, 0.5, 0.25};
    const BackendSpec out = survivorSpec(spec, 1, 0);
    EXPECT_EQ(out.nDevices, 2);
    ASSERT_EQ(out.speedFactors.size(), 2u);
    EXPECT_DOUBLE_EQ(out.speedFactors[0], 1.0);
    EXPECT_DOUBLE_EQ(out.speedFactors[1], 0.25);
}

TEST(SurvivorSpec, RemapsFaultRuleDevicesAndRebasesRuns)
{
    BackendSpec spec = BackendSpec::cpu(4);
    spec.withFaults(sys::FaultPlan(17)
                        .add(sys::FaultSpec::deviceLoss(1, 3))    // the one that fired
                        .add(sys::FaultSpec::deviceLoss(3, 7))    // future loss, shifts
                        .add(sys::FaultSpec::deviceLoss(2, 1))    // already past, drops
                        .add(sys::FaultSpec::transientTransfer(2)));

    const BackendSpec out = survivorSpec(spec, /*lostDevice=*/1, /*faultedStep=*/3);
    EXPECT_EQ(out.nDevices, 3);
    ASSERT_EQ(out.faults.specs.size(), 2u);

    // deviceLoss(3, 7): device 3 -> 2, run 7 -> 4 in the survivor run space.
    const sys::FaultSpec& loss = out.faults.specs[0];
    EXPECT_EQ(loss.kind, sys::FaultKind::PermanentDeviceLoss);
    EXPECT_EQ(loss.device, 2);
    EXPECT_EQ(loss.run, 4);

    // The any-device transient rule survives untouched.
    EXPECT_EQ(out.faults.specs[1].kind, sys::FaultKind::TransientTransferFailure);
    EXPECT_EQ(out.faults.specs[1].device, -1);
}

TEST(SurvivorSpec, RefusesToShrinkBelowOneDevice)
{
    EXPECT_THROW(survivorSpec(BackendSpec::cpu(1), 0, 0), NeonException);
}

// --- service: jobs survive a device loss mid-trace --------------------------

TEST(ServiceRecovery, OtherJobsSurviveADeviceLoss)
{
    // Device 1 dies while job A runs. With a recovery handler installed the
    // service fails only job A; jobs B and C re-dispatch onto the survivor
    // backend and complete.
    BackendSpec spec = BackendSpec::cpu(3, EngineKind::Sequential);
    spec.withFaults(sys::FaultPlan(5).add(sys::FaultSpec::deviceLoss(1, 1)));
    Harness<dgrid::DGrid> h(Backend::make(spec));

    service::Service svc(h.grid.backend(),
                         service::ServiceConfig().withMaxInFlight(3).withBatching(false));
    svc.setRecoveryHandler(
        [&h](Backend dying, const RuntimeError::Info& info) {
            Backend survivor = Backend::make(survivorSpec(dying.spec(), info.device, 0));
            h.grid.rebindBackend(survivor);
            for (auto& c : h.seq) {
                c.rebuild();
            }
            return survivor;
        });

    // b dispatches as run 0 (clean) and is still in flight when a's run 1
    // triggers the loss — exercising the re-queue path; c lands after the
    // recovery, exercising a fresh dispatch onto the survivor backend.
    service::Job b = svc.submit(service::JobRequest{.name = "b", .ops = h.seq});
    service::Job a = svc.submit(service::JobRequest{.name = "a", .ops = h.seq});
    service::Job c = svc.submit(service::JobRequest{.name = "c", .ops = h.seq});
    svc.drain();

    EXPECT_EQ(a.state(), service::JobState::Failed);
    EXPECT_THROW(a.rethrowIfFailed(), RuntimeError);
    EXPECT_EQ(b.state(), service::JobState::Completed);
    EXPECT_EQ(c.state(), service::JobState::Completed);
    EXPECT_EQ(svc.failedCount(), 1);
    EXPECT_EQ(svc.completedCount(), 2);
    EXPECT_EQ(svc.backend().devCount(), 2);
}

TEST(ServiceRecovery, WithoutHandlerTheBlastRadiusStands)
{
    // The pre-existing fail-stop contract is the default: no handler, and
    // a device loss fails the attributed job (and, had others been queued
    // behind it on the dead backend, them too).
    BackendSpec spec = BackendSpec::cpu(3, EngineKind::Sequential);
    spec.withFaults(sys::FaultPlan(5).add(sys::FaultSpec::deviceLoss(1, 0)));
    Harness<dgrid::DGrid> h(Backend::make(spec));

    service::Service svc(h.grid.backend(),
                         service::ServiceConfig().withMaxInFlight(2).withBatching(false));
    service::Job a = svc.submit(service::JobRequest{.name = "a", .ops = h.seq});
    service::Job b = svc.submit(service::JobRequest{.name = "b", .ops = h.seq});
    svc.drain();

    EXPECT_EQ(a.state(), service::JobState::Failed);
    EXPECT_EQ(b.state(), service::JobState::Failed);
    EXPECT_EQ(svc.failedCount(), 2);
}

// --- FieldGuard restore fidelity --------------------------------------------

TEST(FieldGuard, RestoreUndoesSubsequentWrites)
{
    Harness<dgrid::DGrid>     h(Backend::cpu(2));
    const std::vector<double> before = snapshot(h.f);

    FieldGuard guard(h.f);
    guard.checkpoint();

    h.f.forEachActiveHost([](const index_3d&, int, double& v) { v = -7.5; });
    h.f.updateDev();
    guard.restore();
    expectBitwiseEqual(snapshot(h.f), before, "restored f");
}

TEST(FieldGuard, RestoreCrossesARepartition)
{
    // Snapshot on the even decomposition, restore after a skewed re-slice:
    // the dense global snapshot is decomposition-independent.
    Harness<dgrid::DGrid>     h(Backend::cpu(3));
    const std::vector<double> before = snapshot(h.f);

    FieldGuard guard(h.f);
    guard.checkpoint();

    h.f.forEachActiveHost([](const index_3d&, int, double& v) { v = 0.0; });
    h.f.updateDev();
    h.grid.repartition(skewedPlan(h.grid));
    guard.restore();
    expectBitwiseEqual(snapshot(h.f), before, "restored-across-repartition f");
}

}  // namespace neon::repartition
