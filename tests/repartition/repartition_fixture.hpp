#pragma once
// Shared harness for the repartition/recovery differential battery.
//
// One pipeline (stencil diffuse + map relax), three grids behind a traits
// shim, dense decomposition-independent snapshots and a bitwise comparator:
// everything the differential property needs — "run k steps, repartition
// (or lose a device), run to completion, compare bitwise against an
// unrepartitioned single-device reference".

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bgrid/bfield.hpp"
#include "bgrid/bgrid.hpp"
#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "egrid/efield.hpp"
#include "egrid/egrid.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::repartition {

template <typename Grid>
struct GridMaker;

template <>
struct GridMaker<dgrid::DGrid>
{
    static dgrid::DGrid make(set::Backend b)
    {
        return dgrid::DGrid(std::move(b), {6, 5, 24}, Stencil::laplace7());
    }
};

template <>
struct GridMaker<egrid::EGrid>
{
    static egrid::EGrid make(set::Backend b)
    {
        return egrid::EGrid(
            std::move(b), {6, 5, 24},
            [](const index_3d& g) { return (g.x + g.y + g.z) % 7 != 0; },
            Stencil::laplace7());
    }
};

template <>
struct GridMaker<bgrid::BGrid>
{
    static bgrid::BGrid make(set::Backend b)
    {
        return bgrid::BGrid(
            std::move(b), {8, 6, 24},
            [](const index_3d& g) { return (g.x + g.y + g.z) % 5 != 0; },
            Stencil::laplace7(), 2);
    }
};

/// diffuse (stencil f->g) then relax (map g->f): every cell's new value is
/// a pure per-cell function of the previous state — no reductions — so the
/// trajectory is bitwise identical across decompositions and engines.
template <typename Grid, typename Field>
std::vector<set::Container> makePipeline(const Grid& grid, Field f, Field g)
{
    using Cell = typename Grid::Cell;
    std::vector<set::Container> seq;
    seq.push_back(grid.newContainer("diffuse", [f, g](auto& l) mutable {
        auto in = l.load(f, Access::READ, Compute::STENCIL);
        auto out = l.load(g, Access::WRITE);
        return [=](const Cell& c) mutable {
            double acc = -6.0 * in(c);
            for (const auto& off : Stencil::laplace7().points()) {
                acc += in.nghVal(c, off);
            }
            out(c) = in(c) + 0.05 * acc;
        };
    }));
    seq.push_back(grid.newContainer("relax", [f, g](auto& l) mutable {
        auto in = l.load(g, Access::READ);
        auto out = l.load(f, Access::WRITE);
        return [=](const Cell& c) mutable { out(c) = 0.7 * out(c) + 0.3 * in(c); };
    }));
    return seq;
}

template <typename Grid>
struct Harness
{
    using Field = typename Grid::template FieldType<double>;

    Grid                        grid;
    Field                       f;
    Field                       g;
    std::vector<set::Container> seq;

    explicit Harness(set::Backend backend)
        : grid(GridMaker<Grid>::make(std::move(backend))),
          f(grid.template newField<double>("f", 1, 0.0)),
          g(grid.template newField<double>("g", 1, 0.0))
    {
        f.forEachActiveHost([](const index_3d& gc, int, double& v) {
            v = 0.01 * (gc.x + 2 * gc.y + 3 * gc.z) + 0.05;
        });
        f.updateDev();
        seq = makePipeline(grid, f, g);
    }
};

/// Dense global snapshot (inactive cells 0): decomposition-independent.
template <typename Field>
std::vector<double> snapshot(const Field& fld)
{
    const index_3d      dim = fld.grid().dim();
    std::vector<double> out(static_cast<size_t>(dim.size()), 0.0);
    fld.updateHost();
    fld.forEachActiveHost([&](const index_3d& gc, int, double& v) {
        out[static_cast<size_t>(
            (static_cast<int64_t>(gc.z) * dim.y + gc.y) * dim.x + gc.x)] = v;
    });
    return out;
}

inline void expectBitwiseEqual(const std::vector<double>& got,
                               const std::vector<double>& want, const char* what)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << what << ": diverged at flat index " << i;
    }
}

/// Move every unit device 0 can spare onto the last device — the most
/// aggressive legal re-slice.
template <typename Grid>
domain::PartitionPlan skewedPlan(const Grid& grid)
{
    domain::PartitionPlan plan = grid.currentPlan();
    const int64_t         give = plan.unitsPerDev.front() - grid.minUnitsPerDev();
    plan.unitsPerDev.front() -= give;
    plan.unitsPerDev.back() += give;
    return plan;
}

/// Final `f` of an unfaulted, unrepartitioned single-device run — the
/// reference trajectory every differential test compares against.
template <typename Grid>
std::vector<double> referenceRun(set::EngineKind kind, int steps)
{
    Harness<Grid>      ref(set::Backend::make(set::BackendSpec::cpu(1, kind)));
    skeleton::Skeleton skl(ref.grid.backend());
    auto               compiled =
        skl.sequence(ref.seq, skeleton::SequenceOptions().withName("ref"));
    for (int i = 0; i < steps; ++i) {
        compiled.run();
    }
    skl.sync();
    return snapshot(ref.f);
}

}  // namespace neon::repartition
