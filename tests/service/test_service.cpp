// Multi-tenant service battery (docs/service.md).
//
// Asserts the four contract properties of neon::service across both
// engines and host-pool widths:
//   1. isolation — every job's fields/scalars are bitwise equal to the
//      same job run solo on a fresh backend,
//   2. FIFO preserves per-tenant (and global) dispatch order,
//   3. fair-share bounds the damage a hog tenant does to a victim
//      tenant's latency relative to FIFO,
//   4. admission control rejects over-quota submissions with a fully
//      attributed RuntimeError (Kind::AdmissionRejected, jobId, tenant),
// plus batching (structurally identical jobs share one stream lease) and
// the serialized maxInFlight=1 baseline degenerating to solo behavior.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "service/traffic.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::service {

using set::Backend;

namespace {

/// Scoped NEON_THREADS override (read at Backend::make time).
struct EnvGuard
{
    const char* key;
    EnvGuard(const char* k, const std::string& v) : key(k) { ::setenv(k, v.c_str(), 1); }
    ~EnvGuard() { ::unsetenv(key); }
};

/// Oracle: the same JobDesc built and run alone on a fresh backend of the
/// same shape (device count drives partitioning, so it must match).
std::vector<double> soloRun(const JobDesc& desc, Backend::EngineKind kind, int nDev)
{
    Backend            bk = Backend::cpu(nDev, kind);
    BuiltJob           bj = buildJob(bk, desc);
    skeleton::Skeleton skl(bk);
    skl.sequence(bj.request.ops, bj.request.options);
    for (int r = 0; r < bj.request.runs; ++r) {
        skl.run();
    }
    skl.sync();
    return snapshot(bj);
}

void expectBitwise(const std::vector<double>& got, const std::vector<double>& want,
                   const std::string& what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << what << ": diverged at flat index " << i;
    }
}

struct Matrix
{
    Backend::EngineKind kind;
    int                 threads;
    std::string         label;
};

std::vector<Matrix> matrix()
{
    return {
        {Backend::EngineKind::Sequential, 1, "sequential/threads=1"},
        {Backend::EngineKind::Sequential, 8, "sequential/threads=8"},
        {Backend::EngineKind::Threaded, 1, "threaded/threads=1"},
        {Backend::EngineKind::Threaded, 8, "threaded/threads=8"},
    };
}

}  // namespace

// Property 1: concurrent execution on the shared backend never leaks
// between jobs — every result is bitwise the solo result.
TEST(Service, IsolationBitwiseEqualToSoloRuns)
{
    const auto trace = makeTrace(TrafficSpec().withSeed(11).withJobs(18).withTenants(3));
    for (const auto& m : matrix()) {
        SCOPED_TRACE(m.label);
        EnvGuard guard("NEON_THREADS", std::to_string(m.threads));
        const int nDev = 2;
        Backend   bk = Backend::cpu(nDev, m.kind);
        Service   svc(bk, ServiceConfig().withMaxInFlight(4).withBatching(true, 3));

        std::vector<BuiltJob> built;
        std::vector<Job>      jobs;
        built.reserve(trace.size());
        for (const auto& d : trace) {
            built.push_back(buildJob(bk, d));
            jobs.push_back(svc.submit(std::move(built.back().request)));
        }
        svc.drain();

        ASSERT_EQ(svc.completedCount(), static_cast<int>(trace.size())) << m.label;
        ASSERT_EQ(svc.failedCount(), 0);
        for (size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE(built[i].desc.toString());
            ASSERT_EQ(jobs[i].state(), JobState::Completed);
            jobs[i].rethrowIfFailed();
            EXPECT_GE(jobs[i].latency(), 0.0);
            EXPECT_GE(jobs[i].queueDelay(), 0.0);
            expectBitwise(snapshot(built[i]), soloRun(built[i].desc, m.kind, nDev),
                          "job " + std::to_string(jobs[i].id()));
        }
    }
}

// Property 2: FIFO dispatches in submission order — globally (equal
// arrivals) and therefore per tenant.
TEST(Service, FifoPreservesPerTenantSubmissionOrder)
{
    auto trace = makeTrace(TrafficSpec().withSeed(23).withJobs(16).withTenants(4));
    for (auto& d : trace) {
        d.arrival = 0.0;  // all-at-once burst: order must come from policy
    }
    for (const auto& m : matrix()) {
        SCOPED_TRACE(m.label);
        EnvGuard guard("NEON_THREADS", std::to_string(m.threads));
        Backend  bk = Backend::cpu(2, m.kind);
        Service  svc(bk, ServiceConfig().withPolicy(Policy::Fifo).withMaxInFlight(2));

        std::vector<Job> jobs;
        for (const auto& d : trace) {
            auto bj = buildJob(bk, d);
            jobs.push_back(svc.submit(std::move(bj.request)));
        }
        svc.drain();

        std::map<std::string, int> lastSeq;
        for (size_t i = 0; i < jobs.size(); ++i) {
            ASSERT_EQ(jobs[i].state(), JobState::Completed);
            if (i > 0) {
                EXPECT_LT(jobs[i - 1].startSeq(), jobs[i].startSeq())
                    << "global FIFO order broken at submission " << i;
            }
            auto it = lastSeq.find(jobs[i].tenant());
            if (it != lastSeq.end()) {
                EXPECT_LT(it->second, jobs[i].startSeq())
                    << "tenant " << jobs[i].tenant() << " dispatch order broken";
            }
            lastSeq[jobs[i].tenant()] = jobs[i].startSeq();
        }
    }
}

// Property 3: under a hog tenant flooding the queue, fair-share bounds the
// victim tenant's worst latency strictly below what FIFO gives it.
TEST(Service, FairShareBoundsVictimLatencyUnderHogTenant)
{
    auto runPolicy = [](Policy policy) {
        Backend bk = Backend::simGpu(2);  // non-zero cost model: latencies discriminate
        Service svc(bk,
                    ServiceConfig().withPolicy(policy).withMaxInFlight(2).withBatching(false));
        const auto trace = makeTrace(TrafficSpec().withSeed(7).withJobs(16).withTenants(1));
        std::vector<Job> victims;
        for (int i = 0; i < 12; ++i) {  // hog burst first
            auto d = trace[static_cast<size_t>(i)];
            d.tenant = "hog";
            d.arrival = 0.0;
            auto bj = buildJob(bk, d);
            svc.submit(std::move(bj.request));
        }
        for (int i = 12; i < 16; ++i) {  // victim jobs submitted after the burst
            auto d = trace[static_cast<size_t>(i)];
            d.tenant = "victim";
            d.arrival = 0.0;
            auto bj = buildJob(bk, d);
            victims.push_back(svc.submit(std::move(bj.request)));
        }
        svc.drain();
        double worst = 0.0;
        for (auto& v : victims) {
            EXPECT_EQ(v.state(), JobState::Completed);
            worst = std::max(worst, v.latency());
        }
        return worst;
    };
    const double fifoWorst = runPolicy(Policy::Fifo);
    const double fairWorst = runPolicy(Policy::FairShare);
    EXPECT_LT(fairWorst, fifoWorst)
        << "fair-share must bound the victim tenant's worst latency below FIFO";
}

// Property 4: per-tenant quota rejects with full attribution, does not
// enqueue the rejected request, and frees up after a drain.
TEST(Service, QuotaRejectsOverQuotaSubmissionsWithAttribution)
{
    for (const auto& m : matrix()) {
        SCOPED_TRACE(m.label);
        EnvGuard guard("NEON_THREADS", std::to_string(m.threads));
        // Non-zero cost model: in-flight jobs take virtual time to finish,
        // so the quota actually binds (zero-cost jobs retire instantly).
        Backend bk = Backend::simGpu(1, sys::SimConfig::dgxA100Like(), m.kind);
        Service svc(bk, ServiceConfig().withMaxInFlight(1).withTenantQuota(2));

        const auto trace = makeTrace(TrafficSpec().withSeed(3).withJobs(4).withTenants(1));
        auto       submitAs = [&](int i, const std::string& tenant) {
            auto d = trace[static_cast<size_t>(i)];
            d.tenant = tenant;
            d.arrival = 0.0;
            auto bj = buildJob(bk, d);
            return svc.submit(std::move(bj.request));
        };

        submitAs(0, "hog");
        submitAs(1, "hog");
        bool rejected = false;
        try {
            submitAs(2, "hog");
        } catch (const RuntimeError& e) {
            rejected = true;
            EXPECT_EQ(e.info.kind, RuntimeError::Kind::AdmissionRejected);
            EXPECT_EQ(e.info.tenant, "hog");
            EXPECT_GE(e.info.jobId, 0);
            EXPECT_NE(std::string(e.what()).find("admission rejected"), std::string::npos);
            EXPECT_NE(std::string(e.what()).find("tenant 'hog'"), std::string::npos);
        }
        EXPECT_TRUE(rejected) << "third over-quota submission must be refused";
        // Another tenant is unaffected by hog's quota.
        const Job other = submitAs(3, "polite");
        EXPECT_EQ(static_cast<int>(svc.jobs().size()), 3);
        svc.drain();
        EXPECT_EQ(other.state(), JobState::Completed);
        // Quota is over active jobs: after the drain the tenant may submit again.
        const Job retry = submitAs(2, "hog");
        svc.drain();
        EXPECT_EQ(retry.state(), JobState::Completed);
        EXPECT_EQ(svc.failedCount(), 0);
    }
}

// Structurally identical concurrent jobs share one stream lease (batching)
// and still compute solo-identical results.
TEST(Service, BatchingGroupsStructurallyIdenticalJobs)
{
    auto trace = makeTrace(TrafficSpec().withSeed(5).withJobs(6).withTenants(2));
    for (auto& d : trace) {  // force one structural class, single burst
        d.kind = WorkloadKind::Lbm;
        d.dim = index_3d{4, 4, 8};
        d.arrival = 0.0;
        d.runs = 1;
    }
    for (bool batching : {true, false}) {
        // Non-zero cost + a small lease cap: the burst queues up behind the
        // first two dispatch groups, so later dispatches see batchable
        // siblings waiting in the queue.
        Backend bk = Backend::simGpu(2);
        Service svc(bk, ServiceConfig().withMaxInFlight(2).withBatching(batching, 3));
        std::vector<BuiltJob> built;
        std::vector<Job>      jobs;
        for (const auto& d : trace) {
            built.push_back(buildJob(bk, d));
            jobs.push_back(svc.submit(std::move(built.back().request)));
        }
        svc.drain();
        if (batching) {
            EXPECT_GE(svc.batchCount(), 1) << "identical burst must form a batch";
            int batchedJobs = 0;
            for (auto& j : jobs) {
                batchedJobs += j.batched() ? 1 : 0;
            }
            EXPECT_GE(batchedJobs, 2);
        } else {
            EXPECT_EQ(svc.batchCount(), 0);
        }
        for (size_t i = 0; i < jobs.size(); ++i) {
            ASSERT_EQ(jobs[i].state(), JobState::Completed);
            expectBitwise(snapshot(built[i]),
                          soloRun(built[i].desc, Backend::EngineKind::Sequential, 2),
                          std::string("batching=") + (batching ? "on" : "off") + " job " +
                              std::to_string(jobs[i].id()));
        }
    }
}

// maxInFlight=1 is the serialized baseline: still correct, zero overlap.
TEST(Service, SerializedBaselineMatchesSoloAndNeverOverlaps)
{
    const auto trace = makeTrace(TrafficSpec().withSeed(13).withJobs(8).withTenants(2));
    Backend    bk = Backend::simGpu(2);
    Service    svc(bk, ServiceConfig().withMaxInFlight(1).withBatching(false));
    std::vector<BuiltJob> built;
    std::vector<Job>      jobs;
    for (const auto& d : trace) {
        built.push_back(buildJob(bk, d));
        jobs.push_back(svc.submit(std::move(built.back().request)));
    }
    svc.drain();
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_EQ(jobs[i].state(), JobState::Completed);
        if (i > 0) {
            // serialized: job i never starts before job i-1 completed
            EXPECT_GE(jobs[i].start(), jobs[i - 1].completion());
        }
    }
}

// Per-job ExecutionReports come from the jobId-stamped trace rows: each
// job sees only its own ops, and utilization is attributable per job.
TEST(Service, PerJobReportsAreAttributedViaTrace)
{
    auto trace = makeTrace(TrafficSpec().withSeed(17).withJobs(4).withTenants(2));
    Backend bk = Backend::simGpu(2);
    bk.profiler().enable();
    Service               svc(bk, ServiceConfig().withMaxInFlight(2));
    std::vector<Job>      jobs;
    for (const auto& d : trace) {
        auto bj = buildJob(bk, d);
        jobs.push_back(svc.submit(std::move(bj.request)));
    }
    svc.drain();
    for (auto& j : jobs) {
        ASSERT_EQ(j.state(), JobState::Completed);
        const auto rep = j.report();
        EXPECT_GT(rep.toJson().size(), 2u);
        const auto lint = j.validate();
        EXPECT_TRUE(lint.clean()) << lint.toString();
    }
    // jobId-stamped rows partition: sum of per-job kernel rows == total.
    auto&  tr = bk.profiler().trace();
    size_t perJob = 0;
    for (auto& j : jobs) {
        perJob += tr.entriesForJob(j.id()).size();
    }
    size_t stamped = 0;
    for (const auto& e : tr.entries()) {
        stamped += e.jobId >= 0 ? 1 : 0;
    }
    EXPECT_EQ(perJob, stamped);
    EXPECT_GT(perJob, 0u);
}

}  // namespace neon::service
