// Recovery fuzz axis (docs/robustness.md, "Self-healing recovery").
//
// Each seed derives a random recovery scenario — grid shape, device count
// (2-4), map/stencil pipeline, host-pool width, engine, a random
// PermanentDeviceLoss plan (one loss, sometimes two) and a random
// repartition point — drives it through SelfHealingRunner, and asserts:
//   1. the survivor-resumed final state is bitwise-equal to an unfaulted
//      single-device run of the same length,
//   2. Skeleton::validate() is clean after every rebuild (the repartition
//      rebuild and each post-recovery recompile),
//   3. the happens-before race detector is clean on the survivor backend,
//   4. at least one recovery actually happened.
//
// The battery runs 4 shards x 12 seeds; CI's robustness leg reduces the
// per-shard count via NEON_FUZZ_RECOVERY_SEEDS. Reproduce one seed with
//
//   NEON_FUZZ_SEED=<n> ./test_recovery_fuzz
//
// which makes every shard run exactly that seed (and only that seed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "repartition/self_healing.hpp"
#include "skeleton/skeleton.hpp"
#include "sys/fault.hpp"

namespace neon::repartition {

using set::Backend;
using set::BackendSpec;
using set::Container;
using set::EngineKind;

namespace {

constexpr unsigned kSeedBase = 52000;
constexpr int      kShards = 4;
constexpr int      kDefaultSeedsPerShard = 12;

int seedsPerShard()
{
    const char* env = std::getenv("NEON_FUZZ_RECOVERY_SEEDS");
    if (env == nullptr || *env == '\0') {
        return kDefaultSeedsPerShard;
    }
    const int n = static_cast<int>(std::strtol(env, nullptr, 10));
    return n > 0 ? n : kDefaultSeedsPerShard;
}

/// Everything one seed decides, derived up front so the faulted execution
/// and the single-device reference build the exact same pipeline.
struct RecoveryCase
{
    index_3d   dim{0, 0, 0};
    int        nDev = 2;
    int        nFields = 2;
    int        steps = 4;
    int        hostThreads = 1;
    EngineKind engine = EngineKind::Sequential;

    int faultDevice = 0;  ///< first loss (old numbering)
    int faultRun = 1;     ///< step at which the first loss fires
    int secondFaultDevice = -1;  ///< -1: single-loss plan
    int secondFaultRun = -1;

    int repartitionAt = -1;  ///< step boundary for the random rebalance
    std::vector<double> weights;  ///< rebalance weights (resized on use)

    struct OpDesc
    {
        int op = 0;  ///< 0 map, 1 stencil
        int a = 0;
        int b = 0;
    };
    std::vector<OpDesc> ops;

    explicit RecoveryCase(unsigned seed)
    {
        std::mt19937 rng(seed * 2654435761u + 101u);
        auto         pick = [&rng](int lo, int hi) {
            return lo + static_cast<int>(rng() % static_cast<unsigned>(hi - lo + 1));
        };
        nDev = pick(2, 4);
        dim = index_3d{pick(3, 6), pick(3, 6), pick(3 * nDev, 20)};
        nFields = pick(2, 3);
        steps = pick(4, 8);
        constexpr int kThreadAxis[] = {1, 2, 8};
        hostThreads = kThreadAxis[pick(0, 2)];
        engine = pick(0, 1) == 0 ? EngineKind::Sequential : EngineKind::Threaded;

        faultDevice = pick(0, nDev - 1);
        faultRun = pick(1, steps - 1);
        if (nDev >= 3 && pick(0, 2) == 0) {  // every ~3rd seed: a second loss
            secondFaultDevice = (faultDevice + pick(1, nDev - 1)) % nDev;
            secondFaultRun = pick(faultRun + 1, steps);
        }
        repartitionAt = pick(0, 1) == 0 ? pick(1, steps - 1) : -1;
        for (int d = 0; d < 4; ++d) {
            weights.push_back(0.25 * pick(1, 8));
        }

        const int length = pick(2, 6);
        for (int k = 0; k < length; ++k) {
            OpDesc d;
            d.op = pick(0, 1);
            d.a = pick(0, nFields - 1);
            d.b = pick(0, nFields - 1);
            if (d.op == 1 && d.b == d.a) {
                d.b = (d.a + 1) % nFields;  // stencils must not write their input
            }
            ops.push_back(d);
        }
    }

    [[nodiscard]] std::string toString() const
    {
        static const char* kOpNames[] = {"map", "sten"};
        std::string out = "dim=" + std::to_string(dim.x) + "x" + std::to_string(dim.y) +
                          "x" + std::to_string(dim.z) + " nDev=" + std::to_string(nDev) +
                          " steps=" + std::to_string(steps) +
                          " hostThreads=" + std::to_string(hostThreads) +
                          " engine=" + (engine == EngineKind::Sequential ? "seq" : "thr") +
                          " loss=(d" + std::to_string(faultDevice) + "@r" +
                          std::to_string(faultRun) + ")";
        if (secondFaultDevice >= 0) {
            out += " loss2=(d" + std::to_string(secondFaultDevice) + "@r" +
                   std::to_string(secondFaultRun) + ")";
        }
        out += " repartitionAt=" + std::to_string(repartitionAt) + " ops=[";
        for (size_t i = 0; i < ops.size(); ++i) {
            out += std::string(i > 0 ? " " : "") + kOpNames[ops[i].op] + "(f" +
                   std::to_string(ops[i].a) + "->f" + std::to_string(ops[i].b) + ")";
        }
        return out + "]";
    }
};

struct Rig
{
    dgrid::DGrid                       grid;
    std::vector<dgrid::DField<double>> fields;
    std::vector<Container>             seq;

    Rig(const RecoveryCase& rc, Backend backend) : grid(backend, rc.dim, Stencil::laplace7())
    {
        for (int i = 0; i < rc.nFields; ++i) {
            auto f = grid.newField<double>("f" + std::to_string(i), 1, 0.0);
            f.forEachActiveHost([i](const index_3d& g, int, double& v) {
                v = 0.01 * (g.x + 2 * g.y + 3 * g.z) + 0.1 * i + 0.05;
            });
            f.updateDev();
            fields.push_back(std::move(f));
        }
        for (size_t k = 0; k < rc.ops.size(); ++k) {
            const auto&       d = rc.ops[k];
            auto              src = fields[static_cast<size_t>(d.a)];
            auto              dst = fields[static_cast<size_t>(d.b)];
            const std::string tag = std::to_string(k);
            if (d.op == 0) {  // map: dst = 0.9*dst + 0.3*src + 0.01
                seq.push_back(grid.newContainer("map" + tag, [src, dst](auto& l) mutable {
                    auto sp = l.load(src, Access::READ);
                    auto dp = l.load(dst, Access::WRITE);
                    return [=](const dgrid::DCell& c) mutable {
                        dp(c) = 0.9 * dp(c) + 0.3 * sp(c) + 0.01;
                    };
                }));
            } else {  // stencil: dst = src + 0.05 * laplacian(src)
                seq.push_back(grid.newContainer("sten" + tag, [src, dst](auto& l) mutable {
                    auto sp = l.load(src, Access::READ, Compute::STENCIL);
                    auto dp = l.load(dst, Access::WRITE);
                    return [=](const dgrid::DCell& c) mutable {
                        double acc = -6.0 * sp(c);
                        for (const auto& off : Stencil::laplace7().points()) {
                            acc += sp.nghVal(c, off);
                        }
                        dp(c) = sp(c) + 0.05 * acc;
                    };
                }));
            }
        }
    }

    [[nodiscard]] std::vector<double> snapshotAll()
    {
        std::vector<double> out;
        for (auto& f : fields) {
            f.updateHost();
            grid.dim().forEach([&](const index_3d& g) { out.push_back(f.hVal(g)); });
        }
        return out;
    }
};

std::vector<double> referenceRun(const RecoveryCase& rc)
{
    Rig ref(rc, Backend::make(BackendSpec::cpu(1, rc.engine)));
    skeleton::Skeleton skl(ref.grid.backend());
    auto compiled = skl.sequence(ref.seq, skeleton::SequenceOptions().withName("ref"));
    for (int i = 0; i < rc.steps; ++i) {
        compiled.run();
    }
    skl.sync();
    return ref.snapshotAll();
}

void runSeed(unsigned seed)
{
    const RecoveryCase rc(seed);
    SCOPED_TRACE("reproduce with: NEON_FUZZ_SEED=" + std::to_string(seed) + "  [" +
                 rc.toString() + "]");

    const std::vector<double> want = referenceRun(rc);

    BackendSpec spec = BackendSpec::cpu(rc.nDev, rc.engine).withHostThreads(rc.hostThreads);
    sys::FaultPlan plan(9000u + seed);
    plan.add(sys::FaultSpec::deviceLoss(rc.faultDevice, rc.faultRun));
    if (rc.secondFaultDevice >= 0) {
        plan.add(sys::FaultSpec::deviceLoss(rc.secondFaultDevice, rc.secondFaultRun));
    }
    spec.withFaults(std::move(plan));

    Rig rig(rc, Backend::make(spec));
    SelfHealingRunner<dgrid::DGrid> runner(rig.grid, rig.seq);
    for (auto& f : rig.fields) {
        runner.guardField(f);
    }

    size_t recoveries = 0;
    bool   analyzerArmed = false;
    for (int step = 0; step < rc.steps; ++step) {
        if (step == rc.repartitionAt && runner.grid().devCount() >= 1) {
            std::vector<double> w(rc.weights.begin(),
                                  rc.weights.begin() + runner.grid().devCount());
            runner.repartition(domain::PartitionPlan::fromWeights(
                runner.grid().partitionUnits(), w, runner.grid().minUnitsPerDev()));
            const auto lint = runner.skeleton().validate();
            ASSERT_TRUE(lint.clean()) << lint.toString();
        }
        const auto events = runner.run(step + 1);
        if (!events.empty()) {
            recoveries += events.size();
            // Every rebuild must lint clean; the race detector watches the
            // survivor backend from here on.
            const auto lint = runner.skeleton().validate();
            ASSERT_TRUE(lint.clean()) << lint.toString();
            runner.grid().backend().analysis().enable();
            analyzerArmed = true;
        }
    }
    ASSERT_GE(recoveries, 1u) << "fault plan never fired";
    runner.skeleton().sync();

    if (analyzerArmed) {
        const auto races = runner.grid().backend().analysis().raceReport();
        ASSERT_TRUE(races.clean()) << races.toString();
    }

    const std::vector<double> got = rig.snapshotAll();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "survivor resume diverged at flat index " << i
                                   << " (seed " << seed << ")";
    }
}

/// NEON_FUZZ_SEED=<n>: run exactly that seed (reproduction workflow).
bool pinnedSeed(unsigned* out)
{
    const char* env = std::getenv("NEON_FUZZ_SEED");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    *out = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return true;
}

}  // namespace

class RecoveryFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RecoveryFuzz, SurvivorResumeMatchesUnfaultedReference)
{
    unsigned pinned = 0;
    if (pinnedSeed(&pinned)) {
        if (GetParam() != 0) {
            GTEST_SKIP() << "NEON_FUZZ_SEED pins a single seed; shard 0 runs it";
        }
        runSeed(pinned);
        return;
    }
    const int      perShard = seedsPerShard();
    const unsigned first = kSeedBase + static_cast<unsigned>(GetParam() * perShard);
    for (unsigned s = first; s < first + static_cast<unsigned>(perShard); ++s) {
        runSeed(s);
        if (::testing::Test::HasFatalFailure()) {
            return;  // the SCOPED_TRACE above already printed the seed
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Battery, RecoveryFuzz, ::testing::Range(0, kShards),
                         [](const auto& info) {
                             return "shard" + std::to_string(info.param);
                         });

}  // namespace neon::repartition
