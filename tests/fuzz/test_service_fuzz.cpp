// Concurrent-jobs fuzz battery for neon::service (docs/service.md,
// docs/robustness.md).
//
// Each seed derives a random multi-tenant workload — traffic trace (job
// mix, tenants, Poisson arrivals), scheduling policy, in-flight cap,
// batching, device count, host-pool width, optional transient fault plan
// (PR-4 style, retries succeed) — and asserts, on BOTH engines:
//   1. isolation: every job's fields/scalars are bitwise equal to the
//      same JobDesc run solo on a fresh backend (concurrent scheduling,
//      batching and fault retries never leak between jobs),
//   2. every job completes (transient plans must not surface as
//      failures) and its compiled schedule lints clean (validate()),
//   3. dispatch respects admission (never more concurrent leases than
//      maxInFlight, observed via the job timeline).
//
// Reproduce a failing seed with NEON_FUZZ_SEED=<n> ./test_service_fuzz —
// every shard then runs exactly that seed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "service/traffic.hpp"
#include "skeleton/skeleton.hpp"
#include "sys/fault.hpp"

namespace neon::service {

using set::Backend;

namespace {

constexpr unsigned kSeedBase = 4000;
constexpr int      kShards = 6;
constexpr int      kSeedsPerShard = 8;

struct ServiceFuzzCase
{
    TrafficSpec   spec;
    ServiceConfig cfg;
    int           nDev = 1;
    int           hostThreads = 1;
    uint64_t      faultSeed = 0;  ///< 0 = no fault plan

    explicit ServiceFuzzCase(unsigned seed)
    {
        std::mt19937 rng(seed * 2654435761u + 41u);
        auto         pick = [&rng](int lo, int hi) {
            return lo + static_cast<int>(rng() % static_cast<unsigned>(hi - lo + 1));
        };
        spec = TrafficSpec()
                   .withSeed(seed)
                   .withJobs(pick(4, 8))
                   .withTenants(pick(1, 3))
                   .withMaxRuns(pick(1, 2))
                   .withMeanGap(pick(0, 1) == 0 ? 1.0e-5 : 5.0e-4);
        cfg = ServiceConfig()
                  .withPolicy(pick(0, 1) == 0 ? Policy::Fifo : Policy::FairShare)
                  .withMaxInFlight(pick(1, 3))
                  .withBatching(pick(0, 1) == 1, pick(2, 4));
        nDev = pick(1, 3);
        constexpr int kThreadAxis[] = {1, 2, 8};
        hostThreads = kThreadAxis[pick(0, 2)];
        if (pick(0, 1) == 1) {
            faultSeed = 88'000u + seed;
        }
    }

    [[nodiscard]] std::string toString() const
    {
        return "jobs=" + std::to_string(spec.jobs) + " tenants=" + std::to_string(spec.tenants) +
               " policy=" + to_string(cfg.policy) +
               " maxInFlight=" + std::to_string(cfg.maxInFlight) +
               " batching=" + std::to_string(cfg.batching ? cfg.maxBatch : 0) +
               " nDev=" + std::to_string(nDev) + " threads=" + std::to_string(hostThreads) +
               " faults=" + std::to_string(faultSeed != 0);
    }
};

std::vector<double> soloRun(const JobDesc& desc, int nDev)
{
    Backend            bk = Backend::cpu(nDev);
    BuiltJob           bj = buildJob(bk, desc);
    skeleton::Skeleton skl(bk);
    skl.sequence(bj.request.ops, bj.request.options);
    for (int r = 0; r < bj.request.runs; ++r) {
        skl.run();
    }
    skl.sync();
    return snapshot(bj);
}

void runSeed(unsigned seed)
{
    const ServiceFuzzCase fc(seed);
    SCOPED_TRACE("reproduce with: NEON_FUZZ_SEED=" + std::to_string(seed) + "  [" +
                 fc.toString() + "]");
    const auto trace = makeTrace(fc.spec);

    // One solo oracle per job (engine-independence of solo results is the
    // skeleton fuzz battery's property; here sequential suffices).
    std::vector<std::vector<double>> oracle;
    oracle.reserve(trace.size());
    for (const auto& d : trace) {
        oracle.push_back(soloRun(d, fc.nDev));
    }

    for (auto engine : {Backend::EngineKind::Sequential, Backend::EngineKind::Threaded}) {
        SCOPED_TRACE(set::to_string(engine));
        set::BackendSpec spec =
            set::BackendSpec::cpu(fc.nDev, engine).withHostThreads(fc.hostThreads);
        if (fc.faultSeed != 0) {
            // Transient transfers with one failed attempt: the retry layer
            // absorbs them, so results and job states must be unaffected.
            spec.withFaults(sys::FaultPlan(fc.faultSeed)
                                .add(sys::FaultSpec::transientTransfer(1).withProbability(0.3)));
        }
        Backend bk = Backend::make(spec);
        Service svc(bk, fc.cfg);

        std::vector<BuiltJob> built;
        std::vector<Job>      jobs;
        built.reserve(trace.size());
        for (const auto& d : trace) {
            built.push_back(buildJob(bk, d));
            jobs.push_back(svc.submit(std::move(built.back().request)));
        }
        svc.drain();

        ASSERT_EQ(svc.failedCount(), 0);
        ASSERT_EQ(svc.completedCount(), static_cast<int>(trace.size()));
        for (size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE(built[i].desc.toString());
            ASSERT_EQ(jobs[i].state(), JobState::Completed);
            jobs[i].rethrowIfFailed();
            const auto got = snapshot(built[i]);
            ASSERT_EQ(got.size(), oracle[i].size());
            for (size_t k = 0; k < got.size(); ++k) {
                ASSERT_EQ(got[k], oracle[i][k])
                    << "isolation violated at flat index " << k << " (seed " << seed << ")";
            }
            const auto lint = jobs[i].validate();
            ASSERT_TRUE(lint.clean()) << lint.toString();
            ASSERT_GE(jobs[i].latency(), 0.0);
        }
    }
}

/// NEON_FUZZ_SEED=<n>: run exactly that seed (reproduction workflow).
bool pinnedSeed(unsigned* out)
{
    const char* env = std::getenv("NEON_FUZZ_SEED");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    *out = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return true;
}

}  // namespace

class ServiceFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(ServiceFuzz, ConcurrentJobsIsolatedAndClean)
{
    unsigned pinned = 0;
    if (pinnedSeed(&pinned)) {
        if (GetParam() != 0) {
            GTEST_SKIP() << "NEON_FUZZ_SEED pins a single seed; shard 0 runs it";
        }
        runSeed(pinned);
        return;
    }
    const unsigned first = kSeedBase + static_cast<unsigned>(GetParam() * kSeedsPerShard);
    for (unsigned s = first; s < first + kSeedsPerShard; ++s) {
        runSeed(s);
        if (::testing::Test::HasFatalFailure()) {
            return;  // the SCOPED_TRACE above already printed the seed
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Battery, ServiceFuzz, ::testing::Range(0, kShards),
                         [](const auto& info) {
                             return "shard" + std::to_string(info.param);
                         });

}  // namespace neon::service
