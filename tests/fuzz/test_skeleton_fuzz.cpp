// Property-based skeleton fuzz battery (docs/robustness.md).
//
// Each seed derives a random skeleton — grid shape, field count, device
// count, map/stencil/reduce/scalar mix, OCC mode, stream cap, run count —
// and asserts five properties:
//   1. the Sequential and Threaded engines produce bitwise-identical
//      fields and scalars,
//   2. Skeleton::validate() (the schedule lint) is clean,
//   3. the happens-before race detector is clean,
//   4. a schedule-cache replay of the same structure is bitwise identical
//      to a full recompile and lints clean (docs/performance.md),
//   5. under a fixed-seed transient FaultPlan, the cached and recompiled
//      schedules fire the identical number of fault events (the fault
//      ordinals are a pure function of the schedule, so a replay that
//      reordered anything would change them).
//
// The battery runs 200 seeds, sharded 8 x 25 so ctest parallelizes it.
// On failure every assertion prints the seed; reproduce a single seed with
//
//   NEON_FUZZ_SEED=<n> ./test_skeleton_fuzz
//
// which makes every shard run exactly that seed (and only that seed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "dgrid/dfield.hpp"
#include "patterns/blas.hpp"
#include "skeleton/schedule_cache.hpp"
#include "skeleton/skeleton.hpp"
#include "sys/fault.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;
using set::GlobalScalar;

namespace {

constexpr unsigned kSeedBase = 1000;
constexpr int      kShards = 8;
constexpr int      kSeedsPerShard = 25;

/// Everything one seed decides, derived up front so both engine executions
/// build the exact same skeleton.
struct FuzzCase
{
    index_3d dim{0, 0, 0};
    int      nDev = 1;
    int      nFields = 2;
    int      maxStreams = 1;
    int      runs = 1;
    int      hostThreads = 1;  ///< host-pool width (NEON_THREADS overrides)
    Occ      occ = Occ::NONE;
    struct OpDesc
    {
        int op = 0;  ///< 0 map, 1 stencil, 2 dot-reduce, 3 scalar op
        int a = 0;
        int b = 0;
    };
    std::vector<OpDesc> ops;

    explicit FuzzCase(unsigned seed)
    {
        std::mt19937 rng(seed * 2654435761u + 17u);
        auto         pick = [&rng](int lo, int hi) {
            return lo + static_cast<int>(rng() % static_cast<unsigned>(hi - lo + 1));
        };
        dim = index_3d{pick(3, 8), pick(3, 7), pick(4, 16)};
        nDev = pick(1, 4);
        nFields = pick(2, 4);
        maxStreams = pick(1, 8);
        runs = pick(1, 3);
        constexpr int kThreadAxis[] = {1, 2, 3, 8};
        hostThreads = kThreadAxis[pick(0, 3)];
        constexpr Occ kOccs[] = {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY};
        occ = kOccs[pick(0, 3)];
        const int length = pick(3, 9);
        for (int k = 0; k < length; ++k) {
            OpDesc d;
            d.op = pick(0, 3);
            d.a = pick(0, nFields - 1);
            d.b = pick(0, nFields - 1);
            if (d.op == 1 && d.b == d.a) {
                d.b = (d.a + 1) % nFields;  // stencils must not write their input
            }
            ops.push_back(d);
        }
    }

    [[nodiscard]] std::string toString() const
    {
        static const char* kOpNames[] = {"map", "sten", "dot", "scal"};
        std::string out = "dim=" + std::to_string(dim.x) + "x" + std::to_string(dim.y) + "x" +
                          std::to_string(dim.z) + " nDev=" + std::to_string(nDev) +
                          " nFields=" + std::to_string(nFields) +
                          " maxStreams=" + std::to_string(maxStreams) +
                          " runs=" + std::to_string(runs) +
                          " hostThreads=" + std::to_string(hostThreads) +
                          " occ=" + neon::to_string(occ) +
                          " ops=[";
        for (size_t i = 0; i < ops.size(); ++i) {
            out += std::string(i > 0 ? " " : "") + kOpNames[ops[i].op] + "(f" +
                   std::to_string(ops[i].a) + "->f" + std::to_string(ops[i].b) + ")";
        }
        return out + "]";
    }
};

struct Snapshot
{
    std::vector<double> data;
    double              s0v = 0.0;
    double              s1v = 0.0;
    bool                cacheHit = false;
    int                 faultEvents = -1;
};

struct ExecMode
{
    bool useCache = false;       ///< consult/populate the schedule cache
    bool expectCacheHit = false;  ///< assert sequence() was a cache hit
    bool lint = false;            ///< assert validate() is clean
    uint64_t faultSeed = 0;       ///< != 0: fixed-seed transient FaultPlan
    bool sanitize = false;        ///< run instrumented; assert a clean diff
};

Snapshot execute(const FuzzCase& fc, Backend::EngineKind kind, const ExecMode& mode)
{
    set::BackendSpec spec = set::BackendSpec::cpu(fc.nDev, kind).withHostThreads(fc.hostThreads);
    Backend          backend = Backend::make(spec);
    auto    analyzer = backend.analysis();
    analyzer.enable();
    if (mode.faultSeed != 0) {
        backend.faults().setPlan(sys::FaultPlan(mode.faultSeed)
                                     .add(sys::FaultSpec::transientTransfer(1)
                                              .withProbability(0.4)));
        backend.profiler().enable();  // faultEvents() counts trace rows
    }

    dgrid::DGrid grid(backend, fc.dim, Stencil::laplace7());
    GlobalScalar<double> s0(grid.backend(), "s0", 0.3);
    GlobalScalar<double> s1(grid.backend(), "s1", 0.7);

    std::vector<dgrid::DField<double>> fields;
    for (int i = 0; i < fc.nFields; ++i) {
        auto f = grid.newField<double>("f" + std::to_string(i), 1, 0.0);
        f.forEachHost([i](const index_3d& g, int, double& v) {
            v = 0.01 * (g.x + 2 * g.y + 3 * g.z) + 0.1 * i + 0.05;
        });
        f.updateDev();
        fields.push_back(std::move(f));
    }

    std::vector<Container> seq;
    for (size_t k = 0; k < fc.ops.size(); ++k) {
        const auto&       d = fc.ops[k];
        auto              src = fields[static_cast<size_t>(d.a)];
        auto              dst = fields[static_cast<size_t>(d.b)];
        const std::string tag = std::to_string(k);
        switch (d.op) {
            case 0: {  // map: dst = 0.9*dst + s0*src + 0.01
                auto s = s0;
                seq.push_back(
                    grid.newContainer("map" + tag, [src, dst, s](auto& l) mutable {
                        auto sp = l.load(src, Access::READ);
                        auto dp = l.load(dst, Access::WRITE);
                        auto sv = l.load(s, Access::READ);
                        return [=](const dgrid::DCell& c) mutable {
                            dp(c) = 0.9 * dp(c) + sv() * sp(c) + 0.01;
                        };
                    }));
                break;
            }
            case 1: {  // stencil: dst = src + 0.05 * laplacian(src)
                seq.push_back(
                    grid.newContainer("sten" + tag, [src, dst](auto& l) mutable {
                        auto sp = l.load(src, Access::READ, Compute::STENCIL);
                        auto dp = l.load(dst, Access::WRITE);
                        return [=](const dgrid::DCell& c) mutable {
                            double acc = -6.0 * sp(c);
                            for (const auto& off : Stencil::laplace7().points()) {
                                acc += sp.nghVal(c, off);
                            }
                            dp(c) = sp(c) + 0.05 * acc;
                        };
                    }));
                break;
            }
            case 2: {  // reduce: s1 = src . dst
                seq.push_back(patterns::dot(grid, src, dst, s1, "dot" + tag));
                break;
            }
            case 3: {  // scalar: s0 = bounded mix of s0, s1
                auto x = s0;
                auto y = s1;
                seq.push_back(Container::scalarOp<double>(
                    "scal" + tag, grid.backend(), {x, y}, {x}, [x, y]() mutable {
                        x.set(0.5 * x.hostValue() +
                              y.hostValue() / (1.0 + std::abs(y.hostValue())));
                    }));
                break;
            }
            default: break;
        }
    }

    Skeleton               skl(grid.backend());
    const CompiledSchedule compiled = skl.sequence(seq, SequenceOptions()
                                                            .withName("fuzz")
                                                            .withOcc(fc.occ)
                                                            .withMaxStreams(fc.maxStreams)
                                                            .withCache(mode.useCache)
                                                            .withSanitize(mode.sanitize));
    if (mode.expectCacheHit) {
        EXPECT_TRUE(compiled.cacheHit()) << "expected a schedule-cache hit";
    }
    if (mode.lint) {
        const auto lint = skl.validate();
        EXPECT_TRUE(lint.clean()) << lint.toString();
    }
    if (mode.sanitize) {
        analysis::AccessSanitizer::reset();
    }
    for (int r = 0; r < fc.runs; ++r) {
        skl.run();
    }
    skl.sync();

    const auto races = analyzer.raceReport();
    EXPECT_TRUE(races.clean()) << races.toString();
    if (mode.sanitize) {
        const auto diff = analysis::AccessSanitizer::diff();
        EXPECT_TRUE(diff.clean()) << diff.toString();
        analysis::AccessSanitizer::reset();
    }

    Snapshot snap;
    for (auto& f : fields) {
        f.updateHost();
        fc.dim.forEach([&](const index_3d& g) { snap.data.push_back(f.hVal(g)); });
    }
    snap.s0v = s0.hostValue();
    snap.s1v = s1.hostValue();
    snap.cacheHit = compiled.cacheHit();
    if (mode.faultSeed != 0) {
        snap.faultEvents = backend.profiler().faultEvents();
    }
    return snap;
}

void expectBitwiseEqual(const Snapshot& a, const Snapshot& b, const char* what, unsigned seed)
{
    ASSERT_EQ(a.data.size(), b.data.size());
    for (size_t i = 0; i < a.data.size(); ++i) {
        ASSERT_EQ(a.data[i], b.data[i])
            << what << ": field value diverged at flat index " << i << " (seed " << seed << ")";
    }
    ASSERT_EQ(a.s0v, b.s0v) << what << ": scalar s0 diverged (seed " << seed << ")";
    ASSERT_EQ(a.s1v, b.s1v) << what << ": scalar s1 diverged (seed " << seed << ")";
}

void runSeed(unsigned seed)
{
    const FuzzCase fc(seed);
    SCOPED_TRACE("reproduce with: NEON_FUZZ_SEED=" + std::to_string(seed) + "  [" +
                 fc.toString() + "]");

    // Reference: sequential engine, full recompile (cache off).
    const Snapshot seqSnap =
        execute(fc, Backend::EngineKind::Sequential, ExecMode{false, false, true, 0});
    // Prime the schedule cache, then replay the recipe onto fresh fields;
    // the replayed schedule must lint clean and compute identical bits.
    const Snapshot primeSnap =
        execute(fc, Backend::EngineKind::Sequential, ExecMode{true, false, false, 0});
    const Snapshot replaySnap =
        execute(fc, Backend::EngineKind::Sequential, ExecMode{true, true, true, 0});
    // The threaded engine rides the same cache entry (engine kind is not
    // part of the structural key).
    const Snapshot thrSnap =
        execute(fc, Backend::EngineKind::Threaded, ExecMode{true, true, false, 0});

    // Bitwise equality: with a race-free schedule both engines — and both
    // compilation paths — perform the identical sequence of floating-point
    // operations per cell.
    expectBitwiseEqual(seqSnap, primeSnap, "compile(cache-on)", seed);
    expectBitwiseEqual(seqSnap, replaySnap, "cache replay", seed);
    expectBitwiseEqual(seqSnap, thrSnap, "threaded", seed);

    // Host-pool determinism: a different pool width must not change a bit
    // (the chunk partition is span-derived, never thread-derived). A set
    // NEON_THREADS collapses both runs to the same width — trivially equal.
    FuzzCase alt = fc;
    alt.hostThreads = fc.hostThreads == 1 ? 4 : 1;
    const Snapshot poolSnap =
        execute(alt, Backend::EngineKind::Threaded, ExecMode{true, true, false, 0});
    expectBitwiseEqual(seqSnap, poolSnap, "host-pool width", seed);

    // Sanitizer leg (every 4th seed: the instrumented trampolines roughly
    // double kernel cost): a sanitize-on run must report zero violations —
    // the generated kernels never stray from their declarations — and
    // produce bitwise-identical field state, on both engines.
    if (seed % 4 == 0) {
        ExecMode sanMode{true, true, false, 0};
        sanMode.sanitize = true;
        const Snapshot sanSeq = execute(fc, Backend::EngineKind::Sequential, sanMode);
        expectBitwiseEqual(seqSnap, sanSeq, "sanitize(sequential)", seed);
        const Snapshot sanThr = execute(fc, Backend::EngineKind::Threaded, sanMode);
        expectBitwiseEqual(seqSnap, sanThr, "sanitize(threaded)", seed);
    }

    // Fault-ordinal equality: decisions are a pure function of the plan
    // seed and each op's (device, stream, kind, per-stream ordinal, run),
    // so a faithful replay fires exactly the faults the recompile fires —
    // and transient transfer faults stay invisible to the data.
    if (fc.nDev > 1) {
        const uint64_t faultSeed = 77'000u + seed;
        const Snapshot faultOff = execute(fc, Backend::EngineKind::Sequential,
                                          ExecMode{false, false, false, faultSeed});
        const Snapshot faultOn = execute(fc, Backend::EngineKind::Sequential,
                                         ExecMode{true, true, false, faultSeed});
        ASSERT_EQ(faultOff.faultEvents, faultOn.faultEvents)
            << "fault ordinals diverged between recompile and cache replay (seed " << seed
            << ")";
        expectBitwiseEqual(seqSnap, faultOff, "faulted recompile", seed);
        expectBitwiseEqual(faultOff, faultOn, "faulted cache replay", seed);
    }
}

/// NEON_FUZZ_SEED=<n>: run exactly that seed (reproduction workflow).
bool pinnedSeed(unsigned* out)
{
    const char* env = std::getenv("NEON_FUZZ_SEED");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    *out = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return true;
}

}  // namespace

class SkeletonFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SkeletonFuzz, EnginesAgreeLintAndRacesClean)
{
    unsigned pinned = 0;
    if (pinnedSeed(&pinned)) {
        if (GetParam() != 0) {
            GTEST_SKIP() << "NEON_FUZZ_SEED pins a single seed; shard 0 runs it";
        }
        runSeed(pinned);
        return;
    }
    const unsigned first = kSeedBase + static_cast<unsigned>(GetParam() * kSeedsPerShard);
    for (unsigned s = first; s < first + kSeedsPerShard; ++s) {
        runSeed(s);
        if (::testing::Test::HasFatalFailure()) {
            return;  // the SCOPED_TRACE above already printed the seed
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Battery, SkeletonFuzz, ::testing::Range(0, kShards),
                         [](const auto& info) {
                             return "shard" + std::to_string(info.param);
                         });

}  // namespace neon::skeleton
