// Neon D3Q19 lid-driven cavity: physics sanity (mass conservation without
// lid, equilibrium preservation, flow development with lid), exact
// agreement with the native fused baseline, and multi-device / OCC / grid
// independence.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "lbm/cavity3d.hpp"
#include "lbm/native3d.hpp"

namespace neon::lbm {

using set::Backend;

namespace {

constexpr index_3d kDim{12, 12, 12};
constexpr double   kTau = 0.8;

dgrid::DGrid denseGrid(int nDev)
{
    return dgrid::DGrid(Backend::cpu(nDev), kDim, D3Q19::stencil());
}

}  // namespace

TEST(Cavity3d, RestStateStaysAtEquilibriumWithoutLid)
{
    CavityD3Q19<dgrid::DGrid> lbm(denseGrid(1), kTau, 0.0);
    lbm.run(4);
    lbm.sync();
    lbm.current().updateHost();
    const auto m = lbm.macroAt({6, 6, 6});
    EXPECT_NEAR(m.rho, 1.0, 1e-6);
    EXPECT_NEAR(m.u[0], 0.0, 1e-7);
    EXPECT_NEAR(m.u[1], 0.0, 1e-7);
    EXPECT_NEAR(m.u[2], 0.0, 1e-7);
}

TEST(Cavity3d, MassIsConservedWithoutLid)
{
    CavityD3Q19<dgrid::DGrid> lbm(denseGrid(2), kTau, 0.0);
    const double m0 = lbm.totalMass();
    lbm.run(10);
    const double m1 = lbm.totalMass();
    EXPECT_NEAR(m1, m0, m0 * 1e-6);
}

TEST(Cavity3d, MassIsConservedWithLid)
{
    // Half-way bounce-back adds momentum, not mass.
    CavityD3Q19<dgrid::DGrid> lbm(denseGrid(1), kTau, 0.05);
    const double m0 = lbm.totalMass();
    lbm.run(20);
    const double m1 = lbm.totalMass();
    EXPECT_NEAR(m1, m0, m0 * 1e-5);
}

TEST(Cavity3d, LidDrivesTheFlow)
{
    CavityD3Q19<dgrid::DGrid> lbm(denseGrid(1), kTau, 0.1);
    lbm.run(50);
    lbm.sync();
    lbm.current().updateHost();
    // Cell just below the lid moves along +x.
    const auto near = lbm.macroAt({6, 6, kDim.z - 2});
    EXPECT_GT(near.u[0], 1e-4);
    // Cavity centre is much slower than the lid.
    const auto centre = lbm.macroAt({6, 6, 6});
    EXPECT_LT(std::abs(centre.u[0]), 0.05);
}

TEST(Cavity3d, MatchesNativeFusedBaselineExactly)
{
    CavityD3Q19<dgrid::DGrid>          neon(denseGrid(1), kTau, 0.1);
    native::NativeCavityD3Q19<float>   ref(kDim, kTau, 0.1, native::Variant::Fused);
    neon.run(8);
    ref.run(8);
    neon.sync();
    neon.current().updateHost();
    kDim.forEach([&](const index_3d& g) {
        const auto a = neon.macroAt(g);
        const auto b = ref.macroAt(g);
        ASSERT_NEAR(a.rho, b.rho, 1e-5) << g.to_string();
        for (int d = 0; d < 3; ++d) {
            ASSERT_NEAR(a.u[static_cast<size_t>(d)], b.u[static_cast<size_t>(d)], 1e-5)
                << g.to_string();
        }
    });
}

struct CavityCase
{
    int nDev;
    Occ occ;
};

class Cavity3dSweep : public ::testing::TestWithParam<CavityCase>
{
};

TEST_P(Cavity3dSweep, DeviceCountAndOccDoNotChangePhysics)
{
    const auto [nDev, occ] = GetParam();
    CavityD3Q19<dgrid::DGrid> a(denseGrid(1), kTau, 0.1, Occ::NONE);
    CavityD3Q19<dgrid::DGrid> b(denseGrid(nDev), kTau, 0.1, occ);
    a.run(6);
    b.run(6);
    a.sync();
    b.sync();
    a.current().updateHost();
    b.current().updateHost();
    kDim.forEach([&](const index_3d& g) {
        for (int i = 0; i < D3Q19::Q; ++i) {
            ASSERT_NEAR(a.current().hVal(g, i), b.current().hVal(g, i), 1e-6)
                << g.to_string() << " i=" << i;
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Sweep, Cavity3dSweep,
                         ::testing::Values(CavityCase{2, Occ::NONE},
                                           CavityCase{2, Occ::STANDARD},
                                           CavityCase{3, Occ::STANDARD},
                                           CavityCase{4, Occ::TWO_WAY},
                                           CavityCase{8, Occ::STANDARD}),
                         [](const auto& info) {
                             return "dev" + std::to_string(info.param.nDev) + "_" +
                                    to_string(info.param.occ);
                         });

TEST(Cavity3d, SparseFullBoxMatchesDense)
{
    egrid::EGrid sparse(Backend::cpu(2), kDim, [](const index_3d&) { return true; },
                        D3Q19::stencil());
    CavityD3Q19<egrid::EGrid> a(sparse, kTau, 0.1);
    CavityD3Q19<dgrid::DGrid> b(denseGrid(1), kTau, 0.1);
    a.run(5);
    b.run(5);
    a.sync();
    b.sync();
    a.current().updateHost();
    b.current().updateHost();
    kDim.forEach([&](const index_3d& g) {
        ASSERT_NEAR(a.current().hVal(g, 5), b.current().hVal(g, 5), 1e-6) << g.to_string();
    });
}

TEST(Cavity3d, SparseSphericalDomainConservesMass)
{
    // Free-form domain (paper §I): fluid inside a sphere, bounce-back at
    // the curved wall served by the sparse grid's inactive neighbours.
    const index_3d dim{14, 14, 14};
    auto inSphere = [&](const index_3d& g) {
        const double dx = g.x - 6.5;
        const double dy = g.y - 6.5;
        const double dz = g.z - 6.5;
        return dx * dx + dy * dy + dz * dz < 6.0 * 6.0;
    };
    egrid::EGrid grid(Backend::cpu(2), dim, inSphere, D3Q19::stencil());
    EXPECT_LT(grid.activeCount(), dim.size());

    CavityD3Q19<egrid::EGrid> lbm(grid, kTau, 0.0);
    const double m0 = lbm.totalMass();
    lbm.run(10);
    const double m1 = lbm.totalMass();
    EXPECT_NEAR(m1, m0, m0 * 1e-5);

    // Rest fluid stays at rest even against the curved wall.
    lbm.current().updateHost();
    const auto m = lbm.macroAt({7, 7, 7});
    EXPECT_NEAR(m.u[0], 0.0, 1e-6);
    EXPECT_NEAR(m.u[2], 0.0, 1e-6);
}

TEST(Cavity3d, AoSLayoutMatchesSoA)
{
    CavityD3Q19<dgrid::DGrid> soa(denseGrid(2), kTau, 0.1, Occ::NONE,
                                  MemLayout::structOfArrays);
    CavityD3Q19<dgrid::DGrid> aos(denseGrid(2), kTau, 0.1, Occ::NONE,
                                  MemLayout::arrayOfStructs);
    soa.run(5);
    aos.run(5);
    soa.sync();
    aos.sync();
    soa.current().updateHost();
    aos.current().updateHost();
    kDim.forEach([&](const index_3d& g) {
        ASSERT_NEAR(soa.current().hVal(g, 7), aos.current().hVal(g, 7), 1e-7);
    });
}

}  // namespace neon::lbm
