// D2Q9 Karman vortex street: baseline equivalence, uniform-flow sanity,
// vortex shedding, multi-device independence.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "lbm/karman2d.hpp"

namespace neon::lbm {

using set::Backend;

namespace {

KarmanConfig smallConfig()
{
    KarmanConfig cfg;
    cfg.nx = 96;
    cfg.ny = 32;
    cfg.inflow = 0.05;
    cfg.reynolds = 120.0;
    return cfg;
}

dgrid::DGrid channelGrid(const KarmanConfig& cfg, int nDev)
{
    return dgrid::DGrid(Backend::cpu(nDev), {cfg.nx, 1, cfg.ny}, D2Q9::stencilXZ());
}

}  // namespace

TEST(Karman2d, NeonMatchesNativeBaseline)
{
    const auto cfg = smallConfig();
    KarmanD2Q9<dgrid::DGrid> neon(channelGrid(cfg, 1), cfg);
    NativeKarmanD2Q9<float>  ref(cfg);
    neon.run(30);
    ref.run(30);
    neon.sync();
    neon.current().updateHost();
    for (int32_t h = 0; h < cfg.ny; ++h) {
        for (int32_t x = 0; x < cfg.nx; ++x) {
            const auto a = neon.macroAt({x, 0, h});
            const auto b = ref.macroAt({x, h, 0});
            ASSERT_NEAR(a[0], b[0], 1e-4) << x << "," << h;
            ASSERT_NEAR(a[1], b[1], 1e-5) << x << "," << h;
            ASSERT_NEAR(a[2], b[2], 1e-5) << x << "," << h;
        }
    }
}

TEST(Karman2d, MultiDeviceMatchesSingle)
{
    const auto cfg = smallConfig();
    KarmanD2Q9<dgrid::DGrid> one(channelGrid(cfg, 1), cfg);
    KarmanD2Q9<dgrid::DGrid> four(channelGrid(cfg, 4), cfg, Occ::STANDARD);
    one.run(20);
    four.run(20);
    one.sync();
    four.sync();
    one.current().updateHost();
    four.current().updateHost();
    for (int32_t h = 0; h < cfg.ny; ++h) {
        for (int32_t x = 0; x < cfg.nx; x += 3) {
            for (int i = 0; i < D2Q9::Q; ++i) {
                ASSERT_NEAR(one.current().hVal({x, 0, h}, i), four.current().hVal({x, 0, h}, i),
                            1e-6);
            }
        }
    }
}

TEST(Karman2d, UniformFlowWithoutCylinder)
{
    // No obstacle, free-slip-less channel: with walls the profile develops,
    // but far from walls the speed stays near the inflow after few steps.
    KarmanConfig cfg = smallConfig();
    cfg.reynolds = 50.0;
    KarmanD2Q9<dgrid::DGrid> sim(channelGrid(cfg, 1), cfg);
    sim.run(10);
    sim.sync();
    sim.current().updateHost();
    const auto m = sim.macroAt({cfg.nx / 2, 0, cfg.ny / 2});
    EXPECT_NEAR(m[0], 1.0, 0.05);
    EXPECT_GT(m[1], 0.0);
}

TEST(Karman2d, WakeDevelopsBehindCylinder)
{
    const auto cfg = smallConfig();
    KarmanD2Q9<dgrid::DGrid> sim(channelGrid(cfg, 2), cfg);
    sim.run(400);
    sim.sync();
    sim.current().updateHost();
    // Downstream of the cylinder the flow is slower than the free stream
    // beside it (wake deficit).
    const int32_t cx = static_cast<int32_t>(cfg.cylinderX());
    const int32_t cy = static_cast<int32_t>(cfg.cylinderY());
    const auto    wake = sim.macroAt({cx + static_cast<int32_t>(2 * cfg.cylinderRadius()), 0, cy});
    const auto    side = sim.macroAt({cx, 0, 4});
    EXPECT_LT(wake[1], side[1]);
}

TEST(Karman2d, VortexSheddingProducesTransverseOscillation)
{
    // Run long enough for the Karman street to establish, then record the
    // transverse velocity at a probe: it must oscillate (sign changes).
    KarmanConfig cfg = smallConfig();
    cfg.nx = 128;
    cfg.ny = 48;
    cfg.inflow = 0.08;
    cfg.reynolds = 160.0;
    KarmanD2Q9<dgrid::DGrid> sim(channelGrid(cfg, 1), cfg);
    sim.run(1500);

    const index_3d probe{static_cast<int32_t>(cfg.cylinderX() + 4 * cfg.cylinderRadius()), 0,
                         static_cast<int32_t>(cfg.cylinderY())};
    int    signChanges = 0;
    double prev = 0.0;
    for (int s = 0; s < 40; ++s) {
        sim.run(25);
        sim.sync();
        sim.current().updateHost();
        const double uy = sim.macroAt(probe)[2];
        if (s > 5 && uy * prev < 0.0) {
            ++signChanges;
        }
        prev = uy;
    }
    EXPECT_GE(signChanges, 2) << "no vortex shedding detected";
}

}  // namespace neon::lbm
