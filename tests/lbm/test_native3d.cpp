// Native D3Q19 baselines: variant equivalences. Fused and TwoPopIdx are
// bit-identical by construction; the AA pattern is validated against the
// fused variant on a periodic domain (where halfway bounce-back does not
// interfere) and for mass conservation on the cavity.

#include <gtest/gtest.h>

#include "lbm/native3d.hpp"

namespace neon::lbm::native {

namespace {
constexpr index_3d kDim{10, 10, 10};
constexpr double   kTau = 0.7;
}  // namespace

TEST(NativeLbm, FusedAndIndexedAreBitIdentical)
{
    NativeCavityD3Q19<float> a(kDim, kTau, 0.08, Variant::Fused);
    NativeCavityD3Q19<float> b(kDim, kTau, 0.08, Variant::TwoPopIdx);
    a.run(6);
    b.run(6);
    kDim.forEach([&](const index_3d& g) {
        const auto ma = a.macroAt(g);
        const auto mb = b.macroAt(g);
        ASSERT_EQ(ma.rho, mb.rho) << g.to_string();
        ASSERT_EQ(ma.u[0], mb.u[0]);
        ASSERT_EQ(ma.u[2], mb.u[2]);
    });
}

TEST(NativeLbm, AAMatchesFusedOnPeriodicDomain)
{
    // A deterministic density perturbation gives streaming a non-trivial
    // state; the AA addressing must then reproduce the two-population
    // evolution exactly at even iteration counts.
    NativeCavityD3Q19<double> a(kDim, kTau, 0.0, Variant::Fused, Boundary::Periodic);
    NativeCavityD3Q19<double> b(kDim, kTau, 0.0, Variant::AA, Boundary::Periodic);
    a.perturbDensity(0.01);
    b.perturbDensity(0.01);
    a.run(4);
    b.run(4);
    kDim.forEach([&](const index_3d& g) {
        const auto ma = a.macroAt(g);
        const auto mb = b.macroAt(g);
        ASSERT_NEAR(ma.rho, mb.rho, 1e-12) << g.to_string();
        ASSERT_NEAR(ma.u[0], mb.u[0], 1e-12) << g.to_string();
        ASSERT_NEAR(ma.u[2], mb.u[2], 1e-12) << g.to_string();
    });
}

TEST(NativeLbm, AAConservesMassOnCavity)
{
    NativeCavityD3Q19<double> aa(kDim, kTau, 0.0, Variant::AA);
    const double m0 = aa.totalMass();
    aa.run(10);
    EXPECT_NEAR(aa.totalMass(), m0, m0 * 1e-12);
}

TEST(NativeLbm, AADevelopsLidFlow)
{
    NativeCavityD3Q19<double> aa(kDim, kTau, 0.1, Variant::AA);
    NativeCavityD3Q19<double> fused(kDim, kTau, 0.1, Variant::Fused);
    aa.run(40);
    fused.run(40);
    const auto ma = aa.macroAt({5, 5, kDim.z - 2});
    const auto mf = fused.macroAt({5, 5, kDim.z - 2});
    EXPECT_GT(ma.u[0], 1e-4);
    // AA and twoPop bounce-back differ at half-way walls by one time-step
    // of lag; the developed flow must still agree to a few percent.
    EXPECT_NEAR(ma.u[0], mf.u[0], std::abs(mf.u[0]) * 0.2 + 1e-4);
}

TEST(NativeLbm, MassConservedWithLid)
{
    NativeCavityD3Q19<double> fused(kDim, kTau, 0.1, Variant::Fused);
    const double m0 = fused.totalMass();
    fused.run(20);
    EXPECT_NEAR(fused.totalMass(), m0, m0 * 1e-10);
}

}  // namespace neon::lbm::native
