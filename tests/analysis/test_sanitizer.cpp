// Seeded-bug battery for the access-contract sanitizer (set/sanitize.hpp,
// analysis/sanitizer.hpp): every violation class fires from a kernel that
// actually commits the sin, with correct container/device attribution, and
// the clean variants of the same shapes produce empty diffs. Exercised
// through the skeleton (withSanitize / validate(Deep)), which is the same
// path NEON_SANITIZE=1 forces.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis_fixture.hpp"

namespace neon::analysis {

using set::Backend;
using set::Container;
using skeleton::SequenceOptions;
using skeleton::Skeleton;
using skeleton::ValidateMode;

namespace {

/// Run `seq` once with sanitizer trampolines and return the access diff.
AnalysisReport sanitizeRun(Rig& rig, std::vector<Container> seq,
                           const std::string& name = "san")
{
    AccessSanitizer::reset();
    Skeleton skl(rig.backend);
    skl.sequence(std::move(seq), SequenceOptions().withName(name).withSanitize());
    skl.run();
    skl.sync();
    return AccessSanitizer::diff();
}

bool hasViolationOn(const AnalysisReport& rep, ViolationKind kind,
                    const std::string& container)
{
    for (const auto& v : rep.violations) {
        if (v.kind == kind && v.containerA == container) {
            return true;
        }
    }
    return false;
}

}  // namespace

class SanitizerTest : public ::testing::Test
{
   protected:
    void SetUp() override { AccessSanitizer::reset(); }
    void TearDown() override { AccessSanitizer::reset(); }
};

// ---------------------------------------------------------------------------
// Clean paths: every access shape the battery below abuses, used correctly.
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, CleanPipelineAcrossDeviceCounts)
{
    for (int nDev : {1, 2, 3}) {
        Rig rig(Backend::cpu(nDev));
        const AnalysisReport rep = sanitizeRun(
            rig,
            {
                rig.fill("w0", rig.f0, 1.0),
                rig.stencil("sten", rig.f0, rig.f1),
                patterns::dot(rig.grid, rig.f0, rig.f1, rig.s, "dot"),
                rig.copy("cp", rig.f1, rig.f2),
            },
            "clean");
        EXPECT_TRUE(rep.clean()) << "nDev=" << nDev << "\n" << rep.toString();
        EXPECT_GT(rep.opsAnalyzed, 0u);
    }
}

TEST_F(SanitizerTest, SanitizedRunMatchesPlainRunState)
{
    // The instrumented trampolines must compute the same field state as the
    // plain ones.
    auto runOnce = [](bool sanitized) {
        Rig      rig(Backend::cpu(2));
        Skeleton skl(rig.backend);
        skl.sequence({rig.fill("w0", rig.f0, 1.0), rig.stencil("sten", rig.f0, rig.f1),
                      rig.add("add", rig.f0, rig.f1, rig.f2)},
                     SequenceOptions().withName("par").withSanitize(sanitized));
        skl.run();
        skl.sync();
        std::vector<double> out;
        rig.f2.forEachHost([&](const index_3d&, int, double& v) { out.push_back(v); });
        return out;
    };
    AccessSanitizer::reset();
    EXPECT_EQ(runOnce(false), runOnce(true));
}

// ---------------------------------------------------------------------------
// WriteViaReadAccess
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, DetectsWriteViaReadAccess)
{
    Rig  rig(Backend::cpu(2));
    auto bad = rig.grid.newContainer("sneakyWrite", [f = rig.f0](auto& l) mutable {
        auto p = l.load(f, Access::READ);
        return [=](const dgrid::DCell& c) mutable { p(c) = 7.0; };
    });
    const AnalysisReport rep = sanitizeRun(rig, {bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::WriteViaReadAccess, "sneakyWrite"))
        << rep.toString();
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::WriteViaReadAccess) {
            EXPECT_GE(v.device, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// UndeclaredStencil
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, DetectsUndeclaredStencil)
{
    Rig  rig(Backend::cpu(2));
    auto bad = rig.grid.newContainer("mapButNgh", [src = rig.f0, dst = rig.f1](auto& l) mutable {
        auto sp = l.load(src, Access::READ);  // declared MAP, used as stencil
        auto dp = l.load(dst, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { dp(c) = sp.nghVal(c, {0, 0, 1}); };
    });
    const AnalysisReport rep = sanitizeRun(rig, {rig.fill("w0", rig.f0, 1.0), bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::UndeclaredStencil, "mapButNgh"))
        << rep.toString();
}

// ---------------------------------------------------------------------------
// UndeclaredRead / UndeclaredWrite (loadUnchecked escape hatch)
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, DetectsUndeclaredReadThroughLoadUnchecked)
{
    Rig  rig(Backend::cpu(1));
    auto bad = rig.grid.newContainer("hiddenRead", [src = rig.f0, dst = rig.f1](auto& l) mutable {
        auto sp = l.loadUnchecked(src);  // no declaration at all
        auto dp = l.load(dst, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            dp(c) = static_cast<double>(sp(c));
        };
    });
    const AnalysisReport rep = sanitizeRun(rig, {bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::UndeclaredRead, "hiddenRead"))
        << rep.toString();
}

TEST_F(SanitizerTest, DetectsUndeclaredWriteThroughLoadUnchecked)
{
    Rig  rig(Backend::cpu(1));
    auto bad = rig.grid.newContainer("hiddenWrite", [src = rig.f0, dst = rig.f1](auto& l) mutable {
        auto sp = l.load(src, Access::READ);
        auto dp = l.loadUnchecked(dst);
        return [=](const dgrid::DCell& c) mutable { dp(c) = sp(c) + 1.0; };
    });
    const AnalysisReport rep = sanitizeRun(rig, {bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::UndeclaredWrite, "hiddenWrite"))
        << rep.toString();
}

// ---------------------------------------------------------------------------
// StencilRadiusExceeded
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, DetectsStencilRadiusExceeded)
{
    Rig  rig(Backend::cpu(1));  // laplace7 => halo radius 1
    auto bad = rig.grid.newContainer("wideStencil", [src = rig.f0, dst = rig.f1](auto& l) mutable {
        auto sp = l.load(src, Access::READ, Compute::STENCIL);
        auto dp = l.load(dst, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            // Reach two planes up, but only from a strictly interior cell so
            // the access stays inside allocated memory (grid depth 12).
            double v = sp(c);
            if (c.z == 5) {
                v = sp.nghVal(c, {0, 0, 2});
            }
            dp(c) = v;
        };
    });
    const AnalysisReport rep = sanitizeRun(rig, {rig.fill("w0", rig.f0, 1.0), bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::StencilRadiusExceeded, "wideStencil"))
        << rep.toString();
}

TEST_F(SanitizerTest, RadiusOneStencilIsClean)
{
    Rig                  rig(Backend::cpu(2));
    const AnalysisReport rep =
        sanitizeRun(rig, {rig.fill("w0", rig.f0, 1.0), rig.stencil("sten", rig.f0, rig.f1)});
    EXPECT_EQ(rep.count(ViolationKind::StencilRadiusExceeded), 0u) << rep.toString();
    EXPECT_TRUE(rep.clean()) << rep.toString();
}

// ---------------------------------------------------------------------------
// OutOfSpanWrite
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, DetectsOutOfSpanWrite)
{
    Rig  rig(Backend::cpu(1));
    auto bad = rig.grid.newContainer("strayWrite", [dst = rig.f0](auto& l) mutable {
        auto dp = l.load(dst, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            dp(c) = 1.0;
            if (c.z == 5) {
                // Write a halo plane the launch span does not cover (the
                // memory exists: radius-1 halo below z=0).
                dgrid::DCell stray{c.x, c.y, -1};
                dp(stray) = 2.0;
            }
        };
    });
    const AnalysisReport rep = sanitizeRun(rig, {bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::OutOfSpanWrite, "strayWrite"))
        << rep.toString();
}

// ---------------------------------------------------------------------------
// OverdeclaredAccess
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, DetectsOverdeclaredAccess)
{
    Rig  rig(Backend::cpu(2));
    auto bad = rig.grid.newContainer("hoarder", [a = rig.f0, b = rig.f1, d = rig.f2](auto& l) mutable {
        auto ap = l.load(a, Access::READ);
        auto bp = l.load(b, Access::READ);  // declared, never touched
        auto dp = l.load(d, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            (void)bp;
            dp(c) = ap(c);
        };
    });
    const AnalysisReport rep = sanitizeRun(rig, {rig.fill("w0", rig.f0, 1.0), bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::OverdeclaredAccess, "hoarder"))
        << rep.toString();
}

TEST_F(SanitizerTest, DetectsParsingOnlyPhantomDeclaration)
{
    // `if (l.isParsing()) l.load(...)` declares an access the execution-time
    // kernel can never perform: the classic way access lists drift.
    Rig  rig(Backend::cpu(1));
    auto bad = rig.grid.newContainer("phantom", [a = rig.f0, b = rig.f1, d = rig.f2](auto& l) mutable {
        auto ap = l.load(a, Access::READ);
        if (l.isParsing()) {
            l.load(b, Access::READ);
        }
        auto dp = l.load(d, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { dp(c) = ap(c); };
    });
    const AnalysisReport rep = sanitizeRun(rig, {rig.fill("w0", rig.f0, 1.0), bad});
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::OverdeclaredAccess, "phantom"))
        << rep.toString();
}

// ---------------------------------------------------------------------------
// validate(Deep) and reduce/scalar coverage
// ---------------------------------------------------------------------------

TEST_F(SanitizerTest, ValidateDeepMergesStaticAndSanitizerFindings)
{
    Rig  rig(Backend::cpu(2));
    auto bad = rig.grid.newContainer("sneakyWrite", [f = rig.f1](auto& l) mutable {
        auto p = l.load(f, Access::READ);
        return [=](const dgrid::DCell& c) mutable { p(c) = 3.0; };
    });
    Skeleton skl(rig.backend);
    skl.sequence({rig.fill("w0", rig.f1, 1.0), bad}, SequenceOptions().withName("deep"));
    EXPECT_TRUE(std::as_const(skl).validate().clean());  // static lint can't see it
    const AnalysisReport rep = skl.validate(ValidateMode::Deep);
    EXPECT_TRUE(hasViolationOn(rep, ViolationKind::WriteViaReadAccess, "sneakyWrite"))
        << rep.toString();
}

TEST_F(SanitizerTest, ValidateDeepCleanOnReducePipeline)
{
    Rig      rig(Backend::cpu(2));
    Skeleton skl(rig.backend);
    skl.sequence({rig.fill("w0", rig.f0, 2.0),
                  patterns::dot(rig.grid, rig.f0, rig.f0, rig.s, "dot")},
                 SequenceOptions().withName("reduce"));
    const AnalysisReport rep = skl.validate(ValidateMode::Deep);
    EXPECT_TRUE(rep.clean()) << rep.toString();
    // The deep pass really ran: the reduce result is live.
    EXPECT_NEAR(rig.s.hostValue(), 2.0 * 2.0 * 6 * 5 * 12, 1e-9);
}

}  // namespace neon::analysis
