// Regression tests for dead-node hygiene in skeleton::Graph: killNode must
// clear scheduling state so a dead node never contributes to level widths
// or stream counts, addEdge must reject dead endpoints, and the lint must
// flag the historical bug (state kept after death) when simulated.

#include <gtest/gtest.h>

#include "analysis_fixture.hpp"

namespace neon::analysis {

using set::Backend;
using set::Container;
using skeleton::EdgeKind;
using skeleton::Skeleton;

TEST(DeadNodes, KillNodeResetsSchedulingState)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "dead");
    const int halo = findHaloNode(skl.graph());
    ASSERT_GE(halo, 0);
    ASSERT_GE(skl.graph().node(halo).level, 0) << "halo node must have been scheduled";

    skl.debugMutateGraph([&](skeleton::Graph& g) { g.killNode(halo); });
    const skeleton::GraphNode& n = skl.graph().node(halo);
    EXPECT_FALSE(n.alive);
    EXPECT_EQ(n.level, -1);
    EXPECT_EQ(n.stream, -1);
    EXPECT_FALSE(n.needsEvent);
    EXPECT_EQ(skl.validate().count(ViolationKind::DeadNodeScheduled), 0u)
        << skl.validate().toString();
}

TEST(DeadNodes, AddEdgeToDeadNodeThrows)
{
    Rig                    rig(Backend::cpu(1));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.copy("r", rig.f0, rig.f1),
    };
    skeleton::Graph g = skeleton::buildGraph(seq, 1);
    g.killNode(0);
    EXPECT_THROW(g.addEdge(0, 1, EdgeKind::RaW), NeonException);
    EXPECT_THROW(g.addEdge(1, 0, EdgeKind::Hint), NeonException);
}

TEST(DeadNodes, LintFlagsDeadNodeWithScheduleState)
{
    Rig                    rig(Backend::cpu(1));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.copy("r", rig.f0, rig.f1),
    };
    skeleton::Graph g = skeleton::buildGraph(seq, 1);
    int             nStreams = 0;
    const auto      tasks = skeleton::scheduleGraph(g, 8, &nStreams);

    // Simulate the historical killNode bug: mark dead but keep the level /
    // stream assignment and the stale task-list entry.
    g.node(0).alive = false;
    g.removeEdges(0, 1);
    const AnalysisReport rep = lintSchedule(g, tasks, nStreams, 1);
    EXPECT_GE(rep.count(ViolationKind::DeadNodeScheduled), 1u) << rep.toString();
}

}  // namespace neon::analysis
