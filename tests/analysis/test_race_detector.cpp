// Happens-before race detector tests: clean pipelines stay clean on both
// engines (the log is engine-independent), and each seeded synchronization
// bug — dropped cross-stream wait, reverted backend-wide inter-run barrier,
// skipped halo update — is detected with correct attribution.

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis_fixture.hpp"

namespace neon::analysis {

using set::Backend;
using set::Container;
using skeleton::Options;
using skeleton::Skeleton;
using skeleton::Task;

namespace {

std::vector<Container> cleanSeq(Rig& rig)
{
    return {
        rig.fill("w0", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
        patterns::dot(rig.grid, rig.f0, rig.f1, rig.s, "dot"),
        rig.copy("cp", rig.f1, rig.f2),
    };
}

}  // namespace

TEST(RaceDetector, CleanOnBothEngines)
{
    for (auto engine : {Backend::EngineKind::Sequential, Backend::EngineKind::Threaded}) {
        for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::TWO_WAY}) {
            Rig  rig(Backend::cpu(3, engine));
            auto an = rig.backend.analysis();
            an.enable();
            Skeleton skl(rig.backend);
            skl.sequence(cleanSeq(rig), "clean", Options().withOcc(occ));
            for (int r = 0; r < 3; ++r) {
                skl.run();
            }
            skl.sync();
            const AnalysisReport rep = an.raceReport();
            EXPECT_TRUE(rep.clean()) << set::to_string(engine) << " occ=" << to_string(occ)
                                     << "\n" << rep.toString();
            EXPECT_GT(rep.opsAnalyzed, 0u);
        }
    }
}

TEST(RaceDetector, DetectsDroppedCrossStreamWait)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("wa", rig.f0, 1.0),
        rig.fill("wb", rig.f1, 2.0),
        rig.add("mix", rig.f0, rig.f1, rig.f2),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "dropped-wait");
    ASSERT_EQ(skl.streamCount(), 2);

    const int mix = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.container.name() == "mix";
    });
    ASSERT_GE(mix, 0);
    skl.debugMutateTasks([&](std::vector<Task>& tasks) {
        for (auto& t : tasks) {
            if (t.nodeId == mix) {
                t.waits.clear();
            }
        }
    });

    auto an = rig.backend.analysis();
    an.enable();
    skl.run();
    skl.sync();
    const AnalysisReport rep = an.raceReport();
    EXPECT_GE(rep.count(ViolationKind::Race), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::Race && (v.containerA == "mix" || v.containerB == "mix")) {
            attributed = true;
            EXPECT_GE(v.runB, 0);
            EXPECT_GE(v.device, 0);
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(RaceDetector, DetectsMissingInterRunBarrier)
{
    for (bool revert : {false, true}) {
        Rig rig(Backend::cpu(2));
        // Skeleton A writes on two parallel streams; skeleton B reads the
        // stream-1 write from its single stream. The backend-wide inter-run
        // barrier orders them; the historical per-skeleton barrier does not.
        std::vector<Container> seqA = {
            rig.fill("wa", rig.f0, 1.0),
            rig.fill("wb", rig.f1, 2.0),
        };
        std::vector<Container> seqB = {rig.copy("rb", rig.f1, rig.f2)};
        Skeleton               a(rig.backend);
        Skeleton               b(rig.backend);
        a.sequence(seqA, "a");
        b.sequence(seqB, "b");
        ASSERT_EQ(a.streamCount(), 2);
        if (revert) {
            a.debugUsePerSkeletonBarrier(true);
            b.debugUsePerSkeletonBarrier(true);
        }
        auto an = rig.backend.analysis();
        an.enable();
        a.run();
        b.run();
        a.sync();
        const AnalysisReport rep = an.raceReport();
        if (revert) {
            EXPECT_GE(rep.count(ViolationKind::Race), 1u)
                << "per-skeleton barrier must race\n" << rep.toString();
            bool attributed = false;
            for (const auto& v : rep.violations) {
                if (v.kind == ViolationKind::Race &&
                    ((v.containerA == "wb" && v.containerB == "rb") ||
                     (v.containerA == "rb" && v.containerB == "wb"))) {
                    attributed = true;
                }
            }
            EXPECT_TRUE(attributed) << rep.toString();
        } else {
            EXPECT_TRUE(rep.clean()) << rep.toString();
        }
    }
}

TEST(RaceDetector, DetectsSkippedHaloUpdateAtRuntime)
{
    Rig                    rig(Backend::cpu(3));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "halo");
    const int halo = findHaloNode(skl.graph());
    ASSERT_GE(halo, 0);
    skl.debugMutateGraph([&](skeleton::Graph& g) { g.killNode(halo); });

    auto an = rig.backend.analysis();
    an.enable();
    skl.run();
    skl.sync();
    const AnalysisReport rep = an.raceReport();
    EXPECT_GE(rep.count(ViolationKind::StaleHaloRead), 1u) << rep.toString();
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::StaleHaloRead) {
            EXPECT_EQ(v.containerB, "sten");
            EXPECT_GE(v.runB, 0);
        }
    }
}

TEST(RaceDetector, IncrementalDrainReportsFindingsOnce)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("wa", rig.f0, 1.0),
        rig.fill("wb", rig.f1, 2.0),
        rig.add("mix", rig.f0, rig.f1, rig.f2),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "drain");
    const int mix = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.container.name() == "mix";
    });
    ASSERT_GE(mix, 0);
    skl.debugMutateTasks([&](std::vector<Task>& tasks) {
        for (auto& t : tasks) {
            if (t.nodeId == mix) {
                t.waits.clear();
            }
        }
    });
    auto an = rig.backend.analysis();
    an.enable();
    skl.run();
    skl.sync();
    EXPECT_GE(an.drainRaces().count(ViolationKind::Race), 1u);
    EXPECT_TRUE(an.drainRaces().clean()) << "second drain must report nothing new";
}

// --- detector unit tests over synthetic logs ------------------------------

namespace {

sys::ContainerMetaMap twoWriters()
{
    sys::ContainerMeta w;
    w.label = "writerA";
    w.kind = sys::MetaNodeKind::Compute;
    w.pattern = Compute::MAP;
    w.accesses.push_back({7, Access::WRITE, Compute::MAP, false, false, "f"});
    sys::ContainerMeta w2 = w;
    w2.label = "writerB";
    sys::ContainerMetaMap meta;
    meta[0] = std::move(w);
    meta[1] = std::move(w2);
    return meta;
}

}  // namespace

TEST(RaceDetector, FlagsCrossStreamWaWWithoutEvent)
{
    const sys::ContainerMetaMap meta = twoWriters();
    RaceDetector                det(1);
    det.feed({0, 0, 0, sys::ScheduleOpKind::Kernel, 0, 0, 0}, &meta);
    det.feed({1, 0, 1, sys::ScheduleOpKind::Kernel, 0, 1, 0}, &meta);
    const AnalysisReport& rep = det.report();
    ASSERT_GE(rep.count(ViolationKind::Race), 1u) << rep.toString();
    EXPECT_NE(rep.violations[0].message.find("WaW"), std::string::npos);
    EXPECT_EQ(rep.violations[0].containerA, "writerA");
    EXPECT_EQ(rep.violations[0].containerB, "writerB");
}

TEST(RaceDetector, EventOrderingSuppressesWaW)
{
    const sys::ContainerMetaMap meta = twoWriters();
    RaceDetector                det(1);
    det.feed({0, 0, 0, sys::ScheduleOpKind::Kernel, 0, 0, 0}, &meta);
    det.feed({1, 0, 0, sys::ScheduleOpKind::Record, 42, -1, -1}, nullptr);
    det.feed({2, 0, 1, sys::ScheduleOpKind::Wait, 42, -1, -1}, nullptr);
    det.feed({3, 0, 1, sys::ScheduleOpKind::Kernel, 0, 1, 0}, &meta);
    EXPECT_TRUE(det.report().clean()) << det.report().toString();
}

TEST(RaceDetector, FlagsWaitEnqueuedBeforeRecord)
{
    RaceDetector det(1);
    det.feed({0, 0, 1, sys::ScheduleOpKind::Wait, 42, -1, -1}, nullptr);
    det.feed({1, 0, 0, sys::ScheduleOpKind::Record, 42, -1, -1}, nullptr);
    EXPECT_EQ(det.report().count(ViolationKind::WaitBeforeRecord), 1u)
        << det.report().toString();
}

TEST(AnalysisEnv, NeonEngineOverridesBackendSpec)
{
    ::setenv("NEON_ENGINE", "threaded", 1);
    const Backend b = Backend::cpu(2);
    ::unsetenv("NEON_ENGINE");
    EXPECT_EQ(b.engineKind(), Backend::EngineKind::Threaded);
    const Backend c = Backend::cpu(2);
    EXPECT_EQ(c.engineKind(), Backend::EngineKind::Sequential);
}

}  // namespace neon::analysis
