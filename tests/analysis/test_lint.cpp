// Negative-path tests for the dependency-graph lint: every violation class
// is seeded through the skeleton's fault-injection hooks and must be
// detected with correct attribution, while unmodified pipelines lint clean
// across device counts and OCC levels.

#include <gtest/gtest.h>

#include "analysis_fixture.hpp"
#include "analysis/node_meta.hpp"
#include "bgrid/bfield.hpp"
#include "bgrid/bgrid.hpp"

namespace neon::analysis {

using set::Backend;
using set::Container;
using skeleton::EdgeKind;
using skeleton::Options;
using skeleton::Skeleton;
using skeleton::Task;

namespace {

std::vector<Container> cleanSeq(Rig& rig)
{
    return {
        rig.fill("w0", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
        patterns::dot(rig.grid, rig.f0, rig.f1, rig.s, "dot"),
        rig.copy("cp", rig.f1, rig.f2),
    };
}

}  // namespace

TEST(GraphLint, CleanAcrossConfigurations)
{
    for (int nDev : {1, 2, 4}) {
        for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
            Rig      rig(Backend::cpu(nDev));
            Skeleton skl(rig.backend);
            skl.sequence(cleanSeq(rig), "clean", Options().withOcc(occ));
            const AnalysisReport rep = skl.validate();
            EXPECT_TRUE(rep.clean())
                << "nDev=" << nDev << " occ=" << to_string(occ) << "\n" << rep.toString();
            EXPECT_GT(rep.pairsChecked, 0u);
        }
    }
}

TEST(GraphLint, DetectsDeletedWaRDependency)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.copy("reader", rig.f0, rig.f1),  // reads f0
        rig.fill("writer", rig.f0, 2.0),     // writes f0 -> WaR reader->writer
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "war");
    ASSERT_TRUE(skl.validate().clean()) << skl.validate().toString();

    int from = -1;
    int to = -1;
    for (const auto& e : skl.graph().edges()) {
        if (e.kind == EdgeKind::WaR) {
            from = e.from;
            to = e.to;
            break;
        }
    }
    ASSERT_GE(from, 0) << "pipeline must contain a WaR edge";
    skl.debugMutateGraph([&](skeleton::Graph& g) { g.removeEdges(from, to); });

    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::MissingDependency), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind != ViolationKind::MissingDependency) {
            continue;
        }
        if ((v.nodeA == from && v.nodeB == to) || (v.nodeA == to && v.nodeB == from)) {
            attributed = true;
            EXPECT_FALSE(v.containerA.empty());
            EXPECT_FALSE(v.containerB.empty());
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(GraphLint, DetectsSkippedHaloUpdate)
{
    Rig                    rig(Backend::cpu(3));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "halo");
    ASSERT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const int halo = findHaloNode(skl.graph());
    ASSERT_GE(halo, 0);
    const int sten = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.container.name() == "sten";
    });
    ASSERT_GE(sten, 0);
    skl.debugMutateGraph([&](skeleton::Graph& g) { g.killNode(halo); });

    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::StaleHaloRead), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::StaleHaloRead && v.nodeB == sten &&
            v.containerB == "sten") {
            attributed = true;
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(GraphLint, DetectsSpuriousEdge)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("wa", rig.f0, 1.0),
        rig.fill("wb", rig.f1, 2.0),  // independent of wa
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "spurious");
    ASSERT_TRUE(skl.validate().clean());

    skl.debugMutateGraph([](skeleton::Graph& g) { g.addEdge(0, 1, EdgeKind::RaW); });
    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::SpuriousEdge), 1u) << rep.toString();
    EXPECT_GT(rep.edgesChecked, 0u);
}

TEST(GraphLint, DetectsTaskOrderInversion)
{
    Rig                    rig(Backend::cpu(1));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.copy("r", rig.f0, rig.f1),  // RaW w -> r
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "order");
    ASSERT_TRUE(skl.validate().clean());

    skl.debugMutateTasks([](std::vector<Task>& tasks) {
        ASSERT_EQ(tasks.size(), 2u);
        std::swap(tasks[0], tasks[1]);
    });
    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::LevelOrder), 1u) << rep.toString();
}

TEST(GraphLint, DetectsDroppedEventWait)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("wa", rig.f0, 1.0),
        rig.fill("wb", rig.f1, 2.0),
        rig.add("mix", rig.f0, rig.f1, rig.f2),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "wait");
    ASSERT_TRUE(skl.validate().clean()) << skl.validate().toString();
    ASSERT_EQ(skl.streamCount(), 2);  // wa/wb run on parallel streams

    const int mix = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.container.name() == "mix";
    });
    ASSERT_GE(mix, 0);
    skl.debugMutateTasks([&](std::vector<Task>& tasks) {
        for (auto& t : tasks) {
            if (t.nodeId == mix) {
                t.waits.clear();
            }
        }
    });
    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::MissingWait), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::MissingWait && v.nodeB == mix) {
            attributed = true;
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(GraphLint, DetectsCycle)
{
    Rig                    rig(Backend::cpu(1));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.copy("r", rig.f0, rig.f1),
    };
    skeleton::Graph g = skeleton::buildGraph(seq, 1);
    g.addEdge(1, 0, EdgeKind::WaW);  // close the loop: r -> w
    const AnalysisReport rep = lintGraph(g, 1);
    EXPECT_EQ(rep.count(ViolationKind::GraphCycle), 1u) << rep.toString();
}

namespace {

/// in -> out one-point z-stencil on a BGrid plus a writer seeding `in`.
std::vector<Container> bgridStencilSeq(bgrid::BGrid& grid, bgrid::BField<double>& in,
                                       bgrid::BField<double>& out)
{
    auto fill = grid.newContainer("fill", [in](auto& l) mutable {
        auto p = l.load(in, Access::WRITE);
        return [=](const auto& c) mutable { p(c) = 1.0; };
    });
    auto sten = grid.newContainer("sten", [in, out](auto& l) mutable {
        auto sp = l.load(in, Access::READ, Compute::STENCIL);
        auto dp = l.load(out, Access::WRITE);
        return [=](const auto& c) mutable { dp(c) = sp.nghVal(c, {0, 0, 1}); };
    });
    return {fill, sten};
}

}  // namespace

TEST(GraphLint, SparseBGridWithEmptyBoundaryClaimsNoHaloSegments)
{
    // Two active slabs separated by a dead middle: the device cut lands in
    // the inactive region, so no halo segment has any cells and peers() is
    // empty everywhere. The access model must not claim halo reads the
    // hardware never performs (that over-approximation previously pinned
    // spurious halo<->compute conflicts on every sparse multi-dev graph).
    set::Backend backend = set::Backend::cpu(2);
    bgrid::BGrid grid(
        backend, {8, 8, 32},
        [](const index_3d& g) { return g.z < 4 || g.z >= 28; }, Stencil::laplace7(), 4);
    auto in = grid.newField<double>("in", 1, 0.0);
    auto out = grid.newField<double>("out", 1, 0.0);

    skeleton::Skeleton skl(backend);
    skl.sequence(bgridStencilSeq(grid, in, out), "sparse");
    EXPECT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const skeleton::Graph& g = skl.graph();
    const int              haloId = findHaloNode(g);
    ASSERT_GE(haloId, 0);
    const sys::ContainerMeta hm = metaFor(g.node(haloId), 2);
    ASSERT_EQ(hm.haloPeers.size(), 2u);
    EXPECT_TRUE(hm.haloPeers[0].empty());
    EXPECT_TRUE(hm.haloPeers[1].empty());
    for (int dev = 0; dev < 2; ++dev) {
        const AccessSets hs = segmentsFor(hm, dev, 2);
        EXPECT_TRUE(hs.reads.empty()) << "halo node dev " << dev;
        EXPECT_TRUE(hs.writes.empty()) << "halo node dev " << dev;
    }

    const int stenId = findNode(g, [](const skeleton::GraphNode& n) {
        return n.kind() == set::Container::Kind::Compute &&
               n.label().find("sten") != std::string::npos;
    });
    ASSERT_GE(stenId, 0);
    const sys::ContainerMeta cm = metaFor(g.node(stenId), 2);
    for (int dev = 0; dev < 2; ++dev) {
        for (const Segment& s : segmentsFor(cm, dev, 2).reads) {
            EXPECT_NE(s.part, Part::HaloLo) << "dev " << dev;
            EXPECT_NE(s.part, Part::HaloHi) << "dev " << dev;
        }
    }
}

TEST(GraphLint, DenseBGridClaimsOnlyFedHaloHalves)
{
    // Fully active grid: each device has exactly one neighbour, so the edge
    // devices claim one halo half each — not both (the dense over-claim the
    // per-device feed tracking replaces).
    set::Backend backend = set::Backend::cpu(2);
    bgrid::BGrid grid(
        backend, {8, 8, 16}, [](const index_3d&) { return true; }, Stencil::laplace7(), 4);
    auto in = grid.newField<double>("in", 1, 0.0);
    auto out = grid.newField<double>("out", 1, 0.0);

    skeleton::Skeleton skl(backend);
    skl.sequence(bgridStencilSeq(grid, in, out), "dense");
    EXPECT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const int stenId = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.kind() == set::Container::Kind::Compute &&
               n.label().find("sten") != std::string::npos;
    });
    ASSERT_GE(stenId, 0);
    const sys::ContainerMeta cm = metaFor(skl.graph().node(stenId), 2);

    auto claims = [&](int dev, Part part) {
        const AccessSets sets = segmentsFor(cm, dev, 2);
        return std::find_if(sets.reads.begin(), sets.reads.end(), [&](const Segment& s) {
                   return s.part == part && s.dev == dev;
               }) != sets.reads.end();
    };
    EXPECT_FALSE(claims(0, Part::HaloLo));  // nothing below device 0
    EXPECT_TRUE(claims(0, Part::HaloHi));   // fed by device 1
    EXPECT_TRUE(claims(1, Part::HaloLo));   // fed by device 0
    EXPECT_FALSE(claims(1, Part::HaloHi));  // nothing above device 1
}

}  // namespace neon::analysis
