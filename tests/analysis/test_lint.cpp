// Negative-path tests for the dependency-graph lint: every violation class
// is seeded through the skeleton's fault-injection hooks and must be
// detected with correct attribution, while unmodified pipelines lint clean
// across device counts and OCC levels.

#include <gtest/gtest.h>

#include "analysis_fixture.hpp"

namespace neon::analysis {

using set::Backend;
using set::Container;
using skeleton::EdgeKind;
using skeleton::Options;
using skeleton::Skeleton;
using skeleton::Task;

namespace {

std::vector<Container> cleanSeq(Rig& rig)
{
    return {
        rig.fill("w0", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
        patterns::dot(rig.grid, rig.f0, rig.f1, rig.s, "dot"),
        rig.copy("cp", rig.f1, rig.f2),
    };
}

}  // namespace

TEST(GraphLint, CleanAcrossConfigurations)
{
    for (int nDev : {1, 2, 4}) {
        for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
            Rig      rig(Backend::cpu(nDev));
            Skeleton skl(rig.backend);
            skl.sequence(cleanSeq(rig), "clean", Options().withOcc(occ));
            const AnalysisReport rep = skl.validate();
            EXPECT_TRUE(rep.clean())
                << "nDev=" << nDev << " occ=" << to_string(occ) << "\n" << rep.toString();
            EXPECT_GT(rep.pairsChecked, 0u);
        }
    }
}

TEST(GraphLint, DetectsDeletedWaRDependency)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.copy("reader", rig.f0, rig.f1),  // reads f0
        rig.fill("writer", rig.f0, 2.0),     // writes f0 -> WaR reader->writer
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "war");
    ASSERT_TRUE(skl.validate().clean()) << skl.validate().toString();

    int from = -1;
    int to = -1;
    for (const auto& e : skl.graph().edges()) {
        if (e.kind == EdgeKind::WaR) {
            from = e.from;
            to = e.to;
            break;
        }
    }
    ASSERT_GE(from, 0) << "pipeline must contain a WaR edge";
    skl.debugMutateGraph([&](skeleton::Graph& g) { g.removeEdges(from, to); });

    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::MissingDependency), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind != ViolationKind::MissingDependency) {
            continue;
        }
        if ((v.nodeA == from && v.nodeB == to) || (v.nodeA == to && v.nodeB == from)) {
            attributed = true;
            EXPECT_FALSE(v.containerA.empty());
            EXPECT_FALSE(v.containerB.empty());
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(GraphLint, DetectsSkippedHaloUpdate)
{
    Rig                    rig(Backend::cpu(3));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.stencil("sten", rig.f0, rig.f1),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "halo");
    ASSERT_TRUE(skl.validate().clean()) << skl.validate().toString();

    const int halo = findHaloNode(skl.graph());
    ASSERT_GE(halo, 0);
    const int sten = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.container.name() == "sten";
    });
    ASSERT_GE(sten, 0);
    skl.debugMutateGraph([&](skeleton::Graph& g) { g.killNode(halo); });

    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::StaleHaloRead), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::StaleHaloRead && v.nodeB == sten &&
            v.containerB == "sten") {
            attributed = true;
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(GraphLint, DetectsSpuriousEdge)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("wa", rig.f0, 1.0),
        rig.fill("wb", rig.f1, 2.0),  // independent of wa
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "spurious");
    ASSERT_TRUE(skl.validate().clean());

    skl.debugMutateGraph([](skeleton::Graph& g) { g.addEdge(0, 1, EdgeKind::RaW); });
    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::SpuriousEdge), 1u) << rep.toString();
    EXPECT_GT(rep.edgesChecked, 0u);
}

TEST(GraphLint, DetectsTaskOrderInversion)
{
    Rig                    rig(Backend::cpu(1));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.copy("r", rig.f0, rig.f1),  // RaW w -> r
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "order");
    ASSERT_TRUE(skl.validate().clean());

    skl.debugMutateTasks([](std::vector<Task>& tasks) {
        ASSERT_EQ(tasks.size(), 2u);
        std::swap(tasks[0], tasks[1]);
    });
    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::LevelOrder), 1u) << rep.toString();
}

TEST(GraphLint, DetectsDroppedEventWait)
{
    Rig                    rig(Backend::cpu(2));
    std::vector<Container> seq = {
        rig.fill("wa", rig.f0, 1.0),
        rig.fill("wb", rig.f1, 2.0),
        rig.add("mix", rig.f0, rig.f1, rig.f2),
    };
    Skeleton skl(rig.backend);
    skl.sequence(seq, "wait");
    ASSERT_TRUE(skl.validate().clean()) << skl.validate().toString();
    ASSERT_EQ(skl.streamCount(), 2);  // wa/wb run on parallel streams

    const int mix = findNode(skl.graph(), [](const skeleton::GraphNode& n) {
        return n.container.name() == "mix";
    });
    ASSERT_GE(mix, 0);
    skl.debugMutateTasks([&](std::vector<Task>& tasks) {
        for (auto& t : tasks) {
            if (t.nodeId == mix) {
                t.waits.clear();
            }
        }
    });
    const AnalysisReport rep = skl.validate();
    EXPECT_GE(rep.count(ViolationKind::MissingWait), 1u) << rep.toString();
    bool attributed = false;
    for (const auto& v : rep.violations) {
        if (v.kind == ViolationKind::MissingWait && v.nodeB == mix) {
            attributed = true;
        }
    }
    EXPECT_TRUE(attributed) << rep.toString();
}

TEST(GraphLint, DetectsCycle)
{
    Rig                    rig(Backend::cpu(1));
    std::vector<Container> seq = {
        rig.fill("w", rig.f0, 1.0),
        rig.copy("r", rig.f0, rig.f1),
    };
    skeleton::Graph g = skeleton::buildGraph(seq, 1);
    g.addEdge(1, 0, EdgeKind::WaW);  // close the loop: r -> w
    const AnalysisReport rep = lintGraph(g, 1);
    EXPECT_EQ(rep.count(ViolationKind::GraphCycle), 1u) << rep.toString();
}

}  // namespace neon::analysis
