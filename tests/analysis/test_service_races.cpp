// Cross-job race coverage for the neon::service layer (docs/service.md).
//
// Two service jobs sharing a field must be serialized by the per-uid data
// chains (Backend::dataBarriers) even though they run on disjoint stream
// leases — the race detector stays clean and the reader sees the writer's
// values. With the chains debug-disabled (ServiceConfig::withChainData
// (false), the analogue of the historical per-skeleton barrier), the same
// pair of jobs is an ordering bug, and the PR-3 happens-before race
// detector must flag it with correct container attribution. Jobs over
// disjoint fields share no chain events and are free to overlap.

#include <gtest/gtest.h>

#include "analysis_fixture.hpp"
#include "service/service.hpp"
#include "service/traffic.hpp"

namespace neon::analysis {

using service::Job;
using service::JobRequest;
using service::JobState;
using service::Policy;
using service::Service;
using service::ServiceConfig;
using set::Backend;

TEST(ServiceRaces, SharedFieldJobsSerializedByDataChainsOrFlagged)
{
    for (bool chain : {true, false}) {
        SCOPED_TRACE(chain ? "data chains on" : "data chains off");
        Rig  rig(Backend::cpu(2));
        auto an = rig.backend.analysis();
        an.enable();
        Service svc(rig.backend,
                    ServiceConfig().withMaxInFlight(2).withBatching(false).withChainData(chain));

        // Writer job fills f0/f1 on two parallel streams of its lease; the
        // reader job copies f1 from a different lease. Only the data chain
        // orders the cross-job pair.
        JobRequest writer;
        writer.tenant = "a";
        writer.name = "writer";
        writer.ops = {rig.fill("wa", rig.f0, 1.0), rig.fill("wb", rig.f1, 2.0)};
        JobRequest reader;
        reader.tenant = "b";
        reader.name = "reader";
        reader.ops = {rig.copy("rb", rig.f1, rig.f2)};

        const Job w = svc.submit(std::move(writer));
        const Job r = svc.submit(std::move(reader));
        svc.drain();
        ASSERT_EQ(w.state(), JobState::Completed);
        ASSERT_EQ(r.state(), JobState::Completed);

        const AnalysisReport rep = an.raceReport();
        if (chain) {
            EXPECT_TRUE(rep.clean()) << rep.toString();
            rig.f2.updateHost();
            rig.grid.dim().forEach([&](const index_3d& g) {
                ASSERT_EQ(rig.f2.hVal(g), 2.0) << "reader must see the writer's values";
            });
        } else {
            EXPECT_GE(rep.count(ViolationKind::Race), 1u)
                << "unchained cross-job conflict must be flagged\n" << rep.toString();
            bool attributed = false;
            for (const auto& v : rep.violations) {
                if (v.kind == ViolationKind::Race &&
                    ((v.containerA == "wb" && v.containerB == "rb") ||
                     (v.containerA == "rb" && v.containerB == "wb"))) {
                    attributed = true;
                }
            }
            EXPECT_TRUE(attributed) << rep.toString();
        }
    }
}

TEST(ServiceRaces, DisjointFieldJobsOverlapAndStayClean)
{
    // Non-zero cost model so start/completion actually discriminate.
    Backend bk = Backend::simGpu(1);
    auto    an = bk.analysis();
    an.enable();
    Service svc(bk, ServiceConfig().withMaxInFlight(2).withBatching(false));

    // Two traffic jobs: each builds its own fields, so their uid sets are
    // disjoint and the chains add no cross-job waits.
    auto trace = service::makeTrace(service::TrafficSpec().withSeed(41).withJobs(2));
    for (auto& d : trace) {
        d.arrival = 0.0;
        d.runs = 2;
    }
    auto     b0 = service::buildJob(bk, trace[0]);
    auto     b1 = service::buildJob(bk, trace[1]);
    const Job j0 = svc.submit(std::move(b0.request));
    const Job j1 = svc.submit(std::move(b1.request));
    svc.drain();

    ASSERT_EQ(j0.state(), JobState::Completed);
    ASSERT_EQ(j1.state(), JobState::Completed);
    EXPECT_LT(j1.start(), j0.completion())
        << "disjoint jobs must overlap in virtual time on separate leases";
    const AnalysisReport rep = an.raceReport();
    EXPECT_TRUE(rep.clean()) << rep.toString();
}

// The PR-2 ping-pong chaining regression: successive runs over the same
// fields — issued through two different Skeletons — are ordered by the
// per-uid chains that replaced the backend-wide run barrier.
TEST(ServiceRaces, PingPongChainingAcrossSkeletonsStillHolds)
{
    Rig  rig(Backend::cpu(3));
    auto an = rig.backend.analysis();
    an.enable();
    skeleton::Skeleton even(rig.backend);
    skeleton::Skeleton odd(rig.backend);
    even.sequence({rig.stencil("even", rig.f0, rig.f1)}, "even");
    odd.sequence({rig.stencil("odd", rig.f1, rig.f0)}, "odd");
    for (int step = 0; step < 3; ++step) {
        even.run();
        odd.run();
    }
    even.sync();
    const AnalysisReport rep = an.raceReport();
    EXPECT_TRUE(rep.clean()) << rep.toString();

    // Oracle: the same six sweeps through one skeleton on a fresh rig.
    Rig                ref(Backend::cpu(3));
    skeleton::Skeleton one(ref.backend);
    one.sequence({ref.stencil("even", ref.f0, ref.f1), ref.stencil("odd", ref.f1, ref.f0)},
                 "pair");
    for (int step = 0; step < 3; ++step) {
        one.run();
    }
    one.sync();
    rig.f0.updateHost();
    ref.f0.updateHost();
    rig.grid.dim().forEach([&](const index_3d& g) {
        ASSERT_EQ(rig.f0.hVal(g), ref.f0.hVal(g)) << "ping-pong chaining diverged";
    });
}

}  // namespace neon::analysis
