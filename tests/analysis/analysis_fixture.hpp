#pragma once
// Shared rig for the neon::analysis tests: a small dgrid with three fields
// and a scalar, plus one-line builders for the container shapes the lint
// and race-detector tests seed violations into.

#include <functional>
#include <string>
#include <utility>

#include "analysis/analysis.hpp"
#include "dgrid/dfield.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::analysis {

struct Rig
{
    set::Backend              backend;
    dgrid::DGrid              grid;
    dgrid::DField<double>     f0;
    dgrid::DField<double>     f1;
    dgrid::DField<double>     f2;
    set::GlobalScalar<double> s;

    explicit Rig(set::Backend b)
        : backend(std::move(b)),
          grid(backend, index_3d{6, 5, 12}, Stencil::laplace7()),
          f0(grid.newField<double>("f0", 1, 1.0)),
          f1(grid.newField<double>("f1", 1, 0.0)),
          f2(grid.newField<double>("f2", 1, 0.0)),
          s(backend, "s", 0.0)
    {
    }

    /// dst = value (pure writer).
    set::Container fill(const std::string& name, dgrid::DField<double> dst, double value)
    {
        return grid.newContainer(name, [dst, value](auto& l) mutable {
            auto dp = l.load(dst, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { dp(c) = value; };
        });
    }

    /// dst = src (map).
    set::Container copy(const std::string& name, dgrid::DField<double> src,
                        dgrid::DField<double> dst)
    {
        return grid.newContainer(name, [src, dst](auto& l) mutable {
            auto sp = l.load(src, Access::READ);
            auto dp = l.load(dst, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { dp(c) = sp(c); };
        });
    }

    /// dst = a + b (map over two inputs).
    set::Container add(const std::string& name, dgrid::DField<double> a,
                       dgrid::DField<double> b, dgrid::DField<double> dst)
    {
        return grid.newContainer(name, [a, b, dst](auto& l) mutable {
            auto ap = l.load(a, Access::READ);
            auto bp = l.load(b, Access::READ);
            auto dp = l.load(dst, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { dp(c) = ap(c) + bp(c); };
        });
    }

    /// dst = src + 0.1 * laplacian(src) (stencil).
    set::Container stencil(const std::string& name, dgrid::DField<double> src,
                           dgrid::DField<double> dst)
    {
        return grid.newContainer(name, [src, dst](auto& l) mutable {
            auto sp = l.load(src, Access::READ, Compute::STENCIL);
            auto dp = l.load(dst, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable {
                double acc = -6.0 * sp(c);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += sp.nghVal(c, off);
                }
                dp(c) = sp(c) + 0.1 * acc;
            };
        });
    }
};

/// First node id satisfying `pred`, or -1.
inline int findNode(const skeleton::Graph&                            g,
                    const std::function<bool(const skeleton::GraphNode&)>& pred)
{
    for (int id = 0; id < g.nodeCount(); ++id) {
        if (g.node(id).alive && pred(g.node(id))) {
            return id;
        }
    }
    return -1;
}

inline int findHaloNode(const skeleton::Graph& g)
{
    return findNode(g, [](const skeleton::GraphNode& n) {
        return n.kind() == set::Container::Kind::Halo;
    });
}

}  // namespace neon::analysis
