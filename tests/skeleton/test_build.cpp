// buildGraph on the paper's running example (Fig. 4): a map (axpy), a
// stencil (laplace) and a reduction (dot). Verifies RaW/WaR edges, halo
// insertion, the coherency flag, combine-node expansion and the redundant
// edge removed by transitive reduction.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;
using set::GlobalScalar;

namespace {

struct Fig4App
{
    dgrid::DGrid         grid;
    dgrid::DField<float> X;
    dgrid::DField<float> Y;
    GlobalScalar<float>  a;
    GlobalScalar<float>  r;
    Container            axpy;     // X += a*Y          (MapOp)
    Container            laplace;  // Y = laplacian(X)  (StencilOp)
    Container            dot;      // r = X . Y         (ReduceOp)

    explicit Fig4App(int nDev)
        : grid(Backend::cpu(nDev), {4, 4, 8 * nDev}, Stencil::laplace7()),
          X(grid.newField<float>("X", 1, 0.0f)),
          Y(grid.newField<float>("Y", 1, 0.0f)),
          a(grid.backend(), "a", 0.5f),
          r(grid.backend(), "r", 0.0f)
    {
        axpy = patterns::axpy(grid, a, Y, X, "axpy");
        laplace = grid.newContainer("laplace", [this](auto& l) {
            auto xp = l.load(X, Access::READ, Compute::STENCIL);
            auto yp = l.load(Y, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable {
                float acc = -6.0f * xp(cell);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += xp.nghVal(cell, off);
                }
                yp(cell) = acc;
            };
        });
        dot = patterns::dot(grid, X, Y, r, "dot");
    }

    [[nodiscard]] std::vector<Container> sequence() const { return {axpy, laplace, dot}; }
};

/// Find the single alive node whose label matches.
int findNode(const Graph& g, const std::string& label)
{
    int found = -1;
    for (int i = 0; i < g.nodeCount(); ++i) {
        if (g.node(i).alive && g.node(i).label() == label) {
            EXPECT_EQ(found, -1) << "duplicate node " << label;
            found = i;
        }
    }
    EXPECT_GE(found, 0) << "node not found: " << label;
    return found;
}

}  // namespace

TEST(BuildGraph, SingleDeviceHasNoHaloNodes)
{
    Fig4App app(1);
    Graph   g = buildGraph(app.sequence(), 1);
    // axpy, laplace, dot-kernel, dot-combine.
    EXPECT_EQ(g.aliveCount(), 4);
    for (int i = 0; i < g.nodeCount(); ++i) {
        EXPECT_NE(g.node(i).kind(), Container::Kind::Halo);
        EXPECT_TRUE(g.node(i).coherent);
    }
}

TEST(BuildGraph, MultiDeviceInsertsHaloBeforeStencil)
{
    Fig4App app(2);
    Graph   g = buildGraph(app.sequence(), 2);
    EXPECT_EQ(g.aliveCount(), 5);

    const int axpy = findNode(g, "axpy");
    const int halo = findNode(g, "halo(X)");
    const int laplace = findNode(g, "laplace");
    const int dot = findNode(g, "dot");
    const int combine = findNode(g, "combine(r)");

    // Paper Fig. 4c: axpy -> halo -> laplace; laplace -> dot -> combine.
    EXPECT_TRUE(g.hasDataEdge(axpy, halo));
    EXPECT_TRUE(g.hasDataEdge(halo, laplace));
    EXPECT_TRUE(g.hasDataEdge(laplace, dot));
    EXPECT_TRUE(g.hasDataEdge(dot, combine));
    // laplace writes Y which axpy read: WaR (paper §V-A).
    EXPECT_TRUE(g.hasEdge(axpy, laplace, EdgeKind::WaR));
    // The stencil node is flagged incoherent (needed a halo update).
    EXPECT_FALSE(g.node(laplace).coherent);
    EXPECT_TRUE(g.node(axpy).coherent);
}

TEST(BuildGraph, PatternFlagsMatchPaper)
{
    Fig4App app(2);
    Graph   g = buildGraph(app.sequence(), 2);
    EXPECT_EQ(g.node(findNode(g, "axpy")).pattern(), Compute::MAP);
    EXPECT_EQ(g.node(findNode(g, "laplace")).pattern(), Compute::STENCIL);
    EXPECT_EQ(g.node(findNode(g, "dot")).pattern(), Compute::REDUCE);
    EXPECT_EQ(g.node(findNode(g, "combine(r)")).kind(), Container::Kind::ScalarOp);
    for (int i = 0; i < g.nodeCount(); ++i) {
        EXPECT_EQ(g.node(i).view, DataView::STANDARD);
    }
}

TEST(BuildGraph, TransitiveReductionRemovesRedundantDotDependency)
{
    // dot reads X (written by halo) and Y (written by laplace). The direct
    // halo->dot edge is covered by halo->laplace->dot and must be removed —
    // the paper's "dependency ... removed as redundant" (Fig. 4c).
    Fig4App app(2);
    Graph   g = buildGraph(app.sequence(), 2);
    const int halo = findNode(g, "halo(X)");
    const int dot = findNode(g, "dot");
    EXPECT_TRUE(g.hasDataEdge(halo, dot));
    g.transitiveReduce();
    EXPECT_FALSE(g.hasDataEdge(halo, dot));
    EXPECT_TRUE(g.hasDataEdge(findNode(g, "laplace"), dot));
}

TEST(BuildGraph, HaloNotReinsertedWhenFresh)
{
    // Two consecutive stencils on the same (unmodified) field: one halo.
    Fig4App app(2);
    auto    g = buildGraph({app.laplace, app.dot, app.laplace}, 2);
    int     halos = 0;
    for (int i = 0; i < g.nodeCount(); ++i) {
        if (g.node(i).alive && g.node(i).kind() == Container::Kind::Halo) {
            ++halos;
        }
    }
    EXPECT_EQ(halos, 1);
}

TEST(BuildGraph, HaloReinsertedAfterWrite)
{
    // stencil, map writes X, stencil again: two halo updates needed.
    Fig4App app(2);
    auto    g = buildGraph({app.laplace, app.axpy, app.laplace}, 2);
    int     halos = 0;
    for (int i = 0; i < g.nodeCount(); ++i) {
        if (g.node(i).alive && g.node(i).kind() == Container::Kind::Halo) {
            ++halos;
        }
    }
    EXPECT_EQ(halos, 2);
}

TEST(BuildGraph, WaWBetweenConsecutiveWriters)
{
    Fig4App app(1);
    // laplace writes Y twice in a row -> WaW edge.
    auto g = buildGraph({app.laplace, app.laplace}, 1);
    EXPECT_EQ(g.aliveCount(), 2);
    EXPECT_TRUE(g.hasEdge(0, 1, EdgeKind::RaW) || g.hasEdge(0, 1, EdgeKind::WaW));
}

TEST(BuildGraph, ScopesFollowNodeKinds)
{
    Fig4App app(2);
    Graph   g = buildGraph(app.sequence(), 2);
    const int axpy = findNode(g, "axpy");
    const int halo = findNode(g, "halo(X)");
    const int laplace = findNode(g, "laplace");
    const int dot = findNode(g, "dot");
    const int combine = findNode(g, "combine(r)");
    // Any edge touching a halo node is neighbour-scoped: the halo writes
    // into the neighbours' memory.
    EXPECT_EQ(g.waitScope(axpy, halo), WaitScope::Neighbours);
    EXPECT_EQ(g.waitScope(halo, laplace), WaitScope::Neighbours);
    EXPECT_EQ(g.waitScope(dot, combine), WaitScope::All);
    // A map reading the scalar written by combine waits on device 0 only.
    auto readA = patterns::axpy(app.grid, app.r, app.Y, app.X, "useR");
    auto g2 = buildGraph({app.dot, readA}, 2);
    const int comb2 = findNode(g2, "combine(r)");
    const int use = findNode(g2, "useR");
    EXPECT_TRUE(g2.hasDataEdge(comb2, use));
    EXPECT_EQ(g2.waitScope(comb2, use), WaitScope::Root);
}

}  // namespace neon::skeleton
