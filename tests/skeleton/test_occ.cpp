// OCC graph transforms (paper §V-B): node splits, edge rewiring, hints.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;
using set::GlobalScalar;

namespace {

struct App
{
    dgrid::DGrid         grid;
    dgrid::DField<float> X;
    dgrid::DField<float> Y;
    GlobalScalar<float>  a;
    GlobalScalar<float>  r;
    Container            axpy;     // X += a*Y
    Container            laplace;  // Y = lap(X)
    Container            dot;      // r = X.Y

    explicit App(int nDev)
        : grid(Backend::cpu(nDev), {4, 4, 8 * nDev}, Stencil::laplace7()),
          X(grid.newField<float>("X", 1, 0.0f)),
          Y(grid.newField<float>("Y", 1, 0.0f)),
          a(grid.backend(), "a", 0.5f),
          r(grid.backend(), "r", 0.0f)
    {
        axpy = patterns::axpy(grid, a, Y, X, "axpy");
        laplace = grid.newContainer("laplace", [this](auto& l) {
            auto xp = l.load(X, Access::READ, Compute::STENCIL);
            auto yp = l.load(Y, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable {
                float acc = -6.0f * xp(cell);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += xp.nghVal(cell, off);
                }
                yp(cell) = acc;
            };
        });
        dot = patterns::dot(grid, X, Y, r, "dot");
    }
};

int find(const Graph& g, const std::string& label)
{
    for (int i = 0; i < g.nodeCount(); ++i) {
        if (g.node(i).alive && g.node(i).label() == label) {
            return i;
        }
    }
    ADD_FAILURE() << "node not found: " << label;
    return -1;
}

bool exists(const Graph& g, const std::string& label)
{
    for (int i = 0; i < g.nodeCount(); ++i) {
        if (g.node(i).alive && g.node(i).label() == label) {
            return true;
        }
    }
    return false;
}

Graph makeGraph(const App& app, Occ occ, int nDev)
{
    Graph g = buildGraph({app.axpy, app.laplace, app.dot}, nDev);
    applyOcc(g, occ, nDev);
    return g;
}

}  // namespace

TEST(Occ, NoneKeepsGraphUntouched)
{
    App   app(2);
    Graph g = makeGraph(app, Occ::NONE, 2);
    EXPECT_EQ(g.aliveCount(), 5);
    EXPECT_TRUE(exists(g, "laplace"));
}

TEST(Occ, SingleDeviceIsNeverSplit)
{
    App   app(1);
    Graph g = makeGraph(app, Occ::TWO_WAY, 1);
    EXPECT_EQ(g.aliveCount(), 4);  // no halo, no splits
    EXPECT_TRUE(exists(g, "laplace"));
}

TEST(Occ, StandardSplitsStencilOnly)
{
    App   app(2);
    Graph g = makeGraph(app, Occ::STANDARD, 2);
    // axpy, halo, laplace.int, laplace.bdr, dot, combine
    EXPECT_EQ(g.aliveCount(), 6);
    EXPECT_FALSE(exists(g, "laplace"));
    const int halo = find(g, "halo(X)");
    const int si = find(g, "laplace.int");
    const int sb = find(g, "laplace.bdr");
    const int axpy = find(g, "axpy");
    const int dot = find(g, "dot");

    // Halo feeds only the boundary half; both halves feed the child.
    EXPECT_FALSE(g.hasDataEdge(halo, si));
    EXPECT_TRUE(g.hasDataEdge(halo, sb));
    EXPECT_TRUE(g.hasDataEdge(axpy, si));
    EXPECT_TRUE(g.hasDataEdge(axpy, sb));
    EXPECT_TRUE(g.hasDataEdge(si, dot));
    EXPECT_TRUE(g.hasDataEdge(sb, dot));
    // Scheduling hint: halo before internal stencil (paper Fig. 4d).
    EXPECT_TRUE(g.hasEdge(halo, si, EdgeKind::Hint));
    EXPECT_EQ(g.node(si).view, DataView::INTERNAL);
    EXPECT_EQ(g.node(sb).view, DataView::BOUNDARY);
}

TEST(Occ, ExtendedAlsoSplitsUpstreamMap)
{
    App   app(2);
    Graph g = makeGraph(app, Occ::EXTENDED, 2);
    // axpy.int, axpy.bdr, halo, laplace.int, laplace.bdr, dot, combine
    EXPECT_EQ(g.aliveCount(), 7);
    EXPECT_FALSE(exists(g, "axpy"));
    const int pi = find(g, "axpy.int");
    const int pb = find(g, "axpy.bdr");
    const int halo = find(g, "halo(X)");
    const int si = find(g, "laplace.int");
    const int sb = find(g, "laplace.bdr");

    // Only the boundary map gates the halo transfers.
    EXPECT_TRUE(g.hasDataEdge(pb, halo));
    EXPECT_FALSE(g.hasDataEdge(pi, halo));
    // The stencil halves still need both map halves (neighbour reads cross
    // the internal/boundary line within a partition).
    EXPECT_TRUE(g.hasDataEdge(pi, si));
    EXPECT_TRUE(g.hasDataEdge(pb, si));
    EXPECT_TRUE(g.hasDataEdge(pi, sb));
    EXPECT_TRUE(g.hasDataEdge(pb, sb));
    // Boundary map launches first.
    EXPECT_TRUE(g.hasEdge(pb, pi, EdgeKind::Hint));
}

TEST(Occ, TwoWaySplitsDownstreamReduceWithOrderingEdge)
{
    App   app(2);
    Graph g = makeGraph(app, Occ::TWO_WAY, 2);
    // axpy.int/bdr, halo, laplace.int/bdr, dot.int/bdr, combine
    EXPECT_EQ(g.aliveCount(), 8);
    const int si = find(g, "laplace.int");
    const int sb = find(g, "laplace.bdr");
    const int di = find(g, "dot.int");
    const int db = find(g, "dot.bdr");
    const int combine = find(g, "combine(r)");

    // View-aligned dependencies (map/reduce reads are cell-local).
    EXPECT_TRUE(g.hasDataEdge(si, di));
    EXPECT_FALSE(g.hasDataEdge(sb, di));
    EXPECT_TRUE(g.hasDataEdge(sb, db));
    EXPECT_FALSE(g.hasDataEdge(si, db));
    // Paper: data dependency between internal and boundary reduce halves.
    EXPECT_TRUE(g.hasDataEdge(di, db));
    // Both halves feed the combine.
    EXPECT_TRUE(g.hasDataEdge(di, combine));
    EXPECT_TRUE(g.hasDataEdge(db, combine));
}

TEST(Occ, ScalarOpsAreNeverSplit)
{
    App  app(2);
    auto useR = patterns::axpy(app.grid, app.r, app.Y, app.X, "useR");
    Graph g = buildGraph({app.laplace, app.dot, useR}, 2);
    applyOcc(g, Occ::TWO_WAY, 2);
    EXPECT_TRUE(exists(g, "combine(r)"));
    EXPECT_FALSE(exists(g, "combine(r).int"));
}

TEST(Occ, GraphStaysAcyclicAcrossVariants)
{
    for (int nDev : {2, 4}) {
        App app(nDev);
        for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
            Graph g = makeGraph(app, occ, nDev);
            EXPECT_NO_THROW(g.bfsLevels(true)) << to_string(occ) << " nDev=" << nDev;
            g.transitiveReduce();
            EXPECT_NO_THROW(g.bfsLevels(true));
        }
    }
}

TEST(Occ, SchedulerAssignsStreamsWithinLevels)
{
    App   app(2);
    Graph g = makeGraph(app, Occ::STANDARD, 2);
    g.transitiveReduce();
    int  nStreams = 0;
    auto tasks = scheduleGraph(g, 8, &nStreams);
    EXPECT_GE(nStreams, 2);  // halo and internal stencil overlap
    EXPECT_EQ(tasks.size(), static_cast<size_t>(g.aliveCount()));
    // Independent same-level nodes must not share a stream (width allows).
    for (const auto& level : g.bfsLevels(false)) {
        std::vector<int> used;
        for (int id : level) {
            EXPECT_EQ(std::count(used.begin(), used.end(), g.node(id).stream), 0);
            used.push_back(g.node(id).stream);
        }
    }
}

TEST(Occ, SameStreamSameDevDependencySkipsEvent)
{
    App   app(2);
    Graph g = buildGraph({app.axpy, app.axpy}, 2);  // WaW chain, same stream
    g.transitiveReduce();
    int  nStreams = 0;
    auto tasks = scheduleGraph(g, 8, &nStreams);
    ASSERT_EQ(tasks.size(), 2u);
    EXPECT_EQ(tasks[1].waits.size(), 0u);  // FIFO order suffices
    EXPECT_FALSE(g.node(tasks[0].nodeId).needsEvent);
}

TEST(Occ, TaskOrderIsTopological)
{
    for (Occ occ : {Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
        App   app(4);
        Graph g = makeGraph(app, occ, 4);
        g.transitiveReduce();
        int  nStreams = 0;
        auto tasks = scheduleGraph(g, 8, &nStreams);
        std::vector<int> pos(static_cast<size_t>(g.nodeCount()), -1);
        for (size_t i = 0; i < tasks.size(); ++i) {
            pos[static_cast<size_t>(tasks[i].nodeId)] = static_cast<int>(i);
        }
        for (const auto& e : g.edges()) {
            EXPECT_LT(pos[static_cast<size_t>(e.from)], pos[static_cast<size_t>(e.to)])
                << to_string(occ);
        }
    }
}

}  // namespace neon::skeleton
