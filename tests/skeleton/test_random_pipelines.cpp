// Randomized property test: generate arbitrary (seeded) sequences of map /
// stencil / reduce / scalar containers and check that every backend
// configuration — device count x OCC level x engine — produces the same
// fields and scalars as the single-device reference. This is the paper's
// core contract stated as a property.

#include <gtest/gtest.h>

#include <random>

#include "dgrid/dfield.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;
using set::GlobalScalar;

namespace {

constexpr index_3d kDim{5, 4, 16};
constexpr int      kFields = 3;
constexpr int      kRuns = 2;

struct Pipeline
{
    dgrid::DGrid                       grid;
    std::vector<dgrid::DField<double>> fields;
    GlobalScalar<double>               s0;
    GlobalScalar<double>               s1;
    std::vector<Container>             seq;

    Pipeline(Backend backend, unsigned seed)
        : grid(std::move(backend), kDim, Stencil::laplace7()),
          s0(grid.backend(), "s0", 0.3),
          s1(grid.backend(), "s1", 0.7)
    {
        for (int i = 0; i < kFields; ++i) {
            auto f = grid.newField<double>("f" + std::to_string(i), 1, 0.0);
            f.forEachHost([i](const index_3d& g, int, double& v) {
                v = 0.01 * (g.x + 2 * g.y + 3 * g.z) + 0.1 * i + 0.05;
            });
            f.updateDev();
            fields.push_back(std::move(f));
        }
        build(seed);
    }

    void build(unsigned seed)
    {
        std::mt19937                    rng(seed);
        std::uniform_int_distribution<> opDist(0, 3);
        std::uniform_int_distribution<> fieldDist(0, kFields - 1);
        const int                       length = 4 + static_cast<int>(rng() % 5);

        for (int k = 0; k < length; ++k) {
            const int op = opDist(rng);
            const int a = fieldDist(rng);
            int       b = fieldDist(rng);
            if (op == 1 && b == a) {
                b = (a + 1) % kFields;  // stencils must not write their input
            }
            auto src = fields[static_cast<size_t>(a)];
            auto dst = fields[static_cast<size_t>(b)];
            const std::string tag = std::to_string(k);
            switch (op) {
                case 0: {  // map: dst = 0.9*dst + s0*src + 0.01
                    auto s = s0;
                    seq.push_back(grid.newContainer("map" + tag, [src, dst, s](auto& l) mutable {
                        auto sp = l.load(src, Access::READ);
                        auto dp = l.load(dst, Access::WRITE);
                        auto sv = l.load(s, Access::READ);
                        return [=](const dgrid::DCell& c) mutable {
                            dp(c) = 0.9 * dp(c) + sv() * sp(c) + 0.01;
                        };
                    }));
                    break;
                }
                case 1: {  // stencil: dst = src + 0.05 * laplacian(src)
                    seq.push_back(grid.newContainer("sten" + tag, [src, dst](auto& l) mutable {
                        auto sp = l.load(src, Access::READ, Compute::STENCIL);
                        auto dp = l.load(dst, Access::WRITE);
                        return [=](const dgrid::DCell& c) mutable {
                            double acc = -6.0 * sp(c);
                            for (const auto& off : Stencil::laplace7().points()) {
                                acc += sp.nghVal(c, off);
                            }
                            dp(c) = sp(c) + 0.05 * acc;
                        };
                    }));
                    break;
                }
                case 2: {  // reduce: s1 = src . dst
                    seq.push_back(patterns::dot(grid, src, dst, s1, "dot" + tag));
                    break;
                }
                case 3: {  // scalar: s0 = tanh-ish mix of s0, s1
                    auto x = s0;
                    auto y = s1;
                    seq.push_back(Container::scalarOp<double>(
                        "scal" + tag, grid.backend(), {x, y}, {x}, [x, y]() mutable {
                            x.set(0.5 * x.hostValue() +
                                  y.hostValue() / (1.0 + std::abs(y.hostValue())));
                        }));
                    break;
                }
                default: break;
            }
        }
    }

    struct Snapshot
    {
        std::vector<double> data;
        double              s0v = 0.0;
        double              s1v = 0.0;
    };

    Snapshot execute(Occ occ)
    {
        Skeleton skl(grid.backend());
        skl.sequence(seq, "random", Options().withOcc(occ));
        for (int r = 0; r < kRuns; ++r) {
            skl.run();
        }
        skl.sync();
        Snapshot snap;
        for (auto& f : fields) {
            f.updateHost();
            kDim.forEach([&](const index_3d& g) { snap.data.push_back(f.hVal(g)); });
        }
        snap.s0v = s0.hostValue();
        snap.s1v = s1.hostValue();
        return snap;
    }
};

}  // namespace

class RandomPipelines : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomPipelines, AllConfigurationsMatchReference)
{
    const unsigned seed = GetParam();
    auto           ref = Pipeline(Backend::cpu(1), seed).execute(Occ::NONE);

    struct Config
    {
        int                 nDev;
        Occ                 occ;
        Backend::EngineKind engine;
    };
    const Config configs[] = {
        {2, Occ::NONE, Backend::EngineKind::Sequential},
        {4, Occ::STANDARD, Backend::EngineKind::Sequential},
        {3, Occ::EXTENDED, Backend::EngineKind::Threaded},
        {4, Occ::TWO_WAY, Backend::EngineKind::Threaded},
        {8, Occ::TWO_WAY, Backend::EngineKind::Sequential},
    };
    for (const auto& cfg : configs) {
        Pipeline p(Backend(cfg.nDev, sys::DeviceType::CPU, sys::SimConfig::zeroCost(),
                           cfg.engine),
                   seed);
        const auto got = p.execute(cfg.occ);
        ASSERT_EQ(got.data.size(), ref.data.size());
        for (size_t i = 0; i < ref.data.size(); ++i) {
            ASSERT_NEAR(got.data[i], ref.data[i], std::abs(ref.data[i]) * 1e-11 + 1e-13)
                << "seed " << seed << " dev" << cfg.nDev << " occ " << to_string(cfg.occ)
                << " idx " << i;
        }
        EXPECT_NEAR(got.s0v, ref.s0v, std::abs(ref.s0v) * 1e-11 + 1e-13);
        EXPECT_NEAR(got.s1v, ref.s1v, std::abs(ref.s1v) * 1e-11 + 1e-13);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelines,
                         ::testing::Values(11u, 23u, 37u, 58u, 71u, 94u, 107u, 131u));

}  // namespace neon::skeleton
