// End-to-end Skeleton execution: a map -> stencil -> reduce -> scalar ->
// map pipeline iterated several times must produce identical results for
// every (device count) x (OCC variant) x (engine) combination — the paper's
// core promise that the runtime's distribution and optimizations never
// change semantics. Also checks that OCC actually shortens the virtual
// timeline on the simulated multi-GPU backend.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;
using set::GlobalScalar;

namespace {

constexpr index_3d kDim{6, 5, 16};
constexpr int      kIters = 3;

double initA(const index_3d& g)
{
    return 0.01 * g.x + 0.02 * g.y + 0.005 * g.z + 0.1;
}

/// Plain host reference of the pipeline (no Neon machinery).
struct Reference
{
    std::vector<double> A, B, C;
    double              s = 0.0;
    double              alpha = 0.0;

    Reference()
        : A(kDim.size()), B(kDim.size()), C(kDim.size())
    {
        kDim.forEach([&](const index_3d& g) { A[kDim.pitch(g)] = initA(g); });
        for (int it = 0; it < kIters; ++it) {
            step();
        }
    }

    void step()
    {
        kDim.forEach([&](const index_3d& g) { B[kDim.pitch(g)] = A[kDim.pitch(g)] + 1.0; });
        kDim.forEach([&](const index_3d& g) {
            double acc = -6.0 * B[kDim.pitch(g)];
            for (const auto& off : Stencil::laplace7().points()) {
                const index_3d n = g + off;
                acc += kDim.contains(n) ? B[kDim.pitch(n)] : 0.0;
            }
            C[kDim.pitch(g)] = acc;
        });
        s = 0.0;
        kDim.forEach([&](const index_3d& g) { s += B[kDim.pitch(g)] * C[kDim.pitch(g)]; });
        alpha = s / (std::abs(s) + 100.0);
        kDim.forEach([&](const index_3d& g) { A[kDim.pitch(g)] += alpha * C[kDim.pitch(g)]; });
    }
};

struct RunResult
{
    std::vector<double> A;
    double              s = 0.0;
};

RunResult runPipeline(int nDev, Occ occ, Backend::EngineKind engine,
                      sys::SimConfig cfg = sys::SimConfig::zeroCost(),
                      double* vtimeOut = nullptr, index_3d dim = kDim)
{
    Backend      backend(nDev, sys::DeviceType::CPU, cfg, engine);
    dgrid::DGrid grid(backend, dim, Stencil::laplace7());
    auto         A = grid.newField<double>("A", 1, 0.0);
    auto         B = grid.newField<double>("B", 1, 0.0);
    auto         C = grid.newField<double>("C", 1, 0.0);
    GlobalScalar<double> s(backend, "s", 0.0);
    GlobalScalar<double> alpha(backend, "alpha", 0.0);

    A.forEachHost([](const index_3d& g, int, double& v) { v = initA(g); });
    A.updateDev();

    auto mapB = grid.newContainer("mapB", [&](auto& l) {
        auto a = l.load(A, Access::READ);
        auto b = l.load(B, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { b(cell) = a(cell) + 1.0; };
    });
    auto stencilC = grid.newContainer("stencilC", [&](auto& l) {
        auto b = l.load(B, Access::READ, Compute::STENCIL);
        auto c = l.load(C, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable {
            double acc = -6.0 * b(cell);
            for (const auto& off : Stencil::laplace7().points()) {
                acc += b.nghVal(cell, off);
            }
            c(cell) = acc;
        };
    });
    auto dotBC = patterns::dot(grid, B, C, s, "dotBC");
    auto alphaOp = Container::scalarOp<double>(
        "alpha", backend, {s}, {alpha},
        [s, alpha]() mutable { alpha.set(s.hostValue() / (std::abs(s.hostValue()) + 100.0)); });
    auto axpyA = patterns::axpy(grid, alpha, C, A, "axpyA");

    Skeleton skl(backend);
    skl.sequence({mapB, stencilC, dotBC, alphaOp, axpyA}, "pipeline", Options().withOcc(occ));

    const double v0 = backend.profiler().makespan();
    for (int it = 0; it < kIters; ++it) {
        skl.run();
        skl.sync();
    }
    if (vtimeOut != nullptr) {
        *vtimeOut = backend.profiler().makespan() - v0;
    }

    RunResult out;
    A.updateHost();
    out.A.resize(dim.size());
    dim.forEach([&](const index_3d& g) { out.A[dim.pitch(g)] = A.hVal(g); });
    out.s = s.hostValue();
    return out;
}

}  // namespace

using ExecCase = std::tuple<int, Occ, Backend::EngineKind>;

class SkeletonExec : public ::testing::TestWithParam<ExecCase>
{
};

TEST_P(SkeletonExec, MatchesHostReference)
{
    const auto [nDev, occ, engine] = GetParam();
    static const Reference ref;

    RunResult got = runPipeline(nDev, occ, engine);
    EXPECT_NEAR(got.s, ref.s, std::abs(ref.s) * 1e-10 + 1e-10);
    kDim.forEach([&](const index_3d& g) {
        const double expect = ref.A[kDim.pitch(g)];
        EXPECT_NEAR(got.A[kDim.pitch(g)], expect, std::abs(expect) * 1e-10 + 1e-12)
            << g.to_string();
    });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkeletonExec,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY),
                       ::testing::Values(Backend::EngineKind::Sequential,
                                         Backend::EngineKind::Threaded)),
    [](const auto& info) {
        return "dev" + std::to_string(std::get<0>(info.param)) + "_" +
               to_string(std::get<1>(info.param)) + "_" +
               (std::get<2>(info.param) == Backend::EngineKind::Sequential ? "seq" : "thr");
    });

TEST(SkeletonVtime, OccShortensTheVirtualTimeline)
{
    // On the simulated DGX with 8 devices, overlapping halo transfers with
    // internal compute must reduce the makespan (paper Fig. 7/8).
    // Large enough that compute and transfers dwarf launch overheads.
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    const index_3d dim{32, 32, 128};
    double tNone = 0.0;
    double tStd = 0.0;
    runPipeline(8, Occ::NONE, Backend::EngineKind::Sequential, cfg, &tNone, dim);
    runPipeline(8, Occ::STANDARD, Backend::EngineKind::Sequential, cfg, &tStd, dim);
    EXPECT_LT(tStd, tNone);
}

TEST(SkeletonVtime, SingleDeviceOccIsFree)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    double tNone = 0.0;
    double tTwo = 0.0;
    runPipeline(1, Occ::NONE, Backend::EngineKind::Sequential, cfg, &tNone);
    runPipeline(1, Occ::TWO_WAY, Backend::EngineKind::Sequential, cfg, &tTwo);
    EXPECT_DOUBLE_EQ(tNone, tTwo);
}

TEST(SkeletonVtime, TraceShowsCommunicationComputationOverlap)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        backend(4, sys::DeviceType::CPU, cfg, Backend::EngineKind::Sequential);
    dgrid::DGrid   grid(backend, {16, 16, 64}, Stencil::laplace7());
    auto           B = grid.newField<double>("B", 1, 0.0);
    auto           C = grid.newField<double>("C", 1, 0.0);

    auto stencilC = grid.newContainer("stencil", [&](auto& l) {
        auto b = l.load(B, Access::READ, Compute::STENCIL);
        auto c = l.load(C, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { c(cell) = b.nghVal(cell, {0, 0, 1}); };
    });
    auto mapB = grid.newContainer("map", [&](auto& l) {
        auto c = l.load(C, Access::READ);
        auto b = l.load(B, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { b(cell) = c(cell) + 1.0; };
    });

    Skeleton skl(backend);
    skl.sequence({mapB, stencilC}, "overlap", Options().withOcc(Occ::STANDARD));
    backend.profiler().trace().clear();
    backend.profiler().trace().enable(true);
    skl.run();
    skl.sync();
    backend.profiler().trace().enable(false);

    // Some transfer interval must overlap some kernel interval on the same
    // device — the definition of OCC.
    bool overlapped = false;
    const auto entries = backend.profiler().trace().entries();
    for (const auto& t : entries) {
        if (t.kind != "transfer") {
            continue;
        }
        for (const auto& k : entries) {
            if (k.kind == "kernel" && k.device == t.device && k.startV < t.endV &&
                t.startV < k.endV) {
                overlapped = true;
            }
        }
    }
    EXPECT_TRUE(overlapped);
}

TEST(SkeletonApi, RunBeforeSequenceThrows)
{
    Skeleton skl(Backend::cpu(1));
    EXPECT_THROW(skl.run(), NeonException);
}

TEST(SkeletonApi, MismatchedBackendIsRejected)
{
    // A container built on a 2-device grid cannot run on a 4-device
    // skeleton: its partitions and spans were sized for the wrong backend.
    dgrid::DGrid grid(Backend::cpu(2), {4, 4, 8}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 1, 0.0);
    auto c = grid.newContainer("touch", [&](auto& l) {
        auto fp = l.load(f, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { fp(cell) = 1.0; };
    });
    Skeleton skl(Backend::cpu(4));
    EXPECT_THROW(skl.sequence({c}, "mismatch"), NeonException);
}

TEST(SkeletonApi, ReportMentionsTasksAndStreams)
{
    Backend      b = Backend::cpu(2);
    dgrid::DGrid grid(b, {4, 4, 8}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 1, 0.0);
    auto c = grid.newContainer("touch", [&](auto& l) {
        auto fp = l.load(f, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { fp(cell) = 1.0; };
    });
    Skeleton skl(b);
    skl.sequence({c}, "demo");
    auto rep = skl.describe();
    EXPECT_NE(rep.find("demo"), std::string::npos);
    EXPECT_NE(rep.find("touch"), std::string::npos);
    EXPECT_NE(rep.find("digraph"), std::string::npos);
}

}  // namespace neon::skeleton
