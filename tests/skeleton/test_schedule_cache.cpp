// Schedule compilation cache (skeleton/schedule_cache.hpp) and the
// CompiledSchedule handle sequence() returns: structural keys must be
// stable across fresh field objects, sensitive to every compilation knob,
// collision-safe on the full encoding, and a cache-replayed schedule must
// be indistinguishable from a recompiled one (same graph shape, clean
// lint, bitwise-equal results).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/analysis.hpp"
#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/schedule_cache.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;
using set::GlobalScalar;

namespace {

/// One pipeline instance over its own fresh fields: map -> stencil -> dot
/// -> scalar -> axpy (same shape as the end-to-end exec tests).
struct Pipeline
{
    dgrid::DGrid                 grid;
    dgrid::DField<double>        A, B, C;
    GlobalScalar<double>         s, alpha;
    std::vector<set::Container>  ops;

    explicit Pipeline(const Backend& backend, index_3d dim)
        : grid(backend, dim, Stencil::laplace7()),
          A(grid.newField<double>("A", 1, 0.0)),
          B(grid.newField<double>("B", 1, 0.0)),
          C(grid.newField<double>("C", 1, 0.0)),
          s(backend, "s", 0.0),
          alpha(backend, "alpha", 0.0)
    {
        A.forEachHost([](const index_3d& g, int, double& v) {
            v = 0.01 * g.x + 0.02 * g.y + 0.005 * g.z + 0.1;
        });
        A.updateDev();
        auto mapB = grid.newContainer("mapB", [this](auto& l) {
            auto a = l.load(A, Access::READ);
            auto b = l.load(B, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable { b(cell) = a(cell) + 1.0; };
        });
        auto stencilC = grid.newContainer("stencilC", [this](auto& l) {
            auto b = l.load(B, Access::READ, Compute::STENCIL);
            auto c = l.load(C, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable {
                double acc = -6.0 * b(cell);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += b.nghVal(cell, off);
                }
                c(cell) = acc;
            };
        });
        auto dotBC = patterns::dot(grid, B, C, s, "dotBC");
        auto sc = s;
        auto al = alpha;
        auto alphaOp = Container::scalarOp<double>(
            "alpha", grid.backend(), {s}, {alpha},
            [sc, al]() mutable { al.set(sc.hostValue() / (std::abs(sc.hostValue()) + 100.0)); });
        auto axpyA = patterns::axpy(grid, alpha, C, A, "axpyA");
        ops = {mapB, stencilC, dotBC, alphaOp, axpyA};
    }

    std::vector<double> snapshot()
    {
        A.updateHost();
        std::vector<double> out;
        const index_3d      dim = grid.dim();
        out.resize(static_cast<size_t>(dim.size()));
        dim.forEach([&](const index_3d& g) { out[static_cast<size_t>(dim.pitch(g))] = A.hVal(g); });
        return out;
    }
};

void resetCache()
{
    ScheduleCache::instance().clear();
    ScheduleCache::instance().setCapacity(128);
}

}  // namespace

TEST(ScheduleCache, HitOnStructurallyIdenticalSequenceOverFreshFields)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p1(backend, {6, 5, 14});
    Skeleton s1(backend);
    const CompiledSchedule c1 =
        s1.sequence(p1.ops, SequenceOptions().withName("first").withOcc(Occ::STANDARD));
    EXPECT_FALSE(c1.cacheHit());

    // Same structure, brand-new fields and containers (fresh uids).
    Pipeline p2(backend, {6, 5, 14});
    Skeleton s2(backend);
    const CompiledSchedule c2 =
        s2.sequence(p2.ops, SequenceOptions().withName("second").withOcc(Occ::STANDARD));
    EXPECT_TRUE(c2.cacheHit());
    EXPECT_EQ(c1.structuralHash(), c2.structuralHash());

    // The replayed schedule is shape-identical to the compiled one.
    EXPECT_EQ(c1.nodeCount(), c2.nodeCount());
    EXPECT_EQ(c1.levelCount(), c2.levelCount());
    EXPECT_EQ(c1.streamCount(), c2.streamCount());
    EXPECT_EQ(c1.taskCount(), c2.taskCount());
    EXPECT_EQ(s1.graph().edges().size(), s2.graph().edges().size());
    ASSERT_EQ(s1.taskList().size(), s2.taskList().size());
    for (size_t i = 0; i < s1.taskList().size(); ++i) {
        EXPECT_EQ(s1.taskList()[i].nodeId, s2.taskList()[i].nodeId);
        EXPECT_EQ(s1.taskList()[i].stream, s2.taskList()[i].stream);
        EXPECT_EQ(s1.taskList()[i].waits.size(), s2.taskList()[i].waits.size());
    }
    // ...and it lints clean against the *new* containers' access records.
    EXPECT_TRUE(s2.validate().clean()) << s2.validate().toString();

    const auto st = ScheduleCache::instance().stats();
    EXPECT_GE(st.hits, 1u);
    EXPECT_GE(st.insertions, 1u);
}

TEST(ScheduleCache, NameIsNotPartOfTheKey)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p1(backend, {7, 4, 12});
    Skeleton s1(backend);
    const auto c1 = s1.sequence(p1.ops, SequenceOptions().withName("alpha"));
    Pipeline p2(backend, {7, 4, 12});
    Skeleton s2(backend);
    const auto c2 = s2.sequence(p2.ops, SequenceOptions().withName("omega"));
    EXPECT_FALSE(c1.cacheHit());
    EXPECT_TRUE(c2.cacheHit());
    EXPECT_EQ(c2.name(), "omega");  // display name still rebinds
}

TEST(ScheduleCache, EveryCompilationKnobChangesTheKey)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p(backend, {5, 5, 12});
    Skeleton skl(backend);
    const auto base = skl.sequence(p.ops, SequenceOptions());

    // occ
    const auto occ = skl.sequence(p.ops, SequenceOptions().withOcc(Occ::STANDARD));
    EXPECT_FALSE(occ.cacheHit());
    EXPECT_NE(base.structuralHash(), occ.structuralHash());
    // maxStreams
    const auto streams = skl.sequence(p.ops, SequenceOptions().withMaxStreams(2));
    EXPECT_FALSE(streams.cacheHit());
    EXPECT_NE(base.structuralHash(), streams.structuralHash());
    // device count (also changes span shapes)
    Backend  b3 = Backend::cpu(3);
    Pipeline p3(b3, {5, 5, 12});
    Skeleton s3(b3);
    const auto dev = s3.sequence(p3.ops, SequenceOptions());
    EXPECT_FALSE(dev.cacheHit());
    EXPECT_NE(base.structuralHash(), dev.structuralHash());
    // span sizes (same ops, different dim)
    Pipeline pd(backend, {5, 5, 16});
    Skeleton sd(backend);
    const auto dim = sd.sequence(pd.ops, SequenceOptions());
    EXPECT_FALSE(dim.cacheHit());
    EXPECT_NE(base.structuralHash(), dim.structuralHash());
    // structure (one op dropped)
    auto fewer = p.ops;
    fewer.pop_back();
    const auto drop = skl.sequence(fewer, SequenceOptions());
    EXPECT_FALSE(drop.cacheHit());
    EXPECT_NE(base.structuralHash(), drop.structuralHash());
}

TEST(ScheduleCache, CachedReplayProducesBitwiseEqualResults)
{
    resetCache();
    Backend backend = Backend::cpu(3);

    Pipeline pa(backend, {6, 6, 18});
    Skeleton sa(backend);
    const auto ca =
        sa.sequence(pa.ops, SequenceOptions().withOcc(Occ::STANDARD).withCache(false));
    EXPECT_FALSE(ca.cacheHit());
    for (int it = 0; it < 3; ++it) {
        sa.run();
    }
    sa.sync();
    const auto refA = pa.snapshot();
    const double refS = pa.s.hostValue();

    // Prime the cache with a compile, then replay onto fresh fields.
    Pipeline pb(backend, {6, 6, 18});
    Skeleton sb(backend);
    (void)sb.sequence(pb.ops, SequenceOptions().withOcc(Occ::STANDARD));
    Pipeline pc(backend, {6, 6, 18});
    Skeleton sc(backend);
    auto cc = sc.sequence(pc.ops, SequenceOptions().withOcc(Occ::STANDARD));
    EXPECT_TRUE(cc.cacheHit());
    EXPECT_TRUE(sc.validate().clean()) << sc.validate().toString();
    for (int it = 0; it < 3; ++it) {
        cc.run();
    }
    cc.sync();
    const auto gotA = pc.snapshot();

    ASSERT_EQ(refA.size(), gotA.size());
    for (size_t i = 0; i < refA.size(); ++i) {
        EXPECT_EQ(refA[i], gotA[i]) << "cell " << i;
    }
    EXPECT_EQ(refS, pc.s.hostValue());
}

TEST(ScheduleCache, CacheOffCompilesEveryTime)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p(backend, {4, 4, 10});
    Skeleton skl(backend);
    const auto c1 = skl.sequence(p.ops, SequenceOptions().withCache(false));
    const auto c2 = skl.sequence(p.ops, SequenceOptions().withCache(false));
    EXPECT_FALSE(c1.cacheHit());
    EXPECT_FALSE(c2.cacheHit());
    const auto st = ScheduleCache::instance().stats();
    EXPECT_EQ(st.size, 0u);
    EXPECT_EQ(st.insertions, 0u);
}

TEST(ScheduleCache, LruEvictionBeyondCapacity)
{
    ScheduleCache cache(2);

    auto keyOf = [](uint64_t tag) {
        ScheduleKey k;
        k.words = {tag};
        k.hash = tag * 1000003ull;
        return k;
    };
    auto recipe = std::make_shared<const ScheduleRecipe>();

    cache.insert(keyOf(1), recipe);
    cache.insert(keyOf(2), recipe);
    EXPECT_NE(cache.find(keyOf(1)), nullptr);  // 1 is now most recent
    cache.insert(keyOf(3), recipe);            // evicts 2 (least recent)
    EXPECT_EQ(cache.find(keyOf(2)), nullptr);
    EXPECT_NE(cache.find(keyOf(1)), nullptr);
    EXPECT_NE(cache.find(keyOf(3)), nullptr);

    const auto st = cache.stats();
    EXPECT_EQ(st.size, 2u);
    EXPECT_EQ(st.capacity, 2u);
    EXPECT_EQ(st.evictions, 1u);
    EXPECT_EQ(st.insertions, 3u);
}

TEST(ScheduleCache, HashCollisionsAreDisambiguatedByFullEncoding)
{
    ScheduleCache cache(8);

    // Two distinct structures forced onto the same 64-bit hash: the cache
    // must keep both and return the right one by full-word comparison.
    ScheduleKey a;
    a.words = {1, 2, 3};
    a.hash = 0xdeadbeef;
    ScheduleKey b;
    b.words = {4, 5, 6};
    b.hash = 0xdeadbeef;

    auto ra = std::make_shared<const ScheduleRecipe>();
    auto rb = std::make_shared<const ScheduleRecipe>();
    cache.insert(a, ra);
    cache.insert(b, rb);

    EXPECT_EQ(cache.find(a), ra);
    EXPECT_EQ(cache.find(b), rb);
    EXPECT_EQ(cache.stats().size, 2u);
}

TEST(CompiledSchedule, SupersededHandleRefusesToRunButStillIntrospects)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p(backend, {5, 4, 9});
    Skeleton skl(backend);
    CompiledSchedule first = skl.sequence(p.ops, SequenceOptions().withName("v1"));
    EXPECT_TRUE(first.current());

    CompiledSchedule second =
        skl.sequence(p.ops, SequenceOptions().withName("v2").withOcc(Occ::STANDARD));
    EXPECT_FALSE(first.current());
    EXPECT_TRUE(second.current());

    // The snapshot stays fully inspectable and lintable...
    EXPECT_EQ(first.name(), "v1");
    EXPECT_GT(first.taskCount(), 0);
    EXPECT_TRUE(first.lint().clean()) << first.lint().toString();
    EXPECT_FALSE(first.describe().empty());
    // ...but only the active schedule may execute.
    EXPECT_THROW(first.run(), NeonException);
    second.run();
    second.sync();
}

TEST(CompiledSchedule, DebugMutationSupersedesOutstandingHandles)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p(backend, {4, 5, 11});
    Skeleton skl(backend);
    CompiledSchedule handle = skl.sequence(p.ops, SequenceOptions());
    ASSERT_TRUE(handle.current());
    skl.debugMutateTasks([](std::vector<Task>& tasks) { tasks.pop_back(); });
    EXPECT_FALSE(handle.current());
    EXPECT_THROW(handle.run(), NeonException);
    // The handle's snapshot kept the pre-mutation task list.
    EXPECT_EQ(handle.taskCount(), static_cast<int>(skl.taskList().size()) + 1);
}

TEST(CompiledSchedule, SkeletonCompiledReturnsActiveHandle)
{
    resetCache();
    Backend  backend = Backend::cpu(1);
    Pipeline p(backend, {4, 4, 8});
    Skeleton skl(backend);
    (void)skl.sequence(p.ops, SequenceOptions().withName("active"));
    const CompiledSchedule h = skl.compiled();
    EXPECT_TRUE(h.current());
    EXPECT_EQ(h.name(), "active");
    EXPECT_EQ(h.streamCount(), skl.streamCount());
}

TEST(CompiledSchedule, EmptyHandleThrows)
{
    CompiledSchedule empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_FALSE(empty.current());
    EXPECT_THROW(empty.run(), NeonException);
    EXPECT_THROW((void)empty.structuralHash(), NeonException);
}

TEST(SequenceOptionsApi, LegacyOverloadDelegatesToSequenceOptions)
{
    resetCache();
    Backend  backend = Backend::cpu(2);
    Pipeline p(backend, {6, 4, 13});
    Skeleton skl(backend);
    const CompiledSchedule c =
        skl.sequence(p.ops, "legacy", Options().withOcc(Occ::STANDARD).withMaxStreams(3));
    EXPECT_EQ(skl.name(), "legacy");
    EXPECT_LE(skl.streamCount(), 3);
    EXPECT_TRUE(c.current());

    // The legacy overload goes through the same cache.
    Pipeline p2(backend, {6, 4, 13});
    Skeleton s2(backend);
    const auto c2 =
        s2.sequence(p2.ops, "legacy2", Options().withOcc(Occ::STANDARD).withMaxStreams(3));
    EXPECT_TRUE(c2.cacheHit());
    EXPECT_EQ(c.structuralHash(), c2.structuralHash());
}

TEST(ScheduleCache, CachedReplayLintsIdenticallyToColdCompile)
{
    resetCache();
    Backend backend = Backend::cpu(2);

    Pipeline p1(backend, {16, 16, 32});
    Skeleton s1(backend);
    const CompiledSchedule c1 = s1.sequence(p1.ops, SequenceOptions().withName("cold"));
    EXPECT_FALSE(c1.cacheHit());
    const analysis::AnalysisReport r1 = c1.lint();
    EXPECT_TRUE(r1.clean()) << r1.toString();

    Pipeline p2(backend, {16, 16, 32});
    Skeleton s2(backend);
    const CompiledSchedule c2 = s2.sequence(p2.ops, SequenceOptions().withName("replay"));
    EXPECT_TRUE(c2.cacheHit());
    const analysis::AnalysisReport r2 = c2.lint();

    // The replayed schedule must lint exactly like the cold compile: same
    // violations (none), same pair/op counters, same rendering.
    EXPECT_TRUE(r2.clean()) << r2.toString();
    EXPECT_EQ(r1.opsAnalyzed, r2.opsAnalyzed);
    EXPECT_EQ(r1.pairsChecked, r2.pairsChecked);
    EXPECT_EQ(r1.toString(), r2.toString());
}

TEST(ScheduleCache, CachedReplayKeepsSanitizerAttribution)
{
    // A recipe replay rebinds graph nodes onto the *new* containers through
    // NodeOrigin; the access sanitizer must therefore instrument the new
    // kernels and attribute their violations identically to a cold compile.
    resetCache();
    Backend backend = Backend::cpu(2);

    auto runDeep = [&backend](const char* name) {
        dgrid::DGrid          grid(backend, {8, 8, 16}, Stencil::laplace7());
        dgrid::DField<double> f = grid.newField<double>("f", 1, 1.0);
        auto sneaky = grid.newContainer("sneaky", [f](auto& l) mutable {
            auto p = l.load(f, Access::READ);
            return [=](const dgrid::DCell& c) mutable { p(c) = 2.0; };
        });
        analysis::AccessSanitizer::reset();
        Skeleton skl(backend);
        skl.sequence({sneaky}, SequenceOptions().withName(name));
        const bool hit = skl.compiled().cacheHit();
        const analysis::AnalysisReport rep = skl.validate(ValidateMode::Deep);
        analysis::AccessSanitizer::reset();
        std::string attributed;
        for (const auto& v : rep.violations) {
            if (v.kind == analysis::ViolationKind::WriteViaReadAccess) {
                attributed = v.containerA;
            }
        }
        return std::make_pair(hit, attributed);
    };

    const auto cold = runDeep("cold");
    EXPECT_FALSE(cold.first);
    EXPECT_EQ(cold.second, "sneaky");

    const auto replay = runDeep("replay");
    EXPECT_TRUE(replay.first);
    EXPECT_EQ(replay.second, "sneaky");
}

}  // namespace neon::skeleton
