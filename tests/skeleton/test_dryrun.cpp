// Dry-run fidelity: the cost model must produce *identical* virtual times
// whether kernels execute for real or are skipped — this is what licenses
// running paper-size domains through the simulator without the data.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "lbm/cavity3d.hpp"
#include "patterns/blas.hpp"
#include "poisson/poisson.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;

namespace {

double lbmVtime(bool dryRun, int nDev, Occ occ)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = dryRun;
    Backend      backend(nDev, sys::DeviceType::SIM_GPU, cfg);
    dgrid::DGrid grid(backend, {24, 24, 24}, lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> solver(grid, 0.6, 0.1, occ);
    solver.run(4);
    backend.sync();
    return backend.profiler().makespan();
}

double cgVtime(bool dryRun, int nDev, Occ occ)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = dryRun;
    Backend      backend(nDev, sys::DeviceType::SIM_GPU, cfg);
    dgrid::DGrid grid(backend, {16, 16, 16}, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         b = grid.newField<double>("b", 1, 0.0);
    solver::CgOptions options;
    options.maxIterations = 5;
    options.fixedIterations = true;
    options.occ = occ;
    poisson::solveSine(grid, x, b, options);
    backend.sync();
    return backend.profiler().makespan();
}

}  // namespace

struct DryCase
{
    int nDev;
    Occ occ;
};

class DryRunFidelity : public ::testing::TestWithParam<DryCase>
{
};

TEST_P(DryRunFidelity, LbmVirtualTimeIdentical)
{
    const auto [nDev, occ] = GetParam();
    EXPECT_DOUBLE_EQ(lbmVtime(false, nDev, occ), lbmVtime(true, nDev, occ));
}

TEST_P(DryRunFidelity, CgVirtualTimeIdentical)
{
    const auto [nDev, occ] = GetParam();
    EXPECT_DOUBLE_EQ(cgVtime(false, nDev, occ), cgVtime(true, nDev, occ));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DryRunFidelity,
                         ::testing::Values(DryCase{1, Occ::NONE}, DryCase{2, Occ::NONE},
                                           DryCase{4, Occ::STANDARD},
                                           DryCase{4, Occ::EXTENDED},
                                           DryCase{8, Occ::TWO_WAY}),
                         [](const auto& info) {
                             return "dev" + std::to_string(info.param.nDev) + "_" +
                                    to_string(info.param.occ);
                         });

TEST(DryRunFidelity, DryRunNeverTouchesHostMirrors)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = true;
    Backend      backend(2, sys::DeviceType::SIM_GPU, cfg);
    dgrid::DGrid grid(backend, {8, 8, 8}, Stencil::laplace7());
    auto         f = grid.newField<float>("f", 2, 0.0f);
    // No mirror is allocated in dry-run mode; update calls are no-ops.
    EXPECT_NO_THROW(f.updateDev());
    EXPECT_NO_THROW(f.updateHost());
}

}  // namespace neon::skeleton
