// Scheduler edge cases: stream caps, skeleton redefinition, wide graphs.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;

namespace {

constexpr index_3d kDim{4, 4, 8};

struct WideApp
{
    dgrid::DGrid                       grid;
    std::vector<dgrid::DField<double>> fields;

    WideApp(Backend backend, int width) : grid(std::move(backend), kDim, Stencil::laplace7())
    {
        for (int i = 0; i < width; ++i) {
            fields.push_back(grid.newField<double>("f" + std::to_string(i), 1, 0.0));
        }
    }

    /// `width` independent maps (one per field) then one container reading
    /// them all — a graph level wider than any stream cap we test.
    [[nodiscard]] std::vector<Container> sequence()
    {
        std::vector<Container> seq;
        for (size_t i = 0; i < fields.size(); ++i) {
            auto f = fields[i];
            const double v = static_cast<double>(i + 1);
            seq.push_back(grid.newContainer("map" + std::to_string(i), [f, v](auto& l) mutable {
                auto fp = l.load(f, Access::WRITE);
                return [=](const dgrid::DCell& c) mutable { fp(c) = v; };
            }));
        }
        auto all = fields;
        auto sum = fields[0];
        seq.push_back(grid.newContainer("gather", [all, sum](auto& l) mutable {
            std::vector<decltype(l.load(all[0], Access::READ))> parts;
            for (auto& f : all) {
                parts.push_back(l.load(f, Access::READ));
            }
            auto out = l.load(sum, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable {
                double acc = 0;
                for (const auto& p : parts) {
                    acc += p(c);
                }
                out(c) = acc;
            };
        }));
        return seq;
    }
};

}  // namespace

TEST(SchedulerEdge, StreamCapOneSerializesButStaysCorrect)
{
    WideApp  app(Backend::cpu(2), 5);
    Options  options;
    options.maxStreams = 1;
    Skeleton skl(app.grid.backend());
    skl.sequence(app.sequence(), "wide", options);
    EXPECT_EQ(skl.streamCount(), 1);
    skl.run();
    skl.sync();
    app.fields[0].updateHost();
    kDim.forEach([&](const index_3d& g) {
        EXPECT_DOUBLE_EQ(app.fields[0].hVal(g), 1.0 + 2 + 3 + 4 + 5);
    });
}

TEST(SchedulerEdge, WideLevelUsesMultipleStreams)
{
    WideApp  app(Backend::cpu(1), 6);
    Skeleton skl(app.grid.backend());
    skl.sequence(app.sequence(), "wide");
    EXPECT_GE(skl.streamCount(), 6);
    skl.run();
    skl.sync();
    app.fields[0].updateHost();
    EXPECT_DOUBLE_EQ(app.fields[0].hVal({0, 0, 0}), 21.0);
}

TEST(SchedulerEdge, StreamCapBelowWidthWrapsRoundRobin)
{
    WideApp  app(Backend::cpu(1), 6);
    Options  options;
    options.maxStreams = 3;
    Skeleton skl(app.grid.backend());
    skl.sequence(app.sequence(), "wide", options);
    EXPECT_EQ(skl.streamCount(), 3);
    for (const auto& t : skl.taskList()) {
        EXPECT_GE(t.stream, 0);
        EXPECT_LT(t.stream, 3);
    }
    skl.run();
    skl.sync();
    app.fields[0].updateHost();
    EXPECT_DOUBLE_EQ(app.fields[0].hVal({1, 1, 1}), 21.0);
}

TEST(SchedulerEdge, SequenceCanBeRedefined)
{
    WideApp  app(Backend::cpu(2), 2);
    Skeleton skl(app.grid.backend());
    skl.sequence(app.sequence(), "first");
    skl.run();
    skl.sync();

    // Redefine with a single container; old graph must be replaced.
    auto f = app.fields[1];
    auto c = app.grid.newContainer("overwrite", [f](auto& l) mutable {
        auto fp = l.load(f, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { fp(cell) = -3.0; };
    });
    skl.sequence({c}, "second");
    EXPECT_EQ(skl.graph().aliveCount(), 1);
    skl.run();
    skl.sync();
    app.fields[1].updateHost();
    EXPECT_DOUBLE_EQ(app.fields[1].hVal({0, 0, 0}), -3.0);
}

TEST(SchedulerEdge, ThreadedEngineHandlesWideGraphs)
{
    WideApp  app(Backend::cpu(2, Backend::EngineKind::Threaded), 4);
    Skeleton skl(app.grid.backend());
    skl.sequence(app.sequence(), "wide");
    for (int i = 0; i < 5; ++i) {
        skl.run();
    }
    skl.sync();
    app.fields[0].updateHost();
    EXPECT_DOUBLE_EQ(app.fields[0].hVal({2, 2, 2}), 10.0);
}

}  // namespace neon::skeleton
