// Graph data structure: edges, BFS levels, transitive reduction.

#include "skeleton/graph.hpp"

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"

namespace neon::skeleton {

namespace {

set::Container dummy(const char* name)
{
    static dgrid::DGrid grid(set::Backend::cpu(1), {2, 2, 2}, Stencil::laplace7());
    static auto         f = grid.newField<float>("f", 1, 0.0f);
    return grid.newContainer(name, [](auto& l) {
        auto fp = l.load(f, Access::READ);
        return [=](const dgrid::DCell&) {};
    });
}

}  // namespace

TEST(Graph, AddNodesAndEdges)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    g.addEdge(a, b, EdgeKind::RaW);
    EXPECT_TRUE(g.hasDataEdge(a, b));
    EXPECT_FALSE(g.hasDataEdge(b, a));
    EXPECT_EQ(g.dataEdgeKind(a, b), EdgeKind::RaW);
    EXPECT_EQ(g.dataParents(b), std::vector<int>{a});
    EXPECT_EQ(g.dataChildren(a), std::vector<int>{b});
}

TEST(Graph, DataEdgesDeduplicate)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(a, b, EdgeKind::WaW);  // second data edge collapses
    EXPECT_EQ(g.edges().size(), 1u);
    g.addEdge(a, b, EdgeKind::Hint);  // hint atop a data edge is redundant
    EXPECT_EQ(g.edges().size(), 1u);
}

TEST(Graph, HintDoesNotAffectDataQueries)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    g.addEdge(a, b, EdgeKind::Hint);
    EXPECT_FALSE(g.hasDataEdge(a, b));
    EXPECT_TRUE(g.dataChildren(a).empty());
    EXPECT_EQ(g.children(a, true), std::vector<int>{b});
}

TEST(Graph, KillNodeDropsEdges)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    int   c = g.addNode(dummy("c"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(b, c, EdgeKind::RaW);
    g.killNode(b);
    EXPECT_EQ(g.aliveCount(), 2);
    EXPECT_TRUE(g.edges().empty());
}

TEST(Graph, BfsLevelsRespectDependencies)
{
    // Diamond: a -> {b, c} -> d.
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    int   c = g.addNode(dummy("c"));
    int   d = g.addNode(dummy("d"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(a, c, EdgeKind::RaW);
    g.addEdge(b, d, EdgeKind::RaW);
    g.addEdge(c, d, EdgeKind::RaW);
    auto levels = g.bfsLevels(false);
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0], std::vector<int>{a});
    EXPECT_EQ(levels[1].size(), 2u);
    EXPECT_EQ(levels[2], std::vector<int>{d});
}

TEST(Graph, NodeEntersLevelAfterAllParents)
{
    // a -> b -> d, a -> d: d must land at level 2, not 1.
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    int   d = g.addNode(dummy("d"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(b, d, EdgeKind::RaW);
    g.addEdge(a, d, EdgeKind::RaW);
    auto levels = g.bfsLevels(false);
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[2], std::vector<int>{d});
}

TEST(Graph, CycleDetection)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(b, a, EdgeKind::WaR);
    EXPECT_THROW(g.bfsLevels(false), NeonException);
}

TEST(Graph, TransitiveReduceRemovesCoveredEdge)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    int   c = g.addNode(dummy("c"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(b, c, EdgeKind::RaW);
    g.addEdge(a, c, EdgeKind::RaW);  // redundant
    g.transitiveReduce();
    EXPECT_TRUE(g.hasDataEdge(a, b));
    EXPECT_TRUE(g.hasDataEdge(b, c));
    EXPECT_FALSE(g.hasDataEdge(a, c));
}

TEST(Graph, TransitiveReduceKeepsHints)
{
    Graph g;
    int   a = g.addNode(dummy("a"));
    int   b = g.addNode(dummy("b"));
    int   c = g.addNode(dummy("c"));
    g.addEdge(a, b, EdgeKind::RaW);
    g.addEdge(b, c, EdgeKind::RaW);
    g.addEdge(a, c, EdgeKind::Hint);
    g.transitiveReduce();
    EXPECT_TRUE(g.hasEdge(a, c, EdgeKind::Hint));
}

TEST(Graph, TransitiveReduceLongChain)
{
    Graph            g;
    std::vector<int> ids;
    for (int i = 0; i < 5; ++i) {
        ids.push_back(g.addNode(dummy("n")));
    }
    for (int i = 0; i + 1 < 5; ++i) {
        g.addEdge(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(i + 1)], EdgeKind::RaW);
    }
    // Add every forward shortcut.
    for (int i = 0; i < 5; ++i) {
        for (int j = i + 2; j < 5; ++j) {
            g.addEdge(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)], EdgeKind::RaW);
        }
    }
    g.transitiveReduce();
    EXPECT_EQ(g.edges().size(), 4u);  // only the chain survives
}

TEST(Graph, ToDotContainsNodes)
{
    Graph g;
    int   a = g.addNode(dummy("alpha"));
    int   b = g.addNode(dummy("beta"));
    g.addEdge(a, b, EdgeKind::RaW);
    auto dot = g.toDot();
    EXPECT_NE(dot.find("alpha"), std::string::npos);
    EXPECT_NE(dot.find("RaW"), std::string::npos);
}

}  // namespace neon::skeleton
