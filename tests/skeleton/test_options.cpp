// Options fluent builder: chaining, defaults, and argument validation.

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {
namespace {

TEST(Options, DefaultsAreNoOccEightStreams)
{
    const Options o;
    EXPECT_EQ(o.occ, Occ::NONE);
    EXPECT_EQ(o.maxStreams, 8);
}

TEST(Options, FluentChainSetsEveryField)
{
    const Options o = Options().withOcc(Occ::TWO_WAY).withMaxStreams(3);
    EXPECT_EQ(o.occ, Occ::TWO_WAY);
    EXPECT_EQ(o.maxStreams, 3);
}

TEST(Options, ChainOrderIsIrrelevant)
{
    const Options a = Options().withOcc(Occ::STANDARD).withMaxStreams(2);
    const Options b = Options().withMaxStreams(2).withOcc(Occ::STANDARD);
    EXPECT_EQ(a.occ, b.occ);
    EXPECT_EQ(a.maxStreams, b.maxStreams);
}

TEST(Options, RejectsNonPositiveMaxStreams)
{
    EXPECT_THROW(Options().withMaxStreams(0), NeonException);
    EXPECT_THROW(Options().withMaxStreams(-4), NeonException);
    EXPECT_NO_THROW(Options().withMaxStreams(1));
}

}  // namespace
}  // namespace neon::skeleton
