// ExecutionReport over skeleton run windows: the OCC overlap metric must
// distinguish Occ::NONE (no overlap) from Occ::STANDARD (halo transfers
// hidden under internal kernels), and the per-container attribution must
// name the launched containers.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {
namespace {

using set::Backend;

/// Map + stencil pipeline (the paper's Fig. 1 pattern) on a 4-device
/// simulated node with the DGX-A100 cost model.
struct Pipeline
{
    Backend        backend;
    dgrid::DGrid   grid;
    Skeleton       skl;

    explicit Pipeline(Occ occ, index_3d dim = {16, 16, 64})
        : backend(4, sys::DeviceType::CPU, sys::SimConfig::dgxA100Like()),
          grid(backend, dim, Stencil::laplace7()),
          skl(backend)
    {
        auto B = grid.newField<double>("B", 1, 0.0);
        auto C = grid.newField<double>("C", 1, 0.0);
        auto mapB = grid.newContainer("map", [=](auto& l) mutable {
            auto c = l.load(C, Access::READ);
            auto b = l.load(B, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable { b(cell) = c(cell) + 1.0; };
        });
        auto stencilC = grid.newContainer("stencil", [=](auto& l) mutable {
            auto b = l.load(B, Access::READ, Compute::STENCIL);
            auto c = l.load(C, Access::WRITE);
            return
                [=](const dgrid::DCell& cell) mutable { c(cell) = b.nghVal(cell, {0, 0, 1}); };
        });
        skl.sequence({mapB, stencilC}, "pipeline", Options().withOcc(occ));
    }

    ExecutionReport profiledRun(int iters = 2)
    {
        auto profiler = backend.profiler();
        profiler.clear();
        profiler.enable(true);
        for (int i = 0; i < iters; ++i) {
            skl.run();
        }
        skl.sync();
        profiler.enable(false);
        return skl.executionReport();
    }
};

TEST(ExecutionReport, EmptyBeforeAnyRun)
{
    Pipeline p(Occ::NONE);
    const auto report = p.skl.executionReport();
    EXPECT_TRUE(report.empty());
    EXPECT_EQ(p.skl.runWindow(), (std::pair<int, int>{-1, -1}));
}

TEST(ExecutionReport, OccNoneHasNoOverlap)
{
    Pipeline   p(Occ::NONE);
    const auto report = p.profiledRun();
    ASSERT_FALSE(report.empty());
    EXPECT_GT(report.haloBytes(), 0u);
    // Without OCC the halo update is a barrier between map and stencil:
    // no transfer time may hide under a kernel.
    EXPECT_NEAR(report.overlapPercent(), 0.0, 1.0);
}

TEST(ExecutionReport, OccStandardOverlapsTransfers)
{
    Pipeline   p(Occ::STANDARD);
    const auto report = p.profiledRun();
    ASSERT_FALSE(report.empty());
    EXPECT_GT(report.haloBytes(), 0u);
    EXPECT_GT(report.overlapPercent(), 0.0);
}

TEST(ExecutionReport, AttributesTimePerContainer)
{
    Pipeline   p(Occ::STANDARD);
    const auto report = p.profiledRun();
    bool       sawMap = false;
    bool       sawStencil = false;
    for (const auto& c : report.containers()) {
        sawMap = sawMap || c.name.find("map") != std::string::npos;
        sawStencil = sawStencil || c.name.find("stencil") != std::string::npos;
        EXPECT_GT(c.launches, 0);
    }
    EXPECT_TRUE(sawMap);
    EXPECT_TRUE(sawStencil);
}

TEST(ExecutionReport, DeviceTableCoversBackend)
{
    Pipeline   p(Occ::STANDARD);
    const auto report = p.profiledRun();
    ASSERT_EQ(report.devices().size(), 4u);
    for (const auto& d : report.devices()) {
        EXPECT_GT(d.computeBusy, 0.0);
        EXPECT_GE(d.overlap, 0.0);
        EXPECT_LE(d.overlap, d.transferBusy + 1e-12);
    }
    EXPECT_GT(report.deviceUtilization(), 0.0);
    EXPECT_LE(report.deviceUtilization(), 1.0 + 1e-12);
    EXPECT_GT(report.criticalPath(), 0.0);
    EXPECT_LE(report.criticalPath(), report.makespan() + 1e-12);
}

TEST(ExecutionReport, WindowCoversOnlyRunsSinceLastSync)
{
    Pipeline p(Occ::NONE);
    p.profiledRun(2);
    const auto w1 = p.skl.runWindow();
    EXPECT_GE(w1.first, 0);
    EXPECT_EQ(w1.second, w1.first + 1);

    // A new window opens after the sync; old entries don't leak into it.
    auto profiler = p.backend.profiler();
    profiler.enable(true);
    p.skl.run();
    p.skl.sync();
    profiler.enable(false);
    const auto w2 = p.skl.runWindow();
    EXPECT_GT(w2.first, w1.second);
    EXPECT_EQ(w2.first, w2.second);
    const auto report = p.skl.executionReport();
    ASSERT_FALSE(report.empty());
    const auto whole = profiler.report();
    EXPECT_LT(report.eventCount(), whole.eventCount());
}

TEST(ExecutionReport, SerializesToJsonAndText)
{
    Pipeline   p(Occ::STANDARD);
    const auto report = p.profiledRun();
    const auto json = report.toJson();
    for (const char* key : {"\"overlapPercent\"", "\"haloBytes\"", "\"devices\"", "\"streams\"",
                            "\"containers\"", "\"criticalPath\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }
    const auto text = report.toString();
    EXPECT_NE(text.find("overlap"), std::string::npos);
}

}  // namespace
}  // namespace neon::skeleton
