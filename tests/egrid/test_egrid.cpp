// EGrid construction: active enumeration, load-balanced partitioning,
// connectivity correctness against a brute-force reference.

#include <gtest/gtest.h>

#include <cmath>

#include "egrid/egrid.hpp"

namespace neon::egrid {

using set::Backend;

namespace {

/// Sphere-ish activity pattern (free-form domain, paper §I).
bool sphere(const index_3d& g, const index_3d& dim)
{
    const double cx = dim.x / 2.0;
    const double cy = dim.y / 2.0;
    const double cz = dim.z / 2.0;
    const double r = 0.45 * std::min({cx, cy, cz}) * 2.0;
    const double dx = g.x - cx;
    const double dy = g.y - cy;
    const double dz = g.z - cz;
    return dx * dx + dy * dy + dz * dz <= r * r;
}

}  // namespace

class EGridParam : public ::testing::TestWithParam<int>
{
};

TEST_P(EGridParam, ActiveCountMatchesPredicate)
{
    const int nDev = GetParam();
    index_3d  dim{10, 10, 24};
    EGrid grid(Backend::cpu(nDev), dim, [&](const index_3d& g) { return sphere(g, dim); },
               Stencil::laplace7());
    size_t expected = 0;
    dim.forEach([&](const index_3d& g) { expected += sphere(g, dim) ? 1 : 0; });
    EXPECT_EQ(grid.activeCount(), expected);

    size_t owned = 0;
    for (int d = 0; d < nDev; ++d) {
        owned += static_cast<size_t>(grid.part(d).nOwned);
    }
    EXPECT_EQ(owned, expected);
}

TEST_P(EGridParam, EveryActiveCellHasExactlyOneOwner)
{
    const int nDev = GetParam();
    index_3d  dim{8, 8, 24};
    EGrid grid(Backend::cpu(nDev), dim, [&](const index_3d& g) { return sphere(g, dim); });
    dim.forEach([&](const index_3d& g) {
        const bool a = sphere(g, dim);
        EXPECT_EQ(grid.isActive(g), a);
        auto [dev, idx] = grid.localOf(g);
        if (a) {
            ASSERT_GE(dev, 0);
            EXPECT_LT(idx, grid.part(dev).nOwned);
            EXPECT_EQ(grid.coords().rawHost(dev)[idx], g);
        } else {
            EXPECT_EQ(dev, -1);
        }
    });
}

TEST_P(EGridParam, ViewsPartitionOwnedCells)
{
    const int nDev = GetParam();
    index_3d  dim{8, 8, 24};
    EGrid grid(Backend::cpu(nDev), dim, [&](const index_3d& g) { return sphere(g, dim); });
    for (int d = 0; d < nDev; ++d) {
        EXPECT_EQ(grid.span(d, DataView::STANDARD).count(),
                  grid.span(d, DataView::INTERNAL).count() +
                      grid.span(d, DataView::BOUNDARY).count());
        EXPECT_EQ(grid.span(d, DataView::STANDARD).count(),
                  static_cast<size_t>(grid.part(d).nOwned));
    }
}

TEST_P(EGridParam, ConnectivityMatchesBruteForce)
{
    const int nDev = GetParam();
    index_3d  dim{6, 6, 18};
    EGrid grid(Backend::cpu(nDev), dim, [&](const index_3d& g) { return sphere(g, dim); },
               Stencil::laplace7());
    const auto& pts = grid.stencil().points();
    for (int d = 0; d < nDev; ++d) {
        const auto&     p = grid.part(d);
        const index_3d* coords = grid.coords().rawHost(d);
        const int32_t*  conn = grid.connectivity().rawHost(d);
        for (int32_t i = 0; i < p.nOwned; ++i) {
            for (size_t s = 0; s < pts.size(); ++s) {
                const index_3d n = coords[i] + pts[s];
                const int32_t  j = conn[s * static_cast<size_t>(p.nOwned) + static_cast<size_t>(i)];
                if (!dim.contains(n) || !grid.isActive(n)) {
                    EXPECT_EQ(j, -1) << coords[i].to_string() << "+" << pts[s].to_string();
                } else {
                    ASSERT_GE(j, 0);
                    ASSERT_LT(j, p.nLocal());
                    EXPECT_EQ(coords[j], n);
                }
            }
        }
    }
}

TEST_P(EGridParam, GhostCountsMatchNeighbourBoundaries)
{
    const int nDev = GetParam();
    index_3d  dim{8, 8, 24};
    EGrid grid(Backend::cpu(nDev), dim, [&](const index_3d& g) { return sphere(g, dim); });
    for (int d = 0; d < nDev; ++d) {
        const auto& p = grid.part(d);
        if (d > 0) {
            EXPECT_EQ(p.nGhostLow, grid.part(d - 1).nBdrHigh);
        } else {
            EXPECT_EQ(p.nGhostLow, 0);
            EXPECT_EQ(p.nBdrLow, 0);
        }
        if (d < nDev - 1) {
            EXPECT_EQ(p.nGhostHigh, grid.part(d + 1).nBdrLow);
        } else {
            EXPECT_EQ(p.nGhostHigh, 0);
            EXPECT_EQ(p.nBdrHigh, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, EGridParam, ::testing::Values(1, 2, 3, 4));

TEST(EGrid, LoadBalanceOnSkewedDomain)
{
    // All activity concentrated in the low-z half: the balanced partitioner
    // must cut planes unevenly so active counts stay comparable.
    index_3d dim{16, 16, 32};
    auto     lowHalf = [&](const index_3d& g) { return g.z < 16; };
    EGrid    grid(Backend::cpu(4), dim, lowHalf);
    size_t   total = grid.activeCount();
    for (int d = 0; d < 4; ++d) {
        // No partition should be wildly overloaded (ideal = total/4).
        EXPECT_LE(static_cast<size_t>(grid.part(d).nOwned), total / 4 + 16 * 16);
    }
}

TEST(EGrid, DryRunComputesCountsWithoutTables)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = true;
    Backend  b(2, sys::DeviceType::SIM_GPU, cfg);
    index_3d dim{10, 10, 20};
    EGrid    dry(b, dim, [&](const index_3d& g) { return sphere(g, dim); });

    EGrid real(Backend::cpu(2), dim, [&](const index_3d& g) { return sphere(g, dim); });
    EXPECT_EQ(dry.activeCount(), real.activeCount());
    for (int d = 0; d < 2; ++d) {
        EXPECT_EQ(dry.part(d).nOwned, real.part(d).nOwned);
        EXPECT_EQ(dry.part(d).nBdrLow, real.part(d).nBdrLow);
        EXPECT_EQ(dry.part(d).nGhostHigh, real.part(d).nGhostHigh);
    }
    EXPECT_FALSE(dry.isActive({5, 5, 10}));  // host map not built in dry-run
    EXPECT_GT(b.device(0).bytesInUse(), 0u);  // but memory is accounted
}

}  // namespace neon::egrid
