// EPartition slot-based neighbour access and the offset->slot LUT.

#include <gtest/gtest.h>

#include "dgrid/dgrid.hpp"
#include "egrid/efield.hpp"
#include "set/container.hpp"

namespace neon::egrid {

using set::Backend;

TEST(ESlots, NghDataSlotMatchesOffsetAccess)
{
    const index_3d dim{6, 6, 12};
    EGrid grid(Backend::cpu(2), dim, [](const index_3d& g) { return (g.x + g.z) % 4 != 0; },
               Stencil::laplace7());
    auto f = grid.newField<double>("f", 1, -1.0);
    f.forEachActiveHost([](const index_3d& g, int, double& v) { v = g.x + 10.0 * g.z; });
    f.updateDev();
    set::StreamSet streams(grid.backend(), 0);
    set::Container::haloUpdate(f.haloOps()).run(streams);
    grid.backend().sync();

    const auto& pts = grid.stencil().points();
    for (int d = 0; d < 2; ++d) {
        auto part = f.getPartition(d);
        grid.span(d, DataView::STANDARD).forEach([&](const ECell& cell) {
            for (size_t s = 0; s < pts.size(); ++s) {
                const auto bySlot = part.nghDataSlot(cell, static_cast<int32_t>(s), 0);
                const auto byOff = part.nghData(cell, pts[s], 0);
                EXPECT_EQ(bySlot.isValid, byOff.isValid);
                EXPECT_DOUBLE_EQ(bySlot.value, byOff.value);
            }
        });
    }
}

TEST(ESlots, OffsetOutsideLutReturnsOutside)
{
    const index_3d dim{6, 6, 12};
    EGrid grid(Backend::cpu(1), dim, [](const index_3d&) { return true; },
               Stencil::laplace7());
    auto f = grid.newField<double>("f", 1, -5.0);
    auto part = f.getPartition(0);
    // (2,0,0) is beyond the LUT radius of the 7-point stencil.
    const auto far = part.nghData(ECell{0}, {2, 0, 0}, 0);
    EXPECT_FALSE(far.isValid);
    EXPECT_DOUBLE_EQ(far.value, -5.0);
    // (1,1,0) is inside the LUT box but not a registered stencil point.
    const auto diag = part.nghData(ECell{0}, {1, 1, 0}, 0);
    EXPECT_FALSE(diag.isValid);
}

TEST(ESlots, MultiStencilUnionConstructor)
{
    const index_3d dim{6, 6, 12};
    EGrid grid(Backend::cpu(1), dim, [](const index_3d&) { return true; },
               std::vector<Stencil>{Stencil::laplace7(), Stencil::box27()});
    EXPECT_EQ(grid.stencilPointCount(), 26);  // union = box27
    dgrid::DGrid dense(Backend::cpu(1), dim,
                       std::vector<Stencil>{Stencil::laplace7(), Stencil::box27()});
    EXPECT_EQ(dense.stencil().pointCount(), 26);
}

}  // namespace neon::egrid
