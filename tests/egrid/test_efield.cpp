// EField: host access, partition access, halo exchange and dense/sparse
// equivalence of a stencil computation.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "set/container.hpp"

namespace neon::egrid {

using set::Backend;
using set::Container;
using set::StreamSet;

namespace {

bool slab(const index_3d& g)
{
    return g.y >= 2 && g.y < 6;  // free-form: a y-slab of the box
}

double truth(const index_3d& g, int c)
{
    return 1.0 + g.x + 31.0 * g.y + 961.0 * g.z + 29791.0 * c;
}

}  // namespace

struct ECase
{
    int       nDev;
    int       card;
    MemLayout layout;
};

class EFieldParam : public ::testing::TestWithParam<ECase>
{
};

TEST_P(EFieldParam, HostRoundTrip)
{
    const auto [nDev, card, layout] = GetParam();
    EGrid grid(Backend::cpu(nDev), {8, 8, 16}, slab, Stencil::laplace7());
    auto  f = grid.newField<double>("f", card, 0.0, layout);
    f.forEachActiveHost([](const index_3d& g, int c, double& v) { v = truth(g, c); });
    f.updateDev();
    f.fillHost(0.0);
    f.updateHost();
    f.forEachActiveHost(
        [](const index_3d& g, int c, double& v) { EXPECT_DOUBLE_EQ(v, truth(g, c)); });
}

TEST_P(EFieldParam, NeighbourAccessAfterHaloMatchesTruth)
{
    const auto [nDev, card, layout] = GetParam();
    EGrid grid(Backend::cpu(nDev), {8, 8, 16}, slab, Stencil::laplace7());
    auto  f = grid.newField<double>("f", card, -5.0, layout);
    f.forEachActiveHost([](const index_3d& g, int c, double& v) { v = truth(g, c); });
    f.updateDev();

    StreamSet streams(grid.backend(), 0);
    Container::haloUpdate(f.haloOps()).run(streams);
    grid.backend().sync();

    for (int d = 0; d < nDev; ++d) {
        auto part = f.getPartition(d);
        grid.span(d, DataView::STANDARD).forEach([&](const ECell& cell) {
            const index_3d g = part.globalIdx(cell);
            for (const auto& off : grid.stencil().points()) {
                const index_3d n = g + off;
                for (int c = 0; c < card; ++c) {
                    const auto got = part.nghData(cell, off, c);
                    if (grid.isActive(n)) {
                        EXPECT_TRUE(got.isValid);
                        EXPECT_DOUBLE_EQ(got.value, truth(n, c))
                            << g.to_string() << " + " << off.to_string();
                    } else {
                        EXPECT_FALSE(got.isValid);
                        EXPECT_DOUBLE_EQ(got.value, -5.0);
                    }
                }
            }
        });
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EFieldParam,
    ::testing::Values(ECase{1, 1, MemLayout::structOfArrays},
                      ECase{2, 1, MemLayout::structOfArrays},
                      ECase{2, 3, MemLayout::structOfArrays},
                      ECase{2, 3, MemLayout::arrayOfStructs},
                      ECase{4, 2, MemLayout::structOfArrays},
                      ECase{4, 2, MemLayout::arrayOfStructs}),
    [](const auto& info) {
        return "dev" + std::to_string(info.param.nDev) + "_card" +
               std::to_string(info.param.card) + "_" +
               (info.param.layout == MemLayout::structOfArrays ? "SoA" : "AoS");
    });

TEST(EField, LaplacianMatchesDenseGridOnFullBox)
{
    // Same 7-point Laplacian computed on a fully-dense EGrid and a DGrid:
    // identical results — "decouple data structure from computation".
    const index_3d dim{6, 6, 12};
    auto           all = [](const index_3d&) { return true; };

    Backend      cb = Backend::cpu(2);
    dgrid::DGrid dg(cb, dim, Stencil::laplace7());
    Backend      eb = Backend::cpu(2);
    EGrid        eg(eb, dim, all, Stencil::laplace7());

    auto init = [](const index_3d& g, int, double& v) {
        v = 0.3 * g.x * g.x - 0.7 * g.y + 1.1 * g.z * g.x;
    };

    auto dIn = dg.newField<double>("in", 1, 0.0);
    auto dOut = dg.newField<double>("out", 1, 0.0);
    auto eIn = eg.newField<double>("in", 1, 0.0);
    auto eOut = eg.newField<double>("out", 1, 0.0);
    dIn.forEachHost(init);
    eIn.forEachActiveHost(init);
    dIn.updateDev();
    eIn.updateDev();

    // The same generic lambda body for both grids.
    auto makeLaplace = [](auto& grid, auto& in, auto& out) {
        return grid.newContainer("laplace", [&](auto& l) {
            auto ip = l.load(in, Access::READ, Compute::STENCIL);
            auto op = l.load(out, Access::WRITE);
            return [=](const auto& cell) mutable {
                double acc = -6.0 * ip(cell);
                for (const auto& off : std::initializer_list<index_3d>{
                         {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}) {
                    acc += ip.nghVal(cell, off);
                }
                op(cell) = acc;
            };
        });
    };

    StreamSet ds(cb, 0);
    Container::haloUpdate(dIn.haloOps()).run(ds);
    makeLaplace(dg, dIn, dOut).run(ds);
    cb.sync();
    dOut.updateHost();

    StreamSet es(eb, 0);
    Container::haloUpdate(eIn.haloOps()).run(es);
    makeLaplace(eg, eIn, eOut).run(es);
    eb.sync();
    eOut.updateHost();

    dim.forEach([&](const index_3d& g) {
        EXPECT_NEAR(dOut.hVal(g), eOut.hVal(g), 1e-12) << g.to_string();
    });
}

TEST(EField, SparseAllocatesOnlyActiveCells)
{
    const index_3d dim{8, 8, 16};
    EGrid          grid(Backend::cpu(1), dim, slab);
    auto           f = grid.newField<float>("f", 1, 0.0f);
    EXPECT_EQ(f.allocatedBytes(), grid.activeCount() * sizeof(float));
    EXPECT_LT(grid.activeCount(), dim.size());
}

TEST(EField, StencilBytesIncludeConnectivity)
{
    EGrid grid(Backend::cpu(1), {8, 8, 16}, slab, Stencil::laplace7());
    auto  f = grid.newField<float>("f", 1, 0.0f);
    EXPECT_DOUBLE_EQ(f.bytesPerItem(Compute::MAP), 4.0);
    EXPECT_DOUBLE_EQ(f.bytesPerItem(Compute::STENCIL), 4.0 + 4.0 * 6);
}

}  // namespace neon::egrid
