// Damped Jacobi solver and the Max/Min reduction machinery it exercises.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "patterns/blas.hpp"
#include "poisson/poisson.hpp"
#include "solver/jacobi.hpp"

namespace neon::solver {

using set::Backend;
using set::GlobalScalar;
using set::ReduceOp;

namespace {
constexpr index_3d kDim{10, 10, 10};
}

TEST(MaxReduce, NormInfAcrossDevices)
{
    dgrid::DGrid grid(Backend::cpu(3), kDim, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 2, 0.0);
    f.forEachHost([](const index_3d& g, int c, double& v) {
        v = (g == index_3d{7, 3, 9} && c == 1) ? -42.5 : 0.25 * g.x - 0.125 * g.z;
    });
    f.updateDev();

    GlobalScalar<double> inf(grid.backend(), "inf", 0.0, ReduceOp::Max);
    skeleton::Skeleton   skl(grid.backend());
    skl.sequence({patterns::normInf(grid, f, inf)}, "inf");
    skl.run();
    skl.sync();
    EXPECT_DOUBLE_EQ(inf.hostValue(), 42.5);

    // Second run must not be contaminated by stale partials.
    skl.run();
    skl.sync();
    EXPECT_DOUBLE_EQ(inf.hostValue(), 42.5);
}

TEST(MaxReduce, IdentityAndFold)
{
    Backend              b = Backend::cpu(1);
    GlobalScalar<double> mx(b, "mx", 0.0, ReduceOp::Max);
    GlobalScalar<double> mn(b, "mn", 0.0, ReduceOp::Min);
    GlobalScalar<double> sm(b, "sm", 0.0, ReduceOp::Sum);
    EXPECT_LT(mx.identity(), -1e300);
    EXPECT_GT(mn.identity(), 1e300);
    EXPECT_EQ(sm.identity(), 0.0);

    double acc = mx.identity();
    mx.fold(acc, 3.0);
    mx.fold(acc, -7.0);
    EXPECT_DOUBLE_EQ(acc, 3.0);
    acc = mn.identity();
    mn.fold(acc, 3.0);
    mn.fold(acc, -7.0);
    EXPECT_DOUBLE_EQ(acc, -7.0);
}

TEST(Jacobi, ConvergesOnPoisson)
{
    dgrid::DGrid grid(Backend::cpu(2), kDim, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         b = grid.newField<double>("b", 1, 0.0);
    const poisson::SineProblem problem(kDim);
    b.forEachHost([&](const index_3d& g, int, double& v) { v = problem.rhs(g); });
    b.updateDev();

    std::function<set::Container(dgrid::DField<double>, dgrid::DField<double>)> apply =
        [&grid](dgrid::DField<double> in, dgrid::DField<double> out) {
            return poisson::makeLaplacianApply(grid, in, out);
        };

    JacobiOptions options;
    options.maxIterations = 2000;
    options.tolerance = 1e-7;
    auto result = jacobiSolve<dgrid::DGrid, dgrid::DField<double>, double>(grid, apply, x, b,
                                                                           options);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.relativeResidual, 1e-7);

    x.updateHost();
    double maxErr = 0.0;
    kDim.forEach([&](const index_3d& g) {
        maxErr = std::max(maxErr, std::abs(x.hVal(g) - problem.exactU(g)));
    });
    EXPECT_LT(maxErr, 2e-2);  // first-order smoother at loose tolerance
}

TEST(Jacobi, OccAndDeviceCountDoNotChangeIterations)
{
    auto run = [](int nDev, Occ occ) {
        dgrid::DGrid grid(Backend::cpu(nDev), kDim, Stencil::laplace7());
        auto         x = grid.newField<double>("x", 1, 0.0);
        auto         b = grid.newField<double>("b", 1, 0.0);
        const poisson::SineProblem problem(kDim);
        b.forEachHost([&](const index_3d& g, int, double& v) { v = problem.rhs(g); });
        b.updateDev();
        std::function<set::Container(dgrid::DField<double>, dgrid::DField<double>)> apply =
            [&grid](dgrid::DField<double> in, dgrid::DField<double> out) {
                return poisson::makeLaplacianApply(grid, in, out);
            };
        JacobiOptions options;
        options.maxIterations = 600;
        options.tolerance = 1e-6;
        return jacobiSolve<dgrid::DGrid, dgrid::DField<double>, double>(grid, apply, x, b,
                                                                        options);
    };
    const auto a = run(1, Occ::NONE);
    const auto b = run(4, Occ::TWO_WAY);
    EXPECT_TRUE(a.converged);
    EXPECT_TRUE(b.converged);
    EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace neon::solver
