// CG + Poisson: convergence, accuracy against the analytic solution and
// against the native baseline, across device counts, OCC variants, engines
// and grid types.

#include <gtest/gtest.h>

#include <tuple>

#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "poisson/native.hpp"
#include "poisson/poisson.hpp"

namespace neon {

using set::Backend;

namespace {

constexpr index_3d kDim{14, 14, 14};

double solveDense(int nDev, Occ occ, Backend::EngineKind engine, solver::CgResult* resultOut,
                  std::vector<double>* xOut = nullptr)
{
    Backend      backend(nDev, sys::DeviceType::CPU, sys::SimConfig::zeroCost(), engine);
    dgrid::DGrid grid(backend, kDim, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         b = grid.newField<double>("b", 1, 0.0);

    solver::CgOptions options;
    options.maxIterations = 300;
    options.tolerance = 1e-10;
    options.occ = occ;
    auto result = poisson::solveSine(grid, x, b, options);
    if (resultOut != nullptr) {
        *resultOut = result;
    }

    x.updateHost();
    const poisson::SineProblem problem(kDim);
    double                     maxErr = 0.0;
    if (xOut != nullptr) {
        xOut->assign(kDim.size(), 0.0);
    }
    kDim.forEach([&](const index_3d& g) {
        maxErr = std::max(maxErr, std::abs(x.hVal(g) - problem.exactU(g)));
        if (xOut != nullptr) {
            (*xOut)[kDim.pitch(g)] = x.hVal(g);
        }
    });
    return maxErr;
}

}  // namespace

using CgCase = std::tuple<int, Occ, Backend::EngineKind>;

class CgPoisson : public ::testing::TestWithParam<CgCase>
{
};

TEST_P(CgPoisson, ConvergesToAnalyticSolution)
{
    const auto [nDev, occ, engine] = GetParam();
    solver::CgResult result;
    const double     maxErr = solveDense(nDev, occ, engine, &result);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.relativeResidual, 1e-10);
    // Discretization error of the 7-point stencil at this resolution.
    EXPECT_LT(maxErr, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CgPoisson,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY),
                       ::testing::Values(Backend::EngineKind::Sequential,
                                         Backend::EngineKind::Threaded)),
    [](const auto& info) {
        return "dev" + std::to_string(std::get<0>(info.param)) + "_" +
               to_string(std::get<1>(info.param)) + "_" +
               (std::get<2>(info.param) == Backend::EngineKind::Sequential ? "seq" : "thr");
    });

TEST(CgPoisson, MatchesNativeBaseline)
{
    poisson::native::NativeCg baseline(kDim);
    baseline.setupSineProblem();
    auto nativeResult = baseline.solve(300, 1e-10);
    EXPECT_TRUE(nativeResult.converged);

    std::vector<double> neonX;
    solver::CgResult    neonResult;
    solveDense(2, Occ::TWO_WAY, Backend::EngineKind::Sequential, &neonResult, &neonX);

    // Same operator, same algorithm: iteration counts match and solutions
    // agree to solver tolerance.
    EXPECT_NEAR(neonResult.iterations, nativeResult.iterations, 2);
    kDim.forEach([&](const index_3d& g) {
        EXPECT_NEAR(neonX[kDim.pitch(g)], baseline.solution()[kDim.pitch(g)], 1e-8);
    });
}

TEST(CgPoisson, IterationCountIndependentOfDeviceCount)
{
    solver::CgResult r1;
    solver::CgResult r4;
    solveDense(1, Occ::NONE, Backend::EngineKind::Sequential, &r1);
    solveDense(4, Occ::TWO_WAY, Backend::EngineKind::Sequential, &r4);
    EXPECT_NEAR(r1.iterations, r4.iterations, 2);
}

TEST(CgPoisson, SolvesOnSparseGridFullBox)
{
    // Fully-dense EGrid must reproduce the dense answer: the solver is
    // data-structure agnostic (paper §VI-C).
    Backend      backend = Backend::cpu(2);
    egrid::EGrid grid(backend, kDim, [](const index_3d&) { return true; },
                      Stencil::laplace7());
    auto x = grid.newField<double>("x", 1, 0.0);
    auto b = grid.newField<double>("b", 1, 0.0);

    solver::CgOptions options;
    options.maxIterations = 300;
    options.tolerance = 1e-10;
    options.occ = Occ::STANDARD;
    auto result = poisson::solveSine(grid, x, b, options);
    EXPECT_TRUE(result.converged);

    x.updateHost();
    const poisson::SineProblem problem(kDim);
    double                     maxErr = 0.0;
    x.forEachActiveHost([&](const index_3d& g, int, double& v) {
        maxErr = std::max(maxErr, std::abs(v - problem.exactU(g)));
    });
    EXPECT_LT(maxErr, 5e-3);
}

TEST(CgPoisson, CheckEveryReducesSyncsWithoutChangingResult)
{
    Backend      backend = Backend::cpu(2);
    dgrid::DGrid grid(backend, kDim, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         b = grid.newField<double>("b", 1, 0.0);
    solver::CgOptions options;
    options.maxIterations = 300;
    options.tolerance = 1e-10;
    options.checkEvery = 10;
    auto result = poisson::solveSine(grid, x, b, options);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations % 10, 0);
}

TEST(CgPoisson, ZeroRhsConvergesImmediately)
{
    Backend      backend = Backend::cpu(1);
    dgrid::DGrid grid(backend, {6, 6, 6}, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         b = grid.newField<double>("b", 1, 0.0);

    std::function<set::Container(dgrid::DField<double>, dgrid::DField<double>)> apply =
        [&grid](dgrid::DField<double> in, dgrid::DField<double> out) {
            return poisson::makeLaplacianApply(grid, in, out);
        };
    auto result =
        solver::cgSolve<dgrid::DGrid, dgrid::DField<double>, double>(grid, apply, x, b, {});
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0);
}

}  // namespace neon
