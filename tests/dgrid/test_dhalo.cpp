// Halo update correctness for DField: after haloUpdate, neighbour reads
// across partition boundaries see the owning partition's values, for every
// layout / cardinality / device-count combination. Also checks the transfer
// count accounting of §IV-C2 (2 per device for AoS, 2*card for SoA).

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "set/container.hpp"

namespace neon::dgrid {

using set::Backend;
using set::Container;
using set::StreamSet;

struct HaloCase
{
    int       nDev;
    int       card;
    MemLayout layout;
};

class DHaloParam : public ::testing::TestWithParam<HaloCase>
{
};

TEST_P(DHaloParam, NeighbourReadsSeeOwnerValuesAfterHalo)
{
    const auto [nDev, card, layout] = GetParam();
    DGrid grid(Backend::cpu(nDev), {4, 4, 16}, Stencil::laplace7());
    auto  f = grid.newField<double>("f", card, -7.0, layout);
    f.forEachHost([](const index_3d& g, int c, double& v) {
        v = g.x + 17.0 * g.y + 289.0 * g.z + 4913.0 * c;
    });
    f.updateDev();

    StreamSet streams(grid.backend(), 0);
    auto      h = Container::haloUpdate(f.haloOps());
    h.run(streams);
    grid.backend().sync();

    // Every neighbour read from every owned cell must match the global
    // ground truth (or the outside value off-domain).
    for (int d = 0; d < nDev; ++d) {
        auto part = f.getPartition(d);
        // Re-point partition at the *device* buffer (already is) but read on
        // host: CPU backend device buffers are host memory.
        grid.span(d, DataView::STANDARD).forEach([&](const DCell& cell) {
            const index_3d g = part.globalIdx(cell);
            for (const auto& off : grid.stencil().points()) {
                const index_3d n = g + off;
                for (int c = 0; c < card; ++c) {
                    const auto got = part.nghData(cell, off, c);
                    if (grid.dim().contains(n)) {
                        EXPECT_TRUE(got.isValid);
                        EXPECT_DOUBLE_EQ(got.value, n.x + 17.0 * n.y + 289.0 * n.z + 4913.0 * c)
                            << "cell " << g.to_string() << " off " << off.to_string();
                    } else {
                        EXPECT_FALSE(got.isValid);
                        EXPECT_DOUBLE_EQ(got.value, -7.0);
                    }
                }
            }
        });
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DHaloParam,
    ::testing::Values(HaloCase{2, 1, MemLayout::structOfArrays},
                      HaloCase{2, 3, MemLayout::structOfArrays},
                      HaloCase{2, 3, MemLayout::arrayOfStructs},
                      HaloCase{4, 1, MemLayout::structOfArrays},
                      HaloCase{4, 5, MemLayout::arrayOfStructs},
                      HaloCase{8, 2, MemLayout::structOfArrays}),
    [](const auto& info) {
        return "dev" + std::to_string(info.param.nDev) + "_card" +
               std::to_string(info.param.card) + "_" +
               (info.param.layout == MemLayout::structOfArrays ? "SoA" : "AoS");
    });

namespace {

/// Count transfer chunks a halo send enqueues for one device.
size_t chunkCount(const DField<float>& f, int dev)
{
    auto& backend = f.grid().backend();
    backend.profiler().trace().clear();
    backend.profiler().trace().enable(true);
    f.haloOps()->enqueueHaloSend(dev, backend.stream(dev));
    backend.sync();
    backend.profiler().trace().enable(false);
    size_t n = 0;
    for (const auto& e : backend.profiler().trace().entries()) {
        if (e.kind == "transfer") {
            ++n;
        }
    }
    return n;
}

}  // namespace

TEST(DHalo, AoSUsesTwoTransfersPerInteriorDevice)
{
    DGrid grid(Backend::cpu(3), {4, 4, 12}, Stencil::laplace7());
    auto  f = grid.newField<float>("f", 4, 0.0f, MemLayout::arrayOfStructs);
    EXPECT_EQ(chunkCount(f, 1), 2u);  // one send per direction
    EXPECT_EQ(chunkCount(f, 0), 1u);  // edge device: one neighbour
}

TEST(DHalo, SoAUsesTwoTransfersPerComponent)
{
    DGrid grid(Backend::cpu(3), {4, 4, 12}, Stencil::laplace7());
    auto  f = grid.newField<float>("f", 4, 0.0f, MemLayout::structOfArrays);
    EXPECT_EQ(chunkCount(f, 1), 2u * 4);
    EXPECT_EQ(chunkCount(f, 2), 1u * 4);
}

TEST(DHalo, SingleDeviceHaloIsNoop)
{
    DGrid grid(Backend::cpu(1), {4, 4, 4}, Stencil::laplace7());
    auto  f = grid.newField<float>("f", 1, 0.0f);
    EXPECT_EQ(chunkCount(f, 0), 0u);
}

}  // namespace neon::dgrid
