// DGrid partitioning and data-view spans, swept over device counts.

#include <gtest/gtest.h>

#include "dgrid/dgrid.hpp"

namespace neon::dgrid {

using set::Backend;

class DGridParam : public ::testing::TestWithParam<int>
{
};

TEST_P(DGridParam, PartitionCoversDomainWithoutOverlap)
{
    const int nDev = GetParam();
    DGrid     grid(Backend::cpu(nDev), {5, 6, 24}, Stencil::laplace7());
    int32_t   next = 0;
    for (int d = 0; d < nDev; ++d) {
        const auto& p = grid.part(d);
        EXPECT_EQ(p.zOrigin, next);
        EXPECT_GT(p.zCount, 0);
        next += p.zCount;
    }
    EXPECT_EQ(next, 24);
}

TEST_P(DGridParam, PartitionIsBalanced)
{
    const int nDev = GetParam();
    DGrid     grid(Backend::cpu(nDev), {5, 6, 25}, Stencil::laplace7());
    int32_t   minC = 1 << 30;
    int32_t   maxC = 0;
    for (int d = 0; d < nDev; ++d) {
        minC = std::min(minC, grid.part(d).zCount);
        maxC = std::max(maxC, grid.part(d).zCount);
    }
    EXPECT_LE(maxC - minC, 1);
}

TEST_P(DGridParam, ViewsPartitionTheStandardSpan)
{
    const int nDev = GetParam();
    DGrid     grid(Backend::cpu(nDev), {4, 3, 24}, Stencil::laplace7());
    for (int d = 0; d < nDev; ++d) {
        const size_t std_ = grid.span(d, DataView::STANDARD).count();
        const size_t int_ = grid.span(d, DataView::INTERNAL).count();
        const size_t bdr = grid.span(d, DataView::BOUNDARY).count();
        EXPECT_EQ(std_, int_ + bdr);
        EXPECT_EQ(std_, 4u * 3 * static_cast<size_t>(grid.part(d).zCount));
    }
}

TEST_P(DGridParam, BoundaryOnlyWhereNeighboursExist)
{
    const int nDev = GetParam();
    DGrid     grid(Backend::cpu(nDev), {4, 4, 24}, Stencil::laplace7());
    for (int d = 0; d < nDev; ++d) {
        const auto& p = grid.part(d);
        EXPECT_EQ(p.hasLow, d > 0);
        EXPECT_EQ(p.hasHigh, d < nDev - 1);
        EXPECT_EQ(p.bLow > 0, p.hasLow);
        EXPECT_EQ(p.bHigh > 0, p.hasHigh);
    }
    if (nDev == 1) {
        EXPECT_EQ(grid.span(0, DataView::BOUNDARY).count(), 0u);
        EXPECT_EQ(grid.span(0, DataView::INTERNAL).count(), grid.cellCount());
    }
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, DGridParam, ::testing::Values(1, 2, 3, 4, 8));

TEST(DGrid, HaloRadiusFollowsStencil)
{
    EXPECT_EQ(DGrid(Backend::cpu(1), {4, 4, 4}, Stencil::laplace7()).haloRadius(), 1);
    Stencil wide({{0, 0, 2}, {0, 0, -2}}, "wide");
    EXPECT_EQ(DGrid(Backend::cpu(1), {4, 4, 8}, wide).haloRadius(), 2);
}

TEST(DGrid, RejectsTooManyDevices)
{
    EXPECT_THROW(DGrid(Backend::cpu(9), {4, 4, 8}, Stencil::laplace7()), NeonException);
}

TEST(DGrid, SpanForEachVisitsDistinctCells)
{
    DGrid grid(Backend::cpu(2), {3, 3, 8}, Stencil::laplace7());
    for (int d = 0; d < 2; ++d) {
        for (auto view : {DataView::STANDARD, DataView::INTERNAL, DataView::BOUNDARY}) {
            size_t n = 0;
            grid.span(d, view).forEach([&](const DCell&) { ++n; });
            EXPECT_EQ(n, grid.span(d, view).count());
        }
    }
}

TEST(SplitBalanced, Properties)
{
    for (int total : {8, 13, 100}) {
        for (int n : {1, 2, 3, 7}) {
            if (total < n) {
                continue;
            }
            auto    c = splitBalanced(total, n);
            int32_t sum = 0;
            for (auto v : c) {
                sum += v;
                EXPECT_GE(v, total / n);
                EXPECT_LE(v, total / n + 1);
            }
            EXPECT_EQ(sum, total);
        }
    }
}

}  // namespace neon::dgrid
