// DField indexing: layouts x cardinalities x device counts; host mirror.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"

namespace neon::dgrid {

using set::Backend;

struct FieldCase
{
    int       nDev;
    int       card;
    MemLayout layout;
};

class DFieldParam : public ::testing::TestWithParam<FieldCase>
{
};

TEST_P(DFieldParam, HostRoundTripThroughDevice)
{
    const auto [nDev, card, layout] = GetParam();
    DGrid grid(Backend::cpu(nDev), {5, 4, 12}, Stencil::laplace7());
    auto  f = grid.newField<float>("f", card, -1.0f, layout);

    f.forEachHost([](const index_3d& g, int c, float& v) {
        v = static_cast<float>(g.x + 10 * g.y + 100 * g.z + 1000 * c);
    });
    f.updateDev();
    // Overwrite host mirror, read back from device.
    f.fillHost(0.0f);
    f.updateHost();
    f.forEachHost([](const index_3d& g, int c, float& v) {
        EXPECT_EQ(v, static_cast<float>(g.x + 10 * g.y + 100 * g.z + 1000 * c));
    });
}

TEST_P(DFieldParam, PartitionAccessMatchesHostMirror)
{
    const auto [nDev, card, layout] = GetParam();
    DGrid grid(Backend::cpu(nDev), {4, 4, 12}, Stencil::laplace7());
    auto  f = grid.newField<double>("f", card, 0.0, layout);
    f.forEachHost([](const index_3d& g, int c, double& v) { v = g.x + 3.0 * g.z + 7.0 * c; });
    f.updateDev();

    for (int d = 0; d < nDev; ++d) {
        auto part = f.getPartition(d);
        grid.span(d, DataView::STANDARD).forEach([&](const DCell& cell) {
            const index_3d g = part.globalIdx(cell);
            for (int c = 0; c < card; ++c) {
                EXPECT_DOUBLE_EQ(part(cell, c), g.x + 3.0 * g.z + 7.0 * c);
            }
        });
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DFieldParam,
    ::testing::Values(FieldCase{1, 1, MemLayout::structOfArrays},
                      FieldCase{1, 3, MemLayout::structOfArrays},
                      FieldCase{1, 3, MemLayout::arrayOfStructs},
                      FieldCase{2, 1, MemLayout::structOfArrays},
                      FieldCase{3, 4, MemLayout::structOfArrays},
                      FieldCase{3, 4, MemLayout::arrayOfStructs},
                      FieldCase{4, 19, MemLayout::structOfArrays}),
    [](const auto& info) {
        return "dev" + std::to_string(info.param.nDev) + "_card" +
               std::to_string(info.param.card) + "_" +
               (info.param.layout == MemLayout::structOfArrays ? "SoA" : "AoS");
    });

TEST(DField, OutsideDomainReturnsOutsideValue)
{
    DGrid grid(Backend::cpu(1), {3, 3, 3}, Stencil::laplace7());
    auto  f = grid.newField<float>("f", 1, 42.0f);
    f.forEachHost([](const index_3d&, int, float& v) { v = 1.0f; });
    f.updateDev();
    auto part = f.getPartition(0);

    auto low = part.nghData({0, 0, 0}, {-1, 0, 0});
    EXPECT_FALSE(low.isValid);
    EXPECT_EQ(low.value, 42.0f);
    auto high = part.nghData({2, 2, 2}, {0, 0, 1});
    EXPECT_FALSE(high.isValid);
    EXPECT_EQ(high.value, 42.0f);
    auto in = part.nghData({1, 1, 1}, {0, 0, 1});
    EXPECT_TRUE(in.isValid);
    EXPECT_EQ(in.value, 1.0f);
}

TEST(DField, SoABufferIsComponentMajor)
{
    DGrid grid(Backend::cpu(1), {2, 2, 2}, Stencil::laplace7());
    auto  f = grid.newField<int>("f", 2, 0, MemLayout::structOfArrays);
    auto  p = f.getPartition(0);
    // Component stride is one full (z+halo) volume.
    const size_t compStride = static_cast<size_t>(2) * 2 * (2 + 2 * grid.haloRadius());
    EXPECT_EQ(p.bufIdx(0, 0, 0, 1) - p.bufIdx(0, 0, 0, 0), compStride);
    EXPECT_EQ(p.bufIdx(1, 0, 0, 0) - p.bufIdx(0, 0, 0, 0), 1u);
}

TEST(DField, AoSBufferIsCellMajor)
{
    DGrid grid(Backend::cpu(1), {2, 2, 2}, Stencil::laplace7());
    auto  f = grid.newField<int>("f", 3, 0, MemLayout::arrayOfStructs);
    auto  p = f.getPartition(0);
    EXPECT_EQ(p.bufIdx(0, 0, 0, 1) - p.bufIdx(0, 0, 0, 0), 1u);
    EXPECT_EQ(p.bufIdx(1, 0, 0, 0) - p.bufIdx(0, 0, 0, 0), 3u);
}

TEST(DField, AllocatedBytesCoverHalos)
{
    DGrid  grid(Backend::cpu(2), {4, 4, 8}, Stencil::laplace7());
    auto   f = grid.newField<float>("f", 2, 0.0f);
    size_t expected = 0;
    for (int d = 0; d < 2; ++d) {
        expected += 4u * 4 * (grid.part(d).zCount + 2) * 2 * sizeof(float);
    }
    EXPECT_EQ(f.allocatedBytes(), expected);
}

}  // namespace neon::dgrid
