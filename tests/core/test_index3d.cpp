#include "core/index3d.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace neon {

TEST(Index3d, SizeAndPitch)
{
    index_3d dim{4, 5, 6};
    EXPECT_EQ(dim.size(), 120u);
    EXPECT_EQ(dim.pitch({0, 0, 0}), 0u);
    EXPECT_EQ(dim.pitch({1, 0, 0}), 1u);
    EXPECT_EQ(dim.pitch({0, 1, 0}), 4u);
    EXPECT_EQ(dim.pitch({0, 0, 1}), 20u);
    EXPECT_EQ(dim.pitch({3, 4, 5}), 119u);
}

TEST(Index3d, PitchRoundTrip)
{
    index_3d dim{3, 7, 5};
    for (size_t flat = 0; flat < dim.size(); ++flat) {
        EXPECT_EQ(dim.pitch(dim.fromPitch(flat)), flat);
    }
}

TEST(Index3d, Contains)
{
    index_3d dim{2, 2, 2};
    EXPECT_TRUE(dim.contains({0, 0, 0}));
    EXPECT_TRUE(dim.contains({1, 1, 1}));
    EXPECT_FALSE(dim.contains({2, 0, 0}));
    EXPECT_FALSE(dim.contains({0, -1, 0}));
    EXPECT_FALSE(dim.contains({0, 0, 2}));
}

TEST(Index3d, Arithmetic)
{
    index_3d a{1, 2, 3};
    index_3d b{4, 5, 6};
    EXPECT_EQ(a + b, (index_3d{5, 7, 9}));
    EXPECT_EQ(b - a, (index_3d{3, 3, 3}));
    EXPECT_EQ(a * 2, (index_3d{2, 4, 6}));
}

TEST(Index3d, ForEachVisitsAllOnce)
{
    index_3d                     dim{3, 4, 2};
    std::unordered_set<index_3d> seen;
    dim.forEach([&](const index_3d& c) {
        EXPECT_TRUE(dim.contains(c));
        EXPECT_TRUE(seen.insert(c).second) << "duplicate visit";
    });
    EXPECT_EQ(seen.size(), dim.size());
}

TEST(Index3d, ZyxLessMatchesEnumerationOrder)
{
    index_3d              dim{2, 2, 2};
    std::vector<index_3d> order;
    dim.forEach([&](const index_3d& c) { order.push_back(c); });
    for (size_t i = 1; i < order.size(); ++i) {
        EXPECT_TRUE(order[i - 1].zyxLess(order[i]));
    }
}

}  // namespace neon
