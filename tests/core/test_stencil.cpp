#include "core/stencil.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace neon {

TEST(Stencil, Laplace7)
{
    auto s = Stencil::laplace7();
    EXPECT_EQ(s.pointCount(), 6);
    EXPECT_EQ(s.zRadius(), 1);
    EXPECT_EQ(s.radius(), 1);
    EXPECT_GE(s.findPoint({0, 0, 1}), 0);
    EXPECT_EQ(s.findPoint({1, 1, 0}), -1);
}

TEST(Stencil, Box27HasAllNeighbours)
{
    auto s = Stencil::box27();
    EXPECT_EQ(s.pointCount(), 26);
    for (int z = -1; z <= 1; ++z) {
        for (int y = -1; y <= 1; ++y) {
            for (int x = -1; x <= 1; ++x) {
                if (x || y || z) {
                    EXPECT_GE(s.findPoint({x, y, z}), 0);
                }
            }
        }
    }
    EXPECT_EQ(s.findPoint({0, 0, 0}), -1);
}

TEST(Stencil, LbmD3Q19Has18Directions)
{
    auto s = Stencil::lbmD3Q19();
    EXPECT_EQ(s.pointCount(), 18);
    // No corner (3 non-zero) directions in D3Q19.
    EXPECT_EQ(s.findPoint({1, 1, 1}), -1);
    EXPECT_GE(s.findPoint({1, 1, 0}), 0);
    EXPECT_GE(s.findPoint({0, -1, 1}), 0);
}

TEST(Stencil, LbmD2Q9IsPlanar)
{
    auto s = Stencil::lbmD2Q9();
    EXPECT_EQ(s.pointCount(), 8);
    EXPECT_EQ(s.zRadius(), 0);
    for (const auto& p : s.points()) {
        EXPECT_EQ(p.z, 0);
    }
}

TEST(Stencil, UnionDeduplicates)
{
    auto u = Stencil::unionOf({Stencil::laplace7(), Stencil::box27()});
    EXPECT_EQ(u.pointCount(), 26);  // laplace7 is a subset of box27
    EXPECT_EQ(u.zRadius(), 1);
}

TEST(Stencil, EmptyStencilHasZeroRadius)
{
    Stencil s;
    EXPECT_EQ(s.pointCount(), 0);
    EXPECT_EQ(s.zRadius(), 0);
}

}  // namespace neon
