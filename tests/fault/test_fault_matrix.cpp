// Fault matrix at the skeleton level (docs/robustness.md): every FaultPlan
// kind crossed with both engines, on a small multi-device stencil pipeline
// whose halo exchanges give the injector real transfers to attack.
//
//   - transient transfer failures, stream stalls and link degradation must
//     be invisible to the computed data: the run converges bitwise
//     identical to the fault-free run on the same backend shape,
//   - a fixed-seed probabilistic plan fires the same faults on the
//     sequential and threaded engines,
//   - retry exhaustion and permanent device loss surface as structured
//     RuntimeErrors with container/run attribution — never a hang — and
//     after a device loss the sequential engine's survivor state is
//     exactly the last completed run,
//   - the race detector stays clean while retries reshuffle the timeline.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/error.hpp"
#include "dgrid/dfield.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::skeleton {

using set::Backend;
using set::Container;

namespace {

constexpr index_3d kDim{5, 4, 12};
constexpr int      kRuns = 2;

/// stencil f0 -> f1, map f1 -> f0: every run re-exchanges f0's halo, so a
/// transfer-targeting FaultPlan always has work to attack.
struct MiniApp
{
    dgrid::DGrid                       grid;
    std::vector<dgrid::DField<double>> fields;
    Skeleton                           skl;

    explicit MiniApp(Backend backend)
        : grid(std::move(backend), kDim, Stencil::laplace7()), skl(grid.backend())
    {
        for (int i = 0; i < 2; ++i) {
            auto f = grid.newField<double>("f" + std::to_string(i), 1, 0.0);
            f.forEachHost([i](const index_3d& g, int, double& v) {
                v = 0.01 * (g.x + 2 * g.y + 3 * g.z) + 0.1 * i + 0.05;
            });
            f.updateDev();
            fields.push_back(std::move(f));
        }
        auto src = fields[0];
        auto dst = fields[1];
        std::vector<Container> seq;
        seq.push_back(grid.newContainer("diffuse", [src, dst](auto& l) mutable {
            auto sp = l.load(src, Access::READ, Compute::STENCIL);
            auto dp = l.load(dst, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable {
                double acc = -6.0 * sp(c);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += sp.nghVal(c, off);
                }
                dp(c) = sp(c) + 0.05 * acc;
            };
        }));
        seq.push_back(grid.newContainer("relax", [src, dst](auto& l) mutable {
            auto sp = l.load(dst, Access::READ);
            auto dp = l.load(src, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable {
                dp(c) = 0.7 * dp(c) + 0.3 * sp(c);
            };
        }));
        skl.sequence(seq, "mini", Options().withOcc(Occ::STANDARD));
    }

    std::vector<double> run(int runs = kRuns)
    {
        for (int r = 0; r < runs; ++r) {
            skl.run();
        }
        skl.sync();
        return snapshot();
    }

    std::vector<double> snapshot()
    {
        std::vector<double> data;
        for (auto& f : fields) {
            f.updateHost();
            kDim.forEach([&](const index_3d& g) { data.push_back(f.hVal(g)); });
        }
        return data;
    }
};

Backend makeBackend(int nDev, Backend::EngineKind kind, const sys::FaultPlan& plan = {})
{
    Backend b(nDev, sys::DeviceType::CPU, sys::SimConfig::zeroCost(), kind);
    if (!plan.empty()) {
        b.faults().setPlan(plan);
    }
    return b;
}

void expectBitwiseEqual(const std::vector<double>& got, const std::vector<double>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "diverged at flat index " << i;
    }
}

}  // namespace

class FaultMatrix : public ::testing::TestWithParam<Backend::EngineKind>
{
};

TEST_P(FaultMatrix, TransientRetriesConvergeBitwiseIdentical)
{
    const auto clean = MiniApp(makeBackend(3, GetParam())).run();

    sys::FaultPlan plan(21);
    plan.add(sys::FaultSpec::transientTransfer(2));  // every transfer: fail, fail, succeed
    Backend b = makeBackend(3, GetParam(), plan);
    b.profiler().enable();
    auto analyzer = b.analysis();
    analyzer.enable();

    MiniApp    app(b);
    const auto faulted = app.run();
    expectBitwiseEqual(faulted, clean);
    EXPECT_GT(b.profiler().faultEvents(), 0) << "the plan must actually have fired";
    const auto races = analyzer.raceReport();
    EXPECT_TRUE(races.clean()) << races.toString();
}

TEST(FaultMatrixCross, FixedSeedPlanFiresIdenticallyOnBothEngines)
{
    sys::FaultPlan plan(77);
    plan.add(sys::FaultSpec::transientTransfer(1).withProbability(0.5));

    int                 events[2] = {0, 0};
    std::vector<double> data[2];
    const Backend::EngineKind kinds[] = {Backend::EngineKind::Sequential,
                                         Backend::EngineKind::Threaded};
    for (int k = 0; k < 2; ++k) {
        Backend b = makeBackend(3, kinds[k], plan);
        b.profiler().enable();
        data[k] = MiniApp(b).run();
        events[k] = b.profiler().faultEvents();
    }
    EXPECT_GT(events[0], 0) << "seed 77 must fire at least once for this test to mean anything";
    EXPECT_EQ(events[0], events[1]) << "fault decisions must not depend on the engine";
    expectBitwiseEqual(data[1], data[0]);
}

TEST_P(FaultMatrix, StreamStallsPreserveResults)
{
    const auto clean = MiniApp(makeBackend(2, GetParam())).run();

    sys::FaultPlan plan(5);
    plan.add(sys::FaultSpec::streamStall(1e-3));
    Backend b = makeBackend(2, GetParam(), plan);
    b.profiler().enable();
    const auto stalled = MiniApp(b).run();
    expectBitwiseEqual(stalled, clean);
    EXPECT_GT(b.profiler().faultEvents(), 0);
}

TEST_P(FaultMatrix, LinkDegradationPreservesResults)
{
    const auto clean = MiniApp(makeBackend(2, GetParam())).run();

    sys::FaultPlan plan(5);
    plan.add(sys::FaultSpec::linkDegrade(4.0));
    const auto degraded = MiniApp(makeBackend(2, GetParam(), plan)).run();
    expectBitwiseEqual(degraded, clean);
}

TEST_P(FaultMatrix, RetryExhaustionSurfacesAttributedTransferFailed)
{
    sys::FaultPlan plan(9);
    plan.add(sys::FaultSpec::transientTransfer(100));  // >> retry.maxAttempts
    MiniApp app(makeBackend(2, GetParam(), plan));

    try {
        app.skl.run();
        app.skl.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::TransferFailed);
        EXPECT_EQ(e.info.attempts, sys::SimConfig::zeroCost().retry.maxAttempts);
        EXPECT_GE(e.info.device, 0);
        EXPECT_EQ(e.info.runId, 0);
        EXPECT_GE(e.info.containerId, 0);
        EXPECT_FALSE(e.info.containerLabel.empty())
            << "skeleton must enrich the error with the graph node's label";
    }
    // Fail-stop: the skeleton stays unusable until the abort is cleared.
    EXPECT_THROW(app.skl.run(), RuntimeError);
}

TEST_P(FaultMatrix, DeviceLossOnFirstRunAttributesContainer)
{
    sys::FaultPlan plan(3);
    plan.add(sys::FaultSpec::deviceLoss(1, /*fromRun=*/0));
    MiniApp app(makeBackend(3, GetParam(), plan));

    try {
        app.skl.run();
        app.skl.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::DeviceLost);
        EXPECT_EQ(e.info.device, 1);
        EXPECT_EQ(e.info.runId, 0);
        EXPECT_EQ(e.info.lastCompletedRun, -1) << "no run completed before the loss";
        EXPECT_GE(e.info.containerId, 0);
        EXPECT_FALSE(e.info.containerLabel.empty());
    }
    EXPECT_THROW(app.skl.run(), RuntimeError);
}

TEST_P(FaultMatrix, DeviceLossAfterCleanRunReportsLastCompletedRun)
{
    sys::FaultPlan plan(3);
    plan.add(sys::FaultSpec::deviceLoss(1, /*fromRun=*/1));
    Backend b = makeBackend(3, GetParam(), plan);
    MiniApp app(b);

    app.skl.run();  // run 0 is clean
    try {
        app.skl.run();  // run 1 hits the loss
        app.skl.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::DeviceLost);
        EXPECT_EQ(e.info.device, 1);
        EXPECT_EQ(e.info.runId, 1);
        EXPECT_EQ(e.info.lastCompletedRun, 0);
    }
    EXPECT_TRUE(b.faults().deviceLost(1));
    EXPECT_FALSE(b.faults().deviceLost(0));

    if (GetParam() == Backend::EngineKind::Sequential) {
        // Graceful degradation, exactly: the sequential engine executes
        // eagerly and run 1's first victim op is the inter-run barrier
        // wait, so *nothing* of run 1 ran — after recovery the fields are
        // bitwise the single-run fault-free state and a caller can
        // re-sequence on the survivors. (The threaded engine's abort
        // window is indeterminate; it guarantees attribution, not state.)
        b.engine().clearAbort();
        b.faults().setPlan({});
        const auto got = app.snapshot();
        const auto want = MiniApp(makeBackend(3, GetParam())).run(/*runs=*/1);
        expectBitwiseEqual(got, want);
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultMatrix,
                         ::testing::Values(Backend::EngineKind::Sequential,
                                           Backend::EngineKind::Threaded),
                         [](const auto& info) {
                             return info.param == Backend::EngineKind::Sequential ? "Sequential"
                                                                                  : "Threaded";
                         });

}  // namespace neon::skeleton
