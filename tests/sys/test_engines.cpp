// Engine semantics, parameterized over Sequential and Threaded engines:
// stream FIFO order, event cross-stream ordering, virtual-clock arithmetic.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/error.hpp"
#include "set/backend.hpp"
#include "sys/device.hpp"

namespace neon::set {

class EngineTest : public ::testing::TestWithParam<Backend::EngineKind>
{
   protected:
    [[nodiscard]] Backend makeBackend(int nDev, sys::SimConfig cfg) const
    {
        return Backend(nDev, sys::DeviceType::SIM_GPU, cfg, GetParam());
    }
};

TEST_P(EngineTest, StreamIsFifo)
{
    Backend          b = makeBackend(1, sys::SimConfig::zeroCost());
    std::vector<int> order;
    auto&            s = b.stream(0);
    for (int i = 0; i < 10; ++i) {
        s.kernel("k", 1, {}, [&order, i] { order.push_back(i); });
    }
    s.sync();
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
    }
}

TEST_P(EngineTest, EventOrdersAcrossStreams)
{
    Backend          b = makeBackend(1, sys::SimConfig::zeroCost());
    auto             ev = std::make_shared<sys::Event>();
    std::atomic<int> stage{0};

    auto& s0 = b.stream(0, 0);
    auto& s1 = b.stream(0, 1);
    s0.kernel("producer", 1, {}, [&stage] { stage = 1; });
    s0.record(ev);
    s1.wait(ev);
    int observed = -1;
    s1.kernel("consumer", 1, {}, [&stage, &observed] { observed = stage.load(); });
    b.sync();
    EXPECT_EQ(observed, 1);
}

TEST_P(EngineTest, KernelAdvancesVirtualClock)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        b = makeBackend(1, cfg);
    auto&          s = b.stream(0);
    s.kernel("k", 1'000'000, {100.0, 0.0}, [] {});
    s.sync();
    const double expected =
        cfg.device.kernelLaunchOverhead + 1e6 * 100.0 / cfg.device.memBandwidth;
    EXPECT_NEAR(s.vtime(), expected, 1e-12);
}

TEST_P(EngineTest, KernelsOnSameDeviceSerialize)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        b = makeBackend(1, cfg);
    auto&          s0 = b.stream(0, 0);
    auto&          s1 = b.stream(0, 1);
    s0.kernel("a", 1'000'000, {100.0, 0.0}, [] {});
    s0.sync();  // deterministic ordering for the threaded engine
    s1.kernel("b", 1'000'000, {100.0, 0.0}, [] {});
    b.sync();
    const double one =
        cfg.device.kernelLaunchOverhead + 1e6 * 100.0 / cfg.device.memBandwidth;
    // Same device compute engine: second kernel starts after the first.
    EXPECT_NEAR(s1.vtime(), 2 * one, 1e-9);
}

TEST_P(EngineTest, KernelsOnDifferentDevicesRunConcurrently)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        b = makeBackend(2, cfg);
    b.stream(0).kernel("a", 1'000'000, {100.0, 0.0}, [] {});
    b.stream(1).kernel("b", 1'000'000, {100.0, 0.0}, [] {});
    b.sync();
    const double one =
        cfg.device.kernelLaunchOverhead + 1e6 * 100.0 / cfg.device.memBandwidth;
    EXPECT_NEAR(b.profiler().makespan(), one, 1e-9);
}

TEST_P(EngineTest, TransferOverlapsComputeOnDifferentStreams)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        b = makeBackend(2, cfg);
    // Kernel on stream 0 and a transfer on stream 1 should overlap: the
    // makespan is the max of the two, not the sum. This is the mechanism
    // behind every OCC optimization in the paper.
    const size_t bytes = 100'000'000;
    const double tKernel =
        cfg.device.kernelLaunchOverhead + 1e6 * 1000.0 / cfg.device.memBandwidth;
    const double tXfer = sys::transferDuration(cfg, bytes);

    b.stream(0, 0).kernel("compute", 1'000'000, {1000.0, 0.0}, [] {});
    sys::TransferOp op;
    op.name = "halo";
    op.chunks.push_back({bytes, 1, [] {}});
    b.stream(0, 1).transfer(std::move(op));
    b.sync();
    EXPECT_NEAR(b.profiler().makespan(), std::max(tKernel, tXfer), std::max(tKernel, tXfer) * 0.01);
}

TEST_P(EngineTest, SoAHaloPaysPerComponentLatency)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        b = makeBackend(1, cfg);
    const size_t   bytes = 1024;
    // 8 chunks in one direction serialize on the DMA engine.
    sys::TransferOp op;
    for (int c = 0; c < 8; ++c) {
        op.chunks.push_back({bytes, 1, [] {}});
    }
    b.stream(0).transfer(std::move(op));
    b.sync();
    EXPECT_NEAR(b.profiler().makespan(), 8 * sys::transferDuration(cfg, bytes), 1e-12);
}

TEST_P(EngineTest, TwoDirectionsUseParallelDmaEngines)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    Backend        b = makeBackend(1, cfg);
    sys::TransferOp op;
    op.chunks.push_back({1 << 20, 0, [] {}});
    op.chunks.push_back({1 << 20, 1, [] {}});
    b.stream(0).transfer(std::move(op));
    b.sync();
    EXPECT_NEAR(b.profiler().makespan(), sys::transferDuration(cfg, 1 << 20), 1e-12);
}

TEST_P(EngineTest, HostFnRunsAndAdvancesClock)
{
    Backend b = makeBackend(1, sys::SimConfig::dgxA100Like());
    bool    ran = false;
    b.stream(0).hostFn("combine", 1e-5, [&ran] { ran = true; });
    b.sync();
    EXPECT_TRUE(ran);
    EXPECT_NEAR(b.stream(0).vtime(), 1e-5, 1e-12);
}

TEST_P(EngineTest, ResetClocksZeroesVtime)
{
    Backend b = makeBackend(2, sys::SimConfig::dgxA100Like());
    b.stream(0).kernel("k", 1000, {100.0, 0.0}, [] {});
    b.stream(1).kernel("k", 1000, {100.0, 0.0}, [] {});
    b.sync();
    EXPECT_GT(b.profiler().makespan(), 0.0);
    b.resetClocks();
    EXPECT_EQ(b.profiler().makespan(), 0.0);
}

TEST_P(EngineTest, DryRunSkipsExecutionButKeepsTiming)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = true;
    Backend b = makeBackend(1, cfg);
    bool    ran = false;
    b.stream(0).kernel("k", 1'000'000, {100.0, 0.0}, [&ran] { ran = true; });
    b.sync();
    EXPECT_FALSE(ran);
    EXPECT_GT(b.profiler().makespan(), 0.0);
}

TEST_P(EngineTest, TraceRecordsEntries)
{
    Backend b = makeBackend(1, sys::SimConfig::dgxA100Like());
    b.profiler().trace().enable(true);
    b.stream(0).kernel("myKernel", 1000, {8.0, 0.0}, [] {});
    b.sync();
    auto entries = b.profiler().trace().entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].name, "myKernel");
    EXPECT_EQ(entries[0].kind, "kernel");
    EXPECT_LT(entries[0].startV, entries[0].endV);
    b.profiler().trace().enable(false);
}

TEST(SequentialEngine, WaitOnUnrecordedEventThrows)
{
    Backend b(1, sys::DeviceType::CPU, sys::SimConfig::zeroCost(),
              Backend::EngineKind::Sequential);
    auto ev = std::make_shared<sys::Event>();
    EXPECT_THROW(b.stream(0).wait(ev), InternalError);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineTest,
                         ::testing::Values(Backend::EngineKind::Sequential,
                                           Backend::EngineKind::Threaded),
                         [](const auto& info) {
                             return info.param == Backend::EngineKind::Sequential ? "Sequential"
                                                                                  : "Threaded";
                         });

}  // namespace neon::set
