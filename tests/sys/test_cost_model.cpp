#include "sys/cost_model.hpp"

#include <gtest/gtest.h>

namespace neon::sys {

TEST(CostModel, KernelIsMemoryBoundForGridWork)
{
    SimConfig cfg = SimConfig::dgxA100Like();
    // 1M cells, 152 B/cell (LBM twoPop), 1 flop per 2 bytes.
    KernelCostHint hint{152.0, 76.0};
    const double   t = kernelDuration(cfg, 1u << 20, hint);
    const double   memTime = (1u << 20) * 152.0 / cfg.device.memBandwidth;
    EXPECT_NEAR(t, cfg.device.kernelLaunchOverhead + memTime, 1e-12);
}

TEST(CostModel, EmptyKernelCostsLaunchOverhead)
{
    SimConfig cfg = SimConfig::dgxA100Like();
    EXPECT_DOUBLE_EQ(kernelDuration(cfg, 0, {}), cfg.device.kernelLaunchOverhead);
}

TEST(CostModel, TransferLatencyPlusBandwidth)
{
    SimConfig cfg = SimConfig::dgxA100Like();
    const double t = transferDuration(cfg, 200'000'000);
    EXPECT_NEAR(t, cfg.link.latency + 200e6 / cfg.link.bandwidth, 1e-12);
    // Small message is latency-bound.
    EXPECT_NEAR(transferDuration(cfg, 8), cfg.link.latency, 1e-9);
}

TEST(CostModel, ZeroCostConfigGivesZeroDurations)
{
    SimConfig cfg = SimConfig::zeroCost();
    EXPECT_EQ(kernelDuration(cfg, 1u << 20, {152.0, 76.0}), 0.0);
    EXPECT_EQ(transferDuration(cfg, 1u << 30), 0.0);
}

TEST(CostModel, PcieSlowerThanNvlink)
{
    const double tNv = transferDuration(SimConfig::dgxA100Like(), 10'000'000);
    const double tPci = transferDuration(SimConfig::pcieGen3Like(), 10'000'000);
    EXPECT_GT(tPci, tNv * 5);
}

TEST(CostModel, FlopBoundKernelUsesFlopTime)
{
    SimConfig cfg = SimConfig::dgxA100Like();
    // Pathological hint: tiny bytes, huge flops.
    KernelCostHint hint{1.0, 1e6};
    const double   t = kernelDuration(cfg, 1000, hint);
    EXPECT_NEAR(t, cfg.device.kernelLaunchOverhead + 1000 * 1e6 / cfg.device.flopRate, 1e-12);
}

}  // namespace neon::sys
