// Golden-file test for Trace::chromeTrace(): a fixed single-device scenario
// with a stalled kernel and a twice-retried transfer must serialize to the
// exact JSON checked in at data/chrome_trace_fault.golden.json — including
// the kind="fault" retry and stall rows the robustness layer emits.
// Timestamps and durations are cost-model values, so they are normalized to
// '#' before comparison; everything else (names, categories, lane ids,
// attribution args, row order) is compared byte for byte.
//
// Regenerate after an intentional exporter change with
//
//   NEON_UPDATE_GOLDEN=1 ./test_sys --gtest_filter='ChromeTraceGolden.*'

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "set/backend.hpp"
#include "sys/fault.hpp"
#include "sys/stream.hpp"

namespace neon::sys {
namespace {

std::string goldenPath()
{
    return std::string(NEON_TEST_DATA_DIR) + "/chrome_trace_fault.golden.json";
}

/// Replace every numeric value following "ts": or "dur": with '#'.
std::string normalizeTimes(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    auto endsWith = [&out](const char* suffix) {
        const std::string s(suffix);
        return out.size() >= s.size() && out.compare(out.size() - s.size(), s.size(), s) == 0;
    };
    for (size_t i = 0; i < raw.size();) {
        out += raw[i++];
        if (endsWith("\"ts\":") || endsWith("\"dur\":")) {
            while (i < raw.size() &&
                   (std::isdigit(static_cast<unsigned char>(raw[i])) || raw[i] == '.' ||
                    raw[i] == '-' || raw[i] == '+' || raw[i] == 'e' || raw[i] == 'E')) {
                ++i;
            }
            out += '#';
        }
    }
    return out;
}

std::string recordedTrace()
{
    FaultPlan plan(42);
    plan.add(FaultSpec::transientTransfer(2).onOp(ScheduleOpKind::Transfer));
    plan.add(FaultSpec::streamStall(1e-3).onOp(ScheduleOpKind::Kernel));

    set::Backend b = set::Backend::make(
        set::BackendSpec::simGpu(1, SimConfig::dgxA100Like()).withFaults(plan));
    b.profiler().enable();

    b.stream(0).kernel("compute", 1'000'000, {100.0, 0.0}, [] {});
    TransferOp op;
    op.name = "halo";
    op.chunks.push_back({1 << 20, 1, [] {}});
    b.stream(0).transfer(std::move(op));
    b.sync();

    return b.profiler().chromeTrace();
}

}  // namespace

TEST(ChromeTraceGolden, FaultAndRetryRowsMatchGoldenFile)
{
    const std::string got = normalizeTimes(recordedTrace());

    if (std::getenv("NEON_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        out << got;
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << goldenPath()
                           << " — regenerate with NEON_UPDATE_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "chromeTrace() output changed; if intentional, regenerate with NEON_UPDATE_GOLDEN=1";

    // The scenario must actually exercise the fault rows the golden locks in.
    EXPECT_NE(got.find("\"retry#1:halo\""), std::string::npos);
    EXPECT_NE(got.find("\"retry#2:halo\""), std::string::npos);
    EXPECT_NE(got.find("\"stall:compute\""), std::string::npos);
    EXPECT_NE(got.find("\"cat\":\"fault\""), std::string::npos);
}

}  // namespace neon::sys
