// sys::ThreadPool + the domain::Span chunk partition rule: the pool only
// decides WHICH thread runs a chunk, never WHAT a chunk contains, so the
// tests here pin down (a) the purity of the chunk rule, (b) every-chunk-
// exactly-once execution for any pool width, (c) exception propagation,
// (d) worker utilization samples, and (e) pool reuse across many jobs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "domain/span.hpp"
#include "sys/thread_pool.hpp"

namespace neon::sys {
namespace {

/// Test decoder: a slot expands to its own index (one cell per slot).
struct IotaDecoder
{
    template <typename Fn>
    void forEachInSlot(int32_t s, Fn&& fn) const
    {
        fn(s);
    }
};

TEST(SpanChunkRule, PureFunctionOfSpanNotThreads)
{
    using domain::spanChunkCount;
    // Small spans collapse to one chunk.
    EXPECT_EQ(spanChunkCount(0, 0), 1);
    EXPECT_EQ(spanChunkCount(domain::kSpanChunkCells - 1, 100), 1);
    // Chunks grow with cells...
    EXPECT_EQ(spanChunkCount(2 * domain::kSpanChunkCells, 100), 2);
    // ...cap at kSpanMaxChunks...
    EXPECT_EQ(spanChunkCount(size_t{1} << 30, 1 << 20), domain::kSpanMaxChunks);
    // ...and never exceed the slot count.
    EXPECT_EQ(spanChunkCount(size_t{1} << 30, 3), 3);
}

TEST(SpanChunkRule, ChunksPartitionTheForEachOrder)
{
    // Two disjoint slot ranges, as a BOUNDARY span would have.
    const domain::Span<IotaDecoder> span(IotaDecoder{}, 14, {0, 5}, {100, 9});
    std::vector<int32_t>            whole;
    span.forEach([&](int32_t s) { whole.push_back(s); });
    ASSERT_EQ(whole.size(), 14u);

    for (const int32_t n : {1, 2, 3, 7, 14}) {
        std::vector<int32_t> pieced;
        for (int32_t c = 0; c < n; ++c) {
            span.forEachChunk(c, n, [&](int32_t s) { pieced.push_back(s); });
        }
        EXPECT_EQ(pieced, whole) << "partition into " << n << " chunks lost or reordered cells";
    }
}

struct CountCtx
{
    std::vector<std::atomic<int32_t>> hits;

    explicit CountCtx(size_t n) : hits(n) {}

    static void run(void* ctx, int32_t chunk, int32_t /*nChunks*/)
    {
        auto* c = static_cast<CountCtx*>(ctx);
        c->hits[static_cast<size_t>(chunk)].fetch_add(1, std::memory_order_relaxed);
    }
};

TEST(ThreadPool, EveryChunkRunsExactlyOnceForAnyWidth)
{
    for (const int32_t width : {1, 2, 4, 8}) {
        ThreadPool pool(width);
        CountCtx   ctx(37);
        pool.parallelFor(37, &CountCtx::run, &ctx);
        for (size_t i = 0; i < ctx.hits.size(); ++i) {
            EXPECT_EQ(ctx.hits[i].load(), 1)
                << "chunk " << i << " at width " << width;
        }
    }
}

struct TidCtx
{
    std::vector<std::thread::id> tids{std::vector<std::thread::id>(8)};

    static void run(void* ctx, int32_t chunk, int32_t /*nChunks*/)
    {
        static_cast<TidCtx*>(ctx)->tids[static_cast<size_t>(chunk)] = std::this_thread::get_id();
    }
};

TEST(ThreadPool, WidthOneRunsInlineOnTheSubmitter)
{
    ThreadPool pool(1);
    TidCtx     ctx;
    pool.parallelFor(8, &TidCtx::run, &ctx);
    for (const auto& tid : ctx.tids) {
        EXPECT_EQ(tid, std::this_thread::get_id());
    }
}

struct ThrowCtx
{
    static void run(void* /*ctx*/, int32_t chunk, int32_t /*nChunks*/)
    {
        if (chunk == 5) {
            throw std::runtime_error("chunk 5 failed");
        }
    }
};

TEST(ThreadPool, FirstChunkExceptionIsRethrownAfterDraining)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(16, &ThrowCtx::run, nullptr), std::runtime_error);
    // The pool survives a throwing job.
    CountCtx ctx(4);
    pool.parallelFor(4, &CountCtx::run, &ctx);
    for (size_t i = 0; i < ctx.hits.size(); ++i) {
        EXPECT_EQ(ctx.hits[i].load(), 1);
    }
}

TEST(ThreadPool, SamplesAccountForEveryChunk)
{
    ThreadPool                pool(4);
    CountCtx                  ctx(23);
    std::vector<WorkerSample> samples;
    pool.parallelFor(23, &CountCtx::run, &ctx, &samples);
    ASSERT_FALSE(samples.empty());
    int32_t total = 0;
    for (const auto& s : samples) {
        EXPECT_GE(s.worker, 0);
        EXPECT_LT(s.worker, 4);
        EXPECT_GT(s.chunks, 0);
        EXPECT_GE(s.busySeconds, 0.0);
        total += s.chunks;
    }
    EXPECT_EQ(total, 23);
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3);
    for (int job = 0; job < 100; ++job) {
        const int32_t n = 1 + (job % 11);
        CountCtx      ctx(static_cast<size_t>(n));
        pool.parallelFor(n, &CountCtx::run, &ctx);
        for (int32_t i = 0; i < n; ++i) {
            ASSERT_EQ(ctx.hits[static_cast<size_t>(i)].load(), 1)
                << "job " << job << " chunk " << i;
        }
    }
}

}  // namespace
}  // namespace neon::sys
