// Trace::chromeTrace() must emit valid Chrome trace-event JSON: a single
// object with a traceEvents array whose "X" events carry numeric ts/dur and
// are monotonically ordered per (pid, tid) lane — the invariants
// chrome://tracing and Perfetto rely on. Verified with a minimal JSON
// parser (no external dependency).

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "set/backend.hpp"
#include "sys/event.hpp"
#include "sys/stream.hpp"
#include "sys/trace.hpp"

namespace neon::sys {
namespace {

// --- a deliberately small JSON parser (objects, arrays, strings, numbers,
// literals) — enough to validate the exporter without pulling a library ----

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue
{
    std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonObject>,
                 std::shared_ptr<JsonArray>>
        v = nullptr;

    [[nodiscard]] bool isObject() const { return v.index() == 4; }
    [[nodiscard]] bool isArray() const { return v.index() == 5; }
    [[nodiscard]] const JsonObject& object() const { return *std::get<4>(v); }
    [[nodiscard]] const JsonArray&  array() const { return *std::get<5>(v); }
    [[nodiscard]] double            number() const { return std::get<double>(v); }
    [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser
{
   public:
    explicit JsonParser(const std::string& text) : mText(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (mPos != mText.size()) {
            fail("trailing garbage");
        }
        return v;
    }

    [[nodiscard]] const std::string& error() const { return mError; }
    [[nodiscard]] bool               ok() const { return mError.empty(); }

   private:
    const std::string& mText;
    size_t             mPos = 0;
    std::string        mError;

    void fail(const std::string& what)
    {
        if (mError.empty()) {
            mError = what + " at offset " + std::to_string(mPos);
        }
        throw std::runtime_error(mError);
    }
    void skipWs()
    {
        while (mPos < mText.size() && std::isspace(static_cast<unsigned char>(mText[mPos]))) {
            ++mPos;
        }
    }
    char peek()
    {
        if (mPos >= mText.size()) {
            fail("unexpected end");
        }
        return mText[mPos];
    }
    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++mPos;
    }

    JsonValue value()
    {
        skipWs();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return JsonValue{string()};
            case 't': literal("true"); return JsonValue{true};
            case 'f': literal("false"); return JsonValue{false};
            case 'n': literal("null"); return JsonValue{nullptr};
            default: return JsonValue{number()};
        }
    }
    void literal(const char* lit)
    {
        for (const char* p = lit; *p != '\0'; ++p) {
            if (mPos >= mText.size() || mText[mPos] != *p) {
                fail(std::string("bad literal, expected ") + lit);
            }
            ++mPos;
        }
    }
    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (mPos >= mText.size()) {
                fail("unterminated string");
            }
            char c = mText[mPos++];
            if (c == '"') {
                break;
            }
            if (c == '\\') {
                if (mPos >= mText.size()) {
                    fail("bad escape");
                }
                char e = mText[mPos++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u':
                        if (mPos + 4 > mText.size()) {
                            fail("bad \\u escape");
                        }
                        out += '?';  // validated, not decoded
                        mPos += 4;
                        break;
                    default: fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }
    double number()
    {
        size_t end = mPos;
        while (end < mText.size() &&
               (std::isdigit(static_cast<unsigned char>(mText[end])) || mText[end] == '-' ||
                mText[end] == '+' || mText[end] == '.' || mText[end] == 'e' ||
                mText[end] == 'E')) {
            ++end;
        }
        if (end == mPos) {
            fail("expected number");
        }
        size_t       used = 0;
        const double d = std::stod(mText.substr(mPos, end - mPos), &used);
        if (used != end - mPos) {
            fail("bad number");
        }
        mPos = end;
        return d;
    }
    JsonValue object()
    {
        expect('{');
        auto obj = std::make_shared<JsonObject>();
        skipWs();
        if (peek() == '}') {
            ++mPos;
            return JsonValue{obj};
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            (*obj)[key] = value();
            skipWs();
            if (peek() == ',') {
                ++mPos;
                continue;
            }
            expect('}');
            break;
        }
        return JsonValue{obj};
    }
    JsonValue array()
    {
        expect('[');
        auto arr = std::make_shared<JsonArray>();
        skipWs();
        if (peek() == ']') {
            ++mPos;
            return JsonValue{arr};
        }
        while (true) {
            arr->push_back(value());
            skipWs();
            if (peek() == ',') {
                ++mPos;
                continue;
            }
            expect(']');
            break;
        }
        return JsonValue{arr};
    }
};

/// Record a small two-device timeline with kernels, a transfer and a
/// cross-stream wait, and return the parsed chrome trace.
JsonValue recordedChromeTrace(std::string* rawOut = nullptr)
{
    set::Backend b(2, sys::DeviceType::CPU, sys::SimConfig::dgxA100Like());
    auto         profiler = b.profiler();
    profiler.enable(true);

    b.stream(0, 0).kernel("produce", 1'000'000, {100.0, 0.0}, [] {});
    auto ev = std::make_shared<Event>();
    b.stream(0, 0).record(ev);
    b.stream(1, 0).wait(ev);

    TransferOp op;
    op.name = "halo";
    op.chunks.push_back({1 << 20, 1, [] {}});
    b.stream(1, 0).transfer(std::move(op));
    b.stream(1, 0).kernel("consume", 1'000'000, {100.0, 0.0}, [] {});
    b.sync();
    profiler.enable(false);

    const std::string raw = profiler.chromeTrace();
    if (rawOut != nullptr) {
        *rawOut = raw;
    }
    JsonParser parser(raw);
    return parser.parse();
}

TEST(ChromeTrace, ParsesAsJsonWithTraceEvents)
{
    const JsonValue root = recordedChromeTrace();
    ASSERT_TRUE(root.isObject());
    ASSERT_TRUE(root.object().count("traceEvents"));
    const auto& events = root.object().at("traceEvents").array();
    EXPECT_GT(events.size(), 0u);
    int durationEvents = 0;
    for (const auto& e : events) {
        ASSERT_TRUE(e.isObject());
        const auto& obj = e.object();
        ASSERT_TRUE(obj.count("ph"));
        const std::string ph = obj.at("ph").str();
        if (ph == "X") {
            ++durationEvents;
            ASSERT_TRUE(obj.count("name"));
            ASSERT_TRUE(obj.count("pid"));
            ASSERT_TRUE(obj.count("tid"));
            EXPECT_GE(obj.at("ts").number(), 0.0);
            EXPECT_GE(obj.at("dur").number(), 0.0);
        }
    }
    // kernels on both devices plus the transfer chunk
    EXPECT_GE(durationEvents, 3);
}

TEST(ChromeTrace, TimestampsAreMonotonePerLane)
{
    const JsonValue root = recordedChromeTrace();
    const auto&     events = root.object().at("traceEvents").array();
    std::map<std::pair<double, double>, double> lastEnd;
    for (const auto& e : events) {
        const auto& obj = e.object();
        if (obj.at("ph").str() != "X") {
            continue;
        }
        const auto lane =
            std::make_pair(obj.at("pid").number(), obj.at("tid").number());
        const double ts = obj.at("ts").number();
        auto         it = lastEnd.find(lane);
        if (it != lastEnd.end()) {
            // Lanes serialize: each op starts at or after the lane's last start.
            EXPECT_GE(ts, it->second - 1e-9);
        }
        lastEnd[lane] = ts;
    }
}

TEST(ChromeTrace, EmitsMetadataAndFlowForWaits)
{
    std::string raw;
    recordedChromeTrace(&raw);
    // Thread/process naming metadata and the wait's flow arrow endpoints.
    EXPECT_NE(raw.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(raw.find("process_name"), std::string::npos);
    EXPECT_NE(raw.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(raw.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceIsStillValidJson)
{
    Trace             t;
    const std::string raw = t.chromeTrace();
    JsonParser        parser(raw);
    const JsonValue   root = parser.parse();
    ASSERT_TRUE(root.isObject());
    EXPECT_TRUE(root.object().at("traceEvents").array().empty());
}

}  // namespace
}  // namespace neon::sys
