#include "sys/trace.hpp"

#include <gtest/gtest.h>

namespace neon::sys {

TEST(Trace, DisabledByDefault)
{
    Trace t;
    t.add({0, 0, "kernel", "k", 0.0, 1.0});
    EXPECT_TRUE(t.entries().empty());
}

TEST(Trace, RecordsWhenEnabled)
{
    Trace t;
    t.enable(true);
    t.add({0, 0, "kernel", "k", 0.0, 1.0});
    t.add({1, 2, "transfer", "h", 0.5, 2.0});
    ASSERT_EQ(t.entries().size(), 2u);
    EXPECT_EQ(t.entries()[1].device, 1);
    EXPECT_EQ(t.entries()[1].stream, 2);
    EXPECT_EQ(t.entries()[1].kind, "transfer");
}

TEST(Trace, ClearEmpties)
{
    Trace t;
    t.enable(true);
    t.add({0, 0, "kernel", "k", 0.0, 1.0});
    t.clear();
    EXPECT_TRUE(t.entries().empty());
}

TEST(Trace, GanttContainsRowsPerDeviceStream)
{
    Trace t;
    t.enable(true);
    t.add({0, 0, "kernel", "map", 0.0, 4.0});
    t.add({0, 1, "transfer", "halo", 4.0, 6.0});
    t.add({1, 0, "kernel", "map", 0.0, 4.0});
    const auto g = t.gantt(40);
    EXPECT_NE(g.find("dev0/s0"), std::string::npos);
    EXPECT_NE(g.find("dev0/s1"), std::string::npos);
    EXPECT_NE(g.find("dev1/s0"), std::string::npos);
    // Kernel glyph and transfer glyph both present.
    EXPECT_NE(g.find('='), std::string::npos);
    EXPECT_NE(g.find('~'), std::string::npos);
}

TEST(Trace, GanttOnEmptyTrace)
{
    Trace t;
    EXPECT_EQ(t.gantt(), "(empty trace)\n");
}

}  // namespace neon::sys
