// Fault injection at the sys level: deterministic FaultInjector decisions,
// retry timeline arithmetic, stall/degradation cost-model effects, per-op
// and host-sync timeouts, and the fail-stop abort protocol — all
// parameterized over both engines (docs/robustness.md).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/error.hpp"
#include "set/backend.hpp"
#include "sys/device.hpp"
#include "sys/fault.hpp"

namespace neon::set {

namespace {

Backend faultyBackend(int nDev, sys::SimConfig cfg, Backend::EngineKind kind,
                      sys::FaultPlan plan)
{
    return Backend::make(BackendSpec::simGpu(nDev, cfg, kind).withFaults(std::move(plan)));
}

sys::TransferOp oneChunk(size_t bytes)
{
    sys::TransferOp op;
    op.name = "halo";
    op.chunks.push_back({bytes, 1, [] {}});
    return op;
}

}  // namespace

class FaultEngineTest : public ::testing::TestWithParam<Backend::EngineKind>
{
};

TEST(FaultInjector, DecisionsAreDeterministicAcrossInstances)
{
    sys::FaultPlan plan(1234);
    plan.add(sys::FaultSpec::transientTransfer(2).withProbability(0.5));

    sys::FaultInjector a;
    sys::FaultInjector b;
    a.setPlan(plan);
    b.setPlan(plan);

    int faulted = 0;
    for (int i = 0; i < 200; ++i) {
        const auto da = a.decide(0, 0, sys::ScheduleOpKind::Transfer, {});
        const auto db = b.decide(0, 0, sys::ScheduleOpKind::Transfer, {});
        EXPECT_EQ(da.failedAttempts, db.failedAttempts) << "op " << i;
        faulted += da.failedAttempts > 0 ? 1 : 0;
    }
    // p=0.5 over 200 draws: both tails are astronomically unlikely.
    EXPECT_GT(faulted, 50);
    EXPECT_LT(faulted, 150);
}

TEST(FaultInjector, SeedChangesDecisions)
{
    sys::FaultInjector a;
    sys::FaultInjector b;
    sys::FaultPlan     pa(1);
    sys::FaultPlan     pb(2);
    pa.add(sys::FaultSpec::transientTransfer(1).withProbability(0.5));
    pb.add(sys::FaultSpec::transientTransfer(1).withProbability(0.5));
    a.setPlan(pa);
    b.setPlan(pb);
    int differs = 0;
    for (int i = 0; i < 200; ++i) {
        const auto da = a.decide(0, 0, sys::ScheduleOpKind::Transfer, {});
        const auto db = b.decide(0, 0, sys::ScheduleOpKind::Transfer, {});
        differs += da.failedAttempts != db.failedAttempts ? 1 : 0;
    }
    EXPECT_GT(differs, 0);
}

TEST(FaultInjector, TargetFiltersRestrictMatches)
{
    sys::FaultPlan plan(7);
    plan.add(sys::FaultSpec::streamStall(1e-3).onDevice(1).onStream(2).onOp(
        sys::ScheduleOpKind::Kernel));
    sys::FaultInjector inj;
    inj.setPlan(plan);
    EXPECT_EQ(inj.decide(0, 2, sys::ScheduleOpKind::Kernel, {}).stallSeconds, 0.0);
    EXPECT_EQ(inj.decide(1, 0, sys::ScheduleOpKind::Kernel, {}).stallSeconds, 0.0);
    EXPECT_EQ(inj.decide(1, 2, sys::ScheduleOpKind::Transfer, {}).stallSeconds, 0.0);
    EXPECT_EQ(inj.decide(1, 2, sys::ScheduleOpKind::Kernel, {}).stallSeconds, 1e-3);
}

TEST_P(FaultEngineTest, TransientRetrySucceedsWithBackoffTimeline)
{
    const sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    sys::FaultPlan       plan(42);
    plan.add(sys::FaultSpec::transientTransfer(2));
    Backend b = faultyBackend(1, cfg, GetParam(), plan);
    b.profiler().enable();

    const size_t bytes = 1 << 20;
    bool         copied = false;
    auto         op = oneChunk(bytes);
    op.chunks[0].copy = [&copied] { copied = true; };
    b.stream(0).transfer(std::move(op));
    b.sync();

    // Two failed attempts occupy the DMA engine, then back off; the third
    // attempt succeeds: 3 transfer durations + backoff(1) + backoff(2).
    const double T = sys::transferDuration(cfg, bytes);
    const double expected =
        3 * T + sys::retryBackoff(cfg, 1) + sys::retryBackoff(cfg, 2);
    EXPECT_NEAR(b.stream(0).vtime(), expected, expected * 1e-9);
    EXPECT_TRUE(copied);
    EXPECT_EQ(b.profiler().faultEvents(), 2);
}

TEST_P(FaultEngineTest, RetryExhaustionRaisesTransferFailed)
{
    const sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    sys::FaultPlan       plan(42);
    plan.add(sys::FaultSpec::transientTransfer(100));  // >> retry.maxAttempts
    Backend b = faultyBackend(1, cfg, GetParam(), plan);

    bool copied = false;
    try {
        auto op = oneChunk(1 << 20);
        op.chunks[0].copy = [&copied] { copied = true; };
        b.stream(0).transfer(std::move(op));
        b.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::TransferFailed);
        EXPECT_EQ(e.info.device, 0);
        EXPECT_EQ(e.info.stream, 0);
        EXPECT_EQ(e.info.attempts, cfg.retry.maxAttempts);
        EXPECT_EQ(e.info.opName, "halo");
    }
    EXPECT_FALSE(copied) << "an exhausted transfer must not execute its copy";
    // The abort is sticky: further enqueues and syncs keep reporting it.
    EXPECT_THROW(b.stream(0).kernel("k", 1, {}, [] {}), RuntimeError);
    EXPECT_THROW(b.sync(), RuntimeError);
}

TEST_P(FaultEngineTest, StreamStallAddsVirtualLatency)
{
    const sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    const double         stall = 2e-3;
    sys::FaultPlan       plan(9);
    plan.add(sys::FaultSpec::streamStall(stall).onOp(sys::ScheduleOpKind::Kernel));
    Backend b = faultyBackend(1, cfg, GetParam(), plan);
    b.profiler().enable();

    b.stream(0).kernel("k", 1'000'000, {100.0, 0.0}, [] {});
    b.sync();
    const double kernel =
        cfg.device.kernelLaunchOverhead + 1e6 * 100.0 / cfg.device.memBandwidth;
    EXPECT_NEAR(b.stream(0).vtime(), stall + kernel, 1e-12);
    EXPECT_EQ(b.profiler().faultEvents(), 1);
}

TEST_P(FaultEngineTest, LinkDegradationScalesTransferDuration)
{
    const sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    sys::FaultPlan       plan(9);
    plan.add(sys::FaultSpec::linkDegrade(3.0));
    Backend b = faultyBackend(1, cfg, GetParam(), plan);

    const size_t bytes = 1 << 20;
    b.stream(0).transfer(oneChunk(bytes));
    b.sync();
    EXPECT_NEAR(b.stream(0).vtime(), 3.0 * sys::transferDuration(cfg, bytes), 1e-12);
}

TEST_P(FaultEngineTest, NonMatchingPlanLeavesTimelineUntouched)
{
    const sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    sys::FaultPlan       plan(5);
    plan.add(sys::FaultSpec::transientTransfer(3).onDevice(7));  // no such device
    Backend clean = Backend::make(BackendSpec::simGpu(1, cfg, GetParam()));
    Backend faulty = faultyBackend(1, cfg, GetParam(), plan);

    for (Backend* b : {&clean, &faulty}) {
        b->stream(0).kernel("k", 1'000'000, {100.0, 0.0}, [] {});
        b->stream(0).transfer(oneChunk(1 << 20));
        b->sync();
    }
    EXPECT_DOUBLE_EQ(clean.stream(0).vtime(), faulty.stream(0).vtime());
}

TEST_P(FaultEngineTest, DeviceLossRaisesAttributedError)
{
    sys::FaultPlan plan(3);
    plan.add(sys::FaultSpec::deviceLoss(1, /*fromRun=*/-1));  // lost immediately
    Backend b = faultyBackend(2, sys::SimConfig::dgxA100Like(), GetParam(), plan);

    bool dev1Ran = false;
    try {
        b.stream(0).kernel("survivor", 1, {}, [] {});
        b.stream(1).kernel("victim", 1, {}, [&dev1Ran] { dev1Ran = true; });
        b.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::DeviceLost);
        EXPECT_EQ(e.info.device, 1);
        EXPECT_EQ(e.info.opName, "victim");
    }
    EXPECT_FALSE(dev1Ran) << "a lost device must not execute kernel bodies";
    EXPECT_TRUE(b.faults().deviceLost(1));
    EXPECT_FALSE(b.faults().deviceLost(0));
}

TEST_P(FaultEngineTest, OpTimeoutRaisesStructuredError)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.opTimeout = 1e-9;  // virtual seconds: any real kernel exceeds this
    Backend b = Backend::make(BackendSpec::simGpu(1, cfg, GetParam()));

    try {
        b.stream(0).kernel("slow", 1'000'000, {100.0, 0.0}, [] {});
        b.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::OpTimeout);
        EXPECT_EQ(e.info.opName, "slow");
        EXPECT_DOUBLE_EQ(e.info.timeout, 1e-9);
    }
}

TEST_P(FaultEngineTest, ClearAbortAllowsReuseAfterFailure)
{
    sys::FaultPlan plan(3);
    plan.add(sys::FaultSpec::deviceLoss(0, -1));
    Backend b = faultyBackend(1, sys::SimConfig::zeroCost(), GetParam(), plan);

    EXPECT_THROW(
        {
            b.stream(0).kernel("k", 1, {}, [] {});
            b.sync();
        },
        RuntimeError);

    // Recovery contract: clear the latch and install a fault-free plan; the
    // engine is usable again.
    b.engine().clearAbort();
    b.faults().setPlan({});
    bool ran = false;
    b.stream(0).kernel("k2", 1, {}, [&ran] { ran = true; });
    b.sync();
    EXPECT_TRUE(ran);
}

// Regression for the latent hang: a WaitOp on an event that is never
// recorded used to block the threaded engine's worker (and every host
// sync) forever. It must now surface as a structured SyncTimeout.
TEST(ThreadedEngineTimeout, NeverRecordedEventErrorsInsteadOfDeadlocking)
{
    sys::SimConfig cfg = sys::SimConfig::zeroCost();
    cfg.hostSyncTimeout = 0.2;  // wall seconds, keep the test fast
    Backend b = Backend::make(BackendSpec::simGpu(1, cfg, EngineKind::Threaded));

    auto never = std::make_shared<sys::Event>();
    b.stream(0).wait(never);
    try {
        b.sync();
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_EQ(e.info.kind, RuntimeError::Kind::SyncTimeout);
        EXPECT_EQ(e.info.device, 0);
        EXPECT_EQ(e.info.stream, 0);
        EXPECT_DOUBLE_EQ(e.info.timeout, 0.2);
    }
}

TEST(EventWait, BoundedWaitReportsRecordedTimeoutAndCancel)
{
    sys::Event ev;
    double     vt = -1.0;

    // Timeout: unrecorded event, tiny limit.
    EXPECT_EQ(ev.waitRecorded(0.02, nullptr, &vt), sys::EventWaitStatus::TimedOut);

    // Cancel: flag already raised.
    std::atomic<bool> cancel{true};
    EXPECT_EQ(ev.waitRecorded(10.0, &cancel, &vt), sys::EventWaitStatus::Cancelled);

    // Recorded: record from another thread while waiting.
    std::thread recorder([&ev] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ev.record(1.5, 0, 0);
    });
    EXPECT_EQ(ev.waitRecorded(10.0, nullptr, &vt), sys::EventWaitStatus::Recorded);
    EXPECT_DOUBLE_EQ(vt, 1.5);
    recorder.join();
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultEngineTest,
                         ::testing::Values(Backend::EngineKind::Sequential,
                                           Backend::EngineKind::Threaded),
                         [](const auto& info) {
                             return info.param == Backend::EngineKind::Sequential ? "Sequential"
                                                                                  : "Threaded";
                         });

}  // namespace neon::set
