#include "sys/device.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace neon::sys {

TEST(Device, AllocTracksBytes)
{
    Device dev(0, DeviceType::SIM_GPU, SimConfig::dgxA100Like());
    EXPECT_EQ(dev.bytesInUse(), 0u);
    void* a = dev.alloc(1024);
    EXPECT_NE(a, nullptr);
    EXPECT_EQ(dev.bytesInUse(), 1024u);
    void* b = dev.alloc(4096);
    EXPECT_EQ(dev.bytesInUse(), 5120u);
    dev.free(a);
    EXPECT_EQ(dev.bytesInUse(), 4096u);
    dev.free(b);
    EXPECT_EQ(dev.bytesInUse(), 0u);
}

TEST(Device, ThrowsDeviceMemoryErrorPastCapacity)
{
    SimConfig cfg = SimConfig::dgxA100Like();
    cfg.deviceMemCapacity = 1 << 20;  // 1 MiB
    Device dev(3, DeviceType::SIM_GPU, cfg);
    void*  ok = dev.alloc(512 << 10);
    EXPECT_NE(ok, nullptr);
    try {
        dev.alloc(600 << 10);
        FAIL() << "expected DeviceMemoryError";
    } catch (const DeviceMemoryError& e) {
        EXPECT_EQ(e.deviceId, 3);
        EXPECT_EQ(e.requested, 600u << 10);
        EXPECT_EQ(e.inUse, 512u << 10);
        EXPECT_EQ(e.capacity, 1u << 20);
    }
    dev.free(ok);
}

TEST(Device, DryRunAccountsWithoutAllocating)
{
    SimConfig cfg = SimConfig::dgxA100Like();
    cfg.dryRun = true;
    cfg.deviceMemCapacity = 1 << 20;
    Device dev(0, DeviceType::SIM_GPU, cfg);
    void*  p = dev.alloc(900 << 10);
    EXPECT_EQ(dev.bytesInUse(), 900u << 10);
    EXPECT_THROW(dev.alloc(200 << 10), DeviceMemoryError);
    dev.free(p);
    EXPECT_EQ(dev.bytesInUse(), 0u);
}

TEST(Device, FreeNullIsNoop)
{
    Device dev(0, DeviceType::CPU, SimConfig::zeroCost());
    dev.free(nullptr);
    EXPECT_EQ(dev.bytesInUse(), 0u);
}

TEST(Device, ClockResets)
{
    Device dev(0, DeviceType::SIM_GPU, SimConfig::dgxA100Like());
    dev.computeAvailable = 5.0;
    dev.copyAvailable[0] = 2.0;
    dev.copyAvailable[1] = 3.0;
    dev.resetClocks();
    EXPECT_EQ(dev.computeAvailable, 0.0);
    EXPECT_EQ(dev.copyAvailable[0], 0.0);
    EXPECT_EQ(dev.copyAvailable[1], 0.0);
}

}  // namespace neon::sys
