#include "set/scalar.hpp"

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "set/container.hpp"

namespace neon {

using set::Backend;
using set::Container;
using set::GlobalScalar;
using set::StreamSet;

TEST(GlobalScalar, SetBroadcastsToDevices)
{
    Backend               b = Backend::cpu(3);
    GlobalScalar<double>  s(b, "alpha", 2.5);
    EXPECT_DOUBLE_EQ(s.hostValue(), 2.5);
    for (int d = 0; d < 3; ++d) {
        EXPECT_DOUBLE_EQ(s.getPartition(d, DataView::STANDARD)(), 2.5);
    }
    s.set(-1.0);
    EXPECT_DOUBLE_EQ(s.getPartition(2, DataView::STANDARD)(), -1.0);
}

TEST(GlobalScalar, CombineSumsAllPartials)
{
    Backend              b = Backend::cpu(2);
    GlobalScalar<double> s(b, "sum", 0.0);
    s.setPartial(0, 0, 1.0);
    s.setPartial(0, 1, 2.0);
    s.setPartial(1, 0, 3.0);
    s.setPartial(1, 1, 4.0);
    s.combinePartials();
    EXPECT_DOUBLE_EQ(s.hostValue(), 10.0);
    EXPECT_DOUBLE_EQ(s.getPartition(1, DataView::STANDARD)(), 10.0);
}

TEST(GlobalScalar, ReduceContainerComputesDotProduct)
{
    auto backend = Backend::cpu(2);
    dgrid::DGrid grid(backend, {4, 4, 8}, Stencil::laplace7());
    auto x = grid.newField<double>("x", 1, 0.0);
    auto y = grid.newField<double>("y", 1, 0.0);
    x.forEachHost([](const index_3d&, int, double& v) { v = 2.0; });
    y.forEachHost([](const index_3d&, int, double& v) { v = 3.0; });
    x.updateDev();
    y.updateDev();

    GlobalScalar<double> result(backend, "dot", 0.0);
    auto dot = Container::reduceFactory("dot", grid, result, [&](auto& l) {
        auto xp = l.load(x, Access::READ, Compute::REDUCE);
        auto yp = l.load(y, Access::READ, Compute::REDUCE);
        return [=](const dgrid::DCell& cell, double& acc) { acc += xp(cell) * yp(cell); };
    });

    EXPECT_TRUE(dot.isReduce());
    EXPECT_EQ(dot.pattern(), Compute::REDUCE);

    StreamSet streams(backend, 0);
    dot.run(streams);
    backend.sync();
    EXPECT_DOUBLE_EQ(result.hostValue(), 6.0 * grid.dim().size());
}

TEST(GlobalScalar, ReduceOverViewsMatchesStandard)
{
    auto backend = Backend::cpu(4);
    dgrid::DGrid grid(backend, {4, 4, 16}, Stencil::laplace7());
    auto x = grid.newField<double>("x", 1, 0.0);
    x.forEachHost([](const index_3d& g, int, double& v) { v = g.x + 10.0 * g.z; });
    x.updateDev();

    GlobalScalar<double> sumStd(backend, "s1", 0.0);
    GlobalScalar<double> sumSplit(backend, "s2", 0.0);
    auto makeSum = [&](GlobalScalar<double> out) {
        return Container::reduceFactory("sum", grid, out, [&x](auto& l) {
            auto xp = l.load(x, Access::READ, Compute::REDUCE);
            return [=](const dgrid::DCell& cell, double& acc) { acc += xp(cell); };
        });
    };
    StreamSet streams(backend, 0);

    auto cStd = makeSum(sumStd);
    cStd.run(streams, DataView::STANDARD);
    backend.sync();

    auto cSplit = makeSum(sumSplit);
    for (int d = 0; d < 4; ++d) {
        cSplit.launch(d, streams[d], DataView::INTERNAL);
        cSplit.launch(d, streams[d], DataView::BOUNDARY);
    }
    backend.sync();
    cSplit.combineStep().launch(0, streams[0], DataView::STANDARD);
    backend.sync();

    EXPECT_DOUBLE_EQ(sumStd.hostValue(), sumSplit.hostValue());
    EXPECT_GT(sumStd.hostValue(), 0.0);
}

TEST(GlobalScalar, ScalarOpComputesOnHost)
{
    Backend              b = Backend::cpu(2);
    GlobalScalar<double> a(b, "a", 6.0);
    GlobalScalar<double> c(b, "c", 2.0);
    GlobalScalar<double> r(b, "r", 0.0);

    auto op = Container::scalarOp<double>(
        "r=a/c", b, {a, c}, {r}, [=]() mutable { r.set(a.hostValue() / c.hostValue()); });
    EXPECT_EQ(op.kind(), Container::Kind::ScalarOp);

    StreamSet streams(b, 0);
    op.run(streams);
    b.sync();
    EXPECT_DOUBLE_EQ(r.hostValue(), 3.0);
    EXPECT_DOUBLE_EQ(r.getPartition(1, DataView::STANDARD)(), 3.0);

    const auto& acc = op.accesses();
    ASSERT_EQ(acc.size(), 3u);
    EXPECT_EQ(acc[2].uid, r.uid());
    EXPECT_EQ(acc[2].access, Access::WRITE);
}

}  // namespace neon
