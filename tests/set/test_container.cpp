// Container parsing (access records, pattern deduction, cost hints) and
// manual Set-level execution on a DGrid.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"

namespace neon {

using set::Backend;
using set::Container;
using set::StreamSet;

namespace {

dgrid::DGrid makeGrid(int nDev, index_3d dim = {8, 8, 8})
{
    return dgrid::DGrid(Backend::cpu(nDev), dim, Stencil::laplace7());
}

}  // namespace

TEST(Container, ParseRecordsMapAccesses)
{
    auto grid = makeGrid(1);
    auto x = grid.newField<float>("x", 1, 0.0f);
    auto y = grid.newField<float>("y", 1, 0.0f);

    auto c = grid.newContainer("axpy", [&](auto& l) {
        auto xp = l.load(x, Access::READ);
        auto yp = l.load(y, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { yp(cell) += 2.0f * xp(cell); };
    });

    const auto& acc = c.accesses();
    ASSERT_EQ(acc.size(), 2u);
    EXPECT_EQ(acc[0].uid, x.uid());
    EXPECT_EQ(acc[0].access, Access::READ);
    EXPECT_EQ(acc[0].compute, Compute::MAP);
    EXPECT_EQ(acc[0].halo, nullptr);
    EXPECT_EQ(acc[1].uid, y.uid());
    EXPECT_EQ(acc[1].access, Access::WRITE);
    EXPECT_EQ(c.pattern(), Compute::MAP);
    EXPECT_EQ(c.kind(), Container::Kind::Compute);
}

TEST(Container, StencilReadCarriesHaloOpsAndPattern)
{
    auto grid = makeGrid(2);
    auto x = grid.newField<float>("x", 1, 0.0f);
    auto y = grid.newField<float>("y", 1, 0.0f);

    auto c = grid.newContainer("laplace", [&](auto& l) {
        auto xp = l.load(x, Access::READ, Compute::STENCIL);
        auto yp = l.load(y, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable {
            float s = 0;
            for (auto off : {index_3d{1, 0, 0}, index_3d{-1, 0, 0}}) {
                s += xp.nghVal(cell, off);
            }
            yp(cell) = s;
        };
    });

    EXPECT_EQ(c.pattern(), Compute::STENCIL);
    ASSERT_NE(c.accesses()[0].halo, nullptr);
    EXPECT_EQ(c.accesses()[0].halo->uid(), x.uid());
    EXPECT_EQ(c.accesses()[0].halo->devCount(), 2);
}

TEST(Container, CostHintSumsFieldBytes)
{
    auto grid = makeGrid(1);
    auto x = grid.newField<float>("x", 3, 0.0f);   // 12 B/cell
    auto y = grid.newField<double>("y", 1, 0.0);   // 8 B/cell

    auto c = grid.newContainer("op", [&](auto& l) {
        auto xp = l.load(x, Access::READ);
        auto yp = l.load(y, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { yp(cell) = xp(cell, 0); };
    });
    EXPECT_DOUBLE_EQ(c.costHint().bytesPerItem, 20.0);
}

TEST(Container, MapExecutesOnAllDevices)
{
    auto grid = makeGrid(3, {4, 4, 9});
    auto f = grid.newField<int>("f", 1, -1);
    auto c = grid.newContainer("setZ", [&](auto& l) {
        auto fp = l.load(f, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable {
            fp(cell) = fp.globalIdx(cell).z;
        };
    });

    StreamSet streams(grid.backend(), 0);
    c.run(streams);
    grid.backend().sync();
    f.updateHost();
    grid.dim().forEach([&](const index_3d& g) { EXPECT_EQ(f.hVal(g), g.z); });
}

TEST(Container, ViewSplitCoversStandardExactlyOnce)
{
    auto grid = makeGrid(4, {4, 4, 16});
    auto f = grid.newField<int>("f", 1, 0);
    auto c = grid.newContainer("inc", [&](auto& l) {
        auto fp = l.load(f, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { fp(cell) += 1; };
    });

    StreamSet streams(grid.backend(), 0);
    c.run(streams, DataView::INTERNAL);
    c.run(streams, DataView::BOUNDARY);
    grid.backend().sync();
    f.updateHost();
    // INTERNAL + BOUNDARY must partition STANDARD: every cell exactly once.
    grid.dim().forEach([&](const index_3d& g) { EXPECT_EQ(f.hVal(g), 1) << g.to_string(); });
}

TEST(Container, ItemsMatchSpanCounts)
{
    auto grid = makeGrid(2, {4, 4, 8});
    auto f = grid.newField<int>("f", 1, 0);
    auto c = grid.newContainer("noop", [&](auto& l) {
        auto fp = l.load(f, Access::READ);
        return [=](const dgrid::DCell&) {};
    });
    EXPECT_EQ(c.items(0, DataView::STANDARD), 4u * 4 * 4);
    EXPECT_EQ(c.items(0, DataView::INTERNAL) + c.items(0, DataView::BOUNDARY),
              c.items(0, DataView::STANDARD));
}

TEST(Container, HaloContainerWritesFieldUid)
{
    auto grid = makeGrid(2);
    auto x = grid.newField<float>("x", 1, 0.0f);
    auto h = Container::haloUpdate(x.haloOps());
    EXPECT_EQ(h.kind(), Container::Kind::Halo);
    ASSERT_EQ(h.accesses().size(), 1u);
    EXPECT_EQ(h.accesses()[0].uid, x.uid());
    EXPECT_EQ(h.accesses()[0].access, Access::WRITE);
}

}  // namespace neon
