// Container fusion (the paper's §V-D future-work item, user-directed):
// one kernel launch, union of accesses, same results.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::set {

namespace {

constexpr index_3d kDim{4, 4, 8};

}  // namespace

TEST(Fusion, FusedMapsMatchSequentialMaps)
{
    auto grid = dgrid::DGrid(Backend::cpu(2), kDim, Stencil::laplace7());
    auto a = grid.newField<double>("a", 1, 0.0);
    auto b = grid.newField<double>("b", 1, 0.0);
    a.forEachHost([](const index_3d& g, int, double& v) { v = g.x + g.z; });
    a.updateDev();

    auto mapOne = [&](auto& l) {
        auto ap = l.load(a, Access::READ);
        auto bp = l.load(b, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { bp(c) = 2.0 * ap(c); };
    };
    auto mapTwo = [&](auto& l) {
        auto bp = l.load(b, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable { bp(c) += 1.0; };
    };

    auto fused = Container::fusedFactory("fused", grid, mapOne, mapTwo);
    skeleton::Skeleton skl(grid.backend());
    skl.sequence({fused}, "fused");
    skl.run();
    skl.sync();
    b.updateHost();
    b.forEachHost([](const index_3d& g, int, double& v) {
        EXPECT_DOUBLE_EQ(v, 2.0 * (g.x + g.z) + 1.0);
    });
}

TEST(Fusion, ParseSeesUnionOfAccesses)
{
    auto grid = dgrid::DGrid(Backend::cpu(1), kDim, Stencil::laplace7());
    auto a = grid.newField<double>("a", 1, 0.0);
    auto b = grid.newField<double>("b", 1, 0.0);
    auto c = grid.newField<double>("c", 1, 0.0);

    auto fused = Container::fusedFactory(
        "f", grid,
        [&](auto& l) {
            auto ap = l.load(a, Access::READ);
            auto bp = l.load(b, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable { bp(cell) = ap(cell); };
        },
        [&](auto& l) {
            auto bp = l.load(b, Access::READ);
            auto cp = l.load(c, Access::WRITE);
            return [=](const dgrid::DCell& cell) mutable { cp(cell) = bp(cell); };
        });

    const auto& acc = fused.accesses();
    ASSERT_EQ(acc.size(), 4u);
    EXPECT_EQ(acc[0].uid, a.uid());
    EXPECT_EQ(acc[1].uid, b.uid());
    EXPECT_EQ(acc[2].uid, b.uid());
    EXPECT_EQ(acc[3].uid, c.uid());
    // Cost hint covers every load.
    EXPECT_DOUBLE_EQ(fused.costHint().bytesPerItem, 4 * sizeof(double));
}

TEST(Fusion, SavesOneKernelLaunchInVirtualTime)
{
    auto measure = [](bool fuse) {
        auto backend = Backend::simGpu(1);
        auto grid = dgrid::DGrid(backend, {32, 32, 32}, Stencil::laplace7());
        auto a = grid.newField<float>("a", 1, 0.0f);
        auto b = grid.newField<float>("b", 1, 0.0f);
        auto one = [&](auto& l) {
            auto ap = l.load(a, Access::READ);
            auto bp = l.load(b, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { bp(c) = ap(c); };
        };
        auto two = [&](auto& l) {
            auto bp = l.load(b, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { bp(c) *= 2.0f; };
        };
        skeleton::Skeleton skl(backend);
        if (fuse) {
            skl.sequence({Container::fusedFactory("fused", grid, one, two)}, "f");
        } else {
            skl.sequence({grid.newContainer("one", one), grid.newContainer("two", two)}, "s");
        }
        const double t0 = backend.profiler().makespan();
        skl.run();
        skl.sync();
        return backend.profiler().makespan() - t0;
    };
    const double tSeparate = measure(false);
    const double tFused = measure(true);
    EXPECT_LT(tFused, tSeparate);
    // At least one launch overhead saved.
    EXPECT_GT(tSeparate - tFused,
              0.9 * sys::SimConfig::dgxA100Like().device.kernelLaunchOverhead);
}

}  // namespace neon::set
