// BackendSpec: named-field construction via Backend::make(), the
// simGpu()/cpu() one-liners, and the toString()/fromString() round trip.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/error.hpp"
#include "set/backend.hpp"

namespace neon::set {
namespace {

TEST(BackendSpec, MakeBuildsFromNamedFields)
{
    BackendSpec spec;
    spec.nDevices = 3;
    spec.deviceType = sys::DeviceType::SIM_GPU;
    spec.engine = EngineKind::Sequential;
    spec.config = sys::SimConfig::dgxA100Like();
    spec.preset = "dgxA100";
    Backend b = Backend::make(spec);
    EXPECT_EQ(b.devCount(), 3);
    EXPECT_EQ(b.engineKind(), EngineKind::Sequential);
    EXPECT_EQ(b.spec().preset, "dgxA100");
}

TEST(BackendSpec, ToStringRoundTripsThroughFromString)
{
    const BackendSpec spec = BackendSpec::simGpu(4, sys::SimConfig::dgxA100Like(),
                                                 EngineKind::Threaded);
    const std::string text = spec.toString();
    const BackendSpec back = BackendSpec::fromString(text);
    EXPECT_EQ(back.toString(), text);
    EXPECT_EQ(back.nDevices, 4);
    EXPECT_EQ(back.deviceType, sys::DeviceType::SIM_GPU);
    EXPECT_EQ(back.engine, EngineKind::Threaded);
    EXPECT_EQ(back.preset, "dgxA100");
}

TEST(BackendSpec, DryRunSurvivesRoundTrip)
{
    sys::SimConfig cfg = sys::SimConfig::pcieGen3Like();
    cfg.dryRun = true;
    const BackendSpec spec = BackendSpec::simGpu(2, cfg);
    const BackendSpec back = BackendSpec::fromString(spec.toString());
    EXPECT_TRUE(back.config.dryRun);
    EXPECT_EQ(back.preset, "pcieGen3");
    EXPECT_EQ(back.toString(), spec.toString());
}

TEST(BackendSpec, BackendToStringMatchesSpec)
{
    Backend b = Backend::make(BackendSpec::cpu(2));
    EXPECT_EQ(b.toString(), b.spec().toString());
    const BackendSpec back = BackendSpec::fromString(b.toString());
    EXPECT_EQ(back.nDevices, 2);
    EXPECT_EQ(back.deviceType, sys::DeviceType::CPU);
}

TEST(BackendSpec, WrappersMatchSpecFactories)
{
    Backend g = Backend::simGpu(2);
    EXPECT_EQ(g.devCount(), 2);
    EXPECT_EQ(g.spec().deviceType, sys::DeviceType::SIM_GPU);
    Backend c = Backend::cpu(1);
    EXPECT_EQ(c.spec().deviceType, sys::DeviceType::CPU);
}

TEST(BackendSpec, HostThreadsRoundTripsThroughToString)
{
    const BackendSpec spec = BackendSpec::cpu(2).withHostThreads(8);
    const std::string text = spec.toString();
    EXPECT_NE(text.find("threads=8"), std::string::npos) << text;
    const BackendSpec back = BackendSpec::fromString(text);
    EXPECT_EQ(back.hostThreads, 8);
    EXPECT_EQ(back.toString(), text);
    // Default (auto) width stays out of the string.
    EXPECT_EQ(BackendSpec::cpu(1).toString().find("threads="), std::string::npos);
}

TEST(BackendSpec, HostThreadsResolution)
{
    unsetenv("NEON_THREADS");
    // Explicit spec value wins over auto.
    Backend pinned = Backend::make(BackendSpec::cpu(1).withHostThreads(3));
    EXPECT_EQ(pinned.hostThreads(), 3);
    // Auto resolves to at least one thread.
    Backend fromAuto = Backend::make(BackendSpec::cpu(1));
    EXPECT_GE(fromAuto.hostThreads(), 1);
    // NEON_THREADS overrides the spec (same convention as NEON_ENGINE).
    setenv("NEON_THREADS", "5", 1);
    Backend fromEnv = Backend::make(BackendSpec::cpu(1).withHostThreads(3));
    unsetenv("NEON_THREADS");
    EXPECT_EQ(fromEnv.hostThreads(), 5);
}

TEST(BackendSpec, FromStringRejectsBadThreadCount)
{
    EXPECT_THROW(BackendSpec::fromString("CPU x1 engine=sequential preset=zeroCost threads=0"),
                 NeonException);
}

TEST(BackendSpec, FromStringRejectsGarbage)
{
    EXPECT_THROW(BackendSpec::fromString("TPU x4"), NeonException);
    EXPECT_THROW(BackendSpec::fromString("SIM_GPU four"), NeonException);
    EXPECT_THROW(BackendSpec::fromString("SIM_GPU x2 engine=warp"), NeonException);
    EXPECT_THROW(BackendSpec::fromString("SIM_GPU x2 preset=nosuch"), NeonException);
    EXPECT_THROW(BackendSpec::fromString("SIM_GPU x2 wat"), NeonException);
}

TEST(BackendSpec, CustomConfigRefusesRoundTrip)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.link.latency *= 2.0;  // no longer any named preset
    const BackendSpec spec = BackendSpec::simGpu(2, cfg);
    EXPECT_EQ(spec.preset, "custom");
    EXPECT_THROW(BackendSpec::fromString(spec.toString()), NeonException);
}

TEST(BackendSpec, MakeRejectsZeroDevices)
{
    BackendSpec spec;
    spec.nDevices = 0;
    EXPECT_THROW(Backend::make(spec), NeonException);
}

}  // namespace
}  // namespace neon::set
