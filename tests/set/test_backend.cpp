#include "set/backend.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sys/device.hpp"

namespace neon::set {

TEST(Backend, DefaultIsSingleCpuDevice)
{
    Backend b;
    EXPECT_EQ(b.devCount(), 1);
    EXPECT_EQ(b.device(0).type(), sys::DeviceType::CPU);
    EXPECT_FALSE(b.isDryRun());
}

TEST(Backend, SimGpuCarriesCostModel)
{
    Backend b = Backend::simGpu(4);
    EXPECT_EQ(b.devCount(), 4);
    EXPECT_EQ(b.device(2).type(), sys::DeviceType::SIM_GPU);
    EXPECT_GT(b.config().link.latency, 0.0);
}

TEST(Backend, StreamsAreLazyAndStable)
{
    Backend b = Backend::cpu(2);
    auto&   s = b.stream(1, 3);
    EXPECT_EQ(&b.stream(1, 3), &s);  // same object on repeat
    EXPECT_EQ(s.id(), 3);
    EXPECT_EQ(s.device().id(), 1);
    // Lower indices were created to fill the vector.
    EXPECT_EQ(b.stream(1, 0).id(), 0);
}

TEST(Backend, RejectsBadIndices)
{
    Backend b = Backend::cpu(2);
    EXPECT_THROW(b.device(2), NeonException);
    EXPECT_THROW(b.device(-1), NeonException);
    EXPECT_THROW(b.stream(5, 0), NeonException);
    EXPECT_THROW(b.stream(0, -1), NeonException);
}

TEST(Backend, RejectsZeroDevices)
{
    EXPECT_THROW(Backend(0, sys::DeviceType::CPU, sys::SimConfig::zeroCost()), NeonException);
}

TEST(Backend, HandleIsShared)
{
    Backend a = Backend::cpu(3);
    Backend b = a;  // copy shares devices and streams
    EXPECT_EQ(&a.device(0), &b.device(0));
    EXPECT_EQ(&a.stream(2, 0), &b.stream(2, 0));
}

TEST(Backend, ToStringMentionsKindAndCount)
{
    EXPECT_NE(Backend::simGpu(8).toString().find("SIM_GPU x8"), std::string::npos);
    EXPECT_NE(Backend::cpu(1, Backend::EngineKind::Threaded).toString().find("threaded"),
              std::string::npos);
}

TEST(Backend, DataUidsAreProcessUnique)
{
    const auto a = Backend::newDataUid();
    const auto b = Backend::newDataUid();
    EXPECT_NE(a, b);
    EXPECT_NE(b, 0u);
}

TEST(EventSet, MakeAllocatesPerDevice)
{
    auto es = EventSet::make(3);
    EXPECT_TRUE(es.valid());
    EXPECT_EQ(es.devCount(), 3);
    EXPECT_NE(es[0], es[1]);
    EXPECT_FALSE(es[2]->recorded());
}

TEST(StreamSet, IndexesAColumnOfTheStreamMatrix)
{
    Backend   b = Backend::cpu(3);
    StreamSet ss(b, 2);
    EXPECT_EQ(ss.devCount(), 3);
    EXPECT_EQ(ss.setIdx(), 2);
    EXPECT_EQ(ss[1].id(), 2);
    EXPECT_EQ(ss[1].device().id(), 1);
}

}  // namespace neon::set
