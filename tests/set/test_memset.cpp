#include "set/memset.hpp"

#include <gtest/gtest.h>

namespace neon::set {

TEST(MemSet, AllocatesPerDeviceCounts)
{
    Backend        b = Backend::cpu(3);
    MemSet<double> m(b, "m", {10, 20, 30});
    EXPECT_EQ(m.setCount(), 3);
    EXPECT_EQ(m.count(0), 10u);
    EXPECT_EQ(m.count(2), 30u);
    EXPECT_EQ(m.totalCount(), 60u);
    EXPECT_EQ(b.device(0).bytesInUse(), 10 * sizeof(double));
    EXPECT_EQ(b.device(1).bytesInUse(), 20 * sizeof(double));
}

TEST(MemSet, HostLogicalViewSpansPartitions)
{
    Backend     b = Backend::cpu(2);
    MemSet<int> m(b, "m", {3, 2});
    for (size_t g = 0; g < 5; ++g) {
        m.eRef(g) = static_cast<int>(g * 10);
    }
    EXPECT_EQ(m.rawHost(0)[0], 0);
    EXPECT_EQ(m.rawHost(0)[2], 20);
    EXPECT_EQ(m.rawHost(1)[0], 30);
    EXPECT_EQ(m.rawHost(1)[1], 40);
    EXPECT_THROW(m.eRef(5), NeonException);
}

TEST(MemSet, UpdateDevAndHostRoundTrip)
{
    Backend     b = Backend::cpu(2);
    MemSet<int> m(b, "m", {4, 4});
    for (size_t g = 0; g < 8; ++g) {
        m.eRef(g) = static_cast<int>(g);
    }
    m.updateDev();
    // Mutate device, read back.
    m.rawDev(1)[3] = 99;
    m.updateHost();
    EXPECT_EQ(m.eRef(7), 99);
    EXPECT_EQ(m.eRef(0), 0);
}

TEST(MemSet, UidsAreUnique)
{
    Backend     b = Backend::cpu(1);
    MemSet<int> a(b, "a", {1});
    MemSet<int> c(b, "c", {1});
    EXPECT_NE(a.uid(), c.uid());
}

TEST(MemSet, FreesDeviceMemoryOnDestruction)
{
    Backend b = Backend::cpu(1);
    {
        MemSet<int> m(b, "m", {1000});
        EXPECT_EQ(b.device(0).bytesInUse(), 4000u);
    }
    EXPECT_EQ(b.device(0).bytesInUse(), 0u);
}

TEST(MemSet, DryRunSkipsHostMirror)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = true;
    Backend     b(2, sys::DeviceType::SIM_GPU, cfg);
    MemSet<float> m(b, "m", {1u << 20, 1u << 20});
    EXPECT_FALSE(m.hasHostMirror());
    EXPECT_EQ(b.device(0).bytesInUse(), (1u << 20) * sizeof(float));
    m.updateDev();  // no-op, must not crash
}

}  // namespace neon::set
