// Pre-existing user code written against the old observability surface —
// backend.trace(), backend.maxVtime(), Skeleton::report(), Options(occ) —
// must keep compiling and producing the same answers through the
// [[deprecated]] shims. This file deliberately exercises the old spellings.

#include <gtest/gtest.h>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "skeleton/skeleton.hpp"

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace neon {
namespace {

TEST(DeprecatedShims, BackendTraceAliasesProfilerTrace)
{
    set::Backend b(2, sys::DeviceType::CPU, sys::SimConfig::dgxA100Like());
    b.trace().enable(true);
    b.stream(0).kernel("k", 1000, {1.0, 0.0}, [] {});
    b.sync();
    b.trace().enable(false);
    // Old and new handles observe the same recording.
    EXPECT_EQ(b.trace().entries().size(), b.profiler().trace().entries().size());
    ASSERT_FALSE(b.trace().entries().empty());
    EXPECT_EQ(b.trace().entries()[0].name, "k");
}

TEST(DeprecatedShims, MaxVtimeAliasesMakespan)
{
    set::Backend b(1, sys::DeviceType::CPU, sys::SimConfig::dgxA100Like());
    b.stream(0).kernel("k", 1'000'000, {100.0, 0.0}, [] {});
    b.sync();
    EXPECT_GT(b.maxVtime(), 0.0);
    EXPECT_DOUBLE_EQ(b.maxVtime(), b.profiler().makespan());
}

TEST(DeprecatedShims, OptionsOccCtorStillConfigures)
{
    const skeleton::Options old(Occ::EXTENDED);
    EXPECT_EQ(old.occ, Occ::EXTENDED);
    EXPECT_EQ(old.maxStreams, skeleton::Options().withOcc(Occ::EXTENDED).maxStreams);
}

TEST(DeprecatedShims, SkeletonReportForwardsToDescribe)
{
    set::Backend b = set::Backend::cpu(2);
    dgrid::DGrid grid(b, {4, 4, 8}, Stencil::laplace7());
    auto         f = grid.newField<double>("f", 1, 0.0);
    auto         c = grid.newContainer("touch", [=](set::Loader& l) mutable {
        auto fp = l.load(f, Access::WRITE);
        return [=](const dgrid::DCell& cell) mutable { fp(cell) = 1.0; };
    });
    skeleton::Skeleton skl(b);
    skl.sequence({c}, "demo");
    EXPECT_EQ(skl.report(), skl.describe());
}

}  // namespace
}  // namespace neon
