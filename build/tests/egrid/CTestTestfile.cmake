# CMake generated Testfile for 
# Source directory: /root/repo/tests/egrid
# Build directory: /root/repo/build/tests/egrid
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/egrid/test_egrid[1]_include.cmake")
