# Empty dependencies file for test_egrid.
# This may be replaced when dependencies are built.
