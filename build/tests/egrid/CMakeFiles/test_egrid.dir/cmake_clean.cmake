file(REMOVE_RECURSE
  "CMakeFiles/test_egrid.dir/test_efield.cpp.o"
  "CMakeFiles/test_egrid.dir/test_efield.cpp.o.d"
  "CMakeFiles/test_egrid.dir/test_egrid.cpp.o"
  "CMakeFiles/test_egrid.dir/test_egrid.cpp.o.d"
  "CMakeFiles/test_egrid.dir/test_espan_slots.cpp.o"
  "CMakeFiles/test_egrid.dir/test_espan_slots.cpp.o.d"
  "test_egrid"
  "test_egrid.pdb"
  "test_egrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_egrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
