file(REMOVE_RECURSE
  "CMakeFiles/test_set.dir/test_backend.cpp.o"
  "CMakeFiles/test_set.dir/test_backend.cpp.o.d"
  "CMakeFiles/test_set.dir/test_container.cpp.o"
  "CMakeFiles/test_set.dir/test_container.cpp.o.d"
  "CMakeFiles/test_set.dir/test_fusion.cpp.o"
  "CMakeFiles/test_set.dir/test_fusion.cpp.o.d"
  "CMakeFiles/test_set.dir/test_memset.cpp.o"
  "CMakeFiles/test_set.dir/test_memset.cpp.o.d"
  "CMakeFiles/test_set.dir/test_scalar.cpp.o"
  "CMakeFiles/test_set.dir/test_scalar.cpp.o.d"
  "test_set"
  "test_set.pdb"
  "test_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
