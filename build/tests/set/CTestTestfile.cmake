# CMake generated Testfile for 
# Source directory: /root/repo/tests/set
# Build directory: /root/repo/build/tests/set
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/set/test_set[1]_include.cmake")
