file(REMOVE_RECURSE
  "CMakeFiles/test_lbm.dir/test_cavity3d.cpp.o"
  "CMakeFiles/test_lbm.dir/test_cavity3d.cpp.o.d"
  "CMakeFiles/test_lbm.dir/test_karman2d.cpp.o"
  "CMakeFiles/test_lbm.dir/test_karman2d.cpp.o.d"
  "CMakeFiles/test_lbm.dir/test_native3d.cpp.o"
  "CMakeFiles/test_lbm.dir/test_native3d.cpp.o.d"
  "test_lbm"
  "test_lbm.pdb"
  "test_lbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
