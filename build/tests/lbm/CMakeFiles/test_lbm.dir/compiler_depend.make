# Empty compiler generated dependencies file for test_lbm.
# This may be replaced when dependencies are built.
