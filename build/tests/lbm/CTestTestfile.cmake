# CMake generated Testfile for 
# Source directory: /root/repo/tests/lbm
# Build directory: /root/repo/build/tests/lbm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lbm/test_lbm[1]_include.cmake")
