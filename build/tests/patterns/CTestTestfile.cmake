# CMake generated Testfile for 
# Source directory: /root/repo/tests/patterns
# Build directory: /root/repo/build/tests/patterns
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/patterns/test_patterns[1]_include.cmake")
