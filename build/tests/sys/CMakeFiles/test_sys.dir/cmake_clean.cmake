file(REMOVE_RECURSE
  "CMakeFiles/test_sys.dir/test_cost_model.cpp.o"
  "CMakeFiles/test_sys.dir/test_cost_model.cpp.o.d"
  "CMakeFiles/test_sys.dir/test_device.cpp.o"
  "CMakeFiles/test_sys.dir/test_device.cpp.o.d"
  "CMakeFiles/test_sys.dir/test_engines.cpp.o"
  "CMakeFiles/test_sys.dir/test_engines.cpp.o.d"
  "CMakeFiles/test_sys.dir/test_trace.cpp.o"
  "CMakeFiles/test_sys.dir/test_trace.cpp.o.d"
  "test_sys"
  "test_sys.pdb"
  "test_sys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
