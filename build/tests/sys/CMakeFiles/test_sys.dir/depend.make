# Empty dependencies file for test_sys.
# This may be replaced when dependencies are built.
