# CMake generated Testfile for 
# Source directory: /root/repo/tests/sys
# Build directory: /root/repo/build/tests/sys
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sys/test_sys[1]_include.cmake")
