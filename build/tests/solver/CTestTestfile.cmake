# CMake generated Testfile for 
# Source directory: /root/repo/tests/solver
# Build directory: /root/repo/build/tests/solver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/solver/test_solver[1]_include.cmake")
