# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("sys")
subdirs("set")
subdirs("dgrid")
subdirs("egrid")
subdirs("skeleton")
subdirs("solver")
subdirs("lbm")
subdirs("fem")
subdirs("patterns")
