# CMake generated Testfile for 
# Source directory: /root/repo/tests/dgrid
# Build directory: /root/repo/build/tests/dgrid
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dgrid/test_dgrid[1]_include.cmake")
