# Empty compiler generated dependencies file for test_dgrid.
# This may be replaced when dependencies are built.
