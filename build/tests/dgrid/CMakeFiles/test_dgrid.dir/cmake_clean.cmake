file(REMOVE_RECURSE
  "CMakeFiles/test_dgrid.dir/test_dfield.cpp.o"
  "CMakeFiles/test_dgrid.dir/test_dfield.cpp.o.d"
  "CMakeFiles/test_dgrid.dir/test_dgrid.cpp.o"
  "CMakeFiles/test_dgrid.dir/test_dgrid.cpp.o.d"
  "CMakeFiles/test_dgrid.dir/test_dhalo.cpp.o"
  "CMakeFiles/test_dgrid.dir/test_dhalo.cpp.o.d"
  "test_dgrid"
  "test_dgrid.pdb"
  "test_dgrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
