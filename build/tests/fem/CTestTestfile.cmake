# CMake generated Testfile for 
# Source directory: /root/repo/tests/fem
# Build directory: /root/repo/build/tests/fem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fem/test_fem[1]_include.cmake")
