# Empty dependencies file for test_fem.
# This may be replaced when dependencies are built.
