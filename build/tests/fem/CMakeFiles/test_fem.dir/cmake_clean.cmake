file(REMOVE_RECURSE
  "CMakeFiles/test_fem.dir/test_elasticity.cpp.o"
  "CMakeFiles/test_fem.dir/test_elasticity.cpp.o.d"
  "CMakeFiles/test_fem.dir/test_hex8.cpp.o"
  "CMakeFiles/test_fem.dir/test_hex8.cpp.o.d"
  "test_fem"
  "test_fem.pdb"
  "test_fem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
