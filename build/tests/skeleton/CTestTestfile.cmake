# CMake generated Testfile for 
# Source directory: /root/repo/tests/skeleton
# Build directory: /root/repo/build/tests/skeleton
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/skeleton/test_skeleton[1]_include.cmake")
