# Empty compiler generated dependencies file for test_skeleton.
# This may be replaced when dependencies are built.
