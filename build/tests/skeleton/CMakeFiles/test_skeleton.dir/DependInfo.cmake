
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/skeleton/test_build.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_build.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_build.cpp.o.d"
  "/root/repo/tests/skeleton/test_dryrun.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_dryrun.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_dryrun.cpp.o.d"
  "/root/repo/tests/skeleton/test_exec.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_exec.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_exec.cpp.o.d"
  "/root/repo/tests/skeleton/test_graph.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_graph.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_graph.cpp.o.d"
  "/root/repo/tests/skeleton/test_occ.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_occ.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_occ.cpp.o.d"
  "/root/repo/tests/skeleton/test_random_pipelines.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_random_pipelines.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_random_pipelines.cpp.o.d"
  "/root/repo/tests/skeleton/test_scheduler_edge.cpp" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_scheduler_edge.cpp.o" "gcc" "tests/skeleton/CMakeFiles/test_skeleton.dir/test_scheduler_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem/CMakeFiles/neon_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/dgrid/CMakeFiles/neon_dgrid.dir/DependInfo.cmake"
  "/root/repo/build/src/egrid/CMakeFiles/neon_egrid.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/neon_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/set/CMakeFiles/neon_set.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/neon_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neon_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
