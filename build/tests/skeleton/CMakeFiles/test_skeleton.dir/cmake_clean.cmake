file(REMOVE_RECURSE
  "CMakeFiles/test_skeleton.dir/test_build.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_build.cpp.o.d"
  "CMakeFiles/test_skeleton.dir/test_dryrun.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_dryrun.cpp.o.d"
  "CMakeFiles/test_skeleton.dir/test_exec.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_exec.cpp.o.d"
  "CMakeFiles/test_skeleton.dir/test_graph.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_graph.cpp.o.d"
  "CMakeFiles/test_skeleton.dir/test_occ.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_occ.cpp.o.d"
  "CMakeFiles/test_skeleton.dir/test_random_pipelines.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_random_pipelines.cpp.o.d"
  "CMakeFiles/test_skeleton.dir/test_scheduler_edge.cpp.o"
  "CMakeFiles/test_skeleton.dir/test_scheduler_edge.cpp.o.d"
  "test_skeleton"
  "test_skeleton.pdb"
  "test_skeleton[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
