file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_karman.dir/bench_table1_karman.cpp.o"
  "CMakeFiles/bench_table1_karman.dir/bench_table1_karman.cpp.o.d"
  "bench_table1_karman"
  "bench_table1_karman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_karman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
