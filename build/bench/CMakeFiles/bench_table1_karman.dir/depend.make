# Empty dependencies file for bench_table1_karman.
# This may be replaced when dependencies are built.
