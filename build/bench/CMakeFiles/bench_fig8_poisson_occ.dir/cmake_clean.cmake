file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_poisson_occ.dir/bench_fig8_poisson_occ.cpp.o"
  "CMakeFiles/bench_fig8_poisson_occ.dir/bench_fig8_poisson_occ.cpp.o.d"
  "bench_fig8_poisson_occ"
  "bench_fig8_poisson_occ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_poisson_occ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
