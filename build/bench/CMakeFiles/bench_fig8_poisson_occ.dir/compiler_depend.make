# Empty compiler generated dependencies file for bench_fig8_poisson_occ.
# This may be replaced when dependencies are built.
