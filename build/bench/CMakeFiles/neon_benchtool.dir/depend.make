# Empty dependencies file for neon_benchtool.
# This may be replaced when dependencies are built.
