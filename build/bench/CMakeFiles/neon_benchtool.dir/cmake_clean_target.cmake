file(REMOVE_RECURSE
  "libneon_benchtool.a"
)
