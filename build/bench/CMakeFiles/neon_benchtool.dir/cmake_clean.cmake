file(REMOVE_RECURSE
  "CMakeFiles/neon_benchtool.dir/common/benchtool.cpp.o"
  "CMakeFiles/neon_benchtool.dir/common/benchtool.cpp.o.d"
  "libneon_benchtool.a"
  "libneon_benchtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_benchtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
