
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common/benchtool.cpp" "bench/CMakeFiles/neon_benchtool.dir/common/benchtool.cpp.o" "gcc" "bench/CMakeFiles/neon_benchtool.dir/common/benchtool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem/CMakeFiles/neon_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/dgrid/CMakeFiles/neon_dgrid.dir/DependInfo.cmake"
  "/root/repo/build/src/egrid/CMakeFiles/neon_egrid.dir/DependInfo.cmake"
  "/root/repo/build/src/skeleton/CMakeFiles/neon_skeleton.dir/DependInfo.cmake"
  "/root/repo/build/src/set/CMakeFiles/neon_set.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/neon_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neon_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
