file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lbm_single.dir/bench_table2_lbm_single.cpp.o"
  "CMakeFiles/bench_table2_lbm_single.dir/bench_table2_lbm_single.cpp.o.d"
  "bench_table2_lbm_single"
  "bench_table2_lbm_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lbm_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
