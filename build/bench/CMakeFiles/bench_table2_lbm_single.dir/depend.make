# Empty dependencies file for bench_table2_lbm_single.
# This may be replaced when dependencies are built.
