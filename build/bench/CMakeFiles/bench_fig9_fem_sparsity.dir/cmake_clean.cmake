file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fem_sparsity.dir/bench_fig9_fem_sparsity.cpp.o"
  "CMakeFiles/bench_fig9_fem_sparsity.dir/bench_fig9_fem_sparsity.cpp.o.d"
  "bench_fig9_fem_sparsity"
  "bench_fig9_fem_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fem_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
