# Empty dependencies file for bench_fig9_fem_sparsity.
# This may be replaced when dependencies are built.
