file(REMOVE_RECURSE
  "CMakeFiles/neon_core.dir/log.cpp.o"
  "CMakeFiles/neon_core.dir/log.cpp.o.d"
  "CMakeFiles/neon_core.dir/stencil.cpp.o"
  "CMakeFiles/neon_core.dir/stencil.cpp.o.d"
  "CMakeFiles/neon_core.dir/types.cpp.o"
  "CMakeFiles/neon_core.dir/types.cpp.o.d"
  "libneon_core.a"
  "libneon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
