# Empty compiler generated dependencies file for neon_core.
# This may be replaced when dependencies are built.
