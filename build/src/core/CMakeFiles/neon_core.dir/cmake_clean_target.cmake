file(REMOVE_RECURSE
  "libneon_core.a"
)
