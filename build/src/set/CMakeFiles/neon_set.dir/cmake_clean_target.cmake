file(REMOVE_RECURSE
  "libneon_set.a"
)
