file(REMOVE_RECURSE
  "CMakeFiles/neon_set.dir/backend.cpp.o"
  "CMakeFiles/neon_set.dir/backend.cpp.o.d"
  "CMakeFiles/neon_set.dir/container.cpp.o"
  "CMakeFiles/neon_set.dir/container.cpp.o.d"
  "libneon_set.a"
  "libneon_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
