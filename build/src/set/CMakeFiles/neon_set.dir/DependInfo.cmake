
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/set/backend.cpp" "src/set/CMakeFiles/neon_set.dir/backend.cpp.o" "gcc" "src/set/CMakeFiles/neon_set.dir/backend.cpp.o.d"
  "/root/repo/src/set/container.cpp" "src/set/CMakeFiles/neon_set.dir/container.cpp.o" "gcc" "src/set/CMakeFiles/neon_set.dir/container.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sys/CMakeFiles/neon_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neon_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
