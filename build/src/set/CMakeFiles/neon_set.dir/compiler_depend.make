# Empty compiler generated dependencies file for neon_set.
# This may be replaced when dependencies are built.
