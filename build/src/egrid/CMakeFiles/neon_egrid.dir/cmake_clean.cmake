file(REMOVE_RECURSE
  "CMakeFiles/neon_egrid.dir/egrid.cpp.o"
  "CMakeFiles/neon_egrid.dir/egrid.cpp.o.d"
  "libneon_egrid.a"
  "libneon_egrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_egrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
