# Empty dependencies file for neon_egrid.
# This may be replaced when dependencies are built.
