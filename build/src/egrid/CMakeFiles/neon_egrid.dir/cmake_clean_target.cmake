file(REMOVE_RECURSE
  "libneon_egrid.a"
)
