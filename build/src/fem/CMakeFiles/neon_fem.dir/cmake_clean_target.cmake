file(REMOVE_RECURSE
  "libneon_fem.a"
)
