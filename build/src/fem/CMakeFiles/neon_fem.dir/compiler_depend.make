# Empty compiler generated dependencies file for neon_fem.
# This may be replaced when dependencies are built.
