file(REMOVE_RECURSE
  "CMakeFiles/neon_fem.dir/hex8.cpp.o"
  "CMakeFiles/neon_fem.dir/hex8.cpp.o.d"
  "CMakeFiles/neon_fem.dir/node_stencil.cpp.o"
  "CMakeFiles/neon_fem.dir/node_stencil.cpp.o.d"
  "libneon_fem.a"
  "libneon_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
