# Empty compiler generated dependencies file for neon_sys.
# This may be replaced when dependencies are built.
