file(REMOVE_RECURSE
  "CMakeFiles/neon_sys.dir/cost_model.cpp.o"
  "CMakeFiles/neon_sys.dir/cost_model.cpp.o.d"
  "CMakeFiles/neon_sys.dir/device.cpp.o"
  "CMakeFiles/neon_sys.dir/device.cpp.o.d"
  "CMakeFiles/neon_sys.dir/event.cpp.o"
  "CMakeFiles/neon_sys.dir/event.cpp.o.d"
  "CMakeFiles/neon_sys.dir/sequential_engine.cpp.o"
  "CMakeFiles/neon_sys.dir/sequential_engine.cpp.o.d"
  "CMakeFiles/neon_sys.dir/stream.cpp.o"
  "CMakeFiles/neon_sys.dir/stream.cpp.o.d"
  "CMakeFiles/neon_sys.dir/threaded_engine.cpp.o"
  "CMakeFiles/neon_sys.dir/threaded_engine.cpp.o.d"
  "CMakeFiles/neon_sys.dir/trace.cpp.o"
  "CMakeFiles/neon_sys.dir/trace.cpp.o.d"
  "libneon_sys.a"
  "libneon_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
