
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sys/cost_model.cpp" "src/sys/CMakeFiles/neon_sys.dir/cost_model.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/cost_model.cpp.o.d"
  "/root/repo/src/sys/device.cpp" "src/sys/CMakeFiles/neon_sys.dir/device.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/device.cpp.o.d"
  "/root/repo/src/sys/event.cpp" "src/sys/CMakeFiles/neon_sys.dir/event.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/event.cpp.o.d"
  "/root/repo/src/sys/sequential_engine.cpp" "src/sys/CMakeFiles/neon_sys.dir/sequential_engine.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/sequential_engine.cpp.o.d"
  "/root/repo/src/sys/stream.cpp" "src/sys/CMakeFiles/neon_sys.dir/stream.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/stream.cpp.o.d"
  "/root/repo/src/sys/threaded_engine.cpp" "src/sys/CMakeFiles/neon_sys.dir/threaded_engine.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/threaded_engine.cpp.o.d"
  "/root/repo/src/sys/trace.cpp" "src/sys/CMakeFiles/neon_sys.dir/trace.cpp.o" "gcc" "src/sys/CMakeFiles/neon_sys.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neon_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
