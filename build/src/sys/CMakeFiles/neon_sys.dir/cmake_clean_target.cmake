file(REMOVE_RECURSE
  "libneon_sys.a"
)
