
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dgrid/dgrid.cpp" "src/dgrid/CMakeFiles/neon_dgrid.dir/dgrid.cpp.o" "gcc" "src/dgrid/CMakeFiles/neon_dgrid.dir/dgrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/set/CMakeFiles/neon_set.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/neon_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neon_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
