file(REMOVE_RECURSE
  "CMakeFiles/neon_dgrid.dir/dgrid.cpp.o"
  "CMakeFiles/neon_dgrid.dir/dgrid.cpp.o.d"
  "libneon_dgrid.a"
  "libneon_dgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_dgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
