file(REMOVE_RECURSE
  "libneon_dgrid.a"
)
