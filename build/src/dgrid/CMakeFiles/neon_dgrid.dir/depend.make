# Empty dependencies file for neon_dgrid.
# This may be replaced when dependencies are built.
