file(REMOVE_RECURSE
  "CMakeFiles/neon_skeleton.dir/graph.cpp.o"
  "CMakeFiles/neon_skeleton.dir/graph.cpp.o.d"
  "CMakeFiles/neon_skeleton.dir/skeleton.cpp.o"
  "CMakeFiles/neon_skeleton.dir/skeleton.cpp.o.d"
  "libneon_skeleton.a"
  "libneon_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neon_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
