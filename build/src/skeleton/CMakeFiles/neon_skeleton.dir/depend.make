# Empty dependencies file for neon_skeleton.
# This may be replaced when dependencies are built.
