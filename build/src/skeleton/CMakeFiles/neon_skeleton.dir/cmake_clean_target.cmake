file(REMOVE_RECURSE
  "libneon_skeleton.a"
)
