file(REMOVE_RECURSE
  "CMakeFiles/manual_set_level.dir/manual_set_level.cpp.o"
  "CMakeFiles/manual_set_level.dir/manual_set_level.cpp.o.d"
  "manual_set_level"
  "manual_set_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manual_set_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
