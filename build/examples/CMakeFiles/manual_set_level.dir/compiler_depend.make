# Empty compiler generated dependencies file for manual_set_level.
# This may be replaced when dependencies are built.
