file(REMOVE_RECURSE
  "CMakeFiles/karman_street.dir/karman_street.cpp.o"
  "CMakeFiles/karman_street.dir/karman_street.cpp.o.d"
  "karman_street"
  "karman_street.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/karman_street.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
