# Empty dependencies file for karman_street.
# This may be replaced when dependencies are built.
