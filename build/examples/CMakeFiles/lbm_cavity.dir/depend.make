# Empty dependencies file for lbm_cavity.
# This may be replaced when dependencies are built.
