file(REMOVE_RECURSE
  "CMakeFiles/lbm_cavity.dir/lbm_cavity.cpp.o"
  "CMakeFiles/lbm_cavity.dir/lbm_cavity.cpp.o.d"
  "lbm_cavity"
  "lbm_cavity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbm_cavity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
