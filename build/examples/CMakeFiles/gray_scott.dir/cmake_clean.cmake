file(REMOVE_RECURSE
  "CMakeFiles/gray_scott.dir/gray_scott.cpp.o"
  "CMakeFiles/gray_scott.dir/gray_scott.cpp.o.d"
  "gray_scott"
  "gray_scott.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gray_scott.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
