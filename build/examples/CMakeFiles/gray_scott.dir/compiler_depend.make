# Empty compiler generated dependencies file for gray_scott.
# This may be replaced when dependencies are built.
