# Empty compiler generated dependencies file for occ_timeline.
# This may be replaced when dependencies are built.
