file(REMOVE_RECURSE
  "CMakeFiles/occ_timeline.dir/occ_timeline.cpp.o"
  "CMakeFiles/occ_timeline.dir/occ_timeline.cpp.o.d"
  "occ_timeline"
  "occ_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
