#!/usr/bin/env bash
# Run clang-tidy (.clang-tidy profile) over every library source file,
# using the compile database of an existing build directory.
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build directory must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON. Degrades to a no-op (exit 0) when
# clang-tidy is not installed so local environments without LLVM keep
# working; CI installs it explicitly.
set -u

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy.sh: clang-tidy not found; skipping (install clang-tidy to enable)"
    exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

status=0
for f in "$REPO_ROOT"/src/*/*.cpp; do
    echo "== clang-tidy $f"
    clang-tidy -p "$BUILD_DIR" --quiet "$f" || status=1
done
exit $status
