#!/usr/bin/env python3
"""Validate the JSON reports the benches emit.

Usage: check_bench_reports.py [--overhead-baseline BASELINE.json] REPORT.json [...]

Two schemas are understood:

* ExecutionReport payloads from the fig7/8/9 benches
  (docs/observability.md): the overlap/halo/critical-path aggregates plus
  per-device, per-stream and per-container breakdowns.
* The runtime-overhead report from bench_overhead
  (docs/performance.md, "bench": "overhead"): enqueue cost,
  compile-vs-cached sequence() timings, and CPU-device kernel dispatch
  (ns per cell through the devirtualized trampoline path at one host
  thread). The machine-independent gate is speedup >= 10 (a cached
  sequence() must replay, not recompile). With --overhead-baseline, the
  cached-path wall cost and the dispatch ns_per_cell are additionally
  gated at 2x the committed baseline, so a hot-path regression fails CI
  even when the compile path regresses by the same factor.
* The multi-tenant traffic replay from bench_service
  (docs/service.md, "bench": "service"): >= 1000 mixed jobs replayed
  both serialized (maxInFlight=1, no batching) and concurrent
  (fair-share + batching) on the same trace. The gates are
  machine-independent because latencies are virtual-time: the
  concurrent mode must complete every job, beat the serialized p99
  latency strictly, and beat the serialized device utilization
  strictly — otherwise the service layer has stopped buying anything
  over a FIFO-of-one.
* The adaptive-repartitioning sweep from bench_repartition
  (docs/robustness.md, "bench": "repartition"): a heterogeneous
  dry-run pool (speed factors with a real spread) runs a stencil+map
  pipeline on the static equal slabs and again after a
  measured-rate repartition. The gate is machine-independent because
  utilization is virtual-time: the rebalanced plan must strictly beat
  the static one, fields must actually migrate (migration bytes > 0),
  and the rebalanced plan must differ from the static plan — otherwise
  the repartitioner has degenerated into a no-op.

Exit status is nonzero on the first missing or malformed report, so CI
fails when a bench stops writing its payload.
"""

import argparse
import json
import sys

TOP_LEVEL_KEYS = [
    "window",
    "events",
    "overlapPercent",
    "haloBytes",
    "deviceUtilization",
    "criticalPath",
    "waitTime",
    "devices",
    "streams",
    "containers",
]

DEVICE_KEYS = ["device", "computeBusy", "transferBusy", "overlap", "haloBytes"]

SERVICE_MODE_KEYS = ["p50", "p99", "mean", "utilization", "makespan", "batches", "completed"]
# The bench replays a real multi-tenant trace, not a toy one.
SERVICE_MIN_JOBS = 1000

OVERHEAD_ENQUEUE_KEYS = ["ops_per_run", "runs_measured", "ns_per_op"]
OVERHEAD_SEQUENCE_KEYS = ["repeats", "compile_ns", "cached_ns", "speedup", "cache_hits"]
OVERHEAD_DISPATCH_KEYS = ["cells", "runs_measured", "ns_per_cell"]

# A cached sequence() is a recipe replay; anything under this factor means
# it is recompiling (or the cache stopped hitting).
MIN_CACHED_SPEEDUP = 10.0
# Regression headroom against the committed baseline's cached_ns.
BASELINE_SLACK = 2.0


def load(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f), []
    except OSError as exc:
        return None, [f"{path}: cannot read: {exc}"]
    except json.JSONDecodeError as exc:
        return None, [f"{path}: not valid JSON: {exc}"]


def check_execution_report(path: str, report: dict) -> list[str]:
    errors = []
    for key in TOP_LEVEL_KEYS:
        if key not in report:
            errors.append(f"{path}: missing key '{key}'")
    if errors:
        return errors

    if not 0.0 <= report["overlapPercent"] <= 100.0:
        errors.append(f"{path}: overlapPercent {report['overlapPercent']} out of [0, 100]")
    if report["haloBytes"] < 0:
        errors.append(f"{path}: negative haloBytes")
    if report["criticalPath"] < 0.0:
        errors.append(f"{path}: negative criticalPath")
    if report["events"] <= 0:
        errors.append(f"{path}: no recorded events — was the profiler enabled?")
    if not report["devices"]:
        errors.append(f"{path}: empty device breakdown")
    for dev in report["devices"]:
        for key in DEVICE_KEYS:
            if key not in dev:
                errors.append(f"{path}: device entry missing '{key}'")
                break
    if not report["containers"]:
        errors.append(f"{path}: empty container breakdown")
    return errors


def check_overhead_report(path: str, report: dict, baseline_path: str | None) -> list[str]:
    errors = []
    enqueue = report.get("enqueue")
    sequence = report.get("sequence")
    dispatch = report.get("dispatch")
    if not isinstance(enqueue, dict):
        errors.append(f"{path}: missing 'enqueue' section")
    else:
        for key in OVERHEAD_ENQUEUE_KEYS:
            if key not in enqueue:
                errors.append(f"{path}: enqueue section missing '{key}'")
    if not isinstance(sequence, dict):
        errors.append(f"{path}: missing 'sequence' section")
    else:
        for key in OVERHEAD_SEQUENCE_KEYS:
            if key not in sequence:
                errors.append(f"{path}: sequence section missing '{key}'")
    if not isinstance(dispatch, dict):
        errors.append(f"{path}: missing 'dispatch' section")
    else:
        for key in OVERHEAD_DISPATCH_KEYS:
            if key not in dispatch:
                errors.append(f"{path}: dispatch section missing '{key}'")
    if errors:
        return errors

    if enqueue["ns_per_op"] <= 0:
        errors.append(f"{path}: non-positive ns_per_op")
    if dispatch["ns_per_cell"] <= 0 or dispatch["cells"] <= 0:
        errors.append(f"{path}: non-positive dispatch metrics")
    if sequence["cached_ns"] <= 0 or sequence["compile_ns"] <= 0:
        errors.append(f"{path}: non-positive sequence timings")
    if sequence["cache_hits"] != sequence["repeats"]:
        errors.append(
            f"{path}: only {sequence['cache_hits']}/{sequence['repeats']} cached "
            "sequence() calls hit the schedule cache"
        )
    if sequence["speedup"] < MIN_CACHED_SPEEDUP:
        errors.append(
            f"{path}: cached sequence() only {sequence['speedup']:.1f}x cheaper than "
            f"compile (gate: >= {MIN_CACHED_SPEEDUP:.0f}x) — the cache is not replaying"
        )

    if baseline_path is not None:
        baseline, load_errors = load(baseline_path)
        if load_errors:
            return errors + load_errors
        base_cached = baseline.get("sequence", {}).get("cached_ns")
        if base_cached is None:
            errors.append(f"{baseline_path}: baseline missing sequence.cached_ns")
        elif sequence["cached_ns"] > BASELINE_SLACK * base_cached:
            errors.append(
                f"{path}: cached sequence() cost {sequence['cached_ns']:.0f} ns exceeds "
                f"{BASELINE_SLACK:.0f}x baseline ({base_cached:.0f} ns from {baseline_path})"
            )
        base_dispatch = baseline.get("dispatch", {}).get("ns_per_cell")
        if base_dispatch is None:
            errors.append(f"{baseline_path}: baseline missing dispatch.ns_per_cell")
        elif dispatch["ns_per_cell"] > BASELINE_SLACK * base_dispatch:
            errors.append(
                f"{path}: dispatch cost {dispatch['ns_per_cell']:.2f} ns/cell exceeds "
                f"{BASELINE_SLACK:.0f}x baseline ({base_dispatch:.2f} ns/cell from "
                f"{baseline_path})"
            )
    return errors


def check_service_report(path: str, report: dict) -> list[str]:
    errors = []
    jobs = report.get("jobs")
    if not isinstance(jobs, int) or jobs < SERVICE_MIN_JOBS:
        errors.append(f"{path}: jobs {jobs!r} below the {SERVICE_MIN_JOBS}-job floor")
    modes = report.get("modes")
    if not isinstance(modes, dict):
        return errors + [f"{path}: missing 'modes' section"]
    for name in ("serialized", "concurrent"):
        mode = modes.get(name)
        if not isinstance(mode, dict):
            errors.append(f"{path}: missing mode '{name}'")
            continue
        for key in SERVICE_MODE_KEYS:
            if key not in mode:
                errors.append(f"{path}: mode '{name}' missing '{key}'")
    if errors:
        return errors

    serialized = modes["serialized"]
    concurrent = modes["concurrent"]
    for name, mode in (("serialized", serialized), ("concurrent", concurrent)):
        if isinstance(jobs, int) and mode["completed"] != jobs:
            errors.append(
                f"{path}: mode '{name}' completed {mode['completed']}/{jobs} jobs"
            )
        if not 0.0 <= mode["utilization"] <= 1.0:
            errors.append(
                f"{path}: mode '{name}' utilization {mode['utilization']} out of [0, 1]"
            )
        if mode["p50"] <= 0.0 or mode["p99"] < mode["p50"]:
            errors.append(
                f"{path}: mode '{name}' latency percentiles malformed "
                f"(p50={mode['p50']}, p99={mode['p99']})"
            )
    if serialized["batches"] != 0:
        errors.append(f"{path}: serialized mode must not batch (got {serialized['batches']})")
    if errors:
        return errors

    # The acceptance gates: concurrent scheduling must strictly beat the
    # FIFO-of-one baseline on BOTH tail latency and device utilization.
    if concurrent["p99"] >= serialized["p99"]:
        errors.append(
            f"{path}: concurrent p99 {concurrent['p99']:.3g}s not below "
            f"serialized p99 {serialized['p99']:.3g}s"
        )
    if concurrent["utilization"] <= serialized["utilization"]:
        errors.append(
            f"{path}: concurrent utilization {concurrent['utilization']:.3f} not above "
            f"serialized {serialized['utilization']:.3f}"
        )
    return errors


def check_repartition_report(path: str, report: dict) -> list[str]:
    errors = []
    devices = report.get("devices")
    if not isinstance(devices, int) or devices < 2:
        errors.append(f"{path}: devices {devices!r} — need a multi-device pool")
    factors = report.get("speedFactors")
    if not isinstance(factors, list) or len(factors) != devices:
        errors.append(f"{path}: speedFactors {factors!r} must list one factor per device")
    elif min(factors) <= 0.0 or max(factors) == min(factors):
        errors.append(
            f"{path}: speedFactors {factors!r} must be positive and heterogeneous"
        )
    plans = report.get("plans")
    if not isinstance(plans, dict) or "static" not in plans or "rebalanced" not in plans:
        errors.append(f"{path}: missing 'plans' {{static, rebalanced}} section")
    migration = report.get("migration")
    if not isinstance(migration, dict) or "bytes" not in migration:
        errors.append(f"{path}: missing 'migration' section with 'bytes'")
    rebalance = report.get("rebalance")
    if not isinstance(rebalance, dict) or "latency_ms" not in rebalance:
        errors.append(f"{path}: missing 'rebalance' section with 'latency_ms'")
    util = report.get("utilization")
    if not isinstance(util, dict) or any(
        k not in util for k in ("static", "rebalanced", "delta")
    ):
        errors.append(f"{path}: missing 'utilization' {{static, rebalanced, delta}}")
    if errors:
        return errors

    for name in ("static", "rebalanced"):
        if not 0.0 <= util[name] <= 1.0:
            errors.append(f"{path}: utilization '{name}' {util[name]} out of [0, 1]")
    if migration["bytes"] <= 0:
        errors.append(
            f"{path}: migration bytes {migration['bytes']} — the rebalance moved no data"
        )
    if rebalance["latency_ms"] < 0.0:
        errors.append(f"{path}: negative rebalance latency {rebalance['latency_ms']}")
    if plans["rebalanced"] == plans["static"]:
        errors.append(f"{path}: rebalanced plan identical to static plan {plans['static']}")
    if errors:
        return errors

    # The acceptance gate: measured-rate rebalancing must strictly improve
    # utilization over static equal slabs on a heterogeneous mix.
    if util["rebalanced"] <= util["static"]:
        errors.append(
            f"{path}: rebalanced utilization {util['rebalanced']:.3f} not above "
            f"static {util['static']:.3f}"
        )
    return errors


def check(path: str, overhead_baseline: str | None) -> list[str]:
    report, errors = load(path)
    if errors:
        return errors
    if report.get("bench") == "overhead":
        return check_overhead_report(path, report, overhead_baseline)
    if report.get("bench") == "service":
        return check_service_report(path, report)
    if report.get("bench") == "repartition":
        return check_repartition_report(path, report)
    return check_execution_report(path, report)


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--overhead-baseline",
        metavar="BASELINE.json",
        help="committed overhead baseline; gates cached_ns at "
        f"{BASELINE_SLACK:.0f}x the baseline value",
    )
    parser.add_argument("reports", nargs="+", metavar="REPORT.json")
    args = parser.parse_args()

    failed = False
    for path in args.reports:
        errors = check(path, args.overhead_baseline)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {error}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
