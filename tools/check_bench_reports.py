#!/usr/bin/env python3
"""Validate the ExecutionReport JSON files the fig7/8/9 benches emit.

Usage: check_bench_reports.py BENCH_fig7_lbm_scaling_report.json [...]

Each report must parse as JSON and carry the ExecutionReport schema
(docs/observability.md): the overlap/halo/critical-path aggregates plus
per-device, per-stream and per-container breakdowns. Exit status is
nonzero on the first missing or malformed report, so CI fails when a
bench stops writing the observability payload.
"""

import json
import sys

TOP_LEVEL_KEYS = [
    "window",
    "events",
    "overlapPercent",
    "haloBytes",
    "deviceUtilization",
    "criticalPath",
    "waitTime",
    "devices",
    "streams",
    "containers",
]

DEVICE_KEYS = ["device", "computeBusy", "transferBusy", "overlap", "haloBytes"]


def check(path: str) -> list[str]:
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON: {exc}"]

    for key in TOP_LEVEL_KEYS:
        if key not in report:
            errors.append(f"{path}: missing key '{key}'")
    if errors:
        return errors

    if not 0.0 <= report["overlapPercent"] <= 100.0:
        errors.append(f"{path}: overlapPercent {report['overlapPercent']} out of [0, 100]")
    if report["haloBytes"] < 0:
        errors.append(f"{path}: negative haloBytes")
    if report["criticalPath"] < 0.0:
        errors.append(f"{path}: negative criticalPath")
    if report["events"] <= 0:
        errors.append(f"{path}: no recorded events — was the profiler enabled?")
    if not report["devices"]:
        errors.append(f"{path}: empty device breakdown")
    for dev in report["devices"]:
        for key in DEVICE_KEYS:
            if key not in dev:
                errors.append(f"{path}: device entry missing '{key}'")
                break
    if not report["containers"]:
        errors.append(f"{path}: empty container breakdown")
    return errors


def main() -> int:
    paths = sys.argv[1:]
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = check(path)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {error}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
