// Measured-rate rebalancing on a heterogeneous device mix
// (docs/robustness.md). A 3-device simulated pool with speed factors
// {1.0, 0.5, 0.25} runs a stencil+map pipeline twice:
//   * "static": the constructor's equal z-slabs — the slowest device
//     strangles every sync point, the fast devices idle,
//   * "rebalanced": Repartitioner::propose consumes the static window's
//     ExecutionReport and re-slices proportionally to measured rates;
//     fields migrate through the traced transfer plan.
// BENCH_repartition_report.json records the migration bytes, the wall
// rebalance latency (sync + migrate + rebuild + recompile) and both
// utilizations. CI gates rebalanced strictly above static
// (tools/check_bench_reports.py): if measured-rate rebalancing stops
// improving a 4x-spread heterogeneous mix, the repartitioner is broken.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "repartition/repartitioner.hpp"
#include "skeleton/skeleton.hpp"
#include "sys/execution_report.hpp"

using namespace neon;

namespace {

constexpr int kDevices = 3;
constexpr int kSteps = 12;
const std::vector<double> kSpeedFactors = {1.0, 0.5, 0.25};

struct Rig
{
    set::Backend                backend;
    dgrid::DGrid                grid;
    dgrid::DField<double>       f;
    dgrid::DField<double>       g;
    std::vector<set::Container> ops;

    Rig()
        : backend(set::Backend::make(
              set::BackendSpec::simGpu(kDevices,
                                       [] {
                                           sys::SimConfig sim = sys::SimConfig::dgxA100Like();
                                           sim.dryRun = true;
                                           return sim;
                                       }())
                  .withSpeedFactors(kSpeedFactors))),
          grid(backend, {96, 96, 192}, Stencil::laplace7()),
          f(grid.newField<double>("f", 1, 0.0)),
          g(grid.newField<double>("g", 1, 0.0))
    {
        ops.push_back(grid.newContainer("diffuse", [this](auto& l) mutable {
            auto in = l.load(f, Access::READ, Compute::STENCIL);
            auto out = l.load(g, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable {
                double acc = -6.0 * in(c);
                for (const auto& off : Stencil::laplace7().points()) {
                    acc += in.nghVal(c, off);
                }
                out(c) = in(c) + 0.05 * acc;
            };
        }));
        ops.push_back(grid.newContainer("relax", [this](auto& l) mutable {
            auto in = l.load(g, Access::READ);
            auto out = l.load(f, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { out(c) = 0.7 * out(c) + 0.3 * in(c); };
        }));
    }
};

ExecutionReport runWindow(Rig& rig, skeleton::Skeleton& skl)
{
    rig.backend.profiler().trace().clear();
    auto compiled = skl.sequence(rig.ops, skeleton::SequenceOptions().withName("rebalance"));
    for (int i = 0; i < kSteps; ++i) {
        compiled.run();
    }
    skl.sync();
    return ExecutionReport::fromEntries(rig.backend.profiler().trace().entries(),
                                        rig.backend.devCount());
}

std::string planToJson(const domain::PartitionPlan& plan)
{
    std::string out = "[";
    for (size_t i = 0; i < plan.unitsPerDev.size(); ++i) {
        out += (i > 0 ? ", " : "") + std::to_string(plan.unitsPerDev[i]);
    }
    return out + "]";
}

}  // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    // Pure sweep binary (no registered gbench cases): the report below is
    // the artifact.
    benchmark::Shutdown();

    Rig rig;
    rig.backend.profiler().enable();
    skeleton::Skeleton skl(rig.backend);

    // --- static equal slabs -------------------------------------------------
    const domain::PartitionPlan staticPlan = rig.grid.currentPlan();
    const ExecutionReport       staticReport = runWindow(rig, skl);
    const double                utilStatic = staticReport.deviceUtilization();

    // --- measured-rate rebalance -------------------------------------------
    const repartition::DeviceRates rates =
        repartition::Repartitioner::measuredRates(staticReport, staticPlan);
    const domain::PartitionPlan proposed = repartition::Repartitioner::propose(
        rates, rig.grid.partitionUnits(), rig.grid.minUnitsPerDev());

    rig.backend.profiler().trace().clear();
    const auto t0 = std::chrono::steady_clock::now();
    rig.backend.sync();
    rig.grid.repartition(proposed);
    for (auto& c : rig.ops) {
        c.rebuild();
    }
    auto warm = skl.sequence(rig.ops, skeleton::SequenceOptions().withName("rebalance"));
    const auto t1 = std::chrono::steady_clock::now();
    const double rebalanceMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    uint64_t migrationBytes = 0;
    int      migrationSegments = 0;
    for (const auto& e : rig.backend.profiler().trace().entries()) {
        if (e.kind == "transfer" && e.name.rfind("migrate(", 0) == 0) {
            migrationBytes += e.bytes;
            migrationSegments += 1;
        }
    }

    const ExecutionReport rebalReport = runWindow(rig, skl);
    const double          utilRebalanced = rebalReport.deviceUtilization();

    std::cout << "static plan " << planToJson(staticPlan) << " utilization "
              << utilStatic * 100.0 << "%\n";
    std::cout << "rates " << rates.toString() << "\n";
    std::cout << "rebalanced plan " << planToJson(proposed) << " utilization "
              << utilRebalanced * 100.0 << "% (delta "
              << (utilRebalanced - utilStatic) * 100.0 << " pts)\n";
    std::cout << "migration " << migrationBytes << " bytes over " << migrationSegments
              << " segments, rebalance latency " << rebalanceMs << " ms\n";

    std::ofstream os("BENCH_repartition_report.json");
    os << "{\n  \"bench\": \"repartition\",\n";
    os << "  \"devices\": " << kDevices << ",\n";
    os << "  \"speedFactors\": [";
    for (size_t i = 0; i < kSpeedFactors.size(); ++i) {
        os << (i > 0 ? ", " : "") << kSpeedFactors[i];
    }
    os << "],\n  \"steps\": " << kSteps << ",\n";
    os << "  \"plans\": {\"static\": " << planToJson(staticPlan)
       << ", \"rebalanced\": " << planToJson(proposed) << "},\n";
    os << "  \"migration\": {\"bytes\": " << migrationBytes
       << ", \"segments\": " << migrationSegments << "},\n";
    os << "  \"rebalance\": {\"latency_ms\": " << rebalanceMs << "},\n";
    os << "  \"utilization\": {\"static\": " << utilStatic
       << ", \"rebalanced\": " << utilRebalanced
       << ", \"delta\": " << utilRebalanced - utilStatic << "}\n";
    os << "}\n";
    std::cout << "wrote BENCH_repartition_report.json\n";
    return 0;
}
