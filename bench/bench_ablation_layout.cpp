// Ablation benches for the design choices called out in DESIGN.md §4:
//   (a) SoA vs AoS field layout — SoA haloUpdate pays one link latency per
//       component and direction (2n transfers), AoS pays 2 (paper §IV-C2).
//   (b) Interconnect presets — the paper's two systems (DGX A100 NVLink vs
//       PCIe Gen3): the same application, very different scaling.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "lbm/cavity3d.hpp"

using namespace neon;

namespace {

constexpr double kTau = 0.56;
constexpr double kLid = 0.1;

double secondsPerIter(index_3d dim, int nDev, Occ occ, MemLayout layout, sys::SimConfig cfg,
                      bool dryRun)
{
    cfg.dryRun = dryRun;
    auto backend = set::Backend::make(set::BackendSpec::simGpu(nDev, cfg));
    dgrid::DGrid grid(backend, dim, lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> solver(grid, kTau, kLid, occ, layout);
    solver.run(2);
    return benchtool::measureVirtual(backend, 4, [&] { solver.run(1); });
}

size_t haloTransferCount(MemLayout layout)
{
    set::Backend backend = set::Backend::cpu(3);
    dgrid::DGrid grid(backend, {16, 16, 24}, lbm::D3Q19::stencil());
    auto f = grid.newField<float>("f", lbm::D3Q19::Q, 0.0f, layout);
    backend.profiler().trace().clear();
    backend.profiler().trace().enable(true);
    f.haloOps()->enqueueHaloSend(1, backend.stream(1));
    backend.sync();
    backend.profiler().trace().enable(false);
    size_t n = 0;
    for (const auto& e : backend.profiler().trace().entries()) {
        if (e.kind == "transfer") {
            ++n;
        }
    }
    return n;
}

}  // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    // This binary is a pure sweep (no registered gbench cases): the tables
    // below are the ablation artifact.
    benchmark::Shutdown();

    // (a) Layout: transfers per halo update and per-iteration impact.
    {
        benchtool::Table table;
        table.title = "Ablation (a) — field layout: haloUpdate transfers and LBM cost";
        table.header = {"Layout", "transfers/dev (19 comps)", "us/iter (128^3, 8 GPU, no OCC)",
                        "us/iter (with standard OCC)"};
        for (MemLayout layout : {MemLayout::structOfArrays, MemLayout::arrayOfStructs}) {
            const double tNone = secondsPerIter({128, 128, 128}, 8, Occ::NONE, layout,
                                                sys::SimConfig::dgxA100Like(), true);
            const double tStd = secondsPerIter({128, 128, 128}, 8, Occ::STANDARD, layout,
                                               sys::SimConfig::dgxA100Like(), true);
            table.rows.push_back({to_string(layout),
                                  std::to_string(haloTransferCount(layout)),
                                  benchtool::fmt(tNone * 1e6, 1), benchtool::fmt(tStd * 1e6, 1)});
        }
        table.print();
        std::cout << "SoA pays 2*19 link latencies per device and halo; AoS pays 2. OCC hides\n"
                     "most of the difference by overlapping the transfers.\n";
    }

    // (b) Interconnect: the paper's two systems.
    {
        benchtool::Table table;
        table.title = "Ablation (b) — interconnect: NVLink (DGX A100) vs PCIe Gen3, LBM 128^3";
        table.header = {"System", "OCC", "us/iter (8 GPU)", "efficiency vs 1 GPU"};
        for (const auto& [name, cfg] :
             {std::pair<const char*, sys::SimConfig>{"DGX A100 (NVLink)",
                                                     sys::SimConfig::dgxA100Like()},
              std::pair<const char*, sys::SimConfig>{"PCIe Gen3", sys::SimConfig::pcieGen3Like()}}) {
            const double t1 = secondsPerIter({128, 128, 128}, 1, Occ::NONE,
                                             MemLayout::structOfArrays, cfg, true);
            for (Occ occ : {Occ::NONE, Occ::STANDARD}) {
                const double t8 = secondsPerIter({128, 128, 128}, 8, occ,
                                                 MemLayout::structOfArrays, cfg, true);
                table.rows.push_back({name, to_string(occ), benchtool::fmt(t8 * 1e6, 1),
                                      benchtool::fmt(100.0 * t1 / (8 * t8), 1) + "%"});
            }
        }
        table.print();
        std::cout << "The slow interconnect amplifies the OCC benefit — the paper's second\n"
                     "system (GV100 + PCIe Gen3) motivates the optimization.\n";
    }
    return 0;
}
