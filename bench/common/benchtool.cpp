#include "common/benchtool.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>

#include "set/profiler.hpp"

namespace neon::benchtool {

namespace {
std::map<std::string, double>& registry()
{
    static std::map<std::string, double> r;
    return r;
}
std::mutex gMutex;
}  // namespace

bool paperScale()
{
    const char* env = std::getenv("NEON_BENCH_PAPER");
    return env != nullptr && std::atoi(env) != 0;
}

void record(const std::string& key, double value)
{
    std::lock_guard<std::mutex> lock(gMutex);
    registry()[key] = value;
}

double lookup(const std::string& key)
{
    std::lock_guard<std::mutex> lock(gMutex);
    auto it = registry().find(key);
    return it == registry().end() ? 0.0 : it->second;
}

bool has(const std::string& key)
{
    std::lock_guard<std::mutex> lock(gMutex);
    return registry().count(key) > 0;
}

std::string fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void writeReportJson(set::Backend& backend, const std::string& name)
{
    const std::string path = "BENCH_" + name + "_report.json";
    std::ofstream     out(path);
    if (!out.good()) {
        std::cerr << "benchtool: cannot write " << path << "\n";
        return;
    }
    out << backend.profiler().report().toJson() << "\n";
    std::cout << "execution report written to " << path << "\n";
}

void Table::print() const
{
    std::vector<size_t> width(header.size(), 0);
    for (size_t c = 0; c < header.size(); ++c) {
        width[c] = header[c].size();
    }
    for (const auto& row : rows) {
        for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto printRow = [&](const std::vector<std::string>& row) {
        std::cout << "|";
        for (size_t c = 0; c < width.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : "";
            std::cout << " " << std::setw(static_cast<int>(width[c])) << cell << " |";
        }
        std::cout << "\n";
    };
    std::cout << "\n== " << title << " ==\n";
    printRow(header);
    std::vector<std::string> sep;
    for (size_t c = 0; c < width.size(); ++c) {
        sep.push_back(std::string(width[c], '-'));
    }
    printRow(sep);
    for (const auto& row : rows) {
        printRow(row);
    }
    std::cout << std::endl;
}

}  // namespace neon::benchtool
