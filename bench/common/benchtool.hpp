#pragma once
// Shared helpers for the paper-reproduction benchmarks: paper-shaped table
// printing, result registry (filled from inside google-benchmark bodies),
// virtual-time measurement on the simulated backend, and the
// NEON_BENCH_PAPER switch that adds the paper's exact domain sizes via the
// simulator's dry-run mode.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "set/backend.hpp"

namespace neon::benchtool {

/// True when NEON_BENCH_PAPER=1: scaling benches add the paper's exact
/// domain sizes (executed in dry-run mode: cost accounting only).
bool paperScale();

/// Record a scalar result (e.g. seconds/iteration) under a key; used to
/// assemble the paper-shaped summary tables after the benchmark run.
void   record(const std::string& key, double value);
double lookup(const std::string& key);
bool   has(const std::string& key);

/// Fixed-point formatting helper.
std::string fmt(double v, int precision = 2);

/// Write the backend's recorded ExecutionReport as BENCH_<name>_report.json
/// in the working directory (next to any --benchmark_out JSON). Record the
/// section of interest with backend.profiler().enable(true) first.
void writeReportJson(set::Backend& backend, const std::string& name);

/// Markdown-ish table printer.
struct Table
{
    std::string                           title;
    std::vector<std::string>              header;
    std::vector<std::vector<std::string>> rows;

    void print() const;
};

/// Measure the virtual time of `iterationBody` per call as a makespan
/// delta (no clock reset: completion events of earlier runs keep their
/// timestamps, so deltas are the safe measure).
template <typename Fn>
double measureVirtual(set::Backend& backend, int iters, Fn&& iterationBody)
{
    backend.sync();
    const double t0 = backend.profiler().makespan();
    for (int i = 0; i < iters; ++i) {
        iterationBody();
    }
    backend.sync();
    return (backend.profiler().makespan() - t0) / iters;
}

}  // namespace neon::benchtool
