// Table I reproduction: Neon vs a "Taichi-like" flat-array baseline on the
// 2-D Karman vortex street, single device, wall-clock LUPS.
//
// The paper compares Neon's library approach against Taichi's compiler
// approach on a single GPU and finds them closely matched (speedup ~1.0).
// Here both run on the CPU backend, so the measured ratio isolates exactly
// what the paper's table isolates: the framework overhead of Neon's
// abstraction versus hand-written flat loops. Domain sizes are scaled down
// from the paper's (4096x1024 ... 32768x8192) to host-executable sizes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "lbm/karman2d.hpp"

using namespace neon;

namespace {

struct SizeCase
{
    int32_t nx;
    int32_t ny;
};

const std::vector<SizeCase>& sizes()
{
    static const std::vector<SizeCase> s = [] {
        std::vector<SizeCase> v{{256, 64}, {512, 128}, {1024, 256}};
        if (benchtool::paperScale()) {
            v.push_back({2048, 512});
        }
        return v;
    }();
    return s;
}

lbm::KarmanConfig configFor(const SizeCase& sc)
{
    lbm::KarmanConfig cfg;
    cfg.nx = sc.nx;
    cfg.ny = sc.ny;
    cfg.inflow = 0.05;
    cfg.reynolds = 150.0;
    return cfg;
}

constexpr int kItersPerRep = 20;

void neonKarman(benchmark::State& state)
{
    const auto sc = sizes()[static_cast<size_t>(state.range(0))];
    const auto cfg = configFor(sc);
    dgrid::DGrid grid(set::Backend::cpu(1), {cfg.nx, 1, cfg.ny}, lbm::D2Q9::stencilXZ());
    lbm::KarmanD2Q9<dgrid::DGrid> solver(grid, cfg);
    solver.run(2);  // warm the caches / first-run paths
    solver.sync();
    for (auto _ : state) {
        solver.run(kItersPerRep);
        solver.sync();
    }
    const double lups = static_cast<double>(sc.nx) * sc.ny * kItersPerRep;
    state.counters["MLUPS"] =
        benchmark::Counter(lups / 1e6, benchmark::Counter::kIsIterationInvariantRate);
    benchtool::record("neon/" + std::to_string(sc.nx),
                      lups / 1e6 / (state.iterations() ? 1 : 1));
}

void nativeKarman(benchmark::State& state)
{
    const auto sc = sizes()[static_cast<size_t>(state.range(0))];
    const auto cfg = configFor(sc);
    lbm::NativeKarmanD2Q9<float> solver(cfg);
    solver.run(2);
    for (auto _ : state) {
        solver.run(kItersPerRep);
    }
    const double lups = static_cast<double>(sc.nx) * sc.ny * kItersPerRep;
    state.counters["MLUPS"] =
        benchmark::Counter(lups / 1e6, benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv)
{
    for (size_t i = 0; i < sizes().size(); ++i) {
        const auto& sc = sizes()[i];
        const auto  label = std::to_string(sc.nx) + "x" + std::to_string(sc.ny);
        benchmark::RegisterBenchmark(("table1/neon/" + label).c_str(), neonKarman)
            ->Arg(static_cast<int>(i))
            ->Iterations(3)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(("table1/taichiLike/" + label).c_str(), nativeKarman)
            ->Arg(static_cast<int>(i))
            ->Iterations(3)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Paper-shaped summary: measure once more with a plain timer so the
    // table is self-contained (google-benchmark reported per-rep times
    // above).
    benchtool::Table table;
    table.title = "Table I — Karman vortex street (D2Q9), single device, wall-clock";
    table.header = {"Domain", "Neon (MLUPS)", "Taichi-like (MLUPS)", "Speedup"};
    for (const auto& sc : sizes()) {
        const auto cfg = configFor(sc);
        const int  iters = 20;

        // Best-of-three reps: wall-clock on a shared host is noisy.
        dgrid::DGrid grid(set::Backend::cpu(1), {cfg.nx, 1, cfg.ny}, lbm::D2Q9::stencilXZ());
        lbm::KarmanD2Q9<dgrid::DGrid> neonSolver(grid, cfg);
        neonSolver.run(2);
        neonSolver.sync();
        double tNeon = 1e30;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = std::chrono::steady_clock::now();
            neonSolver.run(iters);
            neonSolver.sync();
            tNeon = std::min(
                tNeon,
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
        }

        lbm::NativeKarmanD2Q9<float> nativeSolver(cfg);
        nativeSolver.run(2);
        double tNative = 1e30;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t1 = std::chrono::steady_clock::now();
            nativeSolver.run(iters);
            tNative = std::min(
                tNative,
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count());
        }

        const double cells = static_cast<double>(cfg.nx) * cfg.ny * iters;
        const double neonMlups = cells / tNeon / 1e6;
        const double nativeMlups = cells / tNative / 1e6;
        table.rows.push_back({std::to_string(cfg.nx) + " x " + std::to_string(cfg.ny),
                              benchtool::fmt(neonMlups), benchtool::fmt(nativeMlups),
                              benchtool::fmt(neonMlups / nativeMlups)});
    }
    table.print();
    std::cout << "Paper's shape: speedup ~1.0 across sizes — the library abstraction\n"
                 "costs little against hand-written flat loops (paper Table I: 0.98-1.14x).\n";
    return 0;
}
