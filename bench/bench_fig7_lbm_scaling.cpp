// Fig. 7 reproduction: D3Q19 twoPop parallel efficiency on the simulated
// 8-GPU DGX-A100 node, No-OCC vs Standard OCC, across domain sizes.
// Efficiency(n) = t1 / (n * tn), single-device run as baseline (paper
// §VI). Paper-exact domains (192^3 .. 512^3) run through the simulator's
// dry-run mode (cost accounting without data execution); a small domain is
// also executed for real to anchor the model to working code.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "lbm/cavity3d.hpp"

using namespace neon;

namespace {

constexpr double kTau = 0.56;
constexpr double kLid = 0.1;

/// Virtual seconds per LBM iteration for (domain, devices, occ).
double secondsPerIter(index_3d dim, int nDev, Occ occ, bool dryRun, int iters = 4)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = dryRun;
    auto backend = set::Backend::make(set::BackendSpec::simGpu(nDev, cfg));
    dgrid::DGrid grid(backend, dim, lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> solver(grid, kTau, kLid, occ);
    solver.run(2);  // warmup (graph build, first halo)
    return benchtool::measureVirtual(backend, iters, [&] { solver.run(1); });
}

void efficiencyTable(const std::vector<index_3d>& domains, bool dryRun, const char* label)
{
    for (Occ occ : {Occ::NONE, Occ::STANDARD}) {
        benchtool::Table table;
        table.title = std::string("Fig. 7 — LBM parallel efficiency, ") + to_string(occ) +
                      " OCC (" + label + ")";
        table.header = {"Domain"};
        for (int n = 1; n <= 8; ++n) {
            table.header.push_back(std::to_string(n) + " GPU");
        }
        for (const auto& dim : domains) {
            std::vector<std::string> row{dim.to_string()};
            const double t1 = secondsPerIter(dim, 1, occ, dryRun);
            for (int n = 1; n <= 8; ++n) {
                const double tn = secondsPerIter(dim, n, occ, dryRun);
                row.push_back(benchtool::fmt(100.0 * t1 / (n * tn), 1) + "%");
            }
            table.rows.push_back(row);
        }
        table.print();
    }
}

void gbenchIteration(benchmark::State& state)
{
    const int nDev = static_cast<int>(state.range(0));
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    auto backend = set::Backend::make(set::BackendSpec::simGpu(nDev, cfg));
    dgrid::DGrid   grid(backend, {48, 48, 48}, lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> solver(grid, kTau, kLid, Occ::STANDARD);
    solver.run(2);
    solver.sync();
    for (auto _ : state) {
        const double t = benchtool::measureVirtual(backend, 1, [&] { solver.run(1); });
        state.SetIterationTime(t);
    }
    state.counters["vMLUPS"] = benchmark::Counter(
        grid.dim().size() / 1e6, benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv)
{
    for (int n : {1, 2, 4, 8}) {
        benchmark::RegisterBenchmark("fig7/lbm48/standardOcc/virtualTime", gbenchIteration)
            ->Arg(n)
            ->UseManualTime()
            ->Iterations(4)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Small domain, real execution: the simulator timing is driven by the
    // actual solver code paths. NOTE: these host-executable sizes sit deep
    // in the latency-dominated regime (a 48^3 slab's compute is ~7 us while
    // a 19-component SoA halo costs ~19 link latencies), so efficiencies
    // are very low — the same cliff the paper's Fig. 7 shows on its left
    // end, just further down the curve.
    efficiencyTable({{48, 48, 48}, {64, 64, 64}}, /*dryRun=*/false, "real execution");

    // Paper-exact domains in dry-run mode.
    std::vector<index_3d> paper{{192, 192, 192}, {256, 256, 256}};
    if (benchtool::paperScale()) {
        paper.push_back({384, 384, 384});
        paper.push_back({512, 512, 512});
    }
    efficiencyTable(paper, /*dryRun=*/true, "paper sizes, dry-run cost model");

    // Export an ExecutionReport for one representative profiled run (4 GPUs,
    // 48^3, standard OCC) next to any --benchmark_out JSON.
    {
        auto backend =
            set::Backend::make(set::BackendSpec::simGpu(4, sys::SimConfig::dgxA100Like()));
        dgrid::DGrid                   grid(backend, {48, 48, 48}, lbm::D3Q19::stencil());
        lbm::CavityD3Q19<dgrid::DGrid> solver(grid, kTau, kLid, Occ::STANDARD);
        solver.run(2);
        solver.sync();
        auto profiler = backend.profiler();
        profiler.enable(true);
        solver.run(4);
        solver.sync();
        profiler.enable(false);
        benchtool::writeReportJson(backend, "fig7_lbm_scaling");
    }

    std::cout
        << "Paper's shape (Fig. 7): Standard OCC beats No-OCC at every size; efficiency\n"
           "grows with the domain (No-OCC ~93% at 512^3 with 8 GPUs; OCC reaches ~99%+).\n"
           "Small domains show the communication-dominated regime (49% of the iteration\n"
           "at 192^3 with 8 GPUs in the paper).\n";
    return 0;
}
