// Table II reproduction: single-device D3Q19 lid-driven cavity throughput
// of four implementations (paper §VI-A):
//   cuboltz-like      — hand-written fused pull kernel (fastest native)
//   stlbm AA-like     — single-buffer AA addressing
//   stlbm twoPop-like — two populations through an index-array indirection
//   Neon twoPop       — this library, CPU backend, one device
//
// The paper finds Neon within ~1% of cuboltz and faster than both stlbm
// variants; the ordering (not the absolute MLUPS, which are host-CPU scale
// here) is the reproduced result.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "lbm/cavity3d.hpp"
#include "lbm/native3d.hpp"

using namespace neon;

namespace {

index_3d benchDomain()
{
    return benchtool::paperScale() ? index_3d{64, 64, 64} : index_3d{40, 40, 40};
}

constexpr double kTau = 0.56;
constexpr double kLid = 0.1;
constexpr int    kIters = 10;

template <typename Fn>
void runBench(benchmark::State& state, Fn&& step)
{
    step(2);  // warmup
    for (auto _ : state) {
        step(kIters);
    }
    state.counters["MLUPS"] = benchmark::Counter(
        benchDomain().size() * static_cast<double>(kIters) / 1e6,
        benchmark::Counter::kIsIterationInvariantRate);
}

void neonTwoPop(benchmark::State& state)
{
    dgrid::DGrid grid(set::Backend::cpu(1), benchDomain(), lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> solver(grid, kTau, kLid);
    runBench(state, [&](int n) {
        solver.run(n);
        solver.sync();
    });
}

void nativeVariant(benchmark::State& state, lbm::native::Variant variant)
{
    lbm::native::NativeCavityD3Q19<float> solver(benchDomain(), kTau, kLid, variant);
    runBench(state, [&](int n) { solver.run(n); });
}

double wallMlups(const std::function<void(int)>& step)
{
    // Best of three reps: the host is shared, so min-time is the honest
    // throughput estimate.
    step(2);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        step(kIters);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        best = std::max(best, benchDomain().size() * static_cast<double>(kIters) / secs / 1e6);
    }
    return best;
}

}  // namespace

int main(int argc, char** argv)
{
    using lbm::native::Variant;
    benchmark::RegisterBenchmark("table2/cuboltzLike", [](benchmark::State& s) {
        nativeVariant(s, Variant::Fused);
    })->Iterations(3)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("table2/stlbmAALike", [](benchmark::State& s) {
        nativeVariant(s, Variant::AA);
    })->Iterations(3)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("table2/stlbmTwoPopLike", [](benchmark::State& s) {
        nativeVariant(s, Variant::TwoPopIdx);
    })->Iterations(3)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("table2/neonTwoPop", neonTwoPop)
        ->Iterations(3)
        ->Unit(benchmark::kMillisecond);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    benchtool::Table table;
    table.title = "Table II — D3Q19 lid-driven cavity " + benchDomain().to_string() +
                  ", single device, wall-clock";
    table.header = {"Implementation", "MLUPS", "vs cuboltz-like"};

    lbm::native::NativeCavityD3Q19<float> fused(benchDomain(), kTau, kLid, Variant::Fused);
    lbm::native::NativeCavityD3Q19<float> aa(benchDomain(), kTau, kLid, Variant::AA);
    lbm::native::NativeCavityD3Q19<float> idx(benchDomain(), kTau, kLid, Variant::TwoPopIdx);
    dgrid::DGrid grid(set::Backend::cpu(1), benchDomain(), lbm::D3Q19::stencil());
    lbm::CavityD3Q19<dgrid::DGrid> neonSolver(grid, kTau, kLid);

    const double mFused = wallMlups([&](int n) { fused.run(n); });
    const double mAa = wallMlups([&](int n) { aa.run(n); });
    const double mIdx = wallMlups([&](int n) { idx.run(n); });
    const double mNeon = wallMlups([&](int n) {
        neonSolver.run(n);
        neonSolver.sync();
    });

    auto row = [&](const char* name, double m) {
        table.rows.push_back({name, benchtool::fmt(m), benchtool::fmt(m / mFused, 3)});
    };
    row("cuboltz-like (native fused)", mFused);
    row("stlbm AA-like", mAa);
    row("stlbm twoPop-like (indexed)", mIdx);
    row("Neon twoPop", mNeon);
    table.print();
    std::cout << "Paper's shape: Neon within a few % of the native fused kernel\n"
                 "(paper: <1% degradation vs cuboltz; faster than the stlbm variants).\n";
    return 0;
}
