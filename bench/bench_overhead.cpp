// Runtime-overhead microbench (docs/performance.md): wall-clock cost of the
// parts of the runtime the paper's figures never show —
//   (a) ns per enqueued op on the zero-cost backend (the skeleton run loop:
//       completion events, stream waits, launch dispatch),
//   (b) sequence() compilation cost: full pipeline (graph -> OCC ->
//       transitive reduction -> schedule) vs a schedule-cache replay of the
//       same structure,
//   (c) CPU-device dispatch: ns per cell of a map kernel through the
//       devirtualized trampoline path, host pool pinned to one thread so
//       the number is dispatch overhead rather than parallel speedup.
// Emits BENCH_overhead_report.json; CI gates cached-sequence cost and
// ns-per-cell dispatch against bench/baselines/BENCH_overhead_baseline.json
// and requires the cached path to be >= 10x cheaper than the compile path
// (tools/check_bench_reports.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "patterns/blas.hpp"
#include "skeleton/schedule_cache.hpp"
#include "skeleton/skeleton.hpp"

using namespace neon;

namespace {

constexpr int      kDevices = 4;
/// Tiny domain on purpose: the functional simulation still executes every
/// cell, so a small span keeps wall clock dominated by per-op runtime
/// bookkeeping (events, stream waits, dispatch) rather than cell loops.
constexpr index_3d kDim{6, 6, 16};
constexpr int      kPipelineRounds = 6;  ///< ops = 4 * rounds

using Clock = std::chrono::steady_clock;

double nsBetween(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(t1 - t0).count();
}

/// The benchmark workload: rounds of map -> stencil -> dot -> scalar over
/// rotating fields. Structure is fixed so every instance shares one
/// schedule-cache key.
struct Workload
{
    dgrid::DGrid                       grid;
    std::vector<dgrid::DField<double>> fields;
    set::GlobalScalar<double>          s, alpha;
    std::vector<set::Container>        ops;

    explicit Workload(const set::Backend& backend)
        : grid(backend, kDim, Stencil::laplace7()), s(backend, "s", 0.2), alpha(backend, "a", 0.1)
    {
        for (int i = 0; i < 3; ++i) {
            auto f = grid.newField<double>("f" + std::to_string(i), 1, 0.0);
            f.forEachHost([i](const index_3d& g, int, double& v) {
                v = 0.001 * (g.x + g.y + g.z) + 0.1 * i;
            });
            f.updateDev();
            fields.push_back(std::move(f));
        }
        for (int r = 0; r < kPipelineRounds; ++r) {
            auto src = fields[static_cast<size_t>(r % 3)];
            auto dst = fields[static_cast<size_t>((r + 1) % 3)];
            auto al = alpha;
            ops.push_back(grid.newContainer("map" + std::to_string(r),
                                            [src, dst, al](auto& l) mutable {
                                                auto sp = l.load(src, Access::READ);
                                                auto dp = l.load(dst, Access::WRITE);
                                                auto av = l.load(al, Access::READ);
                                                return [=](const dgrid::DCell& c) mutable {
                                                    dp(c) = 0.9 * dp(c) + av() * sp(c);
                                                };
                                            }));
            auto st = fields[static_cast<size_t>((r + 2) % 3)];
            ops.push_back(grid.newContainer("sten" + std::to_string(r),
                                            [dst, st](auto& l) mutable {
                                                auto sp = l.load(dst, Access::READ,
                                                                 Compute::STENCIL);
                                                auto op = l.load(st, Access::WRITE);
                                                return [=](const dgrid::DCell& c) mutable {
                                                    double acc = -6.0 * sp(c);
                                                    for (const auto& off :
                                                         Stencil::laplace7().points()) {
                                                        acc += sp.nghVal(c, off);
                                                    }
                                                    op(c) = sp(c) + 0.05 * acc;
                                                };
                                            }));
            ops.push_back(patterns::dot(grid, dst, st, s, "dot" + std::to_string(r)));
            auto sc = s;
            ops.push_back(set::Container::scalarOp<double>(
                "scal" + std::to_string(r), grid.backend(), {sc}, {al}, [sc, al]() mutable {
                    al.set(0.5 * al.hostValue() +
                           sc.hostValue() / (1.0 + std::abs(sc.hostValue())));
                }));
        }
    }
};

double medianNs(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    // Pure sweep binary (no registered gbench cases): the report below is
    // the artifact.
    benchmark::Shutdown();

    // Simulated GPUs with a zero-cost model: kernels advance virtual time
    // instead of looping over cells on the host, so wall clock isolates the
    // runtime's own bookkeeping.
    set::Backend backend = set::Backend::simGpu(kDevices, sys::SimConfig::zeroCost());
    Workload     w(backend);
    const auto   opts = skeleton::SequenceOptions()
                          .withName("overhead")
                          .withOcc(Occ::STANDARD)
                          .withMaxStreams(4);

    // ---- (a) ns per enqueued op -----------------------------------------
    skeleton::Skeleton skl(backend);
    (void)skl.sequence(w.ops, opts);

    // Count enqueued ops for one run via the trace, then measure with the
    // trace off (the fast path under test is the unobserved one).
    backend.profiler().enable();
    backend.profiler().clear();
    skl.run();
    skl.sync();
    const auto opsPerRun = static_cast<double>(backend.profiler().trace().size());
    backend.profiler().clear();
    backend.profiler().enable(false);

    constexpr int kWarmupRuns = 5;
    constexpr int kMeasuredRuns = 40;
    for (int i = 0; i < kWarmupRuns; ++i) {
        skl.run();
    }
    skl.sync();
    const auto tRun0 = Clock::now();
    for (int i = 0; i < kMeasuredRuns; ++i) {
        skl.run();
    }
    skl.sync();
    const double nsPerOp = nsBetween(tRun0, Clock::now()) / (kMeasuredRuns * opsPerRun);

    // ---- (b) compile vs cached sequence() -------------------------------
    constexpr int       kRepeats = 11;
    std::vector<double> compileNs, cachedNs;
    skeleton::ScheduleCache::instance().clear();
    for (int i = 0; i < kRepeats; ++i) {
        const auto t0 = Clock::now();
        (void)skl.sequence(w.ops, skeleton::SequenceOptions(opts).withCache(false));
        compileNs.push_back(nsBetween(t0, Clock::now()));
    }
    (void)skl.sequence(w.ops, opts);  // prime the cache
    int hits = 0;
    for (int i = 0; i < kRepeats; ++i) {
        const auto t0 = Clock::now();
        const auto handle = skl.sequence(w.ops, opts);
        cachedNs.push_back(nsBetween(t0, Clock::now()));
        hits += handle.cacheHit() ? 1 : 0;
    }
    const double compileMedian = medianNs(compileNs);
    const double cachedMedian = medianNs(cachedNs);
    const double speedup = compileMedian / cachedMedian;

    // ---- (c) CPU-device dispatch: ns per cell ---------------------------
    // One thread on purpose: the gate watches the cost of getting from
    // skl.run() into the kernel body (trampoline + chunk loop), which
    // parallel speedup would mask.
    setenv("NEON_THREADS", "1", 1);
    set::Backend cpu = set::Backend::cpu(1);
    dgrid::DGrid cpuGrid(cpu, {48, 48, 48}, Stencil::laplace7());
    auto         fa = cpuGrid.newField<double>("a", 1, 0.0);
    auto         fb = cpuGrid.newField<double>("b", 1, 0.0);
    fa.forEachHost([](const index_3d& g, int, double& v) { v = 0.001 * (g.x + g.y + g.z); });
    fa.updateDev();
    fb.updateDev();
    std::vector<set::Container> axpy = {
        cpuGrid.newContainer("axpy", [fa, fb](auto& l) mutable {
            auto ap = l.load(fa, Access::READ);
            auto bp = l.load(fb, Access::WRITE);
            return [=](const dgrid::DCell& c) mutable { bp(c) = 0.99 * bp(c) + ap(c); };
        })};
    skeleton::Skeleton cpuSkl(cpu);
    (void)cpuSkl.sequence(axpy, skeleton::SequenceOptions().withName("dispatch"));
    const double  cells = static_cast<double>(cpuGrid.cellCount());
    constexpr int kDispatchWarmup = 3;
    constexpr int kDispatchRuns = 20;
    for (int i = 0; i < kDispatchWarmup; ++i) {
        cpuSkl.run();
    }
    cpuSkl.sync();
    const auto tDisp0 = Clock::now();
    for (int i = 0; i < kDispatchRuns; ++i) {
        cpuSkl.run();
    }
    cpuSkl.sync();
    const double nsPerCell = nsBetween(tDisp0, Clock::now()) / (kDispatchRuns * cells);

    benchtool::Table table;
    table.title = "Runtime overhead (zero-cost backend, wall clock)";
    table.header = {"metric", "value"};
    table.rows = {
        {"ops per run", benchtool::fmt(opsPerRun, 0)},
        {"ns per enqueued op", benchtool::fmt(nsPerOp, 1)},
        {"sequence() compile (us, median)", benchtool::fmt(compileMedian / 1e3, 1)},
        {"sequence() cached (us, median)", benchtool::fmt(cachedMedian / 1e3, 1)},
        {"compile / cached speedup", benchtool::fmt(speedup, 1)},
        {"cache hits", benchtool::fmt(hits, 0) + "/" + benchtool::fmt(kRepeats, 0)},
        {"cpu dispatch (ns per cell)", benchtool::fmt(nsPerCell, 2)},
    };
    table.print();

    std::ofstream os("BENCH_overhead_report.json");
    os << "{\n"
       << "  \"bench\": \"overhead\",\n"
       << "  \"devices\": " << kDevices << ",\n"
       << "  \"ops\": " << w.ops.size() << ",\n"
       << "  \"enqueue\": {\n"
       << "    \"ops_per_run\": " << opsPerRun << ",\n"
       << "    \"runs_measured\": " << kMeasuredRuns << ",\n"
       << "    \"ns_per_op\": " << nsPerOp << "\n"
       << "  },\n"
       << "  \"sequence\": {\n"
       << "    \"repeats\": " << kRepeats << ",\n"
       << "    \"compile_ns\": " << compileMedian << ",\n"
       << "    \"cached_ns\": " << cachedMedian << ",\n"
       << "    \"speedup\": " << speedup << ",\n"
       << "    \"cache_hits\": " << hits << "\n"
       << "  },\n"
       << "  \"dispatch\": {\n"
       << "    \"cells\": " << cells << ",\n"
       << "    \"runs_measured\": " << kDispatchRuns << ",\n"
       << "    \"ns_per_cell\": " << nsPerCell << "\n"
       << "  }\n"
       << "}\n";
    std::cout << "wrote BENCH_overhead_report.json (speedup " << benchtool::fmt(speedup, 1)
              << "x)\n";
    return 0;
}
