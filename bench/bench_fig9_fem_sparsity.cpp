// Fig. 9 reproduction: finite-element linear-elastic solver — dense grid
// (with an activity mask) vs element-sparse grid, across grid sizes and
// sparsity ratios {1.0, 0.2}. Reports virtual time per CG iteration and
// per-device memory; includes the paper's out-of-memory data point (the
// sparse structure at 512^3 fully dense exhausts a 32 GB device while the
// dense grid fits).

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <vector>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "egrid/efield.hpp"
#include "fem/elasticity.hpp"

using namespace neon;

namespace {

constexpr int kIters = 6;

/// Solid cube centred in the grid with the given volume fraction.
struct SolidCube
{
    index_3d dim;
    double   ratio;

    [[nodiscard]] bool operator()(const index_3d& g) const
    {
        if (ratio >= 1.0) {
            return true;
        }
        const double side = std::cbrt(ratio);
        const auto   inside = [&](int32_t v, int32_t n) {
            const double lo = (1.0 - side) / 2.0 * n;
            const double hi = (1.0 + side) / 2.0 * n;
            return v >= lo && v < hi;
        };
        return inside(g.x, dim.x) && inside(g.y, dim.y) && inside(g.z, dim.z);
    }
};

struct Measured
{
    double seconds = 0.0;   ///< per CG iteration (virtual)
    double gibPerDev = 0.0;  ///< peak device memory, GiB, device 0
    bool   oom = false;
};

template <typename Grid>
Measured measureOn(set::Backend backend, Grid grid, const SolidCube& solid)
{
    Measured out;
    try {
        fem::ElasticProblem problem({100.0, 0.3}, 1.0, -1.0);
        auto act = grid.template newField<uint8_t>("act", 1, 0);
        auto x = grid.template newField<double>("x", 3, 0.0);
        auto b = grid.template newField<double>("b", 3, 0.0);
        if (!backend.isDryRun()) {
            act.forEachActiveHost(
                [&](const index_3d& g, int, uint8_t& v) { v = solid(g) ? 1 : 0; });
            act.updateDev();
        }

        solver::CgOptions options;
        options.maxIterations = kIters;
        options.fixedIterations = true;
        options.occ = Occ::STANDARD;

        backend.sync();
        const double t0 = backend.profiler().makespan();
        fem::solveElastic(grid, problem, act, x, b, options);
        backend.sync();
        out.seconds = (backend.profiler().makespan() - t0) / kIters;
        // Peak device memory including the CG work fields.
        out.gibPerDev = static_cast<double>(backend.device(0).peakBytes()) / (1ull << 30);
    } catch (const DeviceMemoryError&) {
        out.oom = true;
    }
    return out;
}

Measured measureDense(index_3d dim, double ratio, int nDev, bool dryRun, size_t capacity)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = dryRun;
    cfg.deviceMemCapacity = capacity;
    auto backend = set::Backend::make(set::BackendSpec::simGpu(nDev, cfg));
    try {
        dgrid::DGrid grid(backend, dim, Stencil::box27());
        return measureOn(backend, grid, SolidCube{dim, ratio});
    } catch (const DeviceMemoryError&) {
        Measured m;
        m.oom = true;
        return m;
    }
}

Measured measureSparse(index_3d dim, double ratio, int nDev, bool dryRun, size_t capacity)
{
    sys::SimConfig cfg = sys::SimConfig::dgxA100Like();
    cfg.dryRun = dryRun;
    cfg.deviceMemCapacity = capacity;
    auto backend = set::Backend::make(set::BackendSpec::simGpu(nDev, cfg));
    const SolidCube solid{dim, ratio};
    try {
        egrid::EGrid grid(backend, dim,
                          [&](const index_3d& g) { return solid(g); }, Stencil::box27());
        return measureOn(backend, grid, solid);
    } catch (const DeviceMemoryError&) {
        Measured m;
        m.oom = true;
        return m;
    }
}

std::string cell(const Measured& m)
{
    if (m.oom) {
        return "OOM";
    }
    return benchtool::fmt(m.seconds * 1e3, 2) + " ms / " + benchtool::fmt(m.gibPerDev, 2) +
           " GiB";
}

void sparsityTable(const std::vector<index_3d>& dims, int nDev, bool dryRun, size_t capacity,
                   const char* label)
{
    benchtool::Table table;
    table.title = std::string("Fig. 9 — FEM elasticity, time/CG-iteration and memory/device (") +
                  label + ")";
    table.header = {"Grid", "dense r=1.0", "sparse r=1.0", "dense r=0.2", "sparse r=0.2"};
    for (const auto& dim : dims) {
        table.rows.push_back({dim.to_string(), cell(measureDense(dim, 1.0, nDev, dryRun, capacity)),
                              cell(measureSparse(dim, 1.0, nDev, dryRun, capacity)),
                              cell(measureDense(dim, 0.2, nDev, dryRun, capacity)),
                              cell(measureSparse(dim, 0.2, nDev, dryRun, capacity))});
    }
    table.print();
}

void gbenchFem(benchmark::State& state)
{
    const bool sparse = state.range(0) != 0;
    for (auto _ : state) {
        const auto m = sparse ? measureSparse({24, 24, 24}, 0.2, 4, false, 40ull << 30)
                              : measureDense({24, 24, 24}, 0.2, 4, false, 40ull << 30);
        state.SetIterationTime(m.seconds);
    }
}

}  // namespace

int main(int argc, char** argv)
{
    benchmark::RegisterBenchmark("fig9/fem24/denseMasked/virtualTimePerIter", gbenchFem)
        ->Arg(0)
        ->UseManualTime()
        ->Iterations(2)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig9/fem24/sparse/virtualTimePerIter", gbenchFem)
        ->Arg(1)
        ->UseManualTime()
        ->Iterations(2)
        ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Real execution at small scale.
    sparsityTable({{20, 20, 20}, {28, 28, 28}}, 4, /*dryRun=*/false, 40ull << 30,
                  "real execution, 4 GPUs");

    // Paper sizes through the dry-run cost model, 8 GPUs, A100 40 GB.
    std::vector<index_3d> dims{{128, 128, 128}, {256, 256, 256}};
    if (benchtool::paperScale()) {
        dims.push_back({384, 384, 384});
    }
    sparsityTable(dims, 8, /*dryRun=*/true, 40ull << 30, "paper sizes, dry-run, 8 GPUs");

    // The paper's OOM data point: at full density the sparse structure's
    // connectivity/coordinate overhead exhausts the device while the dense
    // grid fits. Our layout is leaner than the paper's (int32 connectivity,
    // no marshaling buffers), so the failure lands one size step later:
    // 512^3 peaks just inside a 32 GB GV100 and 576^3 crosses.
    {
        benchtool::Table table;
        table.title = "Fig. 9 OOM point — ratio 1.0, single 32 GB (GV100-like) device, dry-run";
        table.header = {"Grid", "dense grid", "sparse grid"};
        for (int n : {512, 576}) {
            table.rows.push_back({std::to_string(n) + "^3",
                                  cell(measureDense({n, n, n}, 1.0, 1, true, 32ull << 30)),
                                  cell(measureSparse({n, n, n}, 1.0, 1, true, 32ull << 30))});
        }
        table.print();
    }

    // Export an ExecutionReport for one representative profiled FEM run
    // (4 GPUs, 20^3 dense grid, ratio 0.5) next to any --benchmark_out JSON.
    {
        auto backend =
            set::Backend::make(set::BackendSpec::simGpu(4, sys::SimConfig::dgxA100Like()));
        dgrid::DGrid grid(backend, {20, 20, 20}, Stencil::box27());
        auto         profiler = backend.profiler();
        profiler.enable(true);
        measureOn(backend, grid, SolidCube{{20, 20, 20}, 0.5});
        profiler.enable(false);
        benchtool::writeReportJson(backend, "fig9_fem_sparsity");
    }

    std::cout << "Paper's shape (Fig. 9): the sparse structure wins once the sparsity ratio\n"
                 "drops below ~0.8; at ratio 1.0 the dense grid is faster and smaller, and at\n"
                 "full density + large grids the sparse structure runs out of device memory\n"
                 "(paper: 512^3; our leaner layout: 576^3).\n";
    return 0;
}
