// Multi-tenant service traffic replay (docs/service.md): 1000+ mixed
// LBM/Poisson/FEM jobs with seeded Poisson arrivals are replayed twice on
// a simulated DGX-A100-like pool —
//   * "serialized": maxInFlight=1, batching off — the FIFO-of-one
//     baseline every job used to get before neon::service existed,
//   * "concurrent": fair-share scheduling, several stream leases in
//     flight, structural batching on —
// and per-mode p50/p99/mean job latency (virtual seconds), device
// utilization, makespan and batch counts go into
// BENCH_service_report.json. CI gates the concurrent mode's p99 latency
// AND utilization strictly better than serialized on the same trace
// (tools/check_bench_reports.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "service/service.hpp"
#include "service/traffic.hpp"
#include "sys/execution_report.hpp"

using namespace neon;

namespace {

constexpr unsigned kSeed = 2026;
constexpr int      kJobs = 1200;
constexpr int      kTenants = 6;
constexpr int      kDevices = 4;
/// Mean Poisson inter-arrival gap [virtual s]. Chosen so the serialized
/// baseline backlogs (offered load beyond one-lease throughput) while the
/// concurrent mode keeps up — the regime the service exists for.
constexpr double kMeanGap = 5.0e-5;

struct ModeResult
{
    std::string name;
    double      p50 = 0.0;
    double      p99 = 0.0;
    double      mean = 0.0;
    double      utilization = 0.0;
    double      makespan = 0.0;
    int         batches = 0;
    int         completed = 0;
};

double percentile(std::vector<double> v, double p)
{
    std::sort(v.begin(), v.end());
    const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
}

ModeResult replay(const std::vector<service::JobDesc>& trace, const service::ServiceConfig& cfg,
                  const std::string& name)
{
    // Dry-run cost model: kernels advance virtual time per the DGX-A100
    // cost model without touching cells, so a 1000+ job replay stays fast
    // while latencies and utilization remain the simulated-machine truth.
    sys::SimConfig sim = sys::SimConfig::dgxA100Like();
    sim.dryRun = true;
    set::Backend bk = set::Backend::simGpu(kDevices, sim);
    bk.profiler().enable();

    service::Service svc(bk, cfg);
    std::vector<service::Job> jobs;
    jobs.reserve(trace.size());
    for (const auto& d : trace) {
        auto bj = service::buildJob(bk, d);
        jobs.push_back(svc.submit(std::move(bj.request)));
    }
    svc.drain();

    ModeResult r;
    r.name = name;
    std::vector<double> lat;
    lat.reserve(jobs.size());
    for (auto& j : jobs) {
        if (j.state() != service::JobState::Completed) {
            continue;
        }
        lat.push_back(j.latency());
    }
    r.completed = static_cast<int>(lat.size());
    if (!lat.empty()) {
        r.p50 = percentile(lat, 0.50);
        r.p99 = percentile(lat, 0.99);
        double sum = 0.0;
        for (double v : lat) {
            sum += v;
        }
        r.mean = sum / static_cast<double>(lat.size());
    }
    const auto report =
        ExecutionReport::fromEntries(bk.profiler().trace().entries(), bk.devCount());
    r.utilization = report.deviceUtilization();
    r.makespan = report.makespan();
    r.batches = svc.batchCount();
    return r;
}

void emit(std::ostream& os, const ModeResult& r, bool last)
{
    os << "    \"" << r.name << "\": {\"p50\": " << r.p50 << ", \"p99\": " << r.p99
       << ", \"mean\": " << r.mean << ", \"utilization\": " << r.utilization
       << ", \"makespan\": " << r.makespan << ", \"batches\": " << r.batches
       << ", \"completed\": " << r.completed << "}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    // Pure sweep binary (no registered gbench cases): the report below is
    // the artifact.
    benchmark::Shutdown();

    const auto trace = service::makeTrace(service::TrafficSpec()
                                              .withSeed(kSeed)
                                              .withJobs(kJobs)
                                              .withTenants(kTenants)
                                              .withMeanGap(kMeanGap)
                                              .withMaxRuns(2));

    const ModeResult serialized =
        replay(trace,
               service::ServiceConfig()
                   .withPolicy(service::Policy::Fifo)
                   .withMaxInFlight(1)
                   .withBatching(false),
               "serialized");
    const ModeResult concurrent =
        replay(trace,
               service::ServiceConfig()
                   .withPolicy(service::Policy::FairShare)
                   .withMaxInFlight(6)
                   .withBatching(true, 4),
               "concurrent");

    for (const auto& r : {serialized, concurrent}) {
        std::cout << r.name << ": completed=" << r.completed << " p50=" << r.p50 * 1e6
                  << "us p99=" << r.p99 * 1e6 << "us mean=" << r.mean * 1e6
                  << "us utilization=" << r.utilization * 100.0
                  << "% makespan=" << r.makespan * 1e3 << "ms batches=" << r.batches << "\n";
    }

    std::ofstream os("BENCH_service_report.json");
    os << "{\n  \"bench\": \"service\",\n";
    os << "  \"seed\": " << kSeed << ",\n  \"jobs\": " << kJobs
       << ",\n  \"tenants\": " << kTenants << ",\n  \"devices\": " << kDevices << ",\n";
    os << "  \"meanGap\": " << kMeanGap << ",\n";
    os << "  \"modes\": {\n";
    emit(os, serialized, false);
    emit(os, concurrent, true);
    os << "  }\n}\n";
    std::cout << "wrote BENCH_service_report.json\n";
    return 0;
}
