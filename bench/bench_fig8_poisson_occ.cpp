// Fig. 8 reproduction: finite-difference Poisson CG.
//  Top    — time per CG iteration for every OCC variant as the device
//           count grows, on the paper's 320^3 grid (dry-run cost model) and
//           on a real-executed 48^3 grid.
//  Bottom — parallel efficiency on 8 devices across grid sizes.
// Plus the paper's baseline comparison: Neon single-device vs the
// hand-written flat-loop CG ("CUDA + cuBLAS"-like), wall-clock.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <vector>

#include "common/benchtool.hpp"
#include "dgrid/dfield.hpp"
#include "poisson/native.hpp"
#include "poisson/poisson.hpp"

using namespace neon;

namespace {

/// Virtual seconds per CG iteration (fixed iteration count, no convergence
/// checks). The init skeleton runs first and is excluded from the measure.
double cgSecondsPerIter(index_3d dim, int nDev, Occ occ, sys::SimConfig cfg, bool dryRun,
                        int iters)
{
    cfg.dryRun = dryRun;
    auto backend = set::Backend::make(set::BackendSpec::simGpu(nDev, cfg));
    dgrid::DGrid grid(backend, dim, Stencil::laplace7());
    auto         x = grid.newField<double>("x", 1, 0.0);
    auto         b = grid.newField<double>("b", 1, 0.0);

    solver::CgOptions options;
    options.maxIterations = 2;  // warmup: init + two iterations
    options.occ = occ;
    options.fixedIterations = true;
    poisson::solveSine(grid, x, b, options);
    backend.sync();

    options.maxIterations = iters;
    const double t0 = backend.profiler().makespan();
    poisson::solveSine(grid, x, b, options);
    backend.sync();
    // The second solve re-runs its own init; subtract an init-free estimate
    // by measuring per-iteration cost over a long fixed run instead.
    return (backend.profiler().makespan() - t0) / (iters + 2);  // +2: init ~ two sweeps
}

void occSweepTable(index_3d dim, sys::SimConfig cfg, bool dryRun, int iters, const char* label)
{
    benchtool::Table table;
    table.title = std::string("Fig. 8 top — Poisson CG time/iteration [us], grid ") +
                  dim.to_string() + " (" + label + ")";
    table.header = {"GPUs", "no OCC", "standard", "extended", "two-way ext", "best"};
    for (int n = 1; n <= 8; ++n) {
        std::vector<std::string> row{std::to_string(n)};
        double      best = 1e30;
        std::string bestName = "-";
        for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
            const double t = cgSecondsPerIter(dim, n, occ, cfg, dryRun, iters);
            row.push_back(benchtool::fmt(t * 1e6, 1));
            if (n > 1 && occ != Occ::NONE && t < best) {
                best = t;
                bestName = to_string(occ);
            }
        }
        row.push_back(n > 1 ? bestName : "-");
        table.rows.push_back(row);
    }
    table.print();
}

void efficiencyBottomTable(const std::vector<index_3d>& dims, bool dryRun, const char* label)
{
    benchtool::Table table;
    table.title = std::string("Fig. 8 bottom — Poisson parallel efficiency on 8 GPUs (") +
                  label + ")";
    table.header = {"Grid", "no OCC", "standard", "extended", "two-way ext"};
    const auto cfg = sys::SimConfig::dgxA100Like();
    for (const auto& dim : dims) {
        std::vector<std::string> row{dim.to_string()};
        const double t1 = cgSecondsPerIter(dim, 1, Occ::NONE, cfg, dryRun, 20);
        for (Occ occ : {Occ::NONE, Occ::STANDARD, Occ::EXTENDED, Occ::TWO_WAY}) {
            const double t8 = cgSecondsPerIter(dim, 8, occ, cfg, dryRun, 20);
            row.push_back(benchtool::fmt(100.0 * t1 / (8.0 * t8), 1) + "%");
        }
        table.rows.push_back(row);
    }
    table.print();
}

void gbenchCg(benchmark::State& state)
{
    const int nDev = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.SetIterationTime(cgSecondsPerIter({48, 48, 48}, nDev, Occ::STANDARD,
                                                sys::SimConfig::dgxA100Like(), false, 8));
    }
}

}  // namespace

int main(int argc, char** argv)
{
    for (int n : {1, 4, 8}) {
        benchmark::RegisterBenchmark("fig8/poisson48/standardOcc/virtualTimePerIter", gbenchCg)
            ->Arg(n)
            ->UseManualTime()
            ->Iterations(2)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Baseline overhead (paper: "Neon incurs a minimal overhead compared to
    // the hardwired application-specific implementation"): wall-clock CG on
    // one CPU device vs hand-written flat loops.
    {
        const index_3d dim{40, 40, 40};
        dgrid::DGrid grid(set::Backend::cpu(1), dim, Stencil::laplace7());
        auto         x = grid.newField<double>("x", 1, 0.0);
        auto         b = grid.newField<double>("b", 1, 0.0);
        solver::CgOptions options;
        options.maxIterations = 30;
        options.fixedIterations = true;

        const auto t0 = std::chrono::steady_clock::now();
        poisson::solveSine(grid, x, b, options);
        const double tNeon =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

        poisson::native::NativeCg baseline(dim);
        baseline.setupSineProblem();
        const auto t1 = std::chrono::steady_clock::now();
        baseline.solve(30, 0.0);
        const double tNative =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

        benchtool::Table table;
        table.title = "Fig. 8 baseline — Neon vs hand-written CG, 30 iterations, wall-clock";
        table.header = {"Implementation", "time [ms]", "relative"};
        table.rows.push_back({"native flat-loop CG", benchtool::fmt(tNative * 1e3),
                              "1.00"});
        table.rows.push_back(
            {"Neon CG (1 device)", benchtool::fmt(tNeon * 1e3), benchtool::fmt(tNeon / tNative)});
        table.print();
    }

    occSweepTable({48, 48, 48}, sys::SimConfig::dgxA100Like(), /*dryRun=*/false, 8,
                  "real execution, NVLink model");
    // The paper evaluates on two systems (DGX A100 + NVLink, Xeon + GV100
    // over PCIe Gen3). The OCC crossover — standard best at few GPUs,
    // extended/two-way taking over as partitions shrink — emerges when the
    // halo cost rivals the internal compute, i.e. on the slower link.
    occSweepTable({320, 320, 320}, sys::SimConfig::dgxA100Like(), /*dryRun=*/true, 20,
                  "paper size, dry-run, NVLink model");
    occSweepTable({320, 320, 320}, sys::SimConfig::pcieGen3Like(), /*dryRun=*/true, 20,
                  "paper size, dry-run, PCIe Gen3 model");
    // The crossover regime: once per-device slabs shrink enough that the
    // halo latency rivals the internal compute, the more aggressive splits
    // win — most visible at smaller grids on the slow interconnect.
    occSweepTable({192, 192, 192}, sys::SimConfig::pcieGen3Like(), /*dryRun=*/true, 20,
                  "dry-run, PCIe Gen3 model");
    occSweepTable({256, 256, 256}, sys::SimConfig::pcieGen3Like(), /*dryRun=*/true, 20,
                  "dry-run, PCIe Gen3 model");

    std::vector<index_3d> dims{{128, 128, 128}, {192, 192, 192}, {256, 256, 256},
                               {320, 320, 320}};
    if (benchtool::paperScale()) {
        dims.push_back({448, 448, 448});
    }
    efficiencyBottomTable(dims, /*dryRun=*/true, "paper sizes, dry-run cost model");

    // Export an ExecutionReport for one representative profiled CG run
    // (4 GPUs, 48^3, standard OCC) next to any --benchmark_out JSON.
    {
        auto backend =
            set::Backend::make(set::BackendSpec::simGpu(4, sys::SimConfig::dgxA100Like()));
        dgrid::DGrid grid(backend, {48, 48, 48}, Stencil::laplace7());
        auto         x = grid.newField<double>("x", 1, 0.0);
        auto         b = grid.newField<double>("b", 1, 0.0);
        solver::CgOptions options;
        options.maxIterations = 4;
        options.fixedIterations = true;
        options.occ = Occ::STANDARD;
        auto profiler = backend.profiler();
        profiler.enable(true);
        poisson::solveSine(grid, x, b, options);
        backend.sync();
        profiler.enable(false);
        benchtool::writeReportJson(backend, "fig8_poisson_occ");
    }

    std::cout
        << "Paper's shape (Fig. 8): no single OCC variant always wins — standard is best\n"
           "at low device counts; the extended split takes over once per-device slabs\n"
           "shrink enough that halo latency rivals internal compute (our model: extended\n"
           "from ~6 GPUs at 192^3 on the PCIe system). Efficiency approaches ideal with\n"
           "grid size. Divergence noted in EXPERIMENTS.md: the paper's two-way variant\n"
           "wins at >=6 GPUs; in our cost model its extra kernel launches outweigh the\n"
           "extra overlap window, so extended stays ahead.\n";
    return 0;
}
