#pragma once
// Umbrella header: the whole public API in one include.
//
//   #include "neon.hpp"
//
// Layers (paper §IV): System (sys) -> Set -> Domain (shared contract in
// domain/, grids in dgrid/egrid/bgrid) -> Skeleton, plus
// patterns/solvers/apps built on top.

#include "core/error.hpp"
#include "core/index3d.hpp"
#include "core/log.hpp"
#include "core/stencil.hpp"
#include "core/types.hpp"

#include "sys/cost_model.hpp"
#include "sys/device.hpp"
#include "sys/event.hpp"
#include "sys/execution_report.hpp"
#include "sys/fault.hpp"
#include "sys/stream.hpp"
#include "sys/trace.hpp"

#include "set/analyzer.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"
#include "set/loader.hpp"
#include "set/memset.hpp"
#include "set/profiler.hpp"
#include "set/scalar.hpp"

#include "domain/concepts.hpp"
#include "domain/field_base.hpp"
#include "domain/grid_base.hpp"
#include "domain/halo.hpp"
#include "domain/partition_plan.hpp"

#include "bgrid/bfield.hpp"
#include "bgrid/bgrid.hpp"
#include "dgrid/dfield.hpp"
#include "dgrid/dgrid.hpp"
#include "egrid/efield.hpp"
#include "egrid/egrid.hpp"

#include "skeleton/graph.hpp"
#include "skeleton/skeleton.hpp"

#include "repartition/repartitioner.hpp"
#include "repartition/self_healing.hpp"

#include "analysis/analysis.hpp"

#include "patterns/blas.hpp"
#include "patterns/io_vtk.hpp"

#include "solver/cg.hpp"
#include "solver/jacobi.hpp"

#include "service/job.hpp"
#include "service/service.hpp"
#include "service/traffic.hpp"
