#pragma once
// The multi-GPU application graph (paper §V, Fig. 4). Nodes wrap
// Containers; data edges carry the dependency kind (RaW/WaR/WaW) inferred
// from the Loader's access records; hint edges bias the scheduler's launch
// order without forcing completion (paper §V-B, orange arrows).

#include <string>
#include <vector>

#include "core/types.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"

namespace neon::skeleton {

enum class EdgeKind : uint8_t
{
    RaW,   ///< read-after-write
    WaR,   ///< write-after-read
    WaW,   ///< write-after-write
    Hint,  ///< scheduling hint only — no completion requirement
};

/// Which completion-event slots a dependent task must wait on (DESIGN.md §4).
enum class WaitScope : uint8_t
{
    SameDev,     ///< compute -> compute: partition data stays on its device
    Neighbours,  ///< halo parent: transfers into dev d come from d-1 / d+1
    Root,        ///< ScalarOp parent: work happened on device 0's stream
    All,         ///< ScalarOp child (reduce combine): needs every device
};

std::string to_string(EdgeKind k);
std::string to_string(WaitScope s);

/// One entry of the scheduler's ordered task list (paper §V-C). Lives next
/// to the graph (rather than in skeleton.hpp) because a compiled schedule
/// is exactly (graph, task list) — the cache recipe stores both.
struct Task
{
    int nodeId = -1;
    int stream = 0;
    /// Parents whose completion events this task waits on (with scope).
    struct Wait
    {
        int       parent = -1;
        WaitScope scope = WaitScope::SameDev;
    };
    std::vector<Wait> waits;
};

/// Where a graph node came from in the sequence() input — recorded by
/// buildGraph (and propagated through the OCC splits) so a compiled
/// schedule can be replayed against a structurally identical container
/// sequence without re-running the pipeline (skeleton/schedule_cache.hpp).
struct NodeOrigin
{
    enum class Src : uint8_t
    {
        User,     ///< containers[container] itself
        Halo,     ///< haloUpdate of containers[container].accesses()[access]
        Combine,  ///< containers[container].combineStep()
    };
    Src src = Src::User;
    int container = -1;
    int access = -1;
};

struct GraphNode
{
    int            id = -1;
    set::Container container;
    DataView       view = DataView::STANDARD;
    NodeOrigin     origin;
    bool           alive = true;
    /// False for stencil nodes whose halo read is stale until a halo-update
    /// node is inserted before them (paper §V-A "coherency flag").
    bool coherent = true;

    // scheduling results
    int  level = -1;
    int  stream = -1;
    bool needsEvent = false;

    [[nodiscard]] Compute              pattern() const { return container.pattern(); }
    [[nodiscard]] set::Container::Kind kind() const { return container.kind(); }
    [[nodiscard]] std::string          label() const;
};

struct GraphEdge
{
    int      from = -1;
    int      to = -1;
    EdgeKind kind = EdgeKind::RaW;
};

class Graph
{
   public:
    /// Reserve-ahead for the node/edge arenas (both are flat vectors; one
    /// reservation avoids regrowth while buildGraph/applyOcc append).
    void reserve(int nodes, int edges);

    int  addNode(set::Container container, DataView view = DataView::STANDARD);
    void addEdge(int from, int to, EdgeKind kind);
    /// Append an already-validated edge without the dedup/alive scans —
    /// cache-replay path only (the recipe's edge list is the final,
    /// deduplicated edge set of a previously compiled graph).
    void restoreEdge(const GraphEdge& edge);
    /// Remove every edge (data and hint) between `from` and `to`.
    void removeEdges(int from, int to);
    /// Mark dead and drop all its edges (used when OCC replaces a node).
    void killNode(int id);

    [[nodiscard]] GraphNode&       node(int id);
    [[nodiscard]] const GraphNode& node(int id) const;
    [[nodiscard]] int              nodeCount() const { return static_cast<int>(mNodes.size()); }
    [[nodiscard]] int              aliveCount() const;

    [[nodiscard]] bool hasDataEdge(int from, int to) const;
    [[nodiscard]] bool hasEdge(int from, int to, EdgeKind kind) const;
    /// Kind of the data edge `from -> to` (must exist).
    [[nodiscard]] EdgeKind dataEdgeKind(int from, int to) const;

    [[nodiscard]] std::vector<int> dataParents(int id) const;
    [[nodiscard]] std::vector<int> dataChildren(int id) const;
    [[nodiscard]] std::vector<int> parents(int id, bool includeHints) const;
    [[nodiscard]] std::vector<int> children(int id, bool includeHints) const;
    [[nodiscard]] const std::vector<GraphEdge>& edges() const { return mEdges; }

    /// WaitScope of the dependency `from -> to` (derived from node kinds).
    [[nodiscard]] WaitScope waitScope(int from, int to) const;

    /// BFS levels over alive nodes: every node lands one level after its
    /// last parent (paper §V-C(a), Fig. 5).
    [[nodiscard]] std::vector<std::vector<int>> bfsLevels(bool includeHints) const;

    /// Remove data edges implied by a longer data path (paper §V-B: "the
    /// dependency between the map and the dot product nodes is removed as
    /// redundant").
    void transitiveReduce();

    /// Graphviz dump for documentation and debugging.
    [[nodiscard]] std::string toDot() const;

   private:
    void rebuildAdjacency();

    std::vector<GraphNode> mNodes;
    std::vector<GraphEdge> mEdges;
    /// Per-node edge-index lists (into mEdges), kept in sync by
    /// addNode/addEdge and rebuilt after bulk removals: parents/children/
    /// hasDataEdge queries scan a node's degree instead of every edge.
    std::vector<std::vector<int>> mOut;
    std::vector<std::vector<int>> mIn;
};

}  // namespace neon::skeleton
