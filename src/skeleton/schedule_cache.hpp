#pragma once
// Schedule compilation cache (docs/performance.md). The skeleton pipeline
// (dependency graph -> OCC transform -> transitive reduction -> level/
// stream/event schedule) is a pure function of the *structure* of the
// container sequence — which data objects each container reads/writes and
// how, not which concrete fields they are — plus the OCC mode, the device
// count and the stream cap. A structural key over exactly those inputs
// memoizes the full compilation: a repeated sequence() with the same
// structure replays a stored recipe (node blueprints + final edge list +
// task list) against the *new* containers instead of recompiling.
//
// Collisions are handled by construction, not hope: the cache buckets by
// the 64-bit hash but compares the full canonical encoding on lookup, so
// two distinct structures that happen to share a hash stay distinct.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "set/container.hpp"
#include "skeleton/graph.hpp"

namespace neon::skeleton {

/// Canonical structural key of one sequence() request. `words` is the full
/// encoding (uids remapped to first-occurrence slots so structurally
/// identical pipelines over different fields collide on purpose); `hash`
/// is its 64-bit digest used for bucketing.
struct ScheduleKey
{
    uint64_t              hash = 0;
    std::vector<uint64_t> words;

    /// Full-encoding equality — the collision-proof comparison.
    [[nodiscard]] bool operator==(const ScheduleKey& other) const { return words == other.words; }
};

/// Build the structural key: per container its kind/pattern/reduce flag,
/// per-device INTERNAL/BOUNDARY span sizes (they steer the two-way OCC
/// split), and per access record (uid slot, access, compute, halo?,
/// scalar?); plus occ, devCount and maxStreams.
[[nodiscard]] ScheduleKey makeScheduleKey(const std::vector<set::Container>& containers,
                                          int devCount, Occ occ, int maxStreams);

/// One graph node of a compiled schedule, reduced to structure + schedule
/// results. `origin` says how to rebind it to a fresh container sequence.
struct NodeBlueprint
{
    NodeOrigin origin;
    DataView   view = DataView::STANDARD;
    bool       alive = true;
    bool       coherent = true;
    int        level = -1;
    int        stream = -1;
    bool       needsEvent = false;
};

/// Everything sequence() produces, minus the concrete containers: replaying
/// a recipe against a structurally identical sequence is O(nodes + edges)
/// with no dependency analysis, no OCC transform and no BFS scheduling.
struct ScheduleRecipe
{
    std::vector<NodeBlueprint> nodes;
    std::vector<GraphEdge>     edges;
    std::vector<Task>          tasks;
    int                        nStreams = 1;
    int                        levelCount = 0;
};

/// Capture the compiled graph + task list into a reusable recipe.
[[nodiscard]] ScheduleRecipe captureRecipe(const Graph& graph, const std::vector<Task>& tasks,
                                           int nStreams);

/// Replay `recipe` against `containers`, rebuilding an identical graph
/// whose nodes launch the *new* containers (halo nodes rebind to the new
/// fields' HaloOps through the recorded access index).
[[nodiscard]] Graph instantiateRecipe(const ScheduleRecipe&              recipe,
                                      const std::vector<set::Container>& containers);

/// Process-wide LRU cache of compiled schedules, shared by every Skeleton
/// (the recipe is backend-agnostic: the key already pins devCount, and the
/// engines execute the same task list). Thread-safe.
class ScheduleCache
{
   public:
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        size_t   size = 0;
        size_t   capacity = 0;
    };

    /// The global instance used by Skeleton::sequence().
    static ScheduleCache& instance();

    /// Lookup; bumps LRU and the hit/miss counters.
    [[nodiscard]] std::shared_ptr<const ScheduleRecipe> find(const ScheduleKey& key);
    /// Insert (replaces an existing entry for the same key); evicts the
    /// least recently used entry beyond capacity.
    void insert(const ScheduleKey& key, std::shared_ptr<const ScheduleRecipe> recipe);

    [[nodiscard]] Stats stats() const;
    /// Drop every entry (counters survive; tests reset via setCapacity).
    void clear();
    /// Drop every entry compiled for `devCount` devices. Recovery path:
    /// after a backend shrink the old-geometry recipes must never be
    /// replayed onto resized spans (docs/robustness.md). Returns the number
    /// of entries dropped.
    size_t invalidateDevCount(int devCount);
    /// Resize; also resets the counters (test hook). Capacity >= 1.
    void setCapacity(size_t capacity);

    explicit ScheduleCache(size_t capacity = 128);
    ~ScheduleCache();
    ScheduleCache(const ScheduleCache&) = delete;
    ScheduleCache& operator=(const ScheduleCache&) = delete;

   private:
    struct ImplData;
    std::unique_ptr<ImplData> mData;
};

}  // namespace neon::skeleton
