#include "skeleton/schedule_cache.hpp"

#include <list>
#include <mutex>
#include <unordered_map>

#include "core/error.hpp"

namespace neon::skeleton {

namespace {

/// FNV-1a 64 over the canonical word encoding.
uint64_t digest(const std::vector<uint64_t>& words)
{
    uint64_t h = 14695981039346656037ull;
    for (const uint64_t w : words) {
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (b * 8)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/// Pack small fields into one word; field widths are part of the encoding
/// version (bump kKeyVersion when they change).
constexpr uint64_t kKeyVersion = 1;

}  // namespace

ScheduleKey makeScheduleKey(const std::vector<set::Container>& containers, int devCount, Occ occ,
                            int maxStreams)
{
    ScheduleKey key;
    auto&       w = key.words;
    w.reserve(3 + containers.size() * (4 + 2 * static_cast<size_t>(devCount)));
    w.push_back(kKeyVersion);
    w.push_back((static_cast<uint64_t>(devCount) << 32) | (static_cast<uint64_t>(occ) << 16) |
                static_cast<uint64_t>(maxStreams));
    w.push_back(containers.size());

    // Uids are remapped to dense first-occurrence slots: the key captures
    // *which accesses touch the same object*, not which object it is, so a
    // structurally identical pipeline over different fields hits.
    std::unordered_map<uint64_t, uint64_t> uidSlot;
    auto slotOf = [&](uint64_t uid) {
        const auto [it, inserted] = uidSlot.try_emplace(uid, uidSlot.size());
        return it->second;
    };

    for (const auto& c : containers) {
        w.push_back((static_cast<uint64_t>(c.kind()) << 24) |
                    (static_cast<uint64_t>(c.pattern()) << 16) |
                    (static_cast<uint64_t>(c.isReduce() ? 1 : 0) << 8) |
                    static_cast<uint64_t>(c.accesses().size() & 0xff));
        // Per-device span shapes steer the two-way OCC transform
        // (sameSpanShape): two pipelines that differ only in partition sizes
        // can compile to different graphs, so the sizes are part of the key.
        for (int d = 0; d < devCount; ++d) {
            w.push_back((static_cast<uint64_t>(c.items(d, DataView::INTERNAL)) << 32) |
                        static_cast<uint64_t>(c.items(d, DataView::BOUNDARY) & 0xffffffffu));
        }
        for (const auto& a : c.accesses()) {
            w.push_back((slotOf(a.uid) << 8) | (static_cast<uint64_t>(a.access) << 6) |
                        (static_cast<uint64_t>(a.compute) << 2) |
                        (static_cast<uint64_t>(a.halo != nullptr ? 1 : 0) << 1) |
                        static_cast<uint64_t>(a.scalar ? 1 : 0));
        }
    }
    key.hash = digest(w);
    return key;
}

ScheduleRecipe captureRecipe(const Graph& graph, const std::vector<Task>& tasks, int nStreams)
{
    ScheduleRecipe r;
    r.nodes.reserve(static_cast<size_t>(graph.nodeCount()));
    for (int id = 0; id < graph.nodeCount(); ++id) {
        const GraphNode& n = graph.node(id);
        NEON_CHECK(n.origin.container >= 0,
                   "captureRecipe: node without sequence provenance (mutated graph?)");
        NodeBlueprint bp;
        bp.origin = n.origin;
        bp.view = n.view;
        bp.alive = n.alive;
        bp.coherent = n.coherent;
        bp.level = n.level;
        bp.stream = n.stream;
        bp.needsEvent = n.needsEvent;
        r.levelCount = std::max(r.levelCount, n.level + 1);
        r.nodes.push_back(bp);
    }
    r.edges = graph.edges();
    r.tasks = tasks;
    r.nStreams = nStreams;
    return r;
}

Graph instantiateRecipe(const ScheduleRecipe& recipe, const std::vector<set::Container>& containers)
{
    Graph g;
    g.reserve(static_cast<int>(recipe.nodes.size()), static_cast<int>(recipe.edges.size()));
    for (const auto& bp : recipe.nodes) {
        const auto&    src = containers.at(static_cast<size_t>(bp.origin.container));
        set::Container c;
        switch (bp.origin.src) {
            case NodeOrigin::Src::User: c = src; break;
            case NodeOrigin::Src::Halo: {
                const auto& a = src.accesses().at(static_cast<size_t>(bp.origin.access));
                NEON_CHECK(a.halo != nullptr, "instantiateRecipe: access lost its halo ops");
                c = set::Container::haloUpdate(a.halo);
                break;
            }
            case NodeOrigin::Src::Combine: c = src.combineStep(); break;
        }
        const int  id = g.addNode(std::move(c), bp.view);
        GraphNode& n = g.node(id);
        n.origin = bp.origin;
        n.alive = bp.alive;
        n.coherent = bp.coherent;
        n.level = bp.level;
        n.stream = bp.stream;
        n.needsEvent = bp.needsEvent;
    }
    for (const auto& e : recipe.edges) {
        g.restoreEdge(e);
    }
    return g;
}

struct ScheduleCache::ImplData
{
    struct Entry
    {
        ScheduleKey                           key;
        std::shared_ptr<const ScheduleRecipe> recipe;
    };
    using List = std::list<Entry>;

    mutable std::mutex mutex;
    size_t             capacity = 128;
    List               lru;  ///< front = most recently used
    /// Hash buckets into the LRU list; equality is on the full encoding.
    std::unordered_map<uint64_t, std::vector<List::iterator>> buckets;
    Stats                                                     stats;

    void dropFromBucket(List::iterator it)
    {
        auto& vec = buckets[it->key.hash];
        std::erase_if(vec, [&](const List::iterator& x) { return x == it; });
        if (vec.empty()) {
            buckets.erase(it->key.hash);
        }
    }
};

ScheduleCache::ScheduleCache(size_t capacity) : mData(std::make_unique<ImplData>())
{
    mData->capacity = std::max<size_t>(1, capacity);
}

ScheduleCache::~ScheduleCache() = default;

ScheduleCache& ScheduleCache::instance()
{
    static ScheduleCache cache;
    return cache;
}

std::shared_ptr<const ScheduleRecipe> ScheduleCache::find(const ScheduleKey& key)
{
    ImplData&                   d = *mData;
    std::lock_guard<std::mutex> lock(d.mutex);
    if (auto bit = d.buckets.find(key.hash); bit != d.buckets.end()) {
        for (const auto& it : bit->second) {
            if (it->key == key) {
                d.lru.splice(d.lru.begin(), d.lru, it);
                ++d.stats.hits;
                return it->recipe;
            }
        }
    }
    ++d.stats.misses;
    return nullptr;
}

void ScheduleCache::insert(const ScheduleKey& key, std::shared_ptr<const ScheduleRecipe> recipe)
{
    ImplData&                   d = *mData;
    std::lock_guard<std::mutex> lock(d.mutex);
    if (auto bit = d.buckets.find(key.hash); bit != d.buckets.end()) {
        for (const auto& it : bit->second) {
            if (it->key == key) {
                it->recipe = std::move(recipe);
                d.lru.splice(d.lru.begin(), d.lru, it);
                return;
            }
        }
    }
    d.lru.push_front({key, std::move(recipe)});
    d.buckets[key.hash].push_back(d.lru.begin());
    ++d.stats.insertions;
    while (d.lru.size() > d.capacity) {
        auto last = std::prev(d.lru.end());
        d.dropFromBucket(last);
        d.lru.erase(last);
        ++d.stats.evictions;
    }
}

ScheduleCache::Stats ScheduleCache::stats() const
{
    const ImplData&             d = *mData;
    std::lock_guard<std::mutex> lock(d.mutex);
    Stats                       s = d.stats;
    s.size = d.lru.size();
    s.capacity = d.capacity;
    return s;
}

void ScheduleCache::clear()
{
    ImplData&                   d = *mData;
    std::lock_guard<std::mutex> lock(d.mutex);
    d.lru.clear();
    d.buckets.clear();
}

size_t ScheduleCache::invalidateDevCount(int devCount)
{
    ImplData&                   d = *mData;
    std::lock_guard<std::mutex> lock(d.mutex);
    size_t                      dropped = 0;
    for (auto it = d.lru.begin(); it != d.lru.end();) {
        // words[1] packs (devCount << 32 | occ << 16 | maxStreams); see
        // makeScheduleKey. words[0] is the encoding version guard.
        const bool match = it->key.words.size() > 1 &&
                           (it->key.words[1] >> 32) == static_cast<uint64_t>(devCount);
        if (match) {
            d.dropFromBucket(it);
            it = d.lru.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

void ScheduleCache::setCapacity(size_t capacity)
{
    ImplData&                   d = *mData;
    std::lock_guard<std::mutex> lock(d.mutex);
    d.capacity = std::max<size_t>(1, capacity);
    d.stats = Stats{};
    while (d.lru.size() > d.capacity) {
        auto last = std::prev(d.lru.end());
        d.dropFromBucket(last);
        d.lru.erase(last);
    }
}

}  // namespace neon::skeleton
