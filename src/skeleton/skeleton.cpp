#include "skeleton/skeleton.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "analysis/env.hpp"
#include "analysis/graph_lint.hpp"
#include "analysis/sanitizer.hpp"
#include "analysis/node_meta.hpp"
#include "core/error.hpp"
#include "core/log.hpp"
#include "skeleton/schedule_cache.hpp"
#include "sys/fault.hpp"
#include "sys/schedule_log.hpp"
#include "sys/stream.hpp"

namespace neon::skeleton {

namespace {

using neon::Access;
using set::Container;

/// True when two containers iterate identically shaped spans on every
/// device — the precondition for view-aligned dependency splitting in the
/// two-way extended OCC transform.
bool sameSpanShape(const Container& a, const Container& b)
{
    if (a.devCount() != b.devCount()) {
        return false;
    }
    for (int d = 0; d < a.devCount(); ++d) {
        if (a.items(d, DataView::INTERNAL) != b.items(d, DataView::INTERNAL) ||
            a.items(d, DataView::BOUNDARY) != b.items(d, DataView::BOUNDARY)) {
            return false;
        }
    }
    return true;
}

int levelCountOf(const Graph& g)
{
    int n = 0;
    for (int id = 0; id < g.nodeCount(); ++id) {
        if (g.node(id).alive) {
            n = std::max(n, g.node(id).level + 1);
        }
    }
    return n;
}

/// Resolve every (device, stream) the schedule uses to a raw Stream
/// pointer once per compilation: Backend::stream() takes a mutex per call
/// and the stream objects are stable, so the run hot loop can index a flat
/// array instead.
void prefetchStreams(set::Backend& backend, std::vector<sys::Stream*>& out, int nStreams)
{
    const int nDev = backend.devCount();
    out.assign(static_cast<size_t>(nDev) * static_cast<size_t>(nStreams), nullptr);
    for (int d = 0; d < nDev; ++d) {
        for (int s = 0; s < nStreams; ++s) {
            out[static_cast<size_t>(d * nStreams + s)] = &backend.stream(d, s);
        }
    }
}

std::string describeSchedule(const std::string& name, const std::string& backendStr, Occ occ,
                             int nStreams, const Graph& graph, const std::vector<Task>& tasks)
{
    std::ostringstream os;
    os << "skeleton '" << name << "' on " << backendStr << "\n";
    os << "occ: " << to_string(occ) << ", streams: " << nStreams << "\n";
    os << "task order:\n";
    for (const Task& t : tasks) {
        const GraphNode& n = graph.node(t.nodeId);
        os << "  [s" << t.stream << "] " << n.label();
        if (!t.waits.empty()) {
            os << "  waits:";
            for (const auto& w : t.waits) {
                os << " " << graph.node(w.parent).label() << "(" << to_string(w.scope) << ")";
            }
        }
        os << "\n";
    }
    os << "graph:\n" << graph.toDot();
    return os.str();
}

}  // namespace

Graph buildGraph(const std::vector<set::Container>& containers, int devCount)
{
    Graph g;

    std::unordered_map<uint64_t, int>              lastWriter;
    std::unordered_map<uint64_t, std::vector<int>> readers;
    std::unordered_map<uint64_t, bool>             haloFresh;

    // Wire a node into the dependency bookkeeping from its access records.
    auto connect = [&](int id) {
        const auto& accesses = g.node(id).container.accesses();
        for (const auto& a : accesses) {
            if (a.access == Access::READ) {
                auto it = lastWriter.find(a.uid);
                if (it != lastWriter.end() && it->second != id) {
                    g.addEdge(it->second, id, EdgeKind::RaW);
                }
                readers[a.uid].push_back(id);
            }
        }
        const bool isHalo = g.node(id).kind() == Container::Kind::Halo;
        for (const auto& a : accesses) {
            if (a.access == Access::WRITE) {
                for (int r : readers[a.uid]) {
                    if (r != id && !g.hasDataEdge(r, id)) {
                        g.addEdge(r, id, EdgeKind::WaR);
                    }
                }
                auto it = lastWriter.find(a.uid);
                if (it != lastWriter.end() && it->second != id && !g.hasDataEdge(it->second, id)) {
                    g.addEdge(it->second, id, EdgeKind::WaW);
                }
                lastWriter[a.uid] = id;
                readers[a.uid].clear();
                haloFresh[a.uid] = isHalo;
            }
        }
    };

    for (size_t ci = 0; ci < containers.size(); ++ci) {
        const auto& c = containers[ci];
        NEON_CHECK(c.valid(), "invalid container in sequence");
        // Insert halo-update nodes for stale stencil reads (paper §V-B:
        // "Neon adds halo update nodes to ensure the stencil operation
        // nodes operate on the latest halo data values").
        bool coherent = true;
        if (devCount > 1) {
            const auto& accesses = c.accesses();
            for (size_t ai = 0; ai < accesses.size(); ++ai) {
                const auto& a = accesses[ai];
                if (a.compute == Compute::STENCIL && a.access == Access::READ &&
                    a.halo != nullptr && !haloFresh[a.uid]) {
                    coherent = false;
                    const int h = g.addNode(Container::haloUpdate(a.halo));
                    g.node(h).origin = {NodeOrigin::Src::Halo, static_cast<int>(ci),
                                        static_cast<int>(ai)};
                    connect(h);
                }
            }
        }
        const int id = g.addNode(c);
        g.node(id).coherent = coherent;
        g.node(id).origin = {NodeOrigin::Src::User, static_cast<int>(ci), -1};
        connect(id);
        if (c.isReduce()) {
            // The combine step is a first-class graph node so the scheduler
            // places the all-device synchronization it implies.
            const int cid = g.addNode(c.combineStep());
            g.node(cid).origin = {NodeOrigin::Src::Combine, static_cast<int>(ci), -1};
            connect(cid);
        }
    }
    return g;
}

void applyOcc(Graph& g, Occ occ, int devCount)
{
    if (occ == Occ::NONE || devCount <= 1) {
        return;
    }

    struct SplitPair
    {
        int intId;
        int bdrId;
    };
    std::vector<SplitPair> stencilSplits;

    auto splitViews = [&](int id) -> SplitPair {
        const set::Container c = g.node(id).container;
        const NodeOrigin     origin = g.node(id).origin;
        const SplitPair sp{g.addNode(c, DataView::INTERNAL), g.addNode(c, DataView::BOUNDARY)};
        g.node(sp.intId).origin = origin;
        g.node(sp.bdrId).origin = origin;
        return sp;
    };

    // ---- Standard OCC: split every halo-dependent stencil node ----------
    const int nStencilPass = g.nodeCount();
    for (int id = 0; id < nStencilPass; ++id) {
        if (!g.node(id).alive || g.node(id).kind() != Container::Kind::Compute ||
            g.node(id).pattern() != Compute::STENCIL || g.node(id).view != DataView::STANDARD) {
            continue;
        }
        const auto parents = g.dataParents(id);
        std::vector<int> haloParents;
        for (int p : parents) {
            if (g.node(p).kind() == Container::Kind::Halo) {
                haloParents.push_back(p);
            }
        }
        if (haloParents.empty()) {
            continue;
        }
        const auto [si, sb] = splitViews(id);
        for (int p : parents) {
            const EdgeKind k = g.dataEdgeKind(p, id);
            if (std::find(haloParents.begin(), haloParents.end(), p) != haloParents.end()) {
                // Only the boundary half needs fresh halo data — but both
                // halves still need the *producers* of the halo'd field
                // (the halo node subsumed the producer -> stencil edge when
                // it became the field's last writer). Parents that merely
                // read the field (WaR into the halo node) wrote nothing the
                // stencil consumes; carrying them over would serialize
                // readers with the internal half for no reason.
                g.addEdge(p, sb, k);
                for (int q : g.dataParents(p)) {
                    if (g.dataEdgeKind(q, p) == EdgeKind::WaR) {
                        continue;
                    }
                    g.addEdge(q, si, EdgeKind::RaW);
                    g.addEdge(q, sb, EdgeKind::RaW);
                }
            } else {
                g.addEdge(p, si, k);
                g.addEdge(p, sb, k);
            }
        }
        for (int c : g.dataChildren(id)) {
            const EdgeKind k = g.dataEdgeKind(id, c);
            g.addEdge(si, c, k);
            g.addEdge(sb, c, k);
        }
        // Hints: issue the halo transfers first, then the internal half, so
        // communication overlaps the internal computation (paper Fig. 4d).
        for (int h : haloParents) {
            g.addEdge(h, si, EdgeKind::Hint);
        }
        g.addEdge(si, sb, EdgeKind::Hint);
        g.killNode(id);
        stencilSplits.push_back({si, sb});
    }

    // ---- Extended OCC: split map nodes feeding halo updates -------------
    if (occ == Occ::EXTENDED || occ == Occ::TWO_WAY) {
        const int nHaloPass = g.nodeCount();
        for (int h = 0; h < nHaloPass; ++h) {
            if (!g.node(h).alive || g.node(h).kind() != Container::Kind::Halo) {
                continue;
            }
            for (int p : g.dataParents(h)) {
                const auto& pn = g.node(p);
                if (!pn.alive || pn.kind() != Container::Kind::Compute ||
                    pn.pattern() != Compute::MAP || pn.view != DataView::STANDARD) {
                    continue;
                }
                const auto parents = g.dataParents(p);
                const auto children = g.dataChildren(p);
                const auto [pi, pb] = splitViews(p);
                for (int q : parents) {
                    const EdgeKind k = g.dataEdgeKind(q, p);
                    g.addEdge(q, pi, k);
                    g.addEdge(q, pb, k);
                }
                for (int c : children) {
                    const EdgeKind k = g.dataEdgeKind(p, c);
                    if (g.node(c).kind() == Container::Kind::Halo && k != EdgeKind::WaR) {
                        // The halo sends only boundary cells of the field
                        // this map *wrote*: it can start right after the
                        // boundary half. A WaR edge means the map merely
                        // read the field — that edge is the transitive
                        // guard against the field's next writer, so both
                        // halves must keep it.
                        g.addEdge(pb, c, k);
                        // When the halo became the field's last writer it
                        // subsumed this map's edges to later readers and
                        // writers of the field. Those consumers stay ordered
                        // after pb through the halo, but nothing orders them
                        // after pi — restore that directly (readers need
                        // pi's internal cells: RaW; rewriters overwrite
                        // them: WaW).
                        for (int r : g.dataChildren(c)) {
                            const EdgeKind rk = g.dataEdgeKind(c, r) == EdgeKind::WaR
                                                    ? EdgeKind::WaW
                                                    : EdgeKind::RaW;
                            g.addEdge(pi, r, rk);
                        }
                    } else {
                        g.addEdge(pi, c, k);
                        g.addEdge(pb, c, k);
                    }
                }
                // Launch the boundary map first (paper Fig. 1c).
                g.addEdge(pb, pi, EdgeKind::Hint);
                g.killNode(p);
            }
        }
    }

    // ---- Two-way extended: split map/reduce nodes after the stencil -----
    if (occ == Occ::TWO_WAY) {
        for (const auto& sp : stencilSplits) {
            for (int c : g.dataChildren(sp.intId)) {
                const auto& cn = g.node(c);
                if (!cn.alive || cn.kind() != Container::Kind::Compute ||
                    cn.view != DataView::STANDARD) {
                    continue;
                }
                if (cn.pattern() != Compute::MAP && cn.pattern() != Compute::REDUCE) {
                    continue;
                }
                // View-aligned dependencies are only valid when the child
                // iterates the same span partition as the stencil.
                if (!sameSpanShape(g.node(sp.intId).container, cn.container)) {
                    continue;
                }
                // View alignment pairs si->ci / sb->cb because the child's
                // accesses are cell-local. That breaks down when the child
                // *writes* a field the stencil reads through the stencil
                // pattern: the stencil's non-local reads reach across the
                // internal/boundary cut, so the opposite halves conflict
                // too (WaR) and the split would leave them unordered. Keep
                // such children whole.
                bool writesStencilInput = false;
                for (const auto& wa : cn.container.accesses()) {
                    if (wa.access != Access::WRITE) {
                        continue;
                    }
                    for (const auto& ra : g.node(sp.intId).container.accesses()) {
                        if (ra.access == Access::READ && ra.compute == Compute::STENCIL &&
                            ra.uid == wa.uid) {
                            writesStencilInput = true;
                        }
                    }
                }
                if (writesStencilInput) {
                    continue;
                }
                const bool isReduce = cn.pattern() == Compute::REDUCE;
                const auto parents = g.dataParents(c);
                const auto children = g.dataChildren(c);
                const auto [ci, cb] = splitViews(c);
                for (int q : parents) {
                    const EdgeKind k = g.dataEdgeKind(q, c);
                    const auto&    qn = g.node(q);
                    // Map/reduce reads are cell-local, so a split parent's
                    // halves pair with the matching child halves.
                    if (qn.view == DataView::INTERNAL) {
                        g.addEdge(q, ci, k);
                    } else if (qn.view == DataView::BOUNDARY) {
                        g.addEdge(q, cb, k);
                    } else {
                        g.addEdge(q, ci, k);
                        g.addEdge(q, cb, k);
                    }
                }
                for (int ch : children) {
                    const EdgeKind k = g.dataEdgeKind(c, ch);
                    g.addEdge(ci, ch, k);
                    g.addEdge(cb, ch, k);
                }
                if (isReduce) {
                    // Paper §V-B: "a data dependency is also added between
                    // the internal and the boundary cells computations".
                    g.addEdge(ci, cb, EdgeKind::WaW);
                } else {
                    g.addEdge(ci, cb, EdgeKind::Hint);
                }
                g.killNode(c);
            }
        }
    }
}

std::vector<Task> scheduleGraph(Graph& g, int maxStreams, int* streamCountOut)
{
    NEON_CHECK(maxStreams >= 1, "need at least one stream");

    // Rescheduling (e.g. after a graph mutation) must not inherit stale
    // state from a previous schedule of the same graph.
    for (int id = 0; id < g.nodeCount(); ++id) {
        GraphNode& n = g.node(id);
        if (n.alive) {
            n.level = -1;
            n.stream = -1;
            n.needsEvent = false;
        }
    }

    // (a) Map nodes to streams: BFS levels over data edges; inherit a
    // parent's stream when free to skip events later (paper §V-C(a)).
    const auto levels = g.bfsLevels(false);
    int        width = 0;
    for (const auto& level : levels) {
        width = std::max(width, static_cast<int>(level.size()));
    }
    const int nStreams = std::min(std::max(width, 1), maxStreams);
    if (streamCountOut != nullptr) {
        *streamCountOut = nStreams;
    }

    for (size_t li = 0; li < levels.size(); ++li) {
        std::vector<bool> taken(static_cast<size_t>(nStreams), false);
        std::vector<int>  unassigned;
        for (int id : levels[li]) {
            g.node(id).level = static_cast<int>(li);
            int choice = -1;
            for (int p : g.dataParents(id)) {
                const int ps = g.node(p).stream;
                if (ps >= 0 && ps < nStreams && !taken[static_cast<size_t>(ps)]) {
                    choice = ps;
                    break;
                }
            }
            if (choice >= 0) {
                g.node(id).stream = choice;
                taken[static_cast<size_t>(choice)] = true;
            } else {
                unassigned.push_back(id);
            }
        }
        int cursor = 0;
        for (int id : unassigned) {
            int free = -1;
            for (int s = 0; s < nStreams; ++s) {
                if (!taken[static_cast<size_t>(s)]) {
                    free = s;
                    break;
                }
            }
            if (free < 0) {
                free = cursor++ % nStreams;  // level wider than the cap
            }
            g.node(id).stream = free;
            taken[static_cast<size_t>(free)] = true;
        }
    }

    // (b) Organize event synchronization: a dependency needs an event unless
    // it is same-device-scoped and rides the same stream FIFO (§V-C(b)).
    std::unordered_map<int, std::vector<Task::Wait>> waits;
    for (const auto& e : g.edges()) {
        if (e.kind == EdgeKind::Hint) {
            continue;
        }
        const WaitScope scope = g.waitScope(e.from, e.to);
        if (scope == WaitScope::SameDev && g.node(e.from).stream == g.node(e.to).stream) {
            continue;  // FIFO order on the shared stream is enough
        }
        auto& w = waits[e.to];
        if (std::none_of(w.begin(), w.end(),
                         [&](const Task::Wait& x) { return x.parent == e.from; })) {
            w.push_back({e.from, scope});
            g.node(e.from).needsEvent = true;
        }
    }

    // (c) Task list order: BFS over data + hint edges (§V-C(c), Fig. 6).
    std::vector<Task> tasks;
    for (const auto& level : g.bfsLevels(true)) {
        for (int id : level) {
            Task t;
            t.nodeId = id;
            t.stream = g.node(id).stream;
            if (auto it = waits.find(id); it != waits.end()) {
                t.waits = it->second;
            }
            tasks.push_back(std::move(t));
        }
    }
    return tasks;
}

/// One compilation result. Skeleton::sequence() swaps in a fresh state each
/// time (copy-on-write), so CompiledSchedule handles snapshot the state
/// they were minted with and can detect being superseded by identity.
struct Skeleton::ScheduleState
{
    std::string       name = "app";
    SequenceOptions   options;
    Graph             graph;
    std::vector<Task> tasks;
    int               nStreams = 1;
    int               levelCount = 0;
    uint64_t          hash = 0;
    bool              cacheHit = false;
    /// Backend geometry epoch at sequence() time; run() refuses when the
    /// live backend has moved on (repartition/rebind => re-sequence).
    uint64_t geomEpoch = 0;
    /// Sorted, deduplicated data-object uids the sequence reads / writes
    /// (from the user containers' access records; halo nodes operate on the
    /// same uids). Drives the per-uid inter-run chains in runBody.
    std::vector<uint64_t> readUids;
    std::vector<uint64_t> writeUids;
    /// Raw stream pointers, indexed [dev * nStreams + stream] (see
    /// prefetchStreams): the run hot loop must not take the backend's
    /// stream-map mutex per task per device.
    std::vector<sys::Stream*> streams;
    /// Container metadata of this graph, registered per run window with the
    /// schedule log; built lazily on the first logged run.
    std::shared_ptr<const sys::ContainerMetaMap> metaCache;
};

struct Skeleton::Impl
{
    set::Backend                   backend;
    std::shared_ptr<ScheduleState> state;  ///< null until the first sequence()
    /// Run-id window [windowFirst, windowLast]: opened by the first run()
    /// after a sync(), extended by subsequent run()s, closed by sync().
    int  windowFirst = -1;
    int  windowLast = -1;
    bool windowClosed = true;
    /// Fault injection (tests/analysis): chain runs through a skeleton-local
    /// barrier instead of the backend's per-uid data chains.
    bool          perSkeletonBarrier = false;
    sys::EventPtr localBarrier;
    /// Tail barrier of the most recent run issued through this skeleton.
    sys::EventPtr lastTail;
};

struct CompiledSchedule::Impl
{
    Skeleton                                 skeleton;
    std::shared_ptr<Skeleton::ScheduleState> state;

    Impl(Skeleton sk, std::shared_ptr<Skeleton::ScheduleState> st)
        : skeleton(std::move(sk)), state(std::move(st))
    {
    }
};

namespace {

/// Abort path shared by run()/sync(): leave the engine drained and the
/// trace context clean so the caller can inspect reports and re-sequence()
/// on surviving devices, then rethrow the fault enriched with skeleton
/// attribution (graph-node label, last consistently completed run).
[[noreturn]] void rethrowEnriched(set::Backend& backend, const Graph& graph,
                                  const RuntimeError& e)
{
    backend.engine().trace().clearContext();
    backend.engine().quiesce();
    RuntimeError::Info info = e.info;
    if (info.containerId >= 0 && info.containerId < graph.nodeCount() &&
        info.containerLabel.empty()) {
        info.containerLabel = graph.node(info.containerId).label();
    }
    if (info.runId >= 0 && info.lastCompletedRun < 0) {
        info.lastCompletedRun = info.runId - 1;
    }
    throw RuntimeError(std::move(info));
}

}  // namespace

Skeleton::Skeleton(set::Backend backend) : mImpl(std::make_shared<Impl>())
{
    mImpl->backend = std::move(backend);
}

CompiledSchedule Skeleton::sequence(std::vector<set::Container> containers,
                                    SequenceOptions options)
{
    Impl&          s = *mImpl;
    const int      nDev = s.backend.devCount();
    const uint64_t geomEpoch = s.backend.geometryEpoch();
    for (const auto& c : containers) {
        NEON_CHECK(c.valid(), "invalid container in sequence");
        NEON_CHECK(c.devCount() == nDev,
                   "container '" + c.name() + "' was built for " +
                       std::to_string(c.devCount()) + " device(s) but the skeleton backend has " +
                       std::to_string(nDev));
        // Partition-geometry staleness guard (docs/robustness.md): a
        // container records the backend geometry epoch it was built under;
        // sequencing one that predates a repartition/rebind would replay
        // trampolines over spans that no longer exist.
        NEON_CHECK(c.geometryEpoch() == geomEpoch,
                   "container '" + c.name() + "' predates a partition-geometry change (epoch " +
                       std::to_string(c.geometryEpoch()) + ", backend epoch " +
                       std::to_string(geomEpoch) +
                       "); call Container::rebuild() after Grid::repartition/rebindBackend");
    }

    auto state = std::make_shared<ScheduleState>();
    state->name = options.name;
    state->options = options;
    state->geomEpoch = geomEpoch;

    // NEON_SANITIZE=1: every launch through this skeleton runs the
    // instrumented trampolines; an atexit diff fails the process with exit
    // code 4 on contract violations (tools/neon-lint --sanitize).
    if (analysis::sanitizeEnvEnabled()) {
        state->options.sanitize = true;
        analysis::installSanitizeExitHook();
    }

    // Read/write uid sets for the per-uid inter-run chains. Collected from
    // the user containers (cache-hit or not): halo/combine nodes the
    // pipeline adds touch the same uids.
    for (const auto& c : containers) {
        for (const auto& a : c.accesses()) {
            (a.access == Access::WRITE ? state->writeUids : state->readUids).push_back(a.uid);
        }
    }
    for (auto* uids : {&state->readUids, &state->writeUids}) {
        std::sort(uids->begin(), uids->end());
        uids->erase(std::unique(uids->begin(), uids->end()), uids->end());
    }

    const ScheduleKey key = makeScheduleKey(containers, nDev, options.occ, options.maxStreams);
    state->hash = key.hash;

    std::shared_ptr<const ScheduleRecipe> recipe;
    if (options.cache) {
        recipe = ScheduleCache::instance().find(key);
    }
    if (recipe != nullptr) {
        // Cache hit: replay the recipe against the *new* containers —
        // O(nodes + edges), no analysis / OCC / BFS.
        state->graph = instantiateRecipe(*recipe, containers);
        state->tasks = recipe->tasks;
        state->nStreams = recipe->nStreams;
        state->levelCount = recipe->levelCount;
        state->cacheHit = true;
    } else {
        state->graph = buildGraph(containers, nDev);
        applyOcc(state->graph, options.occ, nDev);
        state->graph.transitiveReduce();
        state->tasks = scheduleGraph(state->graph, options.maxStreams, &state->nStreams);
        state->levelCount = levelCountOf(state->graph);
        if (options.cache) {
            ScheduleCache::instance().insert(
                key, std::make_shared<const ScheduleRecipe>(
                         captureRecipe(state->graph, state->tasks, state->nStreams)));
        }
    }
    prefetchStreams(s.backend, state->streams, state->nStreams);
    s.state = std::move(state);

    log::debug("skeleton '", s.state->name, "': ", s.state->graph.aliveCount(), " nodes, ",
               s.state->tasks.size(), " tasks, ", s.state->nStreams,
               " streams, occ=", to_string(options.occ),
               s.state->cacheHit ? ", schedule cache hit" : ", schedule cache miss");

    // NEON_ANALYSIS=1: lint every schedule as it is built and arm the race
    // detector over this backend's command stream (docs/analysis.md).
    if (analysis::envEnabled()) {
        analysis::installEnvHooks(s.backend);
        analysis::reportEnvViolations("graph lint ('" + s.state->name + "')", validate());
    }

    CompiledSchedule handle;
    handle.mImpl = std::make_shared<CompiledSchedule::Impl>(*this, s.state);
    return handle;
}

CompiledSchedule Skeleton::sequence(std::vector<set::Container> containers, std::string name,
                                    Options options)
{
    return sequence(std::move(containers), SequenceOptions()
                                               .withName(std::move(name))
                                               .withOcc(options.occ)
                                               .withMaxStreams(options.maxStreams));
}

analysis::AnalysisReport Skeleton::validate() const
{
    const Impl& s = *mImpl;
    NEON_CHECK(s.state != nullptr, "Skeleton::sequence must be called before validate()");
    return analysis::lintSchedule(s.state->graph, s.state->tasks, s.state->nStreams,
                                  s.backend.devCount());
}

analysis::AnalysisReport Skeleton::validate(ValidateMode mode)
{
    analysis::AnalysisReport rep = std::as_const(*this).validate();
    if (mode == ValidateMode::Static) {
        return rep;
    }
    // Deep: run the active schedule once through the sanitized trampolines
    // (this advances field state like any run), then diff the observations
    // scoped to exactly this graph's containers.
    Impl& s = *mImpl;
    auto  state = s.state;
    const bool prev = state->options.sanitize;
    state->options.sanitize = true;
    run();
    sync();
    state->options.sanitize = prev;
    std::vector<uint64_t> seqs;
    for (int id = 0; id < state->graph.nodeCount(); ++id) {
        const GraphNode& n = state->graph.node(id);
        if (n.alive) {
            seqs.push_back(n.container.sanitizeSeq());
        }
    }
    rep.merge(analysis::AccessSanitizer::diff(seqs));
    return rep;
}

void Skeleton::debugMutateGraph(const std::function<void(Graph&)>& fn)
{
    Impl& s = *mImpl;
    NEON_CHECK(s.state != nullptr, "Skeleton::sequence must be called before debugMutateGraph()");
    // Copy-on-write: outstanding CompiledSchedule handles keep the old
    // state (and become superseded); the mutation never reaches the cache.
    auto next = std::make_shared<ScheduleState>(*s.state);
    fn(next->graph);
    next->tasks = scheduleGraph(next->graph, next->options.maxStreams, &next->nStreams);
    next->levelCount = levelCountOf(next->graph);
    next->cacheHit = false;
    next->metaCache.reset();
    prefetchStreams(s.backend, next->streams, next->nStreams);
    s.state = std::move(next);
}

void Skeleton::debugMutateTasks(const std::function<void(std::vector<Task>&)>& fn)
{
    Impl& s = *mImpl;
    NEON_CHECK(s.state != nullptr, "Skeleton::sequence must be called before debugMutateTasks()");
    auto next = std::make_shared<ScheduleState>(*s.state);
    fn(next->tasks);
    s.state = std::move(next);
}

void Skeleton::debugUsePerSkeletonBarrier(bool on)
{
    mImpl->perSkeletonBarrier = on;
    mImpl->localBarrier = nullptr;
}

void Skeleton::run()
{
    run(RunScope{});
}

void Skeleton::run(const RunScope& scope)
{
    Impl& s = *mImpl;
    NEON_CHECK(s.state != nullptr, "Skeleton::sequence must be called before run()");
    NEON_CHECK(scope.streamBase >= 0, "Skeleton::run: streamBase must be non-negative");
    NEON_CHECK(s.state->geomEpoch == s.backend.geometryEpoch(),
               "Skeleton::run: partition geometry changed since sequence() (epoch " +
                   std::to_string(s.state->geomEpoch) + " -> " +
                   std::to_string(s.backend.geometryEpoch()) +
                   "); rebuild the containers and re-sequence()");
    const int nDev = s.backend.devCount();

    // Open/extend the observability run window and stamp every op this run
    // enqueues with its run id (and, per task, its graph-node id) so the
    // trace can be sliced per window and attributed per container.
    sys::Trace& trace = s.backend.engine().trace();
    const int   runId = trace.nextRunId();
    if (s.windowClosed) {
        s.windowFirst = runId;
        s.windowClosed = false;
    }
    s.windowLast = runId;
    trace.setContext({-1, runId, scope.jobId});

    // While the schedule log records, attribute this run's ops to the graph
    // that issued them so the race detector can attach read/write sets.
    sys::ScheduleLog& slog = s.backend.engine().scheduleLog();
    if (slog.enabled()) {
        if (s.state->metaCache == nullptr) {
            s.state->metaCache = analysis::metaMapFor(s.state->graph, nDev);
        }
        slog.registerRunMeta(runId, s.state->metaCache);
    }

    try {
        runBody(runId, scope);
    } catch (const RuntimeError& e) {
        s.windowClosed = true;
        rethrowEnriched(s.backend, s.state->graph, e);
    }
}

sys::EventPtr Skeleton::lastRunTail() const
{
    return mImpl->lastTail;
}

void Skeleton::runBody(int runId, const RunScope& scope)
{
    Impl& s = *mImpl;
    // Pin the state: a container-launched host function could in principle
    // re-sequence() this skeleton mid-run.
    const std::shared_ptr<ScheduleState> statePtr = s.state;
    ScheduleState&                       st = *statePtr;
    const int                            nDev = s.backend.devCount();
    sys::Engine&                         engine = s.backend.engine();
    sys::Trace&                          trace = engine.trace();
    // Per-task trace contexts only matter while something records
    // attribution (same condition as Stream::enqueue); setContext takes a
    // mutex, so skip it on the fast path.
    const bool attributing =
        trace.enabled() || engine.scheduleLog().enabled() || engine.faults().active();

    // Leased runs resolve their stream block here instead of using the
    // base-0 pointers prefetched at sequence() time; the extra mutex hops
    // only hit the service dispatch path.
    std::vector<sys::Stream*> leasedStreams;
    if (scope.streamBase != 0) {
        leasedStreams.resize(static_cast<size_t>(nDev) * static_cast<size_t>(st.nStreams));
        for (int d = 0; d < nDev; ++d) {
            for (int stIdx = 0; stIdx < st.nStreams; ++stIdx) {
                leasedStreams[static_cast<size_t>(d * st.nStreams + stIdx)] =
                    &s.backend.stream(d, scope.streamBase + stIdx);
            }
        }
    }
    const std::vector<sys::Stream*>& streamTab =
        scope.streamBase != 0 ? leasedStreams : st.streams;
    auto streamAt = [&](int d, int idx) -> sys::Stream& {
        return *streamTab[static_cast<size_t>(d * st.nStreams + idx)];
    };

    // Inter-run ordering: successive runs touching the same data objects
    // chain through the backend's per-uid event tails (writers wait the
    // last write and every read since it; readers wait the last write).
    // Runs over disjoint uid sets share no events and overlap freely —
    // that is what lets independent service jobs fill each other's
    // transfer gaps. The chains live on the *backend*, not this skeleton:
    // alternating skeletons (e.g. the even/odd steps of a ping-pong LBM)
    // are chained too.
    if (s.perSkeletonBarrier) {
        // Test hook: the historical per-skeleton barrier (misses the
        // cross-skeleton chain; the race detector must catch that).
        if (s.localBarrier != nullptr) {
            for (int d = 0; d < nDev; ++d) {
                for (int stIdx = 0; stIdx < st.nStreams; ++stIdx) {
                    if (d == 0 && stIdx == 0) {
                        continue;  // FIFO order on the barrier's own stream
                    }
                    streamAt(d, stIdx).wait(s.localBarrier);
                }
            }
        }
    } else if (scope.chainData) {
        const std::vector<sys::EventPtr> deps =
            s.backend.dataBarriers().acquire(st.readUids, st.writeUids);
        for (const sys::EventPtr& dep : deps) {
            // Every stream of this run waits: the dep may have been
            // recorded on any stream of any previous run (no FIFO shortcut
            // is safe across leases).
            for (int d = 0; d < nDev; ++d) {
                for (int stIdx = 0; stIdx < st.nStreams; ++stIdx) {
                    streamAt(d, stIdx).wait(dep);
                }
            }
        }
    }

    // Fresh completion events per run (cheap; safe for the threaded
    // engine). Flat per-node table: node ids are dense.
    std::vector<set::EventSet> completion(static_cast<size_t>(st.graph.nodeCount()));
    for (const Task& t : st.tasks) {
        if (st.graph.node(t.nodeId).needsEvent) {
            completion[static_cast<size_t>(t.nodeId)] = set::EventSet::make(nDev);
        }
    }

    for (const Task& t : st.tasks) {
        const GraphNode& n = st.graph.node(t.nodeId);
        if (attributing) {
            trace.setContext({t.nodeId, runId, scope.jobId});
        }
        for (int d = 0; d < nDev; ++d) {
            sys::Stream& stream = streamAt(d, t.stream);
            for (const auto& w : t.waits) {
                const set::EventSet& ev = completion[static_cast<size_t>(w.parent)];
                switch (w.scope) {
                    case WaitScope::SameDev:
                        stream.wait(ev[d]);
                        break;
                    case WaitScope::Neighbours:
                        for (int dd = d - 1; dd <= d + 1; ++dd) {
                            if (dd >= 0 && dd < nDev) {
                                stream.wait(ev[dd]);
                            }
                        }
                        break;
                    case WaitScope::Root:
                        stream.wait(ev[0]);
                        break;
                    case WaitScope::All:
                        for (int dd = 0; dd < nDev; ++dd) {
                            stream.wait(ev[dd]);
                        }
                        break;
                }
            }
            n.container.launch(d, stream, n.view, st.options.sanitize);
            if (n.needsEvent) {
                stream.record(completion[static_cast<size_t>(t.nodeId)][d]);
            }
        }
    }

    // Record the tail barrier: the run's stream (0, base) gathers every
    // other stream's tail event and records one barrier whose virtual
    // timestamp is the run's completion time.
    if (attributing) {
        trace.setContext({-1, runId, scope.jobId});
    }
    set::EventSet tails = set::EventSet::make(nDev * st.nStreams);
    for (int d = 0; d < nDev; ++d) {
        for (int stIdx = 0; stIdx < st.nStreams; ++stIdx) {
            if (d == 0 && stIdx == 0) {
                continue;
            }
            const int slot = d * st.nStreams + stIdx;
            streamAt(d, stIdx).record(tails[slot]);
            streamAt(0, 0).wait(tails[slot]);
        }
    }
    auto barrier = std::make_shared<sys::Event>();
    streamAt(0, 0).record(barrier);
    if (s.perSkeletonBarrier) {
        s.localBarrier = barrier;
    } else if (scope.chainData) {
        s.backend.dataBarriers().publish(st.readUids, st.writeUids, barrier);
    }
    s.lastTail = std::move(barrier);
    trace.clearContext();
}

void Skeleton::sync()
{
    try {
        mImpl->backend.sync();
    } catch (const RuntimeError& e) {
        mImpl->windowClosed = true;
        static const Graph kEmpty;
        rethrowEnriched(mImpl->backend, mImpl->state ? mImpl->state->graph : kEmpty, e);
    }
    mImpl->windowClosed = true;
}

const Graph& Skeleton::graph() const
{
    static const Graph kEmpty;
    return mImpl->state ? mImpl->state->graph : kEmpty;
}

const std::vector<Task>& Skeleton::taskList() const
{
    static const std::vector<Task> kEmpty;
    return mImpl->state ? mImpl->state->tasks : kEmpty;
}

int Skeleton::streamCount() const
{
    return mImpl->state ? mImpl->state->nStreams : 1;
}

const std::string& Skeleton::name() const
{
    static const std::string kDefault = "app";
    return mImpl->state ? mImpl->state->name : kDefault;
}

set::Backend& Skeleton::backend()
{
    return mImpl->backend;
}

CompiledSchedule Skeleton::compiled() const
{
    NEON_CHECK(mImpl->state != nullptr, "Skeleton::sequence must be called before compiled()");
    CompiledSchedule handle;
    handle.mImpl = std::make_shared<CompiledSchedule::Impl>(Skeleton(*this), mImpl->state);
    return handle;
}

std::pair<int, int> Skeleton::runWindow() const
{
    return {mImpl->windowFirst, mImpl->windowLast};
}

ExecutionReport Skeleton::executionReport() const
{
    const Impl& s = *mImpl;
    if (s.windowFirst < 0) {
        return ExecutionReport::fromEntries({}, s.backend.devCount());
    }
    const auto entries =
        s.backend.engine().trace().entriesForRuns(s.windowFirst, s.windowLast);
    return ExecutionReport::fromEntries(entries, s.backend.devCount());
}

std::string Skeleton::describe() const
{
    const Impl& s = *mImpl;
    NEON_CHECK(s.state != nullptr, "Skeleton::sequence must be called before describe()");
    const ScheduleState& st = *s.state;
    return describeSchedule(st.name, s.backend.toString(), st.options.occ, st.nStreams, st.graph,
                            st.tasks);
}

// --- CompiledSchedule ------------------------------------------------------

bool CompiledSchedule::current() const
{
    return mImpl != nullptr && mImpl->skeleton.mImpl->state == mImpl->state;
}

uint64_t CompiledSchedule::structuralHash() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->hash;
}

bool CompiledSchedule::cacheHit() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->cacheHit;
}

const std::string& CompiledSchedule::name() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->name;
}

int CompiledSchedule::nodeCount() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->graph.aliveCount();
}

int CompiledSchedule::levelCount() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->levelCount;
}

int CompiledSchedule::streamCount() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->nStreams;
}

int CompiledSchedule::taskCount() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return static_cast<int>(mImpl->state->tasks.size());
}

const Graph& CompiledSchedule::graph() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->graph;
}

const std::vector<Task>& CompiledSchedule::taskList() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    return mImpl->state->tasks;
}

void CompiledSchedule::run()
{
    run(RunScope{});
}

void CompiledSchedule::run(const RunScope& scope)
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    NEON_CHECK(current(),
               "CompiledSchedule::run: superseded by a later sequence()/mutation on the "
               "owning skeleton");
    mImpl->skeleton.run(scope);
}

void CompiledSchedule::sync()
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    mImpl->skeleton.sync();
}

analysis::AnalysisReport CompiledSchedule::lint() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    const Skeleton::ScheduleState& st = *mImpl->state;
    return analysis::lintSchedule(st.graph, st.tasks, st.nStreams,
                                  mImpl->skeleton.mImpl->backend.devCount());
}

std::string CompiledSchedule::describe() const
{
    NEON_CHECK(mImpl != nullptr, "CompiledSchedule: empty handle (default-constructed)");
    const Skeleton::ScheduleState& st = *mImpl->state;
    return describeSchedule(st.name, mImpl->skeleton.mImpl->backend.toString(), st.options.occ,
                            st.nStreams, st.graph, st.tasks);
}

}  // namespace neon::skeleton
