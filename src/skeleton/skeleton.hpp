#pragma once
// Skeleton: Neon's orchestrator (paper §V). From a user-defined sequence of
// Containers it
//   1. extracts the data dependency graph (§V-A),
//   2. builds the multi-GPU graph: halo-update nodes for incoherent stencil
//      reads, reduce-combine nodes, transitive reduction, OCC transforms
//      with scheduling hints (§V-B),
//   3. schedules the graph onto streams and events with a greedy BFS
//      strategy (§V-C),
// and executes the resulting ordered task list on every run().
//
// sequence() memoizes the whole pipeline through a structural schedule
// cache (skeleton/schedule_cache.hpp, docs/performance.md): re-sequencing a
// structurally identical container list replays a stored recipe instead of
// recompiling, and returns a CompiledSchedule handle carrying the key hash
// and hit/miss provenance.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hpp"
#include "core/error.hpp"
#include "core/types.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"
#include "skeleton/graph.hpp"
#include "sys/execution_report.hpp"

namespace neon::skeleton {

/// Legacy scheduling options for the two-argument sequence() overload.
/// New code should pass SequenceOptions instead:
///
///   skl.sequence(ops, SequenceOptions().withName("cg").withOcc(Occ::STANDARD));
struct Options
{
    Occ occ = Occ::NONE;
    /// Cap on concurrent streams per device (level width beyond this wraps).
    int maxStreams = 8;

    Options() = default;

    Options& withOcc(Occ o)
    {
        occ = o;
        return *this;
    }
    Options& withMaxStreams(int n)
    {
        NEON_CHECK(n >= 1, "Options: maxStreams must be >= 1");
        maxStreams = n;
        return *this;
    }
};

/// Everything sequence() takes besides the containers, configured fluently:
///
///   SequenceOptions().withName("jacobi").withOcc(Occ::EXTENDED).withMaxStreams(4)
struct SequenceOptions
{
    std::string name = "app";
    Occ         occ = Occ::NONE;
    /// Cap on concurrent streams per device (level width beyond this wraps).
    int maxStreams = 8;
    /// Consult/populate the process-wide schedule compilation cache. Off
    /// forces a full recompile (benchmarking, debugging the pipeline).
    bool cache = true;
    /// Run every launch through the access-sanitizer trampolines
    /// (set/sanitize.hpp): kernels observe their own reads/writes and
    /// AccessSanitizer::diff() can be checked after sync(). Also forced on
    /// by NEON_SANITIZE=1 (which additionally fails the process with exit
    /// code 4 on violations).
    bool sanitize = false;

    SequenceOptions& withName(std::string n)
    {
        name = std::move(n);
        return *this;
    }
    SequenceOptions& withOcc(Occ o)
    {
        occ = o;
        return *this;
    }
    SequenceOptions& withMaxStreams(int n)
    {
        NEON_CHECK(n >= 1, "SequenceOptions: maxStreams must be >= 1");
        maxStreams = n;
        return *this;
    }
    SequenceOptions& withCache(bool on)
    {
        cache = on;
        return *this;
    }
    SequenceOptions& withSanitize(bool on = true)
    {
        sanitize = on;
        return *this;
    }
};

class Skeleton;

/// How much Skeleton::validate() checks. Static is the PR 3 graph lint
/// (pure, no execution). Deep additionally executes the pipeline once with
/// sanitizer-instrumented kernels and diffs what they actually did against
/// their declarations — it therefore advances field state like any run().
enum class ValidateMode : uint8_t
{
    Static,
    Deep,
};

/// Per-run execution scope: where a run's streams live and which service
/// job it belongs to. Default-constructed == the classic single-tenant
/// behavior (streams 0..N-1, no job attribution, data-chained).
struct RunScope
{
    /// First backend stream index the run enqueues on; task stream s maps
    /// to backend stream streamBase + s. Obtain disjoint bases for
    /// concurrent jobs via Backend::leaseStreams.
    int streamBase = 0;
    /// neon::service job id stamped into trace entries and RuntimeErrors
    /// (-1 outside a service).
    int jobId = -1;
    /// Order this run against earlier runs touching the same data objects
    /// through Backend::dataBarriers(), and publish its tail for later
    /// runs. Disable only in race-detector tests that want the unordered
    /// behavior on purpose.
    bool chainData = true;
};

/// Handle onto one compiled schedule: the value sequence() returns. It
/// snapshots the (graph, task list, stream count) the compilation produced
/// plus its cache provenance, and can re-run, lint and describe that exact
/// schedule. A later sequence()/debugMutate* on the owning skeleton
/// supersedes the handle: introspection and lint() keep working on the
/// snapshot, run() refuses (the engine executes only the active schedule).
class CompiledSchedule
{
   public:
    CompiledSchedule() = default;

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }
    /// Is this still the owning skeleton's active schedule?
    [[nodiscard]] bool current() const;

    // --- provenance --------------------------------------------------------
    /// 64-bit digest of the structural cache key.
    [[nodiscard]] uint64_t structuralHash() const;
    /// True when the compilation was served from the schedule cache.
    [[nodiscard]] bool cacheHit() const;

    // --- schedule stats ----------------------------------------------------
    [[nodiscard]] const std::string& name() const;
    [[nodiscard]] int                nodeCount() const;  ///< alive graph nodes
    [[nodiscard]] int                levelCount() const;
    [[nodiscard]] int                streamCount() const;
    [[nodiscard]] int                taskCount() const;
    [[nodiscard]] const Graph&       graph() const;
    [[nodiscard]] const std::vector<Task>& taskList() const;

    /// Enqueue one execution (throws NeonException if superseded).
    void run();
    /// Enqueue one execution under an explicit scope (leased streams / job
    /// attribution — the neon::service dispatch path).
    void run(const RunScope& scope);
    /// Block until every enqueued run completed (delegates to the skeleton).
    void sync();

    /// Lint this schedule snapshot (works even when superseded).
    [[nodiscard]] analysis::AnalysisReport lint() const;
    /// Human-readable summary of graph, schedule and task order.
    [[nodiscard]] std::string describe() const;

   private:
    friend class Skeleton;
    struct Impl;
    std::shared_ptr<Impl> mImpl;
};

class Skeleton
{
   public:
    explicit Skeleton(set::Backend backend);

    /// Define the application as an ordered sequence of Containers
    /// (Listing 3). May be called again to redefine the skeleton. Returns a
    /// CompiledSchedule handle over the (possibly cache-replayed) schedule.
    CompiledSchedule sequence(std::vector<set::Container> containers, SequenceOptions options = {});

    /// Legacy overload (name + Options); delegates to the SequenceOptions
    /// form. Kept source-compatible for one release.
    CompiledSchedule sequence(std::vector<set::Container> containers, std::string name,
                              Options options = {});

    /// Enqueue one execution of the scheduled task list (asynchronous).
    /// Under fault injection a RuntimeError aborts the run cleanly: the
    /// engine is quiesced, the error is rethrown enriched with the graph
    /// node's label and the last consistently completed run, and fields
    /// hold exactly the writes of completed runs (docs/robustness.md).
    void run();
    /// run() under an explicit scope: leased stream base, service job
    /// attribution, optional opt-out of inter-run data chaining.
    void run(const RunScope& scope);

    /// Tail event of the most recent run() issued through this skeleton:
    /// recorded after every stream of that run drained, so its virtual
    /// timestamp is the run's completion time (null before the first run).
    [[nodiscard]] sys::EventPtr lastRunTail() const;

    /// Block the host until every enqueued run completed. Rethrows a
    /// pending RuntimeError with the same enrichment as run().
    void sync();

    // --- introspection (tests, reports, Fig. 1 timeline example) ----------
    [[nodiscard]] const Graph&             graph() const;
    [[nodiscard]] const std::vector<Task>& taskList() const;
    [[nodiscard]] int                      streamCount() const;
    [[nodiscard]] const std::string&       name() const;
    [[nodiscard]] set::Backend&            backend();
    /// Handle onto the active schedule (sequence() must have been called).
    [[nodiscard]] CompiledSchedule compiled() const;
    /// Human-readable summary of graph, schedule and task order.
    [[nodiscard]] std::string describe() const;

    // --- execution window observability -----------------------------------
    // Every run() opens (or extends) a run window that sync() closes; trace
    // entries are stamped with the window's run ids and the launching graph
    // node, so the report can attribute time per container.
    /// Run-id range [first, last] of the current/most recent window; {-1,-1}
    /// before the first run().
    [[nodiscard]] std::pair<int, int> runWindow() const;
    /// ExecutionReport over the most recent run()/sync() window. Requires
    /// trace recording (backend().profiler().enable()) around the runs.
    [[nodiscard]] ExecutionReport executionReport() const;

    // --- static analysis (docs/analysis.md) --------------------------------
    /// Lint the built graph and schedule against the containers' access
    /// records: dependency coverage, edge justification, halo freshness,
    /// level/stream/task-order consistency and event-wait completeness.
    /// Clean report == the schedule provably orders every conflict.
    [[nodiscard]] analysis::AnalysisReport validate() const;

    /// validate(Static) == validate(). validate(Deep) merges the static
    /// lint with an access-sanitizer pass: the task list runs once with
    /// instrumented kernels (observable side effects on field state, like
    /// any run), then observed accesses are diffed against the declared
    /// ones for exactly this graph's containers (docs/analysis.md).
    [[nodiscard]] analysis::AnalysisReport validate(ValidateMode mode);

    // --- fault-injection hooks (tests/analysis; not part of the API) -------
    /// Mutate the graph (drop an edge, kill a node, ...) and reschedule, as
    /// if the pipeline itself had produced the mutated result. Supersedes
    /// outstanding CompiledSchedule handles; never touches the cache.
    void debugMutateGraph(const std::function<void(Graph&)>& fn);
    /// Mutate the scheduled task list (no rescheduling). Supersedes
    /// outstanding CompiledSchedule handles.
    void debugMutateTasks(const std::function<void(std::vector<Task>&)>& fn);
    /// Revert to the historical per-skeleton inter-run barrier (misses the
    /// cross-skeleton dependency chain; the race detector must catch it).
    void debugUsePerSkeletonBarrier(bool on);

   private:
    friend class CompiledSchedule;
    struct ScheduleState;
    void runBody(int runId, const RunScope& scope);

    struct Impl;
    std::shared_ptr<Impl> mImpl;
};

// --- pipeline stages, exposed for unit testing ----------------------------

/// Stage 1+2a: dependency graph with halo-update and reduce-combine nodes.
/// Every node carries a NodeOrigin back into `containers` (cache replay).
Graph buildGraph(const std::vector<set::Container>& containers, int devCount);

/// Stage 2b: OCC transform (paper §V-B). Returns ids of nodes split.
void applyOcc(Graph& graph, Occ occ, int devCount);

/// Stage 3: BFS level / stream assignment and ordered task list (§V-C).
std::vector<Task> scheduleGraph(Graph& graph, int maxStreams, int* streamCountOut);

}  // namespace neon::skeleton
