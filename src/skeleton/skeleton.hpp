#pragma once
// Skeleton: Neon's orchestrator (paper §V). From a user-defined sequence of
// Containers it
//   1. extracts the data dependency graph (§V-A),
//   2. builds the multi-GPU graph: halo-update nodes for incoherent stencil
//      reads, reduce-combine nodes, transitive reduction, OCC transforms
//      with scheduling hints (§V-B),
//   3. schedules the graph onto streams and events with a greedy BFS
//      strategy (§V-C),
// and executes the resulting ordered task list on every run().

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hpp"
#include "core/error.hpp"
#include "core/types.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"
#include "skeleton/graph.hpp"
#include "sys/execution_report.hpp"

namespace neon::skeleton {

/// Skeleton scheduling options, configured fluently:
///
///   Options().withOcc(Occ::STANDARD).withMaxStreams(4)
struct Options
{
    Occ occ = Occ::NONE;
    /// Cap on concurrent streams per device (level width beyond this wraps).
    int maxStreams = 8;

    Options() = default;
    [[deprecated("use Options().withOcc(occ)")]] explicit Options(Occ o) : occ(o) {}

    Options& withOcc(Occ o)
    {
        occ = o;
        return *this;
    }
    Options& withMaxStreams(int n)
    {
        NEON_CHECK(n >= 1, "Options: maxStreams must be >= 1");
        maxStreams = n;
        return *this;
    }
};

/// One entry of the scheduler's ordered task list (paper §V-C).
struct Task
{
    int nodeId = -1;
    int stream = 0;
    /// Parents whose completion events this task waits on (with scope).
    struct Wait
    {
        int       parent = -1;
        WaitScope scope = WaitScope::SameDev;
    };
    std::vector<Wait> waits;
};

class Skeleton
{
   public:
    explicit Skeleton(set::Backend backend);

    /// Define the application as an ordered sequence of Containers
    /// (Listing 3). May be called again to redefine the skeleton.
    void sequence(std::vector<set::Container> containers, std::string name = "app",
                  Options options = {});

    /// Enqueue one execution of the scheduled task list (asynchronous).
    /// Under fault injection a RuntimeError aborts the run cleanly: the
    /// engine is quiesced, the error is rethrown enriched with the graph
    /// node's label and the last consistently completed run, and fields
    /// hold exactly the writes of completed runs (docs/robustness.md).
    void run();

    /// Block the host until every enqueued run completed. Rethrows a
    /// pending RuntimeError with the same enrichment as run().
    void sync();

    // --- introspection (tests, reports, Fig. 1 timeline example) ----------
    [[nodiscard]] const Graph&             graph() const;
    [[nodiscard]] const std::vector<Task>& taskList() const;
    [[nodiscard]] int                      streamCount() const;
    [[nodiscard]] const std::string&       name() const;
    [[nodiscard]] set::Backend&            backend();
    /// Human-readable summary of graph, schedule and task order.
    [[nodiscard]] std::string describe() const;
    [[deprecated("use describe() (summary) or executionReport() (metrics)")]] [[nodiscard]]
    std::string report() const;

    // --- execution window observability -----------------------------------
    // Every run() opens (or extends) a run window that sync() closes; trace
    // entries are stamped with the window's run ids and the launching graph
    // node, so the report can attribute time per container.
    /// Run-id range [first, last] of the current/most recent window; {-1,-1}
    /// before the first run().
    [[nodiscard]] std::pair<int, int> runWindow() const;
    /// ExecutionReport over the most recent run()/sync() window. Requires
    /// trace recording (backend().profiler().enable()) around the runs.
    [[nodiscard]] ExecutionReport executionReport() const;

    // --- static analysis (docs/analysis.md) --------------------------------
    /// Lint the built graph and schedule against the containers' access
    /// records: dependency coverage, edge justification, halo freshness,
    /// level/stream/task-order consistency and event-wait completeness.
    /// Clean report == the schedule provably orders every conflict.
    [[nodiscard]] analysis::AnalysisReport validate() const;

    // --- fault-injection hooks (tests/analysis; not part of the API) -------
    /// Mutate the graph (drop an edge, kill a node, ...) and reschedule, as
    /// if the pipeline itself had produced the mutated result.
    void debugMutateGraph(const std::function<void(Graph&)>& fn);
    /// Mutate the scheduled task list in place (no rescheduling).
    void debugMutateTasks(const std::function<void(std::vector<Task>&)>& fn);
    /// Revert to the historical per-skeleton inter-run barrier (misses the
    /// cross-skeleton dependency chain; the race detector must catch it).
    void debugUsePerSkeletonBarrier(bool on);

   private:
    void runBody(int runId);

    struct Impl;
    std::shared_ptr<Impl> mImpl;
};

// --- pipeline stages, exposed for unit testing ----------------------------

/// Stage 1+2a: dependency graph with halo-update and reduce-combine nodes.
Graph buildGraph(const std::vector<set::Container>& containers, int devCount);

/// Stage 2b: OCC transform (paper §V-B). Returns ids of nodes split.
void applyOcc(Graph& graph, Occ occ, int devCount);

/// Stage 3: BFS level / stream assignment and ordered task list (§V-C).
std::vector<Task> scheduleGraph(Graph& graph, int maxStreams, int* streamCountOut);

}  // namespace neon::skeleton
