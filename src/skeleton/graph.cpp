#include "skeleton/graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "core/error.hpp"

namespace neon::skeleton {

std::string to_string(EdgeKind k)
{
    switch (k) {
        case EdgeKind::RaW: return "RaW";
        case EdgeKind::WaR: return "WaR";
        case EdgeKind::WaW: return "WaW";
        case EdgeKind::Hint: return "hint";
    }
    return "?";
}

std::string to_string(WaitScope s)
{
    switch (s) {
        case WaitScope::SameDev: return "sameDev";
        case WaitScope::Neighbours: return "neighbours";
        case WaitScope::Root: return "root";
        case WaitScope::All: return "all";
    }
    return "?";
}

std::string GraphNode::label() const
{
    std::string l = container.name();
    if (view != DataView::STANDARD) {
        l += view == DataView::INTERNAL ? ".int" : ".bdr";
    }
    return l;
}

void Graph::reserve(int nodes, int edges)
{
    mNodes.reserve(static_cast<size_t>(nodes));
    mEdges.reserve(static_cast<size_t>(edges));
    mOut.reserve(static_cast<size_t>(nodes));
    mIn.reserve(static_cast<size_t>(nodes));
}

int Graph::addNode(set::Container container, DataView view)
{
    GraphNode n;
    n.id = static_cast<int>(mNodes.size());
    n.container = std::move(container);
    n.view = view;
    mNodes.push_back(std::move(n));
    mOut.emplace_back();
    mIn.emplace_back();
    return mNodes.back().id;
}

void Graph::addEdge(int from, int to, EdgeKind kind)
{
    NEON_CHECK(from != to, "self edges are not allowed");
    NEON_CHECK(node(from).alive && node(to).alive, "addEdge: both endpoints must be alive");
    // Deduplicate: one data edge per pair is enough (keep the first kind);
    // a hint on top of a data edge is redundant.
    if (kind == EdgeKind::Hint) {
        if (hasEdge(from, to, EdgeKind::Hint) || hasDataEdge(from, to)) {
            return;
        }
    } else if (hasDataEdge(from, to)) {
        return;
    }
    restoreEdge({from, to, kind});
}

void Graph::restoreEdge(const GraphEdge& edge)
{
    const int idx = static_cast<int>(mEdges.size());
    mEdges.push_back(edge);
    mOut[static_cast<size_t>(edge.from)].push_back(idx);
    mIn[static_cast<size_t>(edge.to)].push_back(idx);
}

void Graph::rebuildAdjacency()
{
    for (auto& v : mOut) {
        v.clear();
    }
    for (auto& v : mIn) {
        v.clear();
    }
    for (size_t i = 0; i < mEdges.size(); ++i) {
        mOut[static_cast<size_t>(mEdges[i].from)].push_back(static_cast<int>(i));
        mIn[static_cast<size_t>(mEdges[i].to)].push_back(static_cast<int>(i));
    }
}

void Graph::removeEdges(int from, int to)
{
    std::erase_if(mEdges, [&](const GraphEdge& e) { return e.from == from && e.to == to; });
    rebuildAdjacency();
}

void Graph::killNode(int id)
{
    GraphNode& n = node(id);
    n.alive = false;
    // Clear any scheduling state: a dead node must not contribute to level
    // widths or stream counts if it dies after a schedule was computed.
    n.level = -1;
    n.stream = -1;
    n.needsEvent = false;
    std::erase_if(mEdges, [&](const GraphEdge& e) { return e.from == id || e.to == id; });
    rebuildAdjacency();
}

GraphNode& Graph::node(int id)
{
    return mNodes[static_cast<size_t>(id)];
}

const GraphNode& Graph::node(int id) const
{
    return mNodes[static_cast<size_t>(id)];
}

int Graph::aliveCount() const
{
    return static_cast<int>(
        std::count_if(mNodes.begin(), mNodes.end(), [](const auto& n) { return n.alive; }));
}

bool Graph::hasDataEdge(int from, int to) const
{
    const auto& out = mOut[static_cast<size_t>(from)];
    return std::any_of(out.begin(), out.end(), [&](int i) {
        const GraphEdge& e = mEdges[static_cast<size_t>(i)];
        return e.to == to && e.kind != EdgeKind::Hint;
    });
}

bool Graph::hasEdge(int from, int to, EdgeKind kind) const
{
    const auto& out = mOut[static_cast<size_t>(from)];
    return std::any_of(out.begin(), out.end(), [&](int i) {
        const GraphEdge& e = mEdges[static_cast<size_t>(i)];
        return e.to == to && e.kind == kind;
    });
}

EdgeKind Graph::dataEdgeKind(int from, int to) const
{
    for (int i : mOut[static_cast<size_t>(from)]) {
        const GraphEdge& e = mEdges[static_cast<size_t>(i)];
        if (e.to == to && e.kind != EdgeKind::Hint) {
            return e.kind;
        }
    }
    throw InternalError("dataEdgeKind: no data edge between the given nodes");
}

std::vector<int> Graph::dataParents(int id) const
{
    return parents(id, false);
}

std::vector<int> Graph::dataChildren(int id) const
{
    return children(id, false);
}

std::vector<int> Graph::parents(int id, bool includeHints) const
{
    std::vector<int> out;
    out.reserve(mIn[static_cast<size_t>(id)].size());
    for (int i : mIn[static_cast<size_t>(id)]) {
        const GraphEdge& e = mEdges[static_cast<size_t>(i)];
        if ((includeHints || e.kind != EdgeKind::Hint) &&
            std::find(out.begin(), out.end(), e.from) == out.end()) {
            out.push_back(e.from);
        }
    }
    return out;
}

std::vector<int> Graph::children(int id, bool includeHints) const
{
    std::vector<int> out;
    out.reserve(mOut[static_cast<size_t>(id)].size());
    for (int i : mOut[static_cast<size_t>(id)]) {
        const GraphEdge& e = mEdges[static_cast<size_t>(i)];
        if ((includeHints || e.kind != EdgeKind::Hint) &&
            std::find(out.begin(), out.end(), e.to) == out.end()) {
            out.push_back(e.to);
        }
    }
    return out;
}

WaitScope Graph::waitScope(int from, int to) const
{
    const auto& p = node(from);
    const auto& c = node(to);
    if (c.kind() == set::Container::Kind::ScalarOp) {
        return WaitScope::All;  // e.g. reduce combine reads every partial
    }
    if (p.kind() == set::Container::Kind::ScalarOp) {
        return WaitScope::Root;  // scalar work happens on device 0's stream
    }
    if (p.kind() == set::Container::Kind::Halo ||
        c.kind() == set::Container::Kind::Halo) {
        // A halo node touches the neighbours' memory: transfers into d come
        // from d-1/d+1 (parent case), and a halo overwriting halos that
        // d-1/d+1 were reading must wait for those readers (child case).
        return WaitScope::Neighbours;
    }
    return WaitScope::SameDev;
}

std::vector<std::vector<int>> Graph::bfsLevels(bool includeHints) const
{
    std::vector<int> pending(mNodes.size(), 0);
    int              alive = 0;
    for (const auto& n : mNodes) {
        if (!n.alive) {
            continue;
        }
        ++alive;
        pending[static_cast<size_t>(n.id)] = static_cast<int>(parents(n.id, includeHints).size());
    }
    std::vector<std::vector<int>> levels;
    std::vector<int>              frontier;
    for (const auto& n : mNodes) {
        if (n.alive && pending[static_cast<size_t>(n.id)] == 0) {
            frontier.push_back(n.id);
        }
    }
    int visited = 0;
    while (!frontier.empty()) {
        levels.push_back(frontier);
        visited += static_cast<int>(frontier.size());
        std::vector<int> next;
        for (int id : frontier) {
            for (int c : children(id, includeHints)) {
                if (--pending[static_cast<size_t>(c)] == 0) {
                    next.push_back(c);
                }
            }
        }
        frontier = std::move(next);
    }
    NEON_CHECK(visited == alive, "application graph contains a cycle");
    return levels;
}

void Graph::transitiveReduce()
{
    // For each data edge (u, v): if v is reachable from u through another
    // data path, the edge is redundant.
    auto reachableAvoidingDirect = [&](int u, int v) {
        std::unordered_set<int> seen;
        std::queue<int>         q;
        for (int c : dataChildren(u)) {
            if (c != v) {
                q.push(c);
            }
        }
        while (!q.empty()) {
            int x = q.front();
            q.pop();
            if (x == v) {
                return true;
            }
            if (!seen.insert(x).second) {
                continue;
            }
            for (int c : dataChildren(x)) {
                q.push(c);
            }
        }
        return false;
    };

    std::vector<GraphEdge> keep;
    for (const auto& e : mEdges) {
        if (e.kind == EdgeKind::Hint || !reachableAvoidingDirect(e.from, e.to)) {
            keep.push_back(e);
        }
    }
    // On a DAG, checking every edge against the *original* graph yields the
    // unique minimal transitive reduction: an edge covered by a longer path
    // stays covered after all such edges are removed (induction on
    // topological distance).
    mEdges.swap(keep);
    rebuildAdjacency();
}

std::string Graph::toDot() const
{
    std::ostringstream os;
    os << "digraph app {\n  rankdir=TB;\n";
    for (const auto& n : mNodes) {
        if (!n.alive) {
            continue;
        }
        os << "  n" << n.id << " [label=\"" << n.label() << "\\n"
           << neon::to_string(n.pattern()) << "\"];\n";
    }
    for (const auto& e : mEdges) {
        os << "  n" << e.from << " -> n" << e.to << " [label=\"" << to_string(e.kind) << "\""
           << (e.kind == EdgeKind::Hint ? " style=dashed color=orange" : "") << "];\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace neon::skeleton
