#pragma once
// The Domain-level grid/field contract (paper §IV-C), stated as C++20
// concepts instead of convention. Everything `patterns/`, `solver/` and the
// Skeleton template over a "Grid" or a "Field" is spelled out here, and the
// Set layer enforces it: `Container::factory` static_asserts GridConcept,
// `Loader::load` static_asserts Loadable, and `GridOps::newField`
// static_asserts FieldConcept on the freshly built field type. A new grid
// that compiles against these checks plugs into Skeleton, patterns and
// solvers without touching them (see docs/domain.md: "how to add a grid";
// bGrid is the worked example).
//
// This header sits logically in the Domain layer but depends only on core/
// and set/access.hpp, so the Set layer may include it without a cycle.

#include <concepts>
#include <cstdint>
#include <memory>
#include <string>

#include "core/index3d.hpp"
#include "core/stencil.hpp"
#include "core/types.hpp"
#include "set/access.hpp"

namespace neon::domain {

/// Anything `Loader::load` accepts: fields, global scalars, future
/// multi-GPU data. `getPartition(dev, view)` must be *view-agnostic*: the
/// span decides which cells a launch visits, the partition merely addresses
/// them, so the same partition object must be returned for every DataView
/// (docs/domain.md §DataView semantics).
template <typename D>
concept Loadable = requires(const D d, int dev, DataView view, Compute compute) {
    { d.uid() } -> std::convertible_to<uint64_t>;
    { d.name() } -> std::convertible_to<std::string>;
    { d.bytesPerItem(compute) } -> std::convertible_to<double>;
    { d.haloOps() } -> std::convertible_to<std::shared_ptr<const set::HaloOps>>;
    { d.getPartition(dev, view) };
};

/// The iteration space of one (device, DataView) pair. `forEach` must visit
/// cells in a deterministic order (the engine-equivalence guarantees build
/// on it) and `count()` must equal the number of visits. The chunk API
/// (domain::Span) partitions the same order into `chunkCount()` fixed
/// pieces — a pure function of the span, never of the thread count — so
/// `forEachChunk(c, n)` for c in [0, n) is exactly forEach.
template <typename S>
concept SpanConcept = requires(const S s, int32_t chunk, int32_t nChunks) {
    { s.count() } -> std::convertible_to<size_t>;
    { s.chunkCount() } -> std::convertible_to<int32_t>;
    s.forEach([](const auto& /*cell*/) {});
    s.forEachChunk(chunk, nChunks, [](const auto& /*cell*/) {});
};

/// The grid contract the Skeleton, patterns and solvers build on.
/// Beyond this signature set, a conforming grid guarantees:
///  - span(dev, STANDARD) is the disjoint union of INTERNAL and BOUNDARY;
///  - cells whose stencil (the union registered at construction) reads
///    another device's data appear only in BOUNDARY;
///  - `newField<T>(name, card, outside, layout)` (templated, hence not
///    expressible in the requires-clause) returns a FieldConcept type, and
///    `newContainer(name, fn)` wraps a loading lambda into a Container;
///  - after a field's HaloOps ran on every device, neighbour reads crossing
///    a partition boundary observe the owning partition's values.
/// The conformance battery in tests/domain/ checks the behavioural half for
/// every registered grid.
template <typename G>
concept GridConcept = requires(const G g, int dev, DataView view, const index_3d p) {
    typename G::Cell;
    typename G::Span;
    requires SpanConcept<typename G::Span>;
    { g.valid() } -> std::convertible_to<bool>;
    { g.devCount() } -> std::convertible_to<int>;
    { g.dim() } -> std::convertible_to<index_3d>;
    { g.stencil() } -> std::convertible_to<Stencil>;
    { g.haloRadius() } -> std::convertible_to<int>;
    { g.backend() };
    { g.span(dev, view) } -> std::convertible_to<typename G::Span>;
    /// STANDARD span backed by host-side structure pointers (identical cell
    /// order to span(dev, STANDARD)); FieldBase::forEachActiveHost walks it.
    { g.hostSpan(dev) } -> std::convertible_to<typename G::Span>;
    { g.isActive(p) } -> std::convertible_to<bool>;
};

/// The field contract: a Loadable with host-mirror access bound to a grid.
/// `forEachActiveHost` visits every (active cell, component) of the host
/// mirror; `hVal`/`hRef` address it by global coordinate (active cells
/// only on sparse grids). Dense grids additionally offer `forEachHost`.
template <typename F>
concept FieldConcept =
    Loadable<F> &&
    requires(const F f, const index_3d g, int c, typename F::Type v) {
        typename F::Type;
        typename F::Partition;
        { f.grid() };
        { f.cardinality() } -> std::convertible_to<int>;
        { f.layout() } -> std::convertible_to<MemLayout>;
        { f.outsideValue() } -> std::convertible_to<typename F::Type>;
        { f.allocatedBytes() } -> std::convertible_to<size_t>;
        { f.hVal(g, c) } -> std::convertible_to<typename F::Type>;
        f.fillHost(v);
        f.updateDev();
        f.updateHost();
        f.forEachActiveHost([](const index_3d&, int, typename F::Type&) {});
    };

}  // namespace neon::domain
