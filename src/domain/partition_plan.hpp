#pragma once
// PartitionPlan: an explicit 1-D decomposition of a grid's partition units
// (z-planes for dGrid/eGrid, block rows for bGrid) over the devices of a
// Backend. The static equal-slab split every grid constructor applies is
// just PartitionPlan::even(); Repartitioner (src/repartition) produces
// measured-rate uneven plans, and Grid::repartition(plan) re-slices a live
// grid — migrating every registered field's cell data through the normal
// transfer path so the move itself is traced, faultable and costed.
//
// The migration geometry rides on one invariant all three grids share:
// every partition enumerates its *owned* units in ascending global order,
// so each device's owned data is one contiguous window of a global unit
// ordering and moving between two plans reduces to window-overlap segments.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace neon::domain {

struct PartitionPlan
{
    /// Partition units owned per device, in device order. The unit is
    /// grid-specific (dGrid/eGrid: z-planes, bGrid: block rows).
    std::vector<int64_t> unitsPerDev;

    [[nodiscard]] bool valid() const { return !unitsPerDev.empty(); }
    [[nodiscard]] int  devCount() const { return static_cast<int>(unitsPerDev.size()); }
    [[nodiscard]] int64_t total() const
    {
        int64_t t = 0;
        for (const int64_t u : unitsPerDev) {
            t += u;
        }
        return t;
    }

    /// The balanced split the grid constructors apply (remainder to the
    /// lowest-ranked devices).
    static PartitionPlan even(int64_t total, int nDev)
    {
        NEON_CHECK(nDev >= 1, "PartitionPlan: device count must be >= 1");
        NEON_CHECK(total >= nDev, "PartitionPlan: fewer units than devices");
        PartitionPlan plan;
        plan.unitsPerDev.assign(static_cast<size_t>(nDev), total / nDev);
        for (int64_t i = 0; i < total % nDev; ++i) {
            ++plan.unitsPerDev[static_cast<size_t>(i)];
        }
        return plan;
    }

    /// Deterministic proportional split: device d gets ~ total * w_d / sum(w),
    /// never below `minPerDev`, using largest-remainder rounding with
    /// device-order tie breaking (bitwise reproducible for equal inputs).
    static PartitionPlan fromWeights(int64_t total, const std::vector<double>& weights,
                                     int64_t minPerDev = 1)
    {
        const int nDev = static_cast<int>(weights.size());
        NEON_CHECK(nDev >= 1, "PartitionPlan: device count must be >= 1");
        NEON_CHECK(minPerDev >= 1, "PartitionPlan: minPerDev must be >= 1");
        NEON_CHECK(total >= static_cast<int64_t>(nDev) * minPerDev,
                   "PartitionPlan: not enough units to give every device its minimum");
        double sum = 0.0;
        for (const double w : weights) {
            NEON_CHECK(w >= 0.0, "PartitionPlan: weights must be non-negative");
            sum += w;
        }
        PartitionPlan plan;
        plan.unitsPerDev.assign(static_cast<size_t>(nDev), minPerDev);
        if (sum <= 0.0) {
            // Degenerate weights: fall back to even on top of the minima.
            int64_t left = total - static_cast<int64_t>(nDev) * minPerDev;
            for (int d = 0; left > 0; d = (d + 1) % nDev, --left) {
                ++plan.unitsPerDev[static_cast<size_t>(d)];
            }
            return plan;
        }
        // Largest-remainder apportionment of the units above the minima.
        const int64_t       spare = total - static_cast<int64_t>(nDev) * minPerDev;
        std::vector<double> exact(static_cast<size_t>(nDev), 0.0);
        std::vector<int64_t> floorU(static_cast<size_t>(nDev), 0);
        int64_t              assigned = 0;
        for (int d = 0; d < nDev; ++d) {
            exact[static_cast<size_t>(d)] =
                static_cast<double>(spare) * weights[static_cast<size_t>(d)] / sum;
            floorU[static_cast<size_t>(d)] = static_cast<int64_t>(exact[static_cast<size_t>(d)]);
            assigned += floorU[static_cast<size_t>(d)];
        }
        for (int64_t left = spare - assigned; left > 0; --left) {
            int    best = 0;
            double bestRem = -1.0;
            for (int d = 0; d < nDev; ++d) {
                const double rem = exact[static_cast<size_t>(d)] -
                                   static_cast<double>(floorU[static_cast<size_t>(d)]);
                if (rem > bestRem) {
                    bestRem = rem;
                    best = d;
                }
            }
            ++floorU[static_cast<size_t>(best)];
            exact[static_cast<size_t>(best)] = static_cast<double>(floorU[static_cast<size_t>(best)]);
        }
        for (int d = 0; d < nDev; ++d) {
            plan.unitsPerDev[static_cast<size_t>(d)] += floorU[static_cast<size_t>(d)];
        }
        return plan;
    }

    [[nodiscard]] std::string toString() const
    {
        std::ostringstream os;
        os << "plan[";
        for (size_t d = 0; d < unitsPerDev.size(); ++d) {
            os << (d == 0 ? "" : " ") << unitsPerDev[d];
        }
        os << "]";
        return os.str();
    }
};

/// One contiguous cell move between the old and the new decomposition.
/// Offsets are relative to the *owned* window of each device's local cell
/// space; the field scales/offsets them per its layout (SegmentHalo-style).
struct MigrationSegment
{
    int     srcDev = 0;
    int     dstDev = 0;
    int64_t srcFirst = 0;  ///< cells into the source's owned window
    int64_t dstFirst = 0;  ///< cells into the destination's owned window
    int64_t count = 0;     ///< cells to move
};

/// Window-overlap segments between two ownership vectors expressed in a
/// common global *cell* ordering (`oldOwned[d]` / `newOwned[d]` = owned
/// cells per device; both must sum to the same total). Same-device segments
/// are included: the data still has to land in the freshly sized buffer.
inline std::vector<MigrationSegment> migrationSegments(const std::vector<int64_t>& oldOwned,
                                                       const std::vector<int64_t>& newOwned)
{
    int64_t oldTotal = 0;
    int64_t newTotal = 0;
    for (const int64_t c : oldOwned) {
        oldTotal += c;
    }
    for (const int64_t c : newOwned) {
        newTotal += c;
    }
    NEON_CHECK(oldTotal == newTotal, "migrationSegments: cell totals differ");
    std::vector<MigrationSegment> segs;
    int64_t                       srcStart = 0;
    for (size_t s = 0; s < oldOwned.size(); ++s) {
        const int64_t srcEnd = srcStart + oldOwned[s];
        int64_t       dstStart = 0;
        for (size_t t = 0; t < newOwned.size(); ++t) {
            const int64_t dstEnd = dstStart + newOwned[t];
            const int64_t lo = srcStart > dstStart ? srcStart : dstStart;
            const int64_t hi = srcEnd < dstEnd ? srcEnd : dstEnd;
            if (hi > lo) {
                segs.push_back({static_cast<int>(s), static_cast<int>(t), lo - srcStart,
                                lo - dstStart, hi - lo});
            }
            dstStart = dstEnd;
        }
        srcStart = srcEnd;
    }
    return segs;
}

/// Everything a field needs to re-home its data onto a re-sliced grid. The
/// grid fills this once per repartition and hands it to every registered
/// field (RegridClient::applyRegrid).
struct RegridInfo
{
    /// New per-device allocation size in cells (owned + halo/ghost).
    std::vector<size_t> newCellCounts;
    /// Cell offset of the owned window inside the OLD local buffer, in
    /// per-component units (dGrid: haloRadius * plane; eGrid/bGrid: 0).
    std::vector<int64_t> oldOwnedStart;
    /// Same for the NEW local buffer.
    std::vector<int64_t> newOwnedStart;
    /// Owned-window moves in cell units (see MigrationSegment).
    std::vector<MigrationSegment> migrate;
    /// False on fault recovery: the old buffers are gone (a device died);
    /// fields re-allocate and reset to the outside value, the recovery
    /// driver restores checkpointed state afterwards.
    bool migrateData = true;
};

/// What a grid keeps per registered field: the type-erased migration hook.
class RegridClient
{
   public:
    virtual ~RegridClient() = default;
    virtual void applyRegrid(const RegridInfo& info) = 0;
};

}  // namespace neon::domain
