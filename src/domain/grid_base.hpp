#pragma once
// GridBase / GridOps: the shared core every grid builds on (paper §IV-C:
// "the Domain level hides data partitioning behind interchangeable grids").
//
//   - GridBase owns the state all grids share — name, backend, bounding
//     dim, stencil union, halo radius and the precomputed HaloSegment
//     lists — behind one shared_ptr. A concrete grid derives its Impl from
//     GridBase::BaseImpl (single allocation, accessed via impl<Derived>())
//     and adds only its partition-specific tables.
//   - GridOps<Derived> is a CRTP mixin providing the factory surface
//     (newField / newContainer) so every grid exposes the identical API
//     and every freshly built field type is checked against FieldConcept
//     at compile time.

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/index3d.hpp"
#include "core/stencil.hpp"
#include "core/types.hpp"
#include "domain/concepts.hpp"
#include "domain/halo.hpp"
#include "domain/partition_plan.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"

namespace neon::domain {

class GridBase
{
   public:
    [[nodiscard]] bool valid() const { return mBase != nullptr; }

    [[nodiscard]] int                devCount() const { return mBase->backend.devCount(); }
    [[nodiscard]] const index_3d&    dim() const { return mBase->dim; }
    [[nodiscard]] const Stencil&     stencil() const { return mBase->stencil; }
    [[nodiscard]] int                haloRadius() const { return mBase->haloRadius; }
    [[nodiscard]] set::Backend&      backend() const { return mBase->backend; }
    [[nodiscard]] const std::string& gridName() const { return mBase->name; }

    /// Per-device halo segments (cell units); fields hand these to
    /// SegmentHalo verbatim.
    [[nodiscard]] const std::vector<std::vector<HaloSegment>>& haloSegments() const
    {
        return mBase->haloSegments;
    }

    /// Register a field's migration hook (called by FieldBase::initCore).
    /// Weak: fields own the grid, never the reverse.
    void registerRegridClient(const std::weak_ptr<RegridClient>& client) const
    {
        std::lock_guard<std::mutex> lock(mBase->fieldsMutex);
        mBase->fields.push_back(client);
    }

    /// Hand a repartition's RegridInfo to every live registered field
    /// (expired registrations are pruned). Called by Grid::repartition
    /// after its tables are re-sliced, so fields see the new geometry.
    void applyRegridToFields(const RegridInfo& info) const
    {
        std::vector<std::shared_ptr<RegridClient>> live;
        {
            std::lock_guard<std::mutex> lock(mBase->fieldsMutex);
            auto& fields = mBase->fields;
            for (size_t i = 0; i < fields.size();) {
                if (auto client = fields[i].lock()) {
                    live.push_back(std::move(client));
                    ++i;
                } else {
                    fields.erase(fields.begin() + static_cast<std::ptrdiff_t>(i));
                }
            }
        }
        for (const auto& client : live) {
            client->applyRegrid(info);
        }
    }

   protected:
    /// Shared slice of a grid's Impl; concrete grids derive from it.
    struct BaseImpl
    {
        std::string  name;
        set::Backend backend;
        index_3d     dim;
        Stencil      stencil;
        int          haloRadius = 1;
        /// haloSegments[dev]: segments device `dev` sends (built by the
        /// concrete grid's constructor).
        std::vector<std::vector<HaloSegment>> haloSegments;

        /// Migration hooks of the fields built on this grid (weak — see
        /// registerRegridClient) and their guard.
        std::mutex                               fieldsMutex;
        std::vector<std::weak_ptr<RegridClient>> fields;

        virtual ~BaseImpl() = default;
    };

    GridBase() = default;
    explicit GridBase(std::shared_ptr<BaseImpl> base) : mBase(std::move(base)) {}

    /// Typed access to the derived Impl (the grid knows its concrete type).
    template <typename ImplT>
    [[nodiscard]] ImplT& impl() const
    {
        return static_cast<ImplT&>(*mBase);
    }

    std::shared_ptr<BaseImpl> mBase;
};

/// CRTP factory surface. `Derived` must expose `template FieldType<T>`
/// constructible as FieldType<T>(derived, name, card, outside, layout).
template <typename Derived>
class GridOps
{
   public:
    // Deduced return type (Derived::FieldType<T>): Derived is incomplete
    // while this mixin is being instantiated inside its own definition.
    template <typename T>
    [[nodiscard]] auto newField(std::string name, int cardinality, T outsideValue,
                                MemLayout layout = MemLayout::structOfArrays) const
    {
        using Field = typename Derived::template FieldType<T>;
        static_assert(FieldConcept<Field>,
                      "Grid::FieldType<T> must satisfy neon::domain::FieldConcept "
                      "(see docs/domain.md)");
        return Field(self(), std::move(name), cardinality, outsideValue, layout);
    }

    /// Wrap a loading lambda into a Container bound to this grid.
    template <typename LoadingLambda>
    [[nodiscard]] set::Container newContainer(std::string name, LoadingLambda&& fn) const
    {
        return set::Container::factory(std::move(name), self(),
                                       std::forward<LoadingLambda>(fn));
    }

   private:
    [[nodiscard]] const Derived& self() const { return static_cast<const Derived&>(*this); }
};

}  // namespace neon::domain
