#pragma once
// Shared halo-exchange machinery (paper §IV-C2 "haloUpdate asynchronous
// mechanism"). Every 1-D-partitioned grid reduces its halo traffic to the
// same normal form: per device, a short list of *cell-unit* segments
// [srcFirst, srcFirst+count) of its local cell space that must land at
// [dstFirst, dstFirst+count) of a neighbour's. The grid computes the
// segments once at construction (dGrid: boundary z-planes, eGrid: the
// boundary cell classes, bGrid: active boundary block rows); SegmentHalo
// turns them into transfers for any field over that grid, resolving the
// memory layout at enqueue time:
//   - structOfArrays: one chunk per (segment, component), component pitch
//     = count(dev) / cardinality;
//   - arrayOfStructs: one chunk per segment, offsets scaled by cardinality.
// This reproduces the paper's transfer accounting (2 transfers per interior
// device for AoS/scalar fields, 2*cardinality for SoA) for every grid.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "set/access.hpp"
#include "set/memset.hpp"
#include "sys/stream.hpp"

namespace neon::domain {

/// One contiguous boundary->ghost copy, in cell units (layout-agnostic).
struct HaloSegment
{
    int     nbr = 0;        ///< destination device
    int     direction = 0;  ///< 1: to higher-z neighbour, 0: to lower-z
    int64_t srcFirst = 0;   ///< first cell in the sender's local cell space
    int64_t dstFirst = 0;   ///< first cell in the receiver's local cell space
    int64_t count = 0;      ///< cells to copy
};

/// The one HaloOps implementation shared by every field type. Holds value
/// copies of the shared handles (not the field Impl) so the access records
/// it travels in keep the buffers alive without a reference cycle.
template <typename T>
class SegmentHalo final : public set::HaloOps
{
   public:
    SegmentHalo(set::MemSet<T> data, std::string name, int card, MemLayout layout,
                std::vector<std::vector<HaloSegment>> segments)
        : mData(std::move(data)),
          mName(std::move(name)),
          mCard(card),
          mLayout(layout),
          mSegments(std::move(segments))
    {
    }

    void enqueueHaloSend(int dev, sys::Stream& stream) const override
    {
        sys::TransferOp op;
        op.name = "halo(" + mName + ")";

        for (const HaloSegment& seg : mSegments[static_cast<size_t>(dev)]) {
            if (seg.count == 0) {
                continue;
            }
            T* src = mData.rawDev(dev);
            T* dst = mData.rawDev(seg.nbr);
            if (mLayout == MemLayout::structOfArrays) {
                // Component pitch: each component's cells are contiguous.
                const size_t srcPitch = mData.count(dev) / static_cast<size_t>(mCard);
                const size_t dstPitch = mData.count(seg.nbr) / static_cast<size_t>(mCard);
                for (int32_t c = 0; c < mCard; ++c) {
                    const size_t so = static_cast<size_t>(c) * srcPitch +
                                      static_cast<size_t>(seg.srcFirst);
                    const size_t do_ = static_cast<size_t>(c) * dstPitch +
                                       static_cast<size_t>(seg.dstFirst);
                    const size_t len = static_cast<size_t>(seg.count);
                    op.chunks.push_back(
                        {len * sizeof(T), seg.direction, [src, dst, so, do_, len] {
                             std::copy_n(src + so, len, dst + do_);
                         }});
                }
            } else {
                const size_t so = static_cast<size_t>(seg.srcFirst) * static_cast<size_t>(mCard);
                const size_t do_ = static_cast<size_t>(seg.dstFirst) * static_cast<size_t>(mCard);
                const size_t len = static_cast<size_t>(seg.count) * static_cast<size_t>(mCard);
                op.chunks.push_back({len * sizeof(T), seg.direction, [src, dst, so, do_, len] {
                                         std::copy_n(src + so, len, dst + do_);
                                     }});
            }
        }
        if (!op.chunks.empty()) {
            stream.transfer(std::move(op));
        }
    }

    [[nodiscard]] uint64_t    uid() const override { return mData.uid(); }
    [[nodiscard]] std::string name() const override { return mName; }
    [[nodiscard]] int         devCount() const override { return mData.setCount(); }

    /// Receivers actually present in the segment list (sparse grids may
    /// have no active cells on a partition boundary).
    [[nodiscard]] std::vector<int> peers(int dev) const override
    {
        std::vector<int> out;
        for (const HaloSegment& seg : mSegments[static_cast<size_t>(dev)]) {
            if (seg.count > 0 && std::find(out.begin(), out.end(), seg.nbr) == out.end()) {
                out.push_back(seg.nbr);
            }
        }
        return out;
    }

   private:
    set::MemSet<T>                        mData;
    std::string                           mName;
    int                                   mCard = 1;
    MemLayout                             mLayout = MemLayout::structOfArrays;
    std::vector<std::vector<HaloSegment>> mSegments;  ///< per sending device
};

}  // namespace neon::domain
