#pragma once
// FieldBase<Grid, T>: the shared field core (the "FieldCore" of the Domain
// contract). Owns everything a field needs that is not layout-specific —
// the MemSet storage, host mirror fill/update, the Loader-facing identity
// surface (uid/name/bytesPerItem/haloOps) and the SegmentHalo registration.
// Concrete fields (DField/EField/BField) derive, pass their per-device
// *cell* counts to initCore(), and add only partition addressing and
// host-coordinate access.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/index3d.hpp"
#include "core/types.hpp"
#include "domain/halo.hpp"
#include "domain/partition_plan.hpp"
#include "domain/span.hpp"
#include "set/memset.hpp"

namespace neon::domain {

template <typename GridT, typename T>
class FieldBase
{
   public:
    using Type = T;

    [[nodiscard]] bool valid() const { return mCore != nullptr; }

    // --- Loader/data interface (the Loadable concept) ----------------------
    [[nodiscard]] uint64_t           uid() const { return mCore->data.uid(); }
    [[nodiscard]] const std::string& name() const { return mCore->name; }
    [[nodiscard]] double             bytesPerItem(Compute = Compute::MAP) const
    {
        return sizeof(T) * static_cast<double>(mCore->card);
    }
    [[nodiscard]] std::shared_ptr<const set::HaloOps> haloOps() const { return mCore->halo; }

    // --- host mirror --------------------------------------------------------
    void fillHost(T v) const
    {
        for (int d = 0; d < mCore->data.setCount(); ++d) {
            T*           ptr = mCore->data.rawHost(d);
            const size_t n = mCore->data.count(d);
            std::fill(ptr, ptr + n, v);
        }
    }

    /// Host mirror -> device buffers (synchronous, init-time).
    void updateDev() const { mCore->data.updateDev(); }
    /// Device buffers -> host mirror (synchronous).
    void updateHost() const { mCore->data.updateHost(); }

    // --- metadata -----------------------------------------------------------
    [[nodiscard]] const GridT& grid() const { return mCore->grid; }
    [[nodiscard]] int          cardinality() const { return mCore->card; }
    [[nodiscard]] MemLayout    layout() const { return mCore->layout; }
    [[nodiscard]] T            outsideValue() const { return mCore->outside; }

    /// Total device bytes held by this field (all partitions).
    [[nodiscard]] size_t allocatedBytes() const { return mCore->data.totalCount() * sizeof(T); }

    /// Visit every (active cell, component) of the host mirror — THE host
    /// iteration, shared by all grids. Walks the grid's hostSpan (the
    /// STANDARD span backed by host-side structure pointers) with per-device
    /// partition descriptor and mirror pointer hoisted, so the visit is O(N).
    /// Order: devices ascending, then the span's deterministic cell order,
    /// then components.
    template <typename Fn>  // fn(const index_3d&, int card, T&)
    void forEachActiveHost(Fn&& fn) const
    {
        // The concrete field supplies hostPartition(dev) (host-pointer
        // addressing + flatIdx) and its grid supplies hostSpan(dev).
        using Derived = typename GridT::template FieldType<T>;
        const auto*   self = static_cast<const Derived*>(this);
        const GridT&  g = mCore->grid;
        const int32_t card = mCore->card;
        for (int d = 0; d < g.devCount(); ++d) {
            const auto part = self->hostPartition(d);
            T*         host = rawHost(d);
            forEachSpan(g.hostSpan(d), [&](const auto& cell) {
                const index_3d gc = part.globalIdx(cell);
                for (int32_t c = 0; c < card; ++c) {
                    fn(gc, c, host[part.flatIdx(cell, c)]);
                }
            });
        }
    }

   protected:
    struct Core : RegridClient
    {
        GridT                         grid;
        std::string                   name;
        int                           card = 1;
        T                             outside = T{};
        MemLayout                     layout = MemLayout::structOfArrays;
        set::MemSet<T>                data;
        std::shared_ptr<set::HaloOps> halo;

        /// Re-home this field onto the grid's new decomposition (the grid's
        /// tables are already re-sliced when this runs). Allocates the new
        /// MemSet, migrates the owned windows through TransferOps on the
        /// backend streams — traced, costed and faultable exactly like a
        /// halo exchange — then swaps storage and rebuilds the halo plan.
        void applyRegrid(const RegridInfo& info) override
        {
            set::Backend&       backend = grid.backend();
            std::vector<size_t> counts;
            counts.reserve(info.newCellCounts.size());
            for (const size_t cells : info.newCellCounts) {
                counts.push_back(cells * static_cast<size_t>(card));
            }
            set::MemSet<T> next(backend, name, std::move(counts));
            if (!backend.isDryRun()) {
                // Fresh allocations start at the outside value; migrated
                // cells overwrite their owned windows below. The host
                // mirror is refreshed lazily (updateHost) as usual.
                for (int d = 0; d < next.setCount(); ++d) {
                    T*           ptr = next.rawHost(d);
                    const size_t n = next.count(d);
                    std::fill(ptr, ptr + n, outside);
                }
                next.updateDev();
            }
            if (info.migrateData && !info.migrate.empty()) {
                // One TransferOp per source device; SoA splits each segment
                // into per-component chunks (SegmentHalo's convention).
                for (int srcDev = 0; srcDev < data.setCount(); ++srcDev) {
                    sys::TransferOp op;
                    op.name = "migrate(" + name + ")";
                    for (const MigrationSegment& seg : info.migrate) {
                        if (seg.srcDev != srcDev || seg.count == 0) {
                            continue;
                        }
                        T*        src = data.rawDev(srcDev);
                        T*        dst = next.rawDev(seg.dstDev);
                        const int dir = seg.dstDev >= srcDev ? 1 : 0;
                        const auto srcBase =
                            static_cast<size_t>(info.oldOwnedStart[static_cast<size_t>(srcDev)] +
                                                seg.srcFirst);
                        const auto dstBase =
                            static_cast<size_t>(info.newOwnedStart[static_cast<size_t>(seg.dstDev)] +
                                                seg.dstFirst);
                        if (layout == MemLayout::structOfArrays) {
                            const size_t srcPitch = data.count(srcDev) / static_cast<size_t>(card);
                            const size_t dstPitch =
                                next.count(seg.dstDev) / static_cast<size_t>(card);
                            for (int32_t c = 0; c < card; ++c) {
                                const size_t so = static_cast<size_t>(c) * srcPitch + srcBase;
                                const size_t do_ = static_cast<size_t>(c) * dstPitch + dstBase;
                                const size_t len = static_cast<size_t>(seg.count);
                                op.chunks.push_back(
                                    {len * sizeof(T), dir, [src, dst, so, do_, len] {
                                         std::copy_n(src + so, len, dst + do_);
                                     }});
                            }
                        } else {
                            const size_t so = srcBase * static_cast<size_t>(card);
                            const size_t do_ = dstBase * static_cast<size_t>(card);
                            const size_t len =
                                static_cast<size_t>(seg.count) * static_cast<size_t>(card);
                            op.chunks.push_back({len * sizeof(T), dir, [src, dst, so, do_, len] {
                                                     std::copy_n(src + so, len, dst + do_);
                                                 }});
                        }
                    }
                    if (!op.chunks.empty()) {
                        backend.stream(srcDev, 0).transfer(std::move(op));
                    }
                }
                backend.sync();
            }
            data = std::move(next);
            halo = std::make_shared<SegmentHalo<T>>(data, name, card, layout,
                                                    grid.haloSegments());
        }
    };

    FieldBase() = default;

    /// Allocate storage (`cellCounts[d] * cardinality` elements on device d),
    /// register the grid's halo segments, and initialize the mirrors to the
    /// outside value (skipped in dry-run mode, where no host mirrors exist).
    void initCore(const GridT& grid, std::string name, int cardinality, T outsideValue,
                  MemLayout layout, const std::vector<size_t>& cellCounts)
    {
        NEON_CHECK(cardinality >= 1, "cardinality must be >= 1");
        mCore = std::make_shared<Core>();
        mCore->grid = grid;
        mCore->name = std::move(name);
        mCore->card = cardinality;
        mCore->outside = outsideValue;
        mCore->layout = layout;

        std::vector<size_t> counts;
        counts.reserve(cellCounts.size());
        for (size_t cells : cellCounts) {
            counts.push_back(cells * static_cast<size_t>(cardinality));
        }
        mCore->data = set::MemSet<T>(grid.backend(), mCore->name, std::move(counts));
        mCore->halo = std::make_shared<SegmentHalo<T>>(mCore->data, mCore->name, cardinality,
                                                       layout, grid.haloSegments());
        grid.registerRegridClient(mCore);
        if (!grid.backend().isDryRun()) {
            fillHost(outsideValue);
            updateDev();
        }
    }

    /// Raw host-mirror pointer for device `dev` (derived classes index it
    /// through their partition's bufIdx).
    [[nodiscard]] T* rawHost(int dev) const { return mCore->data.rawHost(dev); }

    std::shared_ptr<Core> mCore;
};

}  // namespace neon::domain
