#pragma once
// The unified span-iteration layer (docs/domain.md, docs/performance.md):
// every grid's iteration space is "up to two contiguous ranges of an outer
// *slot* index, plus a decoder that expands one slot into cells". DGrid
// slots are z-planes, EGrid slots are single cells, BGrid slots are blocks.
// DSpan/ESpan/BSpan are instantiations of domain::Span over their decoder,
// so forEach order, chunked iteration and the deterministic chunk-partition
// rule live here once instead of three near-duplicates.
//
// Chunking contract: chunkCount() is a pure function of the span (cell and
// slot count), never of the executing thread count, and forEachChunk(c, n)
// visits a fixed slot interval [c*S/n, (c+1)*S/n). Running the chunks on
// any number of threads therefore touches exactly the same cells in the
// same per-chunk order — the NEON_THREADS bitwise-determinism guarantee
// builds on this (docs/performance.md, "Host parallelism").

#include <cstddef>
#include <cstdint>
#include <utility>

namespace neon::domain {

/// One contiguous range of outer slot indices.
struct SpanRange
{
    int32_t first = 0;
    int32_t count = 0;
};

/// Deterministic chunk partition rule: enough chunks to feed a pool
/// (cells / kSpanChunkCells, capped at kSpanMaxChunks) but never more than
/// there are slots. Pure function of the span — NOT of the thread count.
inline constexpr size_t  kSpanChunkCells = 2048;
inline constexpr int32_t kSpanMaxChunks = 64;

[[nodiscard]] constexpr int32_t spanChunkCount(size_t cells, int32_t slots)
{
    const size_t byCells = cells / kSpanChunkCells;
    int32_t      n = byCells >= static_cast<size_t>(kSpanMaxChunks)
                         ? kSpanMaxChunks
                         : static_cast<int32_t>(byCells);
    if (n < 1) {
        n = 1;
    }
    if (slots >= 1 && n > slots) {
        n = slots;
    }
    return n;
}

/// Iteration space of one (device, DataView) pair, generic over a slot
/// Decoder providing `forEachInSlot(int32_t slot, Fn&&)`. Cells are visited
/// slot-ascending (range 0 then range 1), with the decoder's in-slot order
/// — deterministic, as SpanConcept requires.
template <typename Decoder>
class Span
{
   public:
    using Range = SpanRange;

    Span() = default;
    Span(Decoder decoder, size_t cells, Range r0, Range r1 = {0, 0})
        : mDecoder(std::move(decoder)), mCells(cells), mR0(r0), mR1(r1)
    {
    }

    /// Number of cells forEach visits.
    [[nodiscard]] size_t count() const { return mCells; }
    /// Number of outer slots (chunking granularity).
    [[nodiscard]] int32_t slotCount() const { return mR0.count + mR1.count; }
    /// Fixed chunk partition size for this span (>= 1, see spanChunkCount).
    [[nodiscard]] int32_t chunkCount() const { return spanChunkCount(mCells, slotCount()); }

    [[nodiscard]] const Decoder& decoder() const { return mDecoder; }

    /// The two slot ranges (range 1 may be empty). Exposed for the access
    /// sanitizer, which checks written cells against the launched span.
    [[nodiscard]] const Range& range0() const { return mR0; }
    [[nodiscard]] const Range& range1() const { return mR1; }

    /// True when slot index `slot` (a decoder slot, e.g. a z-plane or block
    /// ordinal — see Partition::spanSlotOf) is part of this span.
    [[nodiscard]] bool containsSlot(int32_t slot) const
    {
        return (slot >= mR0.first && slot < mR0.first + mR0.count) ||
               (slot >= mR1.first && slot < mR1.first + mR1.count);
    }

    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        forSlots(0, slotCount(), fn);
    }

    /// Visit chunk `chunk` of a fixed `nChunks`-way partition: slot
    /// ordinals [chunk*S/n, (chunk+1)*S/n). The partition depends only on
    /// (S, nChunks); executing chunks in any order or on any threads
    /// visits the same cells.
    template <typename Fn>
    void forEachChunk(int32_t chunk, int32_t nChunks, Fn&& fn) const
    {
        const auto s = static_cast<int64_t>(slotCount());
        const auto lo = static_cast<int32_t>(static_cast<int64_t>(chunk) * s / nChunks);
        const auto hi = static_cast<int32_t>(static_cast<int64_t>(chunk + 1) * s / nChunks);
        forSlots(lo, hi, fn);
    }

   private:
    /// Visit slot ordinals [lo, hi): ordinal o maps into range 0 while
    /// o < r0.count, then into range 1.
    template <typename Fn>
    void forSlots(int32_t lo, int32_t hi, Fn&& fn) const
    {
        const int32_t in0 = hi < mR0.count ? hi : mR0.count;
        for (int32_t o = lo; o < in0; ++o) {
            mDecoder.forEachInSlot(mR0.first + o, fn);
        }
        const int32_t from1 = lo > mR0.count ? lo : mR0.count;
        for (int32_t o = from1; o < hi; ++o) {
            mDecoder.forEachInSlot(mR1.first + (o - mR0.count), fn);
        }
    }

    Decoder mDecoder{};
    size_t  mCells = 0;
    Range   mR0;
    Range   mR1;
};

/// Free-function spelling used by generic code (FieldBase host visits, the
/// container trampolines): iterate a whole span.
template <typename SpanT, typename Fn>
void forEachSpan(const SpanT& span, Fn&& fn)
{
    span.forEach(std::forward<Fn>(fn));
}

/// Iterate one chunk of a span's fixed partition.
template <typename SpanT, typename Fn>
void forEachSpanChunk(const SpanT& span, int32_t chunk, int32_t nChunks, Fn&& fn)
{
    span.forEachChunk(chunk, nChunks, std::forward<Fn>(fn));
}

}  // namespace neon::domain
