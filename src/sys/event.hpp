#pragma once
// Event: completion marker used to inject dependencies between streams
// (paper §IV-A "Queue-based Run-time Model" — CUDA Events analogue).
//
// An event carries both the real completion state (used by the threaded
// engine's condition-variable waits) and the virtual timestamp at which it
// was recorded (used by the discrete-event clock). For trace export every
// event also has a process-unique id and remembers which (device, stream)
// recorded it, so wait edges can be drawn in chrome://tracing.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

namespace neon::sys {

/// Outcome of a bounded event wait (threaded engine host syncs).
enum class EventWaitStatus : uint8_t
{
    Recorded,   ///< the event was recorded; the vtime out-param is valid
    TimedOut,   ///< wall-clock timeout expired before the record
    Cancelled,  ///< the cancel flag was raised (engine abort) while waiting
};

class Event
{
   public:
    Event();

    /// Mark the event complete at virtual time `vtime` and wake waiters.
    /// `device`/`stream` identify the recording stream (trace attribution).
    void record(double vtime, int device = -1, int stream = -1);

    [[nodiscard]] bool   recorded() const;
    /// Virtual timestamp of the record; only meaningful once recorded().
    [[nodiscard]] double vtime() const;

    /// Process-unique id (stable across reset()).
    [[nodiscard]] uint64_t id() const { return mId; }
    /// (device, stream) that recorded the event; -1 until recorded.
    [[nodiscard]] int recordedDevice() const;
    [[nodiscard]] int recordedStream() const;

    /// Block the calling thread until the event is recorded (threaded
    /// engine). Returns the recorded virtual time. Waits unconditionally —
    /// prefer waitRecorded(), which bounds the wait and honours an abort
    /// flag, so a scheduler bug surfaces as an error instead of a deadlock.
    double blockUntilRecorded() const;

    /// Bounded wait: returns Recorded (vtimeOut filled) once recorded,
    /// TimedOut after `timeoutSeconds` of wall-clock time (0 = no limit),
    /// or Cancelled as soon as `cancel` (optional) becomes true.
    EventWaitStatus waitRecorded(double timeoutSeconds, const std::atomic<bool>* cancel,
                                 double* vtimeOut) const;

    /// Return to the unrecorded state (reuse between skeleton runs on the
    /// sequential engine only; the threaded engine allocates fresh events).
    void reset();

   private:
    const uint64_t                  mId;
    mutable std::mutex              mMutex;
    mutable std::condition_variable mCv;
    bool                            mRecorded = false;
    double                          mVtime = 0.0;
    int                             mDevice = -1;
    int                             mStream = -1;
};

using EventPtr = std::shared_ptr<Event>;

}  // namespace neon::sys
