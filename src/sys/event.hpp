#pragma once
// Event: completion marker used to inject dependencies between streams
// (paper §IV-A "Queue-based Run-time Model" — CUDA Events analogue).
//
// An event carries both the real completion state (used by the threaded
// engine's condition-variable waits) and the virtual timestamp at which it
// was recorded (used by the discrete-event clock).

#include <condition_variable>
#include <memory>
#include <mutex>

namespace neon::sys {

class Event
{
   public:
    Event() = default;

    /// Mark the event complete at virtual time `vtime` and wake waiters.
    void record(double vtime);

    [[nodiscard]] bool   recorded() const;
    /// Virtual timestamp of the record; only meaningful once recorded().
    [[nodiscard]] double vtime() const;

    /// Block the calling thread until the event is recorded (threaded
    /// engine). Returns the recorded virtual time.
    double blockUntilRecorded() const;

    /// Return to the unrecorded state (reuse between skeleton runs on the
    /// sequential engine only; the threaded engine allocates fresh events).
    void reset();

   private:
    mutable std::mutex              mMutex;
    mutable std::condition_variable mCv;
    bool                            mRecorded = false;
    double                          mVtime = 0.0;
};

using EventPtr = std::shared_ptr<Event>;

}  // namespace neon::sys
