#pragma once
// DataBarriers: per-data-object event chains replacing the old global
// per-Backend inter-run barrier. Each tracked uid (one field / scalar /
// halo-carrying object, keyed by its DataAccess uid) carries the tail
// event of its last writer plus the tails of all readers since that
// write. A run that is about to touch a set of uids acquires the events
// it must wait on (readers wait the last write; writers additionally
// wait all intervening reads), and publishes its own tail event when its
// work is enqueued. Runs over disjoint uid sets share no events and
// therefore overlap freely on the device pool — the property the
// multi-tenant service (neon::service) is built on — while ping-pong
// chains over shared fields keep exactly the ordering the old global
// barrier provided.

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sys/event.hpp"

namespace neon::sys {

class DataBarriers
{
   public:
    /// Events a run reading `reads` and writing `writes` must wait on
    /// before touching any of those objects: the last write tail for every
    /// uid, plus every reader tail since that write for uids in `writes`
    /// (write-after-read). Deduplicated; unrecorded entries never appear
    /// because tails are published at enqueue time in program order.
    [[nodiscard]] std::vector<EventPtr> acquire(const std::vector<uint64_t>& reads,
                                               const std::vector<uint64_t>& writes);

    /// Publish `tail` as the completion event of a run that read `reads`
    /// and wrote `writes`. Written uids start a fresh chain epoch (their
    /// reader list is cleared); read-only uids append `tail` to the
    /// reader list so a later writer orders after this run.
    void publish(const std::vector<uint64_t>& reads, const std::vector<uint64_t>& writes,
                 const EventPtr& tail);

    /// Drop every chain (Backend::resetClocks — stale vtime-stamped events
    /// must not leak into a re-zeroed timeline).
    void clear();

    /// Number of uids currently tracked (tests / introspection).
    [[nodiscard]] size_t trackedCount() const;

   private:
    struct Chain
    {
        EventPtr              writeTail;  ///< tail of the last run that wrote the uid
        std::vector<EventPtr> readTails;  ///< tails of reads since that write
    };

    mutable std::mutex                  mMutex;
    std::unordered_map<uint64_t, Chain> mChains;
};

}  // namespace neon::sys
