#include "sys/data_barriers.hpp"

#include <algorithm>

namespace neon::sys {

namespace {

void pushUnique(std::vector<EventPtr>& out, const EventPtr& ev)
{
    if (ev && std::find(out.begin(), out.end(), ev) == out.end()) {
        out.push_back(ev);
    }
}

}  // namespace

std::vector<EventPtr> DataBarriers::acquire(const std::vector<uint64_t>& reads,
                                            const std::vector<uint64_t>& writes)
{
    std::lock_guard<std::mutex> lock(mMutex);
    std::vector<EventPtr>       out;
    for (const uint64_t uid : writes) {
        auto it = mChains.find(uid);
        if (it == mChains.end()) {
            continue;
        }
        pushUnique(out, it->second.writeTail);
        for (const EventPtr& r : it->second.readTails) {
            pushUnique(out, r);
        }
    }
    for (const uint64_t uid : reads) {
        // A uid both read and written was already fully handled above.
        if (std::find(writes.begin(), writes.end(), uid) != writes.end()) {
            continue;
        }
        auto it = mChains.find(uid);
        if (it == mChains.end()) {
            continue;
        }
        pushUnique(out, it->second.writeTail);
    }
    return out;
}

void DataBarriers::publish(const std::vector<uint64_t>& reads, const std::vector<uint64_t>& writes,
                           const EventPtr& tail)
{
    if (!tail) {
        return;
    }
    std::lock_guard<std::mutex> lock(mMutex);
    for (const uint64_t uid : writes) {
        Chain& c = mChains[uid];
        c.writeTail = tail;
        c.readTails.clear();
    }
    for (const uint64_t uid : reads) {
        if (std::find(writes.begin(), writes.end(), uid) != writes.end()) {
            continue;
        }
        Chain& c = mChains[uid];
        if (c.readTails.empty() || c.readTails.back() != tail) {
            c.readTails.push_back(tail);
        }
    }
}

void DataBarriers::clear()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mChains.clear();
}

size_t DataBarriers::trackedCount() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mChains.size();
}

}  // namespace neon::sys
