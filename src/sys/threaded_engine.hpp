#pragma once
// Threaded engine: one worker thread per stream, real condition-variable
// event waits. Functionally equivalent to the sequential engine but with
// genuine cross-stream concurrency — used to validate that the Skeleton's
// event placement is sufficient for correctness (a missing event shows up
// as a data race/wrong result or a deadlock, not as silent luck).

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "sys/stream.hpp"

namespace neon::sys {

class ThreadedEngine final : public Engine
{
   public:
    ~ThreadedEngine() override;

    void attach(Stream& stream) override;
    void detach(Stream& stream) override;
    void enqueue(Stream& stream, Op op) override;
    void sync(Stream& stream) override;
    void syncAll() override;

    [[nodiscard]] double streamVtime(const Stream& stream) const override;
    [[nodiscard]] double maxVtime() const override;
    void resetClocks() override;

    [[nodiscard]] bool isSequential() const override { return false; }

    /// Drain every stream's queue without throwing (abort-recovery path).
    void quiesce() override;

   private:
    struct State
    {
        std::deque<Op>          queue;
        std::mutex              mutex;
        std::condition_variable cvWork;
        std::condition_variable cvIdle;
        bool                    stop = false;
        bool                    busy = false;
        std::atomic<bool>       cancel{false};  ///< detach in progress: give up waits
        double                  vtime = 0.0;    ///< guarded by engine clock mutex
        std::thread             worker;
    };
    static State& stateOf(const Stream& stream);

    void workerLoop(Stream* stream, State* state);
    void process(Stream& stream, State& state, Op& op);

    mutable std::mutex          mClockMutex;  ///< guards vtimes + device clocks
    mutable std::mutex          mRegistryMutex;
    std::unordered_set<Stream*> mStreams;
    std::unordered_set<Device*> mDevices;
};

}  // namespace neon::sys
