#include "sys/fault.hpp"

#include <algorithm>
#include <sstream>

namespace neon::sys {

namespace {

/// splitmix64: cheap, high-quality 64-bit mix used for the seeded
/// probability gate. Pure function of its input, so decisions replay
/// identically regardless of thread interleaving.
uint64_t mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Deterministic [0,1) draw keyed by plan seed, rule index and op identity.
double draw(uint64_t seed, size_t specIdx, int device, int stream, uint64_t ordinal)
{
    uint64_t h = mix64(seed ^ mix64(static_cast<uint64_t>(specIdx) + 1));
    h = mix64(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(device)) << 32 |
                   static_cast<uint64_t>(static_cast<uint32_t>(stream))));
    h = mix64(h ^ ordinal);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t ordinalKey(int device, int stream, ScheduleOpKind kind)
{
    return static_cast<uint64_t>(static_cast<uint32_t>(device)) << 40 |
           static_cast<uint64_t>(static_cast<uint32_t>(stream)) << 8 |
           static_cast<uint64_t>(kind);
}

bool isWorkOp(ScheduleOpKind kind)
{
    return kind == ScheduleOpKind::Kernel || kind == ScheduleOpKind::Transfer ||
           kind == ScheduleOpKind::HostFn;
}

}  // namespace

std::string to_string(FaultKind k)
{
    switch (k) {
        case FaultKind::TransientTransferFailure: return "transientTransferFailure";
        case FaultKind::PermanentDeviceLoss: return "permanentDeviceLoss";
        case FaultKind::StreamStall: return "streamStall";
        case FaultKind::LinkDegradation: return "linkDegradation";
    }
    return "?";
}

FaultSpec FaultSpec::transientTransfer(int failAttempts)
{
    FaultSpec s;
    s.kind = FaultKind::TransientTransferFailure;
    s.failAttempts = failAttempts;
    return s;
}

FaultSpec FaultSpec::deviceLoss(int device, int fromRun)
{
    FaultSpec s;
    s.kind = FaultKind::PermanentDeviceLoss;
    s.device = device;
    s.run = fromRun;
    return s;
}

FaultSpec FaultSpec::streamStall(double seconds)
{
    FaultSpec s;
    s.kind = FaultKind::StreamStall;
    s.stallSeconds = seconds;
    return s;
}

FaultSpec FaultSpec::linkDegrade(double factor)
{
    FaultSpec s;
    s.kind = FaultKind::LinkDegradation;
    s.slowdownFactor = factor;
    return s;
}

std::string FaultSpec::toString() const
{
    std::ostringstream os;
    os << to_string(kind);
    if (device >= 0) {
        os << " dev" << device;
    }
    if (stream >= 0) {
        os << " s" << stream;
    }
    if (run >= 0) {
        os << " run" << run;
    }
    if (opKind) {
        os << " op=" << to_string(*opKind);
    }
    if (probability < 1.0) {
        os << " p=" << probability;
    }
    switch (kind) {
        case FaultKind::TransientTransferFailure: os << " fail=" << failAttempts; break;
        case FaultKind::StreamStall: os << " stall=" << stallSeconds << "s"; break;
        case FaultKind::LinkDegradation: os << " x" << slowdownFactor; break;
        case FaultKind::PermanentDeviceLoss: break;
    }
    return os.str();
}

std::string FaultPlan::toString() const
{
    std::ostringstream os;
    os << "faultPlan(seed=" << seed << ", " << specs.size() << " rule(s))";
    for (const auto& s : specs) {
        os << "\n  " << s.toString();
    }
    return os.str();
}

void FaultInjector::setPlan(FaultPlan plan)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mPlan = std::move(plan);
    mOrdinals.clear();
    mLost.clear();
    mActive.store(!mPlan.empty(), std::memory_order_relaxed);
}

const FaultPlan& FaultInjector::plan() const
{
    return mPlan;
}

bool FaultInjector::deviceLost(int device) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return device >= 0 && static_cast<size_t>(device) < mLost.size() &&
           mLost[static_cast<size_t>(device)] != 0;
}

void FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mOrdinals.clear();
    mLost.clear();
}

FaultDecision FaultInjector::decide(int device, int stream, ScheduleOpKind kind,
                                    const OpAttribution& attr)
{
    if (!active()) {
        return {};
    }
    std::lock_guard<std::mutex> lock(mMutex);
    const uint64_t              ordinal = mOrdinals[ordinalKey(device, stream, kind)]++;

    FaultDecision d;
    for (size_t i = 0; i < mPlan.specs.size(); ++i) {
        const FaultSpec& spec = mPlan.specs[i];
        if (spec.device >= 0 && spec.device != device) {
            continue;
        }
        if (spec.stream >= 0 && spec.stream != stream) {
            continue;
        }
        if (spec.opKind && *spec.opKind != kind) {
            continue;
        }

        if (spec.kind == FaultKind::PermanentDeviceLoss) {
            bool lost = device >= 0 && static_cast<size_t>(device) < mLost.size() &&
                        mLost[static_cast<size_t>(device)] != 0;
            // Trigger at the run boundary: the decision depends only on the
            // op's run id, never on cross-stream arrival order.
            if (!lost && (spec.run < 0 || (attr.runId >= 0 && attr.runId >= spec.run))) {
                lost = true;
                if (device >= 0) {
                    if (static_cast<size_t>(device) >= mLost.size()) {
                        mLost.resize(static_cast<size_t>(device) + 1, 0);
                    }
                    mLost[static_cast<size_t>(device)] = 1;
                }
            }
            d.deviceLost = d.deviceLost || lost;
            continue;
        }

        // Rules below match one run at a time (or any run) and pass the
        // seeded probability gate per matching op.
        if (spec.run >= 0 && attr.runId != spec.run) {
            continue;
        }
        if (spec.probability < 1.0 &&
            draw(mPlan.seed, i, device, stream, ordinal) >= spec.probability) {
            continue;
        }
        switch (spec.kind) {
            case FaultKind::TransientTransferFailure:
                if (kind == ScheduleOpKind::Transfer) {
                    d.failedAttempts = std::max(d.failedAttempts, spec.failAttempts);
                }
                break;
            case FaultKind::StreamStall:
                if (isWorkOp(kind)) {
                    d.stallSeconds += spec.stallSeconds;
                }
                break;
            case FaultKind::LinkDegradation:
                if (kind == ScheduleOpKind::Transfer) {
                    d.slowdown *= spec.slowdownFactor;
                }
                break;
            case FaultKind::PermanentDeviceLoss: break;  // handled above
        }
    }
    return d;
}

}  // namespace neon::sys
