#include "sys/sequential_engine.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"
#include "sys/device.hpp"
#include "sys/transfer_plan.hpp"

namespace neon::sys {

SequentialEngine::State& SequentialEngine::stateOf(const Stream& stream)
{
    return *static_cast<State*>(stream.engineState.get());
}

void SequentialEngine::attach(Stream& stream)
{
    std::lock_guard<std::mutex> lock(mMutex);
    stream.engineState = std::make_shared<State>();
    mStreams.insert(&stream);
    mDevices.insert(&stream.device());
}

void SequentialEngine::detach(Stream& stream)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mStreams.erase(&stream);
}

void SequentialEngine::enqueue(Stream& stream, Op op)
{
    // Fail-stop: once a RuntimeError aborted the engine, further enqueues
    // rethrow it instead of silently executing against inconsistent state.
    if (aborted()) {
        rethrowAbort();
    }

    State&           st = stateOf(stream);
    Device&          dev = stream.device();
    const SimConfig& cfg = dev.config();
    const bool       faulty = mFaults.active();

    if (auto* k = std::get_if<KernelOp>(&op)) {
        double start = std::max(st.vtime, dev.computeAvailable);
        if (faulty) {
            const FaultDecision d = consultFaults(dev, stream.id(), ScheduleOpKind::Kernel,
                                                  k->attr, "kernel", k->name);
            if (d.stallSeconds > 0.0) {
                mTrace.record(dev.id(), stream.id(), TraceKind::Fault, "stall:" + k->name, start,
                            start + d.stallSeconds, 0, k->attr.containerId, k->attr.runId,
                            k->attr.jobId);
                start += d.stallSeconds;
            }
        }
        const double end = start + kernelDuration(cfg, k->items, k->hint);
        if (cfg.opTimeout > 0.0 && end - st.vtime > cfg.opTimeout) {
            throwOpTimeout(dev, stream.id(), "kernel", k->name, k->attr, cfg.opTimeout);
        }
        st.vtime = end;
        dev.computeAvailable = end;
        if (!cfg.dryRun) {
            runKernelWork(dev, stream.id(), *k, start);
        }
        mTrace.record(dev.id(), stream.id(), TraceKind::Kernel, k->name, start, end, 0,
                    k->attr.containerId, k->attr.runId, k->attr.jobId);
        return;
    }
    if (auto* t = std::get_if<TransferOp>(&op)) {
        double        begin = st.vtime;
        FaultDecision d;
        if (faulty) {
            d = consultFaults(dev, stream.id(), ScheduleOpKind::Transfer, t->attr, "transfer",
                              t->name);
            if (d.stallSeconds > 0.0) {
                mTrace.record(dev.id(), stream.id(), TraceKind::Fault, "stall:" + t->name, begin,
                            begin + d.stallSeconds, 0, t->attr.containerId, t->attr.runId,
                            t->attr.jobId);
                begin += d.stallSeconds;
            }
        }
        // Failed attempts occupy the DMA engines just like real transfers,
        // then back off exponentially in virtual time (cost model).
        double    cursor = begin;
        const int failed = std::min(d.failedAttempts, cfg.retry.maxAttempts);
        for (int attempt = 1; attempt <= failed; ++attempt) {
            const TransferSchedule bad = planTransfer(dev, cursor, *t, d.slowdown);
            const double           backoff = retryBackoff(cfg, attempt);
            mTrace.record(dev.id(), stream.id(), TraceKind::Fault,
                        "retry#" + std::to_string(attempt) + ":" + t->name, cursor,
                        bad.end + backoff, bad.totalBytes, t->attr.containerId, t->attr.runId,
                        t->attr.jobId);
            cursor = bad.end + backoff;
        }
        if (d.failedAttempts >= cfg.retry.maxAttempts) {
            st.vtime = cursor;
            throwTransferExhausted(dev, stream.id(), t->name, t->attr, cfg.retry.maxAttempts);
        }
        const TransferSchedule plan = planTransfer(dev, cursor, *t, d.slowdown);
        const double           end = std::max(plan.end, cursor);
        if (cfg.opTimeout > 0.0 && end - st.vtime > cfg.opTimeout) {
            throwOpTimeout(dev, stream.id(), "transfer", t->name, t->attr, cfg.opTimeout);
        }
        for (size_t i = 0; i < t->chunks.size(); ++i) {
            const auto& chunk = t->chunks[i];
            if (!cfg.dryRun && chunk.copy) {
                chunk.copy();
            }
            mTrace.record(dev.id(), stream.id(), TraceKind::Transfer, t->name, plan.windows[i].start,
                        plan.windows[i].end, chunk.bytes, t->attr.containerId, t->attr.runId,
                        t->attr.jobId);
        }
        st.vtime = end;
        return;
    }
    if (auto* h = std::get_if<HostFnOp>(&op)) {
        double start = st.vtime;
        if (faulty) {
            const FaultDecision d = consultFaults(dev, stream.id(), ScheduleOpKind::HostFn,
                                                  h->attr, "hostFn", h->name);
            if (d.stallSeconds > 0.0) {
                mTrace.record(dev.id(), stream.id(), TraceKind::Fault, "stall:" + h->name, start,
                            start + d.stallSeconds, 0, h->attr.containerId, h->attr.runId,
                            h->attr.jobId);
                start += d.stallSeconds;
            }
        }
        const double end = start + h->simDuration;
        if (cfg.opTimeout > 0.0 && end - st.vtime > cfg.opTimeout) {
            throwOpTimeout(dev, stream.id(), "hostFn", h->name, h->attr, cfg.opTimeout);
        }
        st.vtime = end;
        if (!cfg.dryRun && h->fn) {
            h->fn();
        }
        mTrace.record(dev.id(), stream.id(), TraceKind::HostFn, h->name, start, end, 0,
                    h->attr.containerId, h->attr.runId, h->attr.jobId);
        return;
    }
    if (auto* r = std::get_if<RecordOp>(&op)) {
        // Records are fault-exempt: they must always fire so waiters wake.
        r->event->record(st.vtime, dev.id(), stream.id());
        return;
    }
    if (auto* w = std::get_if<WaitOp>(&op)) {
        if (faulty) {
            consultFaults(dev, stream.id(), ScheduleOpKind::Wait, w->attr, "wait", "wait");
        }
        if (!w->event->recorded()) {
            throw InternalError(
                "sequential engine: wait on an unrecorded event — the task "
                "list is not a topological order of the dependency graph");
        }
        const double evTime = w->event->vtime();
        if (evTime > st.vtime && mTrace.enabled()) {
            mTrace.record(dev.id(), stream.id(), TraceKind::Wait, "wait", st.vtime, evTime, 0,
                        w->attr.containerId, w->attr.runId, w->attr.jobId, w->event->id(),
                        w->event->recordedDevice(), w->event->recordedStream());
        }
        st.vtime = std::max(st.vtime, evTime);
        return;
    }
}

void SequentialEngine::sync(Stream&)
{
    // Ops already executed eagerly: nothing to wait for — but a stored
    // abort must surface to hosts that only sync (never enqueue again).
    rethrowAbort();
}

void SequentialEngine::syncAll()
{
    rethrowAbort();
}

double SequentialEngine::streamVtime(const Stream& stream) const
{
    return stateOf(stream).vtime;
}

double SequentialEngine::maxVtime() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    double v = 0.0;
    for (const Stream* s : mStreams) {
        v = std::max(v, stateOf(*s).vtime);
    }
    return v;
}

void SequentialEngine::resetClocks()
{
    std::lock_guard<std::mutex> lock(mMutex);
    for (Stream* s : mStreams) {
        stateOf(*s).vtime = 0.0;
    }
    for (Device* d : mDevices) {
        d->resetClocks();
    }
}

}  // namespace neon::sys
