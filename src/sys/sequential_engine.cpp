#include "sys/sequential_engine.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "sys/device.hpp"

namespace neon::sys {

SequentialEngine::State& SequentialEngine::stateOf(const Stream& stream)
{
    return *static_cast<State*>(stream.engineState.get());
}

void SequentialEngine::attach(Stream& stream)
{
    std::lock_guard<std::mutex> lock(mMutex);
    stream.engineState = std::make_shared<State>();
    mStreams.insert(&stream);
    mDevices.insert(&stream.device());
}

void SequentialEngine::detach(Stream& stream)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mStreams.erase(&stream);
}

void SequentialEngine::enqueue(Stream& stream, Op op)
{
    State&           st = stateOf(stream);
    Device&          dev = stream.device();
    const SimConfig& cfg = dev.config();

    if (auto* k = std::get_if<KernelOp>(&op)) {
        const double start = std::max(st.vtime, dev.computeAvailable);
        const double end = start + kernelDuration(cfg, k->items, k->hint);
        st.vtime = end;
        dev.computeAvailable = end;
        if (!cfg.dryRun && k->body) {
            k->body();
        }
        mTrace.add({dev.id(), stream.id(), "kernel", k->name, start, end, 0,
                    k->attr.containerId, k->attr.runId});
        return;
    }
    if (auto* t = std::get_if<TransferOp>(&op)) {
        // The two DMA directions proceed in parallel; chunks serialize
        // within a direction.
        double end = st.vtime;
        double dirEnd[2] = {0.0, 0.0};
        bool   dirUsed[2] = {false, false};
        for (const auto& chunk : t->chunks) {
            const int dir = chunk.direction != 0 ? 1 : 0;
            if (!dirUsed[dir]) {
                dirEnd[dir] = std::max(st.vtime, dev.copyAvailable[dir]);
                dirUsed[dir] = true;
            }
            const double start = dirEnd[dir];
            dirEnd[dir] = start + transferDuration(cfg, chunk.bytes);
            if (!cfg.dryRun && chunk.copy) {
                chunk.copy();
            }
            mTrace.add({dev.id(), stream.id(), "transfer", t->name, start, dirEnd[dir],
                        chunk.bytes, t->attr.containerId, t->attr.runId});
        }
        for (int dir = 0; dir < 2; ++dir) {
            if (dirUsed[dir]) {
                dev.copyAvailable[dir] = dirEnd[dir];
                end = std::max(end, dirEnd[dir]);
            }
        }
        st.vtime = end;
        return;
    }
    if (auto* h = std::get_if<HostFnOp>(&op)) {
        const double start = st.vtime;
        st.vtime += h->simDuration;
        if (!cfg.dryRun && h->fn) {
            h->fn();
        }
        mTrace.add({dev.id(), stream.id(), "hostFn", h->name, start, st.vtime, 0,
                    h->attr.containerId, h->attr.runId});
        return;
    }
    if (auto* r = std::get_if<RecordOp>(&op)) {
        r->event->record(st.vtime, dev.id(), stream.id());
        return;
    }
    if (auto* w = std::get_if<WaitOp>(&op)) {
        if (!w->event->recorded()) {
            throw InternalError(
                "sequential engine: wait on an unrecorded event — the task "
                "list is not a topological order of the dependency graph");
        }
        const double evTime = w->event->vtime();
        if (evTime > st.vtime && mTrace.enabled()) {
            mTrace.add({dev.id(), stream.id(), "wait", "wait", st.vtime, evTime, 0,
                        w->attr.containerId, w->attr.runId, w->event->id(),
                        w->event->recordedDevice(), w->event->recordedStream()});
        }
        st.vtime = std::max(st.vtime, evTime);
        return;
    }
}

void SequentialEngine::sync(Stream&)
{
    // Ops already executed eagerly: nothing to wait for.
}

void SequentialEngine::syncAll() {}

double SequentialEngine::streamVtime(const Stream& stream) const
{
    return stateOf(stream).vtime;
}

double SequentialEngine::maxVtime() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    double v = 0.0;
    for (const Stream* s : mStreams) {
        v = std::max(v, stateOf(*s).vtime);
    }
    return v;
}

void SequentialEngine::resetClocks()
{
    std::lock_guard<std::mutex> lock(mMutex);
    for (Stream* s : mStreams) {
        stateOf(*s).vtime = 0.0;
    }
    for (Device* d : mDevices) {
        d->resetClocks();
    }
}

}  // namespace neon::sys
