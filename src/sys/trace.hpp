#pragma once
// Execution trace of the virtual timeline. Used by tests (to assert that
// communication really overlapped computation) and by the Fig. 1 timeline
// example to render a text Gantt chart.

#include <mutex>
#include <string>
#include <vector>

namespace neon::sys {

struct TraceEntry
{
    int         device = 0;
    int         stream = 0;
    std::string kind;  ///< "kernel" | "transfer" | "hostFn"
    std::string name;
    double      startV = 0.0;
    double      endV = 0.0;
};

class Trace
{
   public:
    void enable(bool on);
    [[nodiscard]] bool enabled() const { return mEnabled; }

    void add(TraceEntry entry);
    void clear();

    [[nodiscard]] std::vector<TraceEntry> entries() const;

    /// Render a per-(device,stream) text Gantt chart of the virtual timeline.
    [[nodiscard]] std::string gantt(int columns = 100) const;

   private:
    mutable std::mutex      mMutex;
    bool                    mEnabled = false;
    std::vector<TraceEntry> mEntries;
};

}  // namespace neon::sys
