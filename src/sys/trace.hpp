#pragma once
// Execution trace of the virtual timeline. Records structured events
// (device, stream, kind, name, payload bytes, container/run attribution and
// wait edges) for every op the engines process. Consumed by tests (to
// assert that communication really overlapped computation), by the text
// Gantt chart, by the chrome://tracing / Perfetto JSON exporter and by
// neon::ExecutionReport aggregation.
//
// Storage is struct-of-arrays with an interned name table: recording an
// event on the engine hot path appends plain scalars plus one name-id
// lookup, instead of constructing two heap strings per entry. The AoS
// TraceEntry view is materialized on demand by entries().

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace neon::sys {

/// Event category. The string spellings ("kernel", "transfer", ...) are
/// stable public API: reports, tests and the chrome-trace export key on
/// them through TraceEntry::kind / to_string(TraceKind).
enum class TraceKind : uint8_t
{
    Kernel,
    Transfer,
    HostFn,
    Wait,
    Fault,
    HostPool,  ///< one pool worker's share of a CPU kernel ("hostPool")
};

const std::string& to_string(TraceKind k);

struct TraceEntry
{
    int         device = 0;
    int         stream = 0;
    std::string kind;  ///< "kernel" | "transfer" | "hostFn" | "wait" | "fault" | "hostPool"
    std::string name;
    double      startV = 0.0;
    double      endV = 0.0;
    // Structured metadata (defaulted so the historical six-field aggregate
    // initialization keeps compiling).
    uint64_t bytes = 0;        ///< transfer payload; "hostPool": chunks executed
    int      containerId = -1; ///< skeleton graph-node id, -1 outside a skeleton
    int      runId = -1;       ///< skeleton run() window id, -1 outside a skeleton
    int      jobId = -1;       ///< neon::service job id, -1 outside a service job
    uint64_t waitEventId = 0;  ///< kind == "wait": id of the awaited event
    int      srcDevice = -1;   ///< "wait": recording device; "hostPool": worker slot
    int      srcStream = -1;
};

/// Attribution stamped onto ops at enqueue time (set by the Skeleton around
/// each task) so engine-side trace entries can name their graph node, run
/// and owning service job.
struct TraceContext
{
    int containerId = -1;
    int runId = -1;
    int jobId = -1;
};

class Trace
{
   public:
    void enable(bool on);
    [[nodiscard]] bool enabled() const { return mEnabled.load(std::memory_order_relaxed); }

    /// Hot-path recording: no TraceEntry construction, the name is interned
    /// (repeated kernel/transfer names share one stored string).
    void record(int device, int stream, TraceKind kind, std::string_view name, double startV,
                double endV, uint64_t bytes = 0, int containerId = -1, int runId = -1,
                int jobId = -1, uint64_t waitEventId = 0, int srcDevice = -1, int srcStream = -1);

    /// Compatibility shim over record(): accepts a materialized entry (the
    /// kind string must be one of the five to_string(TraceKind) spellings).
    void add(const TraceEntry& entry);

    void clear();

    [[nodiscard]] size_t size() const;
    /// Number of recorded events of `kind` (e.g. injected fault rows).
    [[nodiscard]] size_t countKind(TraceKind kind) const;

    [[nodiscard]] std::vector<TraceEntry> entries() const;
    /// Entries whose runId lies in [firstRunId, lastRunId].
    [[nodiscard]] std::vector<TraceEntry> entriesForRuns(int firstRunId, int lastRunId) const;
    /// Entries attributed to one neon::service job.
    [[nodiscard]] std::vector<TraceEntry> entriesForJob(int jobId) const;

    // --- attribution ------------------------------------------------------
    void setContext(TraceContext ctx);
    void clearContext() { setContext({}); }
    [[nodiscard]] TraceContext context() const;
    /// Fresh id for one Skeleton::run() window (monotone per trace).
    [[nodiscard]] int nextRunId();

    /// Render a per-(device,stream) text Gantt chart of the virtual
    /// timeline. Wait entries are omitted (they mark idle time).
    [[nodiscard]] std::string gantt(int columns = 100) const;

    /// Export the trace in the Chrome trace-event JSON format, loadable in
    /// chrome://tracing and https://ui.perfetto.dev. Devices map to
    /// processes, streams to threads; virtual seconds map to microseconds.
    /// Wait edges become flow arrows from the recording stream.
    [[nodiscard]] std::string chromeTrace() const;

   private:
    /// Columnar event store: one vector per field, grown in lockstep.
    struct Store
    {
        std::vector<int32_t>  device;
        std::vector<int32_t>  stream;
        std::vector<uint8_t>  kind;
        std::vector<uint32_t> nameId;
        std::vector<double>   startV;
        std::vector<double>   endV;
        std::vector<uint64_t> bytes;
        std::vector<int32_t>  containerId;
        std::vector<int32_t>  runId;
        std::vector<int32_t>  jobId;
        std::vector<uint64_t> waitEventId;
        std::vector<int32_t>  srcDevice;
        std::vector<int32_t>  srcStream;

        [[nodiscard]] size_t size() const { return device.size(); }
        void                 reserveMore(size_t extra);
        void                 clear();
    };

    [[nodiscard]] uint32_t    internName(std::string_view name);
    [[nodiscard]] TraceEntry  materialize(size_t i) const;

    mutable std::mutex mMutex;
    std::atomic<bool>  mEnabled{false};
    Store              mStore;
    /// Interned name table: id -> string, plus the reverse lookup.
    std::vector<std::string>                  mNames;
    std::unordered_map<std::string, uint32_t> mNameIds;
    TraceContext                              mContext;
    std::atomic<int>                          mNextRunId{0};
};

}  // namespace neon::sys
