#pragma once
// Execution trace of the virtual timeline. Records structured events
// (device, stream, kind, name, payload bytes, container/run attribution and
// wait edges) for every op the engines process. Consumed by tests (to
// assert that communication really overlapped computation), by the text
// Gantt chart, by the chrome://tracing / Perfetto JSON exporter and by
// neon::ExecutionReport aggregation.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace neon::sys {

struct TraceEntry
{
    int         device = 0;
    int         stream = 0;
    std::string kind;  ///< "kernel" | "transfer" | "hostFn" | "wait"
    std::string name;
    double      startV = 0.0;
    double      endV = 0.0;
    // Structured metadata (defaulted so the historical six-field aggregate
    // initialization keeps compiling).
    uint64_t bytes = 0;        ///< transfer payload (kind == "transfer")
    int      containerId = -1; ///< skeleton graph-node id, -1 outside a skeleton
    int      runId = -1;       ///< skeleton run() window id, -1 outside a skeleton
    uint64_t waitEventId = 0;  ///< kind == "wait": id of the awaited event
    int      srcDevice = -1;   ///< kind == "wait": where the event was recorded
    int      srcStream = -1;
};

/// Attribution stamped onto ops at enqueue time (set by the Skeleton around
/// each task) so engine-side trace entries can name their graph node/run.
struct TraceContext
{
    int containerId = -1;
    int runId = -1;
};

class Trace
{
   public:
    void enable(bool on);
    [[nodiscard]] bool enabled() const { return mEnabled.load(std::memory_order_relaxed); }

    void add(TraceEntry entry);
    void clear();

    [[nodiscard]] std::vector<TraceEntry> entries() const;
    /// Entries whose runId lies in [firstRunId, lastRunId].
    [[nodiscard]] std::vector<TraceEntry> entriesForRuns(int firstRunId, int lastRunId) const;

    // --- attribution ------------------------------------------------------
    void setContext(TraceContext ctx);
    void clearContext() { setContext({}); }
    [[nodiscard]] TraceContext context() const;
    /// Fresh id for one Skeleton::run() window (monotone per trace).
    [[nodiscard]] int nextRunId();

    /// Render a per-(device,stream) text Gantt chart of the virtual
    /// timeline. Wait entries are omitted (they mark idle time).
    [[nodiscard]] std::string gantt(int columns = 100) const;

    /// Export the trace in the Chrome trace-event JSON format, loadable in
    /// chrome://tracing and https://ui.perfetto.dev. Devices map to
    /// processes, streams to threads; virtual seconds map to microseconds.
    /// Wait edges become flow arrows from the recording stream.
    [[nodiscard]] std::string chromeTrace() const;

   private:
    mutable std::mutex      mMutex;
    std::atomic<bool>       mEnabled{false};
    std::vector<TraceEntry> mEntries;
    TraceContext            mContext;
    std::atomic<int>        mNextRunId{0};
};

}  // namespace neon::sys
