#include "sys/event.hpp"

#include <atomic>

namespace neon::sys {

namespace {
std::atomic<uint64_t> gNextEventId{1};
}

Event::Event() : mId(gNextEventId.fetch_add(1, std::memory_order_relaxed)) {}

void Event::record(double vtime, int device, int stream)
{
    {
        std::lock_guard<std::mutex> lock(mMutex);
        mRecorded = true;
        mVtime = vtime;
        mDevice = device;
        mStream = stream;
    }
    mCv.notify_all();
}

bool Event::recorded() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mRecorded;
}

double Event::vtime() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mVtime;
}

int Event::recordedDevice() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mDevice;
}

int Event::recordedStream() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mStream;
}

double Event::blockUntilRecorded() const
{
    std::unique_lock<std::mutex> lock(mMutex);
    mCv.wait(lock, [this] { return mRecorded; });
    return mVtime;
}

void Event::reset()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mRecorded = false;
    mVtime = 0.0;
    mDevice = -1;
    mStream = -1;
}

}  // namespace neon::sys
