#include "sys/event.hpp"

namespace neon::sys {

void Event::record(double vtime)
{
    {
        std::lock_guard<std::mutex> lock(mMutex);
        mRecorded = true;
        mVtime = vtime;
    }
    mCv.notify_all();
}

bool Event::recorded() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mRecorded;
}

double Event::vtime() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mVtime;
}

double Event::blockUntilRecorded() const
{
    std::unique_lock<std::mutex> lock(mMutex);
    mCv.wait(lock, [this] { return mRecorded; });
    return mVtime;
}

void Event::reset()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mRecorded = false;
    mVtime = 0.0;
}

}  // namespace neon::sys
