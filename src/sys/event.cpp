#include "sys/event.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace neon::sys {

namespace {
std::atomic<uint64_t> gNextEventId{1};
}

Event::Event() : mId(gNextEventId.fetch_add(1, std::memory_order_relaxed)) {}

void Event::record(double vtime, int device, int stream)
{
    {
        std::lock_guard<std::mutex> lock(mMutex);
        mRecorded = true;
        mVtime = vtime;
        mDevice = device;
        mStream = stream;
    }
    mCv.notify_all();
}

bool Event::recorded() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mRecorded;
}

double Event::vtime() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mVtime;
}

int Event::recordedDevice() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mDevice;
}

int Event::recordedStream() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mStream;
}

double Event::blockUntilRecorded() const
{
    std::unique_lock<std::mutex> lock(mMutex);
    mCv.wait(lock, [this] { return mRecorded; });
    return mVtime;
}

EventWaitStatus Event::waitRecorded(double timeoutSeconds, const std::atomic<bool>* cancel,
                                    double* vtimeOut) const
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(std::max(timeoutSeconds, 0.0)));
    // Wait in short slices so a cancel raised by another thread (engine
    // abort) is observed promptly even though it cannot notify our cv.
    constexpr auto               kSlice = std::chrono::milliseconds(2);
    std::unique_lock<std::mutex> lock(mMutex);
    for (;;) {
        if (mRecorded) {
            if (vtimeOut != nullptr) {
                *vtimeOut = mVtime;
            }
            return EventWaitStatus::Recorded;
        }
        if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
            return EventWaitStatus::Cancelled;
        }
        if (timeoutSeconds > 0.0 && Clock::now() >= deadline) {
            return EventWaitStatus::TimedOut;
        }
        mCv.wait_for(lock, kSlice, [this] { return mRecorded; });
    }
}

void Event::reset()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mRecorded = false;
    mVtime = 0.0;
    mDevice = -1;
    mStream = -1;
}

}  // namespace neon::sys
