#pragma once
// Deterministic fault injection for the simulated multi-GPU runtime
// (docs/robustness.md). A FaultPlan is a seedable list of fault rules —
// transient transfer failures, permanent device loss, stream stalls and
// link degradation — each targetable by device, stream, op kind and run
// index. The engines consult the plan through a FaultInjector as they
// process ops; every decision is a pure function of the plan seed and the
// op's (device, stream, kind, per-stream ordinal, run id), so a faulted
// run is bitwise reproducible on both the sequential and threaded engines.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sys/op.hpp"
#include "sys/schedule_log.hpp"

namespace neon::sys {

enum class FaultKind : uint8_t
{
    TransientTransferFailure,  ///< transfer fails N attempts, then succeeds
    PermanentDeviceLoss,       ///< device dies at a run boundary, fail-stop
    StreamStall,               ///< extra virtual latency before matching ops
    LinkDegradation,           ///< transfer durations scaled by a factor
};

std::string to_string(FaultKind k);

/// One injected fault rule. Target filters default to "any" (-1 / nullopt);
/// `probability` gates each matching op through a seeded hash so sub-unit
/// rates stay deterministic. Build with the static factories and narrow
/// with the fluent setters:
///
///   FaultSpec::transientTransfer(2).onDevice(1).onRun(0).withProbability(0.5)
struct FaultSpec
{
    FaultKind kind = FaultKind::TransientTransferFailure;
    int       device = -1;  ///< -1: any device
    int       stream = -1;  ///< -1: any stream
    /// Transient/stall/degrade: exact run id to target (-1: every run).
    /// PermanentDeviceLoss: first lost run — ops of run >= this fail, and
    /// once triggered the device stays lost for everything after (negative:
    /// lost immediately, including pre-run setup ops).
    int                           run = -1;
    std::optional<ScheduleOpKind> opKind;  ///< restrict to one op kind
    double                        probability = 1.0;
    int                           failAttempts = 1;      ///< TransientTransferFailure
    double                        stallSeconds = 0.0;    ///< StreamStall
    double                        slowdownFactor = 1.0;  ///< LinkDegradation

    static FaultSpec transientTransfer(int failAttempts = 1);
    static FaultSpec deviceLoss(int device, int fromRun = 0);
    static FaultSpec streamStall(double seconds);
    static FaultSpec linkDegrade(double factor);

    FaultSpec& onDevice(int d)
    {
        device = d;
        return *this;
    }
    FaultSpec& onStream(int s)
    {
        stream = s;
        return *this;
    }
    FaultSpec& onRun(int r)
    {
        run = r;
        return *this;
    }
    FaultSpec& onOp(ScheduleOpKind k)
    {
        opKind = k;
        return *this;
    }
    FaultSpec& withProbability(double p)
    {
        probability = p;
        return *this;
    }

    [[nodiscard]] std::string toString() const;
};

/// A seeded set of fault rules, installed per Backend via
/// BackendSpec::withFaults (or engine().faults().setPlan() at sys level).
struct FaultPlan
{
    uint64_t               seed = 0;
    std::vector<FaultSpec> specs;

    FaultPlan() = default;
    explicit FaultPlan(uint64_t seed) : seed(seed) {}

    FaultPlan& add(FaultSpec spec)
    {
        specs.push_back(std::move(spec));
        return *this;
    }
    [[nodiscard]] bool        empty() const { return specs.empty(); }
    [[nodiscard]] std::string toString() const;
};

/// What the engines must do to one op: fail this many transfer attempts
/// before succeeding, stall the stream, scale transfer durations — or give
/// up entirely because the device is gone.
struct FaultDecision
{
    int    failedAttempts = 0;
    bool   deviceLost = false;
    double stallSeconds = 0.0;
    double slowdown = 1.0;
};

/// Engine-owned runtime state of a FaultPlan: per-(device, stream, kind) op
/// ordinals for the seeded probability gate and the sticky lost-device
/// latch. decide() is thread-safe; because each stream's ops are processed
/// in FIFO order by exactly one thread, the ordinals — and therefore every
/// decision — are identical across engines.
class FaultInjector
{
   public:
    /// Install `plan` (resets all counters and lost-device latches).
    void setPlan(FaultPlan plan);
    [[nodiscard]] const FaultPlan& plan() const;
    /// Fast check used on the engines' hot path.
    [[nodiscard]] bool active() const { return mActive.load(std::memory_order_relaxed); }

    /// Decision for the op about to be processed. Increments the op ordinal
    /// for (device, stream, kind).
    FaultDecision decide(int device, int stream, ScheduleOpKind kind, const OpAttribution& attr);

    /// True once a PermanentDeviceLoss rule has triggered for `device`.
    [[nodiscard]] bool deviceLost(int device) const;

    /// Drop counters and latches but keep the plan (fresh run in tests).
    void reset();

   private:
    mutable std::mutex                     mMutex;
    FaultPlan                              mPlan;
    std::atomic<bool>                      mActive{false};
    std::unordered_map<uint64_t, uint64_t> mOrdinals;
    std::vector<char>                      mLost;
};

}  // namespace neon::sys
