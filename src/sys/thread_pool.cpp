#include "sys/thread_pool.hpp"

#include <chrono>

namespace neon::sys {

namespace {
using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
}
}  // namespace

ThreadPool::ThreadPool(int32_t threads) : mThreads(threads < 1 ? 1 : threads)
{
    mSlots.resize(static_cast<size_t>(mThreads));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mMutex);
        mStop = true;
        ++mGeneration;
    }
    mCvWork.notify_all();
    for (auto& t : mWorkers) {
        t.join();
    }
}

void ThreadPool::spawnWorkers()
{
    // Caller holds mMutex. Workers occupy slots [1, mThreads); slot 0 is
    // always the submitting thread.
    mSpawned = true;
    mWorkers.reserve(static_cast<size_t>(mThreads - 1));
    for (int32_t s = 1; s < mThreads; ++s) {
        mWorkers.emplace_back([this, s] { workerLoop(s); });
    }
}

void ThreadPool::runChunks(int32_t slot)
{
    auto& mine = mSlots[static_cast<size_t>(slot)];
    const auto t0 = Clock::now();
    int32_t    done = 0;
    try {
        for (;;) {
            const int32_t c = mNextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= mNChunkTotal) {
                break;
            }
            mFn(mCtx, c, mNChunkTotal);
            ++done;
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(mMutex);
        if (!mFirstError) {
            mFirstError = std::current_exception();
        }
    }
    mine.chunks = done;
    mine.busySeconds = done > 0 ? secondsBetween(t0, Clock::now()) : 0.0;
}

void ThreadPool::workerLoop(int32_t slot)
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mMutex);
            mCvWork.wait(lock, [&] { return mStop || mGeneration != seen; });
            if (mStop) {
                return;
            }
            seen = mGeneration;
        }
        runChunks(slot);
        {
            std::lock_guard<std::mutex> lock(mMutex);
            --mActive;
        }
        mCvDone.notify_one();
    }
}

void ThreadPool::parallelFor(int32_t                    nChunks,
                             ChunkFn                    fn,
                             void*                      ctx,
                             std::vector<WorkerSample>* samples)
{
    if (nChunks <= 0) {
        return;
    }
    // Inline fast path: nothing to parallelize, or the pool is width-1.
    // No lock, no wakeup — identical results by the chunking contract.
    if (mThreads <= 1 || nChunks == 1) {
        const auto t0 = Clock::now();
        for (int32_t c = 0; c < nChunks; ++c) {
            fn(ctx, c, nChunks);
        }
        if (samples != nullptr) {
            samples->push_back({0, nChunks, secondsBetween(t0, Clock::now())});
        }
        return;
    }

    std::lock_guard<std::mutex> submit(mSubmitMutex);
    {
        std::lock_guard<std::mutex> lock(mMutex);
        if (!mSpawned) {
            spawnWorkers();
        }
        mFn = fn;
        mCtx = ctx;
        mNChunkTotal = nChunks;
        mNextChunk.store(0, std::memory_order_relaxed);
        mFirstError = nullptr;
        for (auto& slot : mSlots) {
            slot = Slot{};
        }
        mActive = mThreads - 1;
        ++mGeneration;
    }
    mCvWork.notify_all();

    runChunks(0);  // the submitting thread is worker 0

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mMutex);
        mCvDone.wait(lock, [&] { return mActive == 0; });
        error = mFirstError;
        if (samples != nullptr) {
            for (int32_t s = 0; s < mThreads; ++s) {
                const auto& slot = mSlots[static_cast<size_t>(s)];
                if (slot.chunks > 0) {
                    samples->push_back({s, slot.chunks, slot.busySeconds});
                }
            }
        }
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

}  // namespace neon::sys
