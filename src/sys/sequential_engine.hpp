#pragma once
// Deterministic discrete-event engine: ops execute eagerly at enqueue time
// (the Skeleton's task list is a topological order of the multi-GPU graph,
// so eager in-order execution is hazard-free) while per-stream, per-device
// virtual clocks model what an 8-GPU node would have done concurrently.
//
// Waiting on an event that has not been recorded yet is, under this engine,
// a scheduler ordering bug and throws InternalError — a strong built-in
// correctness check on the Skeleton's task ordering.

#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "sys/stream.hpp"

namespace neon::sys {

class SequentialEngine final : public Engine
{
   public:
    void attach(Stream& stream) override;
    void detach(Stream& stream) override;
    void enqueue(Stream& stream, Op op) override;
    void sync(Stream& stream) override;
    void syncAll() override;

    [[nodiscard]] double streamVtime(const Stream& stream) const override;
    [[nodiscard]] double maxVtime() const override;
    void resetClocks() override;

    [[nodiscard]] bool isSequential() const override { return true; }

   private:
    struct State
    {
        double vtime = 0.0;
    };
    static State& stateOf(const Stream& stream);

    mutable std::mutex              mMutex;
    std::unordered_set<Stream*>     mStreams;
    std::unordered_set<Device*>     mDevices;
};

}  // namespace neon::sys
