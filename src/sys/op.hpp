#pragma once
// Operations that can be enqueued on a Stream. The runtime model is
// queue-based (paper §IV-A): each stream processes its ops in FIFO order;
// cross-stream ordering is expressed only through events.

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include <memory>

#include "sys/cost_model.hpp"
#include "sys/event.hpp"
#include "sys/thread_pool.hpp"

namespace neon::sys {

/// Trace attribution carried by work ops: which skeleton graph node,
/// which run() window and which service job enqueued the op. Stamped by
/// Stream::enqueue from the engine trace's current context
/// (sys/trace.hpp); -1 outside a skeleton / outside a service job.
struct OpAttribution
{
    int containerId = -1;
    int runId = -1;
    int jobId = -1;
};

/// Devirtualized kernel payload: the container factory pre-splits the
/// launch into a fixed chunk partition (domain::spanChunkCount) and hands
/// the engine two plain function pointers over an opaque context. The hot
/// path is exactly one indirect call per chunk — no std::function hops.
/// `owner` keeps the trampoline context alive if the Container is dropped
/// while the threaded engine still holds queued ops.
struct KernelWork
{
    ChunkFn run = nullptr;       ///< run(ctx, chunk, chunks): one chunk's cells
    ChunkFn finalize = nullptr;  ///< optional, after all chunks (reduce tree)
    void*   ctx = nullptr;
    int32_t chunks = 0;
    bool    sanitized = false;  ///< access-sanitizer trampoline (set/sanitize.hpp)
    std::shared_ptr<void> owner;

    [[nodiscard]] explicit operator bool() const { return run != nullptr; }
};

/// A device kernel: `work` (preferred) or `body` (legacy std::function path
/// kept for Stream::kernel users) performs the real computation on host
/// devices; the simulated duration comes from `items` and `hint`.
struct KernelOp
{
    std::string           name;
    size_t                items = 0;
    KernelCostHint        hint;
    KernelWork            work;
    std::function<void()> body;
    OpAttribution         attr;
};

/// One contiguous device-to-device copy; `direction` selects the DMA engine
/// (0: towards the lower-id neighbour, 1: towards the higher-id neighbour).
struct TransferChunk
{
    size_t                bytes = 0;
    int                   direction = 0;
    std::function<void()> copy;
};

/// A group of copies issued together (e.g. one haloUpdate on one device).
/// Chunks with the same direction serialize on that DMA engine; the two
/// directions proceed in parallel — this is what makes the SoA layout pay
/// `n` latencies per direction while AoS pays one (paper §IV-C2).
struct TransferOp
{
    std::string                name;
    std::vector<TransferChunk> chunks;
    OpAttribution              attr;
};

/// Host-side work executed in stream order (e.g. the reduce combine step).
struct HostFnOp
{
    std::string           name;
    double                simDuration = 0.0;
    std::function<void()> fn;
    OpAttribution         attr;
};

/// Record `event` when the stream reaches this op.
struct RecordOp
{
    EventPtr event;
};

/// Hold the stream until `event` is recorded.
struct WaitOp
{
    EventPtr      event;
    OpAttribution attr;
};

using Op = std::variant<KernelOp, TransferOp, HostFnOp, RecordOp, WaitOp>;

}  // namespace neon::sys
