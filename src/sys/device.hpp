#pragma once
// A (simulated) accelerator device: owns memory with capacity accounting and
// the DES bookkeeping for its compute and copy engines (paper §IV-A:
// "Memory Management" back-end capability).

#include <cstddef>
#include <mutex>
#include <unordered_map>

#include "sys/cost_model.hpp"

namespace neon::sys {

class Device
{
   public:
    Device(int id, DeviceType type, const SimConfig& config);
    ~Device();

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    /// Allocate `bytes` of device memory. Throws DeviceMemoryError when the
    /// simulated capacity would be exceeded. In dry-run mode the bytes are
    /// accounted but no host memory is allocated; the returned fake address
    /// is only valid as a token for free() and must never be dereferenced.
    void* alloc(size_t bytes);

    /// Release a buffer returned by alloc(). nullptr is ignored.
    void free(void* ptr) noexcept;

    [[nodiscard]] size_t bytesInUse() const;
    /// High-water mark of bytesInUse() since construction.
    [[nodiscard]] size_t peakBytes() const;
    [[nodiscard]] size_t capacity() const { return mConfig.deviceMemCapacity; }
    [[nodiscard]] int    id() const { return mId; }
    [[nodiscard]] DeviceType type() const { return mType; }
    [[nodiscard]] const SimConfig& config() const { return mConfig; }

    // --- DES engine bookkeeping (sequential engine; guarded by engine) ---
    /// Virtual time at which the compute engine becomes free. Grid kernels
    /// saturate a GPU, so concurrent kernels on one device serialize.
    double computeAvailable = 0.0;
    /// Virtual availability of the two DMA engines (index 0: transfers to
    /// the lower-id neighbour, 1: to the higher-id neighbour).
    double copyAvailable[2] = {0.0, 0.0};

    /// Reset the DES clocks (used between measured benchmark runs).
    void resetClocks();

   private:
    int        mId;
    DeviceType mType;
    SimConfig  mConfig;

    mutable std::mutex               mMutex;
    std::unordered_map<void*, size_t> mAllocs;
    size_t                           mInUse = 0;
    size_t                           mPeak = 0;
    size_t                           mDryRunCursor = 0;  ///< fake address source in dry-run
};

}  // namespace neon::sys
