#include "sys/transfer_plan.hpp"

#include <algorithm>

namespace neon::sys {

TransferSchedule planTransfer(Device& dev, double vtime, const TransferOp& op, double slowdown)
{
    const SimConfig& cfg = dev.config();
    TransferSchedule plan;
    plan.end = vtime;
    plan.windows.reserve(op.chunks.size());

    double dirEnd[2] = {0.0, 0.0};
    bool   dirUsed[2] = {false, false};
    for (const auto& chunk : op.chunks) {
        const int dir = chunk.direction != 0 ? 1 : 0;
        if (!dirUsed[dir]) {
            dirEnd[dir] = std::max(vtime, dev.copyAvailable[dir]);
            dirUsed[dir] = true;
        }
        const double start = dirEnd[dir];
        dirEnd[dir] = start + transferDuration(cfg, chunk.bytes) * slowdown;
        plan.windows.push_back({start, dirEnd[dir], chunk.bytes});
        plan.totalBytes += chunk.bytes;
    }
    for (int dir = 0; dir < 2; ++dir) {
        if (dirUsed[dir]) {
            dev.copyAvailable[dir] = dirEnd[dir];
            plan.end = std::max(plan.end, dirEnd[dir]);
        }
    }
    return plan;
}

}  // namespace neon::sys
