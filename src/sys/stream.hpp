#pragma once
// Stream: FIFO command queue bound to one device (CUDA Stream analogue,
// paper §IV-A). All enqueue operations are asynchronous with respect to the
// host; sync() blocks until the queue drains.

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "sys/fault.hpp"
#include "sys/op.hpp"
#include "sys/schedule_log.hpp"
#include "sys/thread_pool.hpp"
#include "sys/trace.hpp"

namespace neon::sys {

class Engine;
class Device;

class Stream
{
   public:
    /// Streams are created through Engine/Backend; the ctor registers the
    /// stream with its engine.
    Stream(Engine& engine, Device& device, int id);
    ~Stream();

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    void enqueue(Op op);

    // Convenience wrappers -------------------------------------------------
    void kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body);
    void transfer(TransferOp op);
    void hostFn(std::string name, double simDuration, std::function<void()> fn);
    void record(EventPtr event);
    void wait(EventPtr event);

    /// Host blocks until every enqueued op completed.
    void sync();

    /// Virtual time at which the last enqueued op finishes.
    [[nodiscard]] double vtime() const;

    [[nodiscard]] Device& device() const { return *mDevice; }
    [[nodiscard]] int     id() const { return mId; }
    [[nodiscard]] Engine& engine() const { return *mEngine; }

    /// Engine-private per-stream state, owned here for lifetime simplicity.
    std::shared_ptr<void> engineState;

   private:
    Engine* mEngine;
    Device* mDevice;
    int     mId;
};

/// Execution engine interface: how enqueued ops are processed. Two
/// implementations exist (DESIGN.md §4): a deterministic sequential
/// discrete-event engine and a threaded engine with real cross-stream
/// synchronization used to validate scheduler correctness.
class Engine
{
   public:
    virtual ~Engine() = default;

    virtual void attach(Stream& stream) = 0;
    virtual void detach(Stream& stream) = 0;
    virtual void enqueue(Stream& stream, Op op) = 0;
    virtual void sync(Stream& stream) = 0;
    virtual void syncAll() = 0;

    [[nodiscard]] virtual double streamVtime(const Stream& stream) const = 0;
    /// Max vtime across every stream (virtual makespan of the work so far).
    [[nodiscard]] virtual double maxVtime() const = 0;
    /// Zero every stream/device clock (between measured runs).
    virtual void resetClocks() = 0;

    [[nodiscard]] virtual bool isSequential() const = 0;

    [[nodiscard]] Trace& trace() { return mTrace; }

    /// Enqueue-order op log consumed by neon::analysis (off by default).
    [[nodiscard]] ScheduleLog& scheduleLog() { return mScheduleLog; }

    /// Deterministic fault injection (docs/robustness.md; off by default).
    [[nodiscard]] FaultInjector& faults() { return mFaults; }

    /// Install the Backend's shared host worker pool. CPU-device kernels
    /// with chunked work run through it; SIM_GPU cost accounting never
    /// touches it. May be null (inline execution).
    void setHostPool(std::shared_ptr<ThreadPool> pool) { mHostPool = std::move(pool); }
    [[nodiscard]] const std::shared_ptr<ThreadPool>& hostPool() const { return mHostPool; }

    // --- fail-stop abort protocol (docs/robustness.md) --------------------
    // The first RuntimeError raised while processing an op latches the
    // engine into the aborted state: ops already queued drain without
    // executing (events still record so no thread blocks), new enqueues and
    // host syncs rethrow the stored error. Nothing hangs, nothing is
    // silently corrupted — field state stays what completed ops wrote.
    [[nodiscard]] bool aborted() const { return mAborted.load(std::memory_order_acquire); }
    /// Store `error` (first caller wins) and latch the abort flag.
    void raiseAbort(std::exception_ptr error);
    /// Rethrow the stored abort error, if any.
    void rethrowAbort() const;
    /// Drain all queued work without throwing (Skeleton abort/quiesce path).
    virtual void quiesce() {}
    /// Release the abort latch and stored error (post-mortem recovery in
    /// tests; a lost device stays lost until faults().setPlan()).
    void clearAbort();

   protected:
    /// Consult the fault injector for the op about to be processed; on
    /// permanent device loss, latch the abort and throw the attributed
    /// RuntimeError. `opKindName`/`opName` feed the error message.
    FaultDecision consultFaults(const Device& dev, int stream, ScheduleOpKind kind,
                                const OpAttribution& attr, const char* opKindName,
                                const std::string& opName);
    /// Latch the abort and throw an OpTimeout RuntimeError.
    [[noreturn]] void throwOpTimeout(const Device& dev, int stream, const char* opKindName,
                                     const std::string& opName, const OpAttribution& attr,
                                     double limit);
    /// Latch the abort and throw a TransferFailed RuntimeError.
    [[noreturn]] void throwTransferExhausted(const Device& dev, int stream,
                                             const std::string& opName, const OpAttribution& attr,
                                             int attempts);
    /// Latch the abort and throw a SyncTimeout RuntimeError.
    [[noreturn]] void throwSyncTimeout(int device, int stream, const char* opKindName,
                                       const std::string& opName, const OpAttribution& attr,
                                       double limit);
    /// The abort latch, exposed to bounded event waits as a cancel flag.
    [[nodiscard]] const std::atomic<bool>* abortFlag() const { return &mAborted; }

    /// Execute a KernelOp's computation on `dev`. Chunked work on a CPU
    /// device goes through the host pool (when it helps); everything else
    /// runs inline. Records TraceKind::HostPool utilization rows anchored
    /// at `startV` when the trace is enabled. Virtual-clock accounting is
    /// the caller's job — this only runs the body.
    void runKernelWork(const Device& dev, int streamId, const KernelOp& op, double startV);

    Trace         mTrace;
    ScheduleLog   mScheduleLog;
    FaultInjector mFaults;
    std::shared_ptr<ThreadPool> mHostPool;

   private:
    std::atomic<bool>          mAborted{false};
    mutable std::mutex         mAbortMutex;
    std::exception_ptr         mAbortError;
};

}  // namespace neon::sys
