#pragma once
// Stream: FIFO command queue bound to one device (CUDA Stream analogue,
// paper §IV-A). All enqueue operations are asynchronous with respect to the
// host; sync() blocks until the queue drains.

#include <functional>
#include <memory>
#include <string>

#include "sys/op.hpp"
#include "sys/schedule_log.hpp"
#include "sys/trace.hpp"

namespace neon::sys {

class Engine;
class Device;

class Stream
{
   public:
    /// Streams are created through Engine/Backend; the ctor registers the
    /// stream with its engine.
    Stream(Engine& engine, Device& device, int id);
    ~Stream();

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    void enqueue(Op op);

    // Convenience wrappers -------------------------------------------------
    void kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body);
    void transfer(TransferOp op);
    void hostFn(std::string name, double simDuration, std::function<void()> fn);
    void record(EventPtr event);
    void wait(EventPtr event);

    /// Host blocks until every enqueued op completed.
    void sync();

    /// Virtual time at which the last enqueued op finishes.
    [[nodiscard]] double vtime() const;

    [[nodiscard]] Device& device() const { return *mDevice; }
    [[nodiscard]] int     id() const { return mId; }
    [[nodiscard]] Engine& engine() const { return *mEngine; }

    /// Engine-private per-stream state, owned here for lifetime simplicity.
    std::shared_ptr<void> engineState;

   private:
    Engine* mEngine;
    Device* mDevice;
    int     mId;
};

/// Execution engine interface: how enqueued ops are processed. Two
/// implementations exist (DESIGN.md §4): a deterministic sequential
/// discrete-event engine and a threaded engine with real cross-stream
/// synchronization used to validate scheduler correctness.
class Engine
{
   public:
    virtual ~Engine() = default;

    virtual void attach(Stream& stream) = 0;
    virtual void detach(Stream& stream) = 0;
    virtual void enqueue(Stream& stream, Op op) = 0;
    virtual void sync(Stream& stream) = 0;
    virtual void syncAll() = 0;

    [[nodiscard]] virtual double streamVtime(const Stream& stream) const = 0;
    /// Max vtime across every stream (virtual makespan of the work so far).
    [[nodiscard]] virtual double maxVtime() const = 0;
    /// Zero every stream/device clock (between measured runs).
    virtual void resetClocks() = 0;

    [[nodiscard]] virtual bool isSequential() const = 0;

    [[nodiscard]] Trace& trace() { return mTrace; }

    /// Enqueue-order op log consumed by neon::analysis (off by default).
    [[nodiscard]] ScheduleLog& scheduleLog() { return mScheduleLog; }

   protected:
    Trace       mTrace;
    ScheduleLog mScheduleLog;
};

}  // namespace neon::sys
