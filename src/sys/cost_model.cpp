#include "sys/cost_model.hpp"

#include <algorithm>
#include <limits>

namespace neon::sys {

SimConfig SimConfig::dgxA100Like()
{
    SimConfig cfg;
    cfg.device.memBandwidth = 1.24e12;
    cfg.device.flopRate = 19.5e12;
    cfg.device.kernelLaunchOverhead = 4e-6;
    cfg.link.bandwidth = 200e9;
    cfg.link.latency = 4e-6;
    cfg.deviceMemCapacity = 40ull << 30;
    return cfg;
}

SimConfig SimConfig::pcieGen3Like()
{
    SimConfig cfg;
    // GV100: 32 GB HBM2 at ~900 GB/s effective. PCIe Gen3 x16 peer copies:
    // ~10 GB/s effective with ~15 us per staged transfer.
    cfg.device.memBandwidth = 0.72e12;
    cfg.device.flopRate = 14.8e12;
    cfg.device.kernelLaunchOverhead = 6e-6;
    cfg.link.bandwidth = 10e9;
    cfg.link.latency = 15e-6;
    cfg.deviceMemCapacity = 32ull << 30;
    return cfg;
}

SimConfig SimConfig::zeroCost()
{
    SimConfig cfg;
    cfg.device.memBandwidth = std::numeric_limits<double>::infinity();
    cfg.device.flopRate = std::numeric_limits<double>::infinity();
    cfg.device.kernelLaunchOverhead = 0.0;
    cfg.link.bandwidth = std::numeric_limits<double>::infinity();
    cfg.link.latency = 0.0;
    cfg.deviceMemCapacity = std::numeric_limits<size_t>::max();
    return cfg;
}

double kernelDuration(const SimConfig& cfg, size_t items, const KernelCostHint& hint)
{
    const double bytes = static_cast<double>(items) * hint.bytesPerItem;
    const double flops = static_cast<double>(items) * hint.flopsPerItem;
    const double memTime = bytes / cfg.device.memBandwidth;
    const double flopTime = flops / cfg.device.flopRate;
    return cfg.device.kernelLaunchOverhead + std::max(memTime, flopTime);
}

double transferDuration(const SimConfig& cfg, size_t bytes)
{
    return cfg.link.latency + static_cast<double>(bytes) / cfg.link.bandwidth;
}

double retryBackoff(const SimConfig& cfg, int attempt)
{
    double backoff = cfg.retry.backoffBase;
    for (int i = 1; i < attempt; ++i) {
        backoff *= cfg.retry.backoffFactor;
    }
    return backoff;
}

}  // namespace neon::sys
