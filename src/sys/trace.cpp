#include "sys/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace neon::sys {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Fixed-notation microsecond value for Chrome's `ts`/`dur` fields (the
/// viewer rejects scientific notation in some builds).
std::string usFmt(double seconds)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << seconds * 1e6;
    return os.str();
}

}  // namespace

void Trace::enable(bool on)
{
    mEnabled.store(on, std::memory_order_relaxed);
}

void Trace::add(TraceEntry entry)
{
    if (!enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lock(mMutex);
    mEntries.push_back(std::move(entry));
}

void Trace::clear()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mEntries.clear();
}

std::vector<TraceEntry> Trace::entries() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mEntries;
}

std::vector<TraceEntry> Trace::entriesForRuns(int firstRunId, int lastRunId) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    std::vector<TraceEntry> out;
    for (const auto& e : mEntries) {
        if (e.runId >= firstRunId && e.runId <= lastRunId) {
            out.push_back(e);
        }
    }
    return out;
}

void Trace::setContext(TraceContext ctx)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mContext = ctx;
}

TraceContext Trace::context() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mContext;
}

int Trace::nextRunId()
{
    return mNextRunId.fetch_add(1, std::memory_order_relaxed);
}

std::string Trace::gantt(int columns) const
{
    auto entries = this->entries();
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [](const TraceEntry& e) { return e.kind == "wait"; }),
                  entries.end());
    if (entries.empty()) {
        return "(empty trace)\n";
    }
    double tEnd = 0.0;
    for (const auto& e : entries) {
        tEnd = std::max(tEnd, e.endV);
    }
    if (tEnd <= 0.0) {
        tEnd = 1.0;
    }

    // Group rows by (device, stream) and lay entries on a character raster.
    std::map<std::pair<int, int>, std::string> rows;
    for (const auto& e : entries) {
        auto& row = rows[{e.device, e.stream}];
        if (row.empty()) {
            row.assign(static_cast<size_t>(columns), '.');
        }
        int c0 = static_cast<int>(std::floor(e.startV / tEnd * columns));
        int c1 = static_cast<int>(std::ceil(e.endV / tEnd * columns));
        c0 = std::clamp(c0, 0, columns - 1);
        c1 = std::clamp(c1, c0 + 1, columns);
        const char glyph = e.kind == "transfer" ? '~' : (e.kind == "hostFn" ? '#' : '=');
        char label = e.name.empty() ? glyph : e.name.front();
        for (int c = c0; c < c1; ++c) {
            row[static_cast<size_t>(c)] = (c == c0) ? label : glyph;
        }
    }

    std::ostringstream os;
    os << "virtual timeline, total " << tEnd * 1e6 << " us ('=' kernel, '~' transfer, '#' host)\n";
    for (const auto& [key, row] : rows) {
        os << "dev" << key.first << "/s" << key.second << " |" << row << "|\n";
    }
    return os.str();
}

std::string Trace::chromeTrace() const
{
    auto entries = this->entries();
    // Chrome/Perfetto expect events sorted by timestamp; a stable sort keeps
    // enqueue order among equal timestamps.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TraceEntry& a, const TraceEntry& b) { return a.startV < b.startV; });

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& event) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\n" << event;
    };

    // Metadata: name processes after devices and threads after streams.
    std::map<int, std::vector<int>> rows;
    for (const auto& e : entries) {
        auto& streams = rows[e.device];
        if (std::find(streams.begin(), streams.end(), e.stream) == streams.end()) {
            streams.push_back(e.stream);
        }
    }
    for (const auto& [dev, streams] : rows) {
        std::ostringstream m;
        m << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << dev
          << ",\"args\":{\"name\":\"dev" << dev << "\"}}";
        emit(m.str());
        for (const int s : streams) {
            std::ostringstream t;
            t << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << dev << ",\"tid\":" << s
              << ",\"args\":{\"name\":\"stream" << s << "\"}}";
            emit(t.str());
        }
    }

    for (const auto& e : entries) {
        std::ostringstream ev;
        ev << "{\"ph\":\"X\",\"name\":\"" << jsonEscape(e.name.empty() ? e.kind : e.name)
           << "\",\"cat\":\"" << jsonEscape(e.kind) << "\",\"pid\":" << e.device
           << ",\"tid\":" << e.stream << ",\"ts\":" << usFmt(e.startV)
           << ",\"dur\":" << usFmt(std::max(0.0, e.endV - e.startV)) << ",\"args\":{";
        ev << "\"container\":" << e.containerId << ",\"run\":" << e.runId;
        if (e.bytes > 0) {
            ev << ",\"bytes\":" << e.bytes;
        }
        ev << "}}";
        emit(ev.str());

        // Wait edge: flow arrow from the recording (device, stream) at the
        // event's timestamp to the waiting stream.
        if (e.kind == "wait" && e.srcDevice >= 0) {
            std::ostringstream fs;
            fs << "{\"ph\":\"s\",\"id\":" << e.waitEventId
               << ",\"name\":\"dep\",\"cat\":\"wait\",\"pid\":" << e.srcDevice
               << ",\"tid\":" << e.srcStream << ",\"ts\":" << usFmt(e.endV) << "}";
            emit(fs.str());
            std::ostringstream ff;
            ff << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << e.waitEventId
               << ",\"name\":\"dep\",\"cat\":\"wait\",\"pid\":" << e.device
               << ",\"tid\":" << e.stream << ",\"ts\":" << usFmt(e.endV) << "}";
            emit(ff.str());
        }
    }
    os << "\n]}\n";
    return os.str();
}

}  // namespace neon::sys
