#include "sys/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace neon::sys {

void Trace::enable(bool on)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mEnabled = on;
}

void Trace::add(TraceEntry entry)
{
    std::lock_guard<std::mutex> lock(mMutex);
    if (mEnabled) {
        mEntries.push_back(std::move(entry));
    }
}

void Trace::clear()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mEntries.clear();
}

std::vector<TraceEntry> Trace::entries() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mEntries;
}

std::string Trace::gantt(int columns) const
{
    const auto entries = this->entries();
    if (entries.empty()) {
        return "(empty trace)\n";
    }
    double tEnd = 0.0;
    for (const auto& e : entries) {
        tEnd = std::max(tEnd, e.endV);
    }
    if (tEnd <= 0.0) {
        tEnd = 1.0;
    }

    // Group rows by (device, stream) and lay entries on a character raster.
    std::map<std::pair<int, int>, std::string> rows;
    for (const auto& e : entries) {
        auto& row = rows[{e.device, e.stream}];
        if (row.empty()) {
            row.assign(static_cast<size_t>(columns), '.');
        }
        int c0 = static_cast<int>(std::floor(e.startV / tEnd * columns));
        int c1 = static_cast<int>(std::ceil(e.endV / tEnd * columns));
        c0 = std::clamp(c0, 0, columns - 1);
        c1 = std::clamp(c1, c0 + 1, columns);
        const char glyph = e.kind == "transfer" ? '~' : (e.kind == "hostFn" ? '#' : '=');
        char label = e.name.empty() ? glyph : e.name.front();
        for (int c = c0; c < c1; ++c) {
            row[static_cast<size_t>(c)] = (c == c0) ? label : glyph;
        }
    }

    std::ostringstream os;
    os << "virtual timeline, total " << tEnd * 1e6 << " us ('=' kernel, '~' transfer, '#' host)\n";
    for (const auto& [key, row] : rows) {
        os << "dev" << key.first << "/s" << key.second << " |" << row << "|\n";
    }
    return os.str();
}

}  // namespace neon::sys
