#include "sys/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "core/error.hpp"

namespace neon::sys {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// Fixed-notation microsecond value for Chrome's `ts`/`dur` fields (the
/// viewer rejects scientific notation in some builds).
std::string usFmt(double seconds)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << seconds * 1e6;
    return os.str();
}

TraceKind kindFromString(const std::string& kind)
{
    if (kind == "kernel") {
        return TraceKind::Kernel;
    }
    if (kind == "transfer") {
        return TraceKind::Transfer;
    }
    if (kind == "hostFn") {
        return TraceKind::HostFn;
    }
    if (kind == "wait") {
        return TraceKind::Wait;
    }
    if (kind == "fault") {
        return TraceKind::Fault;
    }
    if (kind == "hostPool") {
        return TraceKind::HostPool;
    }
    throw NeonException("Trace::add: unknown kind string '" + kind + "'");
}

constexpr size_t kReserveChunk = 1024;

}  // namespace

const std::string& to_string(TraceKind k)
{
    static const std::string kNames[] = {"kernel",  "transfer", "hostFn",
                                         "wait",    "fault",    "hostPool"};
    return kNames[static_cast<size_t>(k)];
}

void Trace::Store::reserveMore(size_t extra)
{
    const size_t want = size() + extra;
    if (device.capacity() >= want) {
        return;
    }
    const size_t cap = std::max(want, size() + kReserveChunk);
    device.reserve(cap);
    stream.reserve(cap);
    kind.reserve(cap);
    nameId.reserve(cap);
    startV.reserve(cap);
    endV.reserve(cap);
    bytes.reserve(cap);
    containerId.reserve(cap);
    runId.reserve(cap);
    jobId.reserve(cap);
    waitEventId.reserve(cap);
    srcDevice.reserve(cap);
    srcStream.reserve(cap);
}

void Trace::Store::clear()
{
    device.clear();
    stream.clear();
    kind.clear();
    nameId.clear();
    startV.clear();
    endV.clear();
    bytes.clear();
    containerId.clear();
    runId.clear();
    jobId.clear();
    waitEventId.clear();
    srcDevice.clear();
    srcStream.clear();
}

void Trace::enable(bool on)
{
    mEnabled.store(on, std::memory_order_relaxed);
}

uint32_t Trace::internName(std::string_view name)
{
    // Called with mMutex held. The transient string only allocates on a
    // miss path for genuinely new names.
    auto it = mNameIds.find(std::string(name));
    if (it != mNameIds.end()) {
        return it->second;
    }
    const auto id = static_cast<uint32_t>(mNames.size());
    mNames.emplace_back(name);
    mNameIds.emplace(mNames.back(), id);
    return id;
}

void Trace::record(int device, int stream, TraceKind kind, std::string_view name, double startV,
                   double endV, uint64_t bytes, int containerId, int runId, int jobId,
                   uint64_t waitEventId, int srcDevice, int srcStream)
{
    if (!enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lock(mMutex);
    mStore.reserveMore(1);
    mStore.device.push_back(device);
    mStore.stream.push_back(stream);
    mStore.kind.push_back(static_cast<uint8_t>(kind));
    mStore.nameId.push_back(internName(name));
    mStore.startV.push_back(startV);
    mStore.endV.push_back(endV);
    mStore.bytes.push_back(bytes);
    mStore.containerId.push_back(containerId);
    mStore.runId.push_back(runId);
    mStore.jobId.push_back(jobId);
    mStore.waitEventId.push_back(waitEventId);
    mStore.srcDevice.push_back(srcDevice);
    mStore.srcStream.push_back(srcStream);
}

void Trace::add(const TraceEntry& entry)
{
    record(entry.device, entry.stream, kindFromString(entry.kind), entry.name, entry.startV,
           entry.endV, entry.bytes, entry.containerId, entry.runId, entry.jobId,
           entry.waitEventId, entry.srcDevice, entry.srcStream);
}

void Trace::clear()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mStore.clear();
    mNames.clear();
    mNameIds.clear();
}

size_t Trace::size() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mStore.size();
}

size_t Trace::countKind(TraceKind kind) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return static_cast<size_t>(
        std::count(mStore.kind.begin(), mStore.kind.end(), static_cast<uint8_t>(kind)));
}

TraceEntry Trace::materialize(size_t i) const
{
    TraceEntry e;
    e.device = mStore.device[i];
    e.stream = mStore.stream[i];
    e.kind = to_string(static_cast<TraceKind>(mStore.kind[i]));
    e.name = mNames[mStore.nameId[i]];
    e.startV = mStore.startV[i];
    e.endV = mStore.endV[i];
    e.bytes = mStore.bytes[i];
    e.containerId = mStore.containerId[i];
    e.runId = mStore.runId[i];
    e.jobId = mStore.jobId[i];
    e.waitEventId = mStore.waitEventId[i];
    e.srcDevice = mStore.srcDevice[i];
    e.srcStream = mStore.srcStream[i];
    return e;
}

std::vector<TraceEntry> Trace::entries() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    std::vector<TraceEntry>     out;
    out.reserve(mStore.size());
    for (size_t i = 0; i < mStore.size(); ++i) {
        out.push_back(materialize(i));
    }
    return out;
}

std::vector<TraceEntry> Trace::entriesForRuns(int firstRunId, int lastRunId) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    std::vector<TraceEntry>     out;
    for (size_t i = 0; i < mStore.size(); ++i) {
        if (mStore.runId[i] >= firstRunId && mStore.runId[i] <= lastRunId) {
            out.push_back(materialize(i));
        }
    }
    return out;
}

std::vector<TraceEntry> Trace::entriesForJob(int jobId) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    std::vector<TraceEntry>     out;
    for (size_t i = 0; i < mStore.size(); ++i) {
        if (mStore.jobId[i] == jobId) {
            out.push_back(materialize(i));
        }
    }
    return out;
}

void Trace::setContext(TraceContext ctx)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mContext = ctx;
}

TraceContext Trace::context() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mContext;
}

int Trace::nextRunId()
{
    return mNextRunId.fetch_add(1, std::memory_order_relaxed);
}

std::string Trace::gantt(int columns) const
{
    auto entries = this->entries();
    // Waits mark idle time and hostPool rows shadow their kernel row —
    // neither belongs on the device timeline raster.
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [](const TraceEntry& e) {
                                     return e.kind == "wait" || e.kind == "hostPool";
                                 }),
                  entries.end());
    if (entries.empty()) {
        return "(empty trace)\n";
    }
    double tEnd = 0.0;
    for (const auto& e : entries) {
        tEnd = std::max(tEnd, e.endV);
    }
    if (tEnd <= 0.0) {
        tEnd = 1.0;
    }

    // Group rows by (device, stream) and lay entries on a character raster.
    std::map<std::pair<int, int>, std::string> rows;
    for (const auto& e : entries) {
        auto& row = rows[{e.device, e.stream}];
        if (row.empty()) {
            row.assign(static_cast<size_t>(columns), '.');
        }
        int c0 = static_cast<int>(std::floor(e.startV / tEnd * columns));
        int c1 = static_cast<int>(std::ceil(e.endV / tEnd * columns));
        c0 = std::clamp(c0, 0, columns - 1);
        c1 = std::clamp(c1, c0 + 1, columns);
        const char glyph = e.kind == "transfer" ? '~' : (e.kind == "hostFn" ? '#' : '=');
        char label = e.name.empty() ? glyph : e.name.front();
        for (int c = c0; c < c1; ++c) {
            row[static_cast<size_t>(c)] = (c == c0) ? label : glyph;
        }
    }

    std::ostringstream os;
    os << "virtual timeline, total " << tEnd * 1e6 << " us ('=' kernel, '~' transfer, '#' host)\n";
    for (const auto& [key, row] : rows) {
        os << "dev" << key.first << "/s" << key.second << " |" << row << "|\n";
    }
    return os.str();
}

std::string Trace::chromeTrace() const
{
    auto entries = this->entries();
    // Chrome/Perfetto expect events sorted by timestamp; a stable sort keeps
    // enqueue order among equal timestamps.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TraceEntry& a, const TraceEntry& b) { return a.startV < b.startV; });

    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& event) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\n" << event;
    };

    // hostPool rows get their own thread lanes (one per pool worker) so
    // host-core occupancy shows beside the stream timeline instead of
    // shadowing the kernel slice. Lane tid = kPoolTidBase + worker slot.
    constexpr int kPoolTidBase = 1000;
    auto tidOf = [&](const TraceEntry& e) {
        return e.kind == "hostPool" ? kPoolTidBase + std::max(e.srcDevice, 0) : e.stream;
    };

    // Metadata: name processes after devices and threads after streams.
    std::map<int, std::vector<int>> rows;
    for (const auto& e : entries) {
        auto& streams = rows[e.device];
        const int tid = tidOf(e);
        if (std::find(streams.begin(), streams.end(), tid) == streams.end()) {
            streams.push_back(tid);
        }
    }
    for (const auto& [dev, streams] : rows) {
        std::ostringstream m;
        m << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << dev
          << ",\"args\":{\"name\":\"dev" << dev << "\"}}";
        emit(m.str());
        for (const int s : streams) {
            std::ostringstream t;
            t << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << dev << ",\"tid\":" << s
              << ",\"args\":{\"name\":\"";
            if (s >= kPoolTidBase) {
                t << "hostWorker" << (s - kPoolTidBase);
            } else {
                t << "stream" << s;
            }
            t << "\"}}";
            emit(t.str());
        }
    }

    for (const auto& e : entries) {
        std::ostringstream ev;
        ev << "{\"ph\":\"X\",\"name\":\"" << jsonEscape(e.name.empty() ? e.kind : e.name)
           << "\",\"cat\":\"" << jsonEscape(e.kind) << "\",\"pid\":" << e.device
           << ",\"tid\":" << tidOf(e) << ",\"ts\":" << usFmt(e.startV)
           << ",\"dur\":" << usFmt(std::max(0.0, e.endV - e.startV)) << ",\"args\":{";
        ev << "\"container\":" << e.containerId << ",\"run\":" << e.runId;
        if (e.jobId >= 0) {
            ev << ",\"job\":" << e.jobId;
        }
        if (e.kind == "hostPool") {
            ev << ",\"worker\":" << e.srcDevice << ",\"chunks\":" << e.bytes;
        } else if (e.bytes > 0) {
            ev << ",\"bytes\":" << e.bytes;
        }
        ev << "}}";
        emit(ev.str());

        // Wait edge: flow arrow from the recording (device, stream) at the
        // event's timestamp to the waiting stream.
        if (e.kind == "wait" && e.srcDevice >= 0) {
            std::ostringstream fs;
            fs << "{\"ph\":\"s\",\"id\":" << e.waitEventId
               << ",\"name\":\"dep\",\"cat\":\"wait\",\"pid\":" << e.srcDevice
               << ",\"tid\":" << e.srcStream << ",\"ts\":" << usFmt(e.endV) << "}";
            emit(fs.str());
            std::ostringstream ff;
            ff << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << e.waitEventId
               << ",\"name\":\"dep\",\"cat\":\"wait\",\"pid\":" << e.device
               << ",\"tid\":" << e.stream << ",\"ts\":" << usFmt(e.endV) << "}";
            emit(ff.str());
        }
    }
    os << "\n]}\n";
    return os.str();
}

}  // namespace neon::sys
