#include "sys/schedule_log.hpp"

namespace neon::sys {

std::string to_string(ScheduleOpKind k)
{
    switch (k) {
        case ScheduleOpKind::Kernel: return "kernel";
        case ScheduleOpKind::Transfer: return "transfer";
        case ScheduleOpKind::HostFn: return "hostFn";
        case ScheduleOpKind::Record: return "record";
        case ScheduleOpKind::Wait: return "wait";
    }
    return "?";
}

void ScheduleLog::add(ScheduleRecord r)
{
    std::lock_guard<std::mutex> lock(mMutex);
    r.seq = mNextSeq++;
    mRecords.push_back(r);
}

void ScheduleLog::clear()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mRecords.clear();
    mMetaByRun.clear();
    mConsumerState.reset();
    // seq keeps counting: consumers key on indices of the new record list.
    mNextSeq = 0;
}

size_t ScheduleLog::size() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mRecords.size();
}

std::vector<ScheduleRecord> ScheduleLog::records() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mRecords;
}

std::vector<ScheduleRecord> ScheduleLog::recordsFrom(size_t cursor) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    if (cursor >= mRecords.size()) {
        return {};
    }
    return {mRecords.begin() + static_cast<ptrdiff_t>(cursor), mRecords.end()};
}

void ScheduleLog::registerRunMeta(int runId, std::shared_ptr<const ContainerMetaMap> meta)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mMetaByRun[runId] = std::move(meta);
}

std::shared_ptr<const ContainerMetaMap> ScheduleLog::metaForRun(int runId) const
{
    std::lock_guard<std::mutex> lock(mMutex);
    auto it = mMetaByRun.find(runId);
    return it == mMetaByRun.end() ? nullptr : it->second;
}

void ScheduleLog::setSyncCallback(std::function<void()> cb)
{
    std::lock_guard<std::mutex> lock(mMutex);
    mSyncCallback = std::move(cb);
}

void ScheduleLog::runSyncCallback()
{
    std::function<void()> cb;
    {
        std::lock_guard<std::mutex> lock(mMutex);
        cb = mSyncCallback;
    }
    if (cb) {
        cb();
    }
}

}  // namespace neon::sys
