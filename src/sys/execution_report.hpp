#pragma once
// ExecutionReport: machine-readable aggregation of one execution window of
// the virtual timeline (docs/observability.md). Computed from structured
// sys::Trace entries, it quantifies exactly the properties the paper's
// Figs. 7-9 argue about — how much communication hid under computation,
// how busy every device was, and where the time went per container —
// instead of leaving them to visual inspection of a Gantt chart.

#include <cstdint>
#include <string>
#include <vector>

#include "sys/trace.hpp"

namespace neon {

class ExecutionReport
{
   public:
    struct DeviceStats
    {
        int      device = -1;
        double   computeBusy = 0.0;   ///< union of kernel intervals [s]
        double   transferBusy = 0.0;  ///< union of transfer intervals [s]
        double   overlap = 0.0;       ///< time both a kernel and a transfer ran [s]
        double   waitTime = 0.0;      ///< stream stall time on wait edges [s]
        uint64_t haloBytes = 0;       ///< transfer payload in/out of this device
        int      kernels = 0;
        int      transfers = 0;
        int      faults = 0;          ///< injected fault events (retries, stalls)
        double   faultTime = 0.0;     ///< virtual time lost to faults [s]
        double   hostPoolBusy = 0.0;  ///< summed host-pool worker busy time [s]
        uint64_t hostPoolChunks = 0;  ///< span chunks executed by the host pool
        int      hostWorkers = 0;     ///< distinct pool workers that ran kernels here
    };

    struct StreamStats
    {
        int    device = -1;
        int    stream = -1;
        double busy = 0.0;         ///< union of op intervals (waits excluded) [s]
        double utilization = 0.0;  ///< busy / makespan
    };

    struct ContainerStats
    {
        std::string name;
        int         launches = 0;
        double      kernelTime = 0.0;    ///< summed kernel durations [s]
        double      transferTime = 0.0;  ///< summed transfer durations [s]
        uint64_t    bytes = 0;
    };

    /// Aggregate `entries` (one run window of a trace). `devCount` sizes the
    /// per-device table even for devices that recorded nothing.
    static ExecutionReport fromEntries(const std::vector<sys::TraceEntry>& entries, int devCount);

    // --- window ----------------------------------------------------------
    [[nodiscard]] double windowStart() const { return mWindowStart; }
    [[nodiscard]] double windowEnd() const { return mWindowEnd; }
    [[nodiscard]] double makespan() const { return mWindowEnd - mWindowStart; }
    [[nodiscard]] int    eventCount() const { return mEvents; }
    [[nodiscard]] bool   empty() const { return mEvents == 0; }

    // --- headline metrics -------------------------------------------------
    /// Percentage of total transfer time that ran concurrently with a
    /// kernel on the same device — the paper's OCC effectiveness measure.
    /// 0 when the window moved no bytes.
    [[nodiscard]] double overlapPercent() const;
    /// Total bytes moved between devices in the window.
    [[nodiscard]] uint64_t haloBytes() const;
    /// Mean of computeBusy / makespan across devices.
    [[nodiscard]] double deviceUtilization() const;
    /// Duration-weighted longest chain of back-to-back ops (virtual time):
    /// a lower bound on the makespan any schedule could reach.
    [[nodiscard]] double criticalPath() const { return mCriticalPath; }
    [[nodiscard]] double totalWaitTime() const;
    /// Injected fault events (transfer retries, stream stalls) in the
    /// window, and the virtual time they consumed (docs/robustness.md).
    [[nodiscard]] int    faultEvents() const;
    [[nodiscard]] double totalFaultTime() const;
    /// Summed host-pool worker busy time across devices (host-core
    /// occupancy of CPU-device kernels; 0 without a pool).
    [[nodiscard]] double totalHostPoolBusy() const;

    [[nodiscard]] const std::vector<DeviceStats>&    devices() const { return mDevices; }
    [[nodiscard]] const std::vector<StreamStats>&    streams() const { return mStreams; }
    /// Sorted by kernelTime + transferTime, descending.
    [[nodiscard]] const std::vector<ContainerStats>& containers() const { return mContainers; }

    [[nodiscard]] std::string toString() const;
    [[nodiscard]] std::string toJson() const;

   private:
    double                      mWindowStart = 0.0;
    double                      mWindowEnd = 0.0;
    double                      mCriticalPath = 0.0;
    int                         mEvents = 0;
    std::vector<DeviceStats>    mDevices;
    std::vector<StreamStats>    mStreams;
    std::vector<ContainerStats> mContainers;
};

}  // namespace neon
