#include "sys/device.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/error.hpp"

namespace neon::sys {

Device::Device(int id, DeviceType type, const SimConfig& config)
    : mId(id), mType(type), mConfig(config)
{
}

Device::~Device()
{
    if (!mConfig.dryRun) {
        for (auto& [ptr, bytes] : mAllocs) {
            ::operator delete(ptr, std::align_val_t{64});
        }
    }
}

void* Device::alloc(size_t bytes)
{
    std::lock_guard<std::mutex> lock(mMutex);
    if (mInUse + bytes > mConfig.deviceMemCapacity) {
        throw DeviceMemoryError(mId, bytes, mInUse, mConfig.deviceMemCapacity);
    }
    void* ptr = nullptr;
    if (mConfig.dryRun) {
        // Unique fake address so free() bookkeeping still works; never deref.
        mDryRunCursor += bytes + 64;
        ptr = reinterpret_cast<void*>(mDryRunCursor);
    } else {
        ptr = ::operator new(bytes, std::align_val_t{64});
    }
    mAllocs.emplace(ptr, bytes);
    mInUse += bytes;
    mPeak = std::max(mPeak, mInUse);
    // In dry-run the returned pointer is a fake address used only as a map
    // key for free(); execution is skipped everywhere so it is never
    // dereferenced.
    return ptr;
}

void Device::free(void* ptr) noexcept
{
    if (ptr == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lock(mMutex);
    auto it = mAllocs.find(ptr);
    if (it == mAllocs.end()) {
        return;
    }
    mInUse -= it->second;
    if (!mConfig.dryRun) {
        ::operator delete(ptr, std::align_val_t{64});
    }
    mAllocs.erase(it);
}

size_t Device::bytesInUse() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mInUse;
}

size_t Device::peakBytes() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    return mPeak;
}

void Device::resetClocks()
{
    computeAvailable = 0.0;
    copyAvailable[0] = 0.0;
    copyAvailable[1] = 0.0;
}

}  // namespace neon::sys
