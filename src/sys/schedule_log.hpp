#pragma once
// ScheduleLog: engine-independent record of the *enqueued* command stream
// (neon::analysis, docs/analysis.md). Where sys::Trace records what an
// engine *did* (virtual timestamps), the ScheduleLog records what the host
// *asked for*: one entry per op in enqueue order, including the event ids
// of record/wait ops. Stream FIFO order plus record->wait edges define the
// happens-before partial order the race detector checks conflicting
// accesses against — the log is identical for the sequential and threaded
// engines because it is written by the enqueuing host thread.
//
// Container metadata (access lists distilled to core types) is registered
// per run window by the Skeleton so the detector can attach per-op
// read/write sets without the sys layer depending on upper layers.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace neon::sys {

enum class ScheduleOpKind : uint8_t
{
    Kernel,
    Transfer,
    HostFn,
    Record,  ///< event record; eventId identifies the event
    Wait,    ///< event wait; eventId identifies the awaited event
};

std::string to_string(ScheduleOpKind k);

/// One enqueued op, in global enqueue order.
struct ScheduleRecord
{
    uint64_t       seq = 0;
    int            device = -1;
    int            stream = -1;
    ScheduleOpKind kind = ScheduleOpKind::Kernel;
    uint64_t       eventId = 0;       ///< Record/Wait only
    int            containerId = -1;  ///< skeleton graph-node id, -1 outside
    int            runId = -1;        ///< skeleton run() window id, -1 outside
};

/// One access of a container distilled to core types (a mirror of
/// set::DataAccess without the set-layer halo handle).
struct MetaAccess
{
    uint64_t    uid = 0;
    Access      access = Access::READ;
    Compute     compute = Compute::MAP;
    bool        scalar = false;       ///< GlobalScalar (global/partial segments)
    bool        stencilHalo = false;  ///< stencil read of a halo-carrying field
    std::string name;
    /// Stencil halo reads only: per device, whether the lower/upper halo
    /// half is actually fed by a neighbour (derived from HaloOps::peers —
    /// segment-list fields like BField can have empty boundaries toward a
    /// neighbour, and then no segments ever land in that halo half). Empty
    /// vectors mean "unknown": consumers fall back to the dense ±1 rule.
    std::vector<uint8_t> haloLoFed;
    std::vector<uint8_t> haloHiFed;
};

enum class MetaNodeKind : uint8_t
{
    Compute,
    Halo,
    ScalarOp,
};

/// What one graph node does, as needed to derive per-device read/write
/// segment sets (analysis/access_model.hpp).
struct ContainerMeta
{
    std::string             label;
    MetaNodeKind            kind = MetaNodeKind::Compute;
    DataView                view = DataView::STANDARD;
    Compute                 pattern = Compute::MAP;
    std::vector<MetaAccess> accesses;
    /// Halo nodes only: per sending device, the receiving neighbour devices.
    std::vector<std::vector<int>> haloPeers;
};

/// Keyed by skeleton graph-node id (== ScheduleRecord::containerId).
using ContainerMetaMap = std::unordered_map<int, ContainerMeta>;

class ScheduleLog
{
   public:
    void enable(bool on = true) { mEnabled.store(on, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const { return mEnabled.load(std::memory_order_relaxed); }

    /// Append one record (assigns seq). Called by Stream::enqueue when
    /// enabled; thread-safe.
    void add(ScheduleRecord r);
    /// Drop all records, registered metadata and consumer state (the
    /// enabled flag is left as is).
    void clear();

    [[nodiscard]] size_t size() const;
    [[nodiscard]] std::vector<ScheduleRecord> records() const;
    /// Records with index >= cursor (for incremental consumers).
    [[nodiscard]] std::vector<ScheduleRecord> recordsFrom(size_t cursor) const;

    /// Associate run `runId` with the metadata of the graph that issued it.
    /// The map is shared so repeated runs of one skeleton register the same
    /// cached object.
    void registerRunMeta(int runId, std::shared_ptr<const ContainerMetaMap> meta);
    [[nodiscard]] std::shared_ptr<const ContainerMetaMap> metaForRun(int runId) const;

    /// Opaque state slot for an incremental consumer (neon::analysis keeps
    /// its vector-clock detector here so repeated drains stay linear).
    [[nodiscard]] std::shared_ptr<void>& consumerState() { return mConsumerState; }

    /// Callback invoked by Backend::sync() while the log is enabled (the
    /// NEON_ANALYSIS env mode drains the race detector from it).
    void setSyncCallback(std::function<void()> cb);
    void runSyncCallback();

   private:
    mutable std::mutex          mMutex;
    std::atomic<bool>           mEnabled{false};
    uint64_t                    mNextSeq = 0;
    std::vector<ScheduleRecord> mRecords;
    std::unordered_map<int, std::shared_ptr<const ContainerMetaMap>> mMetaByRun;
    std::shared_ptr<void>                                            mConsumerState;
    std::function<void()>                                            mSyncCallback;
};

}  // namespace neon::sys
