#pragma once
// Persistent host worker pool shared per Backend (docs/performance.md,
// "Host parallelism"). Kernels are pre-split into a fixed, span-derived
// chunk partition (domain::spanChunkCount); the pool only decides WHICH
// thread runs each chunk, never WHAT a chunk contains, so results are
// bitwise identical for any thread count. Reductions keep determinism by
// writing per-chunk partials that a fixed-shape combine tree folds after
// the parallel region (set/container.hpp).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace neon::sys {

/// Chunk entry point: fn(ctx, chunk, nChunks). Plain function pointer so
/// the hot path is one indirect call (no std::function).
using ChunkFn = void (*)(void*, int32_t, int32_t);

/// Per-worker utilization sample for one parallelFor, fed into
/// sys::Trace as TraceKind::HostPool rows.
struct WorkerSample
{
    int32_t worker = 0;       ///< pool slot (0 = the submitting thread)
    int32_t chunks = 0;       ///< chunks this worker executed
    double  busySeconds = 0;  ///< wall time spent inside chunk bodies
};

/// A fixed-size pool of host worker threads. Threads are spawned lazily on
/// the first parallelFor that can use them and live until destruction.
/// parallelFor is serialized internally, so concurrent submitters (the
/// threaded engine's per-stream workers) queue rather than interleave.
class ThreadPool
{
   public:
    explicit ThreadPool(int32_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Configured width (>= 1). 1 means "inline, never spawn workers".
    [[nodiscard]] int32_t threadCount() const { return mThreads; }

    /// Run fn(ctx, c, nChunks) for every c in [0, nChunks). Chunks are
    /// claimed dynamically (work stealing over a shared counter) — safe
    /// because chunks are disjoint by construction. Blocks until every
    /// chunk finished; the submitting thread participates as worker 0.
    /// The first exception thrown by a chunk is rethrown here after all
    /// workers drained. When `samples` is non-null it is filled with one
    /// entry per worker that ran at least one chunk.
    void parallelFor(int32_t                    nChunks,
                     ChunkFn                    fn,
                     void*                      ctx,
                     std::vector<WorkerSample>* samples = nullptr);

   private:
    struct Slot
    {
        int32_t chunks = 0;
        double  busySeconds = 0;
    };

    void workerLoop(int32_t slot);
    void runChunks(int32_t slot);
    void spawnWorkers();

    const int32_t mThreads;

    std::mutex mSubmitMutex;  ///< one parallelFor at a time

    std::mutex              mMutex;
    std::condition_variable mCvWork;
    std::condition_variable mCvDone;
    uint64_t                mGeneration = 0;  ///< bumped per job, wakes workers
    int32_t                 mActive = 0;      ///< workers still inside the job
    bool                    mStop = false;

    // Current job (valid while mActive > 0; published under mMutex).
    ChunkFn              mFn = nullptr;
    void*                mCtx = nullptr;
    int32_t              mNChunkTotal = 0;
    std::atomic<int32_t> mNextChunk{0};
    std::exception_ptr   mFirstError;
    std::vector<Slot>    mSlots;

    bool                     mSpawned = false;
    std::vector<std::thread> mWorkers;
};

}  // namespace neon::sys
