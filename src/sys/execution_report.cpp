#include "sys/execution_report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace neon {

namespace {

using Interval = std::pair<double, double>;

/// Merge overlapping intervals in place; returns total covered length.
double mergedLength(std::vector<Interval>& xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    std::sort(xs.begin(), xs.end());
    std::vector<Interval> merged;
    merged.push_back(xs.front());
    for (size_t i = 1; i < xs.size(); ++i) {
        if (xs[i].first <= merged.back().second) {
            merged.back().second = std::max(merged.back().second, xs[i].second);
        } else {
            merged.push_back(xs[i]);
        }
    }
    xs = std::move(merged);
    double total = 0.0;
    for (const auto& [a, b] : xs) {
        total += b - a;
    }
    return total;
}

/// Total length of the intersection of two merged (sorted, disjoint) lists.
double intersectionLength(const std::vector<Interval>& a, const std::vector<Interval>& b)
{
    double total = 0.0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
        const double lo = std::max(a[i].first, b[j].first);
        const double hi = std::min(a[i].second, b[j].second);
        if (hi > lo) {
            total += hi - lo;
        }
        if (a[i].second < b[j].second) {
            ++i;
        } else {
            ++j;
        }
    }
    return total;
}

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

std::string num(double v)
{
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
}

bool isWork(const sys::TraceEntry& e)
{
    return e.kind == "kernel" || e.kind == "transfer" || e.kind == "hostFn";
}

}  // namespace

ExecutionReport ExecutionReport::fromEntries(const std::vector<sys::TraceEntry>& entries,
                                             int                                 devCount)
{
    ExecutionReport r;
    r.mDevices.resize(static_cast<size_t>(std::max(devCount, 0)));
    for (int d = 0; d < devCount; ++d) {
        r.mDevices[static_cast<size_t>(d)].device = d;
    }
    if (entries.empty()) {
        return r;
    }

    r.mEvents = static_cast<int>(entries.size());
    r.mWindowStart = entries.front().startV;
    r.mWindowEnd = entries.front().endV;
    for (const auto& e : entries) {
        r.mWindowStart = std::min(r.mWindowStart, e.startV);
        r.mWindowEnd = std::max(r.mWindowEnd, e.endV);
    }

    auto deviceSlot = [&](int dev) -> DeviceStats& {
        while (static_cast<int>(r.mDevices.size()) <= dev) {
            DeviceStats ds;
            ds.device = static_cast<int>(r.mDevices.size());
            r.mDevices.push_back(ds);
        }
        return r.mDevices[static_cast<size_t>(dev)];
    };

    // Per-device interval sets, per-stream busy sets, per-container sums.
    std::map<int, std::vector<Interval>>                 kernelIv;
    std::map<int, std::vector<Interval>>                 transferIv;
    std::map<std::pair<int, int>, std::vector<Interval>> streamIv;
    std::map<std::string, ContainerStats>                byName;
    std::map<int, std::set<int>>                         poolWorkers;

    for (const auto& e : entries) {
        if (e.device < 0) {
            continue;
        }
        DeviceStats& ds = deviceSlot(e.device);
        if (e.kind == "wait") {
            ds.waitTime += e.endV - e.startV;
            continue;
        }
        if (e.kind == "fault") {
            ds.faults += 1;
            ds.faultTime += e.endV - e.startV;
            continue;
        }
        if (e.kind == "hostPool") {
            // One row per pool worker that ran chunks of a CPU-device
            // kernel: srcDevice = worker slot, bytes = chunks executed.
            ds.hostPoolBusy += e.endV - e.startV;
            ds.hostPoolChunks += e.bytes;
            poolWorkers[e.device].insert(e.srcDevice);
            continue;
        }
        if (!isWork(e)) {
            continue;
        }
        streamIv[{e.device, e.stream}].push_back({e.startV, e.endV});
        ContainerStats& cs = byName[e.name];
        cs.name = e.name;
        if (e.kind == "kernel") {
            ds.kernels += 1;
            kernelIv[e.device].push_back({e.startV, e.endV});
            cs.launches += 1;
            cs.kernelTime += e.endV - e.startV;
        } else if (e.kind == "transfer") {
            ds.transfers += 1;
            ds.haloBytes += e.bytes;
            transferIv[e.device].push_back({e.startV, e.endV});
            cs.launches += 1;
            cs.transferTime += e.endV - e.startV;
            cs.bytes += e.bytes;
        } else {  // hostFn counts as compute occupancy of its stream
            cs.launches += 1;
            cs.kernelTime += e.endV - e.startV;
        }
    }

    for (auto& [dev, workers] : poolWorkers) {
        deviceSlot(dev).hostWorkers = static_cast<int>(workers.size());
    }

    for (auto& ds : r.mDevices) {
        auto ki = kernelIv.find(ds.device);
        auto ti = transferIv.find(ds.device);
        if (ki != kernelIv.end()) {
            ds.computeBusy = mergedLength(ki->second);
        }
        if (ti != transferIv.end()) {
            ds.transferBusy = mergedLength(ti->second);
        }
        if (ki != kernelIv.end() && ti != transferIv.end()) {
            ds.overlap = intersectionLength(ki->second, ti->second);
        }
    }

    const double makespan = r.makespan();
    for (auto& [key, iv] : streamIv) {
        StreamStats ss;
        ss.device = key.first;
        ss.stream = key.second;
        ss.busy = mergedLength(iv);
        ss.utilization = makespan > 0.0 ? ss.busy / makespan : 0.0;
        r.mStreams.push_back(ss);
    }

    for (auto& [name, cs] : byName) {
        r.mContainers.push_back(cs);
    }
    std::sort(r.mContainers.begin(), r.mContainers.end(),
              [](const ContainerStats& a, const ContainerStats& b) {
                  return a.kernelTime + a.transferTime > b.kernelTime + b.transferTime;
              });

    // Critical path: duration-weighted longest chain of work ops where a
    // successor starts exactly when a predecessor ends (tight dependency in
    // the discrete-event timeline) or follows it on the same stream FIFO.
    std::vector<const sys::TraceEntry*> work;
    for (const auto& e : entries) {
        if (isWork(e)) {
            work.push_back(&e);
        }
    }
    std::sort(work.begin(), work.end(), [](const sys::TraceEntry* a, const sys::TraceEntry* b) {
        return a->startV < b->startV;
    });
    const double        eps = 1e-12 + makespan * 1e-9;
    std::vector<double> dp(work.size(), 0.0);
    for (size_t i = 0; i < work.size(); ++i) {
        const auto& wi = *work[i];
        double      best = 0.0;
        for (size_t j = 0; j < i; ++j) {
            const auto& wj = *work[j];
            if (wj.endV > wi.startV + eps) {
                continue;  // j still running when i starts: not a predecessor
            }
            const bool tight = std::abs(wj.endV - wi.startV) <= eps;
            const bool sameStream = wj.device == wi.device && wj.stream == wi.stream;
            if ((tight || sameStream) && dp[j] > best) {
                best = dp[j];
            }
        }
        dp[i] = best + (wi.endV - wi.startV);
        r.mCriticalPath = std::max(r.mCriticalPath, dp[i]);
    }

    return r;
}

double ExecutionReport::overlapPercent() const
{
    double transfer = 0.0;
    double overlap = 0.0;
    for (const auto& d : mDevices) {
        transfer += d.transferBusy;
        overlap += d.overlap;
    }
    return transfer > 0.0 ? 100.0 * overlap / transfer : 0.0;
}

uint64_t ExecutionReport::haloBytes() const
{
    uint64_t total = 0;
    for (const auto& d : mDevices) {
        total += d.haloBytes;
    }
    return total;
}

double ExecutionReport::deviceUtilization() const
{
    if (mDevices.empty() || makespan() <= 0.0) {
        return 0.0;
    }
    double sum = 0.0;
    for (const auto& d : mDevices) {
        sum += d.computeBusy;
    }
    return sum / (makespan() * static_cast<double>(mDevices.size()));
}

double ExecutionReport::totalWaitTime() const
{
    double total = 0.0;
    for (const auto& d : mDevices) {
        total += d.waitTime;
    }
    return total;
}

int ExecutionReport::faultEvents() const
{
    int total = 0;
    for (const auto& d : mDevices) {
        total += d.faults;
    }
    return total;
}

double ExecutionReport::totalFaultTime() const
{
    double total = 0.0;
    for (const auto& d : mDevices) {
        total += d.faultTime;
    }
    return total;
}

double ExecutionReport::totalHostPoolBusy() const
{
    double total = 0.0;
    for (const auto& d : mDevices) {
        total += d.hostPoolBusy;
    }
    return total;
}

std::string ExecutionReport::toString() const
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "execution report: " << mEvents << " events, window " << mWindowStart * 1e6 << ".."
       << mWindowEnd * 1e6 << " us (makespan " << makespan() * 1e6 << " us)\n";
    os << "  overlap: " << overlapPercent() << "% of transfer time under compute\n";
    os << "  halo bytes: " << haloBytes() << ", device utilization: " << deviceUtilization() * 100.0
       << "%, critical path: " << criticalPath() * 1e6 << " us, wait: " << totalWaitTime() * 1e6
       << " us\n";
    if (faultEvents() > 0) {
        os << "  faults: " << faultEvents() << " events, " << totalFaultTime() * 1e6
           << " us lost to retries/stalls\n";
    }
    for (const auto& d : mDevices) {
        os << "  dev" << d.device << ": compute " << d.computeBusy * 1e6 << " us, transfer "
           << d.transferBusy * 1e6 << " us, overlap " << d.overlap * 1e6 << " us, "
           << d.kernels << " kernels, " << d.transfers << " transfers, " << d.haloBytes
           << " bytes\n";
        if (d.hostPoolBusy > 0.0 || d.hostPoolChunks > 0) {
            os << "  dev" << d.device << " host pool: " << d.hostPoolBusy * 1e6
               << " us busy across " << d.hostWorkers << " workers, " << d.hostPoolChunks
               << " chunks\n";
        }
    }
    for (const auto& s : mStreams) {
        os << "  dev" << s.device << "/s" << s.stream << ": busy " << s.busy * 1e6 << " us ("
           << s.utilization * 100.0 << "%)\n";
    }
    os << "  containers (by time):\n";
    for (const auto& c : mContainers) {
        os << "    " << c.name << ": " << c.launches << " launches, kernel "
           << c.kernelTime * 1e6 << " us, transfer " << c.transferTime * 1e6 << " us";
        if (c.bytes > 0) {
            os << ", " << c.bytes << " bytes";
        }
        os << "\n";
    }
    return os.str();
}

std::string ExecutionReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"window\": {\"start\": " << num(mWindowStart) << ", \"end\": " << num(mWindowEnd)
       << ", \"makespan\": " << num(makespan()) << "},\n";
    os << "  \"events\": " << mEvents << ",\n";
    os << "  \"overlapPercent\": " << num(overlapPercent()) << ",\n";
    os << "  \"haloBytes\": " << haloBytes() << ",\n";
    os << "  \"deviceUtilization\": " << num(deviceUtilization()) << ",\n";
    os << "  \"criticalPath\": " << num(criticalPath()) << ",\n";
    os << "  \"waitTime\": " << num(totalWaitTime()) << ",\n";
    os << "  \"faultEvents\": " << faultEvents() << ",\n";
    os << "  \"faultTime\": " << num(totalFaultTime()) << ",\n";
    os << "  \"devices\": [";
    for (size_t i = 0; i < mDevices.size(); ++i) {
        const auto& d = mDevices[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"device\": " << d.device << ", \"computeBusy\": " << num(d.computeBusy)
           << ", \"transferBusy\": " << num(d.transferBusy) << ", \"overlap\": " << num(d.overlap)
           << ", \"waitTime\": " << num(d.waitTime) << ", \"haloBytes\": " << d.haloBytes
           << ", \"kernels\": " << d.kernels << ", \"transfers\": " << d.transfers
           << ", \"faults\": " << d.faults << ", \"faultTime\": " << num(d.faultTime)
           << ", \"hostPoolBusy\": " << num(d.hostPoolBusy)
           << ", \"hostPoolChunks\": " << d.hostPoolChunks
           << ", \"hostWorkers\": " << d.hostWorkers << "}";
    }
    os << "\n  ],\n";
    os << "  \"streams\": [";
    for (size_t i = 0; i < mStreams.size(); ++i) {
        const auto& s = mStreams[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"device\": " << s.device << ", \"stream\": " << s.stream
           << ", \"busy\": " << num(s.busy) << ", \"utilization\": " << num(s.utilization) << "}";
    }
    os << "\n  ],\n";
    os << "  \"containers\": [";
    for (size_t i = 0; i < mContainers.size(); ++i) {
        const auto& c = mContainers[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"name\": \"" << jsonEscape(c.name) << "\", \"launches\": " << c.launches
           << ", \"kernelTime\": " << num(c.kernelTime)
           << ", \"transferTime\": " << num(c.transferTime) << ", \"bytes\": " << c.bytes << "}";
    }
    os << "\n  ]\n";
    os << "}\n";
    return os.str();
}

}  // namespace neon
