#include "sys/threaded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "sys/device.hpp"
#include "sys/transfer_plan.hpp"

namespace neon::sys {

namespace {
std::chrono::steady_clock::time_point wallDeadline(double seconds)
{
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(std::max(seconds, 0.0)));
}
}  // namespace

ThreadedEngine::State& ThreadedEngine::stateOf(const Stream& stream)
{
    return *static_cast<State*>(stream.engineState.get());
}

ThreadedEngine::~ThreadedEngine() = default;

void ThreadedEngine::attach(Stream& stream)
{
    auto state = std::make_shared<State>();
    stream.engineState = state;
    state->worker = std::thread([this, &stream, s = state.get()] { workerLoop(&stream, s); });
    std::lock_guard<std::mutex> lock(mRegistryMutex);
    mStreams.insert(&stream);
    mDevices.insert(&stream.device());
}

void ThreadedEngine::detach(Stream& stream)
{
    State& st = stateOf(stream);
    st.cancel.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(st.mutex);
        st.stop = true;
    }
    st.cvWork.notify_all();
    if (st.worker.joinable()) {
        st.worker.join();
    }
    std::lock_guard<std::mutex> lock(mRegistryMutex);
    mStreams.erase(&stream);
}

void ThreadedEngine::enqueue(Stream& stream, Op op)
{
    // Fail-stop: once a RuntimeError aborted the engine, further enqueues
    // rethrow it instead of silently queueing against inconsistent state.
    if (aborted()) {
        rethrowAbort();
    }
    State& st = stateOf(stream);
    {
        std::lock_guard<std::mutex> lock(st.mutex);
        st.queue.push_back(std::move(op));
    }
    st.cvWork.notify_one();
}

void ThreadedEngine::workerLoop(Stream* stream, State* state)
{
    for (;;) {
        Op op;
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->cvWork.wait(lock, [state] { return state->stop || !state->queue.empty(); });
            if (state->queue.empty()) {
                if (state->stop) {
                    return;
                }
                continue;
            }
            op = std::move(state->queue.front());
            state->queue.pop_front();
            state->busy = true;
        }
        try {
            process(*stream, *state, op);
        } catch (...) {
            // First error wins; the engine latches aborted and the queue
            // drains in suppressed mode so no thread stays blocked.
            raiseAbort(std::current_exception());
        }
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->busy = false;
        }
        state->cvIdle.notify_all();
    }
}

void ThreadedEngine::process(Stream& stream, State& state, Op& op)
{
    Device&          dev = stream.device();
    const SimConfig& cfg = dev.config();

    // Suppressed drain after an abort: records still fire so waiters wake,
    // waits are skipped so nothing blocks, work ops are skipped so nothing
    // executes against inconsistent state.
    if (aborted()) {
        if (auto* r = std::get_if<RecordOp>(&op)) {
            double v = 0.0;
            {
                std::lock_guard<std::mutex> lock(mClockMutex);
                v = state.vtime;
            }
            r->event->record(v, dev.id(), stream.id());
        }
        return;
    }

    const bool faulty = mFaults.active();

    if (auto* k = std::get_if<KernelOp>(&op)) {
        double start = 0.0;
        double end = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            const double before = state.vtime;
            start = std::max(before, dev.computeAvailable);
            if (faulty) {
                const FaultDecision d = consultFaults(dev, stream.id(), ScheduleOpKind::Kernel,
                                                      k->attr, "kernel", k->name);
                if (d.stallSeconds > 0.0) {
                    mTrace.record(dev.id(), stream.id(), TraceKind::Fault, "stall:" + k->name, start,
                                start + d.stallSeconds, 0, k->attr.containerId, k->attr.runId,
                                k->attr.jobId);
                    start += d.stallSeconds;
                }
            }
            end = start + kernelDuration(cfg, k->items, k->hint);
            if (cfg.opTimeout > 0.0 && end - before > cfg.opTimeout) {
                throwOpTimeout(dev, stream.id(), "kernel", k->name, k->attr, cfg.opTimeout);
            }
            state.vtime = end;
            dev.computeAvailable = end;
        }
        // Body executes outside mClockMutex: real work must not serialize
        // the other stream workers' clock updates.
        if (!cfg.dryRun) {
            runKernelWork(dev, stream.id(), *k, start);
        }
        mTrace.record(dev.id(), stream.id(), TraceKind::Kernel, k->name, start, end, 0,
                    k->attr.containerId, k->attr.runId, k->attr.jobId);
        return;
    }
    if (auto* t = std::get_if<TransferOp>(&op)) {
        TransferSchedule plan;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            const double before = state.vtime;
            double       begin = before;
            FaultDecision d;
            if (faulty) {
                d = consultFaults(dev, stream.id(), ScheduleOpKind::Transfer, t->attr,
                                  "transfer", t->name);
                if (d.stallSeconds > 0.0) {
                    mTrace.record(dev.id(), stream.id(), TraceKind::Fault, "stall:" + t->name, begin,
                                begin + d.stallSeconds, 0, t->attr.containerId, t->attr.runId,
                                t->attr.jobId);
                    begin += d.stallSeconds;
                }
            }
            // Failed attempts occupy the DMA engines just like real
            // transfers, then back off exponentially in virtual time.
            double    cursor = begin;
            const int failed = std::min(d.failedAttempts, cfg.retry.maxAttempts);
            for (int attempt = 1; attempt <= failed; ++attempt) {
                const TransferSchedule bad = planTransfer(dev, cursor, *t, d.slowdown);
                const double           backoff = retryBackoff(cfg, attempt);
                mTrace.record(dev.id(), stream.id(), TraceKind::Fault,
                            "retry#" + std::to_string(attempt) + ":" + t->name, cursor,
                            bad.end + backoff, bad.totalBytes, t->attr.containerId,
                            t->attr.runId, t->attr.jobId);
                cursor = bad.end + backoff;
            }
            if (d.failedAttempts >= cfg.retry.maxAttempts) {
                state.vtime = cursor;
                throwTransferExhausted(dev, stream.id(), t->name, t->attr,
                                       cfg.retry.maxAttempts);
            }
            plan = planTransfer(dev, cursor, *t, d.slowdown);
            const double end = std::max(plan.end, cursor);
            if (cfg.opTimeout > 0.0 && end - before > cfg.opTimeout) {
                throwOpTimeout(dev, stream.id(), "transfer", t->name, t->attr, cfg.opTimeout);
            }
            state.vtime = end;
        }
        if (!cfg.dryRun) {
            for (const auto& chunk : t->chunks) {
                if (chunk.copy) {
                    chunk.copy();
                }
            }
        }
        for (size_t i = 0; i < t->chunks.size(); ++i) {
            mTrace.record(dev.id(), stream.id(), TraceKind::Transfer, t->name, plan.windows[i].start,
                        plan.windows[i].end, plan.windows[i].bytes, t->attr.containerId,
                        t->attr.runId, t->attr.jobId);
        }
        return;
    }
    if (auto* h = std::get_if<HostFnOp>(&op)) {
        double start = 0.0;
        double end = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            const double before = state.vtime;
            start = before;
            if (faulty) {
                const FaultDecision d = consultFaults(dev, stream.id(), ScheduleOpKind::HostFn,
                                                      h->attr, "hostFn", h->name);
                if (d.stallSeconds > 0.0) {
                    mTrace.record(dev.id(), stream.id(), TraceKind::Fault, "stall:" + h->name, start,
                                start + d.stallSeconds, 0, h->attr.containerId, h->attr.runId,
                                h->attr.jobId);
                    start += d.stallSeconds;
                }
            }
            end = start + h->simDuration;
            if (cfg.opTimeout > 0.0 && end - before > cfg.opTimeout) {
                throwOpTimeout(dev, stream.id(), "hostFn", h->name, h->attr, cfg.opTimeout);
            }
            state.vtime = end;
        }
        if (!cfg.dryRun && h->fn) {
            h->fn();
        }
        mTrace.record(dev.id(), stream.id(), TraceKind::HostFn, h->name, start, end, 0,
                    h->attr.containerId, h->attr.runId, h->attr.jobId);
        return;
    }
    if (auto* r = std::get_if<RecordOp>(&op)) {
        double v = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            v = state.vtime;
        }
        r->event->record(v, dev.id(), stream.id());
        return;
    }
    if (auto* w = std::get_if<WaitOp>(&op)) {
        if (faulty) {
            consultFaults(dev, stream.id(), ScheduleOpKind::Wait, w->attr, "wait", "wait");
        }
        // Bounded wait: a scheduler bug (event never recorded) surfaces as
        // a SyncTimeout RuntimeError instead of a deadlock; an engine abort
        // or a stream detach cancels the wait promptly.
        const double limit = cfg.hostSyncTimeout;
        const auto   deadline = wallDeadline(limit);
        double       evTime = 0.0;
        for (;;) {
            const EventWaitStatus ws = w->event->waitRecorded(0.05, abortFlag(), &evTime);
            if (ws == EventWaitStatus::Recorded) {
                break;
            }
            if (ws == EventWaitStatus::Cancelled ||
                state.cancel.load(std::memory_order_acquire)) {
                return;
            }
            if (limit > 0.0 && std::chrono::steady_clock::now() >= deadline) {
                throwSyncTimeout(dev.id(), stream.id(), "wait", "wait", w->attr, limit);
            }
        }
        double before = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            before = state.vtime;
            state.vtime = std::max(state.vtime, evTime);
        }
        if (evTime > before && mTrace.enabled()) {
            mTrace.record(dev.id(), stream.id(), TraceKind::Wait, "wait", before, evTime, 0,
                        w->attr.containerId, w->attr.runId, w->attr.jobId, w->event->id(),
                        w->event->recordedDevice(), w->event->recordedStream());
        }
        return;
    }
}

void ThreadedEngine::sync(Stream& stream)
{
    State&       st = stateOf(stream);
    const double limit = stream.device().config().hostSyncTimeout;
    const auto   deadline = wallDeadline(limit);
    // Sliced wait: the workers notify cvIdle on every completed op, but an
    // abort raised from another stream's worker cannot, so poll it too.
    constexpr auto kSlice = std::chrono::milliseconds(2);
    {
        std::unique_lock<std::mutex> lock(st.mutex);
        while (!(st.queue.empty() && !st.busy)) {
            if (limit > 0.0 && std::chrono::steady_clock::now() >= deadline) {
                if (aborted()) {
                    break;  // drain is stuck? surface the root cause below
                }
                lock.unlock();
                throwSyncTimeout(stream.device().id(), stream.id(), "sync", "stream sync", {},
                                 limit);
            }
            st.cvIdle.wait_for(lock, kSlice,
                               [&st] { return st.queue.empty() && !st.busy; });
        }
    }
    rethrowAbort();
}

void ThreadedEngine::syncAll()
{
    std::vector<Stream*> streams;
    {
        std::lock_guard<std::mutex> lock(mRegistryMutex);
        streams.assign(mStreams.begin(), mStreams.end());
    }
    for (Stream* s : streams) {
        sync(*s);
    }
    rethrowAbort();
}

void ThreadedEngine::quiesce()
{
    std::vector<Stream*> streams;
    {
        std::lock_guard<std::mutex> lock(mRegistryMutex);
        streams.assign(mStreams.begin(), mStreams.end());
    }
    // Suppressed ops drain fast (waits are cancelled by the abort flag);
    // bound the wait anyway — quiesce must never throw or hang.
    constexpr auto kSlice = std::chrono::milliseconds(2);
    for (Stream* s : streams) {
        State&     st = stateOf(*s);
        const auto deadline = wallDeadline(std::max(s->device().config().hostSyncTimeout, 1.0));
        std::unique_lock<std::mutex> lock(st.mutex);
        while (!(st.queue.empty() && !st.busy)) {
            if (std::chrono::steady_clock::now() >= deadline) {
                break;
            }
            st.cvIdle.wait_for(lock, kSlice, [&st] { return st.queue.empty() && !st.busy; });
        }
    }
}

double ThreadedEngine::streamVtime(const Stream& stream) const
{
    std::lock_guard<std::mutex> lock(mClockMutex);
    return stateOf(stream).vtime;
}

double ThreadedEngine::maxVtime() const
{
    std::scoped_lock lock(mRegistryMutex, mClockMutex);
    double v = 0.0;
    for (const Stream* s : mStreams) {
        v = std::max(v, stateOf(*s).vtime);
    }
    return v;
}

void ThreadedEngine::resetClocks()
{
    std::scoped_lock lock(mRegistryMutex, mClockMutex);
    for (Stream* s : mStreams) {
        stateOf(*s).vtime = 0.0;
    }
    for (Device* d : mDevices) {
        d->resetClocks();
    }
}

}  // namespace neon::sys
