#include "sys/threaded_engine.hpp"

#include <algorithm>
#include <vector>

#include "sys/device.hpp"

namespace neon::sys {

ThreadedEngine::State& ThreadedEngine::stateOf(const Stream& stream)
{
    return *static_cast<State*>(stream.engineState.get());
}

ThreadedEngine::~ThreadedEngine() = default;

void ThreadedEngine::attach(Stream& stream)
{
    auto state = std::make_shared<State>();
    stream.engineState = state;
    state->worker = std::thread([this, &stream, s = state.get()] { workerLoop(&stream, s); });
    std::lock_guard<std::mutex> lock(mRegistryMutex);
    mStreams.insert(&stream);
    mDevices.insert(&stream.device());
}

void ThreadedEngine::detach(Stream& stream)
{
    State& st = stateOf(stream);
    {
        std::lock_guard<std::mutex> lock(st.mutex);
        st.stop = true;
    }
    st.cvWork.notify_all();
    if (st.worker.joinable()) {
        st.worker.join();
    }
    std::lock_guard<std::mutex> lock(mRegistryMutex);
    mStreams.erase(&stream);
}

void ThreadedEngine::enqueue(Stream& stream, Op op)
{
    State& st = stateOf(stream);
    {
        std::lock_guard<std::mutex> lock(st.mutex);
        st.queue.push_back(std::move(op));
    }
    st.cvWork.notify_one();
}

void ThreadedEngine::workerLoop(Stream* stream, State* state)
{
    for (;;) {
        Op op;
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->cvWork.wait(lock, [state] { return state->stop || !state->queue.empty(); });
            if (state->queue.empty()) {
                if (state->stop) {
                    return;
                }
                continue;
            }
            op = std::move(state->queue.front());
            state->queue.pop_front();
            state->busy = true;
        }
        process(*stream, *state, op);
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->busy = false;
        }
        state->cvIdle.notify_all();
    }
}

void ThreadedEngine::process(Stream& stream, State& state, Op& op)
{
    Device&          dev = stream.device();
    const SimConfig& cfg = dev.config();

    if (auto* k = std::get_if<KernelOp>(&op)) {
        double start = 0.0;
        double end = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            start = std::max(state.vtime, dev.computeAvailable);
            end = start + kernelDuration(cfg, k->items, k->hint);
            state.vtime = end;
            dev.computeAvailable = end;
        }
        if (!cfg.dryRun && k->body) {
            k->body();
        }
        mTrace.add({dev.id(), stream.id(), "kernel", k->name, start, end, 0,
                    k->attr.containerId, k->attr.runId});
        return;
    }
    if (auto* t = std::get_if<TransferOp>(&op)) {
        struct ChunkWindow
        {
            double   start;
            double   end;
            uint64_t bytes;
        };
        std::vector<ChunkWindow> windows;
        windows.reserve(t->chunks.size());
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            double end = state.vtime;
            double dirEnd[2] = {0.0, 0.0};
            bool   dirUsed[2] = {false, false};
            for (const auto& chunk : t->chunks) {
                const int dir = chunk.direction != 0 ? 1 : 0;
                if (!dirUsed[dir]) {
                    dirEnd[dir] = std::max(state.vtime, dev.copyAvailable[dir]);
                    dirUsed[dir] = true;
                }
                const double start = dirEnd[dir];
                dirEnd[dir] = start + transferDuration(cfg, chunk.bytes);
                windows.push_back({start, dirEnd[dir], chunk.bytes});
            }
            for (int dir = 0; dir < 2; ++dir) {
                if (dirUsed[dir]) {
                    dev.copyAvailable[dir] = dirEnd[dir];
                    end = std::max(end, dirEnd[dir]);
                }
            }
            state.vtime = end;
        }
        if (!cfg.dryRun) {
            for (const auto& chunk : t->chunks) {
                if (chunk.copy) {
                    chunk.copy();
                }
            }
        }
        for (const auto& w : windows) {
            mTrace.add({dev.id(), stream.id(), "transfer", t->name, w.start, w.end, w.bytes,
                        t->attr.containerId, t->attr.runId});
        }
        return;
    }
    if (auto* h = std::get_if<HostFnOp>(&op)) {
        double start = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            start = state.vtime;
            state.vtime += h->simDuration;
        }
        if (!cfg.dryRun && h->fn) {
            h->fn();
        }
        mTrace.add({dev.id(), stream.id(), "hostFn", h->name, start, start + h->simDuration, 0,
                    h->attr.containerId, h->attr.runId});
        return;
    }
    if (auto* r = std::get_if<RecordOp>(&op)) {
        double v = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            v = state.vtime;
        }
        r->event->record(v, dev.id(), stream.id());
        return;
    }
    if (auto* w = std::get_if<WaitOp>(&op)) {
        const double evTime = w->event->blockUntilRecorded();
        double       before = 0.0;
        {
            std::lock_guard<std::mutex> lock(mClockMutex);
            before = state.vtime;
            state.vtime = std::max(state.vtime, evTime);
        }
        if (evTime > before && mTrace.enabled()) {
            mTrace.add({dev.id(), stream.id(), "wait", "wait", before, evTime, 0,
                        w->attr.containerId, w->attr.runId, w->event->id(),
                        w->event->recordedDevice(), w->event->recordedStream()});
        }
        return;
    }
}

void ThreadedEngine::sync(Stream& stream)
{
    State& st = stateOf(stream);
    std::unique_lock<std::mutex> lock(st.mutex);
    st.cvIdle.wait(lock, [&st] { return st.queue.empty() && !st.busy; });
}

void ThreadedEngine::syncAll()
{
    std::vector<Stream*> streams;
    {
        std::lock_guard<std::mutex> lock(mRegistryMutex);
        streams.assign(mStreams.begin(), mStreams.end());
    }
    for (Stream* s : streams) {
        sync(*s);
    }
}

double ThreadedEngine::streamVtime(const Stream& stream) const
{
    std::lock_guard<std::mutex> lock(mClockMutex);
    return stateOf(stream).vtime;
}

double ThreadedEngine::maxVtime() const
{
    std::scoped_lock lock(mRegistryMutex, mClockMutex);
    double v = 0.0;
    for (const Stream* s : mStreams) {
        v = std::max(v, stateOf(*s).vtime);
    }
    return v;
}

void ThreadedEngine::resetClocks()
{
    std::scoped_lock lock(mRegistryMutex, mClockMutex);
    for (Stream* s : mStreams) {
        stateOf(*s).vtime = 0.0;
    }
    for (Device* d : mDevices) {
        d->resetClocks();
    }
}

}  // namespace neon::sys
