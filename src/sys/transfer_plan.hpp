#pragma once
// Shared DMA-engine scheduling for TransferOps: one place computes how an
// op's chunks occupy a device's two copy engines (chunks serialize within a
// direction, directions run in parallel — paper §IV-C2) so the sequential
// and threaded engines, and the retry path, stay arithmetically identical.

#include <cstdint>
#include <vector>

#include "sys/device.hpp"
#include "sys/op.hpp"

namespace neon::sys {

struct TransferWindow
{
    double   start = 0.0;
    double   end = 0.0;
    uint64_t bytes = 0;
};

struct TransferSchedule
{
    /// Stream virtual time after the op (max over used DMA directions, at
    /// least the stream time the op started at).
    double                      end = 0.0;
    std::vector<TransferWindow> windows;  ///< one per chunk, in chunk order
    uint64_t                    totalBytes = 0;
};

/// Schedule `op`'s chunks onto `dev`'s DMA engines starting at stream time
/// `vtime` and commit dev.copyAvailable. `slowdown` scales each chunk's
/// duration (link degradation). Caller must hold the engine's clock lock.
TransferSchedule planTransfer(Device& dev, double vtime, const TransferOp& op, double slowdown);

}  // namespace neon::sys
