#pragma once
// Performance model for the simulated multi-GPU node (DESIGN.md §1).
//
// The paper evaluates on a DGX A100 (NVLink) and on a PCIe Gen3 system. We
// reproduce the timing behaviour of those systems with a calibrated
// bandwidth/latency model: grid kernels are memory-bandwidth bound, GPU-GPU
// transfers pay a per-message latency plus bytes/bandwidth. The model is
// deliberately simple — the paper's scaling results are explained by exactly
// these two quantities (§VI-A: "the bigger the domain, the lower the impact
// of the communication overhead").

#include <cstddef>
#include <cstdint>

namespace neon::sys {

/// What kind of executor a Device models. CPU devices execute with zero
/// simulated cost (useful for wall-clock benchmarking and unit tests);
/// SIM_GPU devices accrue virtual time from the cost model.
enum class DeviceType : uint8_t
{
    CPU,
    SIM_GPU,
};

/// Per-device execution cost parameters.
struct DeviceCostModel
{
    double memBandwidth = 1.24e12;  ///< effective HBM2e bytes/s (~80% of 1555 GB/s)
    double flopRate = 19.5e12;      ///< FP32 peak, flops/s
    double kernelLaunchOverhead = 4e-6;  ///< seconds per kernel launch
};

/// Inter-device link parameters (per neighbouring pair, full duplex).
struct LinkCostModel
{
    double bandwidth = 200e9;  ///< bytes/s per direction (NVLink3-like)
    double latency = 4e-6;     ///< seconds per transfer
};

/// Bounded-retry policy for inter-device transfers (docs/robustness.md).
/// A transfer that fails transiently is retried after an exponential
/// virtual-time backoff; the failed attempts and backoffs are charged to
/// the virtual timeline so a faulted run shows a realistic schedule.
struct RetryPolicy
{
    int    maxAttempts = 4;      ///< total attempts (1 initial + retries)
    double backoffBase = 8e-6;   ///< backoff after the first failure [s]
    double backoffFactor = 2.0;  ///< multiplier per subsequent failure
};

/// Full configuration of the simulated node.
struct SimConfig
{
    DeviceCostModel device;
    LinkCostModel   link;
    RetryPolicy     retry;
    size_t          deviceMemCapacity = 40ull << 30;  ///< bytes per device
    bool            dryRun = false;  ///< account memory/time but skip execution
    /// Per-op watchdog in *virtual* seconds: an op whose simulated span
    /// (including injected stalls and retries) exceeds this raises a
    /// structured RuntimeError instead of silently stretching the timeline.
    /// 0 disables the check.
    double opTimeout = 0.0;
    /// Wall-clock bound on host-side waits in the threaded engine (stream
    /// sync and event waits). A wait that exceeds it raises RuntimeError
    /// (kind SyncTimeout) instead of deadlocking. 0 waits forever.
    double hostSyncTimeout = 60.0;

    /// DGX A100-like: 8x A100 40 GB, NVLink.
    static SimConfig dgxA100Like();
    /// Two-socket Xeon + 8x GV100 32 GB over PCIe Gen3.
    static SimConfig pcieGen3Like();
    /// Zero-cost model used for CPU backends: virtual time stays 0.
    static SimConfig zeroCost();
};

/// Hint describing per-item cost of a kernel; derived automatically from the
/// container's parsed field accesses (DESIGN.md §4).
struct KernelCostHint
{
    double bytesPerItem = 0.0;
    double flopsPerItem = 0.0;
};

/// Simulated duration of a kernel over `items` work items.
double kernelDuration(const SimConfig& cfg, size_t items, const KernelCostHint& hint);

/// Simulated duration of a single inter-device transfer of `bytes`.
double transferDuration(const SimConfig& cfg, size_t bytes);

/// Virtual-time backoff charged after the `attempt`-th failed transfer
/// attempt (attempt >= 1): backoffBase * backoffFactor^(attempt-1).
double retryBackoff(const SimConfig& cfg, int attempt);

}  // namespace neon::sys
