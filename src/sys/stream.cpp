#include "sys/stream.hpp"

namespace neon::sys {

Stream::Stream(Engine& engine, Device& device, int id)
    : mEngine(&engine), mDevice(&device), mId(id)
{
    mEngine->attach(*this);
}

Stream::~Stream()
{
    mEngine->detach(*this);
}

void Stream::enqueue(Op op)
{
    mEngine->enqueue(*this, std::move(op));
}

void Stream::kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body)
{
    enqueue(KernelOp{std::move(name), items, hint, std::move(body)});
}

void Stream::transfer(TransferOp op)
{
    enqueue(std::move(op));
}

void Stream::hostFn(std::string name, double simDuration, std::function<void()> fn)
{
    enqueue(HostFnOp{std::move(name), simDuration, std::move(fn)});
}

void Stream::record(EventPtr event)
{
    enqueue(RecordOp{std::move(event)});
}

void Stream::wait(EventPtr event)
{
    enqueue(WaitOp{std::move(event)});
}

void Stream::sync()
{
    mEngine->sync(*this);
}

double Stream::vtime() const
{
    return mEngine->streamVtime(*this);
}

}  // namespace neon::sys
