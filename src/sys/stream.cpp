#include "sys/stream.hpp"

#include "core/error.hpp"
#include "sys/device.hpp"

namespace neon::sys {

Stream::Stream(Engine& engine, Device& device, int id)
    : mEngine(&engine), mDevice(&device), mId(id)
{
    mEngine->attach(*this);
}

Stream::~Stream()
{
    mEngine->detach(*this);
}

void Stream::enqueue(Op op)
{
    // Stamp skeleton attribution at enqueue time: the host thread that
    // enqueues is the one that set the trace context, while the threaded
    // engine may process the op on a worker thread much later.
    Trace&       trace = mEngine->trace();
    ScheduleLog& slog = mEngine->scheduleLog();
    const bool   logging = slog.enabled();
    // Fault rules match on run id, so attribution must also be stamped when
    // a plan is active even if neither trace nor schedule log is on.
    if (trace.enabled() || logging || mEngine->faults().active()) {
        const TraceContext ctx = trace.context();
        if (ctx.containerId >= 0 || ctx.runId >= 0 || ctx.jobId >= 0) {
            std::visit(
                [&](auto& o) {
                    if constexpr (requires { o.attr; }) {
                        if (o.attr.containerId < 0) {
                            o.attr = {ctx.containerId, ctx.runId, ctx.jobId};
                        }
                    }
                },
                op);
        }
        if (logging) {
            ScheduleRecord r;
            r.device = mDevice->id();
            r.stream = mId;
            r.containerId = ctx.containerId;
            r.runId = ctx.runId;
            std::visit(
                [&](const auto& o) {
                    using T = std::decay_t<decltype(o)>;
                    if constexpr (std::is_same_v<T, KernelOp>) {
                        r.kind = ScheduleOpKind::Kernel;
                    } else if constexpr (std::is_same_v<T, TransferOp>) {
                        r.kind = ScheduleOpKind::Transfer;
                    } else if constexpr (std::is_same_v<T, HostFnOp>) {
                        r.kind = ScheduleOpKind::HostFn;
                    } else if constexpr (std::is_same_v<T, RecordOp>) {
                        r.kind = ScheduleOpKind::Record;
                        r.eventId = o.event->id();
                    } else if constexpr (std::is_same_v<T, WaitOp>) {
                        r.kind = ScheduleOpKind::Wait;
                        r.eventId = o.event->id();
                    }
                    if constexpr (requires { o.attr; }) {
                        r.containerId = o.attr.containerId;
                        r.runId = o.attr.runId;
                    }
                },
                op);
            slog.add(r);
        }
    }
    mEngine->enqueue(*this, std::move(op));
}

void Stream::kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body)
{
    KernelOp op;
    op.name = std::move(name);
    op.items = items;
    op.hint = hint;
    op.body = std::move(body);
    enqueue(std::move(op));
}

void Stream::transfer(TransferOp op)
{
    enqueue(std::move(op));
}

void Stream::hostFn(std::string name, double simDuration, std::function<void()> fn)
{
    enqueue(HostFnOp{std::move(name), simDuration, std::move(fn), {}});
}

void Stream::record(EventPtr event)
{
    enqueue(RecordOp{std::move(event)});
}

void Stream::wait(EventPtr event)
{
    enqueue(WaitOp{std::move(event), {}});
}

void Stream::sync()
{
    mEngine->sync(*this);
}

double Stream::vtime() const
{
    return mEngine->streamVtime(*this);
}

// Engine: kernel-body execution ----------------------------------------------

void Engine::runKernelWork(const Device& dev, int streamId, const KernelOp& op, double startV)
{
    if (op.work) {
        // Devirtualized path: one indirect call per chunk. The pool only
        // pays off for real host computation with multiple chunks; SIM_GPU
        // devices execute functionally but stay single-threaded so the
        // cost model's serial-compute assumption remains true.
        ThreadPool* pool = mHostPool.get();
        const bool  usePool = pool != nullptr && pool->threadCount() > 1 && op.work.chunks > 1 &&
                             dev.type() == DeviceType::CPU;
        if (usePool && mTrace.enabled()) {
            std::vector<WorkerSample> samples;
            pool->parallelFor(op.work.chunks, op.work.run, op.work.ctx, &samples);
            for (const auto& s : samples) {
                mTrace.record(dev.id(), streamId, TraceKind::HostPool, op.name, startV,
                              startV + s.busySeconds, static_cast<uint64_t>(s.chunks),
                              op.attr.containerId, op.attr.runId, op.attr.jobId, 0, s.worker,
                              streamId);
            }
        } else if (usePool) {
            pool->parallelFor(op.work.chunks, op.work.run, op.work.ctx);
        } else {
            for (int32_t c = 0; c < op.work.chunks; ++c) {
                op.work.run(op.work.ctx, c, op.work.chunks);
            }
        }
        if (op.work.finalize != nullptr) {
            op.work.finalize(op.work.ctx, 0, op.work.chunks);
        }
    } else if (op.body) {
        op.body();
    }
}

// Engine: fail-stop abort protocol ------------------------------------------

void Engine::raiseAbort(std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mAbortMutex);
        if (!mAbortError) {
            mAbortError = std::move(error);
        }
    }
    mAborted.store(true, std::memory_order_release);
}

void Engine::rethrowAbort() const
{
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mAbortMutex);
        error = mAbortError;
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void Engine::clearAbort()
{
    {
        std::lock_guard<std::mutex> lock(mAbortMutex);
        mAbortError = nullptr;
    }
    mAborted.store(false, std::memory_order_release);
}

FaultDecision Engine::consultFaults(const Device& dev, int stream, ScheduleOpKind kind,
                                    const OpAttribution& attr, const char* opKindName,
                                    const std::string& opName)
{
    FaultDecision d = mFaults.decide(dev.id(), stream, kind, attr);
    if (d.deviceLost) {
        RuntimeError::Info info;
        info.kind = RuntimeError::Kind::DeviceLost;
        info.device = dev.id();
        info.stream = stream;
        info.opKind = opKindName;
        info.opName = opName;
        info.containerId = attr.containerId;
        info.runId = attr.runId;
        info.jobId = attr.jobId;
        auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
        raiseAbort(error);
        std::rethrow_exception(error);
    }
    return d;
}

void Engine::throwOpTimeout(const Device& dev, int stream, const char* opKindName,
                            const std::string& opName, const OpAttribution& attr, double limit)
{
    RuntimeError::Info info;
    info.kind = RuntimeError::Kind::OpTimeout;
    info.device = dev.id();
    info.stream = stream;
    info.opKind = opKindName;
    info.opName = opName;
    info.containerId = attr.containerId;
    info.runId = attr.runId;
    info.jobId = attr.jobId;
    info.timeout = limit;
    auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
    raiseAbort(error);
    std::rethrow_exception(error);
}

void Engine::throwTransferExhausted(const Device& dev, int stream, const std::string& opName,
                                    const OpAttribution& attr, int attempts)
{
    RuntimeError::Info info;
    info.kind = RuntimeError::Kind::TransferFailed;
    info.device = dev.id();
    info.stream = stream;
    info.opKind = "transfer";
    info.opName = opName;
    info.containerId = attr.containerId;
    info.runId = attr.runId;
    info.jobId = attr.jobId;
    info.attempts = attempts;
    auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
    raiseAbort(error);
    std::rethrow_exception(error);
}

void Engine::throwSyncTimeout(int device, int stream, const char* opKindName,
                              const std::string& opName, const OpAttribution& attr, double limit)
{
    RuntimeError::Info info;
    info.kind = RuntimeError::Kind::SyncTimeout;
    info.device = device;
    info.stream = stream;
    info.opKind = opKindName;
    info.opName = opName;
    info.containerId = attr.containerId;
    info.runId = attr.runId;
    info.jobId = attr.jobId;
    info.timeout = limit;
    auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
    raiseAbort(error);
    std::rethrow_exception(error);
}

}  // namespace neon::sys
