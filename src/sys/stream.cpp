#include "sys/stream.hpp"

#include "core/error.hpp"
#include "sys/device.hpp"

namespace neon::sys {

Stream::Stream(Engine& engine, Device& device, int id)
    : mEngine(&engine), mDevice(&device), mId(id)
{
    mEngine->attach(*this);
}

Stream::~Stream()
{
    mEngine->detach(*this);
}

void Stream::enqueue(Op op)
{
    // Stamp skeleton attribution at enqueue time: the host thread that
    // enqueues is the one that set the trace context, while the threaded
    // engine may process the op on a worker thread much later.
    Trace&       trace = mEngine->trace();
    ScheduleLog& slog = mEngine->scheduleLog();
    const bool   logging = slog.enabled();
    // Fault rules match on run id, so attribution must also be stamped when
    // a plan is active even if neither trace nor schedule log is on.
    if (trace.enabled() || logging || mEngine->faults().active()) {
        const TraceContext ctx = trace.context();
        if (ctx.containerId >= 0 || ctx.runId >= 0) {
            std::visit(
                [&](auto& o) {
                    if constexpr (requires { o.attr; }) {
                        if (o.attr.containerId < 0) {
                            o.attr = {ctx.containerId, ctx.runId};
                        }
                    }
                },
                op);
        }
        if (logging) {
            ScheduleRecord r;
            r.device = mDevice->id();
            r.stream = mId;
            r.containerId = ctx.containerId;
            r.runId = ctx.runId;
            std::visit(
                [&](const auto& o) {
                    using T = std::decay_t<decltype(o)>;
                    if constexpr (std::is_same_v<T, KernelOp>) {
                        r.kind = ScheduleOpKind::Kernel;
                    } else if constexpr (std::is_same_v<T, TransferOp>) {
                        r.kind = ScheduleOpKind::Transfer;
                    } else if constexpr (std::is_same_v<T, HostFnOp>) {
                        r.kind = ScheduleOpKind::HostFn;
                    } else if constexpr (std::is_same_v<T, RecordOp>) {
                        r.kind = ScheduleOpKind::Record;
                        r.eventId = o.event->id();
                    } else if constexpr (std::is_same_v<T, WaitOp>) {
                        r.kind = ScheduleOpKind::Wait;
                        r.eventId = o.event->id();
                    }
                    if constexpr (requires { o.attr; }) {
                        r.containerId = o.attr.containerId;
                        r.runId = o.attr.runId;
                    }
                },
                op);
            slog.add(r);
        }
    }
    mEngine->enqueue(*this, std::move(op));
}

void Stream::kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body)
{
    enqueue(KernelOp{std::move(name), items, hint, std::move(body), {}});
}

void Stream::transfer(TransferOp op)
{
    enqueue(std::move(op));
}

void Stream::hostFn(std::string name, double simDuration, std::function<void()> fn)
{
    enqueue(HostFnOp{std::move(name), simDuration, std::move(fn), {}});
}

void Stream::record(EventPtr event)
{
    enqueue(RecordOp{std::move(event)});
}

void Stream::wait(EventPtr event)
{
    enqueue(WaitOp{std::move(event), {}});
}

void Stream::sync()
{
    mEngine->sync(*this);
}

double Stream::vtime() const
{
    return mEngine->streamVtime(*this);
}

// Engine: fail-stop abort protocol ------------------------------------------

void Engine::raiseAbort(std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(mAbortMutex);
        if (!mAbortError) {
            mAbortError = std::move(error);
        }
    }
    mAborted.store(true, std::memory_order_release);
}

void Engine::rethrowAbort() const
{
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mAbortMutex);
        error = mAbortError;
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void Engine::clearAbort()
{
    {
        std::lock_guard<std::mutex> lock(mAbortMutex);
        mAbortError = nullptr;
    }
    mAborted.store(false, std::memory_order_release);
}

FaultDecision Engine::consultFaults(const Device& dev, int stream, ScheduleOpKind kind,
                                    const OpAttribution& attr, const char* opKindName,
                                    const std::string& opName)
{
    FaultDecision d = mFaults.decide(dev.id(), stream, kind, attr);
    if (d.deviceLost) {
        RuntimeError::Info info;
        info.kind = RuntimeError::Kind::DeviceLost;
        info.device = dev.id();
        info.stream = stream;
        info.opKind = opKindName;
        info.opName = opName;
        info.containerId = attr.containerId;
        info.runId = attr.runId;
        auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
        raiseAbort(error);
        std::rethrow_exception(error);
    }
    return d;
}

void Engine::throwOpTimeout(const Device& dev, int stream, const char* opKindName,
                            const std::string& opName, const OpAttribution& attr, double limit)
{
    RuntimeError::Info info;
    info.kind = RuntimeError::Kind::OpTimeout;
    info.device = dev.id();
    info.stream = stream;
    info.opKind = opKindName;
    info.opName = opName;
    info.containerId = attr.containerId;
    info.runId = attr.runId;
    info.timeout = limit;
    auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
    raiseAbort(error);
    std::rethrow_exception(error);
}

void Engine::throwTransferExhausted(const Device& dev, int stream, const std::string& opName,
                                    const OpAttribution& attr, int attempts)
{
    RuntimeError::Info info;
    info.kind = RuntimeError::Kind::TransferFailed;
    info.device = dev.id();
    info.stream = stream;
    info.opKind = "transfer";
    info.opName = opName;
    info.containerId = attr.containerId;
    info.runId = attr.runId;
    info.attempts = attempts;
    auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
    raiseAbort(error);
    std::rethrow_exception(error);
}

void Engine::throwSyncTimeout(int device, int stream, const char* opKindName,
                              const std::string& opName, const OpAttribution& attr, double limit)
{
    RuntimeError::Info info;
    info.kind = RuntimeError::Kind::SyncTimeout;
    info.device = device;
    info.stream = stream;
    info.opKind = opKindName;
    info.opName = opName;
    info.containerId = attr.containerId;
    info.runId = attr.runId;
    info.timeout = limit;
    auto error = std::make_exception_ptr(RuntimeError(std::move(info)));
    raiseAbort(error);
    std::rethrow_exception(error);
}

}  // namespace neon::sys
