#include "sys/stream.hpp"

#include "sys/device.hpp"

namespace neon::sys {

Stream::Stream(Engine& engine, Device& device, int id)
    : mEngine(&engine), mDevice(&device), mId(id)
{
    mEngine->attach(*this);
}

Stream::~Stream()
{
    mEngine->detach(*this);
}

void Stream::enqueue(Op op)
{
    // Stamp skeleton attribution at enqueue time: the host thread that
    // enqueues is the one that set the trace context, while the threaded
    // engine may process the op on a worker thread much later.
    Trace&       trace = mEngine->trace();
    ScheduleLog& slog = mEngine->scheduleLog();
    const bool   logging = slog.enabled();
    if (trace.enabled() || logging) {
        const TraceContext ctx = trace.context();
        if (ctx.containerId >= 0 || ctx.runId >= 0) {
            std::visit(
                [&](auto& o) {
                    if constexpr (requires { o.attr; }) {
                        if (o.attr.containerId < 0) {
                            o.attr = {ctx.containerId, ctx.runId};
                        }
                    }
                },
                op);
        }
        if (logging) {
            ScheduleRecord r;
            r.device = mDevice->id();
            r.stream = mId;
            r.containerId = ctx.containerId;
            r.runId = ctx.runId;
            std::visit(
                [&](const auto& o) {
                    using T = std::decay_t<decltype(o)>;
                    if constexpr (std::is_same_v<T, KernelOp>) {
                        r.kind = ScheduleOpKind::Kernel;
                    } else if constexpr (std::is_same_v<T, TransferOp>) {
                        r.kind = ScheduleOpKind::Transfer;
                    } else if constexpr (std::is_same_v<T, HostFnOp>) {
                        r.kind = ScheduleOpKind::HostFn;
                    } else if constexpr (std::is_same_v<T, RecordOp>) {
                        r.kind = ScheduleOpKind::Record;
                        r.eventId = o.event->id();
                    } else if constexpr (std::is_same_v<T, WaitOp>) {
                        r.kind = ScheduleOpKind::Wait;
                        r.eventId = o.event->id();
                    }
                    if constexpr (requires { o.attr; }) {
                        r.containerId = o.attr.containerId;
                        r.runId = o.attr.runId;
                    }
                },
                op);
            slog.add(r);
        }
    }
    mEngine->enqueue(*this, std::move(op));
}

void Stream::kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body)
{
    enqueue(KernelOp{std::move(name), items, hint, std::move(body), {}});
}

void Stream::transfer(TransferOp op)
{
    enqueue(std::move(op));
}

void Stream::hostFn(std::string name, double simDuration, std::function<void()> fn)
{
    enqueue(HostFnOp{std::move(name), simDuration, std::move(fn), {}});
}

void Stream::record(EventPtr event)
{
    enqueue(RecordOp{std::move(event)});
}

void Stream::wait(EventPtr event)
{
    enqueue(WaitOp{std::move(event), {}});
}

void Stream::sync()
{
    mEngine->sync(*this);
}

double Stream::vtime() const
{
    return mEngine->streamVtime(*this);
}

}  // namespace neon::sys
