#include "sys/stream.hpp"

namespace neon::sys {

Stream::Stream(Engine& engine, Device& device, int id)
    : mEngine(&engine), mDevice(&device), mId(id)
{
    mEngine->attach(*this);
}

Stream::~Stream()
{
    mEngine->detach(*this);
}

void Stream::enqueue(Op op)
{
    // Stamp skeleton attribution at enqueue time: the host thread that
    // enqueues is the one that set the trace context, while the threaded
    // engine may process the op on a worker thread much later.
    if (mEngine->trace().enabled()) {
        const TraceContext ctx = mEngine->trace().context();
        if (ctx.containerId >= 0 || ctx.runId >= 0) {
            std::visit(
                [&](auto& o) {
                    if constexpr (requires { o.attr; }) {
                        if (o.attr.containerId < 0) {
                            o.attr = {ctx.containerId, ctx.runId};
                        }
                    }
                },
                op);
        }
    }
    mEngine->enqueue(*this, std::move(op));
}

void Stream::kernel(std::string name, size_t items, KernelCostHint hint, std::function<void()> body)
{
    enqueue(KernelOp{std::move(name), items, hint, std::move(body), {}});
}

void Stream::transfer(TransferOp op)
{
    enqueue(std::move(op));
}

void Stream::hostFn(std::string name, double simDuration, std::function<void()> fn)
{
    enqueue(HostFnOp{std::move(name), simDuration, std::move(fn), {}});
}

void Stream::record(EventPtr event)
{
    enqueue(RecordOp{std::move(event)});
}

void Stream::wait(EventPtr event)
{
    enqueue(WaitOp{std::move(event), {}});
}

void Stream::sync()
{
    mEngine->sync(*this);
}

double Stream::vtime() const
{
    return mEngine->streamVtime(*this);
}

}  // namespace neon::sys
