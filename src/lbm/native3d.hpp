#pragma once
// Hand-written flat-array D3Q19 baselines for the paper's Table II:
//   - Fused      : "cuboltz-like" native code — raw SoA buffers, fused
//                  collide+stream pull, inline index arithmetic.
//   - TwoPopIdx  : "stlbm twoPop (C++ parallel algorithms)-like" — the same
//                  physics but iterating a cell-index array through a
//                  generic accessor, reproducing the indirection overhead
//                  of the CPA formulation.
//   - AA         : "stlbm AA-pattern-like" — single population buffer with
//                  the Bailey AA addressing (even step: in-place collide
//                  with reversed write; odd step: gather from neighbours,
//                  scatter back).
// All variants share lattice constants and the equilibrium with the Neon
// solver, so results are directly comparable (exact for Fused/TwoPopIdx).

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/error.hpp"
#include "core/index3d.hpp"
#include "lbm/lattice.hpp"

namespace neon::lbm::native {

enum class Variant : uint8_t
{
    Fused,      ///< cuboltz-like
    TwoPopIdx,  ///< stlbm twoPop-like (indexed indirection)
    AA,         ///< stlbm AA-pattern-like (single buffer)
};

enum class Boundary : uint8_t
{
    Cavity,    ///< half-way bounce-back walls + moving +z lid
    Periodic,  ///< all faces periodic (used to validate the AA pattern)
};

template <typename Real = float>
class NativeCavityD3Q19
{
   public:
    NativeCavityD3Q19(index_3d dim, double tau, double lidVelocity, Variant variant,
                      Boundary boundary = Boundary::Cavity)
        : mDim(dim),
          mCells(dim.size()),
          mOmega(static_cast<Real>(1.0 / tau)),
          mLidU(static_cast<Real>(lidVelocity)),
          mVariant(variant),
          mBoundary(boundary)
    {
        mF[0].assign(mCells * D3Q19::Q, Real(0));
        if (variant != Variant::AA) {
            mF[1].assign(mCells * D3Q19::Q, Real(0));
        }
        for (size_t x = 0; x < mCells; ++x) {
            for (int i = 0; i < D3Q19::Q; ++i) {
                mF[0][slot(x, i)] = equilibrium<D3Q19, Real>(i, 1, 0, 0, 0);
                if (variant != Variant::AA) {
                    mF[1][slot(x, i)] = mF[0][slot(x, i)];
                }
            }
        }
        if (variant == Variant::TwoPopIdx) {
            mCellIndex.resize(mCells);
            std::iota(mCellIndex.begin(), mCellIndex.end(), 0);
        }
    }

    /// Deterministically perturb the initial populations (call before any
    /// run()): scales each cell by 1 + eps*sin(...). Used to give variant
    /// cross-checks a non-trivial state on periodic domains.
    void perturbDensity(double eps)
    {
        NEON_CHECK(mIter == 0, "perturb before running");
        for (size_t x = 0; x < mCells; ++x) {
            const index_3d g = mDim.fromPitch(x);
            const Real     factor = static_cast<Real>(
                1.0 + eps * std::sin(0.7 * g.x + 0.31 * g.y + 0.113 * g.z));
            for (int i = 0; i < D3Q19::Q; ++i) {
                mF[0][slot(x, i)] *= factor;
            }
        }
    }

    void run(int n)
    {
        for (int it = 0; it < n; ++it) {
            switch (mVariant) {
                case Variant::Fused: stepTwoPop(false); break;
                case Variant::TwoPopIdx: stepTwoPop(true); break;
                case Variant::AA: stepAA(); break;
            }
            ++mIter;
        }
    }

    [[nodiscard]] int iteration() const { return mIter; }

    [[nodiscard]] double totalMass() const
    {
        const auto& f = currentBuffer();
        double      mass = 0.0;
        for (Real v : f) {
            mass += v;
        }
        return mass;
    }

    struct Macro
    {
        double rho = 0.0;
        std::array<double, 3> u{};
    };

    /// Macroscopic values; only meaningful for the two-population variants
    /// (the AA buffer stores populations in mixed locations at odd steps).
    [[nodiscard]] Macro macroAt(const index_3d& g) const
    {
        NEON_CHECK(mVariant != Variant::AA || (mIter % 2 == 0),
                   "AA macro readout requires an even iteration count");
        const auto&  f = currentBuffer();
        const size_t x = mDim.pitch(g);
        Macro        m;
        for (int i = 0; i < D3Q19::Q; ++i) {
            const int  slotDir = (mVariant == Variant::AA && mIter % 2 == 0)
                                     ? i  // even step: populations are home
                                     : i;
            const double fi = f[slot(x, slotDir)];
            m.rho += fi;
            for (int d = 0; d < 3; ++d) {
                m.u[static_cast<size_t>(d)] += fi * D3Q19::c[static_cast<size_t>(i)][d];
            }
        }
        for (int d = 0; d < 3; ++d) {
            m.u[static_cast<size_t>(d)] /= m.rho;
        }
        return m;
    }

    [[nodiscard]] const index_3d& dim() const { return mDim; }

   private:
    [[nodiscard]] size_t slot(size_t cell, int i) const
    {
        return static_cast<size_t>(i) * mCells + cell;  // SoA
    }

    [[nodiscard]] const std::vector<Real>& currentBuffer() const
    {
        if (mVariant == Variant::AA) {
            return mF[0];
        }
        return mF[static_cast<size_t>(mIter & 1)];
    }

    /// Source cell for the pull of direction i at g; returns false when the
    /// source is a wall (cavity) — never false for periodic.
    bool pullSource(const index_3d& g, int i, index_3d& src) const
    {
        src = {g.x - D3Q19::c[static_cast<size_t>(i)][0],
               g.y - D3Q19::c[static_cast<size_t>(i)][1],
               g.z - D3Q19::c[static_cast<size_t>(i)][2]};
        if (mDim.contains(src)) {
            return true;
        }
        if (mBoundary == Boundary::Periodic) {
            src = {(src.x + mDim.x) % mDim.x, (src.y + mDim.y) % mDim.y,
                   (src.z + mDim.z) % mDim.z};
            return true;
        }
        return false;
    }

    void collideInto(const Real* f, Real* out, size_t cell) const
    {
        Real rho = 0;
        Real ux = 0;
        Real uy = 0;
        Real uz = 0;
        for (int i = 0; i < D3Q19::Q; ++i) {
            rho += f[i];
            ux += f[i] * static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][0]);
            uy += f[i] * static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][1]);
            uz += f[i] * static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][2]);
        }
        ux /= rho;
        uy /= rho;
        uz /= rho;
        for (int i = 0; i < D3Q19::Q; ++i) {
            const Real feq = equilibrium<D3Q19, Real>(i, rho, ux, uy, uz);
            out[i] = f[i] + mOmega * (feq - f[i]);
        }
        (void)cell;
    }

    void pullGather(const std::vector<Real>& in, const index_3d& g, size_t x, Real* f) const
    {
        const int32_t topZ = mDim.z - 1;
        f[0] = in[slot(x, 0)];
        for (int i = 1; i < D3Q19::Q; ++i) {
            index_3d src;
            if (pullSource(g, i, src)) {
                f[i] = in[slot(mDim.pitch(src), i)];
            } else {
                f[i] = in[slot(x, D3Q19::opp[static_cast<size_t>(i)])];
                if (g.z == topZ && D3Q19::c[static_cast<size_t>(i)][2] < 0) {
                    f[i] += Real(6) * static_cast<Real>(D3Q19::weight(i)) * mLidU *
                            static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][0]);
                }
            }
        }
    }

    void stepTwoPop(bool indexed)
    {
        const auto& in = mF[static_cast<size_t>(mIter & 1)];
        auto&       out = mF[static_cast<size_t>(1 - (mIter & 1))];
        Real        f[D3Q19::Q];
        Real        post[D3Q19::Q];
        auto        body = [&](size_t x) {
            const index_3d g = mDim.fromPitch(x);
            pullGather(in, g, x, f);
            collideInto(f, post, x);
            for (int i = 0; i < D3Q19::Q; ++i) {
                out[slot(x, i)] = post[i];
            }
        };
        if (indexed) {
            // CPA-like: iterate through the cell-index array.
            for (const int32_t xi : mCellIndex) {
                body(static_cast<size_t>(xi));
            }
        } else {
            for (size_t x = 0; x < mCells; ++x) {
                body(x);
            }
        }
    }

    /// AA pattern (single buffer). Even step: read home slots, collide,
    /// write each post-collision population to the *opposite* home slot.
    /// Odd step: gather f_i from (x - c_i, opp(i)), collide, scatter
    /// f*_i to (x + c_i, i).
    void stepAA()
    {
        auto& buf = mF[0];
        Real  f[D3Q19::Q];
        Real  post[D3Q19::Q];
        if (mIter % 2 == 0) {
            for (size_t x = 0; x < mCells; ++x) {
                for (int i = 0; i < D3Q19::Q; ++i) {
                    f[i] = buf[slot(x, i)];
                }
                collideInto(f, post, x);
                for (int i = 0; i < D3Q19::Q; ++i) {
                    buf[slot(x, D3Q19::opp[static_cast<size_t>(i)])] = post[i];
                }
            }
        } else {
            // In-place is safe: slot (z, i) is read only by cell z - c_i
            // (its gather) and written only by the same cell (its scatter),
            // and each cell completes all reads before its writes. Wall
            // bounce-back writes go to (x, opp(i)), whose nominal owner is
            // the wall itself — also conflict-free.
            for (size_t x = 0; x < mCells; ++x) {
                const index_3d g = mDim.fromPitch(x);
                f[0] = buf[slot(x, 0)];
                for (int i = 1; i < D3Q19::Q; ++i) {
                    index_3d src;
                    if (pullSource(g, i, src)) {
                        f[i] = buf[slot(mDim.pitch(src), D3Q19::opp[static_cast<size_t>(i)])];
                    } else {
                        f[i] = buf[slot(x, i)];
                        if (g.z == mDim.z - 1 && D3Q19::c[static_cast<size_t>(i)][2] < 0) {
                            f[i] += Real(6) * static_cast<Real>(D3Q19::weight(i)) * mLidU *
                                    static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][0]);
                        }
                    }
                }
                collideInto(f, post, x);
                for (int i = 0; i < D3Q19::Q; ++i) {
                    if (i == 0) {
                        buf[slot(x, 0)] = post[0];
                        continue;
                    }
                    index_3d dst{g.x + D3Q19::c[static_cast<size_t>(i)][0],
                                 g.y + D3Q19::c[static_cast<size_t>(i)][1],
                                 g.z + D3Q19::c[static_cast<size_t>(i)][2]};
                    if (mDim.contains(dst)) {
                        buf[slot(mDim.pitch(dst), i)] = post[i];
                    } else if (mBoundary == Boundary::Periodic) {
                        dst = {(dst.x + mDim.x) % mDim.x, (dst.y + mDim.y) % mDim.y,
                               (dst.z + mDim.z) % mDim.z};
                        buf[slot(mDim.pitch(dst), i)] = post[i];
                    } else {
                        // Wall: the population bounces straight back home,
                        // into direction opp(i); the moving lid adds its
                        // momentum with the bounced direction's sign.
                        Real v = post[i];
                        if (g.z == mDim.z - 1 && D3Q19::c[static_cast<size_t>(i)][2] > 0) {
                            v -= Real(6) * static_cast<Real>(D3Q19::weight(i)) * mLidU *
                                 static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][0]);
                        }
                        buf[slot(x, D3Q19::opp[static_cast<size_t>(i)])] = v;
                    }
                }
            }
        }
    }

    index_3d             mDim;
    size_t               mCells;
    Real                 mOmega;
    Real                 mLidU;
    Variant              mVariant;
    Boundary             mBoundary;
    std::array<std::vector<Real>, 2> mF;
    std::vector<int32_t> mCellIndex;
    int                  mIter = 0;
};

}  // namespace neon::lbm::native
