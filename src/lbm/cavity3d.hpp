#pragma once
// Neon D3Q19 lid-driven cavity solver, twoPop variant (paper §VI-A,
// Table II / Fig. 7): two populations fields, fused collide+stream kernel
// (pull scheme), buffers swapped every iteration by alternating between two
// skeletons. Walls are half-way bounce-back served by the fields'
// out-of-domain reads; the moving lid is the z = N-1 face.

#include <array>
#include <cmath>

#include "lbm/lattice.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::lbm {

/// Lid-driven cavity on any Neon grid. The entire box is fluid; the six
/// walls live half a cell outside the domain (half-way bounce-back), and
/// the +z wall moves with `lidVelocity` along +x.
template <typename Grid, typename Real = float>
class CavityD3Q19
{
   public:
    using Field = typename Grid::template FieldType<Real>;

    CavityD3Q19(Grid grid, double tau, double lidVelocity, Occ occ = Occ::NONE,
                MemLayout layout = MemLayout::structOfArrays)
        : mGrid(grid),
          mOmega(static_cast<Real>(1.0 / tau)),
          mLidU(static_cast<Real>(lidVelocity))
    {
        mF[0] = grid.template newField<Real>("lbm.f0", D3Q19::Q, Real(0), layout);
        mF[1] = grid.template newField<Real>("lbm.f1", D3Q19::Q, Real(0), layout);
        if (!grid.backend().isDryRun()) {
            initEquilibrium();
        }
        for (int parity = 0; parity < 2; ++parity) {
            mStep[parity] = skeleton::Skeleton(grid.backend());
            mStep[parity].sequence(
                {collideStream(mF[static_cast<size_t>(parity)],
                               mF[static_cast<size_t>(1 - parity)])},
                skeleton::SequenceOptions()
                    .withName(parity == 0 ? "lbm.even" : "lbm.odd")
                    .withOcc(occ));
        }
    }

    /// Advance `n` iterations (asynchronous; call sync() before reading).
    void run(int n)
    {
        for (int i = 0; i < n; ++i) {
            mStep[static_cast<size_t>(mIter & 1)].run();
            ++mIter;
        }
    }

    void sync() { mGrid.backend().sync(); }

    [[nodiscard]] int iteration() const { return mIter; }

    /// Current input population field (the one holding the latest state).
    [[nodiscard]] Field& current() { return mF[static_cast<size_t>(mIter & 1)]; }

    /// Total mass (host-side; syncs and downloads).
    [[nodiscard]] double totalMass()
    {
        sync();
        auto&  f = current();
        f.updateHost();
        double mass = 0.0;
        f.forEachActiveHost([&](const index_3d&, int, Real& v) { mass += v; });
        return mass;
    }

    /// Macroscopic density and velocity at a cell (host-side; call after
    /// sync() + current().updateHost()).
    struct Macro
    {
        double rho = 0.0;
        std::array<double, 3> u{};
    };

    [[nodiscard]] Macro macroAt(const index_3d& g)
    {
        auto& f = current();
        Macro m;
        for (int i = 0; i < D3Q19::Q; ++i) {
            const double fi = f.hVal(g, i);
            m.rho += fi;
            for (int d = 0; d < 3; ++d) {
                m.u[static_cast<size_t>(d)] += fi * D3Q19::c[static_cast<size_t>(i)][d];
            }
        }
        for (int d = 0; d < 3; ++d) {
            m.u[static_cast<size_t>(d)] /= m.rho;
        }
        return m;
    }

    [[nodiscard]] Grid& grid() { return mGrid; }

   private:
    void initEquilibrium()
    {
        for (auto& f : mF) {
            f.forEachActiveHost([](const index_3d&, int i, Real& v) {
                v = equilibrium<D3Q19, Real>(i, Real(1), Real(0), Real(0), Real(0));
            });
            f.updateDev();
        }
    }

    /// Fused collide+stream container, pull scheme with half-way
    /// bounce-back at the domain faces and a moving +z lid.
    set::Container collideStream(Field fin, Field fout)
    {
        const Real    omega = mOmega;
        const Real    lidU = mLidU;
        const int32_t topZ = mGrid.dim().z - 1;
        return mGrid.newContainer("collideStream", [fin, fout, omega, lidU,
                                                    topZ](auto& l) mutable {
            auto in = l.load(fin, Access::READ, Compute::STENCIL);
            auto out = l.load(fout, Access::WRITE);
            return [=](const auto& cell) mutable {
                Real f[D3Q19::Q];
                const index_3d g = in.globalIdx(cell);
                for (int i = 0; i < D3Q19::Q; ++i) {
                    const index_3d pullOff{-D3Q19::c[static_cast<size_t>(i)][0],
                                           -D3Q19::c[static_cast<size_t>(i)][1],
                                           -D3Q19::c[static_cast<size_t>(i)][2]};
                    const auto ngh = in.nghData(cell, pullOff, i);
                    if (i != 0 && !ngh.isValid) {
                        // Source cell is a wall: half-way bounce-back.
                        f[i] = in(cell, D3Q19::opp[static_cast<size_t>(i)]);
                        if (g.z == topZ && D3Q19::c[static_cast<size_t>(i)][2] < 0) {
                            // Moving lid: population re-entering from +z.
                            f[i] += Real(6) * static_cast<Real>(D3Q19::weight(i)) * lidU *
                                    static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][0]);
                        }
                    } else {
                        f[i] = i == 0 ? in(cell, 0) : ngh.value;
                    }
                }
                Real rho = 0;
                Real ux = 0;
                Real uy = 0;
                Real uz = 0;
                for (int i = 0; i < D3Q19::Q; ++i) {
                    rho += f[i];
                    ux += f[i] * static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][0]);
                    uy += f[i] * static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][1]);
                    uz += f[i] * static_cast<Real>(D3Q19::c[static_cast<size_t>(i)][2]);
                }
                ux /= rho;
                uy /= rho;
                uz /= rho;
                for (int i = 0; i < D3Q19::Q; ++i) {
                    const Real feq = equilibrium<D3Q19, Real>(i, rho, ux, uy, uz);
                    out(cell, i) = f[i] + omega * (feq - f[i]);
                }
            };
        });
    }

    Grid                    mGrid;
    Real                    mOmega;
    Real                    mLidU;
    std::array<Field, 2>    mF;
    std::array<skeleton::Skeleton, 2> mStep{skeleton::Skeleton(set::Backend()),
                                            skeleton::Skeleton(set::Backend())};
    int                     mIter = 0;
};

}  // namespace neon::lbm
