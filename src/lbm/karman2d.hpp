#pragma once
// Neon D2Q9 Karman vortex street (paper Table I / §V-D): channel flow past
// a circular cylinder. The 2-D lattice lives in the z = 0 plane of a
// (nx, ny, 1) grid. Boundary handling through a flag field:
//   Bulk    - BGK collide + stream
//   Wall    - cylinder / channel walls, half-way bounce-back
//   Inlet   - prescribed equilibrium at (rho = 1, u = (u0, 0))
//   Outlet  - zero-gradient copy from the neighbour column
// The flag field itself is stencil-read, so Neon inserts exactly one halo
// update for it (flags never change after init).
//
// Layout note: Neon partitions along z, so the channel height is mapped to
// the grid's z axis — the Neon domain is (nx, 1, ny). This makes the 2-D
// problem multi-GPU-partitionable exactly like the paper's 2-D benchmark.

#include <cmath>

#include "lbm/lattice.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::lbm {

enum class CellFlag : uint8_t
{
    Bulk = 0,
    Wall = 1,
    Inlet = 2,
    Outlet = 3,
};

struct KarmanConfig
{
    int32_t nx = 256;
    int32_t ny = 64;
    double  inflow = 0.04;     ///< lattice inlet velocity u0
    double  reynolds = 150.0;  ///< Re = u0 * D / nu

    [[nodiscard]] double cylinderRadius() const { return ny / 9.0; }
    [[nodiscard]] double cylinderX() const { return nx / 5.0; }
    [[nodiscard]] double cylinderY() const { return ny / 2.0 + 0.5; /* slight offset seeds shedding */ }
    [[nodiscard]] double tau() const
    {
        const double nu = inflow * (2.0 * cylinderRadius()) / reynolds;
        return 3.0 * nu + 0.5;
    }

    /// Flag from channel coordinates (x along the flow, h across it).
    [[nodiscard]] bool isWall(int32_t x, int32_t h) const
    {
        const double dx = x - cylinderX();
        const double dy = h - cylinderY();
        if (dx * dx + dy * dy <= cylinderRadius() * cylinderRadius()) {
            return true;
        }
        return h == 0 || h == ny - 1;
    }

    [[nodiscard]] CellFlag flagOf(int32_t x, int32_t h) const
    {
        if (isWall(x, h)) {
            return CellFlag::Wall;
        }
        if (x == 0) {
            return CellFlag::Inlet;
        }
        if (x == nx - 1) {
            return CellFlag::Outlet;
        }
        return CellFlag::Bulk;
    }
};

template <typename Grid, typename Real = float>
class KarmanD2Q9
{
   public:
    using Field = typename Grid::template FieldType<Real>;
    using FlagField = typename Grid::template FieldType<uint8_t>;

    KarmanD2Q9(Grid grid, KarmanConfig config, Occ occ = Occ::NONE)
        : mGrid(grid), mConfig(config), mOmega(static_cast<Real>(1.0 / config.tau()))
    {
        mF[0] = grid.template newField<Real>("k.f0", D2Q9::Q, Real(0));
        mF[1] = grid.template newField<Real>("k.f1", D2Q9::Q, Real(0));
        mFlags = grid.template newField<uint8_t>("k.flags", 1,
                                                 static_cast<uint8_t>(CellFlag::Wall));
        if (!grid.backend().isDryRun()) {
            // Channel height lives on the grid's z axis (nx x 1 x ny).
            mFlags.forEachActiveHost([&](const index_3d& g, int, uint8_t& v) {
                v = static_cast<uint8_t>(config.flagOf(g.x, g.z));
            });
            mFlags.updateDev();
            initEquilibrium();
        }
        for (int parity = 0; parity < 2; ++parity) {
            mStep[parity] = skeleton::Skeleton(grid.backend());
            mStep[parity].sequence(
                {collideStream(mF[static_cast<size_t>(parity)],
                               mF[static_cast<size_t>(1 - parity)])},
                skeleton::SequenceOptions()
                    .withName(parity == 0 ? "karman.even" : "karman.odd")
                    .withOcc(occ));
        }
    }

    void run(int n)
    {
        for (int i = 0; i < n; ++i) {
            mStep[static_cast<size_t>(mIter & 1)].run();
            ++mIter;
        }
    }

    void sync() { mGrid.backend().sync(); }

    [[nodiscard]] int    iteration() const { return mIter; }
    [[nodiscard]] Field& current() { return mF[static_cast<size_t>(mIter & 1)]; }
    [[nodiscard]] Grid&  grid() { return mGrid; }
    [[nodiscard]] const KarmanConfig& config() const { return mConfig; }

    /// (rho, ux, uy) at a cell; host-side after sync + updateHost.
    [[nodiscard]] std::array<double, 3> macroAt(const index_3d& g)
    {
        auto&  f = current();
        double rho = 0;
        double ux = 0;
        double uy = 0;
        for (int i = 0; i < D2Q9::Q; ++i) {
            const double fi = f.hVal(g, i);
            rho += fi;
            ux += fi * D2Q9::c[static_cast<size_t>(i)][0];
            uy += fi * D2Q9::c[static_cast<size_t>(i)][1];
        }
        return {rho, ux / rho, uy / rho};
    }

   private:
    void initEquilibrium()
    {
        const Real u0 = static_cast<Real>(mConfig.inflow);
        for (auto& f : mF) {
            f.forEachActiveHost([&](const index_3d&, int i, Real& v) {
                v = equilibrium<D2Q9, Real>(i, Real(1), u0, Real(0), Real(0));
            });
            f.updateDev();
        }
    }

    set::Container collideStream(Field fin, Field fout)
    {
        const Real omega = mOmega;
        const Real u0 = static_cast<Real>(mConfig.inflow);
        auto       flags = mFlags;
        return mGrid.newContainer("collideStream2d", [fin, fout, flags, omega,
                                                      u0](auto& l) mutable {
            auto in = l.load(fin, Access::READ, Compute::STENCIL);
            auto flag = l.load(flags, Access::READ, Compute::STENCIL);
            auto out = l.load(fout, Access::WRITE);
            return [=](const auto& cell) mutable {
                const auto myFlag = static_cast<CellFlag>(flag(cell));
                if (myFlag == CellFlag::Wall) {
                    // Solid cells carry no dynamics.
                    for (int i = 0; i < D2Q9::Q; ++i) {
                        out(cell, i) = in(cell, i);
                    }
                    return;
                }
                if (myFlag == CellFlag::Inlet) {
                    for (int i = 0; i < D2Q9::Q; ++i) {
                        out(cell, i) = equilibrium<D2Q9, Real>(i, Real(1), u0, Real(0), Real(0));
                    }
                    return;
                }
                if (myFlag == CellFlag::Outlet) {
                    // Zero gradient: copy the upstream neighbour.
                    for (int i = 0; i < D2Q9::Q; ++i) {
                        out(cell, i) = in.nghVal(cell, {-1, 0, 0}, i);
                    }
                    return;
                }
                Real f[D2Q9::Q];
                f[0] = in(cell, 0);
                for (int i = 1; i < D2Q9::Q; ++i) {
                    const index_3d pullOff{-D2Q9::c[static_cast<size_t>(i)][0], 0,
                                           -D2Q9::c[static_cast<size_t>(i)][1]};
                    // The flag field's outsideValue is Wall, so one flag
                    // read both classifies the neighbour and proves the
                    // population read is in-bounds (unchecked fast path).
                    const auto nghFlag = flag.nghData(cell, pullOff, 0);
                    if (static_cast<CellFlag>(nghFlag.value) == CellFlag::Wall) {
                        f[i] = in(cell, D2Q9::opp[static_cast<size_t>(i)]);
                    } else {
                        f[i] = in.nghValUnchecked(cell, pullOff, i);
                    }
                }
                Real rho = 0;
                Real ux = 0;
                Real uy = 0;
                for (int i = 0; i < D2Q9::Q; ++i) {
                    rho += f[i];
                    ux += f[i] * static_cast<Real>(D2Q9::c[static_cast<size_t>(i)][0]);
                    uy += f[i] * static_cast<Real>(D2Q9::c[static_cast<size_t>(i)][1]);
                }
                ux /= rho;
                uy /= rho;
                for (int i = 0; i < D2Q9::Q; ++i) {
                    const Real feq = equilibrium<D2Q9, Real>(i, rho, ux, uy, Real(0));
                    out(cell, i) = f[i] + omega * (feq - f[i]);
                }
            };
        });
    }

    Grid         mGrid;
    KarmanConfig mConfig;
    Real         mOmega;
    std::array<Field, 2>              mF;
    FlagField                         mFlags;
    std::array<skeleton::Skeleton, 2> mStep{skeleton::Skeleton(set::Backend()),
                                            skeleton::Skeleton(set::Backend())};
    int mIter = 0;
};

/// Flat-array D2Q9 baseline — the stand-in for the paper's Taichi
/// comparison (Table I): same physics, plain loops over a contiguous
/// buffer, no framework machinery.
template <typename Real = float>
class NativeKarmanD2Q9
{
   public:
    explicit NativeKarmanD2Q9(KarmanConfig config)
        : mConfig(config),
          mDim{config.nx, config.ny, 1},
          mCells(mDim.size()),
          mOmega(static_cast<Real>(1.0 / config.tau()))
    {
        mFlags.resize(mCells);
        mDim.forEach([&](const index_3d& g) {
            mFlags[mDim.pitch(g)] = static_cast<uint8_t>(config.flagOf(g.x, g.y));
        });
        const Real u0 = static_cast<Real>(config.inflow);
        for (auto& f : mF) {
            f.assign(mCells * D2Q9::Q, Real(0));
            for (size_t x = 0; x < mCells; ++x) {
                for (int i = 0; i < D2Q9::Q; ++i) {
                    f[slot(x, i)] = equilibrium<D2Q9, Real>(i, Real(1), u0, Real(0), Real(0));
                }
            }
        }
    }

    void run(int n)
    {
        for (int it = 0; it < n; ++it) {
            step();
            ++mIter;
        }
    }

    [[nodiscard]] std::array<double, 3> macroAt(const index_3d& g) const
    {
        const auto&  f = mF[static_cast<size_t>(mIter & 1)];
        const size_t x = mDim.pitch(g);
        double       rho = 0;
        double       ux = 0;
        double       uy = 0;
        for (int i = 0; i < D2Q9::Q; ++i) {
            const double fi = f[slot(x, i)];
            rho += fi;
            ux += fi * D2Q9::c[static_cast<size_t>(i)][0];
            uy += fi * D2Q9::c[static_cast<size_t>(i)][1];
        }
        return {rho, ux / rho, uy / rho};
    }

    [[nodiscard]] const index_3d& dim() const { return mDim; }
    [[nodiscard]] int             iteration() const { return mIter; }

   private:
    [[nodiscard]] size_t slot(size_t cell, int i) const
    {
        return static_cast<size_t>(i) * mCells + cell;
    }

    void step()
    {
        const Real  u0 = static_cast<Real>(mConfig.inflow);
        const auto& in = mF[static_cast<size_t>(mIter & 1)];
        auto&       out = mF[static_cast<size_t>(1 - (mIter & 1))];
        Real        f[D2Q9::Q];
        for (size_t x = 0; x < mCells; ++x) {
            const index_3d g = mDim.fromPitch(x);
            const auto     myFlag = static_cast<CellFlag>(mFlags[x]);
            if (myFlag == CellFlag::Wall) {
                for (int i = 0; i < D2Q9::Q; ++i) {
                    out[slot(x, i)] = in[slot(x, i)];
                }
                continue;
            }
            if (myFlag == CellFlag::Inlet) {
                for (int i = 0; i < D2Q9::Q; ++i) {
                    out[slot(x, i)] = equilibrium<D2Q9, Real>(i, Real(1), u0, Real(0), Real(0));
                }
                continue;
            }
            if (myFlag == CellFlag::Outlet) {
                const size_t left = mDim.pitch({g.x - 1, g.y, 0});
                for (int i = 0; i < D2Q9::Q; ++i) {
                    out[slot(x, i)] = in[slot(left, i)];
                }
                continue;
            }
            for (int i = 0; i < D2Q9::Q; ++i) {
                const index_3d src{g.x - D2Q9::c[static_cast<size_t>(i)][0],
                                   g.y - D2Q9::c[static_cast<size_t>(i)][1], 0};
                const bool valid = mDim.contains(src);
                const bool solid =
                    !valid || static_cast<CellFlag>(mFlags[mDim.pitch(src)]) == CellFlag::Wall;
                if (i != 0 && solid) {
                    f[i] = in[slot(x, D2Q9::opp[static_cast<size_t>(i)])];
                } else {
                    f[i] = i == 0 ? in[slot(x, 0)] : in[slot(mDim.pitch(src), i)];
                }
            }
            Real rho = 0;
            Real ux = 0;
            Real uy = 0;
            for (int i = 0; i < D2Q9::Q; ++i) {
                rho += f[i];
                ux += f[i] * static_cast<Real>(D2Q9::c[static_cast<size_t>(i)][0]);
                uy += f[i] * static_cast<Real>(D2Q9::c[static_cast<size_t>(i)][1]);
            }
            ux /= rho;
            uy /= rho;
            for (int i = 0; i < D2Q9::Q; ++i) {
                const Real feq = equilibrium<D2Q9, Real>(i, rho, ux, uy, Real(0));
                out[slot(x, i)] = f[i] + mOmega * (feq - f[i]);
            }
        }
    }

    KarmanConfig         mConfig;
    index_3d             mDim;
    size_t               mCells;
    Real                 mOmega;
    std::array<std::vector<Real>, 2> mF;
    std::vector<uint8_t> mFlags;
    int                  mIter = 0;
};

}  // namespace neon::lbm
