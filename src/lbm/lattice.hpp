#pragma once
// Lattice constants for the LBM solvers (paper §VI-A): D3Q19 for the 3-D
// lid-driven cavity and D2Q9 for the 2-D Karman vortex street.

#include <array>
#include <cstdint>

#include "core/stencil.hpp"

namespace neon::lbm {

struct D3Q19
{
    static constexpr int Q = 19;

    /// Discrete velocities; index 0 is the rest population.
    static constexpr std::array<std::array<int, 3>, Q> c = {{
        {0, 0, 0},                                                        // 0
        {1, 0, 0},  {-1, 0, 0},  {0, 1, 0},  {0, -1, 0},                  // 1-4
        {0, 0, 1},  {0, 0, -1},                                           // 5-6
        {1, 1, 0},  {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},                  // 7-10
        {1, 0, 1},  {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},                  // 11-14
        {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1},                  // 15-18
    }};

    /// Opposite direction of each velocity.
    static constexpr std::array<int, Q> opp = {0, 2,  1,  4,  3,  6,  5,  8,  7, 10,
                                               9, 12, 11, 14, 13, 16, 15, 18, 17};

    static constexpr double wRest = 1.0 / 3.0;
    static constexpr double wAxis = 1.0 / 18.0;
    static constexpr double wDiag = 1.0 / 36.0;

    static constexpr double weight(int i)
    {
        if (i == 0) {
            return wRest;
        }
        return i <= 6 ? wAxis : wDiag;
    }

    /// The 18 non-rest directions as a Neon stencil.
    static Stencil stencil()
    {
        std::vector<index_3d> pts;
        for (int i = 1; i < Q; ++i) {
            pts.push_back({c[static_cast<size_t>(i)][0], c[static_cast<size_t>(i)][1],
                           c[static_cast<size_t>(i)][2]});
        }
        return Stencil(std::move(pts), "d3q19");
    }
};

struct D2Q9
{
    static constexpr int Q = 9;

    static constexpr std::array<std::array<int, 3>, Q> c = {{
        {0, 0, 0},                                          // 0
        {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0},       // 1-4
        {1, 1, 0}, {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},     // 5-8
    }};

    static constexpr std::array<int, Q> opp = {0, 2, 1, 4, 3, 6, 5, 8, 7};

    static constexpr double weight(int i)
    {
        if (i == 0) {
            return 4.0 / 9.0;
        }
        return i <= 4 ? 1.0 / 9.0 : 1.0 / 36.0;
    }

    static Stencil stencil()
    {
        std::vector<index_3d> pts;
        for (int i = 1; i < Q; ++i) {
            pts.push_back({c[static_cast<size_t>(i)][0], c[static_cast<size_t>(i)][1], 0});
        }
        return Stencil(std::move(pts), "d2q9");
    }

    /// Variant with the lattice's second axis mapped to the grid's z axis,
    /// so a 2-D channel is partitionable by Neon's z decomposition.
    static Stencil stencilXZ()
    {
        std::vector<index_3d> pts;
        for (int i = 1; i < Q; ++i) {
            pts.push_back({c[static_cast<size_t>(i)][0], 0, c[static_cast<size_t>(i)][1]});
        }
        return Stencil(std::move(pts), "d2q9xz");
    }
};

/// BGK equilibrium, shared by every solver and baseline so results are
/// bit-comparable across implementations.
template <typename Lattice, typename Real>
inline Real equilibrium(int i, Real rho, Real ux, Real uy, Real uz)
{
    const Real cu = static_cast<Real>(Lattice::c[static_cast<size_t>(i)][0]) * ux +
                    static_cast<Real>(Lattice::c[static_cast<size_t>(i)][1]) * uy +
                    static_cast<Real>(Lattice::c[static_cast<size_t>(i)][2]) * uz;
    const Real usq = ux * ux + uy * uy + uz * uz;
    return static_cast<Real>(Lattice::weight(i)) * rho *
           (Real(1) + Real(3) * cu + Real(4.5) * cu * cu - Real(1.5) * usq);
}

}  // namespace neon::lbm
