#pragma once
// Online fault recovery (docs/robustness.md, "Self-healing recovery").
// SelfHealingRunner drives a skeleton pipeline step by step and survives
// permanent device loss through the state machine
//
//   fault -> checkpoint -> shrink -> repartition -> recompile -> resume
//
// The checkpoint leg is proactive: after every completed step the guarded
// fields snapshot their global state host-side (the engines' fail-stop
// abort drains queued ops without executing, so a faulted step may have
// written some devices but not others — only the pre-step snapshot is
// consistent). On RuntimeError{DeviceLost} the runner quiesces the dying
// backend, builds a survivor backend from the old spec minus the lost
// device, rebinds the grid (fields re-allocate on the survivors),
// invalidates every schedule-cache entry keyed on the old device count,
// rebuilds the containers, re-sequences, restores the snapshot and resumes
// at the faulted step. The differential battery in tests/repartition proves
// the resumed trajectory bitwise-equal to an unfaulted run.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/index3d.hpp"
#include "core/log.hpp"
#include "domain/partition_plan.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"
#include "skeleton/schedule_cache.hpp"
#include "skeleton/skeleton.hpp"
#include "sys/fault.hpp"

namespace neon::repartition {

/// Type-erased per-field checkpoint/restore hook. Captures the field by
/// value (fields are shared_ptr handles, so the snapshot always follows the
/// live storage, including across a rebind that re-allocated it). The
/// snapshot is a dense global array indexed by (cell coordinate, component)
/// — decomposition-independent, so it restores onto any device count.
class FieldGuard
{
   public:
    template <typename FieldT>
    explicit FieldGuard(FieldT field)
    {
        using T = typename FieldT::Type;
        const index_3d dim = field.grid().dim();
        const auto     card = static_cast<int64_t>(field.cardinality());
        const auto     pitchY = static_cast<int64_t>(dim.x);
        const int64_t  pitchZ = static_cast<int64_t>(dim.x) * dim.y;
        auto flat = [card, pitchY, pitchZ](const index_3d& gc, int c) {
            return static_cast<size_t>(
                (static_cast<int64_t>(gc.z) * pitchZ + static_cast<int64_t>(gc.y) * pitchY +
                 gc.x) *
                    card +
                c);
        };
        auto snapshot = std::make_shared<std::vector<T>>();
        const size_t slots = static_cast<size_t>(dim.size()) * static_cast<size_t>(card);

        mCheckpoint = [field, snapshot, flat, slots] {
            if (field.grid().backend().isDryRun()) {
                return;
            }
            field.updateHost();
            snapshot->assign(slots, T{});
            field.forEachActiveHost(
                [&](const index_3d& gc, int c, T& v) { (*snapshot)[flat(gc, c)] = v; });
        };
        mRestore = [field, snapshot, flat] {
            if (field.grid().backend().isDryRun() || snapshot->empty()) {
                return;
            }
            field.forEachActiveHost(
                [&](const index_3d& gc, int c, T& v) { v = (*snapshot)[flat(gc, c)]; });
            field.updateDev();
        };
    }

    void checkpoint() const { mCheckpoint(); }
    void restore() const { mRestore(); }

   private:
    std::function<void()> mCheckpoint;
    std::function<void()> mRestore;
};

/// One completed recovery, as returned by SelfHealingRunner::run.
struct RecoveryEvent
{
    int lostDevice = -1;         ///< old-numbering index of the dead device
    int atStep = -1;             ///< step whose run/sync raised the fault
    int lastCompletedStep = -1;  ///< the snapshot the runner restored
    int devicesBefore = 0;
    int devicesAfter = 0;
    /// Old-geometry recipes dropped from the schedule cache.
    size_t cacheEntriesInvalidated = 0;

    [[nodiscard]] std::string toString() const
    {
        return "recovered dev" + std::to_string(lostDevice) + " at step " +
               std::to_string(atStep) + " (" + std::to_string(devicesBefore) + " -> " +
               std::to_string(devicesAfter) + " devices, restored step " +
               std::to_string(lastCompletedStep) + ", " +
               std::to_string(cacheEntriesInvalidated) + " cache entries invalidated)";
    }
};

/// Default survivor-spec builder: drop the lost device (device indices
/// above it shift down by one, speed factors follow), consume every
/// PermanentDeviceLoss rule aimed at it, and rebase the remaining fault
/// rules' run targets onto the survivor backend's fresh run-id space (the
/// resumed execution re-runs the faulted step as run `0`, assuming the
/// runner's one-run-per-step cadence).
inline set::BackendSpec survivorSpec(set::BackendSpec spec, int lostDevice, int faultedStep)
{
    NEON_CHECK(spec.nDevices >= 2, "survivorSpec: cannot shrink below one device");
    spec.nDevices -= 1;
    if (!spec.speedFactors.empty() && lostDevice < static_cast<int>(spec.speedFactors.size())) {
        spec.speedFactors.erase(spec.speedFactors.begin() + lostDevice);
    }
    sys::FaultPlan remapped(spec.faults.seed);
    for (sys::FaultSpec fs : spec.faults.specs) {
        if (fs.device == lostDevice) {
            continue;  // rules on the dead device can never fire again
        }
        if (fs.device > lostDevice) {
            fs.device -= 1;
        }
        if (fs.kind == sys::FaultKind::PermanentDeviceLoss) {
            if (fs.device < 0) {
                continue;  // "any device" loss: consumed by this recovery
            }
            if (fs.run >= 0) {
                fs.run -= faultedStep;
                if (fs.run < 0) {
                    continue;  // would have fired in the completed prefix
                }
            }
        }
        remapped.add(std::move(fs));
    }
    spec.faults = std::move(remapped);
    return spec;
}

/// Step-at-a-time pipeline driver with checkpointing and device-loss
/// recovery. `Grid` is any grid exposing the repartition surface
/// (currentPlan / repartition / rebindBackend): DGrid, EGrid, BGrid.
template <typename Grid>
class SelfHealingRunner
{
   public:
    SelfHealingRunner(Grid grid, std::vector<set::Container> ops,
                      skeleton::SequenceOptions options = {})
        : mGrid(std::move(grid)), mOps(std::move(ops)), mOptions(std::move(options))
    {
        resequence();
    }

    /// Register a field for checkpoint/restore. Every field the pipeline
    /// writes must be guarded, or recovery resumes from stale data.
    template <typename FieldT>
    void guardField(FieldT field)
    {
        mGuards.emplace_back(std::move(field));
    }

    /// Override survivor-spec construction (multi-loss fuzz plans with
    /// custom run remapping). Signature: (oldSpec, lostDevice, faultedStep).
    void setSurvivorHook(std::function<set::BackendSpec(set::BackendSpec, int, int)> hook)
    {
        mSurvivorHook = std::move(hook);
    }

    /// Run the pipeline until `steps` total steps completed (cumulative
    /// across calls), recovering from permanent device losses along the
    /// way. Returns the recoveries performed. Non-DeviceLost RuntimeErrors
    /// propagate — shrinking the device set cannot fix a transfer retry
    /// budget or a timeout.
    std::vector<RecoveryEvent> run(int steps)
    {
        std::vector<RecoveryEvent> events;
        if (mCompleted == 0 && !mCheckpointed) {
            checkpointAll();  // pre-step-0 state, restorable like any other
            mCheckpointed = true;
        }
        while (mCompleted < steps) {
            try {
                mCompiled.run();
                mSkeleton->sync();
                ++mCompleted;
                checkpointAll();
            } catch (const RuntimeError& e) {
                if (e.info.kind != RuntimeError::Kind::DeviceLost) {
                    throw;
                }
                events.push_back(recover(e));
            }
        }
        return events;
    }

    /// Rebalance at a step boundary: migrate to `plan`, rebuild the
    /// containers against the new geometry and re-sequence (same backend,
    /// so the skeleton object is reused; the schedule cache misses onto the
    /// new span sizes by key construction).
    void repartition(const domain::PartitionPlan& plan)
    {
        mGrid.backend().sync();
        mGrid.repartition(plan);
        for (auto& c : mOps) {
            c.rebuild();
        }
        mCompiled = mSkeleton->sequence(mOps, mOptions);
    }

    [[nodiscard]] Grid&               grid() { return mGrid; }
    [[nodiscard]] skeleton::Skeleton& skeleton() { return *mSkeleton; }
    [[nodiscard]] int                 completedSteps() const { return mCompleted; }

   private:
    void resequence()
    {
        mSkeleton.emplace(mGrid.backend());
        mCompiled = mSkeleton->sequence(mOps, mOptions);
    }

    void checkpointAll()
    {
        for (const FieldGuard& g : mGuards) {
            g.checkpoint();
        }
    }

    RecoveryEvent recover(const RuntimeError& e)
    {
        RecoveryEvent ev;
        ev.lostDevice = e.info.device;
        ev.atStep = mCompleted;
        ev.lastCompletedStep = mCompleted - 1;

        set::Backend dying = mGrid.backend();  // keep a handle past the rebind
        ev.devicesBefore = dying.devCount();
        NEON_CHECK(ev.devicesBefore >= 2,
                   "SelfHealingRunner: device lost with no survivor to recover onto");
        NEON_CHECK(ev.lostDevice >= 0 && ev.lostDevice < ev.devicesBefore,
                   "SelfHealingRunner: fault carries no usable device attribution");
        dying.engine().quiesce();
        dying.engine().clearAbort();

        const set::BackendSpec spec =
            mSurvivorHook ? mSurvivorHook(dying.spec(), ev.lostDevice, ev.atStep)
                          : survivorSpec(dying.spec(), ev.lostDevice, ev.atStep);
        set::Backend survivor = set::Backend::make(spec);
        ev.devicesAfter = survivor.devCount();

        mGrid.rebindBackend(std::move(survivor));
        ev.cacheEntriesInvalidated =
            skeleton::ScheduleCache::instance().invalidateDevCount(ev.devicesBefore);
        for (auto& c : mOps) {
            c.rebuild();
        }
        for (const FieldGuard& g : mGuards) {
            g.restore();
        }
        resequence();
        log::info("self-healing: ", ev.toString());
        return ev;
    }

    Grid                                                          mGrid;
    std::vector<set::Container>                                   mOps;
    skeleton::SequenceOptions                                     mOptions;
    std::optional<skeleton::Skeleton>                             mSkeleton;
    skeleton::CompiledSchedule                                    mCompiled;
    std::vector<FieldGuard>                                       mGuards;
    std::function<set::BackendSpec(set::BackendSpec, int, int)>   mSurvivorHook;
    int                                                           mCompleted = 0;
    bool                                                          mCheckpointed = false;
};

}  // namespace neon::repartition
