#pragma once
// Repartitioner: measured-rate load rebalancing (docs/robustness.md).
// Consumes the per-device compute-busy times of an ExecutionReport window
// together with the decomposition that produced them, estimates each
// device's throughput in partition units per virtual second, and proposes a
// new PartitionPlan via largest-remainder apportionment over the grid's
// minimum-units floor. On a heterogeneous machine (BackendSpec::
// withSpeedFactors) the proposal shifts slabs toward the fast devices until
// per-device busy times equalize.

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "domain/partition_plan.hpp"
#include "sys/execution_report.hpp"

namespace neon::repartition {

/// Per-device throughput estimate derived from one execution window.
struct DeviceRates
{
    /// Partition units (z-planes / block rows) processed per virtual
    /// second of compute-busy time, one entry per device.
    std::vector<double> unitsPerSecond;
    /// False when the window carried no usable kernel time (trace off,
    /// dry-run with zero-cost config, empty window): the rates degenerate
    /// to uniform and propose() returns an even split.
    bool measured = false;

    [[nodiscard]] std::string toString() const
    {
        std::string s = measured ? "rates[" : "rates(unmeasured)[";
        for (size_t i = 0; i < unitsPerSecond.size(); ++i) {
            s += (i > 0 ? ", " : "") + std::to_string(unitsPerSecond[i]);
        }
        return s + "]";
    }
};

class Repartitioner
{
   public:
    /// Estimate per-device throughput from `report` given the plan that was
    /// live while the window ran. Devices with no recorded kernel time get
    /// the mean rate of the measured ones (they contribute no evidence, so
    /// they keep a proportional share).
    static DeviceRates measuredRates(const ExecutionReport&       report,
                                     const domain::PartitionPlan& current)
    {
        const int nDev = current.devCount();
        NEON_CHECK(nDev >= 1, "Repartitioner: current plan is empty");
        DeviceRates rates;
        rates.unitsPerSecond.assign(static_cast<size_t>(nDev), 0.0);

        double sum = 0.0;
        int    nMeasured = 0;
        for (int d = 0; d < nDev; ++d) {
            const auto du = static_cast<size_t>(d);
            const double busy = du < report.devices().size()
                                    ? report.devices()[du].computeBusy
                                    : 0.0;
            const auto units = static_cast<double>(current.unitsPerDev[du]);
            if (busy > 0.0 && units > 0.0) {
                rates.unitsPerSecond[du] = units / busy;
                sum += rates.unitsPerSecond[du];
                ++nMeasured;
            }
        }
        if (nMeasured == 0) {
            rates.unitsPerSecond.assign(static_cast<size_t>(nDev), 1.0);
            return rates;
        }
        const double mean = sum / nMeasured;
        for (double& r : rates.unitsPerSecond) {
            if (r <= 0.0) {
                r = mean;
            }
        }
        rates.measured = true;
        return rates;
    }

    /// Apportion `totalUnits` proportionally to the rates, each device
    /// keeping at least `minUnitsPerDev` (the grid's halo/boundary floor).
    static domain::PartitionPlan propose(const DeviceRates& rates, int64_t totalUnits,
                                         int64_t minUnitsPerDev)
    {
        return domain::PartitionPlan::fromWeights(totalUnits, rates.unitsPerSecond,
                                                  minUnitsPerDev);
    }

    /// One-call form: rates from `report` against the grid's live plan,
    /// apportioned over the grid's own unit total and per-device floor.
    /// Feed the result to grid.repartition() when it differs from
    /// grid.currentPlan().
    template <typename Grid>
    static domain::PartitionPlan propose(const Grid& grid, const ExecutionReport& report)
    {
        const DeviceRates rates = measuredRates(report, grid.currentPlan());
        return propose(rates, grid.partitionUnits(), grid.minUnitsPerDev());
    }
};

}  // namespace neon::repartition
