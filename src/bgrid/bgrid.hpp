#pragma once
// BGrid: block-sparse dense grid — the proof that the Domain contract in
// src/domain/ is grid-agnostic. The bounding box is tiled into fixed-size
// cubic blocks (blockDim in {2,3,4}, so a block holds at most 64 cells and
// one uint64_t activity mask); only blocks containing active cells are
// stored. Inside a block the layout is dense (direct voxel addressing, no
// per-cell connectivity), across blocks a 27-direction block-neighbour
// table resolves stencil reads — the memory/indirection middle ground
// between dGrid and eGrid (upstream Neon's bGrid lineage).
//
// Partitioning is 1-D along z in *block rows*, cut to balance active cells
// per device like eGrid. Per-partition block ordering
//   [boundary-low][internal][boundary-high][ghost-low][ghost-high]
// keeps halo traffic contiguous: one segment per neighbour covering the
// active boundary-block row only (inactive blocks travel nowhere).
// Requires stencil.radius() <= blockDim so a stencil read crosses at most
// one block in each axis.

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/index3d.hpp"
#include "core/stencil.hpp"
#include "core/types.hpp"
#include "domain/grid_base.hpp"
#include "domain/span.hpp"
#include "set/backend.hpp"
#include "set/memset.hpp"

namespace neon::bgrid {

/// Local cell handle: owning local block + voxel coordinate within it.
struct BCell
{
    int32_t block = 0;
    int8_t  x = 0;
    int8_t  y = 0;
    int8_t  z = 0;
};

/// domain::Span decoder for the block-sparse grid: a slot is one block;
/// its active voxels are walked mask-bit by mask-bit (deterministic
/// ascending order — the engine-equivalence guarantees build on it).
struct BSpanDecoder
{
    const uint64_t* masks = nullptr;
    int32_t         blockDim = 2;

    template <typename Fn>
    void forEachInSlot(int32_t b, Fn&& fn) const
    {
        const int32_t bd = blockDim;
        uint64_t      m = masks[b];
        while (m != 0) {
            const int v = std::countr_zero(m);
            m &= m - 1;
            fn(BCell{b, static_cast<int8_t>(v % bd), static_cast<int8_t>((v / bd) % bd),
                     static_cast<int8_t>(v / (bd * bd))});
        }
    }
};

/// Iteration space of one (device, view): up to two contiguous local block
/// ranges, lowered onto domain::Span with blocks as slots.
class BSpan : public domain::Span<BSpanDecoder>
{
   public:
    using Range = domain::SpanRange;

    BSpan() = default;
    BSpan(const uint64_t* masks, int32_t blockDim, size_t cells, Range r0, Range r1 = {0, 0})
        : domain::Span<BSpanDecoder>(BSpanDecoder{masks, blockDim}, cells, r0, r1)
    {
    }
};

template <typename T>
class BField;

class BGrid : public domain::GridBase, public domain::GridOps<BGrid>
{
   public:
    using Cell = BCell;
    using Span = BSpan;
    /// Grid-generic field alias: `typename Grid::template FieldType<T>`.
    template <typename T>
    using FieldType = BField<T>;

    /// Per-device partition structure (all counts in *blocks*).
    struct PartInfo
    {
        int32_t bzFirst = 0;  ///< first global block row of this partition
        int32_t bzCount = 0;  ///< block rows owned
        int32_t nOwned = 0;
        int32_t nBdrLow = 0;
        int32_t nBdrHigh = 0;
        int32_t nGhostLow = 0;
        int32_t nGhostHigh = 0;

        [[nodiscard]] int32_t nLocal() const { return nOwned + nGhostLow + nGhostHigh; }
    };

    BGrid() = default;
    /// Build from an activity predicate over the bounding box `dim`.
    BGrid(set::Backend backend, index_3d dim, const std::function<bool(const index_3d&)>& active,
          Stencil stencil = Stencil::laplace7(), int blockDim = 4);
    /// Convenience: register several stencils; the grid uses their union.
    BGrid(set::Backend backend, index_3d dim, const std::function<bool(const index_3d&)>& active,
          const std::vector<Stencil>& stencils, int blockDim = 4)
        : BGrid(std::move(backend), dim, active, Stencil::unionOf(stencils), blockDim)
    {
    }

    [[nodiscard]] BSpan span(int dev, DataView view) const;
    /// STANDARD span whose mask pointer targets the host mirror, for
    /// host-side iteration (FieldBase::forEachActiveHost).
    [[nodiscard]] BSpan hostSpan(int dev) const;

    [[nodiscard]] const PartInfo& part(int dev) const;
    [[nodiscard]] size_t          activeCount() const;
    [[nodiscard]] int             blockSize() const;  ///< cells per block edge
    [[nodiscard]] int             blockVolume() const;
    [[nodiscard]] const index_3d& blockGridDim() const;

    /// Host-side: is a global coordinate active?
    [[nodiscard]] bool isActive(const index_3d& g) const;
    /// Host-side: (device, local cell index) of an active cell, or (-1,-1).
    [[nodiscard]] std::pair<int, int64_t> localOf(const index_3d& g) const;

    // -- partition-local structure, exposed to BField / tests ---------------
    [[nodiscard]] const set::MemSet<uint64_t>& masks() const;
    [[nodiscard]] const set::MemSet<int32_t>&  blockNgh() const;
    [[nodiscard]] const set::MemSet<index_3d>& origins() const;

    // --- adaptive repartitioning (docs/robustness.md) -----------------------
    /// Current decomposition in partition units (block rows per device).
    [[nodiscard]] domain::PartitionPlan currentPlan() const;
    /// Total partition units (block rows of the bounding box).
    [[nodiscard]] int64_t partitionUnits() const { return blockGridDim().z; }
    /// Smallest row count repartition() accepts per device (interior
    /// devices need disjoint boundary-low/high rows when multi-device).
    [[nodiscard]] int64_t minUnitsPerDev() const;
    /// Re-assign block rows in place — block-granular mask reassignment —
    /// and migrate every registered field. Containers must be rebuild()-ed
    /// and skeletons re-sequenced (Backend::geometryEpoch enforces).
    void repartition(const domain::PartitionPlan& plan);
    /// Online-recovery rebind onto a smaller backend; fields re-allocate
    /// without migration — the recovery driver restores checkpointed state.
    void rebindBackend(set::Backend survivor);

   private:
    struct Impl;
    /// Greedy active-balanced row cuts for `nDev` devices (ctor + rebind).
    void computeCuts(int nDev, std::vector<int32_t>& bzFirst, std::vector<int32_t>& bzCount) const;
    /// (Re)build parts, halo segments, structure tables and the host maps
    /// from prescribed row cuts.
    void rebuildStructure(const std::vector<int32_t>& bzFirst, const std::vector<int32_t>& bzCount);
};

}  // namespace neon::bgrid
