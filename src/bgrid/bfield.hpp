#pragma once
// BField<T>: metadata over a BGrid. Storage, mirrors and halo registration
// live in domain::FieldBase; this header adds block-dense addressing.
// Within a block, voxels address directly (dense); across blocks the grid's
// 27-direction block-neighbour table resolves the jump and the activity
// mask is the validity test. Per stencil access the amortized structural
// cost is (27*4 + 8)/blockVolume bytes — between DField (0) and EField
// (4 per stencil point), which is the design point of a block-sparse grid.

#include <cassert>
#include <string>

#include "bgrid/bgrid.hpp"
#include "domain/field_base.hpp"

namespace neon::bgrid {

template <typename T>
struct BPartition
{
    T*              mem = nullptr;
    int32_t         nLocalCells = 0;  ///< local blocks * blockVol
    int32_t         card = 1;
    int32_t         blockDim = 2;
    int32_t         blockVol = 8;
    MemLayout       layout = MemLayout::structOfArrays;
    T               outside = T{};
    const uint64_t* masks = nullptr;     ///< activity mask per local block
    const int32_t*  blockNgh = nullptr;  ///< [ownedBlock][27] -> local block
    const index_3d* origins = nullptr;   ///< global origin cell per local block

    [[nodiscard]] size_t bufIdx(int64_t cell, int32_t c) const
    {
        if (layout == MemLayout::structOfArrays) {
            return static_cast<size_t>(c) * static_cast<size_t>(nLocalCells) +
                   static_cast<size_t>(cell);
        }
        return static_cast<size_t>(cell) * static_cast<size_t>(card) + static_cast<size_t>(c);
    }

    [[nodiscard]] int32_t voxelOf(int32_t vx, int32_t vy, int32_t vz) const
    {
        return (vz * blockDim + vy) * blockDim + vx;
    }

    [[nodiscard]] int64_t cellIdx(const BCell& cell) const
    {
        return static_cast<int64_t>(cell.block) * blockVol + voxelOf(cell.x, cell.y, cell.z);
    }

    [[nodiscard]] T& operator()(const BCell& cell, int32_t c = 0)
    {
        return mem[bufIdx(cellIdx(cell), c)];
    }
    [[nodiscard]] const T& operator()(const BCell& cell, int32_t c = 0) const
    {
        return mem[bufIdx(cellIdx(cell), c)];
    }

    struct NghData
    {
        T    value{};
        bool isValid = false;
    };

    /// Neighbour read. Same-block reads test the activity mask directly;
    /// block-crossing reads resolve the target block through the
    /// 27-direction table, then test its mask. Inactive / outside-domain
    /// neighbours return the field's outsideValue (isValid == false).
    [[nodiscard]] NghData nghData(const BCell& cell, const index_3d& offset, int32_t c = 0) const
    {
        int32_t nx = cell.x + offset.x;
        int32_t ny = cell.y + offset.y;
        int32_t nz = cell.z + offset.z;
        // stencil radius <= blockDim: each axis crosses at most one block.
        const int32_t sx = nx < 0 ? -1 : (nx >= blockDim ? 1 : 0);
        const int32_t sy = ny < 0 ? -1 : (ny >= blockDim ? 1 : 0);
        const int32_t sz = nz < 0 ? -1 : (nz >= blockDim ? 1 : 0);
        nx -= sx * blockDim;
        ny -= sy * blockDim;
        nz -= sz * blockDim;
        int32_t block = cell.block;
        if (sx != 0 || sy != 0 || sz != 0) {
            const int32_t dir = ((sz + 1) * 3 + (sy + 1)) * 3 + (sx + 1);
            block = blockNgh[static_cast<size_t>(cell.block) * 27 + static_cast<size_t>(dir)];
            if (block < 0) {
                return {outside, false};
            }
        }
        const int32_t v = voxelOf(nx, ny, nz);
        if (((masks[block] >> v) & 1) == 0) {
            return {outside, false};
        }
        return {mem[bufIdx(static_cast<int64_t>(block) * blockVol + v, c)], true};
    }

    [[nodiscard]] T nghVal(const BCell& cell, const index_3d& offset, int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    /// Interface parity with DPartition::nghValUnchecked. On the
    /// block-sparse grid the mask/table lookup *is* the validity test, so
    /// nothing can be skipped.
    [[nodiscard]] T nghValUnchecked(const BCell& cell, const index_3d& offset,
                                    int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    [[nodiscard]] index_3d globalIdx(const BCell& cell) const
    {
        const index_3d& o = origins[cell.block];
        return {o.x + cell.x, o.y + cell.y, o.z + cell.z};
    }

    /// Flat buffer index of an owned cell — what FieldBase::forEachActiveHost
    /// adds to rawHost() (domain contract, shared by every grid's partition).
    [[nodiscard]] size_t flatIdx(const BCell& cell, int32_t c) const
    {
        return bufIdx(cellIdx(cell), c);
    }

    [[nodiscard]] int32_t cardinality() const { return card; }

    // Access-sanitizer contracts (set/sanitize.hpp): BSpan slots are block
    // ordinals; the 27-direction neighbour table bounds offsets to radius 1
    // on every axis.
    [[nodiscard]] static int32_t spanSlotOf(const BCell& cell) { return cell.block; }
    [[nodiscard]] static int32_t stencilExtent(const index_3d& offset)
    {
        const int32_t ax = offset.x < 0 ? -offset.x : offset.x;
        const int32_t ay = offset.y < 0 ? -offset.y : offset.y;
        const int32_t az = offset.z < 0 ? -offset.z : offset.z;
        return ax > ay ? (ax > az ? ax : az) : (ay > az ? ay : az);
    }
};

template <typename T>
class BField : public domain::FieldBase<BGrid, T>
{
    using Base = domain::FieldBase<BGrid, T>;

   public:
    using Partition = BPartition<T>;
    using Base::cardinality;
    using Base::grid;
    using Base::layout;
    using Base::outsideValue;

    BField() = default;

    BField(const BGrid& grid, std::string name, int cardinality, T outsideValue, MemLayout layout)
    {
        // Whole blocks are allocated (inactive voxels included): the price
        // of dense in-block addressing, bounded by the block sparsity.
        std::vector<size_t> cells;
        for (int d = 0; d < grid.devCount(); ++d) {
            cells.push_back(static_cast<size_t>(grid.part(d).nLocal()) *
                            static_cast<size_t>(grid.blockVolume()));
        }
        this->initCore(grid, std::move(name), cardinality, outsideValue, layout, cells);
    }

    /// Shadowed (not virtual): block-structure reads amortized over the
    /// block's cells — the block-sparse representation's price.
    [[nodiscard]] double bytesPerItem(Compute compute = Compute::MAP) const
    {
        double bytes = Base::bytesPerItem(compute);
        if (compute == Compute::STENCIL) {
            // 27-entry neighbour row (int32) + activity mask (uint64),
            // fetched once per block.
            bytes += (27.0 * 4.0 + 8.0) / grid().blockVolume();
        }
        return bytes;
    }

    /// Contract (domain::Loadable): the partition is *view-agnostic* — the
    /// span passed at launch decides which cells are visited; the partition
    /// only addresses memory. Every DataView must yield the same partition.
    [[nodiscard]] Partition getPartition(int dev, [[maybe_unused]] DataView view =
                                                      DataView::STANDARD) const
    {
        assert(dev >= 0 && dev < grid().devCount());
        const auto& g = grid();
        const auto& p = g.part(dev);
        Partition   part;
        part.mem = this->mCore->data.rawDev(dev);
        part.nLocalCells = p.nLocal() * g.blockVolume();
        part.card = cardinality();
        part.blockDim = g.blockSize();
        part.blockVol = g.blockVolume();
        part.layout = layout();
        part.outside = outsideValue();
        part.masks = g.masks().rawDev(dev);
        part.blockNgh = g.blockNgh().rawDev(dev);
        part.origins = g.origins().rawDev(dev);
        return part;
    }

    // --- host-side access ---------------------------------------------------
    [[nodiscard]] T& hRef(const index_3d& g, int32_t c = 0) const
    {
        auto [dev, idx] = grid().localOf(g);
        NEON_CHECK(dev >= 0, "hRef on an inactive cell");
        Partition p = getPartition(dev);
        return this->rawHost(dev)[p.bufIdx(idx, c)];
    }

    [[nodiscard]] T hVal(const index_3d& g, int32_t c = 0) const { return hRef(g, c); }

    /// Partition descriptor pointing at the host mirror: structure tables
    /// retargeted to their host copies so globalIdx/flatIdx work host-side
    /// (FieldBase::forEachActiveHost pairs it with rawHost()).
    [[nodiscard]] Partition hostPartition(int dev) const
    {
        const BGrid& g = grid();
        Partition    part = getPartition(dev);
        part.mem = nullptr;  // callers index via flatIdx against rawHost
        part.masks = g.masks().rawHost(dev);
        part.blockNgh = g.blockNgh().rawHost(dev);
        part.origins = g.origins().rawHost(dev);
        return part;
    }
};

}  // namespace neon::bgrid
