#include "bgrid/bgrid.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/error.hpp"

namespace neon::bgrid {

namespace {
int32_t ceilDiv(int32_t a, int32_t b)
{
    return (a + b - 1) / b;
}
}  // namespace

struct BGrid::Impl : domain::GridBase::BaseImpl
{
    int      blockDim = 4;
    int      blockVol = 64;
    index_3d blockGrid;  ///< bounding box in blocks
    size_t   totalActive = 0;

    std::vector<PartInfo> parts;

    /// Global per-block activity masks (bounding box, host-side; bit
    /// ((z%bd)*bd + y%bd)*bd + x%bd).
    std::vector<uint64_t> blockMasks;
    /// Global block pitch -> (dev, owned local block); dev*2^40 + idx + 1,
    /// 0 means inactive block.
    std::vector<uint64_t> hostBlockLocal;
    /// Per device: prefix sums of active-cell counts over local blocks
    /// (size nLocal + 1) — constant-time span cell counts, dry-run safe.
    std::vector<std::vector<int64_t>> activePrefix;

    /// Kept for repartition/rebind: active blocks per block row in (by, bx)
    /// order and the per-row active-cell totals, so rebuildStructure can
    /// re-derive every table for any row cuts.
    std::vector<std::vector<size_t>> rowBlocks;
    std::vector<int64_t>             rowActive;

    set::MemSet<uint64_t> masks;    ///< activity mask per local block (owned+ghost)
    set::MemSet<int32_t>  ngh;      ///< [ownedBlock][27] -> local block or -1
    set::MemSet<index_3d> origins;  ///< global origin cell per local block

    [[nodiscard]] uint64_t maskOf(const index_3d& g) const
    {
        const index_3d bc{g.x / blockDim, g.y / blockDim, g.z / blockDim};
        return blockMasks[blockGrid.pitch(bc)];
    }

    [[nodiscard]] int voxelOf(const index_3d& g) const
    {
        return ((g.z % blockDim) * blockDim + (g.y % blockDim)) * blockDim + (g.x % blockDim);
    }
};

BGrid::BGrid(set::Backend backend, index_3d dim,
             const std::function<bool(const index_3d&)>& active, Stencil stencil, int blockDim)
{
    NEON_CHECK(dim.x > 0 && dim.y > 0 && dim.z > 0, "grid dimensions must be positive");
    NEON_CHECK(blockDim >= 2 && blockDim <= 4,
               "bgrid block size must be in [2, 4] (one 64-bit mask per block)");
    auto  impl = std::make_shared<Impl>();
    Impl& g = *impl;
    g.name = "bGrid";
    g.backend = std::move(backend);
    g.dim = dim;
    g.stencil = std::move(stencil);
    g.haloRadius = std::max(1, g.stencil.zRadius());
    NEON_CHECK(g.stencil.radius() <= blockDim,
               "bgrid requires stencil radius <= block size (reads cross at most one block)");
    g.blockDim = blockDim;
    g.blockVol = blockDim * blockDim * blockDim;
    g.blockGrid = {ceilDiv(dim.x, blockDim), ceilDiv(dim.y, blockDim), ceilDiv(dim.z, blockDim)};

    const int  nDev = g.backend.devCount();
    const bool dry = g.backend.isDryRun();

    // Pass 1: per-block activity masks over the bounding box.
    g.blockMasks.assign(g.blockGrid.size(), 0);
    for (int32_t z = 0; z < dim.z; ++z) {
        for (int32_t y = 0; y < dim.y; ++y) {
            for (int32_t x = 0; x < dim.x; ++x) {
                const index_3d c{x, y, z};
                if (active(c)) {
                    const index_3d bc{x / blockDim, y / blockDim, z / blockDim};
                    g.blockMasks[g.blockGrid.pitch(bc)] |= uint64_t{1} << g.voxelOf(c);
                    ++g.totalActive;
                }
            }
        }
    }

    // Row structures: active blocks per block row in (by, bx) order.
    g.rowBlocks.assign(static_cast<size_t>(g.blockGrid.z), {});
    g.rowActive.assign(static_cast<size_t>(g.blockGrid.z), 0);
    for (int32_t bz = 0; bz < g.blockGrid.z; ++bz) {
        for (int32_t by = 0; by < g.blockGrid.y; ++by) {
            for (int32_t bx = 0; bx < g.blockGrid.x; ++bx) {
                const size_t bp = g.blockGrid.pitch({bx, by, bz});
                if (g.blockMasks[bp] != 0) {
                    g.rowBlocks[static_cast<size_t>(bz)].push_back(bp);
                    g.rowActive[static_cast<size_t>(bz)] +=
                        std::popcount(g.blockMasks[bp]);
                }
            }
        }
    }

    mBase = std::move(impl);
    std::vector<int32_t> bzFirst;
    std::vector<int32_t> bzCount;
    computeCuts(devCount(), bzFirst, bzCount);
    rebuildStructure(bzFirst, bzCount);
}

void BGrid::computeCuts(int nDev, std::vector<int32_t>& bzFirst,
                        std::vector<int32_t>& bzCount) const
{
    // Partition block rows, balancing active cells (like eGrid's plane
    // cuts). Interior devices need >= 2 rows so the boundary-low and
    // boundary-high classes are disjoint.
    const Impl&   g = impl<Impl>();
    const int32_t minRows = nDev > 1 ? 2 : 1;
    NEON_CHECK(g.blockGrid.z >= nDev * minRows,
               "bgrid needs at least 2 block rows per device when multi-device");
    bzFirst.assign(static_cast<size_t>(nDev), 0);
    bzCount.assign(static_cast<size_t>(nDev), 0);
    const double target = static_cast<double>(g.totalActive) / nDev;
    int32_t      row = 0;
    for (int d = 0; d < nDev; ++d) {
        bzFirst[static_cast<size_t>(d)] = row;
        int64_t       acc = 0;
        const int32_t rowsLeft = g.blockGrid.z - row;
        const int     devsLeft = nDev - d;
        const int32_t maxRows = rowsLeft - (devsLeft - 1) * minRows;
        int32_t       used = 0;
        while (used < maxRows &&
               (used < minRows || (d < nDev - 1 && static_cast<double>(acc) < target))) {
            acc += g.rowActive[static_cast<size_t>(row)];
            ++row;
            ++used;
        }
        if (d == nDev - 1) {
            row = g.blockGrid.z;
            used = rowsLeft;
        }
        bzCount[static_cast<size_t>(d)] = used;
    }
}

void BGrid::rebuildStructure(const std::vector<int32_t>& bzFirst,
                             const std::vector<int32_t>& bzCount)
{
    Impl&      g = impl<Impl>();
    const int  nDev = static_cast<int>(bzCount.size());
    const int  blockDim = g.blockDim;
    const bool dry = g.backend.isDryRun();

    // Per-partition block counts.
    g.parts.assign(static_cast<size_t>(nDev), {});
    auto rowSize = [&](int32_t bz) {
        return static_cast<int32_t>(g.rowBlocks[static_cast<size_t>(bz)].size());
    };
    for (int d = 0; d < nDev; ++d) {
        PartInfo& p = g.parts[static_cast<size_t>(d)];
        p.bzFirst = bzFirst[static_cast<size_t>(d)];
        p.bzCount = bzCount[static_cast<size_t>(d)];
        p.nOwned = 0;
        for (int32_t bz = p.bzFirst; bz < p.bzFirst + p.bzCount; ++bz) {
            p.nOwned += rowSize(bz);
        }
        const int32_t bzLast = p.bzFirst + p.bzCount - 1;
        p.nBdrLow = d > 0 ? rowSize(p.bzFirst) : 0;
        p.nBdrHigh = d < nDev - 1 ? rowSize(bzLast) : 0;
        p.nGhostLow = d > 0 ? rowSize(p.bzFirst - 1) : 0;
        p.nGhostHigh = d < nDev - 1 ? rowSize(bzLast + 1) : 0;
    }

    // Halo segments: the boundary-block classes are contiguous, so one
    // whole-block segment per neighbour (active blocks only — an inactive
    // block is never stored, hence never sent).
    const auto vol = static_cast<int64_t>(g.blockVol);
    g.haloSegments.assign(static_cast<size_t>(nDev), {});
    for (int d = 0; d < nDev; ++d) {
        const PartInfo& p = g.parts[static_cast<size_t>(d)];
        auto&           segs = g.haloSegments[static_cast<size_t>(d)];
        if (d < nDev - 1) {
            const PartInfo& pn = g.parts[static_cast<size_t>(d + 1)];
            segs.push_back({d + 1, 1, static_cast<int64_t>(p.nOwned - p.nBdrHigh) * vol,
                            static_cast<int64_t>(pn.nOwned) * vol,
                            static_cast<int64_t>(p.nBdrHigh) * vol});
        }
        if (d > 0) {
            const PartInfo& pn = g.parts[static_cast<size_t>(d - 1)];
            segs.push_back({d - 1, 0, 0,
                            static_cast<int64_t>(pn.nOwned + pn.nGhostLow) * vol,
                            static_cast<int64_t>(p.nBdrLow) * vol});
        }
    }

    // Local block lists in class order, the owned-block map and the
    // active-cell prefix sums (all host-side; valid in dry-run too).
    std::vector<std::vector<size_t>> localBlocks(static_cast<size_t>(nDev));
    g.hostBlockLocal.assign(g.blockGrid.size(), 0);
    g.activePrefix.assign(static_cast<size_t>(nDev), {});
    for (int d = 0; d < nDev; ++d) {
        const PartInfo& p = g.parts[static_cast<size_t>(d)];
        auto&           blocks = localBlocks[static_cast<size_t>(d)];
        blocks.reserve(static_cast<size_t>(p.nLocal()));
        const int32_t bzLast = p.bzFirst + p.bzCount - 1;
        auto          appendRow = [&](int32_t bz) {
            const auto& row = g.rowBlocks[static_cast<size_t>(bz)];
            blocks.insert(blocks.end(), row.begin(), row.end());
        };
        // Owned classes: [boundary-low][internal][boundary-high].
        if (d > 0) {
            appendRow(p.bzFirst);
        }
        for (int32_t bz = p.bzFirst + (d > 0 ? 1 : 0); bz <= bzLast - (d < nDev - 1 ? 1 : 0);
             ++bz) {
            appendRow(bz);
        }
        if (d < nDev - 1) {
            appendRow(bzLast);
        }
        NEON_CHECK(static_cast<int32_t>(blocks.size()) == p.nOwned,
                   "bgrid block enumeration mismatch");
        for (int32_t i = 0; i < p.nOwned; ++i) {
            g.hostBlockLocal[blocks[static_cast<size_t>(i)]] =
                (static_cast<uint64_t>(d) << 40) + static_cast<uint64_t>(i) + 1;
        }
        // Ghosts: neighbours' boundary rows in the same (by, bx) order.
        if (d > 0) {
            appendRow(p.bzFirst - 1);
        }
        if (d < nDev - 1) {
            appendRow(bzLast + 1);
        }
        NEON_CHECK(static_cast<int32_t>(blocks.size()) == p.nLocal(),
                   "bgrid ghost enumeration mismatch");

        auto& prefix = g.activePrefix[static_cast<size_t>(d)];
        prefix.assign(static_cast<size_t>(p.nLocal()) + 1, 0);
        for (int32_t i = 0; i < p.nLocal(); ++i) {
            prefix[static_cast<size_t>(i) + 1] =
                prefix[static_cast<size_t>(i)] +
                std::popcount(g.blockMasks[blocks[static_cast<size_t>(i)]]);
        }
    }

    // Allocate structure tables (fake allocations in dry-run — the bytes
    // still count against device capacity).
    {
        std::vector<size_t> maskCounts, nghCounts, originCounts;
        for (int d = 0; d < nDev; ++d) {
            const PartInfo& p = g.parts[static_cast<size_t>(d)];
            maskCounts.push_back(static_cast<size_t>(p.nLocal()));
            originCounts.push_back(static_cast<size_t>(p.nLocal()));
            nghCounts.push_back(static_cast<size_t>(p.nOwned) * 27);
        }
        g.masks = set::MemSet<uint64_t>(g.backend, "bgrid.masks", maskCounts);
        g.origins = set::MemSet<index_3d>(g.backend, "bgrid.origins", originCounts);
        g.ngh = set::MemSet<int32_t>(g.backend, "bgrid.ngh", nghCounts);
    }
    if (dry) {
        return;
    }

    // Fill the device tables: masks, origins, 27-direction connectivity.
    for (int d = 0; d < nDev; ++d) {
        const PartInfo& p = g.parts[static_cast<size_t>(d)];
        const auto&     blocks = localBlocks[static_cast<size_t>(d)];
        uint64_t*       maskH = g.masks.rawHost(d);
        index_3d*       originH = g.origins.rawHost(d);
        int32_t*        nghH = g.ngh.rawHost(d);

        std::unordered_map<size_t, int32_t> localIdx;
        localIdx.reserve(blocks.size() * 2);
        for (int32_t i = 0; i < p.nLocal(); ++i) {
            const size_t bp = blocks[static_cast<size_t>(i)];
            localIdx.emplace(bp, i);
            maskH[i] = g.blockMasks[bp];
            const index_3d bc = g.blockGrid.fromPitch(bp);
            originH[i] = {bc.x * blockDim, bc.y * blockDim, bc.z * blockDim};
        }
        for (int32_t i = 0; i < p.nOwned; ++i) {
            const index_3d bc = g.blockGrid.fromPitch(blocks[static_cast<size_t>(i)]);
            for (int32_t sz = -1; sz <= 1; ++sz) {
                for (int32_t sy = -1; sy <= 1; ++sy) {
                    for (int32_t sx = -1; sx <= 1; ++sx) {
                        const int32_t  dir = ((sz + 1) * 3 + (sy + 1)) * 3 + (sx + 1);
                        const index_3d nb{bc.x + sx, bc.y + sy, bc.z + sz};
                        int32_t        v = -1;
                        if (g.blockGrid.contains(nb)) {
                            auto it = localIdx.find(g.blockGrid.pitch(nb));
                            if (it != localIdx.end()) {
                                v = it->second;
                            }
                        }
                        nghH[static_cast<size_t>(i) * 27 + static_cast<size_t>(dir)] = v;
                    }
                }
            }
        }
    }

    g.masks.updateDev();
    g.origins.updateDev();
    g.ngh.updateDev();
}

domain::PartitionPlan BGrid::currentPlan() const
{
    domain::PartitionPlan plan;
    for (const PartInfo& p : impl<Impl>().parts) {
        plan.unitsPerDev.push_back(p.bzCount);
    }
    return plan;
}

int64_t BGrid::minUnitsPerDev() const
{
    return devCount() > 1 ? 2 : 1;
}

void BGrid::repartition(const domain::PartitionPlan& plan)
{
    Impl&     g = impl<Impl>();
    const int nDev = devCount();
    NEON_CHECK(plan.devCount() == nDev,
               "bGrid::repartition: plan device count != grid device count");
    NEON_CHECK(plan.total() == g.blockGrid.z,
               "bGrid::repartition: plan must cover every block row");
    for (const int64_t u : plan.unitsPerDev) {
        NEON_CHECK(u >= minUnitsPerDev(),
                   "bGrid::repartition: every device needs at least 2 block rows");
    }

    // Owned cells per device in the global block ordering (active blocks
    // ascending (bz, by, bx)); every stored block contributes blockVol
    // buffer cells, active or not, so the migration unit is blocks * vol.
    const auto           vol = static_cast<int64_t>(g.blockVol);
    std::vector<int64_t> oldCells;
    for (const PartInfo& p : g.parts) {
        oldCells.push_back(static_cast<int64_t>(p.nOwned) * vol);
    }

    std::vector<int32_t> bzFirst;
    std::vector<int32_t> bzCount;
    int32_t              row = 0;
    for (const int64_t u : plan.unitsPerDev) {
        bzFirst.push_back(row);
        bzCount.push_back(static_cast<int32_t>(u));
        row += static_cast<int32_t>(u);
    }
    rebuildStructure(bzFirst, bzCount);

    domain::RegridInfo   info;
    std::vector<int64_t> newCells;
    for (const PartInfo& p : g.parts) {
        newCells.push_back(static_cast<int64_t>(p.nOwned) * vol);
        info.newCellCounts.push_back(static_cast<size_t>(p.nLocal()) *
                                     static_cast<size_t>(g.blockVol));
        info.oldOwnedStart.push_back(0);
        info.newOwnedStart.push_back(0);
    }
    info.migrate = domain::migrationSegments(oldCells, newCells);
    info.migrateData = true;
    applyRegridToFields(info);
    backend().noteGeometryChange();
}

void BGrid::rebindBackend(set::Backend survivor)
{
    Impl&     g = impl<Impl>();
    const int nDev = survivor.devCount();
    g.backend = std::move(survivor);
    std::vector<int32_t> bzFirst;
    std::vector<int32_t> bzCount;
    computeCuts(nDev, bzFirst, bzCount);
    rebuildStructure(bzFirst, bzCount);

    domain::RegridInfo info;
    info.migrateData = false;
    for (const PartInfo& p : g.parts) {
        info.newCellCounts.push_back(static_cast<size_t>(p.nLocal()) *
                                     static_cast<size_t>(g.blockVol));
        info.oldOwnedStart.push_back(0);
        info.newOwnedStart.push_back(0);
    }
    applyRegridToFields(info);
    backend().noteGeometryChange();
}

BSpan BGrid::span(int dev, DataView view) const
{
    const Impl&     g = impl<Impl>();
    const PartInfo& p = part(dev);
    const auto&     prefix = g.activePrefix[static_cast<size_t>(dev)];
    const uint64_t* masks = g.masks.rawDev(dev);
    auto            cellsIn = [&](int32_t a, int32_t b) {
        return static_cast<size_t>(prefix[static_cast<size_t>(b)] -
                                   prefix[static_cast<size_t>(a)]);
    };
    switch (view) {
        case DataView::STANDARD:
            return BSpan(masks, g.blockDim, cellsIn(0, p.nOwned), {0, p.nOwned});
        case DataView::INTERNAL:
            return BSpan(masks, g.blockDim, cellsIn(p.nBdrLow, p.nOwned - p.nBdrHigh),
                         {p.nBdrLow, p.nOwned - p.nBdrLow - p.nBdrHigh});
        case DataView::BOUNDARY:
            return BSpan(masks, g.blockDim,
                         cellsIn(0, p.nBdrLow) + cellsIn(p.nOwned - p.nBdrHigh, p.nOwned),
                         {0, p.nBdrLow}, {p.nOwned - p.nBdrHigh, p.nBdrHigh});
    }
    return {};
}

BSpan BGrid::hostSpan(int dev) const
{
    const Impl&     g = impl<Impl>();
    const PartInfo& p = part(dev);
    const auto&     prefix = g.activePrefix[static_cast<size_t>(dev)];
    const size_t    cells = static_cast<size_t>(prefix[static_cast<size_t>(p.nOwned)] - prefix[0]);
    return BSpan(g.masks.rawHost(dev), g.blockDim, cells, {0, p.nOwned});
}

const BGrid::PartInfo& BGrid::part(int dev) const
{
    NEON_CHECK(dev >= 0 && dev < devCount(), "device index out of range");
    return impl<Impl>().parts[static_cast<size_t>(dev)];
}

size_t BGrid::activeCount() const
{
    return impl<Impl>().totalActive;
}

int BGrid::blockSize() const
{
    return impl<Impl>().blockDim;
}

int BGrid::blockVolume() const
{
    return impl<Impl>().blockVol;
}

const index_3d& BGrid::blockGridDim() const
{
    return impl<Impl>().blockGrid;
}

bool BGrid::isActive(const index_3d& g) const
{
    const Impl& i = impl<Impl>();
    if (!i.dim.contains(g)) {
        return false;
    }
    return (i.maskOf(g) >> i.voxelOf(g)) & 1;
}

std::pair<int, int64_t> BGrid::localOf(const index_3d& g) const
{
    if (!isActive(g)) {
        return {-1, -1};
    }
    const Impl&    i = impl<Impl>();
    const index_3d bc{g.x / i.blockDim, g.y / i.blockDim, g.z / i.blockDim};
    const uint64_t enc = i.hostBlockLocal[i.blockGrid.pitch(bc)];
    NEON_CHECK(enc != 0, "active cell in unregistered block");
    const int     dev = static_cast<int>((enc - 1) >> 40);
    const int64_t block = static_cast<int64_t>((enc - 1) & ((1ull << 40) - 1));
    return {dev, block * i.blockVol + i.voxelOf(g)};
}

const set::MemSet<uint64_t>& BGrid::masks() const
{
    return impl<Impl>().masks;
}

const set::MemSet<int32_t>& BGrid::blockNgh() const
{
    return impl<Impl>().ngh;
}

const set::MemSet<index_3d>& BGrid::origins() const
{
    return impl<Impl>().origins;
}

}  // namespace neon::bgrid
