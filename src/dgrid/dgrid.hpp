#pragma once
// DGrid: dense Cartesian grid partitioned across devices along z
// (paper §IV-C: "both Grids decompose the Cartesian domain only on one
// dimension so that each GPU communicates only with two other neighbour
// GPUs"). Shared state and the factory surface live in domain::GridBase /
// domain::GridOps; this header adds only the dense-specific parts: the
// z-slab partition table and the plane-based span.

#include <memory>
#include <string>
#include <vector>

#include "core/index3d.hpp"
#include "core/stencil.hpp"
#include "core/types.hpp"
#include "domain/grid_base.hpp"
#include "domain/span.hpp"
#include "set/backend.hpp"

namespace neon::dgrid {

/// Local cell coordinate inside one partition: x/y global, z in [0, zCount).
struct DCell
{
    int32_t x = 0;
    int32_t y = 0;
    int32_t z = 0;
};

/// domain::Span decoder for the dense grid: a slot is one z-plane, expanded
/// y-outer/x-inner.
struct DSpanDecoder
{
    int32_t dimX = 0;
    int32_t dimY = 0;

    template <typename Fn>
    void forEachInSlot(int32_t z, Fn&& fn) const
    {
        for (int32_t y = 0; y < dimY; ++y) {
            for (int32_t x = 0; x < dimX; ++x) {
                fn(DCell{x, y, z});
            }
        }
    }
};

/// The iteration space of one (device, DataView) pair: full x/y extent and
/// up to two z ranges (the BOUNDARY view is the union of the low and high
/// slabs, paper Fig. 3). Lowered onto domain::Span with z-planes as slots.
class DSpan : public domain::Span<DSpanDecoder>
{
   public:
    using ZRange = domain::SpanRange;

    DSpan() = default;
    DSpan(int32_t dimX, int32_t dimY, ZRange r0, ZRange r1 = {0, 0})
        : domain::Span<DSpanDecoder>(
              DSpanDecoder{dimX, dimY},
              static_cast<size_t>(dimX) * static_cast<size_t>(dimY) *
                  static_cast<size_t>(r0.count + r1.count),
              r0, r1)
    {
    }
};

template <typename T>
class DField;

class DGrid : public domain::GridBase, public domain::GridOps<DGrid>
{
   public:
    using Cell = DCell;
    using Span = DSpan;
    /// Grid-generic field alias: `typename Grid::template FieldType<T>`.
    template <typename T>
    using FieldType = DField<T>;

    /// Per-device slab of the z-decomposition.
    struct PartInfo
    {
        int32_t zOrigin = 0;   ///< global z of local z=0
        int32_t zCount = 0;    ///< owned planes
        int32_t bLow = 0;      ///< boundary planes adjacent to the lower neighbour
        int32_t bHigh = 0;     ///< boundary planes adjacent to the upper neighbour
        bool    hasLow = false;
        bool    hasHigh = false;
    };

    DGrid() = default;
    /// Build a grid over `dim` cells; `stencil` (the union of all stencils
    /// the application uses) determines the halo radius and the
    /// internal/boundary classification.
    DGrid(set::Backend backend, index_3d dim, Stencil stencil = Stencil::laplace7());
    /// Convenience: register several stencils; the grid uses their union
    /// (paper §IV-C2: "the size of the halos are computed based on the
    /// union of all the stencils").
    DGrid(set::Backend backend, index_3d dim, const std::vector<Stencil>& stencils)
        : DGrid(std::move(backend), dim, Stencil::unionOf(stencils))
    {
    }

    [[nodiscard]] DSpan span(int dev, DataView view) const;
    /// STANDARD span for host-mirror iteration (the dense span carries no
    /// device pointers, so it is the same object).
    [[nodiscard]] DSpan hostSpan(int dev) const { return span(dev, DataView::STANDARD); }

    [[nodiscard]] const PartInfo& part(int dev) const;
    [[nodiscard]] size_t          cellCount() const;
    /// Grid-generic activity query (every dense cell is active).
    [[nodiscard]] bool isActive(const index_3d& g) const { return dim().contains(g); }
    /// Constant-time z-plane -> owning device lookup.
    [[nodiscard]] int devOfZ(int32_t z) const;

    // --- adaptive repartitioning (docs/robustness.md) -----------------------
    /// Current decomposition in partition units (z-planes per device).
    [[nodiscard]] domain::PartitionPlan currentPlan() const;
    /// Total partition units (the grid's z extent).
    [[nodiscard]] int64_t partitionUnits() const { return dim().z; }
    /// Smallest owned-plane count repartition() accepts per device: a full
    /// halo's worth, so fed halo halves always come from owned planes.
    [[nodiscard]] int64_t minUnitsPerDev() const;
    /// Re-slice the z-decomposition in place and migrate every registered
    /// field through the transfer path. Containers built on this grid must
    /// be rebuild()-ed (and skeletons re-sequenced) afterwards — enforced
    /// via Backend::geometryEpoch.
    void repartition(const domain::PartitionPlan& plan);
    /// Online-recovery rebind: move this grid onto `survivor` (fewer
    /// devices), re-slice evenly and re-allocate fields WITHOUT migrating
    /// data (the lost device's buffers are gone); the recovery driver
    /// restores checkpointed state afterwards.
    void rebindBackend(set::Backend survivor);

   private:
    struct Impl : domain::GridBase::BaseImpl
    {
        std::vector<PartInfo> parts;
        /// z -> owning device LUT (one entry per global z-plane).
        std::vector<int32_t> zToDev;
    };

    static void rebuildTables(Impl& impl, const std::vector<int32_t>& counts);
};

/// Balanced 1-D decomposition of `total` planes over `nDev` devices.
std::vector<int32_t> splitBalanced(int32_t total, int nDev);

}  // namespace neon::dgrid
