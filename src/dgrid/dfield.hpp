#pragma once
// DField<T>: scalar or vector metadata over a DGrid (paper §IV-C2).
// Storage, mirrors and halo registration live in domain::FieldBase; this
// header adds only the dense addressing (DPartition) and plane-based host
// access. Boundary planes are contiguous per component, so one haloUpdate
// issues 2 transfers per device for AoS/scalar fields and 2*cardinality
// transfers for SoA fields — exactly the paper's accounting.

#include <cassert>
#include <string>

#include "dgrid/dgrid.hpp"
#include "domain/field_base.hpp"

namespace neon::dgrid {

/// Partition local view captured by compute lambdas (valid on one device).
template <typename T>
struct DPartition
{
    T*        mem = nullptr;
    int32_t   dimX = 0;
    int32_t   dimY = 0;
    int32_t   zCount = 0;
    int32_t   haloR = 0;
    int32_t   zAlloc = 0;
    int32_t   card = 1;
    int32_t   zOrigin = 0;
    int32_t   globalZ = 0;
    MemLayout layout = MemLayout::structOfArrays;
    T         outside = T{};

    [[nodiscard]] size_t bufIdx(int32_t x, int32_t y, int32_t zb, int32_t c) const
    {
        if (layout == MemLayout::structOfArrays) {
            return ((static_cast<size_t>(c) * static_cast<size_t>(zAlloc) + static_cast<size_t>(zb)) *
                        static_cast<size_t>(dimY) +
                    static_cast<size_t>(y)) *
                       static_cast<size_t>(dimX) +
                   static_cast<size_t>(x);
        }
        return ((static_cast<size_t>(zb) * static_cast<size_t>(dimY) + static_cast<size_t>(y)) *
                    static_cast<size_t>(dimX) +
                static_cast<size_t>(x)) *
                   static_cast<size_t>(card) +
               static_cast<size_t>(c);
    }

    [[nodiscard]] T& operator()(const DCell& cell, int32_t c = 0)
    {
        return mem[bufIdx(cell.x, cell.y, cell.z + haloR, c)];
    }

    [[nodiscard]] const T& operator()(const DCell& cell, int32_t c = 0) const
    {
        return mem[bufIdx(cell.x, cell.y, cell.z + haloR, c)];
    }

    struct NghData
    {
        T    value{};
        bool isValid = false;
    };

    /// Read a neighbour's value; cells outside the global domain return the
    /// field's outsideValue (isValid == false). Neighbours in another
    /// partition are served from the halo planes.
    [[nodiscard]] NghData nghData(const DCell& cell, const index_3d& offset, int32_t c = 0) const
    {
        const int32_t nx = cell.x + offset.x;
        const int32_t ny = cell.y + offset.y;
        const int32_t nz = cell.z + offset.z;
        if (nx < 0 || nx >= dimX || ny < 0 || ny >= dimY) {
            return {outside, false};
        }
        const int32_t gz = zOrigin + nz;
        if (gz < 0 || gz >= globalZ) {
            return {outside, false};
        }
        return {mem[bufIdx(nx, ny, nz + haloR, c)], true};
    }

    [[nodiscard]] T nghVal(const DCell& cell, const index_3d& offset, int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    /// Unchecked neighbour read: the caller guarantees the neighbour is
    /// inside the global domain (e.g. it already inspected a flag field
    /// whose outsideValue marks walls). Skips the bounds tests of
    /// nghData() — the overhead the paper attributes Neon's remaining
    /// gap to hand-written kernels to (§VI-B).
    [[nodiscard]] T nghValUnchecked(const DCell& cell, const index_3d& offset,
                                    int32_t c = 0) const
    {
        return mem[bufIdx(cell.x + offset.x, cell.y + offset.y, cell.z + offset.z + haloR, c)];
    }

    [[nodiscard]] index_3d globalIdx(const DCell& cell) const
    {
        return {cell.x, cell.y, zOrigin + cell.z};
    }

    /// Flat buffer index of an owned cell — what FieldBase::forEachActiveHost
    /// adds to rawHost() (domain contract, shared by every grid's partition).
    [[nodiscard]] size_t flatIdx(const DCell& cell, int32_t c) const
    {
        return bufIdx(cell.x, cell.y, cell.z + haloR, c);
    }

    [[nodiscard]] index_3d globalDim() const { return {dimX, dimY, globalZ}; }

    [[nodiscard]] int32_t cardinality() const { return card; }

    // Access-sanitizer contracts (set/sanitize.hpp, docs/analysis.md): the
    // span slot a cell iterates under (DSpan slots are z-planes) and how
    // far a neighbour offset reaches toward another partition (only z
    // crosses device boundaries on DGrid; x/y stay inside the slab).
    [[nodiscard]] static int32_t spanSlotOf(const DCell& cell) { return cell.z; }
    [[nodiscard]] static int32_t stencilExtent(const index_3d& offset)
    {
        return offset.z < 0 ? -offset.z : offset.z;
    }
};

template <typename T>
class DField : public domain::FieldBase<DGrid, T>
{
    using Base = domain::FieldBase<DGrid, T>;

   public:
    using Partition = DPartition<T>;
    using Base::cardinality;
    using Base::grid;
    using Base::layout;
    using Base::outsideValue;

    DField() = default;

    DField(const DGrid& grid, std::string name, int cardinality, T outsideValue, MemLayout layout)
    {
        // Each partition stores its owned planes plus the 2r halo planes.
        std::vector<size_t> cells;
        const int           r = grid.haloRadius();
        for (int d = 0; d < grid.devCount(); ++d) {
            const auto& p = grid.part(d);
            cells.push_back(static_cast<size_t>(grid.dim().x) * static_cast<size_t>(grid.dim().y) *
                            static_cast<size_t>(p.zCount + 2 * r));
        }
        this->initCore(grid, std::move(name), cardinality, outsideValue, layout, cells);
    }

    /// Contract (domain::Loadable): the partition is *view-agnostic* — the
    /// span passed at launch decides which cells are visited; the partition
    /// only addresses memory. Every DataView must yield the same partition.
    [[nodiscard]] Partition getPartition(int dev, [[maybe_unused]] DataView view =
                                                      DataView::STANDARD) const
    {
        assert(dev >= 0 && dev < grid().devCount());
        const auto& p = grid().part(dev);
        Partition   part;
        part.mem = this->mCore->data.rawDev(dev);
        part.dimX = grid().dim().x;
        part.dimY = grid().dim().y;
        part.zCount = p.zCount;
        part.haloR = grid().haloRadius();
        part.zAlloc = p.zCount + 2 * part.haloR;
        part.card = cardinality();
        part.zOrigin = p.zOrigin;
        part.globalZ = grid().dim().z;
        part.layout = layout();
        part.outside = outsideValue();
        return part;
    }

    // --- host-side access ---------------------------------------------------
    /// Reference into the host mirror at a global coordinate (constant-time
    /// z -> device lookup through the grid's LUT).
    [[nodiscard]] T& hRef(const index_3d& g, int32_t c = 0) const
    {
        const int   dev = grid().devOfZ(g.z);
        const auto& p = grid().part(dev);
        const auto  part = hostPartition(dev);
        return this->rawHost(dev)[part.bufIdx(g.x, g.y, g.z - p.zOrigin + part.haloR, c)];
    }

    [[nodiscard]] T hVal(const index_3d& g, int32_t c = 0) const { return hRef(g, c); }

    /// Dense-grid alias for the shared host visit (global z-major order,
    /// lowered onto the grid's hostSpan by domain::FieldBase).
    template <typename Fn>  // fn(const index_3d&, int card, T&)
    void forEachHost(Fn&& fn) const
    {
        Base::forEachActiveHost(std::forward<Fn>(fn));
    }

    /// Partition descriptor pointing at the host mirror (indexing only;
    /// FieldBase::forEachActiveHost pairs it with rawHost()).
    [[nodiscard]] Partition hostPartition(int dev) const
    {
        Partition part = getPartition(dev);
        part.mem = nullptr;  // callers index via flatIdx against rawHost
        return part;
    }
};

}  // namespace neon::dgrid
