#pragma once
// DField<T>: scalar or vector metadata over a DGrid (paper §IV-C2).
// Supports SoA/AoS layouts; boundary planes are contiguous per component,
// so one haloUpdate issues 2 transfers per device for AoS/scalar fields and
// 2*cardinality transfers for SoA fields — exactly the paper's accounting.

#include <memory>
#include <string>

#include "core/error.hpp"
#include "dgrid/dgrid.hpp"
#include "set/memset.hpp"

namespace neon::dgrid {

/// Partition local view captured by compute lambdas (valid on one device).
template <typename T>
struct DPartition
{
    T*        mem = nullptr;
    int32_t   dimX = 0;
    int32_t   dimY = 0;
    int32_t   zCount = 0;
    int32_t   haloR = 0;
    int32_t   zAlloc = 0;
    int32_t   card = 1;
    int32_t   zOrigin = 0;
    int32_t   globalZ = 0;
    MemLayout layout = MemLayout::structOfArrays;
    T         outside = T{};

    [[nodiscard]] size_t bufIdx(int32_t x, int32_t y, int32_t zb, int32_t c) const
    {
        if (layout == MemLayout::structOfArrays) {
            return ((static_cast<size_t>(c) * static_cast<size_t>(zAlloc) + static_cast<size_t>(zb)) *
                        static_cast<size_t>(dimY) +
                    static_cast<size_t>(y)) *
                       static_cast<size_t>(dimX) +
                   static_cast<size_t>(x);
        }
        return ((static_cast<size_t>(zb) * static_cast<size_t>(dimY) + static_cast<size_t>(y)) *
                    static_cast<size_t>(dimX) +
                static_cast<size_t>(x)) *
                   static_cast<size_t>(card) +
               static_cast<size_t>(c);
    }

    [[nodiscard]] T& operator()(const DCell& cell, int32_t c = 0)
    {
        return mem[bufIdx(cell.x, cell.y, cell.z + haloR, c)];
    }

    [[nodiscard]] const T& operator()(const DCell& cell, int32_t c = 0) const
    {
        return mem[bufIdx(cell.x, cell.y, cell.z + haloR, c)];
    }

    struct NghData
    {
        T    value{};
        bool isValid = false;
    };

    /// Read a neighbour's value; cells outside the global domain return the
    /// field's outsideValue (isValid == false). Neighbours in another
    /// partition are served from the halo planes.
    [[nodiscard]] NghData nghData(const DCell& cell, const index_3d& offset, int32_t c = 0) const
    {
        const int32_t nx = cell.x + offset.x;
        const int32_t ny = cell.y + offset.y;
        const int32_t nz = cell.z + offset.z;
        if (nx < 0 || nx >= dimX || ny < 0 || ny >= dimY) {
            return {outside, false};
        }
        const int32_t gz = zOrigin + nz;
        if (gz < 0 || gz >= globalZ) {
            return {outside, false};
        }
        return {mem[bufIdx(nx, ny, nz + haloR, c)], true};
    }

    [[nodiscard]] T nghVal(const DCell& cell, const index_3d& offset, int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    /// Unchecked neighbour read: the caller guarantees the neighbour is
    /// inside the global domain (e.g. it already inspected a flag field
    /// whose outsideValue marks walls). Skips the bounds tests of
    /// nghData() — the overhead the paper attributes Neon's remaining
    /// gap to hand-written kernels to (§VI-B).
    [[nodiscard]] T nghValUnchecked(const DCell& cell, const index_3d& offset,
                                    int32_t c = 0) const
    {
        return mem[bufIdx(cell.x + offset.x, cell.y + offset.y, cell.z + offset.z + haloR, c)];
    }

    [[nodiscard]] index_3d globalIdx(const DCell& cell) const
    {
        return {cell.x, cell.y, zOrigin + cell.z};
    }

    [[nodiscard]] index_3d globalDim() const { return {dimX, dimY, globalZ}; }

    [[nodiscard]] int32_t cardinality() const { return card; }
};

template <typename T>
class DField
{
   public:
    using Partition = DPartition<T>;

    DField() = default;

    DField(const DGrid& grid, std::string name, int cardinality, T outsideValue, MemLayout layout)
        : mImpl(std::make_shared<Impl>())
    {
        NEON_CHECK(cardinality >= 1, "cardinality must be >= 1");
        mImpl->grid = grid;
        mImpl->name = std::move(name);
        mImpl->card = cardinality;
        mImpl->outside = outsideValue;
        mImpl->layout = layout;

        std::vector<size_t> counts;
        const int           r = grid.haloRadius();
        for (int d = 0; d < grid.devCount(); ++d) {
            const auto& p = grid.part(d);
            counts.push_back(static_cast<size_t>(grid.dim().x) *
                             static_cast<size_t>(grid.dim().y) *
                             static_cast<size_t>(p.zCount + 2 * r) *
                             static_cast<size_t>(cardinality));
        }
        mImpl->data = set::MemSet<T>(grid.backend(), mImpl->name, counts);
        mImpl->halo = std::make_shared<HaloImpl>(mImpl->data, grid, mImpl->name, cardinality,
                                                 layout);
        if (!grid.backend().isDryRun()) {
            fillHost(outsideValue);
            updateDev();
        }
    }

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }

    // --- Loader/data interface --------------------------------------------
    [[nodiscard]] uint64_t           uid() const { return mImpl->data.uid(); }
    [[nodiscard]] const std::string& name() const { return mImpl->name; }
    [[nodiscard]] double bytesPerItem(Compute = Compute::MAP) const
    {
        return sizeof(T) * static_cast<double>(mImpl->card);
    }
    [[nodiscard]] std::shared_ptr<const set::HaloOps> haloOps() const { return mImpl->halo; }

    [[nodiscard]] Partition getPartition(int dev, DataView /*view*/ = DataView::STANDARD) const
    {
        const auto& p = mImpl->grid.part(dev);
        Partition   part;
        part.mem = mImpl->data.rawDev(dev);
        part.dimX = mImpl->grid.dim().x;
        part.dimY = mImpl->grid.dim().y;
        part.zCount = p.zCount;
        part.haloR = mImpl->grid.haloRadius();
        part.zAlloc = p.zCount + 2 * part.haloR;
        part.card = mImpl->card;
        part.zOrigin = p.zOrigin;
        part.globalZ = mImpl->grid.dim().z;
        part.layout = mImpl->layout;
        part.outside = mImpl->outside;
        return part;
    }

    // --- host-side access ---------------------------------------------------
    /// Reference into the host mirror at a global coordinate.
    [[nodiscard]] T& hRef(const index_3d& g, int32_t c = 0) const
    {
        const int dev = devOfZ(g.z);
        const auto& p = mImpl->grid.part(dev);
        const auto  part = hostPartition(dev);
        return mImpl->data.rawHost(dev)[part.bufIdx(g.x, g.y, g.z - p.zOrigin + part.haloR, c)];
    }

    [[nodiscard]] T hVal(const index_3d& g, int32_t c = 0) const { return hRef(g, c); }

    /// Visit every (cell, component) of the host mirror.
    template <typename Fn>  // fn(const index_3d&, int card, T&)
    void forEachHost(Fn&& fn) const
    {
        mImpl->grid.dim().forEach([&](const index_3d& g) {
            for (int32_t c = 0; c < mImpl->card; ++c) {
                fn(g, c, hRef(g, c));
            }
        });
    }

    /// Grid-generic alias (every dense cell is active); lets code templated
    /// over DField/EField use one name.
    template <typename Fn>
    void forEachActiveHost(Fn&& fn) const
    {
        forEachHost(std::forward<Fn>(fn));
    }

    void fillHost(T v) const
    {
        for (int d = 0; d < mImpl->grid.devCount(); ++d) {
            T*           ptr = mImpl->data.rawHost(d);
            const size_t n = mImpl->data.count(d);
            std::fill(ptr, ptr + n, v);
        }
    }

    /// Host mirror -> device buffers (synchronous, init-time).
    void updateDev() const { mImpl->data.updateDev(); }
    /// Device buffers -> host mirror (synchronous).
    void updateHost() const { mImpl->data.updateHost(); }

    [[nodiscard]] const DGrid& grid() const { return mImpl->grid; }
    [[nodiscard]] int          cardinality() const { return mImpl->card; }
    [[nodiscard]] MemLayout    layout() const { return mImpl->layout; }
    [[nodiscard]] T            outsideValue() const { return mImpl->outside; }

    /// Total device bytes held by this field (all partitions).
    [[nodiscard]] size_t allocatedBytes() const { return mImpl->data.totalCount() * sizeof(T); }

   private:
    struct Impl
    {
        DGrid                     grid;
        std::string               name;
        int                       card = 1;
        T                         outside = T{};
        MemLayout                 layout = MemLayout::structOfArrays;
        set::MemSet<T>            data;
        std::shared_ptr<set::HaloOps> halo;
    };

    /// HaloOps implementation: sends this device's boundary planes into the
    /// neighbours' halo planes (explicit-transfer coherency, paper §IV-C2).
    /// Holds value copies of the shared handles (not the field Impl) so the
    /// access records it travels in keep the buffers alive without a cycle.
    class HaloImpl final : public set::HaloOps
    {
       public:
        HaloImpl(set::MemSet<T> data, DGrid grid, std::string name, int card, MemLayout layout)
            : mData(std::move(data)),
              mGrid(std::move(grid)),
              mName(std::move(name)),
              mCard(card),
              mLayout(layout)
        {
        }

        void enqueueHaloSend(int dev, sys::Stream& stream) const override
        {
            const DGrid& grid = mGrid;
            const int    r = grid.haloRadius();
            const auto&  p = grid.part(dev);
            const size_t planeElems =
                static_cast<size_t>(grid.dim().x) * static_cast<size_t>(grid.dim().y);

            sys::TransferOp op;
            op.name = "halo(" + mName + ")";

            auto addChunks = [&](int nbr, int direction, int32_t zbSrc, int32_t zbDst) {
                T* src = mData.rawDev(dev);
                T* dst = mData.rawDev(nbr);
                const auto& pn = grid.part(nbr);
                const int32_t zAllocSrc = p.zCount + 2 * r;
                const int32_t zAllocDst = pn.zCount + 2 * r;
                if (mLayout == MemLayout::structOfArrays) {
                    for (int32_t c = 0; c < mCard; ++c) {
                        const size_t so =
                            (static_cast<size_t>(c) * zAllocSrc + static_cast<size_t>(zbSrc)) *
                            planeElems;
                        const size_t do_ =
                            (static_cast<size_t>(c) * zAllocDst + static_cast<size_t>(zbDst)) *
                            planeElems;
                        const size_t len = planeElems * static_cast<size_t>(r);
                        op.chunks.push_back({len * sizeof(T), direction, [src, dst, so, do_, len] {
                                                 std::copy_n(src + so, len, dst + do_);
                                             }});
                    }
                } else {
                    const size_t rowElems = planeElems * static_cast<size_t>(mCard);
                    const size_t so = static_cast<size_t>(zbSrc) * rowElems;
                    const size_t do_ = static_cast<size_t>(zbDst) * rowElems;
                    const size_t len = rowElems * static_cast<size_t>(r);
                    op.chunks.push_back({len * sizeof(T), direction, [src, dst, so, do_, len] {
                                             std::copy_n(src + so, len, dst + do_);
                                         }});
                }
            };

            if (p.hasHigh) {
                // Owned top r planes -> (dev+1)'s low halo [0, r).
                addChunks(dev + 1, 1, r + p.zCount - r, 0);
            }
            if (p.hasLow) {
                // Owned bottom r planes -> (dev-1)'s high halo.
                const auto& pn = grid.part(dev - 1);
                addChunks(dev - 1, 0, r, r + pn.zCount);
            }
            if (!op.chunks.empty()) {
                stream.transfer(std::move(op));
            }
        }

        [[nodiscard]] uint64_t    uid() const override { return mData.uid(); }
        [[nodiscard]] std::string name() const override { return mName; }
        [[nodiscard]] int         devCount() const override { return mGrid.devCount(); }

       private:
        set::MemSet<T> mData;
        DGrid          mGrid;
        std::string    mName;
        int            mCard = 1;
        MemLayout      mLayout = MemLayout::structOfArrays;
    };

    [[nodiscard]] int devOfZ(int32_t z) const
    {
        for (int d = 0; d < mImpl->grid.devCount(); ++d) {
            const auto& p = mImpl->grid.part(d);
            if (z >= p.zOrigin && z < p.zOrigin + p.zCount) {
                return d;
            }
        }
        throw NeonException("z coordinate outside the grid");
    }

    /// Partition descriptor pointing at the host mirror (indexing only).
    [[nodiscard]] Partition hostPartition(int dev) const
    {
        Partition part = getPartition(dev);
        part.mem = nullptr;  // callers index via bufIdx against rawHost
        return part;
    }

    std::shared_ptr<Impl> mImpl;
};

template <typename T>
DField<T> DGrid::newField(std::string name, int cardinality, T outsideValue,
                          MemLayout layout) const
{
    return DField<T>(*this, std::move(name), cardinality, outsideValue, layout);
}

}  // namespace neon::dgrid
