#include "dgrid/dgrid.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace neon::dgrid {

std::vector<int32_t> splitBalanced(int32_t total, int nDev)
{
    NEON_CHECK(total >= nDev, "domain z-extent must be >= device count");
    std::vector<int32_t> counts(static_cast<size_t>(nDev), total / nDev);
    for (int i = 0; i < total % nDev; ++i) {
        ++counts[static_cast<size_t>(i)];
    }
    return counts;
}

DGrid::DGrid(set::Backend backend, index_3d dim, Stencil stencil)
{
    NEON_CHECK(dim.x > 0 && dim.y > 0 && dim.z > 0, "grid dimensions must be positive");
    auto impl = std::make_shared<Impl>();
    impl->name = "dGrid";
    impl->backend = std::move(backend);
    impl->dim = dim;
    impl->stencil = std::move(stencil);
    impl->haloRadius = std::max(1, impl->stencil.zRadius());

    const auto counts = splitBalanced(dim.z, impl->backend.devCount());
    rebuildTables(*impl, counts);
    mBase = std::move(impl);
}

void DGrid::rebuildTables(Impl& impl, const std::vector<int32_t>& counts)
{
    const int      nDev = static_cast<int>(counts.size());
    const index_3d dim = impl.dim;
    const int      r = impl.haloRadius;
    impl.parts.clear();
    impl.zToDev.clear();
    impl.zToDev.reserve(static_cast<size_t>(dim.z));
    int32_t origin = 0;
    for (int d = 0; d < nDev; ++d) {
        PartInfo p;
        p.zOrigin = origin;
        p.zCount = counts[static_cast<size_t>(d)];
        p.hasLow = d > 0;
        p.hasHigh = d < nDev - 1;
        // Boundary slabs: cells whose stencil reaches a neighbour partition.
        p.bLow = p.hasLow ? std::min(r, p.zCount) : 0;
        p.bHigh = p.hasHigh ? std::min(r, p.zCount - p.bLow) : 0;
        impl.parts.push_back(p);
        impl.zToDev.insert(impl.zToDev.end(), static_cast<size_t>(p.zCount), d);
        origin += p.zCount;
    }

    // Halo segments in cell units of a field buffer: per device the local z
    // extent is [0, zCount + 2r) with the owned planes at [r, r + zCount).
    const auto plane = static_cast<int64_t>(dim.x) * static_cast<int64_t>(dim.y);
    impl.haloSegments.assign(static_cast<size_t>(nDev), {});
    for (int d = 0; d < nDev; ++d) {
        const PartInfo& p = impl.parts[static_cast<size_t>(d)];
        auto&           segs = impl.haloSegments[static_cast<size_t>(d)];
        if (p.hasHigh) {
            // Owned top r planes -> (dev+1)'s low halo [0, r).
            segs.push_back({d + 1, 1, static_cast<int64_t>(p.zCount) * plane, 0,
                            static_cast<int64_t>(r) * plane});
        }
        if (p.hasLow) {
            // Owned bottom r planes -> (dev-1)'s high halo.
            const PartInfo& pn = impl.parts[static_cast<size_t>(d - 1)];
            segs.push_back({d - 1, 0, static_cast<int64_t>(r) * plane,
                            static_cast<int64_t>(r + pn.zCount) * plane,
                            static_cast<int64_t>(r) * plane});
        }
    }
}

domain::PartitionPlan DGrid::currentPlan() const
{
    domain::PartitionPlan plan;
    for (const PartInfo& p : impl<Impl>().parts) {
        plan.unitsPerDev.push_back(p.zCount);
    }
    return plan;
}

int64_t DGrid::minUnitsPerDev() const
{
    return std::max(1, haloRadius());
}

void DGrid::repartition(const domain::PartitionPlan& plan)
{
    auto&     impl = this->impl<Impl>();
    const int nDev = devCount();
    NEON_CHECK(plan.devCount() == nDev,
               "dGrid::repartition: plan device count != grid device count");
    NEON_CHECK(plan.total() == dim().z, "dGrid::repartition: plan must cover every z-plane");
    for (const int64_t u : plan.unitsPerDev) {
        NEON_CHECK(u >= minUnitsPerDev(),
                   "dGrid::repartition: every device needs at least haloRadius planes");
    }

    const auto           plane = static_cast<int64_t>(dim().x) * static_cast<int64_t>(dim().y);
    std::vector<int64_t> oldCells;
    std::vector<int64_t> newCells;
    for (const PartInfo& p : impl.parts) {
        oldCells.push_back(static_cast<int64_t>(p.zCount) * plane);
    }
    for (const int64_t u : plan.unitsPerDev) {
        newCells.push_back(u * plane);
    }

    std::vector<int32_t> counts;
    for (const int64_t u : plan.unitsPerDev) {
        counts.push_back(static_cast<int32_t>(u));
    }
    rebuildTables(impl, counts);

    const int          r = impl.haloRadius;
    domain::RegridInfo info;
    for (int d = 0; d < nDev; ++d) {
        info.newCellCounts.push_back(
            static_cast<size_t>((plan.unitsPerDev[static_cast<size_t>(d)] + 2 * r) * plane));
        info.oldOwnedStart.push_back(static_cast<int64_t>(r) * plane);
        info.newOwnedStart.push_back(static_cast<int64_t>(r) * plane);
    }
    info.migrate = domain::migrationSegments(oldCells, newCells);
    info.migrateData = true;
    applyRegridToFields(info);
    backend().noteGeometryChange();
}

void DGrid::rebindBackend(set::Backend survivor)
{
    auto&     impl = this->impl<Impl>();
    const int nDev = survivor.devCount();
    impl.backend = std::move(survivor);
    const auto counts = splitBalanced(dim().z, nDev);
    rebuildTables(impl, counts);

    const auto         plane = static_cast<int64_t>(dim().x) * static_cast<int64_t>(dim().y);
    const int          r = impl.haloRadius;
    domain::RegridInfo info;
    info.migrateData = false;
    for (int d = 0; d < nDev; ++d) {
        info.newCellCounts.push_back(
            static_cast<size_t>((static_cast<int64_t>(counts[static_cast<size_t>(d)]) + 2 * r) *
                                plane));
        info.oldOwnedStart.push_back(static_cast<int64_t>(r) * plane);
        info.newOwnedStart.push_back(static_cast<int64_t>(r) * plane);
    }
    applyRegridToFields(info);
    backend().noteGeometryChange();
}

DSpan DGrid::span(int dev, DataView view) const
{
    const PartInfo& p = part(dev);
    switch (view) {
        case DataView::STANDARD:
            return DSpan(dim().x, dim().y, {0, p.zCount});
        case DataView::INTERNAL:
            return DSpan(dim().x, dim().y, {p.bLow, p.zCount - p.bLow - p.bHigh});
        case DataView::BOUNDARY:
            return DSpan(dim().x, dim().y, {0, p.bLow}, {p.zCount - p.bHigh, p.bHigh});
    }
    return {};
}

const DGrid::PartInfo& DGrid::part(int dev) const
{
    NEON_CHECK(dev >= 0 && dev < devCount(), "device index out of range");
    return impl<Impl>().parts[static_cast<size_t>(dev)];
}

size_t DGrid::cellCount() const
{
    return dim().size();
}

int DGrid::devOfZ(int32_t z) const
{
    NEON_CHECK(z >= 0 && z < dim().z, "z coordinate outside the grid");
    return impl<Impl>().zToDev[static_cast<size_t>(z)];
}

}  // namespace neon::dgrid
