#include "dgrid/dgrid.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace neon::dgrid {

std::vector<int32_t> splitBalanced(int32_t total, int nDev)
{
    NEON_CHECK(total >= nDev, "domain z-extent must be >= device count");
    std::vector<int32_t> counts(static_cast<size_t>(nDev), total / nDev);
    for (int i = 0; i < total % nDev; ++i) {
        ++counts[static_cast<size_t>(i)];
    }
    return counts;
}

DGrid::DGrid(set::Backend backend, index_3d dim, Stencil stencil)
    : mImpl(std::make_shared<Impl>())
{
    NEON_CHECK(dim.x > 0 && dim.y > 0 && dim.z > 0, "grid dimensions must be positive");
    mImpl->backend = std::move(backend);
    mImpl->dim = dim;
    mImpl->stencil = std::move(stencil);
    mImpl->haloRadius = std::max(1, mImpl->stencil.zRadius());

    const int  nDev = mImpl->backend.devCount();
    const auto counts = splitBalanced(dim.z, nDev);
    int32_t    origin = 0;
    const int  r = mImpl->haloRadius;
    for (int d = 0; d < nDev; ++d) {
        PartInfo p;
        p.zOrigin = origin;
        p.zCount = counts[static_cast<size_t>(d)];
        p.hasLow = d > 0;
        p.hasHigh = d < nDev - 1;
        // Boundary slabs: cells whose stencil reaches a neighbour partition.
        p.bLow = p.hasLow ? std::min(r, p.zCount) : 0;
        p.bHigh = p.hasHigh ? std::min(r, p.zCount - p.bLow) : 0;
        mImpl->parts.push_back(p);
        origin += p.zCount;
    }
}

DSpan DGrid::span(int dev, DataView view) const
{
    const PartInfo& p = part(dev);
    switch (view) {
        case DataView::STANDARD:
            return DSpan(mImpl->dim.x, mImpl->dim.y, {0, p.zCount});
        case DataView::INTERNAL:
            return DSpan(mImpl->dim.x, mImpl->dim.y, {p.bLow, p.zCount - p.bLow - p.bHigh});
        case DataView::BOUNDARY:
            return DSpan(mImpl->dim.x, mImpl->dim.y, {0, p.bLow},
                         {p.zCount - p.bHigh, p.bHigh});
    }
    return {};
}

int DGrid::devCount() const
{
    return mImpl->backend.devCount();
}

const index_3d& DGrid::dim() const
{
    return mImpl->dim;
}

const Stencil& DGrid::stencil() const
{
    return mImpl->stencil;
}

int DGrid::haloRadius() const
{
    return mImpl->haloRadius;
}

const DGrid::PartInfo& DGrid::part(int dev) const
{
    NEON_CHECK(dev >= 0 && dev < devCount(), "device index out of range");
    return mImpl->parts[static_cast<size_t>(dev)];
}

set::Backend& DGrid::backend() const
{
    return mImpl->backend;
}

size_t DGrid::cellCount() const
{
    return mImpl->dim.size();
}

}  // namespace neon::dgrid
