#include "egrid/egrid.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/error.hpp"

namespace neon::egrid {

struct EGrid::Impl : domain::GridBase::BaseImpl
{
    int    lutR = 1;
    size_t totalActive = 0;

    std::vector<PartInfo> parts;

    set::MemSet<int32_t>  conn;    ///< [point][ownedCell] per device
    set::MemSet<index_3d> coords;  ///< global coordinate per local cell (owned+ghost)
    set::MemSet<int16_t>  lut;     ///< offset -> stencil point slot

    /// Host-side global -> (dev, owned local index); empty in dry-run.
    /// Encoded as dev * 2^40 + idx + 1; 0 means inactive.
    std::vector<uint64_t> hostLocal;

    /// Kept for repartition/rebind: the activity predicate and the per-plane
    /// active-cell histogram let rebuildStructure re-derive every table for
    /// any plane cuts without re-scanning the predicate over planes twice.
    std::function<bool(const index_3d&)> active;
    std::vector<size_t>                  perPlane;

    [[nodiscard]] size_t lutSize() const
    {
        const size_t w = 2 * static_cast<size_t>(lutR) + 1;
        return w * w * w;
    }

    [[nodiscard]] size_t lutIdx(const index_3d& off) const
    {
        const size_t w = 2 * static_cast<size_t>(lutR) + 1;
        return (static_cast<size_t>(off.z + lutR) * w + static_cast<size_t>(off.y + lutR)) * w +
               static_cast<size_t>(off.x + lutR);
    }
};

EGrid::EGrid(set::Backend backend, index_3d dim,
             const std::function<bool(const index_3d&)>& active, Stencil stencil)
{
    NEON_CHECK(dim.x > 0 && dim.y > 0 && dim.z > 0, "grid dimensions must be positive");
    auto  impl = std::make_shared<Impl>();
    Impl& g = *impl;
    g.name = "eGrid";
    g.backend = std::move(backend);
    g.dim = dim;
    g.stencil = std::move(stencil);
    g.haloRadius = std::max(1, g.stencil.zRadius());
    g.lutR = std::max(1, g.stencil.radius());

    g.active = active;

    // Pass 1: active cells per z-plane (cheap even at paper-scale sizes).
    g.perPlane.assign(static_cast<size_t>(dim.z), 0);
    for (int32_t z = 0; z < dim.z; ++z) {
        for (int32_t y = 0; y < dim.y; ++y) {
            for (int32_t x = 0; x < dim.x; ++x) {
                if (active({x, y, z})) {
                    ++g.perPlane[static_cast<size_t>(z)];
                }
            }
        }
        g.totalActive += g.perPlane[static_cast<size_t>(z)];
    }

    mBase = std::move(impl);
    std::vector<int32_t> zFirst;
    std::vector<int32_t> zCount;
    computeCuts(devCount(), zFirst, zCount);
    rebuildStructure(zFirst, zCount);
}

void EGrid::computeCuts(int nDev, std::vector<int32_t>& zFirst,
                        std::vector<int32_t>& zCount) const
{
    // Partition planes so active-cell counts are balanced (paper §IV:
    // "optimized for load balance"). Greedy cut at ~total/nDev.
    const Impl&    g = impl<Impl>();
    const index_3d dim = g.dim;
    const int      r = g.haloRadius;
    zFirst.assign(static_cast<size_t>(nDev), 0);
    zCount.assign(static_cast<size_t>(nDev), 0);
    NEON_CHECK(dim.z >= nDev * std::max(1, 2 * r),
               "egrid needs at least 2*haloRadius planes per device");
    const double target = static_cast<double>(g.totalActive) / nDev;
    int32_t      plane = 0;
    for (int d = 0; d < nDev; ++d) {
        zFirst[static_cast<size_t>(d)] = plane;
        size_t        acc = 0;
        const int32_t planesLeft = dim.z - plane;
        const int     devsLeft = nDev - d;
        int32_t       minPlanes = std::max(1, 2 * r);
        int32_t       maxPlanes = planesLeft - (devsLeft - 1) * minPlanes;
        int32_t       used = 0;
        while (used < maxPlanes &&
               (used < minPlanes || (d < nDev - 1 && static_cast<double>(acc) < target))) {
            acc += g.perPlane[static_cast<size_t>(plane)];
            ++plane;
            ++used;
        }
        if (d == nDev - 1) {
            plane = dim.z;
            used = planesLeft;
        }
        zCount[static_cast<size_t>(d)] = used;
    }
}

void EGrid::rebuildStructure(const std::vector<int32_t>& zFirst,
                             const std::vector<int32_t>& zCount)
{
    Impl&          g = impl<Impl>();
    const index_3d dim = g.dim;
    const int      nDev = static_cast<int>(zCount.size());
    const int      r = g.haloRadius;
    const bool     dry = g.backend.isDryRun();
    const auto&    active = g.active;

    // Per-partition counts derived from plane counts (works in dry-run too).
    g.parts.assign(static_cast<size_t>(nDev), {});
    auto planesSum = [&](int32_t first, int32_t count) {
        size_t s = 0;
        for (int32_t z = first; z < first + count; ++z) {
            s += g.perPlane[static_cast<size_t>(z)];
        }
        return static_cast<int32_t>(s);
    };
    for (int d = 0; d < nDev; ++d) {
        PartInfo& p = g.parts[static_cast<size_t>(d)];
        p.zFirst = zFirst[static_cast<size_t>(d)];
        p.zCount = zCount[static_cast<size_t>(d)];
        p.nOwned = planesSum(p.zFirst, p.zCount);
        p.nBdrLow = d > 0 ? planesSum(p.zFirst, std::min(r, p.zCount)) : 0;
        p.nBdrHigh =
            d < nDev - 1 ? planesSum(p.zFirst + p.zCount - std::min(r, p.zCount), std::min(r, p.zCount)) : 0;
        p.nGhostLow = d > 0 ? g.parts[static_cast<size_t>(d - 1)].nBdrHigh : 0;
        // nGhostHigh needs the *next* partition's nBdrLow; fill in a second
        // sweep below.
    }
    for (int d = 0; d < nDev; ++d) {
        PartInfo& p = g.parts[static_cast<size_t>(d)];
        if (d < nDev - 1) {
            const PartInfo& pn = g.parts[static_cast<size_t>(d + 1)];
            p.nGhostHigh = planesSum(pn.zFirst, std::min(r, pn.zCount));
        }
    }

    // Halo segments in cell units: the boundary classes are contiguous by
    // construction, so one segment per neighbour suffices.
    g.haloSegments.assign(static_cast<size_t>(nDev), {});
    for (int d = 0; d < nDev; ++d) {
        const PartInfo& p = g.parts[static_cast<size_t>(d)];
        auto&           segs = g.haloSegments[static_cast<size_t>(d)];
        if (d < nDev - 1) {
            // Own boundary-high segment -> (dev+1)'s ghost-low range.
            const PartInfo& pn = g.parts[static_cast<size_t>(d + 1)];
            segs.push_back({d + 1, 1, p.nOwned - p.nBdrHigh, pn.nOwned, p.nBdrHigh});
        }
        if (d > 0) {
            // Own boundary-low segment -> (dev-1)'s ghost-high range.
            const PartInfo& pn = g.parts[static_cast<size_t>(d - 1)];
            segs.push_back({d - 1, 0, 0, pn.nOwned + pn.nGhostLow, p.nBdrLow});
        }
    }

    // Allocate structure tables (fake allocations in dry-run: the bytes
    // still count against device capacity, reproducing Fig. 9's OOM row).
    const int nPts = g.stencil.pointCount();
    {
        std::vector<size_t> connCounts, coordCounts, lutCounts;
        for (int d = 0; d < nDev; ++d) {
            connCounts.push_back(static_cast<size_t>(g.parts[static_cast<size_t>(d)].nOwned) *
                                 static_cast<size_t>(nPts));
            coordCounts.push_back(static_cast<size_t>(g.parts[static_cast<size_t>(d)].nLocal()));
            lutCounts.push_back(g.lutSize());
        }
        g.conn = set::MemSet<int32_t>(g.backend, "egrid.conn", connCounts);
        g.coords = set::MemSet<index_3d>(g.backend, "egrid.coords", coordCounts);
        g.lut = set::MemSet<int16_t>(g.backend, "egrid.lut", lutCounts);
    }
    if (dry) {
        return;
    }

    // LUT: stencil offset -> point slot (-1 elsewhere).
    for (int d = 0; d < nDev; ++d) {
        int16_t* lutH = g.lut.rawHost(d);
        std::fill(lutH, lutH + g.lutSize(), int16_t{-1});
        for (int s = 0; s < nPts; ++s) {
            lutH[g.lutIdx(g.stencil.points()[static_cast<size_t>(s)])] = static_cast<int16_t>(s);
        }
    }

    // Pass 2: enumerate cells per partition in class order and build the
    // host global->local map.
    g.hostLocal.assign(dim.size(), 0);
    auto hostKey = [&](const index_3d& c) { return dim.pitch(c); };

    for (int d = 0; d < nDev; ++d) {
        PartInfo& p = g.parts[static_cast<size_t>(d)];
        index_3d* coordH = g.coords.rawHost(d);
        int32_t   cursor = 0;
        auto      emitRange = [&](int32_t zFrom, int32_t zTo) {
            for (int32_t z = zFrom; z < zTo; ++z) {
                for (int32_t y = 0; y < dim.y; ++y) {
                    for (int32_t x = 0; x < dim.x; ++x) {
                        const index_3d c{x, y, z};
                        if (active(c)) {
                            coordH[cursor] = c;
                            g.hostLocal[hostKey(c)] =
                                (static_cast<uint64_t>(d) << 40) + static_cast<uint64_t>(cursor) + 1;
                            ++cursor;
                        }
                    }
                }
            }
        };
        auto emitGhostRange = [&](int32_t zFrom, int32_t zTo) {
            // Ghost copies of neighbour cells: same (z,y,x) order as the
            // sender's boundary segment, but not registered in hostLocal
            // (the owner partition holds the authoritative copy).
            for (int32_t z = zFrom; z < zTo; ++z) {
                for (int32_t y = 0; y < dim.y; ++y) {
                    for (int32_t x = 0; x < dim.x; ++x) {
                        const index_3d c{x, y, z};
                        if (active(c)) {
                            coordH[cursor++] = c;
                        }
                    }
                }
            }
        };
        const int32_t lowEnd = p.zFirst + (d > 0 ? std::min(r, p.zCount) : 0);
        const int32_t highBegin =
            p.zFirst + p.zCount - (d < nDev - 1 ? std::min(r, p.zCount) : 0);
        emitRange(p.zFirst, lowEnd);                   // boundary-low
        emitRange(lowEnd, std::max(lowEnd, highBegin));  // internal
        emitRange(highBegin, p.zFirst + p.zCount);     // boundary-high
        NEON_CHECK(cursor == p.nOwned, "egrid enumeration mismatch");
        // Ghosts: neighbours' boundary cells in the same (z,y,x) order.
        if (d > 0) {
            const PartInfo& pn = g.parts[static_cast<size_t>(d - 1)];
            emitGhostRange(pn.zFirst + pn.zCount - std::min(r, pn.zCount), pn.zFirst + pn.zCount);
        }
        if (d < nDev - 1) {
            const PartInfo& pn = g.parts[static_cast<size_t>(d + 1)];
            emitGhostRange(pn.zFirst, pn.zFirst + std::min(r, pn.zCount));
        }
        NEON_CHECK(cursor == p.nLocal(), "egrid ghost enumeration mismatch");
    }

    // Pass 3: connectivity. A neighbour resolves to an owned or ghost local
    // index of *this* partition, or -1 (inactive / outside / unreachable).
    for (int d = 0; d < nDev; ++d) {
        const PartInfo& p = g.parts[static_cast<size_t>(d)];
        const index_3d* coordH = g.coords.rawHost(d);
        int32_t*        connH = g.conn.rawHost(d);

        // Local lookup: global pitch -> local idx for owned + ghosts.
        std::unordered_map<size_t, int32_t> localIdx;
        localIdx.reserve(static_cast<size_t>(p.nLocal()) * 2);
        for (int32_t i = 0; i < p.nLocal(); ++i) {
            localIdx.emplace(hostKey(coordH[i]), i);
        }

        for (int32_t i = 0; i < p.nOwned; ++i) {
            const index_3d c = coordH[i];
            for (int s = 0; s < nPts; ++s) {
                const index_3d n = c + g.stencil.points()[static_cast<size_t>(s)];
                int32_t        v = -1;
                if (dim.contains(n)) {
                    auto it = localIdx.find(hostKey(n));
                    if (it != localIdx.end()) {
                        v = it->second;
                    }
                }
                connH[static_cast<size_t>(s) * static_cast<size_t>(p.nOwned) +
                      static_cast<size_t>(i)] = v;
            }
        }
    }

    g.conn.updateDev();
    g.coords.updateDev();
    g.lut.updateDev();
}

domain::PartitionPlan EGrid::currentPlan() const
{
    domain::PartitionPlan plan;
    for (const PartInfo& p : impl<Impl>().parts) {
        plan.unitsPerDev.push_back(p.zCount);
    }
    return plan;
}

int64_t EGrid::minUnitsPerDev() const
{
    return std::max(1, 2 * haloRadius());
}

void EGrid::repartition(const domain::PartitionPlan& plan)
{
    Impl&     g = impl<Impl>();
    const int nDev = devCount();
    NEON_CHECK(plan.devCount() == nDev,
               "eGrid::repartition: plan device count != grid device count");
    NEON_CHECK(plan.total() == dim().z, "eGrid::repartition: plan must cover every z-plane");
    for (const int64_t u : plan.unitsPerDev) {
        NEON_CHECK(u >= minUnitsPerDev(),
                   "eGrid::repartition: every device needs at least 2*haloRadius planes");
    }

    // Owned cells per device before/after, in the shared global ordering
    // (active cells ascending (z,y,x) — the class ranges are consecutive
    // z-intervals, so the owned enumeration is exactly that order).
    std::vector<int64_t> oldCells;
    for (const PartInfo& p : g.parts) {
        oldCells.push_back(p.nOwned);
    }

    std::vector<int32_t> zFirst;
    std::vector<int32_t> zCount;
    int32_t              plane = 0;
    for (const int64_t u : plan.unitsPerDev) {
        zFirst.push_back(plane);
        zCount.push_back(static_cast<int32_t>(u));
        plane += static_cast<int32_t>(u);
    }
    rebuildStructure(zFirst, zCount);

    domain::RegridInfo   info;
    std::vector<int64_t> newCells;
    for (const PartInfo& p : g.parts) {
        newCells.push_back(p.nOwned);
        info.newCellCounts.push_back(static_cast<size_t>(p.nLocal()));
        info.oldOwnedStart.push_back(0);
        info.newOwnedStart.push_back(0);
    }
    info.migrate = domain::migrationSegments(oldCells, newCells);
    info.migrateData = true;
    applyRegridToFields(info);
    backend().noteGeometryChange();
}

void EGrid::rebindBackend(set::Backend survivor)
{
    Impl&     g = impl<Impl>();
    const int nDev = survivor.devCount();
    g.backend = std::move(survivor);
    std::vector<int32_t> zFirst;
    std::vector<int32_t> zCount;
    computeCuts(nDev, zFirst, zCount);
    rebuildStructure(zFirst, zCount);

    domain::RegridInfo info;
    info.migrateData = false;
    for (const PartInfo& p : g.parts) {
        info.newCellCounts.push_back(static_cast<size_t>(p.nLocal()));
        info.oldOwnedStart.push_back(0);
        info.newOwnedStart.push_back(0);
    }
    applyRegridToFields(info);
    backend().noteGeometryChange();
}

ESpan EGrid::span(int dev, DataView view) const
{
    const PartInfo& p = part(dev);
    switch (view) {
        case DataView::STANDARD:
            return ESpan({0, p.nOwned});
        case DataView::INTERNAL:
            return ESpan({p.nBdrLow, p.nOwned - p.nBdrLow - p.nBdrHigh});
        case DataView::BOUNDARY:
            return ESpan({0, p.nBdrLow}, {p.nOwned - p.nBdrHigh, p.nBdrHigh});
    }
    return {};
}

const EGrid::PartInfo& EGrid::part(int dev) const
{
    NEON_CHECK(dev >= 0 && dev < devCount(), "device index out of range");
    return impl<Impl>().parts[static_cast<size_t>(dev)];
}

size_t EGrid::activeCount() const
{
    return impl<Impl>().totalActive;
}

bool EGrid::isActive(const index_3d& g) const
{
    const Impl& i = impl<Impl>();
    if (!i.dim.contains(g) || i.hostLocal.empty()) {
        return false;
    }
    return i.hostLocal[i.dim.pitch(g)] != 0;
}

std::pair<int, int32_t> EGrid::localOf(const index_3d& g) const
{
    if (!isActive(g)) {
        return {-1, -1};
    }
    const Impl&    i = impl<Impl>();
    const uint64_t v = i.hostLocal[i.dim.pitch(g)] - 1;
    return {static_cast<int>(v >> 40), static_cast<int32_t>(v & ((1ull << 40) - 1))};
}

const set::MemSet<int32_t>& EGrid::connectivity() const
{
    return impl<Impl>().conn;
}

const set::MemSet<index_3d>& EGrid::coords() const
{
    return impl<Impl>().coords;
}

const set::MemSet<int16_t>& EGrid::offsetLut() const
{
    return impl<Impl>().lut;
}

int EGrid::lutRadius() const
{
    return impl<Impl>().lutR;
}

int EGrid::stencilPointCount() const
{
    return impl<Impl>().stencil.pointCount();
}

}  // namespace neon::egrid
