#pragma once
// EGrid: element-sparse grid (paper §IV-C2). Only the cells of interest are
// stored, together with a connectivity table mapping each cell and stencil
// point to the neighbour's local index. Partitioning is 1-D along z, with
// plane cuts chosen to balance the *active* cell count per device. Shared
// state and the factory surface live in domain::GridBase / domain::GridOps.
//
// Per-partition cell ordering (all in (z,y,x) order within each class):
//   [boundary-low][internal][boundary-high][ghost-low][ghost-high]
// so the segments sent by haloUpdate are contiguous: 2 transfers per device
// for AoS fields, 2*cardinality for SoA — the same accounting as DGrid.

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/index3d.hpp"
#include "core/stencil.hpp"
#include "core/types.hpp"
#include "domain/grid_base.hpp"
#include "domain/span.hpp"
#include "set/backend.hpp"
#include "set/memset.hpp"

namespace neon::egrid {

/// Local cell handle: index into the partition's owned-cell range.
struct ECell
{
    int32_t idx = 0;
};

/// domain::Span decoder for the element-sparse grid: a slot IS one cell.
struct ESpanDecoder
{
    template <typename Fn>
    void forEachInSlot(int32_t i, Fn&& fn) const
    {
        fn(ECell{i});
    }
};

/// Iteration space of one (device, view): up to two contiguous index
/// ranges, lowered onto domain::Span with cells as slots.
class ESpan : public domain::Span<ESpanDecoder>
{
   public:
    using Range = domain::SpanRange;

    ESpan() = default;
    explicit ESpan(Range r0, Range r1 = {0, 0})
        : domain::Span<ESpanDecoder>(
              ESpanDecoder{},
              static_cast<size_t>(r0.count) + static_cast<size_t>(r1.count), r0, r1)
    {
    }
};

template <typename T>
class EField;

class EGrid : public domain::GridBase, public domain::GridOps<EGrid>
{
   public:
    using Cell = ECell;
    using Span = ESpan;
    /// Grid-generic field alias: `typename Grid::template FieldType<T>`.
    template <typename T>
    using FieldType = EField<T>;

    /// Per-device partition structure.
    struct PartInfo
    {
        int32_t zFirst = 0;  ///< first global z-plane of this partition
        int32_t zCount = 0;  ///< planes owned
        int32_t nOwned = 0;
        int32_t nBdrLow = 0;
        int32_t nBdrHigh = 0;
        int32_t nGhostLow = 0;
        int32_t nGhostHigh = 0;

        [[nodiscard]] int32_t nLocal() const { return nOwned + nGhostLow + nGhostHigh; }
    };

    EGrid() = default;
    /// Build from an activity predicate over the bounding box `dim`.
    EGrid(set::Backend backend, index_3d dim, const std::function<bool(const index_3d&)>& active,
          Stencil stencil = Stencil::laplace7());
    /// Convenience: register several stencils; the grid uses their union.
    EGrid(set::Backend backend, index_3d dim, const std::function<bool(const index_3d&)>& active,
          const std::vector<Stencil>& stencils)
        : EGrid(std::move(backend), dim, active, Stencil::unionOf(stencils))
    {
    }

    [[nodiscard]] ESpan span(int dev, DataView view) const;
    /// STANDARD span for host-mirror iteration (the element span carries no
    /// device pointers, so it is the same object).
    [[nodiscard]] ESpan hostSpan(int dev) const { return span(dev, DataView::STANDARD); }

    [[nodiscard]] const PartInfo& part(int dev) const;
    [[nodiscard]] size_t          activeCount() const;

    /// Host-side: is a global coordinate active? (false in dry-run mode)
    [[nodiscard]] bool isActive(const index_3d& g) const;
    /// Host-side: (device, owned local index) of an active cell, or (-1,-1).
    [[nodiscard]] std::pair<int, int32_t> localOf(const index_3d& g) const;

    // -- partition-local structure, exposed to EField / tests ---------------
    [[nodiscard]] const set::MemSet<int32_t>&  connectivity() const;
    [[nodiscard]] const set::MemSet<index_3d>& coords() const;
    [[nodiscard]] const set::MemSet<int16_t>&  offsetLut() const;
    [[nodiscard]] int                          lutRadius() const;
    [[nodiscard]] int                          stencilPointCount() const;

    // --- adaptive repartitioning (docs/robustness.md) -----------------------
    /// Current decomposition in partition units (z-planes per device).
    [[nodiscard]] domain::PartitionPlan currentPlan() const;
    /// Total partition units (the grid's z extent).
    [[nodiscard]] int64_t partitionUnits() const { return dim().z; }
    /// Smallest plane count repartition() accepts per device (the ctor's
    /// 2*haloRadius constraint: boundary classes must not overlap).
    [[nodiscard]] int64_t minUnitsPerDev() const;
    /// Re-slice the plane cuts in place, rebuild connectivity/coords and
    /// migrate every registered field. Containers must be rebuild()-ed and
    /// skeletons re-sequenced afterwards (Backend::geometryEpoch enforces).
    void repartition(const domain::PartitionPlan& plan);
    /// Online-recovery rebind onto a smaller backend; fields re-allocate
    /// without migration (the lost device's data is gone) — the recovery
    /// driver restores checkpointed state.
    void rebindBackend(set::Backend survivor);

   private:
    struct Impl;
    /// Greedy active-balanced plane cuts for `nDev` devices (ctor + rebind).
    void computeCuts(int nDev, std::vector<int32_t>& zFirst, std::vector<int32_t>& zCount) const;
    /// (Re)build parts, halo segments, structure tables and the host map
    /// from prescribed plane cuts.
    void rebuildStructure(const std::vector<int32_t>& zFirst, const std::vector<int32_t>& zCount);
};

}  // namespace neon::egrid
