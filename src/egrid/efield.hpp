#pragma once
// EField<T>: metadata over an EGrid. Storage, mirrors and halo registration
// live in domain::FieldBase; this header adds only the sparse addressing.
// Neighbour access goes through the grid's connectivity table; the extra
// index bytes are charged to the cost model, which is exactly the
// dense/sparse trade-off the paper's Fig. 9 explores.

#include <cassert>
#include <string>

#include "domain/field_base.hpp"
#include "egrid/egrid.hpp"

namespace neon::egrid {

template <typename T>
struct EPartition
{
    T*              mem = nullptr;
    int32_t         nLocal = 0;  ///< owned + ghost cells
    int32_t         nOwned = 0;
    int32_t         card = 1;
    MemLayout       layout = MemLayout::structOfArrays;
    T               outside = T{};
    const int32_t*  conn = nullptr;  ///< [point][ownedCell]
    int32_t         nPoints = 0;
    const int16_t*  lut = nullptr;  ///< offset -> point slot
    int32_t         lutR = 1;
    const index_3d* coords = nullptr;

    [[nodiscard]] size_t bufIdx(int32_t cell, int32_t c) const
    {
        if (layout == MemLayout::structOfArrays) {
            return static_cast<size_t>(c) * static_cast<size_t>(nLocal) +
                   static_cast<size_t>(cell);
        }
        return static_cast<size_t>(cell) * static_cast<size_t>(card) + static_cast<size_t>(c);
    }

    [[nodiscard]] T& operator()(const ECell& cell, int32_t c = 0)
    {
        return mem[bufIdx(cell.idx, c)];
    }
    [[nodiscard]] const T& operator()(const ECell& cell, int32_t c = 0) const
    {
        return mem[bufIdx(cell.idx, c)];
    }

    struct NghData
    {
        T    value{};
        bool isValid = false;
    };

    /// Neighbour by stencil-point slot (fast path: one table lookup).
    [[nodiscard]] NghData nghDataSlot(const ECell& cell, int32_t slot, int32_t c = 0) const
    {
        const int32_t j =
            conn[static_cast<size_t>(slot) * static_cast<size_t>(nOwned) +
                 static_cast<size_t>(cell.idx)];
        if (j < 0) {
            return {outside, false};
        }
        return {mem[bufIdx(j, c)], true};
    }

    /// Neighbour by 3-D offset: resolved to a slot via the grid's LUT so the
    /// same user code runs on DGrid and EGrid (paper §IV: "the same user
    /// code to operate on a variety of data structures").
    [[nodiscard]] NghData nghData(const ECell& cell, const index_3d& offset, int32_t c = 0) const
    {
        if (offset.x < -lutR || offset.x > lutR || offset.y < -lutR || offset.y > lutR ||
            offset.z < -lutR || offset.z > lutR) {
            return {outside, false};
        }
        const size_t w = 2 * static_cast<size_t>(lutR) + 1;
        const size_t li =
            (static_cast<size_t>(offset.z + lutR) * w + static_cast<size_t>(offset.y + lutR)) * w +
            static_cast<size_t>(offset.x + lutR);
        const int16_t slot = lut[li];
        if (slot < 0) {
            return {outside, false};
        }
        return nghDataSlot(cell, slot, c);
    }

    [[nodiscard]] T nghVal(const ECell& cell, const index_3d& offset, int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    /// Interface parity with DPartition::nghValUnchecked. On the sparse
    /// grid the connectivity lookup *is* the validity test, so nothing can
    /// be skipped; still resolves through the table.
    [[nodiscard]] T nghValUnchecked(const ECell& cell, const index_3d& offset,
                                    int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    [[nodiscard]] index_3d globalIdx(const ECell& cell) const { return coords[cell.idx]; }

    /// Flat buffer index of an owned cell — what FieldBase::forEachActiveHost
    /// adds to rawHost() (domain contract, shared by every grid's partition).
    [[nodiscard]] size_t flatIdx(const ECell& cell, int32_t c) const
    {
        return bufIdx(cell.idx, c);
    }

    [[nodiscard]] int32_t cardinality() const { return card; }

    // Access-sanitizer contracts (set/sanitize.hpp): ESpan slots are single
    // cells; neighbour offsets go through the LUT, which is bounded by the
    // stencil radius on every axis.
    [[nodiscard]] static int32_t spanSlotOf(const ECell& cell) { return cell.idx; }
    [[nodiscard]] static int32_t stencilExtent(const index_3d& offset)
    {
        const int32_t ax = offset.x < 0 ? -offset.x : offset.x;
        const int32_t ay = offset.y < 0 ? -offset.y : offset.y;
        const int32_t az = offset.z < 0 ? -offset.z : offset.z;
        return ax > ay ? (ax > az ? ax : az) : (ay > az ? ay : az);
    }
};

template <typename T>
class EField : public domain::FieldBase<EGrid, T>
{
    using Base = domain::FieldBase<EGrid, T>;

   public:
    using Partition = EPartition<T>;
    using Base::cardinality;
    using Base::grid;
    using Base::layout;
    using Base::outsideValue;

    EField() = default;

    EField(const EGrid& grid, std::string name, int cardinality, T outsideValue, MemLayout layout)
    {
        std::vector<size_t> cells;
        for (int d = 0; d < grid.devCount(); ++d) {
            cells.push_back(static_cast<size_t>(grid.part(d).nLocal()));
        }
        this->initCore(grid, std::move(name), cardinality, outsideValue, layout, cells);
    }

    /// Shadowed (not virtual): connectivity-table reads are the sparse
    /// representation's price, charged per stencil access.
    [[nodiscard]] double bytesPerItem(Compute compute = Compute::MAP) const
    {
        double bytes = Base::bytesPerItem(compute);
        if (compute == Compute::STENCIL) {
            bytes += 4.0 * grid().stencilPointCount();
        }
        return bytes;
    }

    /// Contract (domain::Loadable): the partition is *view-agnostic* — the
    /// span passed at launch decides which cells are visited; the partition
    /// only addresses memory. Every DataView must yield the same partition.
    [[nodiscard]] Partition getPartition(int dev, [[maybe_unused]] DataView view =
                                                      DataView::STANDARD) const
    {
        assert(dev >= 0 && dev < grid().devCount());
        const auto& g = grid();
        const auto& p = g.part(dev);
        Partition   part;
        part.mem = this->mCore->data.rawDev(dev);
        part.nLocal = p.nLocal();
        part.nOwned = p.nOwned;
        part.card = cardinality();
        part.layout = layout();
        part.outside = outsideValue();
        part.conn = g.connectivity().rawDev(dev);
        part.nPoints = g.stencilPointCount();
        part.lut = g.offsetLut().rawDev(dev);
        part.lutR = g.lutRadius();
        part.coords = g.coords().rawDev(dev);
        return part;
    }

    // --- host-side access ---------------------------------------------------
    [[nodiscard]] T& hRef(const index_3d& g, int32_t c = 0) const
    {
        auto [dev, idx] = grid().localOf(g);
        NEON_CHECK(dev >= 0, "hRef on an inactive cell");
        Partition p = getPartition(dev);
        return this->rawHost(dev)[p.bufIdx(idx, c)];
    }

    [[nodiscard]] T hVal(const index_3d& g, int32_t c = 0) const { return hRef(g, c); }

    /// Partition descriptor pointing at the host mirror: structure tables
    /// retargeted to their host copies so globalIdx/flatIdx work host-side
    /// (FieldBase::forEachActiveHost pairs it with rawHost()).
    [[nodiscard]] Partition hostPartition(int dev) const
    {
        const EGrid& g = grid();
        Partition    part = getPartition(dev);
        part.mem = nullptr;  // callers index via flatIdx against rawHost
        part.conn = g.connectivity().rawHost(dev);
        part.lut = g.offsetLut().rawHost(dev);
        part.coords = g.coords().rawHost(dev);
        return part;
    }
};

}  // namespace neon::egrid
