#pragma once
// EField<T>: metadata over an EGrid. Neighbour access goes through the
// grid's connectivity table; the extra index bytes are charged to the cost
// model, which is exactly the dense/sparse trade-off the paper's Fig. 9
// explores.

#include <memory>
#include <string>

#include "core/error.hpp"
#include "egrid/egrid.hpp"
#include "set/memset.hpp"

namespace neon::egrid {

template <typename T>
struct EPartition
{
    T*              mem = nullptr;
    int32_t         nLocal = 0;  ///< owned + ghost cells
    int32_t         nOwned = 0;
    int32_t         card = 1;
    MemLayout       layout = MemLayout::structOfArrays;
    T               outside = T{};
    const int32_t*  conn = nullptr;  ///< [point][ownedCell]
    int32_t         nPoints = 0;
    const int16_t*  lut = nullptr;  ///< offset -> point slot
    int32_t         lutR = 1;
    const index_3d* coords = nullptr;

    [[nodiscard]] size_t bufIdx(int32_t cell, int32_t c) const
    {
        if (layout == MemLayout::structOfArrays) {
            return static_cast<size_t>(c) * static_cast<size_t>(nLocal) +
                   static_cast<size_t>(cell);
        }
        return static_cast<size_t>(cell) * static_cast<size_t>(card) + static_cast<size_t>(c);
    }

    [[nodiscard]] T& operator()(const ECell& cell, int32_t c = 0)
    {
        return mem[bufIdx(cell.idx, c)];
    }
    [[nodiscard]] const T& operator()(const ECell& cell, int32_t c = 0) const
    {
        return mem[bufIdx(cell.idx, c)];
    }

    struct NghData
    {
        T    value{};
        bool isValid = false;
    };

    /// Neighbour by stencil-point slot (fast path: one table lookup).
    [[nodiscard]] NghData nghDataSlot(const ECell& cell, int32_t slot, int32_t c = 0) const
    {
        const int32_t j =
            conn[static_cast<size_t>(slot) * static_cast<size_t>(nOwned) +
                 static_cast<size_t>(cell.idx)];
        if (j < 0) {
            return {outside, false};
        }
        return {mem[bufIdx(j, c)], true};
    }

    /// Neighbour by 3-D offset: resolved to a slot via the grid's LUT so the
    /// same user code runs on DGrid and EGrid (paper §IV: "the same user
    /// code to operate on a variety of data structures").
    [[nodiscard]] NghData nghData(const ECell& cell, const index_3d& offset, int32_t c = 0) const
    {
        if (offset.x < -lutR || offset.x > lutR || offset.y < -lutR || offset.y > lutR ||
            offset.z < -lutR || offset.z > lutR) {
            return {outside, false};
        }
        const size_t w = 2 * static_cast<size_t>(lutR) + 1;
        const size_t li =
            (static_cast<size_t>(offset.z + lutR) * w + static_cast<size_t>(offset.y + lutR)) * w +
            static_cast<size_t>(offset.x + lutR);
        const int16_t slot = lut[li];
        if (slot < 0) {
            return {outside, false};
        }
        return nghDataSlot(cell, slot, c);
    }

    [[nodiscard]] T nghVal(const ECell& cell, const index_3d& offset, int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    /// Interface parity with DPartition::nghValUnchecked. On the sparse
    /// grid the connectivity lookup *is* the validity test, so nothing can
    /// be skipped; still resolves through the table.
    [[nodiscard]] T nghValUnchecked(const ECell& cell, const index_3d& offset,
                                    int32_t c = 0) const
    {
        return nghData(cell, offset, c).value;
    }

    [[nodiscard]] index_3d globalIdx(const ECell& cell) const { return coords[cell.idx]; }

    [[nodiscard]] int32_t cardinality() const { return card; }
};

template <typename T>
class EField
{
   public:
    using Partition = EPartition<T>;

    EField() = default;

    EField(const EGrid& grid, std::string name, int cardinality, T outsideValue, MemLayout layout)
        : mImpl(std::make_shared<Impl>())
    {
        NEON_CHECK(cardinality >= 1, "cardinality must be >= 1");
        mImpl->grid = grid;
        mImpl->name = std::move(name);
        mImpl->card = cardinality;
        mImpl->outside = outsideValue;
        mImpl->layout = layout;

        std::vector<size_t> counts;
        for (int d = 0; d < grid.devCount(); ++d) {
            counts.push_back(static_cast<size_t>(grid.part(d).nLocal()) *
                             static_cast<size_t>(cardinality));
        }
        mImpl->data = set::MemSet<T>(grid.backend(), mImpl->name, counts);
        mImpl->halo = std::make_shared<HaloImpl>(mImpl->data, grid, mImpl->name, cardinality,
                                                 layout);
        if (!grid.backend().isDryRun()) {
            fillHost(outsideValue);
            updateDev();
        }
    }

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }

    // --- Loader/data interface --------------------------------------------
    [[nodiscard]] uint64_t           uid() const { return mImpl->data.uid(); }
    [[nodiscard]] const std::string& name() const { return mImpl->name; }
    [[nodiscard]] double bytesPerItem(Compute compute = Compute::MAP) const
    {
        double bytes = sizeof(T) * static_cast<double>(mImpl->card);
        if (compute == Compute::STENCIL) {
            // Connectivity-table reads: the sparse representation's price.
            bytes += 4.0 * mImpl->grid.stencilPointCount();
        }
        return bytes;
    }
    [[nodiscard]] std::shared_ptr<const set::HaloOps> haloOps() const { return mImpl->halo; }

    [[nodiscard]] Partition getPartition(int dev, DataView /*view*/ = DataView::STANDARD) const
    {
        const auto& grid = mImpl->grid;
        const auto& p = grid.part(dev);
        Partition   part;
        part.mem = mImpl->data.rawDev(dev);
        part.nLocal = p.nLocal();
        part.nOwned = p.nOwned;
        part.card = mImpl->card;
        part.layout = mImpl->layout;
        part.outside = mImpl->outside;
        part.conn = grid.connectivity().rawDev(dev);
        part.nPoints = grid.stencilPointCount();
        part.lut = grid.offsetLut().rawDev(dev);
        part.lutR = grid.lutRadius();
        part.coords = grid.coords().rawDev(dev);
        return part;
    }

    // --- host-side access ---------------------------------------------------
    [[nodiscard]] T& hRef(const index_3d& g, int32_t c = 0) const
    {
        auto [dev, idx] = mImpl->grid.localOf(g);
        NEON_CHECK(dev >= 0, "hRef on an inactive cell");
        Partition p = getPartition(dev);
        return mImpl->data.rawHost(dev)[p.bufIdx(idx, c)];
    }

    [[nodiscard]] T hVal(const index_3d& g, int32_t c = 0) const { return hRef(g, c); }

    /// Visit every (active cell, component) of the host mirror.
    template <typename Fn>  // fn(const index_3d&, int card, T&)
    void forEachActiveHost(Fn&& fn) const
    {
        for (int d = 0; d < mImpl->grid.devCount(); ++d) {
            const auto&     p = mImpl->grid.part(d);
            const index_3d* coords = mImpl->grid.coords().rawHost(d);
            Partition       part = getPartition(d);
            T*              host = mImpl->data.rawHost(d);
            for (int32_t i = 0; i < p.nOwned; ++i) {
                for (int32_t c = 0; c < mImpl->card; ++c) {
                    fn(coords[i], c, host[part.bufIdx(i, c)]);
                }
            }
        }
    }

    void fillHost(T v) const
    {
        for (int d = 0; d < mImpl->grid.devCount(); ++d) {
            T*           ptr = mImpl->data.rawHost(d);
            const size_t n = mImpl->data.count(d);
            std::fill(ptr, ptr + n, v);
        }
    }

    void updateDev() const { mImpl->data.updateDev(); }
    void updateHost() const { mImpl->data.updateHost(); }

    [[nodiscard]] const EGrid& grid() const { return mImpl->grid; }
    [[nodiscard]] int          cardinality() const { return mImpl->card; }
    [[nodiscard]] MemLayout    layout() const { return mImpl->layout; }
    [[nodiscard]] T            outsideValue() const { return mImpl->outside; }

    [[nodiscard]] size_t allocatedBytes() const { return mImpl->data.totalCount() * sizeof(T); }

   private:
    struct Impl
    {
        EGrid                         grid;
        std::string                   name;
        int                           card = 1;
        T                             outside = T{};
        MemLayout                     layout = MemLayout::structOfArrays;
        set::MemSet<T>                data;
        std::shared_ptr<set::HaloOps> halo;
    };

    class HaloImpl final : public set::HaloOps
    {
       public:
        HaloImpl(set::MemSet<T> data, EGrid grid, std::string name, int card, MemLayout layout)
            : mData(std::move(data)),
              mGrid(std::move(grid)),
              mName(std::move(name)),
              mCard(card),
              mLayout(layout)
        {
        }

        void enqueueHaloSend(int dev, sys::Stream& stream) const override
        {
            const auto& p = mGrid.part(dev);
            sys::TransferOp op;
            op.name = "halo(" + mName + ")";

            auto addChunks = [&](int nbr, int direction, int32_t srcFirst, int32_t dstFirst,
                                 int32_t cells) {
                if (cells == 0) {
                    return;
                }
                T*          src = mData.rawDev(dev);
                T*          dst = mData.rawDev(nbr);
                const auto& pn = mGrid.part(nbr);
                if (mLayout == MemLayout::structOfArrays) {
                    for (int32_t c = 0; c < mCard; ++c) {
                        const size_t so = static_cast<size_t>(c) * p.nLocal() +
                                          static_cast<size_t>(srcFirst);
                        const size_t do_ = static_cast<size_t>(c) * pn.nLocal() +
                                           static_cast<size_t>(dstFirst);
                        const size_t len = static_cast<size_t>(cells);
                        op.chunks.push_back({len * sizeof(T), direction, [src, dst, so, do_, len] {
                                                 std::copy_n(src + so, len, dst + do_);
                                             }});
                    }
                } else {
                    const size_t so = static_cast<size_t>(srcFirst) * mCard;
                    const size_t do_ = static_cast<size_t>(dstFirst) * mCard;
                    const size_t len = static_cast<size_t>(cells) * mCard;
                    op.chunks.push_back({len * sizeof(T), direction, [src, dst, so, do_, len] {
                                             std::copy_n(src + so, len, dst + do_);
                                         }});
                }
            };

            if (dev < mGrid.devCount() - 1) {
                // Own boundary-high segment -> (dev+1)'s ghost-low range.
                const auto& pn = mGrid.part(dev + 1);
                addChunks(dev + 1, 1, p.nOwned - p.nBdrHigh, pn.nOwned, p.nBdrHigh);
            }
            if (dev > 0) {
                // Own boundary-low segment -> (dev-1)'s ghost-high range.
                const auto& pn = mGrid.part(dev - 1);
                addChunks(dev - 1, 0, 0, pn.nOwned + pn.nGhostLow, p.nBdrLow);
            }
            if (!op.chunks.empty()) {
                stream.transfer(std::move(op));
            }
        }

        [[nodiscard]] uint64_t    uid() const override { return mData.uid(); }
        [[nodiscard]] std::string name() const override { return mName; }
        [[nodiscard]] int         devCount() const override { return mGrid.devCount(); }

       private:
        set::MemSet<T> mData;
        EGrid          mGrid;
        std::string    mName;
        int            mCard = 1;
        MemLayout      mLayout = MemLayout::structOfArrays;
    };

    std::shared_ptr<Impl> mImpl;
};

template <typename T>
EField<T> EGrid::newField(std::string name, int cardinality, T outsideValue,
                          MemLayout layout) const
{
    return EField<T>(*this, std::move(name), cardinality, outsideValue, layout);
}

}  // namespace neon::egrid
